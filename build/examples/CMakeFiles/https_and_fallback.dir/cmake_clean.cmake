file(REMOVE_RECURSE
  "CMakeFiles/https_and_fallback.dir/https_and_fallback.cpp.o"
  "CMakeFiles/https_and_fallback.dir/https_and_fallback.cpp.o.d"
  "https_and_fallback"
  "https_and_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/https_and_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
