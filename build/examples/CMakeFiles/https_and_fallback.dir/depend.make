# Empty dependencies file for https_and_fallback.
# This may be replaced when dependencies are built.
