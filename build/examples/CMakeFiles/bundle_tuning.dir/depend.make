# Empty dependencies file for bundle_tuning.
# This may be replaced when dependencies are built.
