file(REMOVE_RECURSE
  "CMakeFiles/bundle_tuning.dir/bundle_tuning.cpp.o"
  "CMakeFiles/bundle_tuning.dir/bundle_tuning.cpp.o.d"
  "bundle_tuning"
  "bundle_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bundle_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
