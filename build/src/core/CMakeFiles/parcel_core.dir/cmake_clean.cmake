file(REMOVE_RECURSE
  "CMakeFiles/parcel_core.dir/analysis.cpp.o"
  "CMakeFiles/parcel_core.dir/analysis.cpp.o.d"
  "CMakeFiles/parcel_core.dir/bundle_scheduler.cpp.o"
  "CMakeFiles/parcel_core.dir/bundle_scheduler.cpp.o.d"
  "CMakeFiles/parcel_core.dir/client.cpp.o"
  "CMakeFiles/parcel_core.dir/client.cpp.o.d"
  "CMakeFiles/parcel_core.dir/experiment.cpp.o"
  "CMakeFiles/parcel_core.dir/experiment.cpp.o.d"
  "CMakeFiles/parcel_core.dir/proxy.cpp.o"
  "CMakeFiles/parcel_core.dir/proxy.cpp.o.d"
  "CMakeFiles/parcel_core.dir/session.cpp.o"
  "CMakeFiles/parcel_core.dir/session.cpp.o.d"
  "CMakeFiles/parcel_core.dir/testbed.cpp.o"
  "CMakeFiles/parcel_core.dir/testbed.cpp.o.d"
  "libparcel_core.a"
  "libparcel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
