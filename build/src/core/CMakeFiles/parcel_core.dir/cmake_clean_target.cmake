file(REMOVE_RECURSE
  "libparcel_core.a"
)
