# Empty compiler generated dependencies file for parcel_core.
# This may be replaced when dependencies are built.
