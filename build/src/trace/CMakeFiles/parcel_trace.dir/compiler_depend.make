# Empty compiler generated dependencies file for parcel_trace.
# This may be replaced when dependencies are built.
