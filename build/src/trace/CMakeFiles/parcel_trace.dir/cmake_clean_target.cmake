file(REMOVE_RECURSE
  "libparcel_trace.a"
)
