file(REMOVE_RECURSE
  "CMakeFiles/parcel_trace.dir/packet_trace.cpp.o"
  "CMakeFiles/parcel_trace.dir/packet_trace.cpp.o.d"
  "CMakeFiles/parcel_trace.dir/trace_analyzer.cpp.o"
  "CMakeFiles/parcel_trace.dir/trace_analyzer.cpp.o.d"
  "libparcel_trace.a"
  "libparcel_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
