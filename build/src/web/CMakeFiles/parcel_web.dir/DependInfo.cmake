
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/web/css.cpp" "src/web/CMakeFiles/parcel_web.dir/css.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/css.cpp.o.d"
  "/root/repo/src/web/generator.cpp" "src/web/CMakeFiles/parcel_web.dir/generator.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/generator.cpp.o.d"
  "/root/repo/src/web/html.cpp" "src/web/CMakeFiles/parcel_web.dir/html.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/html.cpp.o.d"
  "/root/repo/src/web/js.cpp" "src/web/CMakeFiles/parcel_web.dir/js.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/js.cpp.o.d"
  "/root/repo/src/web/mhtml.cpp" "src/web/CMakeFiles/parcel_web.dir/mhtml.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/mhtml.cpp.o.d"
  "/root/repo/src/web/object.cpp" "src/web/CMakeFiles/parcel_web.dir/object.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/object.cpp.o.d"
  "/root/repo/src/web/origin_server.cpp" "src/web/CMakeFiles/parcel_web.dir/origin_server.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/origin_server.cpp.o.d"
  "/root/repo/src/web/page.cpp" "src/web/CMakeFiles/parcel_web.dir/page.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/page.cpp.o.d"
  "/root/repo/src/web/reference.cpp" "src/web/CMakeFiles/parcel_web.dir/reference.cpp.o" "gcc" "src/web/CMakeFiles/parcel_web.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
