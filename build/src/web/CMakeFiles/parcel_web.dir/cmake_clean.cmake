file(REMOVE_RECURSE
  "CMakeFiles/parcel_web.dir/css.cpp.o"
  "CMakeFiles/parcel_web.dir/css.cpp.o.d"
  "CMakeFiles/parcel_web.dir/generator.cpp.o"
  "CMakeFiles/parcel_web.dir/generator.cpp.o.d"
  "CMakeFiles/parcel_web.dir/html.cpp.o"
  "CMakeFiles/parcel_web.dir/html.cpp.o.d"
  "CMakeFiles/parcel_web.dir/js.cpp.o"
  "CMakeFiles/parcel_web.dir/js.cpp.o.d"
  "CMakeFiles/parcel_web.dir/mhtml.cpp.o"
  "CMakeFiles/parcel_web.dir/mhtml.cpp.o.d"
  "CMakeFiles/parcel_web.dir/object.cpp.o"
  "CMakeFiles/parcel_web.dir/object.cpp.o.d"
  "CMakeFiles/parcel_web.dir/origin_server.cpp.o"
  "CMakeFiles/parcel_web.dir/origin_server.cpp.o.d"
  "CMakeFiles/parcel_web.dir/page.cpp.o"
  "CMakeFiles/parcel_web.dir/page.cpp.o.d"
  "CMakeFiles/parcel_web.dir/reference.cpp.o"
  "CMakeFiles/parcel_web.dir/reference.cpp.o.d"
  "libparcel_web.a"
  "libparcel_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
