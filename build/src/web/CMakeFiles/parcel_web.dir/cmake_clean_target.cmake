file(REMOVE_RECURSE
  "libparcel_web.a"
)
