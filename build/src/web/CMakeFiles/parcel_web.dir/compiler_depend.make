# Empty compiler generated dependencies file for parcel_web.
# This may be replaced when dependencies are built.
