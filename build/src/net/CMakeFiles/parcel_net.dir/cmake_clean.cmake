file(REMOVE_RECURSE
  "CMakeFiles/parcel_net.dir/dns.cpp.o"
  "CMakeFiles/parcel_net.dir/dns.cpp.o.d"
  "CMakeFiles/parcel_net.dir/http.cpp.o"
  "CMakeFiles/parcel_net.dir/http.cpp.o.d"
  "CMakeFiles/parcel_net.dir/link.cpp.o"
  "CMakeFiles/parcel_net.dir/link.cpp.o.d"
  "CMakeFiles/parcel_net.dir/network.cpp.o"
  "CMakeFiles/parcel_net.dir/network.cpp.o.d"
  "CMakeFiles/parcel_net.dir/path.cpp.o"
  "CMakeFiles/parcel_net.dir/path.cpp.o.d"
  "CMakeFiles/parcel_net.dir/tcp.cpp.o"
  "CMakeFiles/parcel_net.dir/tcp.cpp.o.d"
  "CMakeFiles/parcel_net.dir/url.cpp.o"
  "CMakeFiles/parcel_net.dir/url.cpp.o.d"
  "libparcel_net.a"
  "libparcel_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
