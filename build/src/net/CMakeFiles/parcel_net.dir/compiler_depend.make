# Empty compiler generated dependencies file for parcel_net.
# This may be replaced when dependencies are built.
