file(REMOVE_RECURSE
  "libparcel_net.a"
)
