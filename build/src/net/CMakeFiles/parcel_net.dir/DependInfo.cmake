
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dns.cpp" "src/net/CMakeFiles/parcel_net.dir/dns.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/dns.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/net/CMakeFiles/parcel_net.dir/http.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/http.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/parcel_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/parcel_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/network.cpp.o.d"
  "/root/repo/src/net/path.cpp" "src/net/CMakeFiles/parcel_net.dir/path.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/path.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/parcel_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/url.cpp" "src/net/CMakeFiles/parcel_net.dir/url.cpp.o" "gcc" "src/net/CMakeFiles/parcel_net.dir/url.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
