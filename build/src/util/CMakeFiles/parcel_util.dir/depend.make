# Empty dependencies file for parcel_util.
# This may be replaced when dependencies are built.
