file(REMOVE_RECURSE
  "CMakeFiles/parcel_util.dir/logging.cpp.o"
  "CMakeFiles/parcel_util.dir/logging.cpp.o.d"
  "CMakeFiles/parcel_util.dir/rng.cpp.o"
  "CMakeFiles/parcel_util.dir/rng.cpp.o.d"
  "CMakeFiles/parcel_util.dir/stats.cpp.o"
  "CMakeFiles/parcel_util.dir/stats.cpp.o.d"
  "CMakeFiles/parcel_util.dir/strings.cpp.o"
  "CMakeFiles/parcel_util.dir/strings.cpp.o.d"
  "CMakeFiles/parcel_util.dir/units.cpp.o"
  "CMakeFiles/parcel_util.dir/units.cpp.o.d"
  "libparcel_util.a"
  "libparcel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
