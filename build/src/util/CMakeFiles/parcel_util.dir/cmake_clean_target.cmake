file(REMOVE_RECURSE
  "libparcel_util.a"
)
