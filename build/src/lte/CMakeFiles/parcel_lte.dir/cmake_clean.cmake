file(REMOVE_RECURSE
  "CMakeFiles/parcel_lte.dir/device.cpp.o"
  "CMakeFiles/parcel_lte.dir/device.cpp.o.d"
  "CMakeFiles/parcel_lte.dir/energy.cpp.o"
  "CMakeFiles/parcel_lte.dir/energy.cpp.o.d"
  "CMakeFiles/parcel_lte.dir/radio_link.cpp.o"
  "CMakeFiles/parcel_lte.dir/radio_link.cpp.o.d"
  "CMakeFiles/parcel_lte.dir/rrc.cpp.o"
  "CMakeFiles/parcel_lte.dir/rrc.cpp.o.d"
  "libparcel_lte.a"
  "libparcel_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
