# Empty compiler generated dependencies file for parcel_lte.
# This may be replaced when dependencies are built.
