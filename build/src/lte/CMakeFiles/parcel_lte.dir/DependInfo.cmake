
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/device.cpp" "src/lte/CMakeFiles/parcel_lte.dir/device.cpp.o" "gcc" "src/lte/CMakeFiles/parcel_lte.dir/device.cpp.o.d"
  "/root/repo/src/lte/energy.cpp" "src/lte/CMakeFiles/parcel_lte.dir/energy.cpp.o" "gcc" "src/lte/CMakeFiles/parcel_lte.dir/energy.cpp.o.d"
  "/root/repo/src/lte/radio_link.cpp" "src/lte/CMakeFiles/parcel_lte.dir/radio_link.cpp.o" "gcc" "src/lte/CMakeFiles/parcel_lte.dir/radio_link.cpp.o.d"
  "/root/repo/src/lte/rrc.cpp" "src/lte/CMakeFiles/parcel_lte.dir/rrc.cpp.o" "gcc" "src/lte/CMakeFiles/parcel_lte.dir/rrc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
