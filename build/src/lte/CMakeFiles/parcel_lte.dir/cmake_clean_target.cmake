file(REMOVE_RECURSE
  "libparcel_lte.a"
)
