file(REMOVE_RECURSE
  "libparcel_browser.a"
)
