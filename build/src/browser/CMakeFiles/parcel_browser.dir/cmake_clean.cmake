file(REMOVE_RECURSE
  "CMakeFiles/parcel_browser.dir/cloud_browser.cpp.o"
  "CMakeFiles/parcel_browser.dir/cloud_browser.cpp.o.d"
  "CMakeFiles/parcel_browser.dir/dir_browser.cpp.o"
  "CMakeFiles/parcel_browser.dir/dir_browser.cpp.o.d"
  "CMakeFiles/parcel_browser.dir/engine.cpp.o"
  "CMakeFiles/parcel_browser.dir/engine.cpp.o.d"
  "CMakeFiles/parcel_browser.dir/ledger.cpp.o"
  "CMakeFiles/parcel_browser.dir/ledger.cpp.o.d"
  "CMakeFiles/parcel_browser.dir/main_thread.cpp.o"
  "CMakeFiles/parcel_browser.dir/main_thread.cpp.o.d"
  "CMakeFiles/parcel_browser.dir/proxied_browser.cpp.o"
  "CMakeFiles/parcel_browser.dir/proxied_browser.cpp.o.d"
  "libparcel_browser.a"
  "libparcel_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
