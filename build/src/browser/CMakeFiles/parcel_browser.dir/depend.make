# Empty dependencies file for parcel_browser.
# This may be replaced when dependencies are built.
