
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/cloud_browser.cpp" "src/browser/CMakeFiles/parcel_browser.dir/cloud_browser.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/cloud_browser.cpp.o.d"
  "/root/repo/src/browser/dir_browser.cpp" "src/browser/CMakeFiles/parcel_browser.dir/dir_browser.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/dir_browser.cpp.o.d"
  "/root/repo/src/browser/engine.cpp" "src/browser/CMakeFiles/parcel_browser.dir/engine.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/engine.cpp.o.d"
  "/root/repo/src/browser/ledger.cpp" "src/browser/CMakeFiles/parcel_browser.dir/ledger.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/ledger.cpp.o.d"
  "/root/repo/src/browser/main_thread.cpp" "src/browser/CMakeFiles/parcel_browser.dir/main_thread.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/main_thread.cpp.o.d"
  "/root/repo/src/browser/proxied_browser.cpp" "src/browser/CMakeFiles/parcel_browser.dir/proxied_browser.cpp.o" "gcc" "src/browser/CMakeFiles/parcel_browser.dir/proxied_browser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/parcel_web.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
