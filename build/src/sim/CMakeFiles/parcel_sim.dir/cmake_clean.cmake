file(REMOVE_RECURSE
  "CMakeFiles/parcel_sim.dir/scheduler.cpp.o"
  "CMakeFiles/parcel_sim.dir/scheduler.cpp.o.d"
  "libparcel_sim.a"
  "libparcel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
