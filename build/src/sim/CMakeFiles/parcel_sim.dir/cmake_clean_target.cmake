file(REMOVE_RECURSE
  "libparcel_sim.a"
)
