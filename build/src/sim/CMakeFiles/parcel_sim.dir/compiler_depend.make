# Empty compiler generated dependencies file for parcel_sim.
# This may be replaced when dependencies are built.
