file(REMOVE_RECURSE
  "CMakeFiles/parcel_replay.dir/normalizer.cpp.o"
  "CMakeFiles/parcel_replay.dir/normalizer.cpp.o.d"
  "CMakeFiles/parcel_replay.dir/replay_store.cpp.o"
  "CMakeFiles/parcel_replay.dir/replay_store.cpp.o.d"
  "libparcel_replay.a"
  "libparcel_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
