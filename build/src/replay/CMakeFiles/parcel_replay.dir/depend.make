# Empty dependencies file for parcel_replay.
# This may be replaced when dependencies are built.
