
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replay/normalizer.cpp" "src/replay/CMakeFiles/parcel_replay.dir/normalizer.cpp.o" "gcc" "src/replay/CMakeFiles/parcel_replay.dir/normalizer.cpp.o.d"
  "/root/repo/src/replay/replay_store.cpp" "src/replay/CMakeFiles/parcel_replay.dir/replay_store.cpp.o" "gcc" "src/replay/CMakeFiles/parcel_replay.dir/replay_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/web/CMakeFiles/parcel_web.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
