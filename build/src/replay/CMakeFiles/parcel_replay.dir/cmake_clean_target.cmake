file(REMOVE_RECURSE
  "libparcel_replay.a"
)
