# Empty compiler generated dependencies file for parcel_tests.
# This may be replaced when dependencies are built.
