
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_browser_engine.cpp" "tests/CMakeFiles/parcel_tests.dir/test_browser_engine.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_browser_engine.cpp.o.d"
  "/root/repo/tests/test_browser_integration.cpp" "tests/CMakeFiles/parcel_tests.dir/test_browser_integration.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_browser_integration.cpp.o.d"
  "/root/repo/tests/test_browsing_session.cpp" "tests/CMakeFiles/parcel_tests.dir/test_browsing_session.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_browsing_session.cpp.o.d"
  "/root/repo/tests/test_core_analysis.cpp" "tests/CMakeFiles/parcel_tests.dir/test_core_analysis.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_core_analysis.cpp.o.d"
  "/root/repo/tests/test_core_bundles.cpp" "tests/CMakeFiles/parcel_tests.dir/test_core_bundles.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_core_bundles.cpp.o.d"
  "/root/repo/tests/test_core_client.cpp" "tests/CMakeFiles/parcel_tests.dir/test_core_client.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_core_client.cpp.o.d"
  "/root/repo/tests/test_core_experiment.cpp" "tests/CMakeFiles/parcel_tests.dir/test_core_experiment.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_core_experiment.cpp.o.d"
  "/root/repo/tests/test_core_session.cpp" "tests/CMakeFiles/parcel_tests.dir/test_core_session.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_core_session.cpp.o.d"
  "/root/repo/tests/test_engine_edge.cpp" "tests/CMakeFiles/parcel_tests.dir/test_engine_edge.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_engine_edge.cpp.o.d"
  "/root/repo/tests/test_lte.cpp" "tests/CMakeFiles/parcel_tests.dir/test_lte.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_lte.cpp.o.d"
  "/root/repo/tests/test_net_http.cpp" "tests/CMakeFiles/parcel_tests.dir/test_net_http.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_net_http.cpp.o.d"
  "/root/repo/tests/test_net_link.cpp" "tests/CMakeFiles/parcel_tests.dir/test_net_link.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_net_link.cpp.o.d"
  "/root/repo/tests/test_net_tcp.cpp" "tests/CMakeFiles/parcel_tests.dir/test_net_tcp.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_net_tcp.cpp.o.d"
  "/root/repo/tests/test_net_url_dns.cpp" "tests/CMakeFiles/parcel_tests.dir/test_net_url_dns.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_net_url_dns.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/parcel_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_proxied_browser.cpp" "tests/CMakeFiles/parcel_tests.dir/test_proxied_browser.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_proxied_browser.cpp.o.d"
  "/root/repo/tests/test_replay.cpp" "tests/CMakeFiles/parcel_tests.dir/test_replay.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_replay.cpp.o.d"
  "/root/repo/tests/test_session_details.cpp" "tests/CMakeFiles/parcel_tests.dir/test_session_details.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_session_details.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/parcel_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_testbed.cpp" "tests/CMakeFiles/parcel_tests.dir/test_testbed.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_testbed.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/parcel_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/parcel_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_web_generator.cpp" "tests/CMakeFiles/parcel_tests.dir/test_web_generator.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_web_generator.cpp.o.d"
  "/root/repo/tests/test_web_page.cpp" "tests/CMakeFiles/parcel_tests.dir/test_web_page.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_web_page.cpp.o.d"
  "/root/repo/tests/test_web_parsers.cpp" "tests/CMakeFiles/parcel_tests.dir/test_web_parsers.cpp.o" "gcc" "tests/CMakeFiles/parcel_tests.dir/test_web_parsers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/parcel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/parcel_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/parcel_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/parcel_web.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/parcel_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
