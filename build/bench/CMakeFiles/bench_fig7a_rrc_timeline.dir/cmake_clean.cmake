file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_rrc_timeline.dir/bench_fig7a_rrc_timeline.cpp.o"
  "CMakeFiles/bench_fig7a_rrc_timeline.dir/bench_fig7a_rrc_timeline.cpp.o.d"
  "bench_fig7a_rrc_timeline"
  "bench_fig7a_rrc_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_rrc_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
