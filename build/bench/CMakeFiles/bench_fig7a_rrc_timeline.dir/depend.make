# Empty dependencies file for bench_fig7a_rrc_timeline.
# This may be replaced when dependencies are built.
