file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_real_servers_olt.dir/bench_fig10_real_servers_olt.cpp.o"
  "CMakeFiles/bench_fig10_real_servers_olt.dir/bench_fig10_real_servers_olt.cpp.o.d"
  "bench_fig10_real_servers_olt"
  "bench_fig10_real_servers_olt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_real_servers_olt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
