# Empty dependencies file for bench_fig10_real_servers_olt.
# This may be replaced when dependencies are built.
