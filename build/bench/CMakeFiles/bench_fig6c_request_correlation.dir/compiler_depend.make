# Empty compiler generated dependencies file for bench_fig6c_request_correlation.
# This may be replaced when dependencies are built.
