
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6a_timeline.cpp" "bench/CMakeFiles/bench_fig6a_timeline.dir/bench_fig6a_timeline.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6a_timeline.dir/bench_fig6a_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/parcel_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parcel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/parcel_browser.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/parcel_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/parcel_web.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/parcel_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/parcel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/parcel_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/parcel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parcel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
