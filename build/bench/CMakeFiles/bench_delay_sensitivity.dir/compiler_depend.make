# Empty compiler generated dependencies file for bench_delay_sensitivity.
# This may be replaced when dependencies are built.
