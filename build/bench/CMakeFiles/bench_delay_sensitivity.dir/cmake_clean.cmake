file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_sensitivity.dir/bench_delay_sensitivity.cpp.o"
  "CMakeFiles/bench_delay_sensitivity.dir/bench_delay_sensitivity.cpp.o.d"
  "bench_delay_sensitivity"
  "bench_delay_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
