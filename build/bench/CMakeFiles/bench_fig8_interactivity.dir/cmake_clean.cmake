file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_interactivity.dir/bench_fig8_interactivity.cpp.o"
  "CMakeFiles/bench_fig8_interactivity.dir/bench_fig8_interactivity.cpp.o.d"
  "bench_fig8_interactivity"
  "bench_fig8_interactivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_interactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
