# Empty dependencies file for bench_sec6_model.
# This may be replaced when dependencies are built.
