file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_model.dir/bench_sec6_model.cpp.o"
  "CMakeFiles/bench_sec6_model.dir/bench_sec6_model.cpp.o.d"
  "bench_sec6_model"
  "bench_sec6_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
