# Empty dependencies file for bench_fig7b_energy_cdf.
# This may be replaced when dependencies are built.
