file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_energy_cdf.dir/bench_fig7b_energy_cdf.cpp.o"
  "CMakeFiles/bench_fig7b_energy_cdf.dir/bench_fig7b_energy_cdf.cpp.o.d"
  "bench_fig7b_energy_cdf"
  "bench_fig7b_energy_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_energy_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
