# Empty dependencies file for bench_fig3_wired_vs_cellular.
# This may be replaced when dependencies are built.
