file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_wired_vs_cellular.dir/bench_fig3_wired_vs_cellular.cpp.o"
  "CMakeFiles/bench_fig3_wired_vs_cellular.dir/bench_fig3_wired_vs_cellular.cpp.o.d"
  "bench_fig3_wired_vs_cellular"
  "bench_fig3_wired_vs_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_wired_vs_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
