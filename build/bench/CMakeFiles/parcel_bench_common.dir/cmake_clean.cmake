file(REMOVE_RECURSE
  "CMakeFiles/parcel_bench_common.dir/common.cpp.o"
  "CMakeFiles/parcel_bench_common.dir/common.cpp.o.d"
  "libparcel_bench_common.a"
  "libparcel_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parcel_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
