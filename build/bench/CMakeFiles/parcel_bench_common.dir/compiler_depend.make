# Empty compiler generated dependencies file for parcel_bench_common.
# This may be replaced when dependencies are built.
