file(REMOVE_RECURSE
  "libparcel_bench_common.a"
)
