# Empty compiler generated dependencies file for bench_fig9_bundles.
# This may be replaced when dependencies are built.
