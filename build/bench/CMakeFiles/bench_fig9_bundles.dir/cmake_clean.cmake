file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_bundles.dir/bench_fig9_bundles.cpp.o"
  "CMakeFiles/bench_fig9_bundles.dir/bench_fig9_bundles.cpp.o.d"
  "bench_fig9_bundles"
  "bench_fig9_bundles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bundles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
