# Empty compiler generated dependencies file for bench_fig7c_energy_savings.
# This may be replaced when dependencies are built.
