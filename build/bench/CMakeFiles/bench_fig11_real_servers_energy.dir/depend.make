# Empty dependencies file for bench_fig11_real_servers_energy.
# This may be replaced when dependencies are built.
