file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_real_servers_energy.dir/bench_fig11_real_servers_energy.cpp.o"
  "CMakeFiles/bench_fig11_real_servers_energy.dir/bench_fig11_real_servers_energy.cpp.o.d"
  "bench_fig11_real_servers_energy"
  "bench_fig11_real_servers_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_real_servers_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
