// Bundle tuning: use the §6 analytical model to pick a PARCEL(X)
// threshold for your page and network, then verify the prediction in the
// simulator. Demonstrates AnalyticalModel alongside the live system.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/session.hpp"
#include "core/testbed.hpp"
#include "lte/energy.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

using namespace parcel;

namespace {

struct SweepPoint {
  double threshold_kb;
  double olt_sec;
  double radio_j;
};

SweepPoint run_threshold(const web::WebPage& page, util::Bytes threshold,
                         std::uint64_t seed) {
  core::Testbed testbed{core::TestbedConfig{}};
  testbed.host_page(page);
  core::ParcelSessionConfig cfg;
  cfg.proxy = core::ProxyConfig::with_bundle(
      core::BundleConfig::with_threshold(threshold));
  core::ParcelSession session(testbed.network(), cfg, util::Rng(seed));
  SweepPoint point{static_cast<double>(threshold) / 1024.0, 0, 0};
  core::ParcelSession::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint t) { point.olt_sec = t.sec(); };
  session.load(page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  lte::EnergyAnalyzer analyzer{lte::RrcConfig{}};
  point.radio_j = analyzer.analyze(testbed.client_trace(), true).total.j();
  return point;
}

}  // namespace

int main() {
  // A hefty page where bundling actually matters (paper Fig 9c: > 2 MB).
  web::PageSpec spec;
  spec.site = "tuning.example.com";
  spec.object_count = 180;
  spec.total_bytes = util::mib(3);
  spec.seed = 7;
  web::WebPage live = web::PageGenerator::generate(spec);
  replay::ReplayStore store;
  store.record(live);
  const web::WebPage& page = *store.find(live.main_url().str());

  // Model the trade-off first.
  core::ModelParams params;
  params.onload_bytes = page.onload_bytes();
  params.download_bytes_per_sec = 6e6 / 8.0;  // expected LTE goodput
  params.proxy_onload = util::Duration::seconds(1.5);
  core::AnalyticalModel model(params);
  std::printf("page onload bytes: %.2f MB\n",
              static_cast<double>(params.onload_bytes) / 1048576.0);
  std::printf("alpha=%.3f  ->  analytic optimal bundle b* = %.0f KB "
              "(n* = %.1f)\n\n",
              model.alpha(),
              static_cast<double>(model.optimal_bundle_bytes()) / 1024.0,
              model.optimal_bundle_count());

  std::printf("%14s %10s %12s\n", "threshold(KB)", "OLT(s)", "radio(J)");
  for (util::Bytes x : {util::kib(128), util::kib(256), util::kib(512),
                        util::mib(1), util::mib(2), util::mib(4)}) {
    SweepPoint p = run_threshold(page, x, 5);
    std::printf("%14.0f %10.2f %12.2f\n", p.threshold_kb, p.olt_sec,
                p.radio_j);
  }
  std::printf("\nsmaller bundles: lower OLT; larger bundles: fewer radio\n"
              "wakes. Pick by which side of the trade-off your users feel.\n");
  return 0;
}
