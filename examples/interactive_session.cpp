// Interactive session (§8.2 scenario): a shopping page with a product
// gallery. The user clicks through images once a minute. PARCEL executes
// the gallery JS locally and serves images from the pushed bundle — the
// radio sleeps. A cloud-heavy browser pays a radio round trip per click.
#include <cstdio>

#include "browser/cloud_browser.hpp"
#include "core/session.hpp"
#include "core/testbed.hpp"
#include "lte/energy.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

using namespace parcel;

int main() {
  web::PageSpec spec = web::PageGenerator::interactive_spec(99);
  web::WebPage live = web::PageGenerator::generate(spec);
  replay::ReplayStore store;
  store.record(live);
  const web::WebPage& page = *store.find(live.main_url().str());
  std::printf("shop page: %zu objects, %d gallery items\n\n",
              page.object_count(), spec.gallery_items);

  const double click_at[] = {60, 120, 180};

  // --- PARCEL session --------------------------------------------------
  double parcel_click_radio;
  {
    core::Testbed testbed{core::TestbedConfig{}};
    testbed.host_page(page);
    core::ParcelSession session(testbed.network(), core::ParcelSessionConfig{},
                                util::Rng(1));
    session.load(page.main_url(), {});
    testbed.scheduler().run_until(util::TimePoint::at_seconds(45));
    std::size_t trace_after_load = testbed.client_trace().size();

    int done = 0;
    for (double t : click_at) {
      testbed.scheduler().schedule_at(
          util::TimePoint::at_seconds(t),
          [&, t] { session.click(done % spec.gallery_items, [&] { ++done; }); });
    }
    testbed.scheduler().run_until(util::TimePoint::at_seconds(240));
    std::printf("PARCEL: %d clicks handled, radio packets during clicks: %zu\n",
                done, testbed.client_trace().size() - trace_after_load);
    lte::EnergyAnalyzer analyzer{lte::RrcConfig{}};
    parcel_click_radio =
        analyzer.analyze(testbed.client_trace(), true).total.j();
    std::printf("PARCEL session radio energy: %.2f J\n\n", parcel_click_radio);
  }

  // --- Cloud browser session -------------------------------------------
  {
    core::Testbed testbed{core::TestbedConfig{}};
    testbed.host_page(page);
    browser::CloudBrowserConfig cfg;
    cfg.proxy_fetch.engine.parse_bytes_per_sec = 40e6;
    cfg.proxy_fetch.engine.js_units_per_sec = 500;
    browser::CloudBrowserProxy proxy(testbed.network(), cfg, util::Rng(1));
    testbed.register_proxy_endpoint("cb.proxy.example", proxy);
    browser::CloudBrowserClient client(testbed.network(), "cb.proxy.example",
                                       cfg);
    client.load(page.main_url(), [](util::TimePoint) {});
    testbed.scheduler().run_until(util::TimePoint::at_seconds(45));
    std::size_t trace_after_load = testbed.client_trace().size();

    int done = 0;
    for (double t : click_at) {
      testbed.scheduler().schedule_at(
          util::TimePoint::at_seconds(t),
          [&] { client.click(done % spec.gallery_items, [&] { ++done; }); });
    }
    testbed.scheduler().run_until(util::TimePoint::at_seconds(240));
    std::printf("CB:     %d clicks handled, radio packets during clicks: %zu\n",
                done, testbed.client_trace().size() - trace_after_load);
    lte::EnergyAnalyzer analyzer{lte::RrcConfig{}};
    double cb_radio = analyzer.analyze(testbed.client_trace(), true).total.j();
    std::printf("CB session radio energy: %.2f J\n\n", cb_radio);
    std::printf("every CB click wakes the radio from IDLE (260 ms promotion)\n"
                "and pays a full connected-mode tail; PARCEL's clicks cost\n"
                "only CPU. Session delta: %.2f J in CB's disfavor.\n",
                cb_radio - parcel_click_radio);
  }
  return 0;
}
