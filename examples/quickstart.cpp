// Quickstart: load one page with the traditional browser (DIR) and with
// PARCEL over a simulated LTE network, and compare what the user and the
// battery see.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "replay/replay_store.hpp"
#include "util/strings.hpp"
#include "web/generator.hpp"

using namespace parcel;

int main() {
  // 1. Synthesize a realistic page (~100 objects, ~1 MB, a dozen domains)
  //    and snapshot it with the replay store so both schemes download
  //    byte-identical content — the paper's §7.3 methodology.
  web::PageGenerator generator(/*corpus_seed=*/2014);
  web::PageSpec spec = generator.sample_spec(0);
  web::WebPage live = web::PageGenerator::generate(spec);
  replay::ReplayStore store;
  store.record(live);
  const web::WebPage& page = *store.find(live.main_url().str());

  std::printf("page %s: %zu objects, %s across %zu domains\n\n",
              page.main_url().str().c_str(), page.object_count(),
              util::format_bytes(page.total_bytes()).c_str(),
              page.domain_names().size());

  // 2. Run both schemes on a fresh simulated LTE testbed. RunConfig's
  //    defaults model a Galaxy-S3-class device on a production LTE cell.
  core::RunConfig config;
  core::RunResult dir =
      core::ExperimentRunner::run(core::Scheme::kDir, page, config);
  core::RunResult parcel =
      core::ExperimentRunner::run(core::Scheme::kParcelInd, page, config);

  // 3. Compare.
  std::printf("%-22s %12s %12s\n", "", "DIR", "PARCEL(IND)");
  std::printf("%-22s %11.2fs %11.2fs\n", "onload time (OLT)", dir.olt.sec(),
              parcel.olt.sec());
  std::printf("%-22s %11.2fs %11.2fs\n", "total load time (TLT)",
              dir.tlt.sec(), parcel.tlt.sec());
  std::printf("%-22s %11.2fJ %11.2fJ\n", "radio energy",
              dir.radio.total.j(), parcel.radio.total.j());
  std::printf("%-22s %12zu %12zu\n", "HTTP reqs over radio",
              dir.radio_http_requests, parcel.radio_http_requests);
  std::printf("%-22s %12zu %12zu\n", "TCP connections", dir.tcp_connections,
              parcel.tcp_connections);
  std::printf("%-22s %12zu %12zu\n", "client DNS lookups", dir.dns_lookups,
              parcel.dns_lookups);
  std::printf("%-22s %12zu %12zu\n", "CR<->DRX transitions",
              dir.radio.cr_drx_transitions, parcel.radio.cr_drx_transitions);

  std::printf("\nPARCEL loads the page %.0f%% faster and spends %.0f%% less"
              " radio energy.\n",
              100.0 * (1 - parcel.olt.sec() / dir.olt.sec()),
              100.0 * (1 - parcel.radio.total.j() / dir.radio.total.j()));
  return 0;
}
