// Edge paths of the PARCEL protocol (§4.5): HTTPS bypass, the
// suppressed-request/fallback machinery under live (non-replayed) pages
// with randomized JS URLs, and POST relay.
#include <cstdio>

#include "core/session.hpp"
#include "core/testbed.hpp"
#include "web/generator.hpp"

using namespace parcel;

int main() {
  // A live page whose JS builds cache-busted URLs at run time: the proxy
  // and the client draw different random queries, so some client requests
  // miss the bundle cache and must fall back after the completion note.
  web::WebPage page = [] {
    for (std::uint64_t seed = 1;; ++seed) {
      web::PageSpec spec;
      spec.site = "live.example.com";
      spec.object_count = 40;
      spec.total_bytes = util::kib(600);
      spec.seed = seed;
      web::WebPage candidate = web::PageGenerator::generate(spec);
      for (const web::WebObject* obj : candidate.objects()) {
        if (obj->content &&
            obj->content->find("fetchRand(") != std::string::npos) {
          return candidate;
        }
      }
    }
  }();

  {
    core::Testbed testbed{core::TestbedConfig{}};
    testbed.host_page(page);
    core::ParcelSession session(testbed.network(), core::ParcelSessionConfig{},
                                util::Rng(3));
    bool complete = false;
    core::ParcelSession::Callbacks cbs;
    cbs.on_complete = [&](util::TimePoint) { complete = true; };
    session.load(page.main_url(), std::move(cbs));
    testbed.scheduler().run_until(util::TimePoint::at_seconds(60));

    std::printf("live page load: complete=%d\n", complete);
    std::printf("  objects loaded:       %zu\n",
                session.client_engine().ledger().count());
    std::printf("  suppressed requests:  %zu (never touched the radio)\n",
                session.client_fetcher().suppressed_total());
    std::printf("  fallback requests:    %zu (URL diverged from proxy's)\n",
                session.client_fetcher().fallback_requests());
    std::printf("  proxy fallback serves:%zu\n",
                session.proxy().fallback_serves());

    // POST relay: the proxy forwards it unmodified (§4.5).
    bool posted = false;
    session.post(net::Url::parse("http://live.example.com/checkout"), 4096,
                 [&] { posted = true; });
    testbed.scheduler().run_until(util::TimePoint::at_seconds(120));
    std::printf("  POST relayed through proxy: %s\n\n",
                posted ? "yes" : "no");
  }

  {
    // HTTPS: PARCEL cannot parse encrypted pages, so the session falls
    // back to the traditional direct path (§4.5).
    web::WebPage https_page(net::Url::parse("https://live.example.com/"));
    for (const web::WebObject* obj : page.objects()) {
      web::WebObject copy = *obj;
      copy.url = net::Url::parse("https://" + obj->url.host() +
                                 obj->url.path());
      if (https_page.find(copy.url) == nullptr) https_page.add(std::move(copy));
    }
    core::Testbed testbed{core::TestbedConfig{}};
    testbed.host_page(https_page);
    core::ParcelSession session(testbed.network(), core::ParcelSessionConfig{},
                                util::Rng(4));
    bool complete = false;
    core::ParcelSession::Callbacks cbs;
    cbs.on_complete = [&](util::TimePoint) { complete = true; };
    session.load(https_page.main_url(), std::move(cbs));
    testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
    std::printf("HTTPS page load: complete=%d, bypassed proxy=%s, "
                "connections over radio=%zu\n",
                complete, session.used_direct_path() ? "yes" : "no",
                testbed.client_trace().connection_count());
  }
  return 0;
}
