#include "lint.hpp"

#include <cctype>
#include <cstddef>

namespace parcel::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parse the body of a comment looking for the suppression grammar
//   parcel-lint: allow(<rule>) <reason...>
// Leading/trailing whitespace in <reason> is trimmed; the reason may be
// empty (which rules.cpp reports as an unexplained suppression).
void scan_comment(const std::string& body, int line,
                  std::vector<Suppression>& out) {
  const std::string kTag = "parcel-lint:";
  auto tag = body.find(kTag);
  if (tag == std::string::npos) return;
  std::size_t p = tag + kTag.size();
  while (p < body.size() && std::isspace(static_cast<unsigned char>(body[p])))
    ++p;
  const std::string kAllow = "allow(";
  if (body.compare(p, kAllow.size(), kAllow) != 0) return;
  p += kAllow.size();
  auto close = body.find(')', p);
  if (close == std::string::npos) return;
  Suppression s;
  s.rule = body.substr(p, close - p);
  std::size_t r = close + 1;
  while (r < body.size() && std::isspace(static_cast<unsigned char>(body[r])))
    ++r;
  std::size_t e = body.size();
  while (e > r && std::isspace(static_cast<unsigned char>(body[e - 1]))) --e;
  s.reason = body.substr(r, e - r);
  s.line = line;
  s.standalone = false;  // fixed up by the caller
  out.push_back(s);
}

}  // namespace

LexOutput lex(const std::string& src) {
  LexOutput out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  // Lines that carry a comment but (maybe) no token; used to decide
  // whether a suppression comment stands alone on its line.
  std::set<int> comment_lines;

  auto count_lines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k)
      if (src[k] == '\n') ++line;
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(src.substr(i + 2, end - i - 2), line, out.suppressions);
      comment_lines.insert(line);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      scan_comment(src.substr(i + 2, end - i - 2), line, out.suppressions);
      comment_lines.insert(line);
      count_lines(i, end);
      i = end == n ? n : end + 2;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t open = src.find('(', i + 2);
      if (open != std::string::npos) {
        std::string delim = src.substr(i + 2, open - i - 2);
        std::string close = ")" + delim + "\"";
        std::size_t end = src.find(close, open + 1);
        if (end == std::string::npos) end = n;
        out.tokens.push_back({TokenKind::kString, "", line});
        out.code_lines.insert(line);
        count_lines(i, end);
        i = end == n ? n : end + close.size();
        continue;
      }
    }
    // String / char literal (contents dropped; escapes honoured).  The
    // one exception is an `#include "..."` target, whose content is the
    // input of the layer-violation pass and is captured on the side.
    if (c == '"' || c == '\'') {
      char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t nt = out.tokens.size();
      if (quote == '"' && nt >= 2 &&
          out.tokens[nt - 2].kind == TokenKind::kPunct &&
          out.tokens[nt - 2].text == "#" &&
          out.tokens[nt - 1].kind == TokenKind::kIdentifier &&
          out.tokens[nt - 1].text == "include") {
        out.includes.push_back({src.substr(i + 1, j - i - 1), line});
      }
      out.tokens.push_back(
          {quote == '"' ? TokenKind::kString : TokenKind::kChar, "", line});
      out.code_lines.insert(line);
      i = j == n ? n : j + 1;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident_char(src[j])) ++j;
      out.tokens.push_back({TokenKind::kIdentifier, src.substr(i, j - i), line});
      out.code_lines.insert(line);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (is_ident_char(src[j]) || src[j] == '.')) ++j;
      out.tokens.push_back({TokenKind::kNumber, src.substr(i, j - i), line});
      out.code_lines.insert(line);
      i = j;
      continue;
    }
    out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    out.code_lines.insert(line);
    ++i;
  }

  for (Suppression& s : out.suppressions) {
    s.standalone = out.code_lines.count(s.line) == 0;
  }
  return out;
}

}  // namespace parcel::lint
