#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lint.hpp"

namespace parcel::lint {

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kIds = {
      "nondet-random",        // std::random_device, rand(), srand(), ...
      "nondet-time",          // time(), clock(), std::chrono wall clocks
      "nondet-getenv",        // getenv outside sanctioned directories
      "nondet-transitive",    // calling a helper that transitively reaches
                              // a nondeterminism source (DESIGN.md §14)
      "unordered-iter",       // iterating unordered containers in
                              // result/trace-affecting TUs
      "layer-violation",      // include edge outside the declared layer
                              // DAG, or an include cycle
      "mutex-unannotated",    // mutex member without PARCEL_GUARDED_BY use
      "header-pragma-once",   // headers must open with #pragma once
      "header-using-namespace",  // no `using namespace` in headers
      "float-double-drift",   // float in energy/byte accounting paths
      "lint-suppression",     // malformed/unexplained allow(...) comments
  };
  return kIds;
}

bool is_known_rule(const std::string& id) {
  const auto& ids = all_rule_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

bool Config::applies(const std::string& rule,
                     const std::string& rel_path) const {
  auto it = rules.find(rule);
  const RuleConfig def;
  const RuleConfig& rc = it == rules.end() ? def : it->second;
  if (!rc.enabled) return false;
  auto has_prefix = [&](const std::string& prefix) {
    return rel_path.rfind(prefix, 0) == 0;
  };
  if (!rc.scope.empty() &&
      std::none_of(rc.scope.begin(), rc.scope.end(), has_prefix)) {
    return false;
  }
  return std::none_of(rc.exempt.begin(), rc.exempt.end(), has_prefix);
}

std::string Config::layer_of(const std::string& rel_path) const {
  // Longest prefix wins, so a single file can be carved out of its
  // directory's layer (src/core/arena.hpp -> base while src/core -> core).
  std::size_t best_len = 0;
  std::string best;
  for (const LayerSpec& layer : layers) {
    for (const std::string& prefix : layer.prefixes) {
      if (rel_path.rfind(prefix, 0) == 0 && prefix.size() >= best_len) {
        best_len = prefix.size();
        best = layer.name;
      }
    }
  }
  return best;
}

bool Config::dep_allowed(const std::string& from,
                         const std::string& to) const {
  if (from == to) return true;
  // Reachability over the declared edges: `allow-dep a -> b` sanctions a
  // direct dependency, and a layer may always use whatever its sanctioned
  // dependencies themselves depend on.
  std::set<std::string> seen = {from};
  std::vector<std::string> frontier = {from};
  while (!frontier.empty()) {
    std::string cur = std::move(frontier.back());
    frontier.pop_back();
    for (const auto& [a, b] : allow_deps) {
      if (a != cur || !seen.insert(b).second) continue;
      if (b == to) return true;
      frontier.push_back(b);
    }
  }
  return false;
}

namespace {

bool valid_layer_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

bool layer_declared(const Config& cfg, const std::string& name) {
  return std::any_of(cfg.layers.begin(), cfg.layers.end(),
                     [&](const LayerSpec& l) { return l.name == name; });
}

// The allow-dep graph must be a DAG: a cycle would make "upward" include
// directions meaningless.  Iterative DFS with tri-state marks.
bool allow_deps_cyclic(const Config& cfg, std::string& witness) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [a, b] : cfg.allow_deps) adj[a].push_back(b);
  std::map<std::string, int> state;  // 0 unvisited, 1 in-stack, 2 done
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (state[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack = {{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      const std::vector<std::string>& out = adj[node];
      if (next >= out.size()) {
        state[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string& succ = out[next++];
      if (state[succ] == 1) {
        witness = succ;
        return true;
      }
      if (state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0);
      }
    }
  }
  return false;
}

}  // namespace

bool parse_config(const std::string& text, Config& out, std::string& error) {
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    auto hash = raw.find('#');
    std::string body = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(body);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only line

    if (verb == "layer") {
      // layer <name> = <prefix>...
      std::string name, eq;
      if (!(ls >> name >> eq) || eq != "=") {
        error = "lint.rules:" + std::to_string(lineno) +
                ": expected 'layer <name> = <prefix>...', got '" + raw + "'";
        return false;
      }
      if (!valid_layer_name(name)) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": invalid layer name '" + name + "'";
        return false;
      }
      if (layer_declared(out, name)) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": duplicate layer '" + name + "'";
        return false;
      }
      LayerSpec spec;
      spec.name = name;
      std::string prefix;
      while (ls >> prefix) spec.prefixes.push_back(prefix);
      if (spec.prefixes.empty()) {
        error = "lint.rules:" + std::to_string(lineno) + ": 'layer " + name +
                " =' needs at least one path prefix";
        return false;
      }
      out.layers.push_back(std::move(spec));
      continue;
    }

    if (verb == "allow-dep") {
      // allow-dep <a> -> <b>
      std::string a, arrow, b, extra;
      if (!(ls >> a >> arrow >> b) || arrow != "->" || (ls >> extra)) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": expected 'allow-dep <layer> -> <layer>', got '" + raw +
                "'";
        return false;
      }
      for (const std::string& name : {a, b}) {
        if (!layer_declared(out, name)) {
          error = "lint.rules:" + std::to_string(lineno) +
                  ": allow-dep names undeclared layer '" + name +
                  "' (declare layers before their edges)";
          return false;
        }
      }
      out.allow_deps.emplace_back(a, b);
      std::string witness;
      if (allow_deps_cyclic(out, witness)) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": allow-dep edges form a cycle through layer '" + witness +
                "'; the layering must be a DAG";
        return false;
      }
      continue;
    }

    std::string id, eq;
    if (!(ls >> id >> eq) || eq != "=") {
      error = "lint.rules:" + std::to_string(lineno) +
              ": expected '<verb> <rule> = ...', got '" + raw + "'";
      return false;
    }
    if (!is_known_rule(id)) {
      error = "lint.rules:" + std::to_string(lineno) + ": unknown rule '" +
              id + "'";
      return false;
    }
    RuleConfig& rc = out.rules[id];  // default-constructs enabled rule
    if (verb == "rule") {
      std::string state;
      if (!(ls >> state) || (state != "on" && state != "off")) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": 'rule " + id + " =' needs 'on' or 'off'";
        return false;
      }
      rc.enabled = state == "on";
    } else if (verb == "scope" || verb == "exempt") {
      std::vector<std::string>& dst = verb == "scope" ? rc.scope : rc.exempt;
      std::string path;
      bool any = false;
      while (ls >> path) {
        dst.push_back(path);
        any = true;
      }
      if (!any) {
        error = "lint.rules:" + std::to_string(lineno) + ": '" + verb + " " +
                id + " =' needs at least one path prefix";
        return false;
      }
    } else {
      error = "lint.rules:" + std::to_string(lineno) + ": unknown verb '" +
              verb + "' (expected rule/scope/exempt/layer/allow-dep)";
      return false;
    }
  }
  return true;
}

bool load_config(const std::string& path, Config& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open config file '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str(), out, error);
}

}  // namespace parcel::lint
