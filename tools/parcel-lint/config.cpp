#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace parcel::lint {

const std::vector<std::string>& all_rule_ids() {
  static const std::vector<std::string> kIds = {
      "nondet-random",        // std::random_device, rand(), srand(), ...
      "nondet-time",          // time(), clock(), std::chrono wall clocks
      "nondet-getenv",        // getenv outside sanctioned directories
      "unordered-iter",       // iterating unordered containers in
                              // result/trace-affecting TUs
      "header-pragma-once",   // headers must open with #pragma once
      "header-using-namespace",  // no `using namespace` in headers
      "float-double-drift",   // float in energy/byte accounting paths
      "lint-suppression",     // malformed/unexplained allow(...) comments
  };
  return kIds;
}

bool is_known_rule(const std::string& id) {
  const auto& ids = all_rule_ids();
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

bool Config::applies(const std::string& rule,
                     const std::string& rel_path) const {
  auto it = rules.find(rule);
  const RuleConfig def;
  const RuleConfig& rc = it == rules.end() ? def : it->second;
  if (!rc.enabled) return false;
  auto has_prefix = [&](const std::string& prefix) {
    return rel_path.rfind(prefix, 0) == 0;
  };
  if (!rc.scope.empty() &&
      std::none_of(rc.scope.begin(), rc.scope.end(), has_prefix)) {
    return false;
  }
  return std::none_of(rc.exempt.begin(), rc.exempt.end(), has_prefix);
}

bool parse_config(const std::string& text, Config& out, std::string& error) {
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    auto hash = raw.find('#');
    std::string body = hash == std::string::npos ? raw : raw.substr(0, hash);
    std::istringstream ls(body);
    std::string verb;
    if (!(ls >> verb)) continue;  // blank / comment-only line
    std::string id, eq;
    if (!(ls >> id >> eq) || eq != "=") {
      error = "lint.rules:" + std::to_string(lineno) +
              ": expected '<verb> <rule> = ...', got '" + raw + "'";
      return false;
    }
    if (!is_known_rule(id)) {
      error = "lint.rules:" + std::to_string(lineno) + ": unknown rule '" +
              id + "'";
      return false;
    }
    RuleConfig& rc = out.rules[id];  // default-constructs enabled rule
    if (verb == "rule") {
      std::string state;
      if (!(ls >> state) || (state != "on" && state != "off")) {
        error = "lint.rules:" + std::to_string(lineno) +
                ": 'rule " + id + " =' needs 'on' or 'off'";
        return false;
      }
      rc.enabled = state == "on";
    } else if (verb == "scope" || verb == "exempt") {
      std::vector<std::string>& dst = verb == "scope" ? rc.scope : rc.exempt;
      std::string path;
      bool any = false;
      while (ls >> path) {
        dst.push_back(path);
        any = true;
      }
      if (!any) {
        error = "lint.rules:" + std::to_string(lineno) + ": '" + verb + " " +
                id + " =' needs at least one path prefix";
        return false;
      }
    } else {
      error = "lint.rules:" + std::to_string(lineno) + ": unknown verb '" +
              verb + "' (expected rule/scope/exempt)";
      return false;
    }
  }
  return true;
}

bool load_config(const std::string& path, Config& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open config file '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_config(ss.str(), out, error);
}

}  // namespace parcel::lint
