// layer-violation: enforce the declared layering DAG over the include
// graph.  lint.rules declares layers as path-prefix sets and sanctions
// directed edges:
//
//   layer base = src/util src/core/arena.hpp
//   layer net  = src/net
//   allow-dep net -> base
//
// A quoted include whose target lands in a different layer is an error
// unless the edge (or a transitive chain of declared edges) sanctions it.
// Include cycles between files are reported under the same rule — a cycle
// is a layering violation no matter which layers it crosses.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"
#include "lint.hpp"

namespace parcel::lint {
namespace {

std::string dirname(const std::string& path) {
  auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Resolve a quoted include against the known file set the way the build
// does: relative to the including file's directory first, then the
// conventional roots.  Unresolvable targets (system headers spelled with
// quotes, generated files) are skipped rather than guessed at.
std::string resolve_include(const std::string& includer,
                            const std::string& target,
                            const std::set<std::string>& known_files) {
  std::vector<std::string> candidates;
  const std::string dir = dirname(includer);
  if (!dir.empty()) candidates.push_back(dir + "/" + target);
  candidates.push_back("src/" + target);
  candidates.push_back(target);
  for (const std::string& c : candidates) {
    if (known_files.count(c) > 0) return c;
  }
  return std::string();
}

struct Edge {
  std::string from;
  std::string to;
  int line = 0;
};

}  // namespace

void check_layers(const ProgramIndex& index, const Config& config,
                  const std::set<std::string>& known_files, FileReport& rep) {
  if (config.layers.empty()) return;

  // Resolve every live (non-suppressed) include edge once; the same edge
  // list feeds both the DAG check and cycle detection.
  std::vector<Edge> edges;
  std::map<const ProgramIndex::FileEntry*, bool> reportable;
  std::map<std::string, const ProgramIndex::FileEntry*> by_path;
  for (const ProgramIndex::FileEntry& fe : index.files) {
    by_path[fe.file.rel_path] = &fe;
  }
  for (const ProgramIndex::FileEntry& fe : index.files) {
    for (const IncludeDirective& inc : fe.file.lex->includes) {
      if (internal::suppression_covers(*fe.file.lex, "layer-violation",
                                       inc.line)) {
        continue;
      }
      const std::string target =
          resolve_include(fe.file.rel_path, inc.path, known_files);
      if (target.empty() || target == fe.file.rel_path) continue;
      edges.push_back({fe.file.rel_path, target, inc.line});
    }
  }

  // Pass 1: every edge must stay inside its layer or follow a sanctioned
  // allow-dep chain.  Files outside any declared layer are unconstrained.
  for (const Edge& e : edges) {
    const ProgramIndex::FileEntry* fe = by_path[e.from];
    if (fe == nullptr || !fe->file.reportable) continue;
    if (!config.applies("layer-violation", e.from)) continue;
    const std::string from_layer = config.layer_of(e.from);
    const std::string to_layer = config.layer_of(e.to);
    if (from_layer.empty() || to_layer.empty()) continue;
    if (config.dep_allowed(from_layer, to_layer)) continue;
    rep.findings.push_back(
        {e.from, e.line, "layer-violation",
         "include \"" + e.to + "\" reaches layer '" + to_layer +
             "' from layer '" + from_layer +
             "', which the layer DAG does not sanction; declare "
             "'allow-dep " + from_layer + " -> " + to_layer +
             "' in lint.rules only if the direction is truly intended"});
  }

  // Pass 2: file-level include cycles.  Iterative DFS with tri-state
  // marks over the resolved edges; each cycle is reported once, at the
  // lexicographically smallest member so the diagnostic is stable.
  std::map<std::string, std::vector<std::size_t>> out_edges;
  std::set<std::string> nodes;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    out_edges[edges[i].from].push_back(i);
    nodes.insert(edges[i].from);
    nodes.insert(edges[i].to);
  }
  std::map<std::string, int> state;  // 0 unvisited, 1 in-stack, 2 done
  std::set<std::vector<std::string>> reported_cycles;
  for (const std::string& start : nodes) {
    if (state[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack = {{start, 0}};
    state[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      std::vector<std::size_t>& out = out_edges[node];
      if (next >= out.size()) {
        state[node] = 2;
        stack.pop_back();
        continue;
      }
      const Edge& e = edges[out[next++]];
      if (state[e.to] == 1) {
        // Unwind the stack to recover the cycle members.
        std::vector<std::string> cycle;
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          cycle.push_back(it->first);
          if (it->first == e.to) break;
        }
        std::reverse(cycle.begin(), cycle.end());
        // Canonical rotation: start at the smallest path.
        auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        if (!reported_cycles.insert(cycle).second) continue;
        const std::string& anchor = cycle.front();
        const ProgramIndex::FileEntry* fe = by_path[anchor];
        if (fe == nullptr || !fe->file.reportable) continue;
        if (!config.applies("layer-violation", anchor)) continue;
        // Line: the anchor's include of the next cycle member.
        int line = 1;
        const std::string& succ = cycle.size() > 1 ? cycle[1] : anchor;
        for (std::size_t ei : out_edges[anchor]) {
          if (edges[ei].to == succ) {
            line = edges[ei].line;
            break;
          }
        }
        std::string path;
        for (const std::string& member : cycle) path += member + " -> ";
        path += anchor;
        rep.findings.push_back({anchor, line, "layer-violation",
                                "include cycle: " + path});
        continue;
      }
      if (state[e.to] == 0) {
        state[e.to] = 1;
        stack.emplace_back(e.to, 0);
      }
    }
  }
}

}  // namespace parcel::lint
