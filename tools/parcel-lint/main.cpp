#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return parcel::lint::run_cli(args, std::cout, std::cerr);
}
