#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"
#include "lint.hpp"

namespace parcel::lint {
namespace internal {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, char c) {
  return t.kind == TokenKind::kPunct && t.text[0] == c;
}

std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], '<')) ++depth;
    if (is_punct(toks[i], '>') && --depth == 0) return i + 1;
  }
  return i;
}

namespace {

// The call-site heuristics below look one token back: `.time(` / `->time(`
// are member calls on project types (deterministic by construction) and
// are not flagged; `std::time(` and bare `time(` are.
bool preceded_by_member_access(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(toks[i - 1], '.')) return true;
  if (i >= 2 && is_punct(toks[i - 1], '>') && is_punct(toks[i - 2], '-'))
    return true;
  return false;
}

bool followed_by_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && is_punct(toks[i + 1], '(');
}

// `double time() const` declares a project method named time(); the token
// before the name is its return type.  A *call* is preceded by punctuation
// (`;`, `=`, `(`, `,`, `:`) or a statement keyword like `return` — never
// by a plain type name.
bool preceded_by_type_name(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  const Token& p = toks[i - 1];
  if (p.kind != TokenKind::kIdentifier) return false;
  static const std::set<std::string> kStatementKeywords = {
      "return", "throw", "case", "else", "do", "goto", "co_return",
      "co_await", "co_yield"};
  return kStatementKeywords.count(p.text) == 0;
}

}  // namespace

void collect_unordered(const std::vector<Token>& toks, UnorderedDecls& out) {
  out.types.insert({"unordered_map", "unordered_set", "unordered_multimap",
                    "unordered_multiset"});
  // Pass 1: `using Alias = ... unordered_* ... ;` makes Alias unordered too.
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], "using") ||
        toks[i + 1].kind != TokenKind::kIdentifier ||
        !is_punct(toks[i + 2], '=')) {
      continue;
    }
    for (std::size_t j = i + 3; j < toks.size() && !is_punct(toks[j], ';');
         ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          out.types.count(toks[j].text) > 0) {
        out.types.insert(toks[i + 1].text);
        break;
      }
    }
  }
  // Pass 2: declarations `UnorderedType<...> [*&|const] name`.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier ||
        out.types.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], '<'))
      j = skip_template_args(toks, j);
    while (j < toks.size() &&
           (is_punct(toks[j], '&') || is_punct(toks[j], '*') ||
            is_ident(toks[j], "const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
        out.types.count(toks[j].text) == 0) {
      out.vars.insert(toks[j].text);
    }
  }
}

void collect_nondet_events(const std::vector<Token>& toks,
                           std::vector<RawEvent>& out) {
  static const std::set<std::string> kRandomAlways = {"random_device"};
  static const std::set<std::string> kRandomCalls = {
      "rand", "srand", "drand48", "lrand48", "random_shuffle"};
  static const std::set<std::string> kClockTypes = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::set<std::string> kTimeCalls = {
      "time",   "clock",     "gettimeofday", "clock_gettime",
      "localtime", "gmtime", "mktime"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kRandomAlways.count(t.text) > 0) {
      out.push_back({"nondet-random", t.text, t.line});
    } else if (kRandomCalls.count(t.text) > 0 && followed_by_call(toks, i) &&
               !preceded_by_member_access(toks, i) &&
               !preceded_by_type_name(toks, i)) {
      out.push_back({"nondet-random", t.text, t.line});
    }
    if (kClockTypes.count(t.text) > 0) {
      out.push_back({"nondet-time", t.text, t.line});
    } else if (kTimeCalls.count(t.text) > 0 && followed_by_call(toks, i) &&
               !preceded_by_member_access(toks, i) &&
               !preceded_by_type_name(toks, i)) {
      out.push_back({"nondet-time", t.text, t.line});
    }
    if (t.text == "getenv" || t.text == "secure_getenv") {
      out.push_back({"nondet-getenv", t.text, t.line});
    }
  }
}

void collect_unordered_events(const std::vector<Token>& toks,
                              const UnorderedDecls& decls,
                              std::vector<RawEvent>& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions an unordered variable.
    if (is_ident(toks[i], "for") && i + 1 < toks.size() &&
        is_punct(toks[i + 1], '(')) {
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = toks.size();
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], '(')) ++depth;
        if (is_punct(toks[j], ')') && --depth == 0) {
          close = j;
          break;
        }
        // A single ':' at depth 1 is the range-for separator; '::' is not.
        if (depth == 1 && is_punct(toks[j], ':') && colon == 0 &&
            !(j > 0 && is_punct(toks[j - 1], ':')) &&
            !(j + 1 < toks.size() && is_punct(toks[j + 1], ':'))) {
          colon = j;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier &&
              decls.vars.count(toks[j].text) > 0) {
            out.push_back({"unordered-iter", toks[j].text, toks[j].line});
            break;
          }
        }
      }
    }
    // Explicit iterator walk: var.begin()/cbegin().  A bare end()/cend()
    // is not flagged — `find(k) != end()` is the dominant lookup idiom
    // and never observes iteration order.
    if (toks[i].kind == TokenKind::kIdentifier &&
        decls.vars.count(toks[i].text) > 0 && i + 2 < toks.size() &&
        is_punct(toks[i + 1], '.') &&
        toks[i + 2].kind == TokenKind::kIdentifier) {
      const std::string& m = toks[i + 2].text;
      if ((m == "begin" || m == "cbegin") && followed_by_call(toks, i + 2)) {
        out.push_back({"unordered-iter", toks[i].text, toks[i].line});
      }
    }
  }
}

std::string direct_message(const std::string& rule, const std::string& token) {
  if (rule == "nondet-random") {
    if (token == "random_device") {
      return "'" + token + "' is a nondeterministic seed source; derive "
             "seeds from util::Rng / the run config instead";
    }
    return "'" + token + "()' breaks replay determinism; use util::Rng "
           "streams forked from the run seed";
  }
  if (rule == "nondet-time") {
    if (token == "system_clock" || token == "steady_clock" ||
        token == "high_resolution_clock") {
      return "'std::chrono::" + token + "' reads the wall clock; simulated "
             "time must come from sim::Scheduler::now()";
    }
    return "'" + token + "()' reads the wall clock; simulated time must "
           "come from sim::Scheduler::now()";
  }
  if (rule == "nondet-getenv") {
    return "'" + token + "' makes behaviour depend on the environment; "
           "only util/ and bench/ may read env toggles";
  }
  // unordered-iter
  return "iteration over unordered container '" + token +
         "': iteration order is hash-seed dependent and leaks into "
         "results/traces; use std::map/std::vector or sort first";
}

bool suppression_covers(const LexOutput& lx, const std::string& rule,
                        int line) {
  for (const Suppression& s : lx.suppressions) {
    if (s.rule != rule || s.reason.empty()) continue;
    if (s.line == line || (s.standalone && s.line + 1 == line)) return true;
  }
  return false;
}

}  // namespace internal

namespace {

using internal::is_ident;
using internal::is_punct;

bool is_header(const std::string& path) {
  return path.ends_with(".hpp") || path.ends_with(".h");
}

void add(FileReport& rep, const std::string& path, int line,
         const char* rule, std::string message) {
  rep.findings.push_back({path, line, rule, std::move(message)});
}

void check_header_hygiene(const std::string& path,
                          const std::vector<Token>& toks, const Config& cfg,
                          FileReport& rep) {
  if (!is_header(path)) return;
  if (cfg.applies("header-pragma-once", path)) {
    const bool ok = toks.size() >= 3 && is_punct(toks[0], '#') &&
                    is_ident(toks[1], "pragma") && is_ident(toks[2], "once");
    if (!ok) {
      add(rep, path, 1, "header-pragma-once",
          "header must start with '#pragma once' (before any other code)");
    }
  }
  if (cfg.applies("header-using-namespace", path)) {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
        add(rep, path, toks[i].line, "header-using-namespace",
            "'using namespace' in a header pollutes every includer; "
            "qualify names instead");
      }
    }
  }
}

void check_float_drift(const std::string& path, const std::vector<Token>& toks,
                       FileReport& rep) {
  for (const Token& t : toks) {
    if (is_ident(t, "float")) {
      add(rep, path, t.line, "float-double-drift",
          "'float' in an accounting path: energy/byte arithmetic must stay "
          "double end-to-end or replay sums drift across platforms");
    }
  }
}

// Per-file rules over one lexed file: direct nondet/unordered events plus
// header hygiene and float drift.  `decls` already merges the companion.
void lint_one_file(const std::string& path, const LexOutput& lx,
                   const internal::UnorderedDecls& decls, const Config& config,
                   FileReport& rep) {
  std::vector<internal::RawEvent> events;
  internal::collect_nondet_events(lx.tokens, events);
  if (config.applies("unordered-iter", path)) {
    internal::collect_unordered_events(lx.tokens, decls, events);
  }
  for (const internal::RawEvent& e : events) {
    if (!config.applies(e.rule, path)) continue;
    add(rep, path, e.line, e.rule.c_str(),
        internal::direct_message(e.rule, e.token));
  }
  check_header_hygiene(path, lx.tokens, config, rep);
  if (config.applies("float-double-drift", path)) {
    check_float_drift(path, lx.tokens, rep);
  }
}

// Validate suppressions, apply them to `rep`'s findings for `path`, and
// report unexplained allow(...) comments.  A typo'd rule id must be a
// hard error (exit 2), or the gate it meant to bypass silently stays off.
void apply_suppressions(const std::string& path, const LexOutput& lx,
                        const Config& config, FileReport& rep) {
  for (const Suppression& s : lx.suppressions) {
    if (!is_known_rule(s.rule)) {
      rep.errors.push_back(path + ":" + std::to_string(s.line) +
                           ": suppression names unknown rule '" + s.rule +
                           "'");
    }
  }
  if (!rep.errors.empty()) return;

  // A suppression covers findings on its own line; a comment that stands
  // alone on its line covers the next line too.  An empty reason does not
  // suppress — it becomes a finding itself, so the shipped tree can never
  // carry an unexplained allow(...).
  std::vector<Finding> kept;
  for (Finding& f : rep.findings) {
    if (f.path == path &&
        internal::suppression_covers(lx, f.rule, f.line)) {
      continue;
    }
    kept.push_back(std::move(f));
  }
  rep.findings = std::move(kept);

  if (config.applies("lint-suppression", path)) {
    for (const Suppression& s : lx.suppressions) {
      if (s.reason.empty()) {
        add(rep, path, s.line, "lint-suppression",
            "allow(" + s.rule + ") without a reason: every suppression "
            "must explain itself");
      }
    }
  }
}

void sort_findings(FileReport& rep) {
  std::sort(rep.findings.begin(), rep.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

FileReport lint_unit(const UnitSource& unit, const Config& config) {
  FileReport rep;

  internal::UnorderedDecls decls;
  internal::collect_unordered(unit.lex->tokens, decls);
  if (unit.header_lex != nullptr) {
    internal::collect_unordered(unit.header_lex->tokens, decls);
  }

  lint_one_file(unit.rel_path, *unit.lex, decls, config, rep);
  apply_suppressions(unit.rel_path, *unit.lex, config, rep);

  // The companion header is linted from the same unit (never a second
  // time as a standalone input), with the merged declaration context.
  if (unit.header_lex != nullptr && unit.report_header) {
    FileReport hdr;
    lint_one_file(unit.header_path, *unit.header_lex, decls, config, hdr);
    apply_suppressions(unit.header_path, *unit.header_lex, config, hdr);
    for (Finding& f : hdr.findings) rep.findings.push_back(std::move(f));
    for (std::string& e : hdr.errors) rep.errors.push_back(std::move(e));
  }

  if (!rep.errors.empty()) rep.findings.clear();
  sort_findings(rep);
  return rep;
}

FileReport lint_source(const std::string& rel_path, const std::string& source,
                       const Config& config,
                       const std::string* companion_header_source) {
  LexOutput lx = lex(source);
  LexOutput hdr;
  UnitSource unit;
  unit.rel_path = rel_path;
  unit.lex = &lx;
  if (companion_header_source != nullptr) {
    hdr = lex(*companion_header_source);
    unit.header_lex = &hdr;
    unit.report_header = false;  // decl context only, matching v1 behavior
  }
  return lint_unit(unit, config);
}

}  // namespace parcel::lint
