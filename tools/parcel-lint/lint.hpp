#pragma once
// parcel-lint: a deliberately small, dependency-free static analyzer that
// enforces the repo's determinism and hygiene invariants at CI time.
//
// The replay pipeline (DESIGN.md §5) promises bitwise-identical RunResult
// and PacketTrace output across jobs=1/2/4 and across fault-seed replays.
// That promise is trivially broken by a stray wall-clock read, an
// std::random_device, or iteration order leaking out of an unordered
// container — none of which the compiler objects to.  parcel-lint
// tokenizes every translation unit and rejects those constructs before
// they can turn into a flaky grid test.
//
// v2 (DESIGN.md §14) grows the analyzer from per-file token rules into a
// whole-program pass: every function definition across the tree is
// indexed once, a conservative name-based call graph is built from the
// shared index, and three program-level properties are enforced on top of
// the per-file rules:
//   * nondet-transitive — taint from nondeterminism sources propagates
//     through call chains; calling a helper that (transitively) reads the
//     wall clock is flagged at the call site with the full chain.
//   * layer-violation  — the subsystem dependency DAG declared in
//     lint.rules (layer / allow-dep) is enforced on the include graph.
//   * mutex-unannotated — every mutex member must name the state it
//     guards via the PARCEL_GUARDED_BY annotations
//     (src/util/thread_annotations.hpp).
//
// The analyzer is intentionally token-based, not AST-based: it must build
// in seconds with no external dependencies, run on every CI invocation,
// and be auditable by reading a handful of files.  Precision comes from
// the rule scoping in lint.rules plus the inline suppression grammar
//   // parcel-lint: allow(<rule>) <reason>
// rather than from type resolution.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace parcel::lint {

// ---------------------------------------------------------------------------
// Tokens

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kString,      // string literal (contents dropped)
  kChar,        // character literal (contents dropped)
  kPunct,       // one punctuation character
};

struct Token {
  TokenKind kind;
  std::string text;  // empty for kString/kChar
  int line;          // 1-based
};

// One inline suppression comment: `parcel-lint: allow(<rule>) <reason>`.
struct Suppression {
  std::string rule;
  std::string reason;  // empty reason is itself a finding
  int line;            // line the comment appears on
  bool standalone;     // comment is the only thing on its line -> also
                       // covers the next line
};

// One `#include "..."` directive.  Angle-bracket includes are system
// headers with no layer, so only the quoted form is captured.
struct IncludeDirective {
  std::string path;  // the literal include string, e.g. "web/html.hpp"
  int line;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;
  std::set<int> code_lines;  // lines that carry at least one token
};

// Tokenize C++ source: comments, string/char literals (incl. raw strings)
// are recognized and their contents never reach rule matching (except
// `#include "..."` targets, which are captured into `includes`).
LexOutput lex(const std::string& source);

// ---------------------------------------------------------------------------
// Rules & configuration

// Every rule the analyzer knows.  Adding a rule means: add the id here,
// implement it in rules.cpp / index.cpp / layers.cpp, add a positive and
// a negative fixture, and document it in DESIGN.md §9/§14.
const std::vector<std::string>& all_rule_ids();
bool is_known_rule(const std::string& id);

struct RuleConfig {
  bool enabled = true;
  // If non-empty, the rule only applies to files whose repo-relative path
  // starts with one of these prefixes.
  std::vector<std::string> scope;
  // Files whose path starts with one of these prefixes are exempt.
  std::vector<std::string> exempt;
};

// One `layer <name> = <prefix>...` declaration.  A file belongs to the
// layer with the longest matching prefix, so a single utility header can
// be carved out of its directory (e.g. src/core/arena.hpp into `base`
// while the rest of src/core stays in `core`).
struct LayerSpec {
  std::string name;
  std::vector<std::string> prefixes;
};

struct Config {
  std::map<std::string, RuleConfig> rules;  // keyed by rule id

  // Layering DAG (`layer` / `allow-dep` verbs).  allow_deps edges are the
  // *direct* sanctioned dependencies; reachability over them defines the
  // full set of legal include directions.  parse_config rejects cyclic
  // declarations, so this is a DAG by construction.
  std::vector<LayerSpec> layers;
  std::vector<std::pair<std::string, std::string>> allow_deps;  // a -> b

  bool applies(const std::string& rule, const std::string& rel_path) const;

  // Layer of a repo-relative path by longest prefix match ("" if none).
  std::string layer_of(const std::string& rel_path) const;

  // May a file in layer `from` include a file in layer `to`?  True when
  // from == to or `to` is reachable from `from` over allow_deps.
  bool dep_allowed(const std::string& from, const std::string& to) const;
};

// Parse a lint.rules file.  Returns false and fills `error` on malformed
// input, unknown rule ids (typos must fail the build, not silently
// disable a gate), allow-dep edges naming undeclared layers, or a cyclic
// allow-dep graph.
bool parse_config(const std::string& text, Config& out, std::string& error);
bool load_config(const std::string& path, Config& out, std::string& error);

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string path;  // repo-relative
  int line;
  std::string rule;
  std::string message;
};

struct FileReport {
  std::vector<Finding> findings;
  // Hard errors (unknown rule id inside an allow(...) comment): these are
  // not suppressible and map to exit code 2.
  std::vector<std::string> errors;
};

// ---------------------------------------------------------------------------
// Lint units (per-file rules)

// One lint unit: a source file plus (for a .cpp) its already-lexed
// sibling header, so member containers declared in the class body are
// known when the .cpp iterates them.  The header's own findings are
// reported from the same unit when `report_header` is set — never from a
// second standalone pass, so nothing is double-linted.
struct UnitSource {
  std::string rel_path;                  // path used for scoping/reporting
  const LexOutput* lex = nullptr;        // required
  std::string header_path;               // companion header ("" if none)
  const LexOutput* header_lex = nullptr;
  bool report_header = false;  // header was itself an input -> report its
                               // findings from this unit
};

// Run the per-file rules over one unit.
FileReport lint_unit(const UnitSource& unit, const Config& config);

// Back-compat convenience used by tests: lex and lint a single source
// with an optional companion header (decls only, header not reported).
FileReport lint_source(const std::string& rel_path, const std::string& source,
                       const Config& config,
                       const std::string* companion_header_source);

// ---------------------------------------------------------------------------
// Whole-program passes

// One file participating in the whole-program passes.  `reportable` marks
// files that were actually requested on the command line; companion
// headers pulled in only for context still feed the index (their function
// bodies can taint) but never produce findings themselves.
struct ProgramFile {
  std::string rel_path;
  const LexOutput* lex = nullptr;
  bool reportable = true;
  // Sibling header of a .cpp (or vice versa): contributes container
  // declarations so unordered iteration over members is seen as a taint
  // source, exactly like the per-file unordered-iter rule.
  const LexOutput* companion = nullptr;
};

// The cross-file index built once and shared by every whole-program rule
// (the "file index" cache: each file is lexed and indexed exactly once
// per run regardless of how many rules consume it).
struct ProgramIndex {
  // One indexed function definition.  Bodies are token ranges into the
  // owning file's token stream; lambdas and local classes inside a body
  // attribute to the enclosing function (conservative).
  struct FunctionDef {
    std::string name;       // bare name ("env_flag")
    std::string qualified;  // qualified when written ("util::env_flag")
    int line = 0;
    std::size_t body_begin = 0;  // token index of '{'
    std::size_t body_end = 0;    // token index one past matching '}'
  };
  // One call occurrence `name(` inside a function body.
  struct CallSite {
    std::string callee;  // bare callee name
    int line = 0;
    int caller = -1;  // index into FileEntry::defs
  };
  // One banned construct (taint source) with its direct-rule id.
  struct SourceEvent {
    std::string rule;   // nondet-random / nondet-time / nondet-getenv /
                        // unordered-iter
    std::string token;  // offending identifier, e.g. "getenv"
    int line = 0;
    int enclosing = -1;  // index into FileEntry::defs, -1 at file scope
    bool suppressed = false;  // an inline allow(<rule>) with reason covers
                              // it -> audited, does not taint
  };
  // One mutex-typed member declaration at class scope.
  struct MutexMember {
    std::string name;
    std::string type;  // as written, e.g. "std::mutex" or "util::Mutex"
    int line = 0;
  };
  struct FileEntry {
    ProgramFile file;
    std::vector<FunctionDef> defs;
    std::vector<CallSite> calls;
    std::vector<SourceEvent> events;
    std::vector<MutexMember> mutexes;
    // Names X appearing as PARCEL_GUARDED_BY(X) / PARCEL_PT_GUARDED_BY(X)
    // anywhere in this file.
    std::set<std::string> guarded_names;
  };
  std::vector<FileEntry> files;
};

ProgramIndex build_program_index(const std::vector<ProgramFile>& files);

// nondet-transitive: propagate determinism taint through the call graph.
// A function whose body contains an *unsuppressed* banned construct
// (nondet-random / nondet-time / nondet-getenv source, or iteration over
// an unordered container) is a taint root even where the direct rule is
// scoped out (that is the point: util/ and bench/ are exempt from the
// direct rules, but result-affecting code must not call into their
// nondeterminism).  Taint flows caller-ward over a conservative
// name-based call graph; an edge is severed — and the finding silenced —
// by `// parcel-lint: allow(nondet-transitive) <reason>` on the call
// line.
void check_nondet_transitive(const ProgramIndex& index, const Config& config,
                             FileReport& rep);

// layer-violation: enforce the declared layer DAG on the include graph
// and reject include cycles.  `known_files` is the set of repo-relative
// paths used to resolve include strings (tried as sibling of the
// includer, then under src/, then repo-relative).
void check_layers(const ProgramIndex& index, const Config& config,
                  const std::set<std::string>& known_files, FileReport& rep);

// mutex-unannotated: every mutex-typed member must be named by a
// PARCEL_GUARDED_BY / PARCEL_PT_GUARDED_BY annotation in its lint unit.
void check_mutex_annotations(const ProgramIndex& index, const Config& config,
                             FileReport& rep);

// ---------------------------------------------------------------------------
// CLI

// argv-style entry point (without argv[0]).  Returns the process exit
// code: 0 clean, 1 findings, 2 usage/config/IO error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace parcel::lint
