#pragma once
// parcel-lint: a deliberately small, dependency-free static analyzer that
// enforces the repo's determinism and hygiene invariants at CI time.
//
// The replay pipeline (DESIGN.md §5) promises bitwise-identical RunResult
// and PacketTrace output across jobs=1/2/4 and across fault-seed replays.
// That promise is trivially broken by a stray wall-clock read, an
// std::random_device, or iteration order leaking out of an unordered
// container — none of which the compiler objects to.  parcel-lint
// tokenizes every translation unit and rejects those constructs before
// they can turn into a flaky grid test.
//
// The analyzer is intentionally token-based, not AST-based: it must build
// in seconds with no external dependencies, run on every CI invocation,
// and be auditable by reading one file.  Precision comes from the rule
// scoping in lint.rules plus the inline suppression grammar
//   // parcel-lint: allow(<rule>) <reason>
// rather than from type resolution.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace parcel::lint {

// ---------------------------------------------------------------------------
// Tokens

enum class TokenKind : std::uint8_t {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kString,      // string literal (contents dropped)
  kChar,        // character literal (contents dropped)
  kPunct,       // one punctuation character
};

struct Token {
  TokenKind kind;
  std::string text;  // empty for kString/kChar
  int line;          // 1-based
};

// One inline suppression comment: `parcel-lint: allow(<rule>) <reason>`.
struct Suppression {
  std::string rule;
  std::string reason;  // empty reason is itself a finding
  int line;            // line the comment appears on
  bool standalone;     // comment is the only thing on its line -> also
                       // covers the next line
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::set<int> code_lines;  // lines that carry at least one token
};

// Tokenize C++ source: comments, string/char literals (incl. raw strings)
// are recognized and their contents never reach rule matching.
LexOutput lex(const std::string& source);

// ---------------------------------------------------------------------------
// Rules & configuration

// Every rule the analyzer knows.  Adding a rule means: add the id here,
// implement it in rules.cpp, add a positive and a negative fixture, and
// document it in DESIGN.md §9.
const std::vector<std::string>& all_rule_ids();
bool is_known_rule(const std::string& id);

struct RuleConfig {
  bool enabled = true;
  // If non-empty, the rule only applies to files whose repo-relative path
  // starts with one of these prefixes.
  std::vector<std::string> scope;
  // Files whose path starts with one of these prefixes are exempt.
  std::vector<std::string> exempt;
};

struct Config {
  std::map<std::string, RuleConfig> rules;  // keyed by rule id

  bool applies(const std::string& rule, const std::string& rel_path) const;
};

// Parse a lint.rules file.  Returns false and fills `error` on malformed
// input or unknown rule ids (typos must fail the build, not silently
// disable a gate).
bool parse_config(const std::string& text, Config& out, std::string& error);
bool load_config(const std::string& path, Config& out, std::string& error);

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string path;  // repo-relative
  int line;
  std::string rule;
  std::string message;
};

struct FileReport {
  std::vector<Finding> findings;
  // Hard errors (unknown rule id inside an allow(...) comment): these are
  // not suppressible and map to exit code 2.
  std::vector<std::string> errors;
};

// Lint one file's contents.  `rel_path` is the path used for scoping and
// reporting; `companion_header` is the already-lexed sibling .hpp of a
// .cpp (so member containers declared in the header are known when the
// .cpp iterates them), or nullptr.
FileReport lint_source(const std::string& rel_path, const std::string& source,
                       const Config& config,
                       const std::string* companion_header_source);

// ---------------------------------------------------------------------------
// CLI

// argv-style entry point (without argv[0]).  Returns the process exit
// code: 0 clean, 1 findings, 2 usage/config/IO error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace parcel::lint
