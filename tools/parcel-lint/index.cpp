// Whole-program index: function definitions, a conservative name-based
// call graph, taint sources, and mutex members — built once per run and
// shared by every program-level rule (nondet-transitive here,
// layer-violation in layers.cpp, mutex-unannotated below).
//
// The indexer is token-based like the rest of parcel-lint.  Function
// definitions are recognized as `name(...) ... {` at namespace/class
// scope (constructor init lists and trailing return types are skipped);
// lambdas and local classes attribute to their enclosing function, which
// is the conservative direction for taint.  Call extraction is
// name-based: `x(...)` and `obj.x(...)` both record callee `x`, so any
// project function sharing the name is considered a possible target —
// over-approximation is the stated policy, and the per-edge
// allow(nondet-transitive) suppression is the escape hatch.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "internal.hpp"
#include "lint.hpp"

namespace parcel::lint {
namespace {

using internal::is_ident;
using internal::is_punct;
using internal::skip_template_args;

bool keyword_not_callable(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "new", "delete", "throw", "static_assert",
      "alignas", "requires", "noexcept", "operator", "defined",
      "co_await", "co_yield", "co_return", "asm", "using", "typedef",
      "template", "typename", "class", "struct", "union", "enum",
      "namespace", "public", "private", "protected", "case", "default",
      "else", "do", "goto", "try", "const", "constexpr", "consteval",
      "constinit", "static", "inline", "extern", "explicit", "virtual",
      "friend", "mutable", "volatile", "register", "thread_local"};
  return kKeywords.count(text) > 0;
}

// Find the index one past the ')' matching toks[i] == '('.
std::size_t skip_parens(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], '(')) ++depth;
    if (is_punct(toks[i], ')') && --depth == 0) return i + 1;
  }
  return i;
}

std::size_t skip_braces(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], '{')) ++depth;
    if (is_punct(toks[i], '}') && --depth == 0) return i + 1;
  }
  return i;
}

// Given `name` at toks[i] with toks[i+1] == '(', decide whether this is a
// function definition; on success return the index of the body '{'.
// Walks the parameter list, trailing qualifiers (const/noexcept/
// override/final), a trailing return type, and a constructor init list.
// Returns 0 on mismatch (index 0 can never start a body).
std::size_t match_function_body(const std::vector<Token>& toks,
                                std::size_t i) {
  std::size_t k = skip_parens(toks, i + 1);
  if (k == i + 1 || k >= toks.size()) return 0;
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (is_punct(t, '{')) return k;
    if (t.kind == TokenKind::kIdentifier) {
      // const / noexcept / override / final / mutable / requires, or a
      // trailing-return-type token.  noexcept(...) skips its argument.
      if (t.text == "noexcept" && k + 1 < toks.size() &&
          is_punct(toks[k + 1], '(')) {
        k = skip_parens(toks, k + 1);
        continue;
      }
      ++k;
      continue;
    }
    if (is_punct(t, '<')) {
      k = skip_template_args(toks, k);
      continue;
    }
    if (is_punct(t, '*') || is_punct(t, '&')) {
      ++k;
      continue;
    }
    if (is_punct(t, '-') && k + 1 < toks.size() &&
        is_punct(toks[k + 1], '>')) {
      k += 2;  // trailing return type arrow
      continue;
    }
    if (is_punct(t, ':') && k + 1 < toks.size() &&
        is_punct(toks[k + 1], ':')) {
      k += 2;  // '::' inside a trailing return type
      continue;
    }
    if (is_punct(t, ':')) {
      // Constructor init list: `: member(expr), Base{expr} ... {`.
      ++k;
      while (k < toks.size()) {
        // member name (possibly qualified / templated)
        while (k < toks.size() &&
               (toks[k].kind == TokenKind::kIdentifier ||
                is_punct(toks[k], ':'))) {
          ++k;
        }
        if (k < toks.size() && is_punct(toks[k], '<')) {
          k = skip_template_args(toks, k);
        }
        if (k >= toks.size()) return 0;
        if (is_punct(toks[k], '(')) {
          k = skip_parens(toks, k);
        } else if (is_punct(toks[k], '{')) {
          k = skip_braces(toks, k);
        } else {
          return 0;
        }
        if (k < toks.size() && is_punct(toks[k], ',')) {
          ++k;
          continue;
        }
        if (k < toks.size() && is_punct(toks[k], '{')) return k;
        return 0;
      }
      return 0;
    }
    return 0;  // ';' (declaration), '=' (pure/defaulted), ',', ')', ...
  }
  return 0;
}

// What kind of scope does a '{' open?
enum class ScopeKind { kNamespace, kClass, kEnum, kFunction, kOther };

struct IndexBuilder {
  const std::vector<Token>& toks;
  ProgramIndex::FileEntry& entry;

  void run() {
    std::vector<ScopeKind> scopes;
    // Keyword seen since the last scope boundary (';' '{' '}') that
    // classifies the next '{': namespace/class/struct/union/enum.
    ScopeKind pending = ScopeKind::kOther;
    bool pending_set = false;
    // Body brace index of a function definition just matched.
    std::size_t pending_body = 0;
    std::size_t pending_def = 0;  // index into entry.defs

    auto in_function = [&] {
      return std::find(scopes.begin(), scopes.end(), ScopeKind::kFunction) !=
             scopes.end();
    };
    auto in_enum = [&] {
      return !scopes.empty() && scopes.back() == ScopeKind::kEnum;
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (is_punct(t, '{')) {
        if (pending_body == i) {
          scopes.push_back(ScopeKind::kFunction);
          // Record where the body ends once we know it (patched on pop).
        } else if (pending_set) {
          scopes.push_back(pending);
        } else {
          scopes.push_back(ScopeKind::kOther);
        }
        pending_set = false;
        pending_body = 0;
        continue;
      }
      if (is_punct(t, '}')) {
        if (!scopes.empty()) {
          if (scopes.back() == ScopeKind::kFunction &&
              !entry.defs.empty()) {
            // Close the innermost still-open function body.
            for (std::size_t d = entry.defs.size(); d-- > 0;) {
              if (entry.defs[d].body_end == 0) {
                entry.defs[d].body_end = i + 1;
                break;
              }
            }
          }
          scopes.pop_back();
        }
        pending_set = false;
        pending_body = 0;
        continue;
      }
      if (is_punct(t, ';')) {
        pending_set = false;
        pending_body = 0;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;

      if (t.text == "namespace") {
        pending = ScopeKind::kNamespace;
        pending_set = true;
        continue;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union") {
        // `enum class` stays an enum; the later keyword must not override.
        if (!(pending_set && pending == ScopeKind::kEnum)) {
          pending = ScopeKind::kClass;
          pending_set = true;
        }
        continue;
      }
      if (t.text == "enum") {
        pending = ScopeKind::kEnum;
        pending_set = true;
        continue;
      }

      // Function definition?  Only at namespace/class/file scope — bodies
      // nest lambdas and local types into their enclosing function.
      if (!in_function() && !in_enum() && i + 1 < toks.size() &&
          is_punct(toks[i + 1], '(') && !keyword_not_callable(t.text)) {
        const std::size_t body = match_function_body(toks, i);
        if (body != 0) {
          ProgramIndex::FunctionDef def;
          def.name = t.text;
          def.qualified = qualified_name(i);
          def.line = t.line;
          def.body_begin = body;
          def.body_end = 0;  // patched when the matching '}' pops
          pending_def = entry.defs.size();
          entry.defs.push_back(std::move(def));
          pending_body = body;
          pending_set = false;
          // Skip ahead to the body brace so parameter names don't look
          // like declarations/classifiers.
          i = body - 1;
          continue;
        }
      }
    }
    // Unterminated bodies (truncated input): close at EOF.
    for (ProgramIndex::FunctionDef& def : entry.defs) {
      if (def.body_end == 0) def.body_end = toks.size();
    }
    (void)pending_def;
  }

  std::string qualified_name(std::size_t i) const {
    std::string name = toks[i].text;
    std::size_t j = i;
    while (j >= 3 && is_punct(toks[j - 1], ':') && is_punct(toks[j - 2], ':') &&
           toks[j - 3].kind == TokenKind::kIdentifier) {
      name = toks[j - 3].text + "::" + name;
      j -= 3;
    }
    return name;
  }
};

int enclosing_def(const ProgramIndex::FileEntry& entry,
                  const std::vector<Token>& toks, int line) {
  for (std::size_t d = 0; d < entry.defs.size(); ++d) {
    const ProgramIndex::FunctionDef& def = entry.defs[d];
    if (def.body_begin >= toks.size() || def.body_end == 0 ||
        def.body_end > toks.size()) {
      continue;
    }
    const int first = toks[def.body_begin].line;
    const int last = toks[def.body_end - 1].line;
    if (line >= first && line <= last) return static_cast<int>(d);
  }
  return -1;
}

void collect_calls(const std::vector<Token>& toks,
                   ProgramIndex::FileEntry& entry) {
  for (std::size_t d = 0; d < entry.defs.size(); ++d) {
    const ProgramIndex::FunctionDef& def = entry.defs[d];
    for (std::size_t i = def.body_begin;
         i + 1 < def.body_end && i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier || !is_punct(toks[i + 1], '(') ||
          keyword_not_callable(t.text)) {
        continue;
      }
      // `std::x(` is a standard-library call, not a project edge.
      if (i >= 3 && is_punct(toks[i - 1], ':') && is_punct(toks[i - 2], ':') &&
          is_ident(toks[i - 3], "std")) {
        continue;
      }
      entry.calls.push_back({t.text, t.line, static_cast<int>(d)});
    }
  }
}

void collect_mutex_members(const std::vector<Token>& toks,
                           ProgramIndex::FileEntry& entry) {
  static const std::set<std::string> kMutexTypes = {
      "mutex",       "shared_mutex", "recursive_mutex",
      "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex",
      "Mutex",       "SharedMutex"};
  // Re-walk scopes (cheap) to know which '{' are class bodies.
  std::vector<ScopeKind> scopes;
  ScopeKind pending = ScopeKind::kOther;
  bool pending_set = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (is_punct(t, '{')) {
      scopes.push_back(pending_set ? pending : ScopeKind::kOther);
      pending_set = false;
      continue;
    }
    if (is_punct(t, '}')) {
      if (!scopes.empty()) scopes.pop_back();
      pending_set = false;
      continue;
    }
    if (is_punct(t, ';')) {
      pending_set = false;
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "namespace") {
      pending = ScopeKind::kNamespace;
      pending_set = true;
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      if (!(pending_set && pending == ScopeKind::kEnum)) {
        pending = ScopeKind::kClass;
        pending_set = true;
      }
      continue;
    }
    if (t.text == "enum") {
      pending = ScopeKind::kEnum;
      pending_set = true;
      continue;
    }
    // Inside a class body: `[std::|util::] MutexType [*&] name [;={]`.
    if (scopes.empty() || scopes.back() != ScopeKind::kClass) continue;
    if (kMutexTypes.count(t.text) == 0) continue;
    std::string type = t.text;
    if (i >= 3 && is_punct(toks[i - 1], ':') && is_punct(toks[i - 2], ':') &&
        toks[i - 3].kind == TokenKind::kIdentifier) {
      type = toks[i - 3].text + "::" + type;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (is_punct(toks[j], '*') || is_punct(toks[j], '&'))) {
      ++j;
    }
    if (j + 1 >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
      continue;  // `using Mutex = ...`, template args, etc.
    }
    const Token& next = toks[j + 1];
    if (is_punct(next, ';') || is_punct(next, '{') || is_punct(next, '=')) {
      entry.mutexes.push_back({toks[j].text, type, t.line});
    }
  }
}

void collect_guarded_names(const std::vector<Token>& toks,
                           ProgramIndex::FileEntry& entry) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "PARCEL_GUARDED_BY" && t.text != "PARCEL_PT_GUARDED_BY") ||
        !is_punct(toks[i + 1], '(')) {
      continue;
    }
    for (std::size_t j = i + 2; j < toks.size() && !is_punct(toks[j], ')');
         ++j) {
      if (toks[j].kind == TokenKind::kIdentifier) {
        entry.guarded_names.insert(toks[j].text);
      }
    }
  }
}

void collect_events(const ProgramFile& file, ProgramIndex::FileEntry& entry) {
  const std::vector<Token>& toks = file.lex->tokens;
  internal::UnorderedDecls decls;
  internal::collect_unordered(toks, decls);
  if (file.companion != nullptr) {
    internal::collect_unordered(file.companion->tokens, decls);
  }
  std::vector<internal::RawEvent> raw;
  internal::collect_nondet_events(toks, raw);
  internal::collect_unordered_events(toks, decls, raw);
  for (const internal::RawEvent& e : raw) {
    ProgramIndex::SourceEvent ev;
    ev.rule = e.rule;
    ev.token = e.token;
    ev.line = e.line;
    ev.enclosing = enclosing_def(entry, toks, e.line);
    ev.suppressed = internal::suppression_covers(*file.lex, e.rule, e.line);
    entry.events.push_back(std::move(ev));
  }
}

}  // namespace

ProgramIndex build_program_index(const std::vector<ProgramFile>& files) {
  ProgramIndex index;
  index.files.reserve(files.size());
  for (const ProgramFile& file : files) {
    ProgramIndex::FileEntry entry;
    entry.file = file;
    IndexBuilder{file.lex->tokens, entry}.run();
    collect_calls(file.lex->tokens, entry);
    collect_mutex_members(file.lex->tokens, entry);
    collect_guarded_names(file.lex->tokens, entry);
    collect_events(file, entry);
    index.files.push_back(std::move(entry));
  }
  return index;
}

// ---------------------------------------------------------------------------
// nondet-transitive

namespace {

struct Taint {
  // Display chain from the tainted function down to the source token,
  // e.g. {"arena_enabled", "env_flag", "getenv() [nondet-getenv at
  // src/util/env.cpp:9]"}.
  std::vector<std::string> chain;
};

std::string chain_str(const std::vector<std::string>& chain) {
  std::string out;
  for (const std::string& hop : chain) {
    if (!out.empty()) out += " -> ";
    out += hop;
  }
  return out;
}

}  // namespace

void check_nondet_transitive(const ProgramIndex& index, const Config& config,
                             FileReport& rep) {
  // Seed: every function whose body carries an *unsuppressed* banned
  // construct.  Inline-suppressed constructs are audited (the reason
  // explains why the nondeterminism is contained) and do not taint.
  std::map<std::string, Taint> tainted;  // keyed by bare function name
  for (const ProgramIndex::FileEntry& fe : index.files) {
    for (const ProgramIndex::SourceEvent& ev : fe.events) {
      if (ev.suppressed || ev.enclosing < 0) continue;
      const ProgramIndex::FunctionDef& def =
          fe.defs[static_cast<std::size_t>(ev.enclosing)];
      auto [it, inserted] = tainted.try_emplace(def.name);
      if (!inserted) continue;
      const std::string what =
          ev.rule == "unordered-iter"
              ? "unordered iteration over '" + ev.token + "'"
              : "'" + ev.token + "' [" + ev.rule + "]";
      it->second.chain = {def.qualified,
                         what + " at " + fe.file.rel_path + ":" +
                             std::to_string(ev.line)};
    }
  }

  // Propagate caller-ward to a fixpoint.  An edge is severed by an
  // allow(nondet-transitive) with reason on its call line; severed edges
  // neither taint the caller nor produce findings.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const ProgramIndex::FileEntry& fe : index.files) {
      for (const ProgramIndex::CallSite& call : fe.calls) {
        auto callee = tainted.find(call.callee);
        if (callee == tainted.end() || call.caller < 0) continue;
        const ProgramIndex::FunctionDef& caller =
            fe.defs[static_cast<std::size_t>(call.caller)];
        if (tainted.count(caller.name) > 0) continue;
        if (internal::suppression_covers(*fe.file.lex, "nondet-transitive",
                                         call.line)) {
          continue;
        }
        Taint t;
        t.chain.push_back(caller.qualified);
        t.chain.insert(t.chain.end(), callee->second.chain.begin(),
                       callee->second.chain.end());
        tainted.emplace(caller.name, std::move(t));
        changed = true;
      }
    }
  }

  // Report every live edge into the tainted set from in-scope files.
  for (const ProgramIndex::FileEntry& fe : index.files) {
    if (!fe.file.reportable) continue;
    if (!config.applies("nondet-transitive", fe.file.rel_path)) continue;
    for (const ProgramIndex::CallSite& call : fe.calls) {
      auto callee = tainted.find(call.callee);
      if (callee == tainted.end()) continue;
      // A call to a function that is *defined* nowhere in the program is
      // not an edge (the callee map only holds indexed definitions).
      if (internal::suppression_covers(*fe.file.lex, "nondet-transitive",
                                       call.line)) {
        continue;
      }
      rep.findings.push_back(
          {fe.file.rel_path, call.line, "nondet-transitive",
           "call to '" + call.callee +
               "' transitively reaches a nondeterminism source: " +
               chain_str(callee->second.chain) +
               "; sever this edge with '// parcel-lint: "
               "allow(nondet-transitive) <reason>' only if the "
               "nondeterminism cannot reach results or traces"});
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-unannotated

void check_mutex_annotations(const ProgramIndex& index, const Config& config,
                             FileReport& rep) {
  for (const ProgramIndex::FileEntry& fe : index.files) {
    if (!fe.file.reportable) continue;
    if (!config.applies("mutex-unannotated", fe.file.rel_path)) continue;
    for (const ProgramIndex::MutexMember& m : fe.mutexes) {
      if (fe.guarded_names.count(m.name) > 0) continue;
      if (internal::suppression_covers(*fe.file.lex, "mutex-unannotated",
                                       m.line)) {
        continue;
      }
      std::string message =
          "mutex member '" + m.name + "' (" + m.type +
          ") has no PARCEL_GUARDED_BY(" + m.name +
          ") in this file: annotate the state it protects "
          "(src/util/thread_annotations.hpp)";
      if (m.type.find("Mutex") == std::string::npos) {
        message +=
            ", and prefer util::Mutex so clang -Wthread-safety can "
            "check the locking discipline";
      }
      rep.findings.push_back(
          {fe.file.rel_path, m.line, "mutex-unannotated", std::move(message)});
    }
  }
}

}  // namespace parcel::lint
