#pragma once
// Shared internals between the per-file rules (rules.cpp), the
// whole-program indexer (index.cpp), and the layer checker (layers.cpp).
// Not part of the public lint.hpp surface.

#include <set>
#include <string>
#include <vector>

#include "lint.hpp"

namespace parcel::lint::internal {

bool is_ident(const Token& t, const char* text);
bool is_punct(const Token& t, char c);

// Unordered-container tracking: type aliases resolving to unordered_* and
// variables/members declared with one.
struct UnorderedDecls {
  std::set<std::string> types;
  std::set<std::string> vars;
};
void collect_unordered(const std::vector<Token>& toks, UnorderedDecls& out);

// One banned construct, before config scoping / suppression filtering.
struct RawEvent {
  std::string rule;   // nondet-random / nondet-time / nondet-getenv /
                      // unordered-iter
  std::string token;  // offending identifier
  int line = 0;
};

// Detect every nondet source (random/time/getenv) in the token stream.
void collect_nondet_events(const std::vector<Token>& toks,
                           std::vector<RawEvent>& out);

// Detect every iteration over a declared-unordered container.
void collect_unordered_events(const std::vector<Token>& toks,
                              const UnorderedDecls& decls,
                              std::vector<RawEvent>& out);

// Human-facing message for a direct finding of `rule` on `token`.
std::string direct_message(const std::string& rule, const std::string& token);

// Does an allow(<rule>) suppression *with a reason* cover `line`?
// (Same-line, or a standalone comment on the previous line.)
bool suppression_covers(const LexOutput& lx, const std::string& rule,
                        int line);

// Skip a balanced <...> starting at toks[i] (which must be '<'); returns
// the index one past the matching '>'.  Token granularity is one char, so
// '>>' closes two levels, which is exactly what nested templates need.
std::size_t skip_template_args(const std::vector<Token>& toks, std::size_t i);

}  // namespace parcel::lint::internal
