#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace parcel::lint {
namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool is_impl(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Repo-relative path with forward slashes, for scoping and reporting.
std::string rel_str(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string config_path;
  std::string root = ".";
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--config" || a == "--root") {
      if (i + 1 >= args.size()) {
        err << "parcel-lint: " << a << " needs an argument\n";
        return 2;
      }
      (a == "--config" ? config_path : root) = args[++i];
    } else if (a == "--help" || a == "-h") {
      out << "usage: parcel-lint [--config lint.rules] [--root DIR] "
             "<file-or-dir>...\n"
             "exit codes: 0 clean, 1 findings, 2 usage/config error\n";
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      err << "parcel-lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) {
    err << "parcel-lint: no files or directories given\n";
    return 2;
  }

  Config config;
  if (config_path.empty()) {
    // Default: lint.rules next to --root if present; built-in defaults
    // (every rule on, no scoping) otherwise.
    const fs::path candidate = fs::path(root) / "lint.rules";
    if (fs::exists(candidate)) config_path = candidate.string();
  }
  if (!config_path.empty()) {
    std::string error;
    if (!load_config(config_path, config, error)) {
      err << "parcel-lint: " << error << "\n";
      return 2;
    }
  }

  const fs::path root_path(root);
  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative()) p = root_path / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      err << "parcel-lint: no such file or directory: " << in << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Lex each file exactly once; the same LexOutput feeds the per-file
  // rules, the whole-program index, and the layer checker (this cache is
  // what keeps the tree lint inside its CI time budget).  std::map node
  // stability lets units and ProgramFiles hold pointers into it.
  std::map<std::string, LexOutput> lexed;
  auto lex_file = [&](const fs::path& p) -> const LexOutput* {
    auto it = lexed.find(p.string());
    if (it != lexed.end()) return &it->second;
    std::string source;
    if (!read_file(p, source)) return nullptr;
    return &lexed.emplace(p.string(), lex(source)).first->second;
  };

  const std::set<fs::path> file_set(files.begin(), files.end());
  auto sibling_impl_in_set = [&](const fs::path& header) {
    for (const char* ext : {".cpp", ".cc"}) {
      fs::path impl = header;
      impl.replace_extension(ext);
      if (file_set.count(impl) > 0) return true;
    }
    return false;
  };

  // Fold each sibling header into its .cpp's lint unit instead of linting
  // it twice (once standalone, once joined): the unit reports the
  // header's findings exactly once.
  struct Unit {
    fs::path path;
    UnitSource src;
    fs::path header;  // empty if none
  };
  std::vector<Unit> units;
  std::vector<ProgramFile> program_files;
  std::set<std::string> program_paths;
  for (const fs::path& file : files) {
    if (!is_impl(file) && sibling_impl_in_set(file)) continue;
    const LexOutput* lx = lex_file(file);
    if (lx == nullptr) {
      err << "parcel-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    Unit unit;
    unit.path = file;
    unit.src.rel_path = rel_str(file, root_path);
    unit.src.lex = lx;
    if (is_impl(file)) {
      // A .cpp is linted together with its sibling header so containers
      // declared in the class body are known when the .cpp iterates them.
      for (const char* ext : {".hpp", ".h"}) {
        fs::path sibling = file;
        sibling.replace_extension(ext);
        if (!fs::exists(sibling)) continue;
        const LexOutput* hlx = lex_file(sibling);
        if (hlx == nullptr) continue;
        unit.header = sibling;
        unit.src.header_path = rel_str(sibling, root_path);
        unit.src.header_lex = hlx;
        unit.src.report_header = file_set.count(sibling) > 0;
        break;
      }
    }
    units.push_back(std::move(unit));
  }
  for (const Unit& unit : units) {
    if (program_paths.insert(unit.src.rel_path).second) {
      program_files.push_back({unit.src.rel_path, unit.src.lex, true,
                               unit.src.header_lex});
    }
    if (unit.src.header_lex != nullptr &&
        program_paths.insert(unit.src.header_path).second) {
      program_files.push_back({unit.src.header_path, unit.src.header_lex,
                               unit.src.report_header, unit.src.lex});
    }
  }

  std::size_t finding_count = 0;
  bool hard_error = false;
  auto emit = [&](const FileReport& rep) {
    for (const std::string& e : rep.errors) {
      err << "parcel-lint: error: " << e << "\n";
      hard_error = true;
    }
    for (const Finding& f : rep.findings) {
      out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
      ++finding_count;
    }
  };

  for (const Unit& unit : units) {
    emit(lint_unit(unit.src, config));
  }

  // Whole-program passes share one index over the already-lexed files.
  const ProgramIndex index = build_program_index(program_files);
  FileReport program_rep;
  check_nondet_transitive(index, config, program_rep);
  check_layers(index, config, program_paths, program_rep);
  check_mutex_annotations(index, config, program_rep);
  std::stable_sort(program_rep.findings.begin(), program_rep.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  emit(program_rep);

  if (hard_error) return 2;
  out << "parcel-lint: " << finding_count << " finding(s) in " << files.size()
      << " file(s)\n";
  return finding_count == 0 ? 0 : 1;
}

}  // namespace parcel::lint
