#include "lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace parcel::lint {
namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Repo-relative path with forward slashes, for scoping and reporting.
std::string rel_str(const fs::path& p, const fs::path& root) {
  return fs::relative(p, root).generic_string();
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string config_path;
  std::string root = ".";
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--config" || a == "--root") {
      if (i + 1 >= args.size()) {
        err << "parcel-lint: " << a << " needs an argument\n";
        return 2;
      }
      (a == "--config" ? config_path : root) = args[++i];
    } else if (a == "--help" || a == "-h") {
      out << "usage: parcel-lint [--config lint.rules] [--root DIR] "
             "<file-or-dir>...\n"
             "exit codes: 0 clean, 1 findings, 2 usage/config error\n";
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      err << "parcel-lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      inputs.push_back(a);
    }
  }
  if (inputs.empty()) {
    err << "parcel-lint: no files or directories given\n";
    return 2;
  }

  Config config;
  if (config_path.empty()) {
    // Default: lint.rules next to --root if present; built-in defaults
    // (every rule on, no scoping) otherwise.
    const fs::path candidate = fs::path(root) / "lint.rules";
    if (fs::exists(candidate)) config_path = candidate.string();
  }
  if (!config_path.empty()) {
    std::string error;
    if (!load_config(config_path, config, error)) {
      err << "parcel-lint: " << error << "\n";
      return 2;
    }
  }

  const fs::path root_path(root);
  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative()) p = root_path / p;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      err << "parcel-lint: no such file or directory: " << in << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t finding_count = 0;
  bool hard_error = false;
  for (const fs::path& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      err << "parcel-lint: cannot read " << file.string() << "\n";
      return 2;
    }
    // A .cpp is linted together with its sibling header so containers
    // declared in the class body are known when the .cpp iterates them.
    std::string header;
    const std::string* header_ptr = nullptr;
    if (file.extension() == ".cpp" || file.extension() == ".cc") {
      fs::path sibling = file;
      sibling.replace_extension(".hpp");
      if (fs::exists(sibling) && read_file(sibling, header)) {
        header_ptr = &header;
      }
    }
    FileReport rep =
        lint_source(rel_str(file, root_path), source, config, header_ptr);
    for (const std::string& e : rep.errors) {
      err << "parcel-lint: error: " << e << "\n";
      hard_error = true;
    }
    for (const Finding& f : rep.findings) {
      out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
      ++finding_count;
    }
  }
  if (hard_error) return 2;
  out << "parcel-lint: " << finding_count << " finding(s) in " << files.size()
      << " file(s)\n";
  return finding_count == 0 ? 0 : 1;
}

}  // namespace parcel::lint
