#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel::core {
namespace {

const web::WebPage& test_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "exp.example.com";
    spec.object_count = 40;
    spec.total_bytes = util::kib(500);
    spec.seed = 17;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://exp.example.com/"));
  }();
  return *page;
}

TEST(ExperimentRunner, DirRunBasicInvariants) {
  RunConfig cfg;
  RunResult r = ExperimentRunner::run(Scheme::kDir, test_page(), cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.olt.sec(), 0.0);
  EXPECT_GE(r.tlt, r.olt);
  // DIR issues one HTTP request per object over the radio and resolves
  // every domain (Table 1).
  EXPECT_EQ(r.radio_http_requests, test_page().object_count());
  EXPECT_EQ(r.dns_lookups, test_page().domain_names().size());
  EXPECT_GT(r.tcp_connections, 1u);
  EXPECT_GT(r.radio.total.j(), 0.0);
  EXPECT_GT(r.downlink_bytes,
            static_cast<util::Bytes>(test_page().total_bytes()));
}

TEST(ExperimentRunner, ParcelRunBasicInvariants) {
  RunConfig cfg;
  RunResult r = ExperimentRunner::run(Scheme::kParcelInd, test_page(), cfg);
  EXPECT_TRUE(r.ok);
  // Table 1: single connection, single client HTTP request, object
  // identification at the proxy, no client DNS.
  EXPECT_EQ(r.tcp_connections, 1u);
  EXPECT_EQ(r.radio_http_requests, 1u);
  EXPECT_EQ(r.dns_lookups, 0u);
  EXPECT_EQ(r.objects_loaded, test_page().object_count());
  EXPECT_GT(r.bundles, 0u);
}

TEST(ExperimentRunner, CloudBrowserTransfersSnapshotOnly) {
  RunConfig cfg;
  RunResult r = ExperimentRunner::run(Scheme::kCloudBrowser, test_page(), cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.tcp_connections, 1u);
  // Compressed snapshot: fewer bytes over the radio than the page.
  EXPECT_LT(r.downlink_bytes,
            static_cast<util::Bytes>(test_page().total_bytes()));
  EXPECT_DOUBLE_EQ(r.olt.sec(), r.tlt.sec());
}

TEST(ExperimentRunner, ParcelBeatsDirOnLatencyAndEnergy) {
  RunConfig cfg;
  RunResult dir = ExperimentRunner::run(Scheme::kDir, test_page(), cfg);
  RunResult ind = ExperimentRunner::run(Scheme::kParcelInd, test_page(), cfg);
  EXPECT_LT(ind.olt, dir.olt);
  EXPECT_LT(ind.radio.total, dir.radio.total);
  // PARCEL batches transfers: fewer CR<->DRX transitions (Fig 7a).
  EXPECT_LT(ind.radio.cr_drx_transitions, dir.radio.cr_drx_transitions);
}

TEST(ExperimentRunner, BundlingTradesLatencyForCrEnergy) {
  RunConfig cfg;
  RunResult ind = ExperimentRunner::run(Scheme::kParcelInd, test_page(), cfg);
  RunResult onld =
      ExperimentRunner::run(Scheme::kParcelOnld, test_page(), cfg);
  // Fig 9a: bundling increases OLT relative to IND.
  EXPECT_GE(onld.olt.sec(), ind.olt.sec() - 0.05);
  // Batch transfer shrinks the high-power CR window.
  EXPECT_LT(onld.radio.cr, ind.radio.cr);
}

TEST(ExperimentRunner, DeterministicForSameSeed) {
  RunConfig cfg;
  cfg.seed = 77;
  RunResult a = ExperimentRunner::run(Scheme::kParcel512K, test_page(), cfg);
  RunResult b = ExperimentRunner::run(Scheme::kParcel512K, test_page(), cfg);
  EXPECT_DOUBLE_EQ(a.olt.sec(), b.olt.sec());
  EXPECT_DOUBLE_EQ(a.tlt.sec(), b.tlt.sec());
  EXPECT_DOUBLE_EQ(a.radio.total.j(), b.radio.total.j());
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(ExperimentRunner, SchemeNamesAndHelpers) {
  EXPECT_EQ(to_string(Scheme::kDir), "DIR");
  EXPECT_EQ(to_string(Scheme::kParcel512K), "PARCEL(512K)");
  EXPECT_EQ(to_string(Scheme::kCloudBrowser), "CB");
  EXPECT_TRUE(is_parcel(Scheme::kParcelOnld));
  EXPECT_FALSE(is_parcel(Scheme::kDir));
  EXPECT_EQ(bundle_for(Scheme::kParcel1M).threshold, util::mib(1));
  EXPECT_THROW((void)bundle_for(Scheme::kDir), std::invalid_argument);
}

TEST(RunRounds, FiltersAndAggregates) {
  RoundsConfig cfg;
  cfg.rounds = 3;
  cfg.discard_first_round = true;
  cfg.base.testbed.fade = lte::FadeProcess::Params{};
  std::vector<Scheme> schemes{Scheme::kDir, Scheme::kParcelInd};
  RoundsOutcome outcome = run_rounds(test_page(), schemes, cfg);
  EXPECT_EQ(outcome.rounds_total, 3);
  EXPECT_LE(outcome.rounds_kept, 2);  // first round always discarded
  if (outcome.rounds_kept > 0) {
    ASSERT_TRUE(outcome.series.contains(Scheme::kDir));
    const SchemeSeries& dir = outcome.series.at(Scheme::kDir);
    EXPECT_EQ(dir.runs.size(),
              static_cast<std::size_t>(outcome.rounds_kept));
    EXPECT_GT(dir.median_olt_sec(), 0.0);
    EXPECT_GT(dir.median_radio_j(), 0.0);
    EXPECT_GE(dir.median_radio_j(), dir.median_cr_j());
  }
}

TEST(RunRounds, SignalToleranceZeroDropsEverything) {
  RoundsConfig cfg;
  cfg.rounds = 2;
  cfg.discard_first_round = false;
  cfg.signal_tolerance_db = 0.0;
  cfg.base.testbed.fade = lte::FadeProcess::Params{};
  std::vector<Scheme> schemes{Scheme::kDir, Scheme::kParcelInd};
  RoundsOutcome outcome = run_rounds(test_page(), schemes, cfg);
  // Distinct per-scheme fade seeds make identical mean signal all but
  // impossible.
  EXPECT_EQ(outcome.rounds_kept, 0);
}

}  // namespace
}  // namespace parcel::core
