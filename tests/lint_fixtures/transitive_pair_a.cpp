// Cross-TU taint, defining side: seed_entropy() reads std::random_device
// (direct nondet-random finding here; taint root for every caller).
unsigned seed_entropy() {
  std::random_device dev;
  return dev();
}
