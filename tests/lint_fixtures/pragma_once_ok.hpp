#pragma once
// Fixture: comments before the pragma are fine; it must just be the
// first *code* in the file — and here it is.

struct Clean {
  int x = 0;
};
