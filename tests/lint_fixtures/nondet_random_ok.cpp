// Fixture: things that look like random calls but are not.
struct Rng {
  int rand() const { return 4; }
};

int ok_seed(const Rng& rng, const Rng* p) {
  int brand(3);              // identifier merely containing "rand"
  int x = rng.rand();        // member call on a project type
  int y = p->rand();         // ditto via pointer
  // rand() in a comment is not code; "rand()" in a string is data:
  const char* s = "call rand() later";
  return brand + x + y + (s != nullptr ? 1 : 0);
}
