// Fixture: header without #pragma once (classic include-guard instead,
// which the project style forbids).
#ifndef PRAGMA_ONCE_BAD_HPP
#define PRAGMA_ONCE_BAD_HPP

struct Guarded {
  int x = 0;
};

#endif
