#pragma once
// A mutex member with no PARCEL_GUARDED_BY user anywhere in the file:
// the lock guards nothing on record, which is exactly the erosion the
// mutex-unannotated rule exists to stop.
#include <mutex>

struct Counter {
  void bump();

  int value = 0;
  std::mutex mu_;
};
