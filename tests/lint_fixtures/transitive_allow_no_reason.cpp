// An allow(nondet-transitive) with no reason neither severs the edge nor
// silences the finding — and is itself reported as lint-suppression.
long wall_ms() { return time(nullptr) * 1000; }

long uptime() {
  // parcel-lint: allow(nondet-transitive)
  return wall_ms() / 1000;
}
