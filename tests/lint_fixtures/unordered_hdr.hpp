#pragma once
// Fixture: the unordered member lives in the header; the companion .cpp
// iterates it.  The analyzer must join the two.
#include <unordered_map>

class Ledger {
 public:
  long total() const;

 private:
  std::unordered_map<int, long> balances_;
};
