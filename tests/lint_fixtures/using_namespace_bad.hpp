#pragma once
// Fixture: `using namespace` at header scope leaks into every includer.
#include <string>

using namespace std;  // line 5

inline string shout(const string& s) { return s + "!"; }
