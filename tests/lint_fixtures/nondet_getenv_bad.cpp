// Fixture: environment read outside the sanctioned directories.
#include <cstdlib>

bool bad_toggle() {
  return std::getenv("SOME_TOGGLE") != nullptr;  // line 5
}
