// Severed edge: wall_ms() is a real nondet-time source (still flagged
// directly), but the caller-ward edge carries an allow with a reason, so
// the taint stops there — no nondet-transitive findings anywhere.
long wall_ms() { return time(nullptr) * 1000; }

long uptime() {
  // parcel-lint: allow(nondet-transitive) harness-only timing; the value is logged, never folded into results
  return wall_ms() / 1000;
}

long report() { return uptime() + 1; }
