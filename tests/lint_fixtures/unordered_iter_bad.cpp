// Fixture: iteration over unordered containers, every form the rule
// must catch: range-for, explicit begin(), and via a using-alias.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using Index = std::unordered_map<int, std::string>;

int bad_iteration() {
  std::unordered_set<int> ids = {1, 2, 3};
  Index index;
  std::vector<int> out;
  for (int id : ids) out.push_back(id);            // line 14: range-for
  for (const auto& [k, v] : index) out.push_back(k);  // line 15: via alias
  auto it = ids.begin();                           // line 16: iterator walk
  return static_cast<int>(out.size()) + *it;
}
