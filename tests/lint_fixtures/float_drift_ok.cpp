// Fixture: double end-to-end; "float" appears only in comment and string.
double ok_energy(double joules) {
  const char* unit = "float-free joules";
  double scale = 0.5;  // never float in accounting code
  return joules * scale + (unit != nullptr ? 0.0 : 1.0);
}
