// Fixture: the gated-benchmark idiom from bench_kernel_throughput.cpp —
// a deliberately wall-clock alias, suppressed with a reason on the
// standalone line above it.
#include <chrono>

// parcel-lint: allow(nondet-time) wall-clock is the measurement in a throughput bench
using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
