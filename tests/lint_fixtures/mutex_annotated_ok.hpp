#pragma once
// The annotated twin: the mutex is a util::Mutex and the state it
// protects names it via PARCEL_GUARDED_BY, so the rule is satisfied.
#include "util/mutex.hpp"

struct Counter {
  void bump();

  util::Mutex mu_;
  int value PARCEL_GUARDED_BY(mu_) = 0;
};
