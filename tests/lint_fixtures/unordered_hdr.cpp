// Fixture: iterates a member whose unordered declaration is only visible
// in the companion header (unordered_hdr.hpp).
#include "unordered_hdr.hpp"

long Ledger::total() const {
  long sum = 0;
  for (const auto& [id, v] : balances_) sum += v;  // line 7
  return sum;
}
