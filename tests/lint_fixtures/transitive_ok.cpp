// Clean call chain: helpers compute pure functions of their inputs, so
// nothing taints and nothing is flagged.
long scale(long v) { return v * 1000; }

long total(long a, long b) { return scale(a) + scale(b); }

long report_total() { return total(1, 2); }
