// Fixture: wall-clock reads the rule must catch.
#include <chrono>
#include <ctime>

long bad_clock() {
  auto t0 = std::chrono::steady_clock::now();          // line 6
  auto t1 = std::chrono::system_clock::now();          // line 7
  auto t2 = std::chrono::high_resolution_clock::now(); // line 8
  std::time_t wall = std::time(nullptr);               // line 9
  (void)t0;
  (void)t1;
  (void)t2;
  return static_cast<long>(wall) + static_cast<long>(clock());  // line 13
}
