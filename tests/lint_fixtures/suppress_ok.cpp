// Fixture: both suppression placements with reasons — standalone line
// covering the next line, and trailing on the offending line itself.
#include <cstdlib>
#include <ctime>

long suppressed() {
  // parcel-lint: allow(nondet-time) fixture exercises the standalone placement
  long wall = static_cast<long>(std::time(nullptr));
  long r = rand();  // parcel-lint: allow(nondet-random) fixture exercises the trailing placement
  return wall + r;
}
