// A direct finding suppressed inline *with a reason* does not taint: the
// suppression audits containment, so callers of wall_ms() stay clean.
long wall_ms() {
  // parcel-lint: allow(nondet-time) harness wall time, reported out-of-band and never folded into results
  return time(nullptr) * 1000;
}

long report() { return wall_ms() / 1000; }
