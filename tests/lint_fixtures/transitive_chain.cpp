// Two-hop determinism taint: report() -> uptime() -> wall_ms() -> time().
// Expected: one direct nondet-time (the time() call) and two
// nondet-transitive findings (the call to wall_ms inside uptime, and the
// call to uptime inside report), each carrying the full chain.
long wall_ms() { return time(nullptr) * 1000; }

long uptime() { return wall_ms() / 1000; }

long report() { return uptime() + 1; }
