// Fixture: a typo'd rule id in allow() is a hard error (exit 2) — the
// suppression the author meant would otherwise silently not apply.
#include <ctime>

long typo() {
  // parcel-lint: allow(nondet-tyme) oops, rule id misspelled
  return static_cast<long>(std::time(nullptr));
}
