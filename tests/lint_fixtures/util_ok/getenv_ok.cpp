// Fixture: same env read, but this directory is exempted by the config
// under test (exempt nondet-getenv = util_ok).
#include <cstdlib>

bool sanctioned_toggle() {
  return std::getenv("PARCEL_TOGGLE") != nullptr;
}
