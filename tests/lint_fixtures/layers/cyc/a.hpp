#pragma once
// Include cycle: a -> b -> a.  Same layer, still a violation.
#include "cyc/b.hpp"

inline int cyc_a() { return 1; }
