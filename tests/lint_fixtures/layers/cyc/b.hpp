#pragma once
#include "cyc/a.hpp"

inline int cyc_b() { return 2; }
