#pragma once
// Sanctioned downward include: upper -> base is in the allow-dep list.
#include "base/leaf.hpp"

inline int mid_value() { return leaf_value() + 1; }
