#pragma once
// Lowest layer: includes nothing.
inline int leaf_value() { return 1; }
