#pragma once
// Upward include: base reaching into upper inverts the DAG.
#include "upper/mid.hpp"

inline int bad_value() { return mid_value() + 1; }
