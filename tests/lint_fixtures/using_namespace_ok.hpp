#pragma once
// Fixture: qualified names and using-declarations of single names are
// fine; only `using namespace` is banned in headers.
#include <string>

inline std::string shout(const std::string& s) { return s + "!"; }
