// Fixture: an allow() without a reason must NOT suppress, and is itself
// reported as lint-suppression.
#include <ctime>

long unexplained() {
  // parcel-lint: allow(nondet-time)
  return static_cast<long>(std::time(nullptr));
}
