// Fixture: every nondeterministic random source the rule must catch.
#include <cstdlib>
#include <random>

int bad_seed() {
  std::random_device rd;          // line 6: random_device
  int a = static_cast<int>(rd());
  srand(42);                      // line 8: srand()
  return a + rand();              // line 9: rand()
}
