// Fixture: time-like names that are deterministic project code.
struct Trace {
  double time() const { return 1.0; }
  double first_time() const { return 0.0; }
};

double ok_clock(const Trace& trace, const Trace* p) {
  double a = trace.time();       // member call, not ::time()
  double b = p->time();          // ditto via pointer
  double c = trace.first_time(); // suffix match must not fire
  // steady_clock in a comment is fine; so is "system_clock" in a string.
  const char* s = "system_clock";
  return a + b + c + (s != nullptr ? 1.0 : 0.0);
}
