// Fixture: float arithmetic in an accounting path.
double bad_energy(double joules) {
  float scale = 0.5f;                     // line 3
  return joules * static_cast<double>(scale);
}
