// Cross-TU taint, calling side: this file has no banned construct of its
// own, but calling seed_entropy() (defined in transitive_pair_a.cpp)
// makes the call site a nondet-transitive finding.
unsigned pick_seed() { return seed_entropy() | 1u; }
