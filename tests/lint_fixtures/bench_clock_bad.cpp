// Fixture: the same wall-clock alias without the suppression — the
// alias line itself must be flagged, not just direct now() calls.
#include <chrono>

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
