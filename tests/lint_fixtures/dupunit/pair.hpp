#pragma once
// Companion-header dedupe regression: this header carries exactly one
// violation.  Scanning the directory must report it exactly once — the
// header is folded into pair.cpp's lint unit, never linted standalone on
// top of that.
using namespace std;

struct Pair {
  int first = 0;
  int second = 0;
};
