#include "dupunit/pair.hpp"

// Clean implementation file; the unit's only finding lives in the header.
int pair_sum(const Pair& p) { return p.first + p.second; }
