// Fixture: unordered containers used safely (lookups only), and
// iteration over ordered containers.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int ok_iteration() {
  std::unordered_map<int, std::string> cache;
  std::map<int, std::string> ordered;
  std::vector<int> list = {1, 2, 3};
  int n = 0;
  // find()/end() lookup never observes iteration order:
  if (cache.find(1) != cache.end()) ++n;
  if (cache.count(2) > 0) ++n;
  for (const auto& [k, v] : ordered) n += k;  // ordered map is fine
  for (int x : list) n += x;                  // vector is fine
  return n;
}
