#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/streaming_stats.hpp"
#include "util/rng.hpp"

namespace parcel::core {
namespace {

// Exact nearest-rank quantile (the statistic LogHistogram approximates):
// the ceil(pct/100 * N)-th smallest value, rank clamped to [1, N].
double exact_nearest_rank(std::vector<double> values, double pct) {
  std::sort(values.begin(), values.end());
  auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(
      std::max(1.0, std::min(n, std::ceil(pct / 100.0 * n))));
  return values[rank - 1];
}

// The documented contract: for values inside [min_value, max_value), the
// sketch quantile is within relative_error_bound() of the exact
// nearest-rank order statistic.
void expect_within_bound(const LogHistogram& hist,
                         const std::vector<double>& values, double pct) {
  double exact = exact_nearest_rank(values, pct);
  double approx = hist.quantile(pct);
  double bound = hist.relative_error_bound();
  EXPECT_NEAR(approx, exact, bound * exact + 1e-12)
      << "pct=" << pct << " exact=" << exact << " approx=" << approx;
}

TEST(LogHistogram, LayoutValidation) {
  EXPECT_THROW(LogHistogram({-1.0, 1e6, 48}), std::invalid_argument);
  EXPECT_THROW(LogHistogram({0.0, 1e6, 48}), std::invalid_argument);
  EXPECT_THROW(LogHistogram({1e-6, 1e-6, 48}), std::invalid_argument);
  EXPECT_THROW(LogHistogram({1e-3, 1e-6, 48}), std::invalid_argument);
  EXPECT_THROW(LogHistogram({1e-6, 1e6, 0}), std::invalid_argument);
  LogHistogram ok;  // defaults are valid
  EXPECT_EQ(ok.count(), 0u);
  EXPECT_EQ(ok.quantile(50.0), 0.0);  // empty
}

TEST(LogHistogram, ErrorBoundMatchesBinGeometry) {
  // √γ - 1 with γ = 10^(1/bins_per_decade).
  LogHistogram hist({1e-6, 1e6, 48});
  double gamma = std::pow(10.0, 1.0 / 48.0);
  EXPECT_NEAR(hist.relative_error_bound(), std::sqrt(gamma) - 1.0, 1e-12);
  EXPECT_LT(hist.relative_error_bound(), 0.025);  // 2.4% at the default
}

TEST(LogHistogram, SingleValueRoundTripsWithinBound) {
  LogHistogram hist;
  hist.add(0.137);
  EXPECT_EQ(hist.count(), 1u);
  for (double pct : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(hist.quantile(pct), 0.137,
                0.137 * hist.relative_error_bound());
  }
}

TEST(LogHistogram, UnderflowAndOverflowAreClamped) {
  LogHistogram hist({1e-3, 1e3, 16});
  hist.add(0.0);    // below min (idle-queue waits are exactly zero)
  hist.add(-5.0);   // negative: underflow by definition
  hist.add(1e-9);   // positive but below min
  hist.add(1e9);    // above max
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.quantile(10.0), 0.0);   // rank 1 -> underflow bin
  EXPECT_EQ(hist.quantile(75.0), 0.0);   // rank 3 -> still underflow
  EXPECT_EQ(hist.quantile(100.0), 1e3);  // rank 4 -> overflow clamps
}

TEST(LogHistogram, NaNCountsAsUnderflow) {
  LogHistogram hist;
  hist.add(std::nan(""));
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.quantile(50.0), 0.0);
}

TEST(LogHistogram, AddNMatchesRepeatedAdd) {
  LogHistogram a, b;
  a.add_n(0.25, 1000);
  for (int i = 0; i < 1000; ++i) b.add(0.25);
  EXPECT_EQ(a, b);
}

TEST(LogHistogram, MergeIsCommutativeAndAssociative) {
  util::Rng rng(404);
  LogHistogram parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 500; ++i) {
      parts[p].add(rng.lognormal(-2.0 + p, 1.5));
    }
  }
  // (a + b) + c
  LogHistogram abc = parts[0];
  abc.merge(parts[1]);
  abc.merge(parts[2]);
  // c + (b + a)
  LogHistogram cba = parts[2];
  LogHistogram ba = parts[1];
  ba.merge(parts[0]);
  cba.merge(ba);
  EXPECT_EQ(abc, cba);
  EXPECT_EQ(abc.count(), 1500u);
}

TEST(LogHistogram, MergeRejectsLayoutMismatch) {
  LogHistogram a({1e-6, 1e6, 48});
  LogHistogram b({1e-6, 1e6, 32});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  LogHistogram c({1e-5, 1e6, 48});
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(LogHistogram, QuantileErrorBoundOnAdversarialDistributions) {
  const std::vector<double> pcts{1.0, 10.0, 25.0, 50.0, 75.0, 90.0,
                                 95.0, 99.0, 99.9, 100.0};

  // Heavy-tailed: Pareto spreads mass over many decades.
  {
    util::Rng rng(1);
    LogHistogram hist;
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i) {
      values.push_back(rng.pareto(1e-3, 1.1));
      hist.add(values.back());
    }
    for (double pct : pcts) expect_within_bound(hist, values, pct);
  }

  // Clustered just around bin edges: powers of γ with jitter, the
  // worst case for midpoint reporting.
  {
    util::Rng rng(2);
    LogHistogram hist;
    double gamma = std::pow(10.0, 1.0 / 48.0);
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
      double edge = std::pow(gamma, rng.uniform_int(0, 400));
      double v = 1e-4 * edge * (1.0 + 1e-9 * rng.uniform(-1.0, 1.0));
      values.push_back(v);
      hist.add(v);
    }
    for (double pct : pcts) expect_within_bound(hist, values, pct);
  }

  // Bimodal point masses: exact quantiles jump between the two atoms.
  {
    LogHistogram hist;
    std::vector<double> values;
    for (int i = 0; i < 600; ++i) {
      double v = (i % 3 == 0) ? 0.004 : 7.5;
      values.push_back(v);
      hist.add(v);
    }
    for (double pct : pcts) expect_within_bound(hist, values, pct);
  }
}

TEST(StreamingStats, EmptyReportsZeros) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.quantile(50.0), 0.0);
}

TEST(StreamingStats, ExactFieldsAreExact) {
  StreamingStats s;
  // Integer-valued doubles: sums are exact, so EXPECT_EQ is legitimate.
  for (double v : {5.0, 1.0, 9.0, 3.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.sum(), 18.0);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StreamingStats, MergeMatchesBulkAdd) {
  StreamingStats bulk, left, right;
  for (int i = 1; i <= 100; ++i) {
    double v = static_cast<double>(i);
    bulk.add(v);
    (i <= 50 ? left : right).add(v);
  }
  left.merge(right);
  // Sums of integers are exact regardless of fold order, so the merged
  // aggregate is not just close — it is equal.
  EXPECT_EQ(left, bulk);
}

TEST(StreamingStats, MergeWithEmptySidesIsIdentity) {
  StreamingStats s, empty;
  s.add(2.5);
  s.add(0.125);
  StreamingStats onto_empty;
  onto_empty.merge(s);
  EXPECT_EQ(onto_empty, s);
  StreamingStats copy = s;
  copy.merge(empty);
  EXPECT_EQ(copy, s);
}

}  // namespace
}  // namespace parcel::core
