// Multi-page browsing sessions (§4.5 caching / §7.3 session discussion):
// device cache carries across pages; the personalized PARCEL proxy
// mirrors the client's cache and skips re-transmission.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/session.hpp"
#include "core/testbed.hpp"
#include "browser/dir_browser.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"
#include "web/js.hpp"

namespace parcel::core {
namespace {

struct SessionPages {
  std::unique_ptr<web::WebPage> first;
  std::unique_ptr<web::WebPage> second;
};

SessionPages make_pages() {
  web::PageSpec spec;
  spec.site = "sess.example.com";
  spec.object_count = 30;
  spec.total_bytes = util::kib(400);
  spec.seed = 47;
  SessionPages out;
  web::WebPage live = web::PageGenerator::generate(spec);
  static replay::ReplayStore store;
  store.record(live);
  out.first = std::make_unique<web::WebPage>(
      *store.find(live.main_url().str()));
  out.second = std::make_unique<web::WebPage>(
      web::PageGenerator::follow_page(*out.first, 99, 2));
  return out;
}

TEST(FollowPage, SharesFrameworkAndAddsFreshImages) {
  SessionPages pages = make_pages();
  std::size_t shared = 0, fresh = 0;
  for (const web::WebObject* obj : pages.second->objects()) {
    if (pages.first->find(obj->url) != nullptr) {
      ++shared;
    } else {
      ++fresh;
    }
  }
  EXPECT_GT(shared, 5u);  // css + most js + their deps
  EXPECT_GT(fresh, 5u);   // new html + article images
  EXPECT_EQ(pages.second->main_url().path(), "/p2.html");
  // Shared objects are byte-identical (same content pointers or sizes).
  for (const web::WebObject* obj : pages.second->objects()) {
    const web::WebObject* orig = pages.first->find(obj->url);
    if (orig != nullptr) {
      EXPECT_EQ(orig->size, obj->size);
    }
  }
}

TEST(FollowPage, SecondPageIsSelfConsistent) {
  SessionPages pages = make_pages();
  // Every reference in the new HTML resolves within the page.
  const web::WebObject& html = pages.second->main();
  for (const auto& token : web::MiniHtml::scan(html.text())) {
    if (token.kind != web::HtmlToken::Kind::kReference) continue;
    net::Url url = html.url.resolve(token.ref.target);
    EXPECT_NE(pages.second->find(url), nullptr) << url.str();
  }
}

TEST(BrowsingSession, DirSecondPageUsesDeviceCache) {
  SessionPages pages = make_pages();
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*pages.first);
  testbed.host_page(*pages.second);

  browser::DirConfig cfg;
  cfg.engine.parse_bytes_per_sec = 0.35e6;
  cfg.engine.js_units_per_sec = 12;
  browser::DirBrowser dir(testbed.network(), cfg, util::Rng(1));

  double first_olt = 0, second_olt = 0;
  browser::BrowserEngine::Callbacks cbs1;
  cbs1.on_onload = [&](util::TimePoint t) { first_olt = t.sec(); };
  dir.load(pages.first->main_url(), std::move(cbs1));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  std::size_t requests_after_p1 = dir.fetcher().requests_issued();

  double p2_start = testbed.scheduler().now().sec();
  browser::BrowserEngine::Callbacks cbs2;
  cbs2.on_onload = [&](util::TimePoint t) { second_olt = t.sec() - p2_start; };
  dir.load(pages.second->main_url(), std::move(cbs2));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(120));

  ASSERT_GT(second_olt, 0);
  // Cached framework: far fewer radio requests on page 2 than objects.
  std::size_t p2_requests = dir.fetcher().requests_issued() - requests_after_p1;
  EXPECT_LT(p2_requests, pages.second->object_count());
  EXPECT_GT(dir.engine().cache_loads(), 0u);
  // And page 2 loads faster than page 1 despite similar object counts.
  EXPECT_LT(second_olt, first_olt);
}

TEST(BrowsingSession, ParcelProxyMirrorSkipsResends) {
  SessionPages pages = make_pages();
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*pages.first);
  testbed.host_page(*pages.second);

  ParcelSession session(testbed.network(), ParcelSessionConfig{},
                        util::Rng(3));
  bool p1_done = false, p2_done = false;
  ParcelSession::Callbacks cbs1;
  cbs1.on_complete = [&](util::TimePoint) { p1_done = true; };
  session.load(pages.first->main_url(), std::move(cbs1));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  ASSERT_TRUE(p1_done);
  util::Bytes bytes_after_p1 = session.bundle_bytes_delivered();

  ParcelSession::Callbacks cbs2;
  cbs2.on_complete = [&](util::TimePoint) { p2_done = true; };
  session.load(pages.second->main_url(), std::move(cbs2));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(120));
  ASSERT_TRUE(p2_done);

  // The mirror kept shared objects off the radio: page-2 bundle bytes
  // are far below the page's total size.
  util::Bytes p2_bytes = session.bundle_bytes_delivered() - bytes_after_p1;
  EXPECT_LT(p2_bytes, pages.second->total_bytes());
  EXPECT_GT(p2_bytes, 0);
  // No fallbacks: everything the client needed was cached or pushed.
  EXPECT_EQ(session.client_fetcher().fallback_requests(), 0u);
  // The whole session used one TCP connection.
  EXPECT_EQ(testbed.client_trace().connection_count(), 1u);
  // Client engine for page 2 loaded every object.
  EXPECT_EQ(session.client_engine().ledger().count(),
            pages.second->object_count());
}

TEST(BrowsingSession, LoadWhilePreviousPageInFlightThrows) {
  SessionPages pages = make_pages();
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*pages.first);
  testbed.host_page(*pages.second);
  ParcelSession session(testbed.network(), ParcelSessionConfig{},
                        util::Rng(5));
  session.load(pages.first->main_url(), {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(0.5));
  EXPECT_THROW(session.load(pages.second->main_url(), {}), std::logic_error);
}

}  // namespace
}  // namespace parcel::core
