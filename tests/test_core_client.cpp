#include <gtest/gtest.h>

#include "core/client.hpp"
#include "sim/scheduler.hpp"

namespace parcel::core {
namespace {

web::MhtmlPart make_part(const std::string& url, const char* body = nullptr) {
  web::MhtmlPart part;
  part.location = net::Url::parse(url);
  part.content_type = body ? "application/javascript" : "image/jpeg";
  if (body) {
    part.content = std::make_shared<const std::string>(body);
    part.body_size = static_cast<util::Bytes>(part.content->size());
  } else {
    part.body_size = 1000;
  }
  return part;
}

struct ClientFixture : ::testing::Test {
  sim::Scheduler sched;
  ParcelClientFetcher fetcher{sched, util::Rng(1)};
  std::vector<std::string> fallback_urls;

  ClientFixture() {
    fetcher.set_fallback([this](const net::Url& url, web::ObjectType) {
      fallback_urls.push_back(url.str());
    });
  }
};

TEST_F(ClientFixture, CacheHitDeliversLocally) {
  fetcher.on_bundle_parts({make_part("http://a.example/x.jpg")});
  bool delivered = false;
  fetcher.fetch(net::Url::parse("http://a.example/x.jpg"),
                web::ObjectType::kImage, false, 1,
                [&](browser::FetchResult r) {
                  delivered = true;
                  EXPECT_EQ(r.size, 1000);
                  EXPECT_EQ(r.status, 200);
                });
  sched.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(fetcher.cache_hits(), 1u);
  EXPECT_TRUE(fallback_urls.empty());
}

TEST_F(ClientFixture, MissIsSuppressedUntilPartArrives) {
  bool delivered = false;
  fetcher.fetch(net::Url::parse("http://a.example/x.jpg"),
                web::ObjectType::kImage, false, 1,
                [&](browser::FetchResult) { delivered = true; });
  sched.run();
  EXPECT_FALSE(delivered);  // suppressed, no network request
  EXPECT_EQ(fetcher.parked_count(), 1u);
  EXPECT_EQ(fetcher.suppressed_total(), 1u);

  fetcher.on_bundle_parts({make_part("http://a.example/x.jpg")});
  sched.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(fetcher.parked_count(), 0u);
  EXPECT_TRUE(fallback_urls.empty());
}

TEST_F(ClientFixture, CompletionNoteConvertsParkedToFallbacks) {
  bool delivered = false;
  fetcher.fetch(net::Url::parse("http://a.example/missing.jpg"),
                web::ObjectType::kImage, false, 1,
                [&](browser::FetchResult) { delivered = true; });
  fetcher.on_completion_note();
  EXPECT_EQ(fallback_urls.size(), 1u);
  EXPECT_EQ(fallback_urls[0], "http://a.example/missing.jpg");
  EXPECT_EQ(fetcher.fallback_requests(), 1u);
  // The fallback response arrives as a single-part bundle.
  fetcher.on_bundle_parts({make_part("http://a.example/missing.jpg")});
  sched.run();
  EXPECT_TRUE(delivered);
}

TEST_F(ClientFixture, PostCompletionMissesFallBackImmediately) {
  fetcher.on_completion_note();
  bool delivered = false;
  fetcher.fetch(net::Url::parse("http://a.example/late.jpg"),
                web::ObjectType::kImage, false, 1,
                [&](browser::FetchResult) { delivered = true; });
  EXPECT_EQ(fallback_urls.size(), 1u);
  fetcher.on_bundle_parts({make_part("http://a.example/late.jpg")});
  sched.run();
  EXPECT_TRUE(delivered);
}

TEST_F(ClientFixture, RandomizedUrlMissesExactCache) {
  // The proxy pushed its own randomized variant.
  fetcher.on_bundle_parts({make_part("http://api.example/d.json?r=111")});
  bool delivered = false;
  fetcher.fetch(net::Url::parse("http://api.example/d.json"),
                web::ObjectType::kJson, /*randomized=*/true, 1,
                [&](browser::FetchResult) { delivered = true; });
  sched.run();
  // Client drew a different random query: exact-match lookup misses and
  // the request is parked (§4.5's URL-divergence case).
  EXPECT_FALSE(delivered);
  EXPECT_EQ(fetcher.parked_count(), 1u);
}

TEST_F(ClientFixture, JsTypeHintHonoredOnDelivery) {
  fetcher.on_bundle_parts({make_part("http://a.example/x.js", "compute(1);")});
  web::ObjectType got = web::ObjectType::kImage;
  fetcher.fetch(net::Url::parse("http://a.example/x.js"),
                web::ObjectType::kJsAsync, false, 1,
                [&](browser::FetchResult r) { got = r.type; });
  sched.run();
  EXPECT_EQ(got, web::ObjectType::kJsAsync);
}

TEST(ParcelClientFetcherStandalone, FallbackWithoutWiringThrows) {
  sim::Scheduler sched;
  ParcelClientFetcher fetcher(sched, util::Rng(1));
  fetcher.fetch(net::Url::parse("http://a.example/x.jpg"),
                web::ObjectType::kImage, false, 1,
                [](browser::FetchResult) {});
  EXPECT_THROW(fetcher.on_completion_note(), std::logic_error);
}

}  // namespace
}  // namespace parcel::core
