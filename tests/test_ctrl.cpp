// ctrl:: closed-loop adaptive bundling (ISSUE 10): estimator arithmetic,
// controller law, fade profiles, strict bench parsers, fleet arrival
// processes, page mixes, and the end-to-end determinism/kill-switch
// contracts (jobs fan-out bitwise identity, PARCEL_CTRL=0 byte pin).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "ctrl/bundle_controller.hpp"
#include "fleet/fleet_runner.hpp"
#include "lte/radio_link.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel {
namespace {

// ---------------------------------------------------------------- isqrt

TEST(CtrlIsqrt, ExactFloorOverSmallRange) {
  for (std::uint64_t v = 0; v <= 5000; ++v) {
    const std::uint64_t x = ctrl::isqrt_u64(v);
    EXPECT_LE(x * x, v) << v;
    EXPECT_GT((x + 1) * (x + 1), v) << v;
  }
}

TEST(CtrlIsqrt, PerfectSquaresAndNeighbors) {
  for (std::uint64_t n : {1ULL, 2ULL, 10ULL, 1000ULL, 65536ULL,
                          4294967295ULL}) {
    EXPECT_EQ(ctrl::isqrt_u64(n * n), n);
    EXPECT_EQ(ctrl::isqrt_u64(n * n - 1), n - 1);
    EXPECT_EQ(ctrl::isqrt_u64(n * n + 1), n);
  }
}

TEST(CtrlIsqrt, EdgeValues) {
  EXPECT_EQ(ctrl::isqrt_u64(0), 0u);
  EXPECT_EQ(ctrl::isqrt_u64(1), 1u);
  EXPECT_EQ(ctrl::isqrt_u64(1ULL << 62), 1ULL << 31);
  // floor(sqrt(2^64 - 1)) = 2^32 - 1: the (x+1)^2 fix-up must not
  // overflow past it.
  EXPECT_EQ(ctrl::isqrt_u64(~0ULL), 4294967295u);
}

// ------------------------------------------------------- LinkEstimator

trace::PacketRecord down_data(double t_sec, util::Bytes bytes) {
  trace::PacketRecord r;
  r.t = util::TimePoint::at_seconds(t_sec);
  r.dir = trace::Direction::kDownlink;
  r.kind = trace::PacketKind::kData;
  r.bytes = bytes;
  return r;
}

trace::PacketRecord up_data(double t_sec, util::Bytes bytes = 300) {
  trace::PacketRecord r;
  r.t = util::TimePoint::at_seconds(t_sec);
  r.dir = trace::Direction::kUplink;
  r.kind = trace::PacketKind::kData;
  r.bytes = bytes;
  return r;
}

TEST(CtrlEstimator, SeedsBeforeAnySample) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  EXPECT_EQ(est.goodput_bps(), 750'000);
  EXPECT_EQ(est.rtt_us(), 80'000);
  EXPECT_EQ(est.goodput_samples(), 0u);
  EXPECT_EQ(est.rtt_samples(), 0u);
  EXPECT_EQ(est.downlink_bytes(), 0);
}

TEST(CtrlEstimator, ConfigValidation) {
  ctrl::EstimatorConfig bad;
  bad.goodput_gamma_shift = 32;
  EXPECT_THROW(ctrl::LinkEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.initial_goodput_bps = 0;
  EXPECT_THROW(ctrl::LinkEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.max_goodput_bps = bad.min_goodput_bps - 1;
  EXPECT_THROW(ctrl::LinkEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.min_sample_bytes = 0;
  EXPECT_THROW(ctrl::LinkEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.min_plausible_bps = 0;
  EXPECT_THROW(ctrl::LinkEstimator{bad}, std::invalid_argument);
}

TEST(CtrlEstimator, BackToBackBurstFoldsExactly) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  est.on_record(down_data(1.000, 50'000));
  // 20 ms gap <= the 50 ms CR tail: pure serialization. Sample is
  // 100000 B / 20 ms = 5'000'000 B/s; one 1/8-gain EWMA step from the
  // 750'000 seed lands on 750000 + (4250000 >> 3) = 1'281'250.
  est.on_record(down_data(1.020, 100'000));
  EXPECT_EQ(est.goodput_samples(), 1u);
  EXPECT_EQ(est.gated_samples(), 0u);
  EXPECT_EQ(est.goodput_bps(), 1'281'250);
  EXPECT_EQ(est.downlink_bytes(), 150'000);
}

TEST(CtrlEstimator, LargeBurstFoldsAcrossDrxGap) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  est.on_record(down_data(1.0, 10'000));
  // 500 ms gap is far beyond the CR tail, but 64 KiB at the plausibility
  // floor (40 kB/s) takes 1.6 s > 0.5 s, so the spacing is credited to
  // airtime: sample = 65536 B / 0.5 s = 131'072 B/s, and the EWMA steps
  // 750000 + ((131072 - 750000) >> 3) = 750000 - 77366 = 672'634.
  est.on_record(down_data(1.5, 65'536));
  EXPECT_EQ(est.goodput_samples(), 1u);
  EXPECT_EQ(est.gated_samples(), 0u);
  EXPECT_EQ(est.goodput_bps(), 672'634);
}

TEST(CtrlEstimator, SmallBurstAcrossGapIsGated) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  est.on_record(down_data(1.0, 10'000));
  // 4 KiB over a 500 ms gap: the spacing is DRX stall / origin idle
  // time, not serialization. Folding it would read ~8 kB/s and crash
  // the estimate.
  est.on_record(down_data(1.5, 4'096));
  EXPECT_EQ(est.goodput_samples(), 0u);
  EXPECT_EQ(est.gated_samples(), 1u);
  EXPECT_EQ(est.goodput_bps(), 750'000);
}

TEST(CtrlEstimator, SameInstantAndOverCapSamplesAreGated) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  est.on_record(down_data(1.0, 1'000));
  est.on_record(down_data(1.0, 1'000));  // dt == 0: unusable
  EXPECT_EQ(est.goodput_samples(), 0u);
  EXPECT_EQ(est.gated_samples(), 1u);
  // 100 KB in 1 us reads 1e11 B/s — beyond max_goodput_bps, gated by
  // the sanity band even though the gap passes the CR gate.
  est.on_record(down_data(1.000001, 100'000));
  EXPECT_EQ(est.goodput_samples(), 0u);
  EXPECT_EQ(est.gated_samples(), 2u);
  EXPECT_EQ(est.goodput_bps(), 750'000);
}

TEST(CtrlEstimator, RttDeskewsIdlePromotion) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  // First uplink ever: the radio pays the full idle promotion (260 ms).
  // Raw request->response spacing is 400 ms; the de-skewed sample is
  // 140 ms, and one 1/8-gain step from the 80 ms seed is 87'500 us.
  est.on_record(up_data(1.0));
  est.on_record(down_data(1.4, 10'000));
  EXPECT_EQ(est.rtt_samples(), 1u);
  EXPECT_EQ(est.rtt_us(), 87'500);
}

TEST(CtrlEstimator, RttDeskewsShortDrxPromotionAndPairsFirstUplink) {
  ctrl::LinkEstimator est{ctrl::EstimatorConfig{}};
  est.on_record(down_data(1.0, 5'000));
  // 500 ms since the last activity: short-DRX, so the uplink paid the
  // 40 ms resume. A second uplink before the response must not re-arm
  // the pairing. Sample = (1.6 - 1.5) s - 40 ms = 60 ms; EWMA steps
  // 80000 + ((60000 - 80000) >> 3) = 77'500.
  est.on_record(up_data(1.5));
  est.on_record(up_data(1.55));
  est.on_record(down_data(1.6, 20'000));
  EXPECT_EQ(est.rtt_samples(), 1u);
  EXPECT_EQ(est.rtt_us(), 77'500);
}

TEST(CtrlEstimator, DeterministicReplayOfSameSequence) {
  std::vector<trace::PacketRecord> seq;
  for (int i = 0; i < 40; ++i) {
    seq.push_back(up_data(0.25 * i + 0.01));
    seq.push_back(down_data(0.25 * i + 0.1, 8'000 + 977 * i));
    seq.push_back(down_data(0.25 * i + 0.13, 50'000 + 131 * i));
  }
  ctrl::LinkEstimator a{ctrl::EstimatorConfig{}};
  ctrl::LinkEstimator b{ctrl::EstimatorConfig{}};
  for (const auto& r : seq) a.on_record(r);
  for (const auto& r : seq) b.on_record(r);
  EXPECT_EQ(a.goodput_bps(), b.goodput_bps());
  EXPECT_EQ(a.rtt_us(), b.rtt_us());
  EXPECT_EQ(a.goodput_samples(), b.goodput_samples());
  EXPECT_EQ(a.gated_samples(), b.gated_samples());
  EXPECT_GT(a.goodput_samples(), 0u);
  EXPECT_GT(a.rtt_samples(), 0u);
}

// ----------------------------------------------------- BundleController

TEST(CtrlController, TargetIsAlphaRootOfGoodputTimesRemaining) {
  ctrl::ControllerConfig cfg;
  cfg.alpha_milli = 1000;
  cfg.page_bytes_hint = 750'000;
  ctrl::BundleController c(cfg, util::kib(512));
  // No bytes observed yet: B-hat is the full hint, s-hat the 750'000
  // seed, so target = isqrt(750000 * 750000) = 750'000 exactly.
  EXPECT_EQ(c.target(), 750'000);
}

TEST(CtrlController, TargetTapersToRemainingBytesWithFloor) {
  ctrl::ControllerConfig cfg;
  cfg.alpha_milli = 1000;
  cfg.page_bytes_hint = 800'000;
  ctrl::BundleController c(cfg, util::kib(512));
  // 1 MB has crossed the radio — more than the hint, so B-hat bottoms
  // out at hint/8 = 100'000 rather than going negative.
  auto retune = c.on_record(down_data(1.0, 1'000'000));
  const auto expect = static_cast<util::Bytes>(
      ctrl::isqrt_u64(750'000ULL * 100'000ULL));
  EXPECT_EQ(c.target(), expect);
  ASSERT_TRUE(retune.has_value());
  EXPECT_EQ(*retune, expect);
  EXPECT_EQ(c.threshold(), expect);
  EXPECT_EQ(c.retunes(), 1u);
}

TEST(CtrlController, TargetClampsToConfiguredBounds) {
  ctrl::ControllerConfig lo;
  lo.alpha_milli = 1;
  lo.page_bytes_hint = util::kib(64);
  ctrl::BundleController clo(lo, util::kib(512));
  EXPECT_EQ(clo.target(), lo.min_target);

  ctrl::ControllerConfig hi;
  hi.alpha_milli = 1'000'000;
  ctrl::BundleController chi(hi, util::kib(512));
  EXPECT_EQ(chi.target(), hi.max_target);
}

TEST(CtrlController, HysteresisSuppressesSmallMoves) {
  ctrl::ControllerConfig cfg;
  cfg.alpha_milli = 1000;
  cfg.page_bytes_hint = 750'000;
  // Scheduler already sits on the computed target: an uplink record
  // (which moves no estimator state the target reads) must not retune.
  ctrl::BundleController steady(cfg, 750'000);
  EXPECT_FALSE(steady.on_record(up_data(1.0)).has_value());
  EXPECT_EQ(steady.retunes(), 0u);
  EXPECT_EQ(steady.threshold(), 750'000);

  // Threshold parked at 2x the target: delta is 50% of the threshold,
  // far outside the 20% band, so the same record does retune.
  ctrl::BundleController off(cfg, 1'500'000);
  auto retune = off.on_record(up_data(1.0));
  ASSERT_TRUE(retune.has_value());
  EXPECT_EQ(*retune, 750'000);
  EXPECT_EQ(off.retunes(), 1u);
}

TEST(CtrlController, ConfigValidationRejectsNonsense) {
  ctrl::ControllerConfig cfg;
  cfg.alpha_milli = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.page_bytes_hint = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_target = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_target = cfg.min_target - 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.hysteresis_pct = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.hysteresis_pct = 1001;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_THROW(ctrl::BundleController(cfg, 0), std::invalid_argument);
}

TEST(CtrlController, LatencyTunedPreset) {
  const lte::RrcConfig rrc;
  const ctrl::ControllerConfig cfg = ctrl::ControllerConfig::latency_tuned(rrc);
  // alpha' = isqrt(40 ms in us) * 5/8 = 200 * 5/8 = 125 milli-units.
  EXPECT_EQ(cfg.alpha_milli, 125);
  EXPECT_EQ(cfg.estimator.goodput_gamma_shift, 2u);
  EXPECT_EQ(cfg.hysteresis_pct, 10);
  EXPECT_EQ(cfg.estimator.rrc.cr_tail.sec(), rrc.cr_tail.sec());
  EXPECT_NO_THROW(cfg.validate());
}

// ------------------------------------------------------ fade profiles

TEST(FadeSpecProfile, PulseFadesLastDutyOfEachPeriod) {
  lte::FadeSpec spec;
  spec.kind = lte::FadeSpec::Kind::kPulse;
  spec.high = 1.0;
  spec.low = 0.25;
  spec.period = util::Duration::seconds(4);
  spec.duty = 0.5;
  spec.horizon = util::Duration::seconds(8);
  const std::vector<double> steps = spec.build_steps();
  ASSERT_EQ(steps.size(), 17u);  // ceil(8 / 0.5) + 1
  EXPECT_EQ(steps[0], 1.0);      // t = 0: period opens at full strength
  EXPECT_EQ(steps[3], 1.0);      // t = 1.5
  EXPECT_EQ(steps[4], 0.25);     // t = 2: the faded half begins
  EXPECT_EQ(steps[7], 0.25);     // t = 3.5
  EXPECT_EQ(steps[8], 1.0);      // t = 4: next period reopens high
}

TEST(FadeSpecProfile, StepDropsAtTheConfiguredInstant) {
  lte::FadeSpec spec;
  spec.kind = lte::FadeSpec::Kind::kStep;
  spec.high = 0.9;
  spec.low = 0.3;
  spec.at = util::Duration::seconds(5);
  spec.horizon = util::Duration::seconds(10);
  const std::vector<double> steps = spec.build_steps();
  ASSERT_EQ(steps.size(), 21u);
  EXPECT_EQ(steps[9], 0.9);   // t = 4.5
  EXPECT_EQ(steps[10], 0.3);  // t = 5.0
  EXPECT_EQ(steps.back(), 0.3);
}

TEST(FadeSpecProfile, RampIsMonotoneHighToLow) {
  lte::FadeSpec spec;
  spec.kind = lte::FadeSpec::Kind::kRamp;
  spec.high = 1.0;
  spec.low = 0.2;
  spec.horizon = util::Duration::seconds(10);
  const std::vector<double> steps = spec.build_steps();
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps.front(), 1.0);
  EXPECT_DOUBLE_EQ(steps.back(), 0.2);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LE(steps[i], steps[i - 1]) << i;
  }
}

TEST(FadeSpecProfile, ValidateRejectsNonsense) {
  auto reject = [](auto mutate) {
    lte::FadeSpec spec;
    mutate(spec);
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  };
  reject([](lte::FadeSpec& s) { s.low = 0.0; });
  reject([](lte::FadeSpec& s) { s.high = 1.2; });
  reject([](lte::FadeSpec& s) { s.low = 0.8; s.high = 0.5; });
  reject([](lte::FadeSpec& s) { s.step = util::Duration::zero(); });
  reject([](lte::FadeSpec& s) { s.horizon = util::Duration::zero(); });
  reject([](lte::FadeSpec& s) { s.period = util::Duration::zero(); });
  reject([](lte::FadeSpec& s) { s.duty = -0.1; });
  reject([](lte::FadeSpec& s) { s.duty = 1.5; });
  reject([](lte::FadeSpec& s) {
    s.kind = lte::FadeSpec::Kind::kStep;
    s.at = util::Duration::seconds(-1);
  });
  EXPECT_NO_THROW(lte::FadeSpec{}.validate());
}

TEST(FadeSpecProfile, FromStepsValidatesTrajectory) {
  lte::FadeProcess::Params params;
  EXPECT_THROW(lte::FadeProcess::from_steps(params, {}),
               std::invalid_argument);
  EXPECT_THROW(lte::FadeProcess::from_steps(params, {0.5, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(lte::FadeProcess::from_steps(params, {0.5, 1.5}),
               std::invalid_argument);
  const lte::FadeProcess p =
      lte::FadeProcess::from_steps(params, {1.0, 0.5});
  EXPECT_EQ(p.scale_at(util::TimePoint::at_seconds(0.0)), 1.0);
  EXPECT_EQ(p.scale_at(util::TimePoint::at_seconds(10.0)), 0.5);
}

// ------------------------------------------------- strict CLI parsers

TEST(BenchCli, ParseFadeAcceptsOffAr1AndSpecs) {
  bench::FadeOption off = bench::parse_fade("--fade", "off");
  EXPECT_FALSE(off.ar1);
  EXPECT_FALSE(off.profile.has_value());

  bench::FadeOption ar1 = bench::parse_fade("--fade", "ar1");
  EXPECT_TRUE(ar1.ar1);
  EXPECT_FALSE(ar1.profile.has_value());

  bench::FadeOption bare = bench::parse_fade("--fade", "ramp");
  ASSERT_TRUE(bare.profile.has_value());
  EXPECT_EQ(bare.profile->kind, lte::FadeSpec::Kind::kRamp);

  bench::FadeOption pulse = bench::parse_fade(
      "--fade", "pulse:period=4,duty=0.5,low=0.25,high=1,horizon=120");
  ASSERT_TRUE(pulse.profile.has_value());
  EXPECT_EQ(pulse.profile->kind, lte::FadeSpec::Kind::kPulse);
  EXPECT_DOUBLE_EQ(pulse.profile->period.sec(), 4.0);
  EXPECT_DOUBLE_EQ(pulse.profile->duty, 0.5);
  EXPECT_DOUBLE_EQ(pulse.profile->low, 0.25);
  EXPECT_DOUBLE_EQ(pulse.profile->high, 1.0);
  EXPECT_DOUBLE_EQ(pulse.profile->horizon.sec(), 120.0);

  bench::FadeOption step = bench::parse_fade(
      "--fade", "step:at=5,low=0.3,step=0.25");
  ASSERT_TRUE(step.profile.has_value());
  EXPECT_EQ(step.profile->kind, lte::FadeSpec::Kind::kStep);
  EXPECT_DOUBLE_EQ(step.profile->at.sec(), 5.0);
  EXPECT_DOUBLE_EQ(step.profile->step.sec(), 0.25);
}

TEST(BenchCli, ParseFadeRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "none", "sine", "pulse:bogus=1", "pulse:duty", "pulse:duty=",
        "pulse:=1", "pulse:duty=x", "pulse:duty=-0.5", "pulse:high=0",
        "pulse:low=2", "step:at=-3", "ramp:low=0.9,high=0.1"}) {
    EXPECT_THROW(bench::parse_fade("--fade", bad), std::invalid_argument)
        << bad;
  }
}

TEST(BenchCli, ParseOnOffIsStrict) {
  EXPECT_TRUE(bench::parse_on_off("--ctrl", "on"));
  EXPECT_FALSE(bench::parse_on_off("--ctrl", "off"));
  for (const char* bad : {"", "ON", "Off", "1", "0", "true", "yes"}) {
    EXPECT_THROW(bench::parse_on_off("--ctrl", bad), std::invalid_argument)
        << bad;
  }
}

TEST(BenchCli, ParsePageMixRoundTripsToStringNames) {
  for (web::PageMix mix :
       {web::PageMix::kAlexa34, web::PageMix::kAdHeavy, web::PageMix::kSpa,
        web::PageMix::kLargeObject}) {
    EXPECT_EQ(bench::parse_page_mix(
                  "--mix", std::string(web::to_string(mix)).c_str()),
              mix);
  }
  for (const char* bad : {"", "alexa", "Alexa34", "adheavy", "huge"}) {
    EXPECT_THROW(bench::parse_page_mix("--mix", bad), std::invalid_argument)
        << bad;
  }
}

// ------------------------------------------------- arrival processes

TEST(FleetArrivals, ToStringNames) {
  EXPECT_EQ(fleet::to_string(fleet::ArrivalProcess::kPoisson), "poisson");
  EXPECT_EQ(fleet::to_string(fleet::ArrivalProcess::kFlashCrowd),
            "flash-crowd");
  EXPECT_EQ(fleet::to_string(fleet::ArrivalProcess::kDiurnal), "diurnal");
}

TEST(FleetArrivals, ValidateRejectsBadShapes) {
  auto reject = [](auto mutate) {
    fleet::FleetConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  reject([](fleet::FleetConfig& c) { c.flash_boost = -1.0; });
  reject([](fleet::FleetConfig& c) {
    c.flash_at = util::Duration::seconds(-1);
  });
  reject([](fleet::FleetConfig& c) {
    c.flash_window = util::Duration::seconds(-1);
  });
  reject([](fleet::FleetConfig& c) {
    c.diurnal_period = util::Duration::zero();
  });
  reject([](fleet::FleetConfig& c) { c.diurnal_amplitude = 1.0; });
  reject([](fleet::FleetConfig& c) { c.diurnal_amplitude = -0.2; });
  fleet::FleetConfig ok;
  ok.arrivals = fleet::ArrivalProcess::kDiurnal;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FleetArrivals, ColumnsAreMonotoneDeterministicAndSeedInvariant) {
  fleet::FleetConfig cfg;
  cfg.clients = 64;
  const fleet::ClientColumns poisson =
      fleet::derive_client_columns(cfg, /*corpus_pages=*/4);

  cfg.arrivals = fleet::ArrivalProcess::kFlashCrowd;
  const fleet::ClientColumns flash =
      fleet::derive_client_columns(cfg, 4);
  cfg.arrivals = fleet::ArrivalProcess::kDiurnal;
  const fleet::ClientColumns diurnal =
      fleet::derive_client_columns(cfg, 4);
  const fleet::ClientColumns diurnal2 =
      fleet::derive_client_columns(cfg, 4);

  ASSERT_EQ(poisson.size(), 64u);
  ASSERT_EQ(flash.size(), 64u);
  ASSERT_EQ(diurnal.size(), 64u);
  // Rate modulation keeps the renewal construction: arrivals stay
  // non-decreasing (the epoch planner's split test depends on it), and
  // the same config derives the same columns.
  for (std::size_t k = 1; k < 64; ++k) {
    EXPECT_GE(poisson.arrival_sec[k], poisson.arrival_sec[k - 1]) << k;
    EXPECT_GE(flash.arrival_sec[k], flash.arrival_sec[k - 1]) << k;
    EXPECT_GE(diurnal.arrival_sec[k], diurnal.arrival_sec[k - 1]) << k;
  }
  EXPECT_EQ(diurnal.arrival_sec, diurnal2.arrival_sec);
  // The process shifts arrival *times* only; per-session seeds and page
  // assignment derive from the client index and stay byte-identical.
  EXPECT_EQ(poisson.seed, flash.seed);
  EXPECT_EQ(poisson.fade_seed, diurnal.fade_seed);
  EXPECT_EQ(poisson.page_index, flash.page_index);
  EXPECT_NE(poisson.arrival_sec, flash.arrival_sec);
  EXPECT_NE(poisson.arrival_sec, diurnal.arrival_sec);
}

TEST(FleetArrivals, FlashCrowdCompressesTheWindow) {
  fleet::FleetConfig cfg;
  cfg.clients = 400;
  cfg.mean_interarrival = util::Duration::millis(100);
  cfg.arrivals = fleet::ArrivalProcess::kFlashCrowd;
  cfg.flash_boost = 19.0;
  cfg.flash_at = util::Duration::seconds(2);
  cfg.flash_window = util::Duration::seconds(1);
  const fleet::ClientColumns cols = fleet::derive_client_columns(cfg, 4);
  std::size_t inside = 0;
  for (double t : cols.arrival_sec) {
    if (t >= 2.0 && t < 3.0) ++inside;
  }
  // At 20x rate the one-second window should absorb far more than the
  // ~10 arrivals a flat process would put there.
  EXPECT_GT(inside, 40u);
}

// ------------------------------------------------------- page mixes

TEST(WebPageMix, AlexaMixIsExactlyTheCorpus) {
  web::PageGenerator a(2014);
  web::PageGenerator b(2014);
  const std::vector<web::PageSpec> corpus = a.corpus_specs(6);
  const std::vector<web::PageSpec> mix =
      b.mix_specs(web::PageMix::kAlexa34, 6);
  ASSERT_EQ(mix.size(), corpus.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    EXPECT_EQ(mix[i].site, corpus[i].site);
    EXPECT_EQ(mix[i].object_count, corpus[i].object_count);
    EXPECT_EQ(mix[i].total_bytes, corpus[i].total_bytes);
    EXPECT_EQ(mix[i].seed, corpus[i].seed);
  }
}

TEST(WebPageMix, MixesAreDeterministicAndDistinctInCharacter) {
  for (web::PageMix mix : {web::PageMix::kAdHeavy, web::PageMix::kSpa,
                           web::PageMix::kLargeObject}) {
    web::PageGenerator a(7);
    web::PageGenerator b(7);
    const std::vector<web::PageSpec> s1 = a.mix_specs(mix, 5);
    const std::vector<web::PageSpec> s2 = b.mix_specs(mix, 5);
    ASSERT_EQ(s1.size(), 5u) << web::to_string(mix);
    for (std::size_t i = 0; i < s1.size(); ++i) {
      EXPECT_EQ(s1[i].site, s2[i].site);
      EXPECT_EQ(s1[i].object_count, s2[i].object_count);
      EXPECT_EQ(s1[i].total_bytes, s2[i].total_bytes);
      EXPECT_GT(s1[i].object_count, 0);
      EXPECT_GT(s1[i].total_bytes, 0);
    }
  }
  // The families actually differ in the dimension they stress: ad-heavy
  // fragments into many objects, large-object concentrates bytes into
  // few, SPA leans on deep synchronous JS chains.
  web::PageGenerator g(7);
  const auto ads = g.mix_specs(web::PageMix::kAdHeavy, 5);
  const auto spa = g.mix_specs(web::PageMix::kSpa, 5);
  const auto large = g.mix_specs(web::PageMix::kLargeObject, 5);
  EXPECT_GT(ads[0].object_count, large[0].object_count);
  EXPECT_GT(large[0].total_bytes / large[0].object_count,
            ads[0].total_bytes / ads[0].object_count);
  EXPECT_GT(spa[0].max_js_chain_depth, ads[0].max_js_chain_depth);
}

// --------------------------------------------- adaptive end-to-end

const web::WebPage& ctrl_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "ctrl.example.com";
    spec.object_count = 48;
    spec.total_bytes = util::kib(600);
    spec.seed = 23;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://ctrl.example.com/"));
  }();
  return *page;
}

core::RunConfig adaptive_config() {
  core::RunConfig cfg;
  cfg.seed = 11;
  // Staggered slow origins + a deterministic fade pulse: the regime
  // where bundle size matters (inter-bundle gaps exceed the CR tail).
  cfg.testbed.heterogeneous_server_delays = true;
  cfg.testbed.server_delay_min = util::Duration::millis(30);
  cfg.testbed.server_delay_max = util::Duration::millis(350);
  cfg.testbed.topology_seed = 355;
  lte::FadeSpec fade;
  fade.kind = lte::FadeSpec::Kind::kPulse;
  fade.period = util::Duration::seconds(4);
  fade.duty = 0.5;
  fade.high = 1.0;
  fade.low = 0.25;
  fade.horizon = util::Duration::seconds(60);
  cfg.testbed.fade_profile = fade;
  cfg.ctrl = ctrl::ControllerConfig::latency_tuned(cfg.testbed.radio.rrc);
  cfg.ctrl.page_bytes_hint = ctrl_page().total_bytes();
  return cfg;
}

TEST(AdaptiveE2E, ControllerRetunesUnderFade) {
  ctrl::set_ctrl_enabled(true);
  const core::RunResult r = core::ExperimentRunner::run(
      core::Scheme::kParcelAdaptive, ctrl_page(), adaptive_config());
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.ctrl_retunes, 0u);
  EXPECT_GT(r.ctrl_threshold, 0);
  EXPECT_GT(r.ctrl_goodput_bps, 0);
  EXPECT_GT(r.ctrl_rtt_us, 0);
  EXPECT_GT(r.bundles, 1u);
}

void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.olt.sec(), b.olt.sec());
  EXPECT_EQ(a.tlt.sec(), b.tlt.sec());
  EXPECT_EQ(a.ctrl_retunes, b.ctrl_retunes);
  EXPECT_EQ(a.ctrl_goodput_bps, b.ctrl_goodput_bps);
  EXPECT_EQ(a.ctrl_rtt_us, b.ctrl_rtt_us);
  EXPECT_EQ(a.ctrl_threshold, b.ctrl_threshold);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.trace.serialize(), b.trace.serialize());
}

TEST(AdaptiveE2E, JobsFanOutIsBitwiseIdentical) {
  ctrl::set_ctrl_enabled(true);
  std::vector<core::ExperimentTask> tasks;
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    core::RunConfig cfg = adaptive_config();
    cfg.seed = seed;
    tasks.push_back(core::ExperimentTask{core::Scheme::kParcelAdaptive,
                                         &ctrl_page(), cfg});
  }
  const std::vector<core::RunResult> serial = core::run_experiments(tasks, 1);
  const std::vector<core::RunResult> fanned = core::run_experiments(tasks, 4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], fanned[i]);
  }
}

TEST(AdaptiveE2E, JobsFanOutIsBitwiseIdenticalUnderFaults) {
  ctrl::set_ctrl_enabled(true);
  core::RunConfig cfg = adaptive_config();
  cfg.testbed.faults.loss_probability = 0.05;
  cfg.testbed.faults.blackouts.push_back(
      {util::TimePoint::at_seconds(1.0), util::Duration::millis(400)});
  std::vector<core::ExperimentTask> tasks(
      3, core::ExperimentTask{core::Scheme::kParcelAdaptive, &ctrl_page(),
                              cfg});
  const std::vector<core::RunResult> serial = core::run_experiments(tasks, 1);
  const std::vector<core::RunResult> fanned = core::run_experiments(tasks, 4);
  ASSERT_EQ(serial.size(), fanned.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], fanned[i]);
  }
}

TEST(AdaptiveE2E, KillSwitchPinsTraceToFixedScheme) {
  const core::RunConfig cfg = adaptive_config();
  ctrl::set_ctrl_enabled(false);
  const core::RunResult off = core::ExperimentRunner::run(
      core::Scheme::kParcelAdaptive, ctrl_page(), cfg);
  ctrl::set_ctrl_enabled(true);
  const core::RunResult fixed = core::ExperimentRunner::run(
      core::Scheme::kParcel512K, ctrl_page(), cfg);
  // With the loop severed, kParcelAdaptive is exactly the fixed 512K
  // threshold scheme: same trace bytes, no controller telemetry.
  EXPECT_EQ(off.ctrl_retunes, 0u);
  EXPECT_EQ(off.ctrl_threshold, 0);
  EXPECT_EQ(off.trace.serialize(), fixed.trace.serialize());
  EXPECT_EQ(off.olt.sec(), fixed.olt.sec());
  EXPECT_EQ(off.radio.total.j(), fixed.radio.total.j());
}

}  // namespace
}  // namespace parcel
