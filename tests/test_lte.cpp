#include <gtest/gtest.h>

#include "lte/device.hpp"
#include "lte/energy.hpp"
#include "lte/radio_link.hpp"
#include "lte/rrc.hpp"
#include "trace/packet_trace.hpp"

namespace parcel::lte {
namespace {

using trace::Direction;
using trace::PacketKind;
using trace::PacketRecord;
using trace::PacketTrace;
using util::Duration;
using util::TimePoint;

TEST(RrcConfig, AlphaMatchesPaperWorkedExample) {
  RrcConfig cfg;
  // §6: alpha = 0.74 for the LTE parameters used in the paper.
  EXPECT_NEAR(cfg.alpha(), 0.74, 0.01);
}

TEST(RrcConfig, StateDecaySequence) {
  RrcConfig cfg;
  EXPECT_EQ(cfg.state_after_gap(Duration::millis(10)), RrcState::kCr);
  EXPECT_EQ(cfg.state_after_gap(cfg.cr_tail + Duration::millis(1)),
            RrcState::kShortDrx);
  EXPECT_EQ(cfg.state_after_gap(cfg.cr_tail + cfg.short_drx +
                                Duration::millis(1)),
            RrcState::kLongDrx);
  EXPECT_EQ(cfg.state_after_gap(cfg.total_tail() + Duration::millis(1)),
            RrcState::kIdle);
}

TEST(RrcConfig, PromotionDelaysByState) {
  RrcConfig cfg;
  EXPECT_EQ(cfg.promotion_delay_after_gap(Duration::millis(1)),
            Duration::zero());
  EXPECT_EQ(cfg.promotion_delay_after_gap(cfg.cr_tail + Duration::millis(1)),
            cfg.promo_from_short_drx);
  EXPECT_EQ(cfg.promotion_delay_after_gap(cfg.total_tail() +
                                          Duration::seconds(5)),
            cfg.promo_from_idle);
}

TEST(RrcMachine, StartsIdleAndTracksActivity) {
  RrcMachine machine{RrcConfig{}};
  EXPECT_EQ(machine.state_at(TimePoint::origin()), RrcState::kIdle);
  EXPECT_EQ(machine.promotion_delay(TimePoint::origin()),
            machine.config().promo_from_idle);
  machine.note_activity(TimePoint::at_seconds(1), TimePoint::at_seconds(1.5));
  EXPECT_EQ(machine.promotions_from_idle(), 1u);
  EXPECT_EQ(machine.state_at(TimePoint::at_seconds(1.2)), RrcState::kCr);
  EXPECT_EQ(machine.promotion_delay(TimePoint::at_seconds(1.4)),
            Duration::zero());
  // After the short-DRX boundary a resume pays the DRX promotion.
  TimePoint later = TimePoint::at_seconds(1.5) +
                    machine.config().cr_tail + Duration::millis(200);
  EXPECT_EQ(machine.state_at(later), RrcState::kShortDrx);
  machine.note_activity(later, later + Duration::millis(10));
  EXPECT_EQ(machine.promotions_from_drx(), 1u);
}

TEST(EnergyAnalyzer, SingleBurstPromotionPlusTail) {
  RrcConfig cfg;
  EnergyAnalyzer analyzer(cfg);
  PacketTrace trace;
  trace.record(PacketRecord{TimePoint::at_seconds(1.0), Direction::kUplink,
                            PacketKind::kSyn, 40, 1, 0});
  EnergyReport report = analyzer.analyze(trace, true);
  // Promotion energy before the burst.
  EXPECT_NEAR(report.time_promotion.sec(), cfg.promo_from_idle.sec(), 1e-9);
  EXPECT_EQ(report.promotions_from_idle, 1u);
  // Full decay tail afterwards.
  EXPECT_NEAR(report.time_cr.sec(), cfg.cr_tail.sec(), 1e-9);
  EXPECT_NEAR(report.time_short_drx.sec(), cfg.short_drx.sec(), 1e-9);
  EXPECT_NEAR(report.time_long_drx.sec(), cfg.long_drx.sec(), 1e-9);
  double expected =
      cfg.p_promotion.w() * cfg.promo_from_idle.sec() +
      cfg.p_cr.w() * cfg.cr_tail.sec() +
      cfg.p_short_drx.w() * cfg.short_drx.sec() +
      cfg.p_long_drx.w() * cfg.long_drx.sec();
  EXPECT_NEAR(report.total.j(), expected, 1e-6);
  EXPECT_EQ(report.cr_drx_transitions, 1u);
}

TEST(EnergyAnalyzer, CloseBurstsStayInContinuousReception) {
  RrcConfig cfg;
  EnergyAnalyzer analyzer(cfg);
  PacketTrace trace;
  for (double t : {1.0, 1.02, 1.04, 1.06}) {
    trace.record(PacketRecord{TimePoint::at_seconds(t), Direction::kDownlink,
                              PacketKind::kData, 1448, 1, 1});
  }
  EnergyReport report = analyzer.analyze(trace, false);
  // Bursts 20 ms apart, within the CR tail: exactly one CR stretch, no
  // transitions beyond the tailless end.
  EXPECT_EQ(report.promotions_from_drx, 0u);
  EXPECT_EQ(report.cr_drx_transitions, 0u);
  EXPECT_NEAR(report.time_cr.sec(), 0.06, 1e-9);
}

TEST(EnergyAnalyzer, GapCausesDemotionAndPromotion) {
  RrcConfig cfg;
  EnergyAnalyzer analyzer(cfg);
  PacketTrace trace;
  trace.record(PacketRecord{TimePoint::at_seconds(1.0), Direction::kDownlink,
                            PacketKind::kData, 1448, 1, 1});
  // Gap into Short DRX (cr_tail 60 ms + 500 ms < 1.06 s boundary).
  trace.record(PacketRecord{TimePoint::at_seconds(1.5), Direction::kDownlink,
                            PacketKind::kData, 1448, 1, 2});
  EnergyReport report = analyzer.analyze(trace, false);
  EXPECT_EQ(report.promotions_from_drx, 1u);
  EXPECT_EQ(report.cr_drx_transitions, 2u);  // CR->DRX and DRX->CR
  EXPECT_GT(report.time_short_drx.sec(), 0.0);
}

TEST(EnergyAnalyzer, LongIdleGapPaysIdlePromotion) {
  RrcConfig cfg;
  EnergyAnalyzer analyzer(cfg);
  PacketTrace trace;
  trace.record(PacketRecord{TimePoint::at_seconds(1.0), Direction::kDownlink,
                            PacketKind::kData, 100, 1, 1});
  trace.record(PacketRecord{TimePoint::at_seconds(60.0), Direction::kDownlink,
                            PacketKind::kData, 100, 1, 2});
  EnergyReport report = analyzer.analyze(trace, false);
  EXPECT_EQ(report.promotions_from_idle, 2u);  // initial + after the gap
  EXPECT_GT(report.time_idle.sec(), 40.0);
}

TEST(EnergyAnalyzer, EnergyBetweenSlicesTimeline) {
  RrcConfig cfg;
  EnergyAnalyzer analyzer(cfg);
  PacketTrace trace;
  trace.record(PacketRecord{TimePoint::at_seconds(1.0), Direction::kDownlink,
                            PacketKind::kData, 100, 1, 1});
  EnergyReport report = analyzer.analyze(trace, true);
  util::Energy all = analyzer.energy_between(report, TimePoint::origin(),
                                             TimePoint::at_seconds(1000));
  EXPECT_NEAR(all.j(), report.total.j(), 1e-9);
  util::Energy none = analyzer.energy_between(
      report, TimePoint::at_seconds(500), TimePoint::at_seconds(600));
  EXPECT_DOUBLE_EQ(none.j(), 0.0);
}

TEST(EnergyAnalyzer, EmptyTraceZeroEnergy) {
  EnergyAnalyzer analyzer{RrcConfig{}};
  EnergyReport report = analyzer.analyze(PacketTrace{}, true);
  EXPECT_DOUBLE_EQ(report.total.j(), 0.0);
  EXPECT_TRUE(report.timeline.empty());
}

TEST(FadeProcess, DeterministicAndBounded) {
  FadeProcess::Params params;
  FadeProcess a(util::Rng(5), params);
  FadeProcess b(util::Rng(5), params);
  for (double t = 0; t < 100; t += 1.7) {
    double s = a.scale_at(TimePoint::at_seconds(t));
    EXPECT_DOUBLE_EQ(s, b.scale_at(TimePoint::at_seconds(t)));
    EXPECT_GE(s, params.floor);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_GT(a.mean_signal_dbm(TimePoint::at_seconds(30)), -120.0);
  EXPECT_LT(a.mean_signal_dbm(TimePoint::at_seconds(30)), -90.0);
}

TEST(RadioLink, PromotionDelaysFirstTransfer) {
  sim::Scheduler sched;
  RadioParams params;
  RadioLink radio = make_radio_link(sched, params);
  double delivered = -1;
  radio.link->down().transmit(1000, net::BurstInfo{},
                              [&](TimePoint t) { delivered = t.sec(); });
  sched.run();
  // Promotion from IDLE (260 ms) + serialization + propagation.
  EXPECT_GT(delivered, params.rrc.promo_from_idle.sec());
  EXPECT_EQ(radio.rrc->promotions_from_idle(), 1u);

  // A second transfer right away needs no promotion.
  double second = -1;
  radio.link->down().transmit(1000, net::BurstInfo{},
                              [&](TimePoint t) { second = t.sec(); });
  sched.run();
  EXPECT_LT(second - delivered, 0.100);
}

TEST(RadioLink, SharedRrcBetweenDirections) {
  sim::Scheduler sched;
  RadioParams params;
  RadioLink radio = make_radio_link(sched, params);
  double up = -1, down = -1;
  radio.link->up().transmit(100, net::BurstInfo{},
                            [&](TimePoint t) { up = t.sec(); });
  sched.run();
  radio.link->down().transmit(100, net::BurstInfo{},
                              [&](TimePoint t) { down = t.sec(); });
  sched.run();
  // The uplink promoted the shared radio; downlink rides the same tail.
  EXPECT_EQ(radio.rrc->promotions_from_idle(), 1u);
  EXPECT_LT(down - up, 0.100);
}

TEST(DeviceEnergy, CombinesRadioAndCpu) {
  DeviceProfile profile = DeviceProfile::galaxy_s3();
  EnergyReport radio;
  radio.total = util::Energy::joules(5.0);
  DeviceEnergyBreakdown out = device_energy(
      profile, radio, Duration::seconds(2.0), Duration::seconds(10.0));
  EXPECT_DOUBLE_EQ(out.radio.j(), 5.0);
  double expected_cpu =
      profile.cpu_active.w() * 2.0 + profile.cpu_idle.w() * 8.0;
  EXPECT_NEAR(out.cpu.j(), expected_cpu, 1e-9);
  EXPECT_NEAR(out.total().j(), 5.0 + expected_cpu, 1e-9);
}

TEST(DeviceProfile, ProxyIsMuchFasterThanHandset) {
  DeviceProfile handset = DeviceProfile::galaxy_s3();
  DeviceProfile proxy = DeviceProfile::proxy_server();
  EXPECT_GT(proxy.parse_bytes_per_sec, 10 * handset.parse_bytes_per_sec);
  EXPECT_GT(proxy.js_units_per_sec, 10 * handset.js_units_per_sec);
}

}  // namespace
}  // namespace parcel::lte
