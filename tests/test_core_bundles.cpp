#include <gtest/gtest.h>

#include "core/bundle_scheduler.hpp"

namespace parcel::core {
namespace {

struct Capture {
  std::vector<web::MhtmlWriter> bundles;
  BundleScheduler::Sink sink() {
    return [this](web::MhtmlWriter b) { bundles.push_back(std::move(b)); };
  }
  std::size_t total_parts() const {
    std::size_t n = 0;
    for (const auto& b : bundles) n += b.part_count();
    return n;
  }
};

void feed(BundleScheduler& sched, const std::string& url, util::Bytes size) {
  sched.on_object(net::Url::parse(url), web::ObjectType::kImage, size,
                  nullptr);
}

TEST(BundleScheduler, IndFlushesEveryObjectImmediately) {
  Capture cap;
  BundleScheduler sched(BundleConfig::ind(), cap.sink());
  feed(sched, "http://a.example/1.jpg", 1000);
  feed(sched, "http://a.example/2.jpg", 1000);
  EXPECT_EQ(cap.bundles.size(), 2u);
  EXPECT_EQ(cap.total_parts(), 2u);
  sched.on_page_complete();
  EXPECT_EQ(cap.bundles.size(), 2u);  // nothing pending
}

TEST(BundleScheduler, OnloadHoldsUntilOnloadEvent) {
  Capture cap;
  BundleScheduler sched(BundleConfig::onload(), cap.sink());
  feed(sched, "http://a.example/1.jpg", 1000);
  feed(sched, "http://a.example/2.jpg", 1000);
  EXPECT_TRUE(cap.bundles.empty());
  EXPECT_EQ(sched.pending_bytes(), 2000);
  sched.on_proxy_onload();
  ASSERT_EQ(cap.bundles.size(), 1u);
  EXPECT_EQ(cap.bundles[0].part_count(), 2u);
  // Post-onload stragglers wait for the completion flush.
  feed(sched, "http://a.example/late.jpg", 500);
  EXPECT_EQ(cap.bundles.size(), 1u);
  sched.on_page_complete();
  ASSERT_EQ(cap.bundles.size(), 2u);
  EXPECT_EQ(cap.bundles[1].part_count(), 1u);
}

TEST(BundleScheduler, ThresholdFlushesAtX) {
  Capture cap;
  BundleScheduler sched(BundleConfig::with_threshold(2500), cap.sink());
  feed(sched, "http://a.example/1.jpg", 1000);
  feed(sched, "http://a.example/2.jpg", 1000);
  EXPECT_TRUE(cap.bundles.empty());
  feed(sched, "http://a.example/3.jpg", 1000);  // crosses 2500
  ASSERT_EQ(cap.bundles.size(), 1u);
  EXPECT_EQ(cap.bundles[0].part_count(), 3u);
}

TEST(BundleScheduler, ThresholdAlsoFlushesAtOnload) {
  Capture cap;
  BundleScheduler sched(BundleConfig::with_threshold(1'000'000), cap.sink());
  feed(sched, "http://a.example/1.jpg", 1000);
  sched.on_proxy_onload();
  EXPECT_EQ(cap.bundles.size(), 1u);
}

TEST(BundleScheduler, CompleteFlushesRemainderOnce) {
  Capture cap;
  BundleScheduler sched(BundleConfig::with_threshold(10'000), cap.sink());
  feed(sched, "http://a.example/1.jpg", 1000);
  sched.on_page_complete();
  EXPECT_EQ(cap.bundles.size(), 1u);
  sched.on_page_complete();  // idempotent on empty
  EXPECT_EQ(cap.bundles.size(), 1u);
  EXPECT_EQ(sched.bundles_sent(), 1u);
}

TEST(BundleScheduler, ValidatesConfig) {
  Capture cap;
  EXPECT_THROW(BundleScheduler(BundleConfig::with_threshold(0), cap.sink()),
               std::invalid_argument);
  EXPECT_THROW(BundleScheduler(BundleConfig::ind(), nullptr),
               std::invalid_argument);
}

TEST(BundleConfig, Names) {
  EXPECT_EQ(BundleConfig::ind().name(), "PARCEL(IND)");
  EXPECT_EQ(BundleConfig::onload().name(), "PARCEL(ONLD)");
  EXPECT_EQ(BundleConfig::with_threshold(util::kib(512)).name(),
            "PARCEL(512K)");
  EXPECT_EQ(BundleConfig::with_threshold(util::mib(2)).name(), "PARCEL(2M)");
}

}  // namespace
}  // namespace parcel::core
