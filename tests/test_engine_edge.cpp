// BrowserEngine edge cases beyond the basic flows: @import chains, deep
// JS chains, inline scripts that reveal fetches, relative URL bases,
// media elements, and async-exec ordering guarantees.
#include <gtest/gtest.h>

#include <map>

#include "browser/engine.hpp"
#include "sim/scheduler.hpp"

namespace parcel::browser {
namespace {

using util::Duration;
using util::TimePoint;

class MapFetcher final : public Fetcher {
 public:
  explicit MapFetcher(sim::Scheduler& sched) : sched_(sched) {}

  void add(const std::string& url, web::ObjectType type,
           const std::string& body) {
    FetchResult r;
    r.url = net::Url::parse(url);
    r.type = type;
    r.content = std::make_shared<const std::string>(body);
    r.size = static_cast<util::Bytes>(body.size());
    objects_[url] = std::move(r);
  }
  void add_opaque(const std::string& url, web::ObjectType type,
                  util::Bytes size) {
    FetchResult r;
    r.url = net::Url::parse(url);
    r.type = type;
    r.size = size;
    objects_[url] = std::move(r);
  }

  void fetch(const net::Url& url, web::ObjectType hint, bool,
             std::uint32_t, std::function<void(FetchResult)> cb) override {
    requested.push_back(url.str());
    auto it = objects_.find(url.str());
    FetchResult result;
    if (it == objects_.end()) {
      result.url = url;
      result.status = 404;
      result.size = 256;
    } else {
      result = it->second;
      if ((result.type == web::ObjectType::kJs ||
           result.type == web::ObjectType::kJsAsync) &&
          (hint == web::ObjectType::kJs ||
           hint == web::ObjectType::kJsAsync)) {
        result.type = hint;
      }
    }
    sched_.schedule_after(Duration::millis(20),
                          [result = std::move(result),
                           cb = std::move(cb)]() mutable { cb(result); });
  }

  std::vector<std::string> requested;

 private:
  sim::Scheduler& sched_;
  std::map<std::string, FetchResult> objects_;
};

struct EdgeFixture : ::testing::Test {
  sim::Scheduler sched;
  MapFetcher fetcher{sched};
  EngineConfig config;

  EdgeFixture() {
    config.parse_bytes_per_sec = 2e6;
    config.js_units_per_sec = 200;
    config.async_exec_min = Duration::millis(50);
    config.async_exec_max = Duration::millis(100);
  }

  std::unique_ptr<BrowserEngine> engine() {
    return std::make_unique<BrowserEngine>(sched, fetcher, config,
                                           util::Rng(3), "edge");
  }
};

TEST_F(EdgeFixture, CssImportChainsResolveTransitively) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<link rel=\"stylesheet\" href=\"/css/root.css\">");
  fetcher.add("http://a.example/css/root.css", web::ObjectType::kCss,
              "@import url(\"mid.css\");\n.x{background:url(\"/i1.png\");}");
  fetcher.add("http://a.example/css/mid.css", web::ObjectType::kCss,
              ".y{background:url(\"../i2.png\");}");
  fetcher.add_opaque("http://a.example/i1.png", web::ObjectType::kImage, 10);
  fetcher.add_opaque("http://a.example/i2.png", web::ObjectType::kImage, 10);

  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(e->completed());
  EXPECT_EQ(e->ledger().count(), 5u);
  // @import-ed CSS inherits blocking status: all in the onload set.
  EXPECT_EQ(e->ledger().onload_ids().size(), 5u);
  // Relative resolution: mid.css lives under /css/, i2 one level up.
  EXPECT_TRUE(e->is_cached(net::Url::parse("http://a.example/css/mid.css")));
  EXPECT_TRUE(e->is_cached(net::Url::parse("http://a.example/i2.png")));
}

TEST_F(EdgeFixture, DeepJsChainsRunToTheBottom) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<script src=\"/j0.js\"></script>");
  for (int i = 0; i < 4; ++i) {
    fetcher.add("http://a.example/j" + std::to_string(i) + ".js",
                web::ObjectType::kJs,
                "compute(0.5);\nloadScript(\"/j" + std::to_string(i + 1) +
                    ".js\");");
  }
  fetcher.add("http://a.example/j4.js", web::ObjectType::kJs,
              "document.write('<img src=\"/leaf.jpg\">');");
  fetcher.add_opaque("http://a.example/leaf.jpg", web::ObjectType::kImage, 9);

  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(e->completed());
  EXPECT_EQ(e->ledger().count(), 7u);  // html + 5 js + leaf
  // The leaf was requested last: chain order preserved.
  EXPECT_EQ(fetcher.requested.back(), "http://a.example/leaf.jpg");
}

TEST_F(EdgeFixture, InlineScriptsRevealFetches) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<script>\nfetch(\"/api/inline.json\");\ncompute(1);\n</script>");
  fetcher.add("http://a.example/api/inline.json", web::ObjectType::kJson,
              "{}");
  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(e->completed());
  EXPECT_EQ(e->ledger().count(), 2u);
}

TEST_F(EdgeFixture, MediaElementsAreFetchedOpaque) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<video src=\"/clip.mp4\"></video>");
  fetcher.add_opaque("http://a.example/clip.mp4", web::ObjectType::kMedia,
                     500'000);
  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(e->completed());
  EXPECT_EQ(e->ledger().entry(2).type, web::ObjectType::kMedia);
  EXPECT_EQ(e->ledger().entry(2).size, 500'000);
}

TEST_F(EdgeFixture, AsyncExecutionWaitsForOnload) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<script async src=\"/ad.js\"></script>"
              "<script src=\"/slow.js\"></script>");
  fetcher.add("http://a.example/ad.js", web::ObjectType::kJsAsync,
              "fetch(\"/ad.json\");");
  fetcher.add("http://a.example/slow.js", web::ObjectType::kJs,
              "compute(100);");  // 0.5 s of main-thread time
  fetcher.add("http://a.example/ad.json", web::ObjectType::kJson, "{}");

  auto e = engine();
  double onload_at = -1;
  BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](TimePoint t) { onload_at = t.sec(); };
  e->load(net::Url::parse("http://a.example/"), std::move(cbs));
  sched.run();
  ASSERT_GT(onload_at, 0);
  // The ad JSON request must postdate onload even though ad.js arrived
  // long before (async scripts defer to after the load event).
  const auto& entries = e->ledger().entries();
  for (const auto& entry : entries) {
    if (entry.url.path() == "/ad.json") {
      EXPECT_GT(entry.requested_at.sec(), onload_at);
    }
  }
}

TEST_F(EdgeFixture, EmptyPageCompletesImmediately) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><body>hello</body></html>");
  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(e->completed());
  EXPECT_EQ(e->ledger().count(), 1u);
  EXPECT_DOUBLE_EQ(e->onload_time().sec(), e->complete_time().sec());
}

TEST_F(EdgeFixture, FourOhFourScriptUnblocksParser) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<script src=\"/gone.js\"></script><img src=\"/after.jpg\">");
  fetcher.add_opaque("http://a.example/after.jpg", web::ObjectType::kImage,
                     7);
  auto e = engine();
  e->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  // Parser resumed past the failed script; the image still loaded.
  EXPECT_TRUE(e->completed());
  EXPECT_TRUE(e->is_cached(net::Url::parse("http://a.example/after.jpg")));
}

}  // namespace
}  // namespace parcel::browser
