#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel::core {
namespace {

web::WebPage make_page(std::uint64_t seed = 3) {
  web::PageSpec spec;
  spec.site = "tb.example.com";
  spec.object_count = 20;
  spec.total_bytes = util::kib(250);
  spec.seed = seed;
  return web::PageGenerator::generate(spec);
}

TEST(Testbed, HostsEveryDomainOfAPage) {
  web::WebPage page = make_page();
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(page);
  for (const std::string& domain : page.domain_names()) {
    EXPECT_NE(testbed.origin(domain), nullptr) << domain;
    EXPECT_NE(testbed.network().endpoint(domain), nullptr) << domain;
    EXPECT_TRUE(testbed.network().has_route("client", domain)) << domain;
    EXPECT_TRUE(testbed.network().has_route("proxy", domain)) << domain;
  }
  EXPECT_EQ(testbed.origin("unknown.example"), nullptr);
}

TEST(Testbed, ClientRouteIsLongerThanProxyRoute) {
  web::WebPage page = make_page();
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(page);
  std::string domain = *page.domain_names().begin();
  net::Path client = testbed.network().route("client", domain);
  net::Path proxy = testbed.network().route("proxy", domain);
  // The proxy's path to origins skips the radio: much lower RTT — the
  // asymmetry PARCEL exploits (§4.2).
  EXPECT_GT(client.base_rtt().sec(), 2.0 * proxy.base_rtt().sec());
}

TEST(Testbed, HostingTwoPagesSharesDomains) {
  web::WebPage a = make_page(3);
  web::WebPage b = make_page(4);  // same site name, different objects
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(a);
  EXPECT_NO_THROW(testbed.host_page(b));
  web::OriginServer* origin = testbed.origin("tb.example.com");
  ASSERT_NE(origin, nullptr);
}

TEST(Testbed, HeterogeneousDelaysDifferAcrossDomains) {
  web::WebPage page = make_page(9);
  TestbedConfig cfg;
  cfg.heterogeneous_server_delays = true;
  cfg.server_delay_min = util::Duration::millis(5);
  cfg.server_delay_max = util::Duration::millis(60);
  Testbed testbed(cfg);
  testbed.host_page(page);
  std::set<long> delays_us;
  for (const std::string& domain : page.domain_names()) {
    net::Path path = testbed.network().route("proxy", domain);
    delays_us.insert(std::lround(path.propagation_delay().us()));
  }
  // With >= 4 domains, at least two distinct delays are all but certain.
  EXPECT_GE(delays_us.size(), 2u);
}

TEST(Testbed, FadeDisabledByDefaultEnabledOnRequest) {
  Testbed plain{TestbedConfig{}};
  EXPECT_EQ(plain.fade(), nullptr);
  TestbedConfig cfg;
  cfg.fade = lte::FadeProcess::Params{};
  Testbed faded(cfg);
  ASSERT_NE(faded.fade(), nullptr);
  EXPECT_GT(faded.fade()->scale_at(util::TimePoint::at_seconds(1)), 0.0);
}

TEST(Testbed, RadioTapRecordsBothDirections) {
  web::WebPage page = make_page(5);
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(page);
  std::string domain = page.main_url().host();
  net::Path path = testbed.network().route("client", domain);
  path.send_up(500, net::BurstInfo{trace::PacketKind::kData, 9, 1},
               [](util::TimePoint) {});
  path.send_down(700, net::BurstInfo{trace::PacketKind::kData, 9, 2},
                 [](util::TimePoint) {});
  testbed.scheduler().run();
  ASSERT_EQ(testbed.client_trace().size(), 2u);
  EXPECT_EQ(testbed.client_trace().uplink_bytes(), 500);
  EXPECT_EQ(testbed.client_trace().downlink_bytes(), 700);
}

TEST(Testbed, RrcStartsIdleAndPromotesOnTraffic) {
  web::WebPage page = make_page(6);
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(page);
  EXPECT_EQ(testbed.rrc().state_at(testbed.scheduler().now()),
            lte::RrcState::kIdle);
  net::Path path =
      testbed.network().route("client", page.main_url().host());
  path.send_up(100, net::BurstInfo{}, [](util::TimePoint) {});
  testbed.scheduler().run();
  EXPECT_EQ(testbed.rrc().promotions_from_idle(), 1u);
}

}  // namespace
}  // namespace parcel::core
