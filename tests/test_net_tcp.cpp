#include <gtest/gtest.h>

#include "net/tcp.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {
namespace {

using util::BitRate;
using util::Duration;
using util::TimePoint;

struct TcpFixture : ::testing::Test {
  sim::Scheduler sched;
  DuplexLink link{sched, "l", BitRate::mbps(80), BitRate::mbps(80),
                  Duration::millis(25)};
  Path path{{&link}};
  TcpParams params;
};

TEST_F(TcpFixture, HandshakeCostsOneRtt) {
  TcpConnection conn(sched, path, params, 1);
  double established = -1;
  conn.connect([&] { established = sched.now().sec(); });
  sched.run();
  // SYN one way (25ms + tiny serialization), SYNACK back.
  EXPECT_NEAR(established, 0.050, 0.002);
  EXPECT_TRUE(conn.established());
}

TEST_F(TcpFixture, ConnectTwiceThrows) {
  TcpConnection conn(sched, path, params, 1);
  conn.connect([] {});
  EXPECT_THROW(conn.connect([] {}), std::logic_error);
}

TEST_F(TcpFixture, SendBeforeConnectThrows) {
  TcpConnection conn(sched, path, params, 1);
  EXPECT_THROW(conn.send_to_server(100, 0, [](TimePoint) {}),
               std::logic_error);
  EXPECT_THROW(conn.stream_to_client(100, 0, [](TimePoint) {}),
               std::logic_error);
}

TEST_F(TcpFixture, SmallStreamSingleWindow) {
  TcpConnection conn(sched, path, params, 1);
  double done = -1;
  conn.connect([&] {
    conn.stream_to_client(10'000, 5, [&](TimePoint t) { done = t.sec(); });
  });
  sched.run();
  // 10 KB fits in IW10 (14480 B): one burst, one way: 25ms + 1ms ser.
  EXPECT_NEAR(done, 0.050 + 0.026, 0.003);
}

TEST_F(TcpFixture, SlowStartDoublesWindowEachRound) {
  TcpConnection conn(sched, path, params, 1);
  double done = -1;
  // 100 KB = 14.48 + 28.96 + 57.92 KB over 3 rounds (cwnd 10, 20, 40).
  conn.connect([&] {
    conn.stream_to_client(100'000, 5, [&](TimePoint t) { done = t.sec(); });
  });
  sched.run();
  double expected_min = 0.050 /*handshake*/ + 2 * 0.050 /*two full rounds*/;
  EXPECT_GT(done, expected_min);
  EXPECT_LT(done, expected_min + 0.060);
}

TEST_F(TcpFixture, StreamQueuePipelinesWithoutAckStalls) {
  TcpConnection conn(sched, path, params, 1);
  std::vector<double> done;
  conn.connect([&] {
    for (int i = 0; i < 10; ++i) {
      conn.stream_to_client(1'000, static_cast<std::uint32_t>(i + 1),
                            [&](TimePoint t) { done.push_back(t.sec()); });
    }
  });
  sched.run();
  ASSERT_EQ(done.size(), 10u);
  // Pipelined: all ten 1 KB items serialize back-to-back (0.1 ms each),
  // so the last arrives ~1 ms after the first, not 10 RTTs later.
  EXPECT_LT(done.back() - done.front(), 0.005);
  // And they arrive in order.
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i], done[i - 1]);
  }
}

TEST_F(TcpFixture, IdleRestartResetsWindow) {
  TcpConnection conn(sched, path, params, 1);
  double second_done = -1, second_start = -1;
  conn.connect([&] {
    conn.stream_to_client(100'000, 1, [&](TimePoint) {
      sched.schedule_after(params.idle_restart + Duration::seconds(1), [&] {
        second_start = sched.now().sec();
        conn.stream_to_client(100'000, 2,
                              [&](TimePoint t) { second_done = t.sec(); });
      });
    });
  });
  sched.run();
  // After idle restart the transfer needs slow start again: 3 rounds.
  EXPECT_GT(second_done - second_start, 0.100);
}

TEST_F(TcpFixture, CloseEmitsFinAndBlocksFurtherSends) {
  TcpConnection conn(sched, path, params, 1);
  bool closed = false;
  conn.connect([&] { conn.close([&] { closed = true; }); });
  sched.run();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(conn.closed());
  EXPECT_THROW(conn.send_to_server(10, 0, [](TimePoint) {}),
               std::logic_error);
}

TEST_F(TcpFixture, InvalidParamsRejected) {
  TcpParams bad;
  bad.mss = 0;
  EXPECT_THROW(TcpConnection(sched, path, bad, 1), std::invalid_argument);
}

TEST_F(TcpFixture, StreamingFlagTracksQueue) {
  TcpConnection conn(sched, path, params, 1);
  conn.connect([&] {
    conn.stream_to_client(500'000, 1, [](TimePoint) {});
    EXPECT_TRUE(conn.streaming());
  });
  sched.run();
}

}  // namespace
}  // namespace parcel::net
