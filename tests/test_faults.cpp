// Fault-injection subsystem tests: plan parsing/validation, injector
// schedule semantics, TCP loss recovery, the proxy-crash -> direct-fetch
// degradation ladder, and determinism of faulted runs across jobs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel_runner.hpp"
#include "net/fault_injector.hpp"
#include "net/tcp.hpp"
#include "replay/replay_store.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "web/generator.hpp"

namespace parcel {
namespace {

using util::BitRate;
using util::Duration;
using util::TimePoint;

TimePoint at(double sec) { return TimePoint::at_seconds(sec); }

// ---- FaultPlan ---------------------------------------------------------

TEST(FaultPlan, DefaultAndOffSpecAreDisabled) {
  EXPECT_FALSE(sim::FaultPlan{}.enabled());
  EXPECT_FALSE(sim::FaultPlan::off().enabled());
  EXPECT_FALSE(sim::FaultPlan::parse("").enabled());
  EXPECT_FALSE(sim::FaultPlan::parse("off").enabled());
  EXPECT_EQ(sim::FaultPlan{}.str(), "off");
}

TEST(FaultPlan, ParsesFullSpec) {
  sim::FaultPlan plan = sim::FaultPlan::parse(
      "loss=0.05,blackout=2+0.5,blackout=4+1,collapse=1+3,cfactor=0.2,"
      "serror=0.1,sstall=0.5+2,sextra=1.5,crash=1.2,restart=4,seed=9");
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.loss_probability, 0.05);
  ASSERT_EQ(plan.blackouts.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.blackouts[1].start.sec(), 4.0);
  ASSERT_EQ(plan.collapses.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.collapse_factor, 0.2);
  EXPECT_DOUBLE_EQ(plan.server_error_probability, 0.1);
  ASSERT_EQ(plan.server_stalls.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.server_stall_extra.sec(), 1.5);
  ASSERT_TRUE(plan.proxy_crash_at.has_value());
  EXPECT_DOUBLE_EQ(plan.proxy_crash_at->sec(), 1.2);
  ASSERT_TRUE(plan.proxy_restart_after.has_value());
  EXPECT_DOUBLE_EQ(plan.proxy_restart_after->sec(), 4.0);
  EXPECT_EQ(plan.seed, 9u);
}

TEST(FaultPlan, StrRoundTripsThroughParse) {
  sim::FaultPlan plan = sim::FaultPlan::parse(
      "loss=0.03,blackout=1.5+0.25,crash=2,restart=3,seed=42");
  EXPECT_EQ(sim::FaultPlan::parse(plan.str()).str(), plan.str());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(sim::FaultPlan::parse("loss=1.5"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("loss=-0.1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("blackout=-1+2"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("blackout=2+-1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("blackout=2"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("collapse=1+1,cfactor=0"),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("collapse=1+1,cfactor=1.2"),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("restart=2"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("crash=-1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("loss=abc"), std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan::parse("loss"), std::invalid_argument);
}

TEST(FaultWindow, HalfOpenEdges) {
  sim::FaultWindow w{at(2.0), Duration::seconds(0.5)};
  EXPECT_TRUE(w.contains(at(2.0)));   // start inclusive
  EXPECT_TRUE(w.contains(at(2.49)));
  EXPECT_FALSE(w.contains(at(2.5)));  // end exclusive
  EXPECT_FALSE(w.contains(at(1.99)));

  sim::FaultWindow zero{at(3.0), Duration::zero()};
  EXPECT_FALSE(zero.contains(at(3.0)));  // zero-length matches nothing
}

// ---- FaultInjector -----------------------------------------------------

TEST(FaultInjector, BlackoutDefersIntoWindowEndAndFollowsChains) {
  sim::FaultPlan plan;
  plan.blackouts = {{at(2.0), Duration::seconds(1.0)},
                    {at(3.0), Duration::seconds(0.5)}};
  net::FaultInjector inj(plan);
  net::BurstInfo info;

  EXPECT_DOUBLE_EQ(inj.blackout_release(at(1.9), 100, info).sec(), 1.9);
  // Deferred to 3.0, which lands in the second window -> 3.5.
  EXPECT_DOUBLE_EQ(inj.blackout_release(at(2.2), 100, info).sec(), 3.5);
  // Window ends are exclusive: a burst at the end is not deferred.
  EXPECT_DOUBLE_EQ(inj.blackout_release(at(3.5), 100, info).sec(), 3.5);
  EXPECT_EQ(inj.deferrals(), 1u);
}

TEST(FaultInjector, ZeroLengthBlackoutIsInert) {
  sim::FaultPlan plan;
  plan.blackouts = {{at(2.0), Duration::zero()}};
  net::FaultInjector inj(plan);
  net::BurstInfo info;
  EXPECT_DOUBLE_EQ(inj.blackout_release(at(2.0), 100, info).sec(), 2.0);
  EXPECT_EQ(inj.deferrals(), 0u);
}

TEST(FaultInjector, CollapseMultiplierOnlyInsideWindows) {
  sim::FaultPlan plan;
  plan.collapses = {{at(1.0), Duration::seconds(2.0)}};
  plan.collapse_factor = 0.25;
  net::FaultInjector inj(plan);
  net::BurstInfo info;
  EXPECT_DOUBLE_EQ(inj.rate_multiplier(at(0.5), 100, info), 1.0);
  EXPECT_DOUBLE_EQ(inj.rate_multiplier(at(1.0), 100, info), 0.25);
  EXPECT_DOUBLE_EQ(inj.rate_multiplier(at(3.0), 100, info), 1.0);
  EXPECT_EQ(inj.collapsed_bursts(), 1u);
}

TEST(FaultInjector, LossStreamIsDeterministicPerSeed) {
  sim::FaultPlan plan;
  plan.loss_probability = 0.3;
  plan.seed = 77;
  net::FaultInjector a(plan), b(plan);
  net::BurstInfo info;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.drop_burst(at(0.01 * i), 1000, info),
              b.drop_burst(at(0.01 * i), 1000, info));
  }
  EXPECT_EQ(a.drops(), b.drops());
  EXPECT_GT(a.drops(), 0u);
  EXPECT_LT(a.drops(), 200u);
}

TEST(FaultInjector, DropNextForcesExactlyNDrops) {
  net::FaultInjector inj(sim::FaultPlan{});  // no probabilistic loss
  net::BurstInfo info;
  inj.drop_next(2);
  EXPECT_TRUE(inj.drop_burst(at(0.0), 100, info));
  EXPECT_TRUE(inj.drop_burst(at(0.1), 100, info));
  EXPECT_FALSE(inj.drop_burst(at(0.2), 100, info));
  EXPECT_EQ(inj.drops(), 2u);
}

// ---- TCP loss recovery -------------------------------------------------

struct TcpFaultFixture : ::testing::Test {
  sim::Scheduler sched;
  net::DuplexLink link{sched, "l", BitRate::mbps(80), BitRate::mbps(80),
                       Duration::millis(25)};
  net::Path path{{&link}};
  net::FaultInjector inj{sim::FaultPlan{}};
  net::TcpParams params;

  TcpFaultFixture() {
    link.up().set_fault_injector(&inj);
    link.down().set_fault_injector(&inj);
    params.loss_recovery = true;
  }
};

TEST_F(TcpFaultFixture, RtoRetransmitsADroppedBurst) {
  net::TcpConnection conn(sched, path, params, 1);
  double done = -1;
  conn.connect([&] {
    inj.drop_next(1);
    conn.send_to_server(5'000, 1, [&](TimePoint t) { done = t.sec(); });
  });
  sched.run();
  EXPECT_GT(done, 0.0);  // delivered despite the drop
  EXPECT_EQ(conn.retransmits(), 1u);
  EXPECT_EQ(conn.spurious_retransmits(), 0u);
  EXPECT_FALSE(conn.broken());
  // Recovery waited at least one RTO.
  EXPECT_GE(done, params.min_rto.sec());
}

TEST_F(TcpFaultFixture, ExhaustedRetransmitsBreakTheConnection) {
  params.max_retransmits = 2;
  net::TcpConnection conn(sched, path, params, 1);
  bool delivered = false;
  conn.connect([&] {
    inj.drop_next(10);  // every copy dies
    conn.send_to_server(5'000, 1, [&](TimePoint) { delivered = true; });
  });
  sched.run();  // must terminate: no infinite retransmission
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(conn.broken());
  EXPECT_EQ(conn.retransmits(), 2u);
}

TEST_F(TcpFaultFixture, RecoveryIsOptIn) {
  params.loss_recovery = false;
  net::TcpConnection conn(sched, path, params, 1);
  bool delivered = false;
  conn.connect([&] {
    inj.drop_next(1);
    conn.send_to_server(5'000, 1, [&](TimePoint) { delivered = true; });
  });
  sched.run();
  EXPECT_FALSE(delivered);  // without recovery, the loss is final
  EXPECT_EQ(conn.retransmits(), 0u);
}

// ---- Experiment-level integration --------------------------------------

const web::WebPage& test_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "flt.example.com";
    spec.object_count = 30;
    spec.total_bytes = util::kib(400);
    spec.seed = 29;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://flt.example.com/"));
  }();
  return *page;
}

TEST(FaultedRuns, ProxyCrashDegradesToDirectFetchAndCompletes) {
  core::RunConfig cfg;
  cfg.seed = 5;
  cfg.testbed.faults.proxy_crash_at = at(1.0);  // mid-load
  core::RunResult r =
      core::ExperimentRunner::run(core::Scheme::kParcelInd, test_page(), cfg);
  EXPECT_TRUE(r.ok) << "degraded load must still complete, never hang";
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.direct_fetches, 0u);
  EXPECT_EQ(r.trace.fault_count(trace::FaultKind::kProxyCrash), 1u);
  EXPECT_EQ(r.trace.fault_count(trace::FaultKind::kDegraded), 1u);
}

TEST(FaultedRuns, ProxyRestartDoesNotResumeButClientStillRecovers) {
  core::RunConfig cfg;
  cfg.seed = 5;
  cfg.testbed.faults.proxy_crash_at = at(1.0);
  cfg.testbed.faults.proxy_restart_after = Duration::seconds(2.0);
  core::RunResult r =
      core::ExperimentRunner::run(core::Scheme::kParcelInd, test_page(), cfg);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.degraded);  // page state died with the old process
  EXPECT_GT(r.direct_fetches, 0u);
  EXPECT_EQ(r.trace.fault_count(trace::FaultKind::kProxyRestart), 1u);
}

TEST(FaultedRuns, LossAndBlackoutRunsCompleteWithRecoveryMetrics) {
  core::RunConfig cfg;
  cfg.seed = 9;
  cfg.testbed.faults = sim::FaultPlan::parse("loss=0.05,blackout=1+0.5,seed=3");
  for (core::Scheme s : {core::Scheme::kDir, core::Scheme::kParcelInd}) {
    SCOPED_TRACE(core::to_string(s));
    core::RunResult r = core::ExperimentRunner::run(s, test_page(), cfg);
    EXPECT_TRUE(r.ok);
    EXPECT_GT(r.fault_drops + r.fault_deferrals, 0u);
    EXPECT_EQ(r.fault_drops,
              r.trace.fault_count(trace::FaultKind::kLoss));
    if (r.fault_drops > 0) {
      EXPECT_GT(r.retransmits, 0u);
    }
    if (!r.trace.fault_events().empty()) {
      EXPECT_GE(r.recovery.sec(), 0.0);
    }
  }
}

void expect_identical_faulted(const core::RunResult& a,
                              const core::RunResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.olt.sec(), b.olt.sec());
  EXPECT_EQ(a.tlt.sec(), b.tlt.sec());
  EXPECT_EQ(a.radio.total.j(), b.radio.total.j());
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.fault_deferrals, b.fault_deferrals);
  EXPECT_EQ(a.direct_fetches, b.direct_fetches);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.recovery.sec(), b.recovery.sec());
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace.fault_events().size(), b.trace.fault_events().size());
}

TEST(FaultedRuns, BitwiseIdenticalAcrossJobs) {
  std::vector<core::ExperimentTask> tasks;
  std::uint64_t seed = 13;
  for (core::Scheme s : {core::Scheme::kDir, core::Scheme::kParcelInd,
                         core::Scheme::kParcel512K}) {
    core::RunConfig cfg;
    cfg.seed = seed++;
    cfg.testbed.faults =
        sim::FaultPlan::parse("loss=0.03,blackout=1.5+0.5,crash=1,seed=11");
    tasks.push_back(core::ExperimentTask{s, &test_page(), cfg});
  }
  std::vector<core::RunResult> serial = core::run_experiments(tasks, 1);
  std::vector<core::RunResult> parallel = core::run_experiments(tasks, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(core::to_string(tasks[i].scheme));
    expect_identical_faulted(serial[i], parallel[i]);
  }
}

TEST(FaultedRuns, FaultsOffTracesCarryNoFaultLines) {
  core::RunConfig cfg;
  cfg.seed = 21;
  core::RunResult a =
      core::ExperimentRunner::run(core::Scheme::kParcelInd, test_page(), cfg);
  core::RunResult b =
      core::ExperimentRunner::run(core::Scheme::kParcelInd, test_page(), cfg);
  EXPECT_TRUE(a.trace.fault_events().empty());
  EXPECT_EQ(a.degraded, false);
  EXPECT_EQ(a.retransmits, 0u);
  EXPECT_EQ(a.direct_fetches, 0u);
  // Same seed, fault-free: the serialized capture is byte-identical and
  // fault-format-free.
  std::string text = a.trace.serialize();
  EXPECT_EQ(text, b.trace.serialize());
  EXPECT_EQ(text.find("\nF "), std::string::npos);
  EXPECT_NE(text.rfind("F ", 0), 0u);  // no leading fault line either
}

TEST(RunRounds, RejectsBadConfigsWithClearErrors) {
  std::vector<core::Scheme> schemes{core::Scheme::kDir};
  core::RoundsConfig cfg;
  cfg.rounds = 0;
  EXPECT_THROW(core::run_rounds(test_page(), schemes, cfg),
               std::invalid_argument);
  cfg.rounds = 2;
  cfg.signal_tolerance_db = -1.0;
  EXPECT_THROW(core::run_rounds(test_page(), schemes, cfg),
               std::invalid_argument);
  cfg.signal_tolerance_db = 3.0;
  cfg.base.testbed.faults.loss_probability = 2.0;  // malformed plan
  EXPECT_THROW(core::run_rounds(test_page(), schemes, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace parcel
