#include <gtest/gtest.h>

#include "net/dns.hpp"
#include "net/url.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {
namespace {

TEST(Url, ParsesFullUrl) {
  Url u = Url::parse("https://www.example.com/a/b.js?x=1&r=9");
  EXPECT_EQ(u.scheme(), "https");
  EXPECT_EQ(u.host(), "www.example.com");
  EXPECT_EQ(u.path(), "/a/b.js");
  EXPECT_EQ(u.query(), "x=1&r=9");
  EXPECT_TRUE(u.is_https());
  EXPECT_EQ(u.str(), "https://www.example.com/a/b.js?x=1&r=9");
  EXPECT_EQ(u.without_query(), "www.example.com/a/b.js");
}

TEST(Url, DefaultsSchemeAndPath) {
  Url u = Url::parse("example.com");
  EXPECT_EQ(u.scheme(), "http");
  EXPECT_EQ(u.path(), "/");
  EXPECT_FALSE(u.is_https());
}

TEST(Url, EmptyHostThrows) {
  EXPECT_THROW(Url::parse("http:///path"), std::invalid_argument);
}

TEST(Url, ResolveAbsolute) {
  Url base = Url::parse("http://a.example/dir/page.html");
  EXPECT_EQ(base.resolve("http://b.example/x").str(), "http://b.example/x");
  EXPECT_EQ(base.resolve("//c.example/y").str(), "http://c.example/y");
}

TEST(Url, ResolveAbsolutePath) {
  Url base = Url::parse("http://a.example/dir/page.html");
  EXPECT_EQ(base.resolve("/img/z.png?k=1").str(),
            "http://a.example/img/z.png?k=1");
}

TEST(Url, ResolveRelativePath) {
  Url base = Url::parse("http://a.example/dir/page.html");
  EXPECT_EQ(base.resolve("pic.png").str(), "http://a.example/dir/pic.png");
}

TEST(Url, ResolveDotSegments) {
  Url base = Url::parse("http://a.example/css/deep/style.css");
  EXPECT_EQ(base.resolve("../img.png").str(),
            "http://a.example/css/img.png");
  EXPECT_EQ(base.resolve("../../top.png").str(), "http://a.example/top.png");
  EXPECT_EQ(base.resolve("./here.png").str(),
            "http://a.example/css/deep/here.png");
  // Escaping past the root clamps at the root.
  EXPECT_EQ(base.resolve("../../../../x.png").str(),
            "http://a.example/x.png");
}

TEST(Url, EqualityAndHash) {
  Url a = Url::parse("http://x.example/p");
  Url b = Url::parse("http://x.example/p");
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<Url>{}(a), std::hash<Url>{}(b));
}

struct DnsFixture : ::testing::Test {
  sim::Scheduler sched;
  DuplexLink link{sched, "l", util::BitRate::mbps(10), util::BitRate::mbps(10),
                  util::Duration::millis(20)};
  Path path{{&link}};
};

TEST_F(DnsFixture, LookupCostsRttPlusServerLatency) {
  DnsClient dns(sched, path, util::Duration::millis(25), util::Rng(1),
                [] { return 1u; });
  double resolved_at = -1;
  dns.resolve("example.com", [&] { resolved_at = sched.now().sec(); });
  sched.run();
  EXPECT_GT(resolved_at, 0.040);  // at least one RTT
  EXPECT_EQ(dns.lookups_issued(), 1u);
}

TEST_F(DnsFixture, CacheHitIsSynchronousSecondTime) {
  DnsClient dns(sched, path, util::Duration::millis(25), util::Rng(1),
                [] { return 1u; });
  dns.resolve("example.com", [] {});
  sched.run();
  bool hit = false;
  dns.resolve("example.com", [&] { hit = true; });
  EXPECT_TRUE(hit);  // immediate, no event needed
  EXPECT_EQ(dns.cache_hits(), 1u);
  EXPECT_EQ(dns.lookups_issued(), 1u);
}

TEST_F(DnsFixture, DistinctDomainsEachLookedUp) {
  DnsClient dns(sched, path, util::Duration::millis(5), util::Rng(1),
                [] { return 1u; });
  int resolved = 0;
  dns.resolve("a.example", [&] { ++resolved; });
  dns.resolve("b.example", [&] { ++resolved; });
  sched.run();
  EXPECT_EQ(resolved, 2);
  EXPECT_EQ(dns.lookups_issued(), 2u);
}

}  // namespace
}  // namespace parcel::net
