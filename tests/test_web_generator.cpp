#include <gtest/gtest.h>

#include <unordered_set>

#include "util/stats.hpp"
#include "web/css.hpp"
#include "web/generator.hpp"
#include "web/html.hpp"
#include "web/js.hpp"

namespace parcel::web {
namespace {

TEST(PageGenerator, DeterministicForSameSpec) {
  PageSpec spec;
  spec.seed = 99;
  WebPage a = PageGenerator::generate(spec);
  WebPage b = PageGenerator::generate(spec);
  EXPECT_EQ(a.object_count(), b.object_count());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.main().text(), b.main().text());
}

TEST(PageGenerator, HonorsObjectCountAndByteBudget) {
  PageSpec spec;
  spec.object_count = 120;
  spec.total_bytes = mib(2);
  spec.seed = 5;
  WebPage page = PageGenerator::generate(spec);
  EXPECT_NEAR(static_cast<double>(page.object_count()), 120.0, 6.0);
  EXPECT_NEAR(static_cast<double>(page.total_bytes()),
              static_cast<double>(spec.total_bytes),
              0.30 * static_cast<double>(spec.total_bytes));
}

TEST(PageGenerator, EveryReferencedUrlExistsInPage) {
  PageSpec spec;
  spec.object_count = 90;
  spec.seed = 11;
  WebPage page = PageGenerator::generate(spec);

  auto check_ref = [&](const Reference& ref, const net::Url& base) {
    net::Url url = base.resolve(ref.target);
    EXPECT_NE(page.find(url), nullptr) << "dangling ref: " << url.str();
  };
  for (const WebObject* obj : page.objects()) {
    if (obj->type == ObjectType::kHtml) {
      for (const auto& token : MiniHtml::scan(obj->text())) {
        if (token.kind == HtmlToken::Kind::kReference) {
          check_ref(token.ref, obj->url);
        }
      }
    } else if (obj->type == ObjectType::kCss) {
      for (const auto& ref : MiniCss::scan(obj->text())) {
        check_ref(ref, obj->url);
      }
    } else if (obj->type == ObjectType::kJs ||
               obj->type == ObjectType::kJsAsync) {
      for (const auto& ref : MiniJs::run(obj->text()).references) {
        check_ref(ref, obj->url);
      }
    }
  }
}

TEST(PageGenerator, AllJsParsesUnderMiniJs) {
  PageSpec spec;
  spec.object_count = 150;
  spec.seed = 21;
  WebPage page = PageGenerator::generate(spec);
  std::size_t js_seen = 0;
  for (const WebObject* obj : page.objects()) {
    if (obj->type == ObjectType::kJs || obj->type == ObjectType::kJsAsync) {
      ++js_seen;
      EXPECT_NO_THROW(MiniJs::run(obj->text())) << obj->url.str();
      EXPECT_GT(obj->js_work, 0.0);
    }
  }
  EXPECT_GE(js_seen, 20u);  // paper: pages with >=100 objects have >=20 JS
}

TEST(PageGenerator, TextObjectSizesMatchContent) {
  PageSpec spec;
  spec.seed = 31;
  WebPage page = PageGenerator::generate(spec);
  for (const WebObject* obj : page.objects()) {
    if (obj->content) {
      EXPECT_EQ(obj->size, static_cast<Bytes>(obj->content->size()))
          << obj->url.str();
    } else {
      EXPECT_GT(obj->size, 0);
    }
  }
}

TEST(PageGenerator, PostOnloadClusterExists) {
  PageSpec spec;
  spec.object_count = 120;
  spec.seed = 41;
  WebPage page = PageGenerator::generate(spec);
  std::size_t post = 0;
  for (const WebObject* obj : page.objects()) {
    if (obj->post_onload) ++post;
  }
  EXPECT_GT(post, 0u);
  EXPECT_LT(post, page.object_count() / 2);
  EXPECT_LT(page.onload_bytes(), page.total_bytes());
}

TEST(PageGenerator, SpansMultipleDomains) {
  PageSpec spec;
  spec.extra_domains = 8;
  spec.seed = 51;
  WebPage page = PageGenerator::generate(spec);
  EXPECT_GE(page.domain_names().size(), 4u);
}

TEST(PageGenerator, GalleryRegistersClickHandlers) {
  PageSpec spec = PageGenerator::interactive_spec(61);
  WebPage page = PageGenerator::generate(spec);
  std::size_t handlers = 0;
  for (const WebObject* obj : page.objects()) {
    if (obj->type == ObjectType::kJs) {
      handlers += MiniJs::run(obj->text()).click_handlers.size();
    }
  }
  EXPECT_EQ(handlers, static_cast<std::size_t>(spec.gallery_items));
}

TEST(PageGenerator, CorpusStatisticsTrackPaper) {
  PageGenerator gen(2014);
  auto specs = gen.corpus_specs(200);
  int big_pages = 0;
  std::vector<double> sizes;
  for (const auto& spec : specs) {
    if (spec.object_count >= 100) ++big_pages;
    sizes.push_back(static_cast<double>(spec.total_bytes));
  }
  // Paper §2.1: ~40% of pages have >=100 objects. §7.2: median ~1.04 MB,
  // pages from a few KB to 5 MB.
  double big_fraction = static_cast<double>(big_pages) / 200.0;
  EXPECT_NEAR(big_fraction, 0.40, 0.12);
  double median_size = util::median(sizes);
  EXPECT_NEAR(median_size, 1.04e6, 0.35e6);
  EXPECT_LE(*std::max_element(sizes.begin(), sizes.end()), 5.0e6);
}

TEST(PageGenerator, RejectsTinySpecs) {
  PageSpec spec;
  spec.object_count = 3;
  EXPECT_THROW(PageGenerator::generate(spec), std::invalid_argument);
}

TEST(PageGenerator, SomeJsonFetchesAreRandomized) {
  PageGenerator gen(7);
  bool found = false;
  for (int i = 0; i < 10 && !found; ++i) {
    WebPage page = PageGenerator::generate(gen.sample_spec(i));
    for (const WebObject* obj : page.objects()) {
      if (obj->content &&
          obj->content->find("fetchRand(") != std::string::npos) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace parcel::web
