#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/experiment.hpp"
#include "fleet/epoch_plan.hpp"
#include "fleet/fleet_runner.hpp"
#include "fleet/proxy_compute.hpp"
#include "fleet/shared_store.hpp"
#include "replay/replay_store.hpp"
#include "sim/scheduler.hpp"
#include "web/generator.hpp"
#include "web/object.hpp"

namespace parcel::fleet {
namespace {

// A small replayed corpus shared by the fleet tests (same pattern as
// test_parallel_runner: static store keeps the snapshots alive).
const std::vector<const web::WebPage*>& test_corpus() {
  static std::vector<const web::WebPage*>* corpus = [] {
    static replay::ReplayStore store;
    auto* pages = new std::vector<const web::WebPage*>;
    for (int p = 0; p < 2; ++p) {
      web::PageSpec spec;
      spec.site = "fleet" + std::to_string(p) + ".example.com";
      spec.object_count = 24;
      spec.total_bytes = util::kib(300);
      spec.seed = 40 + static_cast<std::uint64_t>(p);
      store.record(web::PageGenerator::generate(spec));
      pages->push_back(
          store.find("http://fleet" + std::to_string(p) + ".example.com/"));
    }
    return pages;
  }();
  return *corpus;
}

const web::WebPage& test_page() { return *test_corpus()[0]; }

// Synthetic text object whose content the test owns (store keys on the
// content address, so each object needs its own string).
web::WebObject text_object(const std::string& url, util::Bytes size) {
  web::WebObject object;
  object.url = net::Url::parse(url);
  object.type = web::ObjectType::kHtml;
  object.size = size;
  object.content = std::make_shared<const std::string>(
      std::string(static_cast<std::size_t>(size), 'x'));
  return object;
}

web::WebObject opaque_object(const std::string& url, util::Bytes size) {
  web::WebObject object;
  object.url = net::Url::parse(url);
  object.type = web::ObjectType::kImage;
  object.size = size;
  return object;
}

// The single-run determinism contract, borrowed from the parallel-runner
// tests: bitwise, not approximate.
void expect_identical(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.olt.sec(), b.olt.sec());
  EXPECT_EQ(a.tlt.sec(), b.tlt.sec());
  EXPECT_EQ(a.radio.total.j(), b.radio.total.j());
  EXPECT_EQ(a.radio.cr.j(), b.radio.cr.j());
  EXPECT_EQ(a.cpu_busy.sec(), b.cpu_busy.sec());
  EXPECT_EQ(a.radio_http_requests, b.radio_http_requests);
  EXPECT_EQ(a.tcp_connections, b.tcp_connections);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
}

void expect_fleet_identical(const FleetMetrics& a, const FleetMetrics& b) {
  ASSERT_EQ(a.clients.size(), b.clients.size());
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    SCOPED_TRACE("client " + std::to_string(i));
    EXPECT_EQ(a.clients[i].shed, b.clients[i].shed);
    EXPECT_EQ(a.clients[i].queue_wait.sec(), b.clients[i].queue_wait.sec());
    EXPECT_EQ(a.clients[i].olt.sec(), b.clients[i].olt.sec());
    EXPECT_EQ(a.clients[i].tlt.sec(), b.clients[i].tlt.sec());
    expect_identical(a.clients[i].session, b.clients[i].session);
  }
  EXPECT_EQ(a.olt_p50, b.olt_p50);
  EXPECT_EQ(a.olt_p95, b.olt_p95);
  EXPECT_EQ(a.olt_p99, b.olt_p99);
  EXPECT_EQ(a.wait_p95, b.wait_p95);
  EXPECT_EQ(a.proxy_busy_sec, b.proxy_busy_sec);
  EXPECT_EQ(a.fetch_parse_sec, b.fetch_parse_sec);
  EXPECT_EQ(a.energy_j_total, b.energy_j_total);
  EXPECT_EQ(a.store.hits, b.store.hits);
  EXPECT_EQ(a.store.misses, b.store.misses);
  EXPECT_EQ(a.store.bytes_saved, b.store.bytes_saved);
  EXPECT_EQ(a.compute.completed, b.compute.completed);
}

// ---------------------------------------------------------------------
// SharedObjectStore

TEST(SharedStore, FirstSessionMissesSecondSessionHits) {
  SharedObjectStore store;
  const web::WebPage& page = test_page();
  util::Bytes total = 0;
  for (const web::WebObject* object : page.objects()) {
    EXPECT_FALSE(store.contains(*object));
    SharedObjectStore::Outcome outcome = store.request(*object);
    EXPECT_FALSE(outcome.hit);
    total += object->size;
  }
  std::uint64_t n = store.stats().misses;
  EXPECT_EQ(n, page.objects().size());
  EXPECT_EQ(store.stats().hits, 0u);
  EXPECT_EQ(store.stats().bytes_stored, total);

  util::Bytes saved = 0;
  for (const web::WebObject* object : page.objects()) {
    EXPECT_TRUE(store.contains(*object));
    SharedObjectStore::Outcome outcome = store.request(*object);
    EXPECT_TRUE(outcome.hit);
    saved += outcome.bytes_saved;
  }
  EXPECT_EQ(store.stats().hits, n);
  EXPECT_EQ(store.stats().misses, n);
  EXPECT_EQ(store.stats().bytes_saved, total);
  EXPECT_EQ(saved, total);
  EXPECT_DOUBLE_EQ(store.stats().hit_rate(), 0.5);
}

TEST(SharedStore, TextAndOpaqueKeysAreIndependent) {
  SharedObjectStore store;
  web::WebObject text = text_object("http://k.example.com/a.html", 100);
  web::WebObject image = opaque_object("http://k.example.com/a.html", 100);
  EXPECT_FALSE(store.request(text).hit);
  // Same URL and size, but an opaque body is a different artifact.
  EXPECT_FALSE(store.request(image).hit);
  EXPECT_TRUE(store.request(text).hit);
  EXPECT_TRUE(store.request(image).hit);
  EXPECT_EQ(store.entries(), 2u);
}

TEST(SharedStore, FifoEvictionUnderCapacity) {
  SharedObjectStore store(250);
  web::WebObject a = text_object("http://e.example.com/a", 100);
  web::WebObject b = text_object("http://e.example.com/b", 100);
  web::WebObject c = text_object("http://e.example.com/c", 100);
  store.request(a);
  store.request(b);
  EXPECT_EQ(store.stats().evictions, 0u);
  store.request(c);  // 300 > 250: evict the oldest (a)
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.entries(), 2u);
  EXPECT_EQ(store.stats().bytes_stored, 200);
  EXPECT_FALSE(store.contains(a));
  EXPECT_TRUE(store.contains(b));
  EXPECT_TRUE(store.contains(c));
}

TEST(SharedStore, OversizedEntryIsNeverItsOwnVictim) {
  SharedObjectStore store(250);
  web::WebObject big = text_object("http://e.example.com/big", 400);
  store.request(big);
  // A single artifact larger than capacity passes through resident.
  EXPECT_EQ(store.entries(), 1u);
  EXPECT_TRUE(store.contains(big));
  EXPECT_EQ(store.stats().evictions, 0u);
}

TEST(SharedStore, ClearDropsEntriesKeepsCounters) {
  SharedObjectStore store;
  web::WebObject a = text_object("http://c.example.com/a", 64);
  store.request(a);
  store.request(a);
  store.clear();
  EXPECT_EQ(store.entries(), 0u);
  EXPECT_EQ(store.stats().bytes_stored, 0);
  EXPECT_FALSE(store.contains(a));
  // Run totals survive a clear (hits/misses are cumulative accounting).
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
}

// ---------------------------------------------------------------------
// ProxyCompute

ProxyComputeConfig flat_cost_config(int workers, double task_sec) {
  ProxyComputeConfig cfg;
  cfg.workers = workers;
  cfg.costs = TaskCosts::idle();
  cfg.costs.fetch_base = util::Duration::seconds(task_sec);
  cfg.costs.parse_base = util::Duration::seconds(task_sec);
  cfg.costs.bundle_base = util::Duration::seconds(task_sec);
  return cfg;
}

TEST(ProxyCompute, FifoWaitsAreExactWithOneWorker) {
  sim::Scheduler sched;
  ProxyCompute compute(sched, flat_cost_config(1, 0.010));
  std::vector<double> waited, finished;
  auto done = [&](util::TimePoint f, util::Duration w) {
    finished.push_back(f.sec());
    waited.push_back(w.sec());
  };
  for (int i = 0; i < 3; ++i) {
    compute.submit(0, 1.0, TaskKind::kFetch, 0, done);
  }
  sched.run();
  ASSERT_EQ(waited.size(), 3u);
  EXPECT_DOUBLE_EQ(waited[0], 0.000);
  EXPECT_DOUBLE_EQ(waited[1], 0.010);
  EXPECT_DOUBLE_EQ(waited[2], 0.020);
  EXPECT_DOUBLE_EQ(finished[2], 0.030);
  EXPECT_EQ(compute.stats().completed, 3u);
  EXPECT_DOUBLE_EQ(compute.stats().fetch_busy_sec, 0.030);
  EXPECT_EQ(compute.idle_workers(), 1);
  EXPECT_EQ(compute.queued(), 0u);
}

TEST(ProxyCompute, WeightedFairServesHeavyClientFirst) {
  sim::Scheduler sched;
  ProxyComputeConfig cfg = flat_cost_config(1, 0.040);
  cfg.policy = QueuePolicy::kWeightedFair;
  ProxyCompute compute(sched, cfg);
  std::vector<int> order;
  auto track = [&](int client) {
    return [&order, client](util::TimePoint, util::Duration) {
      order.push_back(client);
    };
  };
  // Client 0 occupies the worker; clients 1 (weight 1) and 2 (weight 4)
  // queue alternately. WFQ must drain the heavy client's backlog first
  // even though submission order interleaves.
  compute.submit(0, 1.0, TaskKind::kBundle, 0, track(0));
  compute.submit(1, 1.0, TaskKind::kFetch, 0, track(1));
  compute.submit(2, 4.0, TaskKind::kFetch, 0, track(2));
  compute.submit(1, 1.0, TaskKind::kFetch, 0, track(1));
  compute.submit(2, 4.0, TaskKind::kFetch, 0, track(2));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 2, 1, 1}));
}

TEST(ProxyCompute, FifoBreaksTiesBySubmissionOrder) {
  sim::Scheduler sched;
  ProxyCompute compute(sched, flat_cost_config(1, 0.005));
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    compute.submit(i, 1.0, TaskKind::kParse, 0,
                   [&order, i](util::TimePoint, util::Duration) {
                     order.push_back(i);
                   });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProxyCompute, TaskQueueAdmissionBound) {
  sim::Scheduler sched;
  ProxyComputeConfig cfg = flat_cost_config(1, 1.0);
  cfg.max_queue = 2;
  ProxyCompute compute(sched, cfg);
  auto nop = [](util::TimePoint, util::Duration) {};
  compute.submit(0, 1.0, TaskKind::kFetch, 0, nop);  // into service
  EXPECT_TRUE(compute.can_accept(2));
  compute.submit(0, 1.0, TaskKind::kFetch, 0, nop);
  compute.submit(0, 1.0, TaskKind::kFetch, 0, nop);
  EXPECT_EQ(compute.queued(), 2u);
  EXPECT_FALSE(compute.can_accept(1));
  sched.run();
  EXPECT_TRUE(compute.can_accept(1));
}

TEST(ProxyCompute, BacklogAdmissionBound) {
  sim::Scheduler sched;
  ProxyComputeConfig cfg = flat_cost_config(1, 0.040);
  cfg.max_backlog = util::Duration::millis(50);
  ProxyCompute compute(sched, cfg);
  auto nop = [](util::TimePoint, util::Duration) {};
  compute.submit(0, 1.0, TaskKind::kFetch, 0, nop);  // in service, no backlog
  EXPECT_DOUBLE_EQ(compute.backlog().sec(), 0.0);
  EXPECT_TRUE(compute.can_accept(1, util::Duration::millis(40)));
  compute.submit(0, 1.0, TaskKind::kFetch, 0, nop);  // queued: 40 ms backlog
  EXPECT_DOUBLE_EQ(compute.backlog().sec(), 0.040);
  EXPECT_FALSE(compute.can_accept(1, util::Duration::millis(20)));
  EXPECT_TRUE(compute.can_accept(1, util::Duration::millis(10)));
  sched.run();
  EXPECT_DOUBLE_EQ(compute.backlog().sec(), 0.0);
}

TEST(ProxyCompute, BlackoutDefersServiceStart) {
  sim::Scheduler sched;
  sim::FaultPlan plan;
  plan.blackouts.push_back(sim::FaultWindow{util::TimePoint::origin(),
                                            util::Duration::millis(100)});
  ProxyCompute compute(sched, flat_cost_config(1, 0.010), &plan);
  double waited = -1.0, finished = -1.0;
  compute.submit(0, 1.0, TaskKind::kFetch, 0,
                 [&](util::TimePoint f, util::Duration w) {
                   finished = f.sec();
                   waited = w.sec();
                 });
  sched.run();
  // Submitted at t=0 into the outage: service starts at the window's end.
  EXPECT_DOUBLE_EQ(waited, 0.100);
  EXPECT_DOUBLE_EQ(finished, 0.110);
}

TEST(ProxyCompute, ValidateRejectsNonsense) {
  sim::Scheduler sched;
  ProxyComputeConfig bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW(ProxyCompute(sched, bad_workers), std::invalid_argument);
  ProxyComputeConfig bad_cost;
  bad_cost.costs.parse_base = util::Duration::seconds(-1.0);
  EXPECT_THROW(ProxyCompute(sched, bad_cost), std::invalid_argument);
  ProxyComputeConfig bad_backlog;
  bad_backlog.max_backlog = util::Duration::seconds(-0.5);
  EXPECT_THROW(ProxyCompute(sched, bad_backlog), std::invalid_argument);
}

// ---------------------------------------------------------------------
// FleetRunner

TEST(FleetRunner, DeriveClientsIsDeterministicAndRoundRobin) {
  FleetConfig cfg;
  cfg.clients = 6;
  cfg.arrival_seed = 99;
  std::vector<ClientSpec> a = derive_clients(cfg, 2);
  std::vector<ClientSpec> b = derive_clients(cfg, 2);
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0].arrival.sec(), 0.0);
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].arrival.sec(), b[k].arrival.sec());
    EXPECT_EQ(a[k].config.seed, b[k].config.seed);
    EXPECT_EQ(a[k].page_index, k % 2);
    if (k > 0) {
      EXPECT_GE(a[k].arrival.sec(), a[k - 1].arrival.sec());
    }
  }
  // Distinct per-client seeds (pure function of the client index).
  EXPECT_NE(a[0].config.seed, a[1].config.seed);

  FleetConfig bad = cfg;
  bad.clients = 0;
  EXPECT_THROW(derive_clients(bad, 2), std::invalid_argument);
  EXPECT_THROW(derive_clients(cfg, 0), std::invalid_argument);
}

TEST(FleetRunner, SingleClientIdleComputeReproducesExperimentRunner) {
  // The K=1 regression pin (ISSUE 5 satellite): an idle proxy and a lone
  // client must reproduce the single-client harness byte-for-byte.
  FleetConfig cfg;
  cfg.clients = 1;
  cfg.scheme = core::Scheme::kParcelInd;
  cfg.compute = ProxyComputeConfig::idle();
  cfg.base.seed = 7;
  FleetMetrics metrics = run_fleet(test_corpus(), cfg);

  ASSERT_EQ(metrics.admitted, 1);
  EXPECT_EQ(metrics.shed, 0);
  const FleetClientResult& r = metrics.clients[0];
  EXPECT_EQ(r.queue_wait.sec(), 0.0);

  core::RunConfig expected_cfg = cfg.base;
  expected_cfg.seed = cfg.base.seed + 1;  // derive_clients, k = 0
  expected_cfg.testbed.fade_seed = cfg.base.testbed.fade_seed + 1;
  core::RunResult expected = core::ExperimentRunner::run(
      core::Scheme::kParcelInd, test_page(), expected_cfg);
  expect_identical(r.session, expected);
  // With zero waits the fleet-adjusted timeline IS the session timeline.
  EXPECT_EQ(r.olt.sec(), expected.olt.sec());
  EXPECT_EQ(r.tlt.sec(), expected.tlt.sec());
}

TEST(FleetRunner, ExplicitSpecsMirrorRunRoundsByteForByte) {
  // Same grid, two harnesses: run_rounds' (round x scheme) sweep vs a
  // fleet of explicit specs using run_rounds' exact seed derivation.
  std::vector<core::Scheme> schemes{core::Scheme::kDir,
                                    core::Scheme::kParcelInd};
  core::RoundsConfig rounds_cfg;
  rounds_cfg.rounds = 2;
  rounds_cfg.discard_first_round = false;
  rounds_cfg.base.seed = 21;
  core::RoundsOutcome rounds =
      core::run_rounds(test_page(), schemes, rounds_cfg);
  ASSERT_EQ(rounds.rounds_kept, 2);

  FleetConfig cfg;
  cfg.compute = ProxyComputeConfig::idle();
  cfg.base = rounds_cfg.base;
  std::vector<ClientSpec> specs;
  for (int round = 0; round < rounds_cfg.rounds; ++round) {
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      ClientSpec spec;
      spec.client = static_cast<int>(specs.size());
      spec.page_index = 0;
      spec.scheme = schemes[i];
      spec.arrival = util::TimePoint::origin() +
                     util::Duration::seconds(static_cast<double>(round));
      spec.config = rounds_cfg.base;
      spec.config.seed = rounds_cfg.base.seed +
                         1000003ULL * static_cast<std::uint64_t>(round) +
                         97ULL * i;
      spec.config.testbed.fade_seed =
          rounds_cfg.base.testbed.fade_seed +
          7919ULL * static_cast<std::uint64_t>(round) + 31ULL * i + 1;
      specs.push_back(std::move(spec));
    }
  }
  std::vector<const web::WebPage*> corpus{&test_page()};
  FleetMetrics metrics = run_fleet(corpus, specs, cfg);
  ASSERT_EQ(metrics.admitted, 4);

  for (int round = 0; round < rounds_cfg.rounds; ++round) {
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " " +
                   core::to_string(schemes[i]));
      const core::RunResult& expected =
          rounds.series.at(schemes[i]).runs[static_cast<std::size_t>(round)];
      const core::RunResult& actual =
          metrics
              .clients[static_cast<std::size_t>(round) * schemes.size() + i]
              .session;
      expect_identical(actual, expected);
    }
  }
}

TEST(FleetRunner, Jobs4BitwiseIdenticalToJobs1) {
  FleetConfig cfg;
  cfg.clients = 8;
  cfg.arrival_seed = 5;
  cfg.mean_interarrival = util::Duration::millis(50);
  cfg.compute.workers = 2;  // contended: real waits in the results
  cfg.base.seed = 31;

  cfg.jobs = 1;
  FleetMetrics serial = run_fleet(test_corpus(), cfg);
  cfg.jobs = 4;
  FleetMetrics parallel = run_fleet(test_corpus(), cfg);
  expect_fleet_identical(serial, parallel);
  // Contention actually happened (the identity wasn't vacuous).
  EXPECT_GT(serial.wait_p95, 0.0);
}

TEST(FleetRunner, SharedStoreHitRatePin) {
  // K=8 round-robin over 2 pages: clients 0-1 warm the store, clients
  // 2-7 hit everything. Exact counts, not approximations.
  FleetConfig cfg;
  cfg.clients = 8;
  cfg.compute = ProxyComputeConfig::idle();
  cfg.base.seed = 3;
  FleetMetrics metrics = run_fleet(test_corpus(), cfg);

  std::uint64_t objects_per_round = 0;
  util::Bytes bytes_per_round = 0;
  for (const web::WebPage* page : test_corpus()) {
    objects_per_round += page->objects().size();
    for (const web::WebObject* object : page->objects()) {
      bytes_per_round += object->size;
    }
  }
  ASSERT_EQ(metrics.admitted, 8);
  EXPECT_EQ(metrics.store.misses, objects_per_round);
  EXPECT_EQ(metrics.store.hits, 3 * objects_per_round);
  EXPECT_EQ(metrics.store.bytes_saved, 3 * bytes_per_round);
  EXPECT_DOUBLE_EQ(metrics.store.hit_rate(), 0.75);
}

TEST(FleetRunner, BlackoutFillsQueueAndShedsLateArrivals) {
  // During a proxy-side blackout nothing dispatches, so client 0's batch
  // camps in the queue and every later arrival is refused 503-style.
  const web::WebPage& page = test_page();
  std::size_t batch = 1;
  for (const web::WebObject* object : page.objects()) {
    batch += web::is_parseable(object->type) ? 2u : 1u;
  }

  FleetConfig cfg;
  cfg.clients = 5;
  cfg.mean_interarrival = util::Duration::millis(50);
  cfg.compute = ProxyComputeConfig::idle();
  cfg.compute.max_queue = batch;
  cfg.base.seed = 11;
  std::vector<const web::WebPage*> corpus{&page};

  // Control: no faults, idle compute — the queue never fills.
  FleetMetrics calm = run_fleet(corpus, cfg);
  EXPECT_EQ(calm.shed, 0);
  EXPECT_EQ(calm.admitted, 5);

  // Blackout spanning every arrival: client 0's cold batch camps in the
  // queue. Client 1 still fits — the warmed store shrinks its batch to a
  // single bundle task — and everyone after that is refused.
  cfg.base.testbed.faults = sim::FaultPlan::parse("blackout=0+10");
  FleetMetrics stormy = run_fleet(corpus, cfg);
  EXPECT_EQ(stormy.admitted, 2);
  EXPECT_EQ(stormy.shed, 3);
  EXPECT_EQ(stormy.clients[0].queue_wait.sec(), 10.0);
  EXPECT_GT(stormy.clients[1].queue_wait.sec(), 9.0);
  for (std::size_t i = 2; i < stormy.clients.size(); ++i) {
    EXPECT_TRUE(stormy.clients[i].shed);
    EXPECT_EQ(stormy.clients[i].queue_wait.sec(), 0.0);
  }
  // Shed clients never touched the store (admission only peeks): client
  // 0 supplied every miss, client 1 every hit.
  std::uint64_t objects = page.objects().size();
  EXPECT_EQ(stormy.store.misses, objects);
  EXPECT_EQ(stormy.store.hits, objects);
}

// ---------------------------------------------------------------------
// Streaming mode + epoch partition (ISSUE 7)

// Exact nearest-rank percentile over the exact-mode per-client results,
// the statistic the streaming sketch approximates.
double nearest_rank(std::vector<double> values, double pct) {
  std::sort(values.begin(), values.end());
  auto n = static_cast<double>(values.size());
  auto rank = static_cast<std::size_t>(
      std::max(1.0, std::min(n, std::ceil(pct / 100.0 * n))));
  return values[rank - 1];
}

// Full bitwise comparison of two streaming-mode runs: integer counters,
// sketches (integer bin counts), and double sums — the fold order is
// fixed by epoch index, so equality is exact, not approximate.
void expect_streaming_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_TRUE(a.streaming);
  EXPECT_TRUE(b.streaming);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.epoch_parallel, b.epoch_parallel);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.sessions_ok, b.sessions_ok);
  EXPECT_EQ(a.olt_stats, b.olt_stats);
  EXPECT_EQ(a.tlt_stats, b.tlt_stats);
  EXPECT_EQ(a.wait_stats, b.wait_stats);
  EXPECT_EQ(a.energy_stats, b.energy_stats);
  EXPECT_EQ(a.olt_p50, b.olt_p50);
  EXPECT_EQ(a.olt_p95, b.olt_p95);
  EXPECT_EQ(a.olt_p99, b.olt_p99);
  EXPECT_EQ(a.wait_p95, b.wait_p95);
  EXPECT_EQ(a.energy_j_total, b.energy_j_total);
  EXPECT_EQ(a.proxy_busy_sec, b.proxy_busy_sec);
  EXPECT_EQ(a.fetch_parse_sec, b.fetch_parse_sec);
  EXPECT_EQ(a.store.hits, b.store.hits);
  EXPECT_EQ(a.store.misses, b.store.misses);
  EXPECT_EQ(a.store.evictions, b.store.evictions);
  EXPECT_EQ(a.store.bytes_saved, b.store.bytes_saved);
  EXPECT_EQ(a.store.bytes_stored, b.store.bytes_stored);
  EXPECT_EQ(a.compute.completed, b.compute.completed);
  EXPECT_EQ(a.compute.last_finish.sec(), b.compute.last_finish.sec());
}

TEST(FleetStreaming, MatchesExactModeWithinDocumentedBound) {
  // Same fleet, both pipelines: integer counters must agree exactly;
  // sketch-backed quantiles within the documented relative-error bound of
  // the exact nearest-rank statistic; double sums to fold-order slack.
  FleetConfig cfg;
  cfg.clients = 12;
  cfg.arrival_seed = 5;
  cfg.mean_interarrival = util::Duration::millis(50);
  cfg.compute.workers = 2;  // contended: nonzero waits in both pipelines
  cfg.base.seed = 31;

  FleetMetrics exact = run_fleet(test_corpus(), cfg);
  cfg.streaming = true;
  cfg.epoch_min_sessions = 2;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);

  EXPECT_TRUE(stream.streaming);
  EXPECT_TRUE(stream.clients.empty());  // never materialized
  EXPECT_EQ(stream.admitted, exact.admitted);
  EXPECT_EQ(stream.shed, exact.shed);
  EXPECT_EQ(stream.store.hits, exact.store.hits);
  EXPECT_EQ(stream.store.misses, exact.store.misses);
  EXPECT_EQ(stream.store.evictions, exact.store.evictions);
  EXPECT_EQ(stream.store.bytes_saved, exact.store.bytes_saved);
  EXPECT_EQ(stream.store.bytes_stored, exact.store.bytes_stored);
  EXPECT_EQ(stream.compute.completed, exact.compute.completed);
  EXPECT_EQ(stream.sessions_ok, static_cast<std::uint64_t>(exact.admitted));
  EXPECT_NEAR(stream.energy_j_total, exact.energy_j_total,
              1e-9 * exact.energy_j_total);
  EXPECT_NEAR(stream.proxy_busy_sec, exact.proxy_busy_sec,
              1e-9 * exact.proxy_busy_sec + 1e-12);

  std::vector<double> olts, waits;
  for (const FleetClientResult& r : exact.clients) {
    if (r.shed) continue;
    olts.push_back(r.olt.sec());
    waits.push_back(r.queue_wait.sec());
  }
  double bound = stream.olt_stats.histogram().relative_error_bound();
  for (double pct : {50.0, 95.0, 99.0}) {
    double e = nearest_rank(olts, pct);
    EXPECT_NEAR(stream.olt_stats.quantile(pct), e, bound * e + 1e-12);
  }
  double w95 = nearest_rank(waits, 95.0);
  EXPECT_NEAR(stream.wait_p95, w95, bound * w95 + 1e-12);
}

TEST(FleetStreaming, EpochParallelBitwiseIdenticalAcrossJobs) {
  // Sparse arrivals + small min epoch: the planner must find several
  // non-interacting epochs, and any --jobs value must produce bitwise
  // identical metrics (integer merges; fixed epoch-order double folds).
  FleetConfig cfg;
  cfg.clients = 10;
  cfg.arrival_seed = 7;
  cfg.mean_interarrival = util::Duration::seconds(5);  // drained between
  cfg.base.seed = 13;
  cfg.streaming = true;
  cfg.epoch_min_sessions = 2;

  cfg.jobs = 1;
  FleetMetrics serial = run_fleet(test_corpus(), cfg);
  cfg.jobs = 4;
  FleetMetrics parallel = run_fleet(test_corpus(), cfg);

  // Non-vacuous: the plan actually split and ran epoch-parallel.
  EXPECT_GT(serial.epochs, 1);
  EXPECT_TRUE(serial.epoch_parallel);
  EXPECT_EQ(serial.epoch_degrade_reason, "");
  expect_streaming_identical(serial, parallel);
}

TEST(FleetStreaming, AdmissionBoundsDegradeToOneSerialEpoch) {
  // Shedding couples the store to live queue state, so the planner must
  // refuse to split — and the streaming result still matches exact mode.
  FleetConfig cfg;
  cfg.clients = 6;
  cfg.mean_interarrival = util::Duration::millis(1);
  cfg.compute.workers = 1;
  cfg.compute.max_queue = 8;  // admission bound -> interaction possible
  cfg.base.seed = 17;

  FleetMetrics exact = run_fleet(test_corpus(), cfg);
  cfg.streaming = true;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);
  EXPECT_EQ(stream.epochs, 1);
  EXPECT_FALSE(stream.epoch_parallel);
  EXPECT_NE(stream.epoch_degrade_reason, "");
  EXPECT_EQ(stream.admitted, exact.admitted);
  EXPECT_EQ(stream.shed, exact.shed);
  EXPECT_EQ(stream.store.hits, exact.store.hits);
  EXPECT_EQ(stream.store.misses, exact.store.misses);
}

TEST(FleetStreaming, BlackoutsDegradeToOneSerialEpoch) {
  FleetConfig cfg;
  cfg.clients = 4;
  cfg.base.seed = 23;
  cfg.base.testbed.faults = sim::FaultPlan::parse("blackout=0+0.05");
  cfg.streaming = true;
  cfg.epoch_min_sessions = 1;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);
  EXPECT_EQ(stream.epochs, 1);
  EXPECT_FALSE(stream.epoch_parallel);
  EXPECT_NE(stream.epoch_degrade_reason, "");
  EXPECT_EQ(stream.admitted, 4);
}

TEST(FleetStreaming, SingleClientStreamingMatchesHarnessPin) {
  // Streaming K=1: one epoch, one session, and the sketch holds exactly
  // the single-client harness's OLT (within the bin bound).
  FleetConfig cfg;
  cfg.clients = 1;
  cfg.compute = ProxyComputeConfig::idle();
  cfg.base.seed = 7;
  cfg.streaming = true;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);

  core::RunConfig expected_cfg = cfg.base;
  expected_cfg.seed = cfg.base.seed + 1;
  expected_cfg.testbed.fade_seed = cfg.base.testbed.fade_seed + 1;
  core::RunResult expected = core::ExperimentRunner::run(
      core::Scheme::kParcelInd, test_page(), expected_cfg);

  EXPECT_EQ(stream.admitted, 1);
  EXPECT_EQ(stream.epochs, 1);
  ASSERT_EQ(stream.olt_stats.count(), 1u);
  // Exact fields of the sketch are exact: min == max == the session OLT.
  EXPECT_EQ(stream.olt_stats.min(), expected.olt.sec());
  EXPECT_EQ(stream.olt_stats.max(), expected.olt.sec());
  EXPECT_EQ(stream.energy_j_total, expected.radio.total.j());
}

TEST(FleetStreaming, EpochPartitionPropertyAcrossArrivalRates) {
  // Property over an arrival-rate grid: plans always cover [0, K) with
  // consecutive epochs, honor the minimum size on every epoch except the
  // last, and every parallel plan passes the runner's checked invariants
  // (run_fleet throws std::logic_error on any boundary violation).
  for (double interarrival_ms : {1.0, 20.0, 500.0, 5000.0}) {
    for (std::uint64_t seed : {1ULL, 9ULL}) {
      SCOPED_TRACE("interarrival_ms=" + std::to_string(interarrival_ms) +
                   " seed=" + std::to_string(seed));
      FleetConfig cfg;
      cfg.clients = 12;
      cfg.arrival_seed = seed;
      cfg.mean_interarrival = util::Duration::millis(interarrival_ms);
      cfg.base.seed = 3 + seed;
      cfg.streaming = true;
      cfg.epoch_min_sessions = 3;
      cfg.jobs = 2;

      ClientColumns cols = derive_client_columns(cfg, test_corpus().size());
      EpochPlan plan = plan_epochs(test_corpus(), cols, cfg);
      ASSERT_FALSE(plan.epochs.empty());
      EXPECT_EQ(plan.epochs.front().begin, 0u);
      EXPECT_EQ(plan.epochs.back().end, cols.size());
      for (std::size_t e = 0; e < plan.epochs.size(); ++e) {
        EXPECT_LT(plan.epochs[e].begin, plan.epochs[e].end);
        if (e > 0) {
          EXPECT_EQ(plan.epochs[e].begin, plan.epochs[e - 1].end);
        }
        if (e + 1 < plan.epochs.size()) {
          EXPECT_GE(plan.epochs[e].end - plan.epochs[e].begin, 3u);
        }
      }

      // The checked invariant is the real property: a bad boundary throws.
      FleetMetrics m = run_fleet(test_corpus(), cfg);
      EXPECT_EQ(m.admitted + m.shed, cfg.clients);
      EXPECT_EQ(m.epochs, static_cast<int>(plan.epochs.size()));
    }
  }
}

TEST(FleetStreaming, StreamingRejectsExplicitSpecs) {
  FleetConfig cfg;
  cfg.streaming = true;
  std::vector<ClientSpec> specs(1);
  EXPECT_THROW(run_fleet(test_corpus(), specs, cfg), std::invalid_argument);
  FleetConfig bad = cfg;
  bad.epoch_min_sessions = 0;
  EXPECT_THROW(run_fleet(test_corpus(), bad), std::invalid_argument);
}

// ---------------------------------------------------------------------
// CLI parsing (bench/common): the reject-garbage contract

TEST(FleetCli, ParsePositiveIntStrict) {
  EXPECT_EQ(bench::parse_positive_int("--clients", "16"), 16);
  EXPECT_EQ(bench::parse_positive_int("--workers", "1"), 1);
  EXPECT_THROW(bench::parse_positive_int("--clients", ""),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "abc"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "12x"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "0"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "-4"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "1e3"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "99999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_positive_int("--clients", "1000001"),
               std::invalid_argument);
}

TEST(FleetCli, ParseU64Strict) {
  EXPECT_EQ(bench::parse_u64("--arrival-seed", "0"), 0u);
  EXPECT_EQ(bench::parse_u64("--arrival-seed", "2014"), 2014u);
  EXPECT_EQ(bench::parse_u64("--arrival-seed", "18446744073709551615"),
            18446744073709551615ULL);
  EXPECT_THROW(bench::parse_u64("--arrival-seed", ""),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_u64("--arrival-seed", "seed"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_u64("--arrival-seed", "7 "),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_u64("--arrival-seed", "-1"),
               std::invalid_argument);
  EXPECT_THROW(bench::parse_u64("--arrival-seed", "+5"),
               std::invalid_argument);
}

}  // namespace
}  // namespace parcel::fleet
