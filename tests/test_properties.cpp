// Property-style sweeps over generated pages: the paper's qualitative
// claims must hold for *every* page the generator can produce, not just
// the fixtures. Parameterized over corpus seeds.
#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/experiment.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"
#include "web/js.hpp"

namespace parcel::core {
namespace {

struct PageCase {
  std::uint64_t corpus_seed;
  int index;
};

class PageProperty : public ::testing::TestWithParam<PageCase> {
 protected:
  void SetUp() override {
    web::PageGenerator gen(GetParam().corpus_seed);
    web::PageSpec spec;
    for (int i = 0; i <= GetParam().index; ++i) spec = gen.sample_spec(i);
    // Keep runtimes bounded: cap very large draws.
    spec.object_count = std::min(spec.object_count, 150);
    spec.total_bytes = std::min<util::Bytes>(spec.total_bytes, util::mib(2));
    live_ = std::make_unique<web::WebPage>(web::PageGenerator::generate(spec));
    store_.record(*live_);
    page_ = store_.find(live_->main_url().str());
    ASSERT_NE(page_, nullptr);
  }

  std::unique_ptr<web::WebPage> live_;
  replay::ReplayStore store_;
  const web::WebPage* page_ = nullptr;
};

TEST_P(PageProperty, ParcelIndBeatsDirOnOltAndEnergy) {
  RunConfig cfg;
  RunResult dir = ExperimentRunner::run(Scheme::kDir, *page_, cfg);
  RunResult ind = ExperimentRunner::run(Scheme::kParcelInd, *page_, cfg);
  ASSERT_TRUE(dir.ok);
  ASSERT_TRUE(ind.ok);
  EXPECT_LT(ind.olt.sec(), dir.olt.sec());
  EXPECT_LT(ind.radio.total.j(), dir.radio.total.j());
  EXPECT_LE(ind.tcp_connections, 1u);
}

TEST_P(PageProperty, BundlingMonotonicallyDelaysOnload) {
  RunConfig cfg;
  RunResult ind = ExperimentRunner::run(Scheme::kParcelInd, *page_, cfg);
  RunResult x512 = ExperimentRunner::run(Scheme::kParcel512K, *page_, cfg);
  RunResult onld = ExperimentRunner::run(Scheme::kParcelOnld, *page_, cfg);
  // Fig 9a: IND <= PARCEL(X) <= ONLD (tolerance for promotion jitter).
  EXPECT_LE(ind.olt.sec(), x512.olt.sec() + 0.10);
  EXPECT_LE(x512.olt.sec(), onld.olt.sec() + 0.10);
}

TEST_P(PageProperty, OltNeverExceedsTlt) {
  RunConfig cfg;
  for (Scheme s : {Scheme::kDir, Scheme::kParcelInd, Scheme::kParcelOnld}) {
    RunResult r = ExperimentRunner::run(s, *page_, cfg);
    ASSERT_TRUE(r.ok) << to_string(s);
    EXPECT_LE(r.olt.sec(), r.tlt.sec() + 1e-9) << to_string(s);
  }
}

TEST_P(PageProperty, EnergyAccountingIsConsistent) {
  RunConfig cfg;
  RunResult r = ExperimentRunner::run(Scheme::kParcel512K, *page_, cfg);
  const auto& e = r.radio;
  double sum = e.cr.j() + e.short_drx.j() + e.long_drx.j() + e.idle.j() +
               e.promotion.j();
  EXPECT_NEAR(e.total.j(), sum, 1e-6);
  // Timeline is contiguous and ordered.
  for (std::size_t i = 1; i < e.timeline.size(); ++i) {
    EXPECT_GE(e.timeline[i].begin.sec(), e.timeline[i - 1].end.sec() - 1e-9);
  }
}

TEST_P(PageProperty, DownlinkBytesCoverPageForDir) {
  RunConfig cfg;
  RunResult dir = ExperimentRunner::run(Scheme::kDir, *page_, cfg);
  ASSERT_TRUE(dir.ok);
  // Wire bytes = bodies + headers + handshakes: strictly more than the
  // page, but within a sane overhead envelope (< 25%).
  auto page_bytes = static_cast<double>(page_->total_bytes());
  EXPECT_GE(static_cast<double>(dir.downlink_bytes), page_bytes);
  EXPECT_LE(static_cast<double>(dir.downlink_bytes), page_bytes * 1.25);
}

TEST_P(PageProperty, ReplayedPagesNeedNoFallbacks) {
  RunConfig cfg;
  RunResult r = ExperimentRunner::run(Scheme::kParcelInd, *page_, cfg);
  EXPECT_EQ(r.fallbacks, 0u);
  EXPECT_EQ(r.radio_http_requests, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    CorpusSweep, PageProperty,
    ::testing::Values(PageCase{101, 0}, PageCase{101, 1}, PageCase{101, 2},
                      PageCase{202, 0}, PageCase{202, 1}, PageCase{303, 0},
                      PageCase{303, 1}, PageCase{404, 0}),
    [](const ::testing::TestParamInfo<PageCase>& tpi) {
      return "seed" + std::to_string(tpi.param.corpus_seed) + "_page" +
             std::to_string(tpi.param.index);
    });

/// Analytical-model property sweep: b* = alpha*sqrt(sB) and E(n*) is a
/// minimum, across a grid of speeds and page sizes.
struct ModelCase {
  double mbps;
  double megabytes;
};

class ModelProperty : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelProperty, OptimalBundleMinimizesEnergy) {
  ModelParams params;
  params.download_bytes_per_sec = GetParam().mbps * 1e6 / 8.0;
  params.onload_bytes =
      static_cast<util::Bytes>(GetParam().megabytes * 1e6);
  params.proxy_onload = util::Duration::seconds(30.0);  // keep dl(n) > 0
  AnalyticalModel model(params);
  double n_star = model.optimal_bundle_count();
  if (n_star < 1.0) GTEST_SKIP() << "single bundle optimal here";
  double e_star = model.energy(n_star).j();
  for (double factor : {0.4, 0.6, 1.6, 2.8}) {
    double n = std::max(1.0, n_star * factor);
    EXPECT_LE(e_star, model.energy(n).j() + 1e-9)
        << "n*=" << n_star << " n=" << n;
  }
  // Identity: b* * n* == B.
  EXPECT_NEAR(static_cast<double>(model.optimal_bundle_bytes()) * n_star,
              static_cast<double>(params.onload_bytes),
              static_cast<double>(params.onload_bytes) * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    SpeedSizeGrid, ModelProperty,
    ::testing::Values(ModelCase{2, 1}, ModelCase{2, 4}, ModelCase{4, 2},
                      ModelCase{6, 2}, ModelCase{6, 5}, ModelCase{8, 1},
                      ModelCase{8, 4}, ModelCase{12, 3}),
    [](const ::testing::TestParamInfo<ModelCase>& tpi) {
      return "mbps" + std::to_string(static_cast<int>(tpi.param.mbps)) +
             "_mb" + std::to_string(static_cast<int>(tpi.param.megabytes));
    });

}  // namespace
}  // namespace parcel::core
