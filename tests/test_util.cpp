#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace parcel::util {
namespace {

TEST(Units, DurationConstructionAndArithmetic) {
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(250).sec(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::micros(500).ms(), 0.5);
  Duration d = Duration::seconds(2) + Duration::millis(500);
  EXPECT_DOUBLE_EQ(d.sec(), 2.5);
  EXPECT_DOUBLE_EQ((d - Duration::seconds(1)).sec(), 1.5);
  EXPECT_DOUBLE_EQ((d * 2.0).sec(), 5.0);
  EXPECT_DOUBLE_EQ((d / 2.0).sec(), 1.25);
  EXPECT_DOUBLE_EQ(d / Duration::millis(500), 5.0);
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_FALSE(Duration::infinity().is_finite());
}

TEST(Units, TimePointArithmetic) {
  TimePoint t = TimePoint::origin() + Duration::seconds(3);
  EXPECT_DOUBLE_EQ(t.sec(), 3.0);
  EXPECT_DOUBLE_EQ((t - TimePoint::at_seconds(1)).sec(), 2.0);
  EXPECT_DOUBLE_EQ((t - Duration::seconds(1)).sec(), 2.0);
  EXPECT_LT(TimePoint::at_seconds(1), t);
}

TEST(Units, BitRateTransmitTime) {
  BitRate r = BitRate::mbps(8);  // 1 MB/s
  EXPECT_DOUBLE_EQ(r.bytes_per_sec(), 1e6);
  EXPECT_NEAR(r.transmit_time(1'000'000).sec(), 1.0, 1e-12);
  EXPECT_NEAR((r * 0.5).transmit_time(500'000).sec(), 1.0, 1e-12);
}

TEST(Units, EnergyFromPowerAndTime) {
  Energy e = Power::watts(2.0) * Duration::seconds(3.0);
  EXPECT_DOUBLE_EQ(e.j(), 6.0);
  EXPECT_DOUBLE_EQ((e + Energy::joules(1)).j(), 7.0);
  EXPECT_DOUBLE_EQ(e / Energy::joules(3), 2.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(kib(1), 1024);
  EXPECT_EQ(mib(2), 2 * 1024 * 1024);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  Rng a(7);
  Rng child = a.fork();
  double first = child.uniform(0, 1);
  Rng b(7);
  Rng child2 = b.fork();
  EXPECT_DOUBLE_EQ(child2.uniform(0, 1), first);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(1);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
}

TEST(Stats, MedianOfUnsorted) {
  std::vector<double> v{9, 1, 5};
  EXPECT_DOUBLE_EQ(median(v), 5.0);
}

TEST(Stats, MeanAndStdev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stdev(v), 2.138, 1e-3);
}

TEST(Stats, CoefficientOfVariation) {
  std::vector<double> v{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(coeff_of_variation(v), 0.0);
}

TEST(Stats, PearsonCorrelationPerfectAndInverse) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
  EXPECT_THROW(pearson_correlation(x, std::vector<double>{1}), std::invalid_argument);
}

TEST(Stats, CdfQuantileAndAt) {
  Cdf cdf({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(cdf.at(5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(10), 1.0);
  EXPECT_NEAR(cdf.quantile(0.5), 5.5, 1e-9);
  EXPECT_FALSE(cdf.to_table().empty());
}

TEST(Stats, SummaryAccumulates) {
  Summary s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Strings, TrimAndSplit) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim(""), "");
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, CaseInsensitiveHelpers) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_TRUE(starts_with_ignore_case("<SCRIPT src>", "<script"));
  EXPECT_EQ(ifind("xxFooBar", "foobar"), 2u);
  EXPECT_EQ(ifind("abc", "zzz"), std::string_view::npos);
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.00 MB");
}

TEST(Strings, Ssprintf) {
  EXPECT_EQ(ssprintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(ssprintf("%s", ""), "");
}

}  // namespace
}  // namespace parcel::util
