#include <gtest/gtest.h>

#include <memory>

#include "net/http.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {
namespace {

using util::BitRate;
using util::Duration;
using util::TimePoint;

/// Endpoint answering every GET with a fixed-size body after a delay.
class FixedEndpoint final : public HttpEndpoint {
 public:
  FixedEndpoint(sim::Scheduler& sched, util::Bytes body, Duration think)
      : sched_(sched), body_(body), think_(think) {}

  void handle(const HttpRequest& request,
              std::function<void(HttpResponse)> respond) override {
    ++requests_;
    last_request = request;
    HttpResponse resp;
    resp.status = request.method == HttpMethod::kPost ? 204 : 200;
    resp.url = request.url;
    resp.body_bytes = request.method == HttpMethod::kPost ? 0 : body_;
    sched_.schedule_after(think_, [resp, respond = std::move(respond)] {
      respond(resp);
    });
  }

  int requests_ = 0;
  HttpRequest last_request;

 private:
  sim::Scheduler& sched_;
  util::Bytes body_;
  Duration think_;
};

struct HttpFixture : ::testing::Test {
  sim::Scheduler sched;
  DuplexLink link{sched, "l", BitRate::mbps(80), BitRate::mbps(80),
                  Duration::millis(10)};
  Path path{{&link}};
  TcpParams params;
};

TEST_F(HttpFixture, RequestResponseRoundTrip) {
  FixedEndpoint endpoint(sched, 50'000, Duration::millis(30));
  HttpConnection conn(sched, path, endpoint, params, 1);
  HttpRequest req;
  req.url = Url::parse("http://a.example/x.bin");
  int responses = 0;
  conn.fetch(req, 1, [&](const HttpResponse& resp) {
    ++responses;
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body_bytes, 50'000);
    EXPECT_GT(resp.wire_size(), resp.body_bytes);
  });
  sched.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(endpoint.requests_, 1);
}

TEST_F(HttpFixture, ResponsesReturnInRequestOrder) {
  FixedEndpoint endpoint(sched, 1'000, Duration::millis(5));
  HttpConnection conn(sched, path, endpoint, params, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    HttpRequest req;
    req.url = Url::parse("http://a.example/" + std::to_string(i));
    conn.fetch(req, static_cast<std::uint32_t>(i + 1),
               [&order, i](const HttpResponse&) { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_F(HttpFixture, PostCarriesBodyAndGets204) {
  FixedEndpoint endpoint(sched, 1'000, Duration::millis(5));
  HttpConnection conn(sched, path, endpoint, params, 1);
  HttpRequest req;
  req.method = HttpMethod::kPost;
  req.url = Url::parse("http://a.example/form");
  req.body_bytes = 2'000;
  int status = 0;
  conn.fetch(req, 1, [&](const HttpResponse& resp) { status = resp.status; });
  sched.run();
  EXPECT_EQ(status, 204);
  EXPECT_EQ(endpoint.last_request.body_bytes, 2'000);
  EXPECT_GT(endpoint.last_request.wire_size(), 2'000);
}

TEST_F(HttpFixture, PoolOpensUpToPerDomainCap) {
  FixedEndpoint endpoint(sched, 10'000, Duration::millis(50));
  Network network(sched);
  network.register_endpoint("a.example", endpoint);
  HttpClientPool pool(
      sched, [this](const std::string&) { return path; },
      [&](const std::string& d) { return network.endpoint(d); },
      [&network]() { return network.next_conn_id(); }, params,
      /*max_conns_per_domain=*/6, /*max_total=*/17);
  int responses = 0;
  for (int i = 0; i < 12; ++i) {
    HttpRequest req;
    req.url = Url::parse("http://a.example/" + std::to_string(i));
    pool.fetch(req, static_cast<std::uint32_t>(i + 1),
               [&](const HttpResponse&) { ++responses; });
  }
  sched.run();
  EXPECT_EQ(responses, 12);
  EXPECT_EQ(pool.connections_opened(), 6u);
  EXPECT_EQ(pool.requests_issued(), 12u);
}

TEST_F(HttpFixture, PoolHonorsGlobalCap) {
  FixedEndpoint endpoint(sched, 10'000, Duration::millis(50));
  Network network(sched);
  std::vector<std::string> domains{"a.example", "b.example", "c.example"};
  for (const auto& d : domains) network.register_endpoint(d, endpoint);
  HttpClientPool pool(
      sched, [this](const std::string&) { return path; },
      [&](const std::string& d) { return network.endpoint(d); },
      [&network]() { return network.next_conn_id(); }, params,
      /*max_conns_per_domain=*/6, /*max_total=*/4);
  int responses = 0;
  for (int i = 0; i < 18; ++i) {
    HttpRequest req;
    req.url = Url::parse("http://" + domains[static_cast<size_t>(i) % 3] +
                         "/" + std::to_string(i));
    pool.fetch(req, static_cast<std::uint32_t>(i + 1),
               [&](const HttpResponse&) { ++responses; });
  }
  sched.run();
  EXPECT_EQ(responses, 18);
  // The cap bounds *concurrency*; lifetime connection count may exceed it
  // as domains take turns, but never the per-domain x domain-count bound.
  EXPECT_LE(pool.peak_concurrency(), 4u);
  EXPECT_LE(pool.connections_opened(), 12u);
}

TEST_F(HttpFixture, PoolUnknownDomainThrows) {
  Network network(sched);
  HttpClientPool pool(
      sched, [this](const std::string&) { return path; },
      [&](const std::string& d) { return network.endpoint(d); },
      [&network]() { return network.next_conn_id(); }, params, 6, 17);
  HttpRequest req;
  req.url = Url::parse("http://nowhere.example/");
  EXPECT_THROW(pool.fetch(req, 1, [](const HttpResponse&) {}),
               std::runtime_error);
}

TEST(HttpMessage, NoContentHasNoBody) {
  HttpResponse resp;
  resp.status = 204;
  resp.body_bytes = 0;
  EXPECT_FALSE(resp.has_body());
  EXPECT_GT(resp.wire_size(), 0);
}

}  // namespace
}  // namespace parcel::net
