#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace parcel::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(TimePoint::at_seconds(2), [&] { order.push_back(2); });
  sched.schedule_at(TimePoint::at_seconds(1), [&] { order.push_back(1); });
  sched.schedule_at(TimePoint::at_seconds(3), [&] { order.push_back(3); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now().sec(), 3.0);
}

TEST(Scheduler, SameTimeEventsRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(TimePoint::at_seconds(1), [&, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  double fired_at = -1;
  sched.schedule_at(TimePoint::at_seconds(1), [&] {
    sched.schedule_after(Duration::seconds(2),
                         [&] { fired_at = sched.now().sec(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Scheduler, PastEventsClampToNow) {
  Scheduler sched;
  double fired_at = -1;
  sched.schedule_at(TimePoint::at_seconds(5), [&] {
    sched.schedule_at(TimePoint::at_seconds(1),
                      [&] { fired_at = sched.now().sec(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  EventHandle h =
      sched.schedule_at(TimePoint::at_seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler sched;
  EventHandle h = sched.schedule_at(TimePoint::at_seconds(1), [] {});
  sched.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sched.schedule_at(TimePoint::at_seconds(t),
                      [&fired, &sched] { fired.push_back(sched.now().sec()); });
  }
  sched.run_until(TimePoint::at_seconds(2.5));
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.now().sec(), 2.5);
  EXPECT_EQ(sched.pending_events(), 2u);
}

TEST(Scheduler, RunUntilAdvancesClockWhenQueueEmpty) {
  Scheduler sched;
  sched.run_until(TimePoint::at_seconds(10));
  EXPECT_DOUBLE_EQ(sched.now().sec(), 10.0);
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler sched;
  int count = 0;
  sched.schedule_at(TimePoint::at_seconds(1), [&] { ++count; });
  sched.schedule_at(TimePoint::at_seconds(2), [&] { ++count; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.events_executed(), 2u);
}

TEST(Scheduler, RejectsEmptyCallback) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule_at(TimePoint::origin(), nullptr),
               std::invalid_argument);
}

TEST(Scheduler, RunUntilSkipsCancelledHeadWithoutOverrunningDeadline) {
  // Regression: a cancelled tombstone at the heap front with
  // when <= deadline used to pass run_until's check, and step() — which
  // skips tombstones — then executed the next *live* event beyond the
  // deadline, leaving now_ past it.
  Scheduler sched;
  bool late_fired = false;
  EventHandle head =
      sched.schedule_at(TimePoint::at_seconds(1), [] { FAIL(); });
  sched.schedule_at(TimePoint::at_seconds(5), [&] { late_fired = true; });
  head.cancel();
  sched.run_until(TimePoint::at_seconds(2));
  EXPECT_FALSE(late_fired);
  EXPECT_DOUBLE_EQ(sched.now().sec(), 2.0);
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run();
  EXPECT_TRUE(late_fired);
}

TEST(Scheduler, RunUntilDrainsConsecutiveCancelledHeads) {
  Scheduler sched;
  std::vector<EventHandle> handles;
  for (double t : {0.5, 0.6, 0.7}) {
    handles.push_back(
        sched.schedule_at(TimePoint::at_seconds(t), [] { FAIL(); }));
  }
  bool fired = false;
  sched.schedule_at(TimePoint::at_seconds(1), [&] { fired = true; });
  for (EventHandle& h : handles) h.cancel();
  sched.run_until(TimePoint::at_seconds(3));
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sched.now().sec(), 3.0);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(Scheduler, DuplicateCancelIsIdempotent) {
  Scheduler sched;
  bool fired = false;
  EventHandle h =
      sched.schedule_at(TimePoint::at_seconds(1), [&] { fired = true; });
  EventHandle copy = h;
  h.cancel();
  copy.cancel();  // second cancel of the same event: no-op
  h.cancel();
  sched.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(copy.pending());
}

TEST(Scheduler, HandleOutlivingSchedulerDegradesToNoop) {
  EventHandle h;
  {
    Scheduler sched;
    h = sched.schedule_at(TimePoint::at_seconds(1), [] {});
  }
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not touch freed memory
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_after(Duration::seconds(1), recurse);
  };
  sched.schedule_at(TimePoint::origin(), recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sched.now().sec(), 4.0);
}

}  // namespace
}  // namespace parcel::sim
