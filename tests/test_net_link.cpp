#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/path.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {
namespace {

using util::BitRate;
using util::Duration;
using util::TimePoint;

TEST(Link, SerializationPlusPropagation) {
  sim::Scheduler sched;
  Link link(sched, "l", BitRate::mbps(8), Duration::millis(10));  // 1 MB/s
  double delivered = -1;
  link.transmit(100'000, BurstInfo{},
                [&](TimePoint t) { delivered = t.sec(); });
  sched.run();
  // 100 KB at 1 MB/s = 0.1 s + 10 ms propagation.
  EXPECT_NEAR(delivered, 0.11, 1e-9);
}

TEST(Link, FifoQueueingDelaysSecondBurst) {
  sim::Scheduler sched;
  Link link(sched, "l", BitRate::mbps(8), Duration::millis(0));
  double first = -1, second = -1;
  link.transmit(100'000, BurstInfo{}, [&](TimePoint t) { first = t.sec(); });
  link.transmit(100'000, BurstInfo{}, [&](TimePoint t) { second = t.sec(); });
  sched.run();
  EXPECT_NEAR(first, 0.1, 1e-9);
  EXPECT_NEAR(second, 0.2, 1e-9);  // waits for the first to serialize
}

TEST(Link, RateScaleSlowsTransmission) {
  sim::Scheduler sched;
  Link link(sched, "l", BitRate::mbps(8), Duration::millis(0));
  link.set_rate_scale(0.5);
  double delivered = -1;
  link.transmit(100'000, BurstInfo{}, [&](TimePoint t) { delivered = t.sec(); });
  sched.run();
  EXPECT_NEAR(delivered, 0.2, 1e-9);
  EXPECT_THROW(link.set_rate_scale(0.0), std::invalid_argument);
  EXPECT_THROW(link.set_rate_scale(1.5), std::invalid_argument);
}

TEST(Link, TapObservesDeliveries) {
  sim::Scheduler sched;
  Link link(sched, "l", BitRate::mbps(8), Duration::millis(5));
  int taps = 0;
  util::Bytes tapped_bytes = 0;
  link.set_tap([&](TimePoint, util::Bytes b, const BurstInfo& info) {
    ++taps;
    tapped_bytes += b;
    EXPECT_EQ(info.conn_id, 7u);
  });
  link.transmit(1000, BurstInfo{trace::PacketKind::kData, 7, 1},
                [](TimePoint) {});
  sched.run();
  EXPECT_EQ(taps, 1);
  EXPECT_EQ(tapped_bytes, 1000);
  EXPECT_EQ(link.bytes_carried(), 1000);
}

TEST(Link, RejectsNonPositiveRate) {
  sim::Scheduler sched;
  EXPECT_THROW(Link(sched, "bad", BitRate::bps(0), Duration::zero()),
               std::invalid_argument);
}

TEST(Path, RelaysAcrossHopsStoreAndForward) {
  sim::Scheduler sched;
  DuplexLink a(sched, "a", BitRate::mbps(8), BitRate::mbps(8),
               Duration::millis(10));
  DuplexLink b(sched, "b", BitRate::mbps(80), BitRate::mbps(80),
               Duration::millis(20));
  Path path({&a, &b});
  EXPECT_NEAR(path.propagation_delay().sec(), 0.030, 1e-12);
  EXPECT_NEAR(path.base_rtt().sec(), 0.060, 1e-12);
  EXPECT_NEAR(path.bottleneck_down().bits_per_sec(), 8e6, 1);

  double up = -1, down = -1;
  // Up: serialize on a (0.1s) + 10ms, then on b (0.01s) + 20ms.
  path.send_up(100'000, BurstInfo{}, [&](TimePoint t) { up = t.sec(); });
  sched.run();
  EXPECT_NEAR(up, 0.1 + 0.01 + 0.01 + 0.02, 1e-9);

  // Down traverses b first, then a.
  path.send_down(100'000, BurstInfo{}, [&](TimePoint t) { down = t.sec(); });
  sched.run();
  EXPECT_GT(down, up);
}

TEST(Path, EmptyPathRejected) {
  EXPECT_THROW(Path(std::vector<DuplexLink*>{}), std::invalid_argument);
  EXPECT_THROW(Path(std::vector<DuplexLink*>{nullptr}),
               std::invalid_argument);
}

}  // namespace
}  // namespace parcel::net
