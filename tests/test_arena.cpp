// Per-run arena allocator (DESIGN.md §11): bump mechanics, the
// thread-local scope plumbing, the kill switch, and the headline
// invariant — arena on/off never changes simulation results.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "core/arena.hpp"
#include "core/experiment.hpp"
#include "sim/scheduler.hpp"
#include "web/generator.hpp"

namespace parcel::core {
namespace {

// Restores the process-wide arena flag so tests cannot leak a disabled
// arena into the rest of the suite.
class ArenaFlagGuard {
 public:
  ArenaFlagGuard() : prev_(arena_enabled()) {}
  ~ArenaFlagGuard() { set_arena_enabled(prev_); }

 private:
  bool prev_;
};

TEST(Arena, BumpAllocatesAndCountsBytes) {
  Arena arena;
  void* a = arena.allocate(100, 8);
  void* b = arena.allocate(100, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_allocated(), 200u);
  EXPECT_EQ(arena.allocation_count(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 200u);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  arena.allocate(1, 1);
  for (std::size_t align : {8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(Arena, GrowsChunksAndHandlesOversizedRequests) {
  Arena arena(1024);
  // Exhaust the first chunk and force growth.
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_GE(arena.chunk_count(), 2u);
  // A request bigger than any chunk gets a dedicated one.
  void* big = arena.allocate(1 << 20, 8);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_reserved(), static_cast<std::size_t>(1 << 20));
}

TEST(Arena, ResetRetainsCapacityAndRewinds) {
  Arena arena(1024);
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.allocation_count(), 0u);
  EXPECT_EQ(arena.reset_count(), 1u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // capacity kept
  // Recycled capacity serves the next round without growing.
  std::size_t chunks = arena.chunk_count();
  for (int i = 0; i < 64; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, ZeroByteAllocationYieldsDistinctPointers) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(ArenaScope, InstallsAndRestoresThreadLocalResource) {
  // Force the flag on so the test also passes under the PARCEL_ARENA=0
  // CI leg — it is about scope mechanics, not the kill switch.
  ArenaFlagGuard guard;
  set_arena_enabled(true);
  std::pmr::memory_resource* before = run_resource();
  {
    Arena arena;
    ArenaScope scope(arena);
    EXPECT_NE(run_resource(), before);
    // Nested scopes shadow and restore in LIFO order.
    {
      Arena inner;
      ArenaScope inner_scope(inner);
      std::pmr::vector<int> v(run_resource());
      v.push_back(7);
      EXPECT_GT(inner.bytes_allocated(), 0u);
      EXPECT_EQ(arena.bytes_allocated(), 0u);
    }
    std::pmr::vector<int> v(run_resource());
    v.push_back(7);
    EXPECT_GT(arena.bytes_allocated(), 0u);
  }
  EXPECT_EQ(run_resource(), before);
}

TEST(ArenaScope, IsThreadLocal) {
  ArenaFlagGuard guard;
  set_arena_enabled(true);
  Arena arena;
  ArenaScope scope(arena);
  std::pmr::memory_resource* other_thread = nullptr;
  std::thread t([&] { other_thread = run_resource(); });
  t.join();
  EXPECT_EQ(other_thread, std::pmr::get_default_resource());
  EXPECT_NE(run_resource(), std::pmr::get_default_resource());
}

TEST(ArenaScope, KillSwitchDisablesInstallation) {
  ArenaFlagGuard guard;
  set_arena_enabled(false);
  Arena arena;
  ArenaScope scope(arena);
  EXPECT_EQ(run_resource(), std::pmr::get_default_resource());
  std::pmr::vector<int> v(run_resource());
  v.push_back(7);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaScope, SchedulerDrawsFromActiveArena) {
  ArenaFlagGuard guard;
  set_arena_enabled(true);
  Arena arena;
  ArenaScope scope(arena);
  sim::Scheduler sched;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    sched.schedule_after(util::Duration::micros(i), [&] { ++fired; });
  }
  sched.run();
  EXPECT_EQ(fired, 1000);
  EXPECT_GT(arena.bytes_allocated(), 0u);
}

// The headline invariant: a full experiment run is bitwise identical with
// the arena on and off, and the result never retains arena memory (the
// returned trace is usable long after the run's arena died).
TEST(ArenaIdentity, FullRunBitwiseIdenticalArenaOnAndOff) {
  web::PageSpec spec;
  spec.object_count = 25;
  spec.total_bytes = util::kib(600);
  spec.seed = 11;
  web::WebPage page = web::PageGenerator::generate(spec);
  RunConfig cfg;
  cfg.seed = 5;

  ArenaFlagGuard guard;
  set_arena_enabled(true);
  RunResult on = ExperimentRunner::run(Scheme::kParcelInd, page, cfg);
  set_arena_enabled(false);
  RunResult off = ExperimentRunner::run(Scheme::kParcelInd, page, cfg);

  EXPECT_EQ(on.olt.sec(), off.olt.sec());  // bitwise: EXPECT_EQ, no near
  EXPECT_EQ(on.tlt.sec(), off.tlt.sec());
  EXPECT_EQ(on.radio.total.j(), off.radio.total.j());
  EXPECT_EQ(on.downlink_bytes, off.downlink_bytes);
  EXPECT_EQ(on.uplink_bytes, off.uplink_bytes);
  EXPECT_EQ(on.tcp_connections, off.tcp_connections);
  EXPECT_EQ(on.trace.serialize(), off.trace.serialize());
  // Arena telemetry reflects the switch.
  EXPECT_GT(on.arena_bytes, 0u);
  EXPECT_GT(on.arena_allocations, 0u);
  EXPECT_EQ(off.arena_bytes, 0u);
  EXPECT_EQ(off.arena_allocations, 0u);
}

}  // namespace
}  // namespace parcel::core
