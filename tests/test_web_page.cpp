#include <gtest/gtest.h>

#include "net/url.hpp"
#include "web/mhtml.hpp"
#include "web/page.hpp"

namespace parcel::web {
namespace {

WebObject make_object(const std::string& url, ObjectType type, Bytes size,
                      const char* content = nullptr) {
  WebObject obj;
  obj.url = net::Url::parse(url);
  obj.type = type;
  obj.size = size;
  if (content != nullptr) {
    obj.content = std::make_shared<const std::string>(content);
    obj.size = static_cast<Bytes>(obj.content->size());
  }
  return obj;
}

TEST(WebPage, AddAndFind) {
  WebPage page(net::Url::parse("http://a.example/"));
  page.add(make_object("http://a.example/", ObjectType::kHtml, 0, "<html>"));
  page.add(make_object("http://a.example/x.jpg", ObjectType::kImage, 1000));
  EXPECT_EQ(page.object_count(), 2u);
  EXPECT_NE(page.find(net::Url::parse("http://a.example/x.jpg")), nullptr);
  EXPECT_EQ(page.find(net::Url::parse("http://a.example/missing.jpg")),
            nullptr);
  EXPECT_EQ(page.main().type, ObjectType::kHtml);
}

TEST(WebPage, DuplicateUrlThrows) {
  WebPage page(net::Url::parse("http://a.example/"));
  page.add(make_object("http://a.example/x.jpg", ObjectType::kImage, 10));
  EXPECT_THROW(
      page.add(make_object("http://a.example/x.jpg", ObjectType::kImage, 10)),
      std::invalid_argument);
}

TEST(WebPage, FindIgnoresQueryOnMiss) {
  WebPage page(net::Url::parse("http://a.example/"));
  page.add(make_object("http://a.example/api.json", ObjectType::kJson, 500));
  const WebObject* hit =
      page.find(net::Url::parse("http://a.example/api.json?r=12345"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->url.str(), "http://a.example/api.json");
}

TEST(WebPage, AggregatesSizesAndDomains) {
  WebPage page(net::Url::parse("http://a.example/"));
  page.add(make_object("http://a.example/", ObjectType::kHtml, 100));
  page.add(make_object("http://cdn.example/i.jpg", ObjectType::kImage, 900));
  WebObject late = make_object("http://ads.example/ad.js", ObjectType::kJsAsync,
                               50, "compute(0.1);");
  late.post_onload = true;
  Bytes late_size = late.size;
  page.add(std::move(late));
  EXPECT_EQ(page.total_bytes(), 1000 + late_size);
  EXPECT_EQ(page.onload_bytes(), 1000);
  EXPECT_EQ(page.count_of(ObjectType::kImage), 1u);
  EXPECT_EQ(page.domain_names().size(), 3u);
  EXPECT_EQ(page.objects_on("cdn.example").size(), 1u);
}

TEST(WebPage, MissingMainThrows) {
  WebPage page(net::Url::parse("http://a.example/"));
  EXPECT_THROW((void)page.main(), std::logic_error);
}

TEST(WebObject, TextRequiresContent) {
  WebObject obj = make_object("http://a.example/i.jpg", ObjectType::kImage, 9);
  EXPECT_THROW((void)obj.text(), std::logic_error);
  WebObject js = make_object("http://a.example/a.js", ObjectType::kJs, 0,
                             "compute(1);");
  EXPECT_EQ(js.text(), "compute(1);");
}

TEST(ObjectType, MimeRoundTrip) {
  for (ObjectType t : {ObjectType::kHtml, ObjectType::kCss, ObjectType::kJs,
                       ObjectType::kImage, ObjectType::kFont,
                       ObjectType::kJson, ObjectType::kMedia}) {
    EXPECT_EQ(type_from_mime(mime_type(t)), t) << to_string(t);
  }
  // Async JS shares the JS MIME type; the hint disambiguates elsewhere.
  EXPECT_EQ(type_from_mime(mime_type(ObjectType::kJsAsync)), ObjectType::kJs);
}

TEST(Mhtml, WriterRoundTripsTextAndOpaque) {
  MhtmlWriter writer;
  writer.add(make_object("http://a.example/app.js", ObjectType::kJs, 0,
                         "compute(2);\nfetch(\"http://a.example/d.json\");"));
  writer.add(make_object("http://cdn.example/pic.jpg", ObjectType::kImage,
                         5000));
  EXPECT_EQ(writer.part_count(), 2u);
  EXPECT_GT(writer.payload_bytes(), 5000);

  std::string wire = writer.serialize();
  auto parts = MhtmlReader::parse(wire);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].location.str(), "http://a.example/app.js");
  ASSERT_NE(parts[0].content, nullptr);
  EXPECT_NE(parts[0].content->find("compute(2);"), std::string::npos);
  EXPECT_EQ(parts[1].content, nullptr);  // opaque body
  EXPECT_EQ(parts[1].body_size, 5000);
  EXPECT_EQ(parts[1].content_type, "image/jpeg");
}

TEST(Mhtml, WireSizeIsSerializedLength) {
  MhtmlWriter writer;
  writer.add(make_object("http://a.example/x.jpg", ObjectType::kImage, 1234));
  std::string wire = writer.serialize();
  // Framing overhead exists but is modest.
  EXPECT_GT(wire.size(), 1234u);
  EXPECT_LT(wire.size(), 1234u + 400u);
}

TEST(Mhtml, EmptyBundleSerializesTerminatorOnly) {
  MhtmlWriter writer;
  auto parts = MhtmlReader::parse(writer.serialize());
  EXPECT_TRUE(parts.empty());
}

TEST(Mhtml, MalformedInputThrows) {
  EXPECT_THROW(MhtmlReader::parse("no boundary here"), std::invalid_argument);
  MhtmlWriter writer;
  writer.add(make_object("http://a.example/x.jpg", ObjectType::kImage, 100));
  std::string wire = writer.serialize();
  EXPECT_THROW(MhtmlReader::parse(wire.substr(0, wire.size() / 2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace parcel::web
