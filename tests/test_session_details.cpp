// Protocol-level details of the PARCEL session: bundle accounting, push
// scheduling behaviour per policy, and the MHTML wire discipline.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "core/testbed.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel::core {
namespace {

struct DetailFixture : ::testing::Test {
  std::unique_ptr<web::WebPage> live;
  replay::ReplayStore store;
  const web::WebPage* page = nullptr;

  void SetUp() override {
    web::PageSpec spec;
    spec.site = "det.example.com";
    spec.object_count = 28;
    spec.total_bytes = util::kib(400);
    spec.seed = 31;
    live = std::make_unique<web::WebPage>(web::PageGenerator::generate(spec));
    store.record(*live);
    page = store.find(live->main_url().str());
    ASSERT_NE(page, nullptr);
  }

  struct Outcome {
    std::size_t bundles = 0;
    util::Bytes bundle_bytes = 0;
    double olt = 0, tlt = 0;
    bool complete = false;
  };

  Outcome run_policy(BundleConfig bundle) {
    Testbed testbed{TestbedConfig{}};
    testbed.host_page(*page);
    ParcelSessionConfig cfg;
    cfg.proxy = ProxyConfig::with_bundle(bundle);
    ParcelSession session(testbed.network(), cfg, util::Rng(7));
    Outcome out;
    ParcelSession::Callbacks cbs;
    cbs.on_onload = [&](util::TimePoint t) { out.olt = t.sec(); };
    cbs.on_complete = [&](util::TimePoint t) {
      out.tlt = t.sec();
      out.complete = true;
    };
    session.load(page->main_url(), std::move(cbs));
    testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
    out.bundles = session.bundles_delivered();
    out.bundle_bytes = session.bundle_bytes_delivered();
    return out;
  }
};

TEST_F(DetailFixture, IndDeliversOneBundlePerObjectRoughly) {
  Outcome ind = run_policy(BundleConfig::ind());
  ASSERT_TRUE(ind.complete);
  // One push per intercepted object (+1 if a stray flush).
  EXPECT_GE(ind.bundles, page->object_count());
  EXPECT_LE(ind.bundles, page->object_count() + 2);
}

TEST_F(DetailFixture, OnldDeliversFewBundles) {
  Outcome onld = run_policy(BundleConfig::onload());
  ASSERT_TRUE(onld.complete);
  // One batch at onload + one completion flush (post-onload stragglers).
  EXPECT_LE(onld.bundles, 3u);
  EXPECT_GE(onld.bundles, 1u);
}

TEST_F(DetailFixture, ThresholdBundleCountTracksPageSize) {
  Outcome x128 = run_policy(BundleConfig::with_threshold(util::kib(128)));
  Outcome x512 = run_policy(BundleConfig::with_threshold(util::kib(512)));
  ASSERT_TRUE(x128.complete);
  ASSERT_TRUE(x512.complete);
  EXPECT_GT(x128.bundles, x512.bundles);
  // ~400 KB page: 128 KB threshold yields a handful of bundles.
  EXPECT_GE(x128.bundles, 3u);
}

TEST_F(DetailFixture, BundleBytesCoverPagePlusFraming) {
  Outcome ind = run_policy(BundleConfig::ind());
  auto page_bytes = static_cast<double>(page->total_bytes());
  EXPECT_GT(static_cast<double>(ind.bundle_bytes), page_bytes);
  // MHTML framing is low-overhead (§5.1): well under 10% here.
  EXPECT_LT(static_cast<double>(ind.bundle_bytes), page_bytes * 1.10);
}

TEST_F(DetailFixture, PolicyDoesNotChangeWhatLoadsOnlyWhen) {
  Outcome ind = run_policy(BundleConfig::ind());
  Outcome onld = run_policy(BundleConfig::onload());
  ASSERT_TRUE(ind.complete);
  ASSERT_TRUE(onld.complete);
  // Same content either way; IND strictly earlier onload.
  EXPECT_LT(ind.olt, onld.olt);
  EXPECT_NEAR(static_cast<double>(ind.bundle_bytes),
              static_cast<double>(onld.bundle_bytes),
              static_cast<double>(page->total_bytes()) * 0.06);
}

TEST_F(DetailFixture, ClientLedgerMatchesProxyLedger) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*page);
  ParcelSession session(testbed.network(), ParcelSessionConfig{},
                        util::Rng(9));
  session.load(page->main_url(), {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  // The proxy identified exactly the objects the client's own parse
  // wanted (replayed page: URL sets coincide).
  EXPECT_EQ(session.proxy().engine().ledger().count(),
            session.client_engine().ledger().count());
  // Every client object completed successfully from cache.
  for (const auto& entry : session.client_engine().ledger().entries()) {
    EXPECT_TRUE(entry.completed) << entry.url.str();
    EXPECT_FALSE(entry.failed) << entry.url.str();
  }
}

TEST_F(DetailFixture, CompletionNoteAlwaysArrives) {
  for (auto bundle : {BundleConfig::ind(), BundleConfig::onload()}) {
    Testbed testbed{TestbedConfig{}};
    testbed.host_page(*page);
    ParcelSessionConfig cfg;
    cfg.proxy = ProxyConfig::with_bundle(bundle);
    ParcelSession session(testbed.network(), cfg, util::Rng(11));
    session.load(page->main_url(), {});
    testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
    EXPECT_TRUE(session.proxy().completion_declared());
    EXPECT_TRUE(session.client_fetcher().completion_received());
  }
}

TEST_F(DetailFixture, UplinkTrafficIsTiny) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*page);
  ParcelSession session(testbed.network(), ParcelSessionConfig{},
                        util::Rng(13));
  session.load(page->main_url(), {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  // §4.3: the client sends just the URL request (plus ACKs); uplink is a
  // sliver of downlink.
  EXPECT_LT(testbed.client_trace().uplink_bytes(),
            testbed.client_trace().downlink_bytes() / 50);
}

}  // namespace
}  // namespace parcel::core
