#include <gtest/gtest.h>

#include "browser/proxied_browser.hpp"
#include "core/experiment.hpp"
#include "core/session.hpp"
#include "core/testbed.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel::browser {
namespace {

using core::Testbed;
using core::TestbedConfig;

const web::WebPage& fixture_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "prox.example.com";
    spec.object_count = 36;
    spec.total_bytes = util::kib(450);
    spec.seed = 29;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://prox.example.com/"));
  }();
  return *page;
}

browser::DirConfig proxy_fetch() {
  browser::DirConfig cfg;
  cfg.engine.parse_bytes_per_sec = 40e6;
  cfg.engine.js_units_per_sec = 500;
  return cfg;
}

struct ProxiedFixture : ::testing::Test {
  Testbed testbed{TestbedConfig{}};
  std::unique_ptr<RelayProxy> relay;

  void SetUp() override {
    testbed.host_page(fixture_page());
    relay = std::make_unique<RelayProxy>(testbed.network(), proxy_fetch(),
                                         util::Rng(1));
    testbed.register_proxy_endpoint("relay.proxy.example", *relay);
  }

  ProxiedBrowser make(ProxiedBrowserConfig cfg) {
    cfg.engine.parse_bytes_per_sec = 1e6;
    cfg.engine.js_units_per_sec = 50;
    return ProxiedBrowser(testbed.network(), "relay.proxy.example", cfg,
                          util::Rng(2));
  }
};

TEST_F(ProxiedFixture, HttpProxyLoadsEverythingThroughRelay) {
  ProxiedBrowser browser = make(ProxiedBrowserConfig::http_proxy());
  bool complete = false;
  BrowserEngine::Callbacks cbs;
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  browser.load(fixture_page().main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(complete);
  EXPECT_EQ(browser.engine().ledger().count(), fixture_page().object_count());
  EXPECT_EQ(browser.requests_issued(), fixture_page().object_count());
  EXPECT_EQ(relay->relayed(), fixture_page().object_count());
  // At most the configured client connections cross the radio.
  EXPECT_LE(testbed.client_trace().connection_count(), 6u + 0u);
}

TEST_F(ProxiedFixture, SpdyUsesExactlyOneConnection) {
  ProxiedBrowser browser = make(ProxiedBrowserConfig::spdy_proxy());
  bool complete = false;
  BrowserEngine::Callbacks cbs;
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  browser.load(fixture_page().main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(complete);
  EXPECT_EQ(testbed.client_trace().connection_count(), 1u);
  EXPECT_EQ(browser.requests_issued(), fixture_page().object_count());
}

TEST_F(ProxiedFixture, UnregisteredProxyDomainThrows) {
  EXPECT_THROW(ProxiedBrowser(testbed.network(), "nope.example",
                              ProxiedBrowserConfig::http_proxy(),
                              util::Rng(1)),
               std::invalid_argument);
}

TEST(ProxiedSchemes, PaperSection43Ordering) {
  // §4.3: PARCEL < SPDY proxy on latency, and SPDY proxy does not close
  // the gap to PARCEL because object identification stays on the client.
  core::RunConfig cfg;
  const web::WebPage& page = fixture_page();
  auto dir = core::ExperimentRunner::run(core::Scheme::kDir, page, cfg);
  auto spdy = core::ExperimentRunner::run(core::Scheme::kSpdyProxy, page, cfg);
  auto ind = core::ExperimentRunner::run(core::Scheme::kParcelInd, page, cfg);
  ASSERT_TRUE(dir.ok);
  ASSERT_TRUE(spdy.ok);
  ASSERT_TRUE(ind.ok);
  EXPECT_LT(ind.olt.sec(), spdy.olt.sec());
  EXPECT_LT(spdy.olt.sec(), dir.olt.sec() * 1.05);  // SPDY >= DIR-ish
  EXPECT_LT(ind.radio.total.j(), spdy.radio.total.j());
  // Table 1: SPDY single connection, but still per-object requests.
  EXPECT_EQ(spdy.tcp_connections, 1u);
  EXPECT_EQ(spdy.radio_http_requests, page.object_count());
  EXPECT_EQ(spdy.dns_lookups, 0u);
}

TEST(ProxiedSchemes, SuppressionAblationIncreasesRadioRequests) {
  const web::WebPage& page = fixture_page();
  core::Testbed testbed{core::TestbedConfig{}};
  testbed.host_page(page);
  core::ParcelSessionConfig cfg;
  cfg.client_suppression = false;
  core::ParcelSession session(testbed.network(), cfg, util::Rng(5));
  bool complete = false;
  core::ParcelSession::Callbacks cbs;
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  session.load(page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(complete);
  // Without suppression the client immediately requests objects that were
  // already on their way in bundles.
  EXPECT_GT(session.client_fetcher().fallback_requests(), 0u);
  EXPECT_EQ(session.client_fetcher().suppressed_total(), 0u);
}

}  // namespace
}  // namespace parcel::browser
