#include <gtest/gtest.h>

#include <map>

#include "browser/engine.hpp"
#include "browser/main_thread.hpp"
#include "sim/scheduler.hpp"

namespace parcel::browser {
namespace {

using util::Duration;
using util::TimePoint;

/// In-memory fetcher with a fixed latency per object; records requests.
class FakeFetcher final : public Fetcher {
 public:
  explicit FakeFetcher(sim::Scheduler& sched) : sched_(sched) {}

  void add(const std::string& url, web::ObjectType type,
           const std::string& body) {
    FetchResult r;
    r.url = net::Url::parse(url);
    r.type = type;
    r.content = std::make_shared<const std::string>(body);
    r.size = static_cast<util::Bytes>(body.size());
    objects_[url] = std::move(r);
  }

  void add_opaque(const std::string& url, web::ObjectType type,
                  util::Bytes size) {
    FetchResult r;
    r.url = net::Url::parse(url);
    r.type = type;
    r.size = size;
    objects_[url] = std::move(r);
  }

  void fetch(const net::Url& url, web::ObjectType hint, bool randomized,
             std::uint32_t, std::function<void(FetchResult)> cb) override {
    (void)randomized;
    requested.push_back(url.str());
    auto it = objects_.find(url.str());
    FetchResult result;
    if (it == objects_.end()) {
      result.url = url;
      result.status = 404;
      result.size = 512;
    } else {
      result = it->second;
      // Sync/async JS share a MIME type; honour the engine's hint.
      if ((result.type == web::ObjectType::kJs ||
           result.type == web::ObjectType::kJsAsync) &&
          (hint == web::ObjectType::kJs ||
           hint == web::ObjectType::kJsAsync)) {
        result.type = hint;
      }
    }
    sched_.schedule_after(latency, [result = std::move(result),
                                    cb = std::move(cb)]() mutable {
      cb(std::move(result));
    });
  }

  Duration latency = Duration::millis(50);
  std::vector<std::string> requested;

 private:
  sim::Scheduler& sched_;
  std::map<std::string, FetchResult> objects_;
};

struct EngineFixture : ::testing::Test {
  sim::Scheduler sched;
  FakeFetcher fetcher{sched};
  EngineConfig config;

  EngineFixture() {
    config.parse_bytes_per_sec = 1e6;
    config.js_units_per_sec = 100;
    config.async_exec_min = Duration::millis(100);
    config.async_exec_max = Duration::millis(200);
  }

  std::unique_ptr<BrowserEngine> make_engine() {
    return std::make_unique<BrowserEngine>(sched, fetcher, config,
                                           util::Rng(1), "test");
  }
};

TEST_F(EngineFixture, LoadsSimplePageAndFiresCallbacks) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><img src=\"/x.jpg\"></html>");
  fetcher.add_opaque("http://a.example/x.jpg", web::ObjectType::kImage, 1000);

  auto engine = make_engine();
  bool onload = false, complete = false;
  BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](TimePoint) { onload = true; };
  cbs.on_complete = [&](TimePoint) { complete = true; };
  engine->load(net::Url::parse("http://a.example/"), std::move(cbs));
  sched.run();
  EXPECT_TRUE(onload);
  EXPECT_TRUE(complete);
  EXPECT_LE(engine->onload_time(), engine->complete_time());
  EXPECT_EQ(engine->ledger().count(), 2u);
  EXPECT_GT(engine->cpu_busy().sec(), 0.0);
}

TEST_F(EngineFixture, SyncScriptBlocksParserUntilExecuted) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><script src=\"/slow.js\"></script>"
              "<img src=\"/late.jpg\"></html>");
  fetcher.add("http://a.example/slow.js", web::ObjectType::kJs,
              "compute(5);");
  fetcher.add_opaque("http://a.example/late.jpg", web::ObjectType::kImage,
                     100);

  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  // The image must have been requested only after the script.
  auto& reqs = fetcher.requested;
  auto js_pos = std::find(reqs.begin(), reqs.end(), "http://a.example/slow.js");
  auto img_pos =
      std::find(reqs.begin(), reqs.end(), "http://a.example/late.jpg");
  ASSERT_NE(js_pos, reqs.end());
  ASSERT_NE(img_pos, reqs.end());
  EXPECT_LT(js_pos - reqs.begin(), img_pos - reqs.begin());
}

TEST_F(EngineFixture, JsRevealedDependenciesAreFetched) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><script src=\"/a.js\"></script></html>");
  fetcher.add("http://a.example/a.js", web::ObjectType::kJs,
              "loadScript(\"/b.js\");\nfetch(\"/d.json\");");
  fetcher.add("http://a.example/b.js", web::ObjectType::kJs,
              "document.write('<img src=\"/img.jpg\">');");
  fetcher.add("http://a.example/d.json", web::ObjectType::kJson, "{}");
  fetcher.add_opaque("http://a.example/img.jpg", web::ObjectType::kImage, 99);

  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(engine->completed());
  EXPECT_EQ(engine->ledger().count(), 5u);
  // All were blocking (revealed by sync scripts): onload set == all.
  EXPECT_EQ(engine->ledger().onload_ids().size(), 5u);
}

TEST_F(EngineFixture, AsyncScriptRunsAfterOnloadProducingPostOnloadFetches) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><script async src=\"/ad.js\"></script>"
              "<img src=\"/hero.jpg\"></html>");
  fetcher.add("http://a.example/ad.js", web::ObjectType::kJsAsync,
              "fetch(\"/ad.json\");");
  fetcher.add("http://a.example/ad.json", web::ObjectType::kJson, "{}");
  fetcher.add_opaque("http://a.example/hero.jpg", web::ObjectType::kImage,
                     2000);

  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(engine->completed());
  EXPECT_GT(engine->complete_time(), engine->onload_time());
  // Neither the async script nor its JSON belongs to the onload set; only
  // the HTML and the hero image do.
  EXPECT_EQ(engine->ledger().onload_ids().size(), 2u);
  EXPECT_EQ(engine->ledger().count(), 4u);
}

TEST_F(EngineFixture, CssRevealsImagesAndFonts) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><link rel=\"stylesheet\" href=\"/s.css\"></html>");
  fetcher.add("http://a.example/s.css", web::ObjectType::kCss,
              ".a { background-image: url(\"/bg.png\"); }\n"
              "@font-face { src: url(\"/f.woff2\"); }");
  fetcher.add_opaque("http://a.example/bg.png", web::ObjectType::kImage, 10);
  fetcher.add_opaque("http://a.example/f.woff2", web::ObjectType::kFont, 10);

  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_EQ(engine->ledger().count(), 4u);
  EXPECT_TRUE(engine->is_cached(net::Url::parse("http://a.example/bg.png")));
}

TEST_F(EngineFixture, DuplicateReferencesFetchedOnce) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><img src=\"/same.jpg\"><img src=\"/same.jpg\"></html>");
  fetcher.add_opaque("http://a.example/same.jpg", web::ObjectType::kImage, 5);
  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_EQ(engine->ledger().count(), 2u);
  EXPECT_EQ(engine->fetches_issued(), 2u);
}

TEST_F(EngineFixture, MissingObjectDoesNotStallOnload) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><img src=\"/gone.jpg\"></html>");
  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  EXPECT_TRUE(engine->onload_fired());
  EXPECT_TRUE(engine->completed());
  EXPECT_TRUE(engine->ledger().entry(2).failed);
}

TEST_F(EngineFixture, ClickHandlersResolveLocallyWhenCached) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml,
              "<html><script src=\"/g.js\"></script></html>");
  fetcher.add("http://a.example/g.js", web::ObjectType::kJs,
              "document.write('<img src=\"/p0.jpg\">');\n"
              "onClick(0, \"/p0.jpg\");\nonClick(1, \"/p1.jpg\");");
  fetcher.add_opaque("http://a.example/p0.jpg", web::ObjectType::kImage, 10);
  fetcher.add_opaque("http://a.example/p1.jpg", web::ObjectType::kImage, 10);

  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  sched.run();
  ASSERT_TRUE(engine->has_click_handler(0));
  std::size_t fetches_before = engine->fetches_issued();

  bool done0 = false;
  engine->click(0, [&] { done0 = true; });  // p0 cached during load
  sched.run();
  EXPECT_TRUE(done0);
  EXPECT_EQ(engine->fetches_issued(), fetches_before);  // no network

  bool done1 = false;
  engine->click(1, [&] { done1 = true; });  // p1 never fetched
  sched.run();
  EXPECT_TRUE(done1);
  EXPECT_EQ(engine->fetches_issued(), fetches_before + 1);
  EXPECT_THROW(engine->click(42, [] {}), std::invalid_argument);
}

TEST_F(EngineFixture, LoadTwiceThrows) {
  fetcher.add("http://a.example/", web::ObjectType::kHtml, "<html></html>");
  auto engine = make_engine();
  engine->load(net::Url::parse("http://a.example/"), {});
  EXPECT_THROW(engine->load(net::Url::parse("http://a.example/"), {}),
               std::logic_error);
}

TEST(MainThread, SerializesTasksAndAccumulatesBusyTime) {
  sim::Scheduler sched;
  MainThread thread(sched);
  std::vector<int> order;
  thread.post(Duration::millis(10), true, [&] { order.push_back(1); });
  thread.post(Duration::millis(20), false, [&] { order.push_back(2); });
  EXPECT_EQ(thread.pending_blocking(), 1u);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_NEAR(thread.busy_total().sec(), 0.030, 1e-9);
  EXPECT_TRUE(thread.idle());
  EXPECT_EQ(thread.pending_blocking(), 0u);
  EXPECT_NEAR(sched.now().sec(), 0.030, 1e-9);
}

TEST(MainThread, RejectsBadTasks) {
  sim::Scheduler sched;
  MainThread thread(sched);
  EXPECT_THROW(thread.post(Duration::millis(1), false, nullptr),
               std::invalid_argument);
  EXPECT_THROW(
      thread.post(Duration::seconds(-1), false, [] {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace parcel::browser
