#include <gtest/gtest.h>

#include "web/css.hpp"
#include "web/html.hpp"
#include "web/js.hpp"
#include "web/reference.hpp"

namespace parcel::web {
namespace {

TEST(InferType, ByExtension) {
  EXPECT_EQ(infer_type("/a/b.css", ObjectType::kImage), ObjectType::kCss);
  EXPECT_EQ(infer_type("/a/b.js", ObjectType::kImage), ObjectType::kJs);
  EXPECT_EQ(infer_type("/a/b.jpg?x=1", ObjectType::kJson), ObjectType::kImage);
  EXPECT_EQ(infer_type("/a/b.woff2", ObjectType::kImage), ObjectType::kFont);
  EXPECT_EQ(infer_type("/a/b.json", ObjectType::kImage), ObjectType::kJson);
  EXPECT_EQ(infer_type("/a/b.mp4", ObjectType::kImage), ObjectType::kMedia);
  EXPECT_EQ(infer_type("/noext", ObjectType::kJson), ObjectType::kJson);
}

TEST(MiniHtml, ExtractsReferencesInDocumentOrder) {
  const char* html = R"(
    <html><head>
      <link rel="stylesheet" href="/css/a.css">
      <script src="/js/one.js"></script>
      <script async src="http://ads.example/ad.js"></script>
    </head><body>
      <img src="/img/x.jpg">
      <video src="/v.mp4"></video>
      <script>
        compute(1.0);
      </script>
    </body></html>)";
  auto tokens = MiniHtml::scan(html);
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].ref.expected_type, ObjectType::kCss);
  EXPECT_EQ(tokens[0].ref.target, "/css/a.css");
  EXPECT_EQ(tokens[1].ref.expected_type, ObjectType::kJs);
  EXPECT_FALSE(tokens[1].ref.async);
  EXPECT_EQ(tokens[2].ref.expected_type, ObjectType::kJsAsync);
  EXPECT_TRUE(tokens[2].ref.async);
  EXPECT_EQ(tokens[3].ref.expected_type, ObjectType::kImage);
  EXPECT_EQ(tokens[4].ref.expected_type, ObjectType::kMedia);
  EXPECT_EQ(tokens[5].kind, HtmlToken::Kind::kInlineScript);
  EXPECT_NE(tokens[5].script.find("compute"), std::string::npos);
}

TEST(MiniHtml, SkipsComments) {
  auto tokens = MiniHtml::scan("<!-- <img src=\"/hidden.jpg\"> --><img src=\"/real.jpg\">");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].ref.target, "/real.jpg");
}

TEST(MiniHtml, IgnoresNonStylesheetLinks) {
  auto tokens = MiniHtml::scan("<link rel=\"icon\" href=\"/favicon.ico\">");
  EXPECT_TRUE(tokens.empty());
}

TEST(MiniHtml, AttributeExtraction) {
  EXPECT_EQ(MiniHtml::attribute("<img src=\"/a.png\">", "src"), "/a.png");
  EXPECT_EQ(MiniHtml::attribute("<img src='/a.png'>", "src"), "/a.png");
  EXPECT_EQ(MiniHtml::attribute("<img src=/a.png>", "src"), "/a.png");
  EXPECT_EQ(MiniHtml::attribute("<img alt=\"x\">", "src"), "");
}

TEST(MiniHtml, EmptyInlineScriptIgnored) {
  auto tokens = MiniHtml::scan("<script>   </script>");
  EXPECT_TRUE(tokens.empty());
}

TEST(MiniCss, UrlAndImports) {
  const char* css = R"(
    /* url("commented-out.png") */
    @import url("base.css");
    @import "reset.css";
    .a { background-image: url("/img/a.png"); }
    .b { background: url(http://cdn.example/b.jpg); }
    @font-face { src: url("f.woff2"); }
  )";
  auto refs = MiniCss::scan(css);
  ASSERT_EQ(refs.size(), 5u);
  EXPECT_EQ(refs[0].expected_type, ObjectType::kCss);
  EXPECT_EQ(refs[0].target, "base.css");
  EXPECT_EQ(refs[1].target, "reset.css");
  EXPECT_EQ(refs[2].target, "/img/a.png");
  EXPECT_EQ(refs[3].target, "http://cdn.example/b.jpg");
  EXPECT_EQ(refs[4].expected_type, ObjectType::kFont);
}

TEST(MiniCss, EmptyAndCommentOnly) {
  EXPECT_TRUE(MiniCss::scan("").empty());
  EXPECT_TRUE(MiniCss::scan("/* url(x.png) */ body{}").empty());
}

TEST(MiniJs, ComputeAccumulatesWork) {
  JsProgram prog = MiniJs::run("compute(2.5);\ncompute(1.5);\n");
  EXPECT_NEAR(prog.work_units, 4.0 + 0.02, 1e-9);
  EXPECT_TRUE(prog.references.empty());
}

TEST(MiniJs, FetchVariants) {
  JsProgram prog = MiniJs::run(
      "fetch(\"http://api.example/a.json\");\n"
      "fetchRand(\"http://api.example/b.json\");\n");
  ASSERT_EQ(prog.references.size(), 2u);
  EXPECT_FALSE(prog.references[0].randomized);
  EXPECT_TRUE(prog.references[1].randomized);
  EXPECT_EQ(prog.references[0].expected_type, ObjectType::kJson);
}

TEST(MiniJs, ScriptInjection) {
  JsProgram prog = MiniJs::run(
      "loadScript(\"/js/dep.js\");\n"
      "loadScriptAsync(\"/js/lazy.js\");\n");
  ASSERT_EQ(prog.references.size(), 2u);
  EXPECT_EQ(prog.references[0].expected_type, ObjectType::kJs);
  EXPECT_FALSE(prog.references[0].async);
  EXPECT_EQ(prog.references[1].expected_type, ObjectType::kJsAsync);
  EXPECT_TRUE(prog.references[1].async);
}

TEST(MiniJs, DocumentWriteRevealsImage) {
  JsProgram prog =
      MiniJs::run("document.write('<img src=\"/img/banner.jpg\">');\n");
  ASSERT_EQ(prog.references.size(), 1u);
  EXPECT_EQ(prog.references[0].target, "/img/banner.jpg");
  EXPECT_EQ(prog.references[0].expected_type, ObjectType::kImage);
}

TEST(MiniJs, ClickHandlers) {
  JsProgram prog = MiniJs::run(
      "onClick(0, \"/img/p0.jpg\");\n"
      "onClick(3, \"/img/p3.jpg\");\n");
  ASSERT_EQ(prog.click_handlers.size(), 2u);
  EXPECT_EQ(prog.click_handlers[1].click_index, 3);
  EXPECT_EQ(prog.click_handlers[1].target, "/img/p3.jpg");
}

TEST(MiniJs, CommentsAndPaddingAreFree) {
  JsProgram prog = MiniJs::run("// just a comment line\n\n");
  EXPECT_DOUBLE_EQ(prog.work_units, 0.0);
}

TEST(MiniJs, GenericStatementsCostALittle) {
  JsProgram prog = MiniJs::run("var x = 1;\nvar y = 2;\n");
  EXPECT_NEAR(prog.work_units, 0.02, 1e-9);
}

// ---- Edge-case pins. These nail down today's scanner behavior so the
// zero-copy rewrite is checkably behavior-preserving. ----

TEST(MiniHtml, UnterminatedInlineScriptYieldsNothing) {
  // No </script>: the body runs to EOF and is treated as absent.
  auto tokens = MiniHtml::scan("<p>x</p><script>var x = 1;");
  EXPECT_TRUE(tokens.empty());
}

TEST(MiniHtml, UnterminatedSrcScriptStillEmitsReference) {
  // The src reference comes from the open tag; the missing close tag only
  // swallows the rest of the document.
  auto tokens = MiniHtml::scan(
      "<script src=\"/a.js\">compute(1);<img src=\"/late.jpg\">");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].ref.target, "/a.js");
  EXPECT_EQ(tokens[0].ref.expected_type, ObjectType::kJs);
}

TEST(MiniHtml, UppercaseTagsAndAttributes) {
  auto tokens = MiniHtml::scan(
      "<LINK REL=\"STYLESHEET\" HREF=\"/A.CSS\">"
      "<SCRIPT SRC=\"/A.JS\"></SCRIPT>"
      "<IMG SRC=\"/A.JPG\">");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].ref.expected_type, ObjectType::kCss);
  EXPECT_EQ(tokens[0].ref.target, "/A.CSS");
  EXPECT_EQ(tokens[1].ref.expected_type, ObjectType::kJs);
  EXPECT_EQ(tokens[1].ref.target, "/A.JS");
  EXPECT_EQ(tokens[2].ref.target, "/A.JPG");
}

TEST(MiniHtml, UppercaseCloseTagEndsInlineScript) {
  auto tokens = MiniHtml::scan("<script>compute(2);</SCRIPT><img src=/x.jpg>");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, HtmlToken::Kind::kInlineScript);
  EXPECT_EQ(tokens[1].ref.target, "/x.jpg");
}

TEST(MiniHtml, UnquotedAndValuelessAttributes) {
  auto tokens = MiniHtml::scan(
      "<script src=/sync.js defer></script>"
      "<script async src=/lazy.js></script>"
      "<img src=/pic.png>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].ref.target, "/sync.js");
  EXPECT_TRUE(tokens[0].ref.async);  // valueless defer counts as async
  EXPECT_EQ(tokens[0].ref.expected_type, ObjectType::kJsAsync);
  EXPECT_TRUE(tokens[1].ref.async);
  EXPECT_EQ(tokens[2].ref.target, "/pic.png");
}

TEST(MiniHtml, PrefixedAttributeNamesDoNotMatch) {
  // data-src= must not satisfy a src= lookup (left boundary check).
  EXPECT_EQ(MiniHtml::attribute("<img data-src=\"/lazy.png\">", "src"), "");
  auto tokens = MiniHtml::scan("<img data-src=\"/lazy.png\">");
  EXPECT_TRUE(tokens.empty());
}

TEST(MiniHtml, CommentWrappingScriptAndLink) {
  auto tokens = MiniHtml::scan(
      "<!-- <script src=\"/dead.js\"></script>\n"
      "     <link rel=\"stylesheet\" href=\"/dead.css\"> -->"
      "<script src=\"/live.js\"></script>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].ref.target, "/live.js");
}

TEST(MiniHtml, UnterminatedCommentSwallowsRest) {
  auto tokens = MiniHtml::scan("<img src=/a.jpg><!-- <img src=/b.jpg>");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].ref.target, "/a.jpg");
}

TEST(MiniCss, UppercaseTokensMatch) {
  auto refs = MiniCss::scan("@IMPORT URL(\"A.CSS\");\n.x { background: URL(/B.PNG); }");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].target, "A.CSS");
  EXPECT_EQ(refs[0].expected_type, ObjectType::kCss);
  EXPECT_EQ(refs[1].target, "/B.PNG");
}

TEST(MiniCss, UnterminatedCommentBlanksToEnd) {
  EXPECT_TRUE(MiniCss::scan("/* url(x.png) body { background: url(y.png); }")
                  .empty());
}

TEST(MiniCss, UnterminatedConstructsYieldNothingFurther) {
  // @import without its semicolon ends the scan; url( without a close
  // paren likewise.
  EXPECT_TRUE(MiniCss::scan("@import \"a.css\"").empty());
  EXPECT_TRUE(MiniCss::scan("body { background: url(/a.png }").empty());
  auto refs = MiniCss::scan(".a{background:url(/ok.png)} @import \"late.css\"");
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0].target, "/ok.png");
}

TEST(MiniCss, CommentBetweenDeclarationsWrapsReference) {
  auto refs = MiniCss::scan(
      ".a { background: url(/keep.png); }\n"
      "/* .b { background: url(/drop.png); } */\n"
      ".c { background: url(/also.png); }");
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0].target, "/keep.png");
  EXPECT_EQ(refs[1].target, "/also.png");
}

TEST(MiniJs, MalformedStatementsThrow) {
  EXPECT_THROW(MiniJs::run("fetch();"), std::invalid_argument);
  EXPECT_THROW(MiniJs::run("compute(abc);"), std::invalid_argument);
  EXPECT_THROW(MiniJs::run("explode everything"), std::invalid_argument);
  EXPECT_THROW(MiniJs::run("onClick(1);"), std::invalid_argument);
}

}  // namespace
}  // namespace parcel::web
