#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/url.hpp"
#include "web/css.hpp"
#include "web/html.hpp"
#include "web/js.hpp"
#include "web/parse_cache.hpp"

namespace parcel::web {
namespace {

std::shared_ptr<const std::string> shared(std::string s) {
  return std::make_shared<const std::string>(std::move(s));
}

/// Every test starts from an empty cache with zeroed counters; the cache
/// is a process-wide singleton, so tests sharing a binary invocation must
/// not depend on each other's entries.
class ParseCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ParseCache::instance().clear();
    ParseCache::instance().reset_stats();
    ParseCache::set_enabled(true);
  }
  void TearDown() override {
    ParseCache::instance().clear();
    ParseCache::set_enabled(true);
  }
};

TEST_F(ParseCacheTest, SecondScanOfSameContentIsAHit) {
  auto doc = shared("<img src=\"/a.png\"><script src=\"/a.js\"></script>");
  auto first = ParseCache::instance().html(*doc, doc);
  auto second = ParseCache::instance().html(*doc, doc);
  EXPECT_EQ(first.get(), second.get());  // shared artifact, not a copy
  ParseCache::Stats s = ParseCache::instance().stats();
  EXPECT_EQ(s.html_misses, 1u);
  EXPECT_EQ(s.html_hits, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST_F(ParseCacheTest, CachedArtifactEqualsFreshScan) {
  auto doc = shared(
      "<link rel=\"stylesheet\" href=\"/s.css\">"
      "<script>fetch(\"/x.json\");</script>"
      "<img src=\"http://cdn.example/i.png\">");
  auto cached = ParseCache::instance().html(*doc, doc);
  std::vector<HtmlToken> fresh = MiniHtml::scan(*doc);
  ASSERT_EQ(cached->size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ((*cached)[i].kind, fresh[i].kind);
    EXPECT_EQ((*cached)[i].ref, fresh[i].ref);
    EXPECT_EQ((*cached)[i].script, fresh[i].script);
  }
}

TEST_F(ParseCacheTest, DistinctContentGetsDistinctEntries) {
  auto a = shared("<img src=\"/a.png\">");
  auto b = shared("<img src=\"/b.png\">");
  auto ta = ParseCache::instance().html(*a, a);
  auto tb = ParseCache::instance().html(*b, b);
  EXPECT_NE(ta.get(), tb.get());
  EXPECT_EQ(ParseCache::instance().size(), 2u);
  EXPECT_EQ(ParseCache::instance().stats().html_misses, 2u);
}

TEST_F(ParseCacheTest, DisabledCacheScansFreshAndStoresNothing) {
  ParseCache::set_enabled(false);
  auto doc = shared("<img src=\"/a.png\">");
  auto first = ParseCache::instance().html(*doc, doc);
  auto second = ParseCache::instance().html(*doc, doc);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(ParseCache::instance().size(), 0u);
  ParseCache::Stats s = ParseCache::instance().stats();
  EXPECT_EQ(s.html_hits, 0u);
  EXPECT_EQ(s.html_misses, 2u);
  // Off or on, the scan result is identical.
  EXPECT_EQ(*first, *second);
}

TEST_F(ParseCacheTest, NullPinScansFreshWithoutInsert) {
  std::string local = "url(/bg.png)";
  auto refs = ParseCache::instance().css(local, nullptr);
  ASSERT_EQ(refs->size(), 1u);
  EXPECT_EQ(ParseCache::instance().size(), 0u);
}

TEST_F(ParseCacheTest, InlineScriptViewsKeyIndependentlyOfDocument) {
  auto doc = shared(
      "<script>fetch(\"/one.json\");</script>"
      "<script>fetch(\"/two.json\");</script>");
  auto tokens = ParseCache::instance().html(*doc, doc);
  ASSERT_EQ(tokens->size(), 2u);
  // Each inline body is a view into the middle of the document; both get
  // their own cache entry keyed by (pointer, length).
  auto p1 = ParseCache::instance().js((*tokens)[0].script, doc);
  auto p2 = ParseCache::instance().js((*tokens)[1].script, doc);
  ASSERT_EQ(p1->references.size(), 1u);
  ASSERT_EQ(p2->references.size(), 1u);
  EXPECT_EQ(p1->references[0].target, "/one.json");
  EXPECT_EQ(p2->references[0].target, "/two.json");
  // Re-requesting the first body hits.
  auto again = ParseCache::instance().js((*tokens)[0].script, doc);
  EXPECT_EQ(again.get(), p1.get());
  EXPECT_EQ(ParseCache::instance().stats().js_hits, 1u);
}

TEST_F(ParseCacheTest, EntryPinsContentAfterCallerDropsIt) {
  auto js = shared("fetch(\"/pinned.png\");");
  const std::string* raw = js.get();
  auto prog = ParseCache::instance().js(*js, js);
  js.reset();  // cache entry keeps the string alive
  ASSERT_EQ(prog->references.size(), 1u);
  EXPECT_EQ(prog->references[0].target, "/pinned.png");
  // The borrowed view still points into the original buffer.
  const char* t = prog->references[0].target.data();
  EXPECT_GE(t, raw->data());
  EXPECT_LT(t, raw->data() + raw->size());
}

TEST_F(ParseCacheTest, ClearReleasesEntriesButNotOutstandingArtifacts) {
  auto css = shared("body { background: url(\"/bg.png\"); }");
  auto refs = ParseCache::instance().css(*css, css);
  ASSERT_EQ(ParseCache::instance().size(), 1u);
  ParseCache::instance().clear();
  EXPECT_EQ(ParseCache::instance().size(), 0u);
  // The artifact (and, via our own `css` pointer, its backing string)
  // remains usable.
  ASSERT_EQ(refs->size(), 1u);
  EXPECT_EQ((*refs)[0].target, "/bg.png");
}

TEST_F(ParseCacheTest, SweepDropsDeadEntriesAndKeepsOwnedOnes) {
  auto corpus = shared("<img src=\"/corpus.png\">");  // we keep owning this
  auto transient = shared("<img src=\"/transient.png\">");
  ParseCache::instance().html(*corpus, corpus);
  ParseCache::instance().html(*transient, transient);
  ASSERT_EQ(ParseCache::instance().size(), 2u);
  transient.reset();  // cache becomes the string's only owner: dead weight
  EXPECT_EQ(ParseCache::instance().sweep_transient(), 1u);
  EXPECT_EQ(ParseCache::instance().size(), 1u);
  // The surviving corpus entry still hits.
  ParseCache::instance().reset_stats();
  ParseCache::instance().html(*corpus, corpus);
  EXPECT_EQ(ParseCache::instance().stats().html_hits, 1u);
}

TEST_F(ParseCacheTest, SweepKeepsEntriesWhoseArtifactIsStillBorrowed) {
  auto js = shared("fetch(\"/borrowed.json\");");
  auto prog = ParseCache::instance().js(*js, js);
  js.reset();
  // The artifact borrows views from the pinned string; while we hold it,
  // sweeping must not free the backing bytes.
  EXPECT_EQ(ParseCache::instance().sweep_transient(), 0u);
  ASSERT_EQ(prog->references.size(), 1u);
  EXPECT_EQ(prog->references[0].target, "/borrowed.json");
  prog.reset();
  EXPECT_EQ(ParseCache::instance().sweep_transient(), 1u);
  EXPECT_EQ(ParseCache::instance().size(), 0u);
}

TEST_F(ParseCacheTest, SweepTreatsDocumentAndInlineScriptsAsOneGroup) {
  auto doc = shared(
      "<script>fetch(\"/one.json\");</script>"
      "<script>fetch(\"/two.json\");</script>");
  {
    auto tokens = ParseCache::instance().html(*doc, doc);
    ParseCache::instance().js((*tokens)[0].script, doc);
    ParseCache::instance().js((*tokens)[1].script, doc);
  }
  ASSERT_EQ(ParseCache::instance().size(), 3u);
  // The three entries pin the same string. While the document is owned
  // outside the cache, the whole group must survive — the inline-script
  // entries alone cannot justify freeing bytes the document entry keys.
  EXPECT_EQ(ParseCache::instance().sweep_transient(), 0u);
  doc.reset();
  // Now the group is fully internal: all three go together.
  EXPECT_EQ(ParseCache::instance().sweep_transient(), 3u);
  EXPECT_EQ(ParseCache::instance().size(), 0u);
}

TEST_F(ParseCacheTest, CssCommentPathReturnsViewsIntoOriginal) {
  auto css = shared(
      "/* lead */ .a { background: url(/one.png); }\n"
      ".b { background: url(/two.png); } /* tail */");
  auto refs = ParseCache::instance().css(*css, css);
  ASSERT_EQ(refs->size(), 2u);
  for (const Reference& r : *refs) {
    // Comment stripping works on a local copy; the returned views must
    // be mapped back into the cached original, never the scratch copy.
    EXPECT_GE(r.target.data(), css->data());
    EXPECT_LT(r.target.data(), css->data() + css->size());
  }
  EXPECT_EQ((*refs)[0].target, "/one.png");
  EXPECT_EQ((*refs)[1].target, "/two.png");
}

TEST_F(ParseCacheTest, ConcurrentRequestsShareOneScan) {
  auto doc = shared(
      "<img src=\"/a.png\"><script src=\"/s.js\"></script>"
      "<link rel=\"stylesheet\" href=\"/s.css\">");
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const std::vector<HtmlToken>>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        results[static_cast<std::size_t>(i)] =
            ParseCache::instance().html(*doc, doc);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(i)].get());
  }
  ParseCache::Stats s = ParseCache::instance().stats();
  EXPECT_EQ(s.html_misses, 1u);
  EXPECT_EQ(s.html_hits, static_cast<std::uint64_t>(kThreads - 1));
}

// --- URL interning ----------------------------------------------------

TEST(UrlInterning, IdsAreDeterministicAndComponentSensitive) {
  net::Url a = net::Url::parse("http://site.example/p/q?x=1");
  net::Url b = net::Url::parse("http://site.example/p/q?x=1");
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.normalized_id(), b.normalized_id());
  // Query participates in id() but not normalized_id().
  net::Url c = net::Url::parse("http://site.example/p/q?x=2");
  EXPECT_NE(a.id(), c.id());
  EXPECT_EQ(a.normalized_id(), c.normalized_id());
  // Scheme participates in id().
  net::Url d = net::Url::parse("https://site.example/p/q?x=1");
  EXPECT_NE(a.id(), d.id());
  // Component boundaries matter: host "site.example/p" + path "/q" must
  // not collide with host "site.example" + path "/p/q".
  net::Url e = net::Url::parse("http://site.example/pq?x=1");
  EXPECT_NE(a.id(), e.id());
}

TEST(UrlInterning, ResolveRefreshesIds) {
  net::Url base = net::Url::parse("http://site.example/dir/page.html");
  net::Url rel = base.resolve("../img/i.png?r=7");
  net::Url direct = net::Url::parse("http://site.example/img/i.png?r=7");
  EXPECT_EQ(rel.id(), direct.id());
  EXPECT_EQ(rel.normalized_id(), direct.normalized_id());
  EXPECT_EQ(net::Url{}.id(), net::Url{}.id());
}

TEST(UrlInterning, NormalizedIdMatchesWithoutQueryIntern) {
  net::Url u = net::Url::parse("http://site.example/a/b?r=123");
  EXPECT_EQ(u.normalized_id().v, net::intern_key(u.without_query()));
}

}  // namespace
}  // namespace parcel::web
