#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/experiment.hpp"
#include "fleet/fleet_runner.hpp"
#include "fleet/proxy_compute.hpp"
#include "fleet/shard.hpp"
#include "fleet/shard_router.hpp"
#include "fleet/shared_store.hpp"
#include "replay/replay_store.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "web/generator.hpp"
#include "web/object.hpp"

namespace parcel::fleet {
namespace {

// A small replayed corpus shared by the sharded-fleet tests (same pattern
// as test_fleet: static store keeps the snapshots alive).
const std::vector<const web::WebPage*>& test_corpus() {
  static std::vector<const web::WebPage*>* corpus = [] {
    static replay::ReplayStore store;
    auto* pages = new std::vector<const web::WebPage*>;
    for (int p = 0; p < 2; ++p) {
      web::PageSpec spec;
      spec.site = "shard" + std::to_string(p) + ".example.com";
      spec.object_count = 24;
      spec.total_bytes = util::kib(300);
      spec.seed = 80 + static_cast<std::uint64_t>(p);
      store.record(web::PageGenerator::generate(spec));
      pages->push_back(
          store.find("http://shard" + std::to_string(p) + ".example.com/"));
    }
    return pages;
  }();
  return *corpus;
}

// A contended sharded fleet whose arrival window straddles the crash
// instant used by the handoff tests below.
FleetConfig sharded_config(int shards, int clients) {
  FleetConfig cfg;
  cfg.clients = clients;
  cfg.arrival_seed = 5;
  cfg.mean_interarrival = util::Duration::millis(2);
  cfg.compute.workers = 2;
  cfg.base.seed = 31;
  cfg.shards = shards;
  return cfg;
}

// Bitwise comparison of two sharded exact-mode runs, including the ISSUE 8
// surface (per-client handoff columns, tier stats, crash counters).
void expect_sharded_identical(const FleetMetrics& a, const FleetMetrics& b) {
  ASSERT_EQ(a.clients.size(), b.clients.size());
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed, b.shed);
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    SCOPED_TRACE("client " + std::to_string(i));
    EXPECT_EQ(a.clients[i].shed, b.clients[i].shed);
    EXPECT_EQ(a.clients[i].queue_wait.sec(), b.clients[i].queue_wait.sec());
    EXPECT_EQ(a.clients[i].olt.sec(), b.clients[i].olt.sec());
    EXPECT_EQ(a.clients[i].handoffs, b.clients[i].handoffs);
    EXPECT_EQ(a.clients[i].recovery.sec(), b.clients[i].recovery.sec());
    EXPECT_EQ(a.clients[i].redo_sec, b.clients[i].redo_sec);
    EXPECT_EQ(a.clients[i].redo_bytes, b.clients[i].redo_bytes);
  }
  EXPECT_EQ(a.olt_p95, b.olt_p95);
  EXPECT_EQ(a.wait_p95, b.wait_p95);
  EXPECT_EQ(a.store.hits, b.store.hits);
  EXPECT_EQ(a.store.misses, b.store.misses);
  ASSERT_EQ(a.l1_shards.size(), b.l1_shards.size());
  for (std::size_t s = 0; s < a.l1_shards.size(); ++s) {
    EXPECT_EQ(a.l1_shards[s].hits, b.l1_shards[s].hits);
    EXPECT_EQ(a.l1_shards[s].misses, b.l1_shards[s].misses);
  }
  EXPECT_EQ(a.l2.hits, b.l2.hits);
  EXPECT_EQ(a.l2.misses, b.l2.misses);
  EXPECT_EQ(a.compute.completed, b.compute.completed);
  EXPECT_EQ(a.compute.transfer_busy_sec, b.compute.transfer_busy_sec);
  EXPECT_EQ(a.crash_handoffs, b.crash_handoffs);
  EXPECT_EQ(a.crash_killed_tasks, b.crash_killed_tasks);
  EXPECT_EQ(a.redo_sec_total, b.redo_sec_total);
  EXPECT_EQ(a.redo_bytes_total, b.redo_bytes_total);
  EXPECT_EQ(a.recovery_sec_total, b.recovery_sec_total);
  EXPECT_EQ(a.recovery_sec_max, b.recovery_sec_max);
  EXPECT_EQ(a.fault_retransmits, b.fault_retransmits);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.fault_deferrals, b.fault_deferrals);
  EXPECT_EQ(a.direct_fetches, b.direct_fetches);
  EXPECT_EQ(a.degraded_sessions, b.degraded_sessions);
}

// ---------------------------------------------------------------------
// ShardRouter: the rendezvous properties the handoff design rests on
// (ISSUE 8 satellite: property test for minimal remapping).

TEST(ShardRouter, KillingOneShardRemapsOnlyItsKeys) {
  // The minimal-disruption property, pinned exactly: kill 1 of N and (a)
  // every key that was NOT on the victim keeps its shard (zero survivor
  // churn), (b) every key that WAS on the victim moves to a live shard,
  // (c) the moved population is the victim's population, about K/N, and
  // (d) revival restores the original map bit-for-bit.
  const int N = 8;
  const int K = 4096;
  for (int victim : {0, 3, 7}) {
    SCOPED_TRACE("victim " + std::to_string(victim));
    ShardRouter router(N);
    std::vector<int> before(K);
    for (int c = 0; c < K; ++c) {
      before[static_cast<std::size_t>(c)] =
          router.route(ShardRouter::client_key(c));
    }

    router.set_alive(victim, false);
    EXPECT_EQ(router.alive_count(), N - 1);
    int moved = 0;
    for (int c = 0; c < K; ++c) {
      int was = before[static_cast<std::size_t>(c)];
      int now = router.route(ShardRouter::client_key(c));
      if (was == victim) {
        ++moved;
        EXPECT_NE(now, victim);
      } else {
        EXPECT_EQ(now, was) << "survivor churn at key " << c;
      }
    }
    // Rendezvous balance: the victim held roughly K/N keys. The bound is
    // loose (3 sigma-ish) but fails immediately if the mix is broken.
    EXPECT_GT(moved, K / N / 2);
    EXPECT_LT(moved, 2 * K / N);

    router.set_alive(victim, true);
    for (int c = 0; c < K; ++c) {
      EXPECT_EQ(router.route(ShardRouter::client_key(c)),
                before[static_cast<std::size_t>(c)]);
    }
  }
}

TEST(ShardRouter, RoutingIsAPureFunctionOfSaltAndKey) {
  // Two instances, same salt: identical maps (this is what makes sharded
  // runs identical across --jobs — routing has no execution-order input).
  ShardRouter a(5, 42);
  ShardRouter b(5, 42);
  ShardRouter c(5, 43);
  bool salt_matters = false;
  for (int k = 0; k < 512; ++k) {
    std::uint64_t key = ShardRouter::client_key(k);
    EXPECT_EQ(a.route(key), b.route(key));
    // Repeated queries are stable (stateless scoring).
    EXPECT_EQ(a.route(key), a.route(key));
    salt_matters |= a.route(key) != c.route(key);
  }
  EXPECT_TRUE(salt_matters);
}

TEST(ShardRouter, ValidatesAndRefusesToRouteWhenAllDead) {
  EXPECT_THROW(ShardRouter(0), std::invalid_argument);
  ShardRouter router(2);
  EXPECT_TRUE(router.alive(0));
  router.set_alive(0, false);
  router.set_alive(1, false);
  EXPECT_EQ(router.alive_count(), 0);
  EXPECT_THROW(static_cast<void>(router.route(ShardRouter::client_key(1))),
               std::logic_error);
}

// ---------------------------------------------------------------------
// ProxyCompute crash/restart semantics

TEST(ProxyComputeCrash, CrashDropsQueueVoidsInFlightAndRestartRecovers) {
  sim::Scheduler sched;
  ProxyComputeConfig cfg;
  cfg.workers = 1;
  cfg.costs = TaskCosts::idle();
  cfg.costs.fetch_base = util::Duration::seconds(1.0);
  ProxyCompute compute(sched, cfg);

  int completions = 0;
  auto done = [&](util::TimePoint, util::Duration) { ++completions; };
  for (int i = 0; i < 3; ++i) {
    compute.submit(0, 1.0, TaskKind::kFetch, 0, done);
  }
  // Crash mid-service of task 0: one in-flight + two queued die.
  sched.schedule_at(
      util::TimePoint::origin() + util::Duration::seconds(0.5), [&] {
        EXPECT_EQ(compute.crash(), 3u);
        EXPECT_TRUE(compute.dead());
        EXPECT_EQ(compute.queued(), 0u);
        EXPECT_FALSE(compute.can_accept(1));
      });
  sched.run();

  // The in-flight task's completion event fired at t=1.0 but was voided:
  // no callback, no stats.
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(compute.stats().completed, 0u);
  EXPECT_EQ(compute.stats().crash_killed, 3u);
  EXPECT_DOUBLE_EQ(compute.stats().fetch_busy_sec, 0.0);

  // Restart: the pool serves again, and only post-restart work counts.
  compute.restart();
  EXPECT_FALSE(compute.dead());
  EXPECT_TRUE(compute.can_accept(1));
  compute.submit(0, 1.0, TaskKind::kFetch, 0, done);
  sched.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(compute.stats().completed, 1u);
  EXPECT_DOUBLE_EQ(compute.stats().fetch_busy_sec, 1.0);
}

TEST(ProxyComputeCrash, TransferTasksAreCostedAndCounted) {
  sim::Scheduler sched;
  ProxyComputeConfig cfg;
  cfg.workers = 1;
  cfg.costs = TaskCosts::idle();
  cfg.costs.transfer_base = util::Duration::millis(1);
  cfg.costs.transfer_bytes_per_sec = 1e6;  // 1 MB/s backplane
  ProxyCompute compute(sched, cfg);
  std::vector<double> finished;
  compute.submit(0, 1.0, TaskKind::kTransfer, 500000,
                 [&](util::TimePoint f, util::Duration) {
                   finished.push_back(f.sec());
                 });
  sched.run();
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_DOUBLE_EQ(finished[0], 0.501);  // 1 ms base + 0.5 s byte term
  EXPECT_DOUBLE_EQ(compute.stats().transfer_busy_sec, 0.501);
  EXPECT_DOUBLE_EQ(compute.stats().busy_sec(), 0.501);
  // Transfers are tier moves, not origin work.
  EXPECT_DOUBLE_EQ(compute.stats().fetch_parse_sec(), 0.0);
}

// ---------------------------------------------------------------------
// FleetConfig validation for the sharded surface

TEST(ShardedFleetConfig, ValidateRejectsShardNonsense) {
  FleetConfig cfg = sharded_config(2, 4);
  EXPECT_NO_THROW(cfg.validate());

  FleetConfig bad = cfg;
  bad.shards = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = cfg;
  bad.l2_capacity = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  // A crash needs a survivor: shards == 1 plus a crash plan is nonsense.
  bad = cfg;
  bad.shards = 1;
  bad.shard_faults = sim::FaultPlan::parse("crash=0.01,restart=0.05");
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.shards = 2;
  EXPECT_NO_THROW(bad.validate());
}

// ---------------------------------------------------------------------
// Sharded fleet: tiering, determinism, and the single-shard pin

TEST(ShardedFleet, SingleShardKeepsTheSingleProxySurface) {
  // shards == 1 must present §10's surface: no per-shard stats, an idle
  // L2 (even if a capacity was configured), and zero crash counters.
  FleetConfig cfg = sharded_config(1, 8);
  cfg.l2_capacity = util::mib(64);
  FleetMetrics m = run_fleet(test_corpus(), cfg);
  EXPECT_EQ(m.shards, 1);
  EXPECT_TRUE(m.l1_shards.empty());
  EXPECT_EQ(m.l2.hits + m.l2.misses, 0u);
  EXPECT_EQ(m.crash_handoffs, 0u);
  EXPECT_EQ(m.crash_killed_tasks, 0u);
  EXPECT_EQ(m.redo_bytes_total, 0);
  EXPECT_GT(m.store.hits + m.store.misses, 0u);
}

TEST(ShardedFleet, L2AbsorbsSiblingShardMisses) {
  // Splitting the fleet dilutes every L1 (fewer sessions warm each), but
  // the shared L2 turns the diluted misses into backplane transfers.
  FleetConfig one = sharded_config(1, 16);
  FleetConfig four = sharded_config(4, 16);
  FleetMetrics m1 = run_fleet(test_corpus(), one);
  FleetMetrics m4 = run_fleet(test_corpus(), four);

  ASSERT_EQ(m4.shards, 4);
  ASSERT_EQ(m4.l1_shards.size(), 4u);
  EXPECT_LT(m4.store.hit_rate(), m1.store.hit_rate());
  EXPECT_GT(m4.l2.hits, 0u);
  EXPECT_GT(m4.compute.transfer_busy_sec, 0.0);
  // The aggregate L1 stats are the plain per-shard sums.
  std::uint64_t hits = 0, misses = 0;
  for (const SharedObjectStore::Stats& s : m4.l1_shards) {
    hits += s.hits;
    misses += s.misses;
  }
  EXPECT_EQ(m4.store.hits, hits);
  EXPECT_EQ(m4.store.misses, misses);
  // Only L1 misses consult the L2, and each consultation resolves.
  EXPECT_EQ(m4.l2.hits + m4.l2.misses, misses);
}

TEST(ShardedFleet, Jobs4BitwiseIdenticalToJobs1AtFourShards) {
  FleetConfig cfg = sharded_config(4, 16);
  cfg.jobs = 1;
  FleetMetrics serial = run_fleet(test_corpus(), cfg);
  cfg.jobs = 4;
  FleetMetrics parallel = run_fleet(test_corpus(), cfg);
  expect_sharded_identical(serial, parallel);
  EXPECT_GT(serial.compute.transfer_busy_sec, 0.0);  // non-vacuous tiering
}

// ---------------------------------------------------------------------
// Crash-driven session handoff

TEST(ShardedFleet, CrashHandoffCompletesEverySessionDeterministically) {
  FleetConfig cfg = sharded_config(4, 24);
  // Crash in the middle of the arrival window, restart 50 ms later.
  cfg.shard_faults = sim::FaultPlan::parse("crash=0.024,restart=0.05,seed=9");

  int victim = ShardedFleet::crash_victim(cfg);
  EXPECT_GE(victim, 0);
  EXPECT_LT(victim, cfg.shards);

  cfg.jobs = 1;
  FleetMetrics m = run_fleet(test_corpus(), cfg);

  // Robustness headline: the crash sheds nobody — every admitted session
  // completes on a survivor.
  EXPECT_EQ(m.shed, 0);
  EXPECT_EQ(m.admitted, 24);
  EXPECT_GT(m.crash_handoffs, 0u);
  EXPECT_GT(m.crash_killed_tasks, 0u);
  EXPECT_GT(m.redo_sec_total, 0.0);
  EXPECT_GT(m.redo_bytes_total, 0);
  EXPECT_GT(m.recovery_sec_total, 0.0);
  EXPECT_GT(m.recovery_sec_max, 0.0);
  EXPECT_LE(m.recovery_sec_max, m.recovery_sec_total);

  // Per-client accounting is consistent with the fleet totals and is
  // stamped onto the session results for downstream analysis.
  std::uint64_t handoffs = 0;
  double recovery = 0.0, redo_sec = 0.0;
  util::Bytes redo_bytes = 0;
  for (const FleetClientResult& r : m.clients) {
    handoffs += static_cast<std::uint64_t>(r.handoffs);
    recovery += r.recovery.sec();
    redo_sec += r.redo_sec;
    redo_bytes += r.redo_bytes;
    if (r.handoffs > 0) {
      EXPECT_GT(r.recovery.sec(), 0.0);
      EXPECT_EQ(r.session.shard_handoffs,
                static_cast<std::uint32_t>(r.handoffs));
      EXPECT_EQ(r.session.handoff_recovery.sec(), r.recovery.sec());
      EXPECT_EQ(r.session.redo_service_sec, r.redo_sec);
      EXPECT_EQ(r.session.redo_bytes, r.redo_bytes);
    } else {
      EXPECT_EQ(r.recovery.sec(), 0.0);
      EXPECT_EQ(r.redo_bytes, 0);
    }
  }
  EXPECT_EQ(handoffs, m.crash_handoffs);
  EXPECT_DOUBLE_EQ(recovery, m.recovery_sec_total);
  EXPECT_DOUBLE_EQ(redo_sec, m.redo_sec_total);
  EXPECT_EQ(redo_bytes, m.redo_bytes_total);

  // The whole crashed run replays bitwise across --jobs.
  cfg.jobs = 4;
  FleetMetrics parallel = run_fleet(test_corpus(), cfg);
  expect_sharded_identical(m, parallel);
}

TEST(ShardedFleet, RestartedVictimRejoinsWithAColdL1) {
  // Drive ShardedFleet directly so the store tiers are observable: every
  // arrival lands before the restart, so after the crash clears the
  // victim's L1 nothing repopulates it — the snapshot must show it empty
  // while survivors stay warm. Heavy fetch costs keep the victim's work
  // in flight at the crash instant.
  FleetConfig cfg = sharded_config(4, 16);
  cfg.compute.costs.fetch_base = util::Duration::millis(10);
  cfg.shard_faults = sim::FaultPlan::parse("crash=0.02,restart=0.05,seed=9");
  cfg.validate();

  const auto& corpus = test_corpus();
  const int K = 16;
  std::vector<double> arrival_sec;
  std::vector<std::uint32_t> page_index;
  for (int i = 0; i < K; ++i) {
    arrival_sec.push_back(0.001 * i);
    page_index.push_back(static_cast<std::uint32_t>(i) %
                         static_cast<std::uint32_t>(corpus.size()));
  }
  MacroColumns cols;
  cols.arrival_sec = arrival_sec;
  cols.page_index = page_index;

  sim::Scheduler sched;
  ShardedFleet fleet(sched, cfg);
  MacroOut out(static_cast<std::size_t>(K));
  fleet.run(corpus, cols, out);

  int victim = ShardedFleet::crash_victim(cfg);
  ShardSnapshot snap = fleet.snapshot();
  ASSERT_EQ(snap.l1.size(), 4u);
  EXPECT_EQ(snap.l1[static_cast<std::size_t>(victim)].entries(), 0u);
  std::size_t survivor_entries = 0;
  for (int s = 0; s < 4; ++s) {
    if (s != victim) {
      survivor_entries += snap.l1[static_cast<std::size_t>(s)].entries();
    }
  }
  EXPECT_GT(survivor_entries, 0u);
  // The L2 kept the victim's publications (request-time warming): the
  // crash cost an L1, not the tier's knowledge.
  EXPECT_GT(snap.l2.entries(), 0u);
  for (int i = 0; i < K; ++i) {
    EXPECT_EQ(out.shed[static_cast<std::size_t>(i)], 0);
    EXPECT_GT(out.done_sec[static_cast<std::size_t>(i)], 0.0);
  }
  ShardedFleetStats st = fleet.stats();
  EXPECT_GT(st.crash_handoffs, 0u);
  EXPECT_EQ(st.crash_killed_tasks, st.compute.crash_killed);
}

// ---------------------------------------------------------------------
// Streaming mode composition (sketches, epoch planning, counters)

TEST(ShardedStreaming, EpochParallelShardedIdenticalAcrossJobs) {
  // Sparse arrivals, no crash: the planner may still split a sharded
  // fleet, and any --jobs value must fold to bitwise-equal metrics,
  // including the new tier stats and exact fault counters.
  FleetConfig cfg = sharded_config(4, 12);
  cfg.mean_interarrival = util::Duration::seconds(5);
  cfg.streaming = true;
  cfg.epoch_min_sessions = 2;

  cfg.jobs = 1;
  FleetMetrics serial = run_fleet(test_corpus(), cfg);
  cfg.jobs = 4;
  FleetMetrics parallel = run_fleet(test_corpus(), cfg);

  EXPECT_GT(serial.epochs, 1);
  EXPECT_TRUE(serial.epoch_parallel);
  EXPECT_EQ(serial.epoch_degrade_reason, "");
  EXPECT_TRUE(serial.streaming);
  EXPECT_TRUE(serial.clients.empty());
  EXPECT_EQ(serial.olt_stats, parallel.olt_stats);
  EXPECT_EQ(serial.wait_stats, parallel.wait_stats);
  EXPECT_EQ(serial.recovery_stats, parallel.recovery_stats);
  EXPECT_EQ(serial.store.hits, parallel.store.hits);
  EXPECT_EQ(serial.store.misses, parallel.store.misses);
  ASSERT_EQ(serial.l1_shards.size(), 4u);
  ASSERT_EQ(parallel.l1_shards.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(serial.l1_shards[s].hits, parallel.l1_shards[s].hits);
    EXPECT_EQ(serial.l1_shards[s].misses, parallel.l1_shards[s].misses);
  }
  EXPECT_EQ(serial.l2.hits, parallel.l2.hits);
  EXPECT_EQ(serial.l2.misses, parallel.l2.misses);
  EXPECT_EQ(serial.compute.transfer_busy_sec,
            parallel.compute.transfer_busy_sec);
  EXPECT_EQ(serial.fault_retransmits, parallel.fault_retransmits);
  EXPECT_EQ(serial.fault_drops, parallel.fault_drops);
  EXPECT_EQ(serial.fault_deferrals, parallel.fault_deferrals);
  EXPECT_EQ(serial.direct_fetches, parallel.direct_fetches);
  EXPECT_EQ(serial.degraded_sessions, parallel.degraded_sessions);
}

TEST(ShardedStreaming, CrashDegradesToSerialAndMatchesExactCounters) {
  // A crash couples every session to the crash instant, so the planner
  // must refuse to split — and streaming totals must equal exact mode's
  // (satellite: fault/degradation counters are exact sums in both modes).
  FleetConfig cfg = sharded_config(4, 24);
  cfg.shard_faults = sim::FaultPlan::parse("crash=0.024,restart=0.05,seed=9");

  FleetMetrics exact = run_fleet(test_corpus(), cfg);
  cfg.streaming = true;
  cfg.epoch_min_sessions = 2;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);

  EXPECT_EQ(stream.epochs, 1);
  EXPECT_FALSE(stream.epoch_parallel);
  EXPECT_NE(stream.epoch_degrade_reason.find("crash"), std::string::npos);

  EXPECT_EQ(stream.admitted, exact.admitted);
  EXPECT_EQ(stream.shed, exact.shed);
  EXPECT_EQ(stream.crash_handoffs, exact.crash_handoffs);
  EXPECT_EQ(stream.crash_killed_tasks, exact.crash_killed_tasks);
  EXPECT_EQ(stream.redo_bytes_total, exact.redo_bytes_total);
  EXPECT_DOUBLE_EQ(stream.redo_sec_total, exact.redo_sec_total);
  EXPECT_DOUBLE_EQ(stream.recovery_sec_total, exact.recovery_sec_total);
  EXPECT_DOUBLE_EQ(stream.recovery_sec_max, exact.recovery_sec_max);
  EXPECT_EQ(stream.store.hits, exact.store.hits);
  EXPECT_EQ(stream.store.misses, exact.store.misses);
  EXPECT_EQ(stream.l2.hits, exact.l2.hits);
  EXPECT_EQ(stream.l2.misses, exact.l2.misses);
  EXPECT_EQ(stream.fault_retransmits, exact.fault_retransmits);
  EXPECT_EQ(stream.fault_drops, exact.fault_drops);
  EXPECT_EQ(stream.fault_deferrals, exact.fault_deferrals);
  EXPECT_EQ(stream.direct_fetches, exact.direct_fetches);
  EXPECT_EQ(stream.degraded_sessions, exact.degraded_sessions);

  // The recovery sketch holds exactly the migrated sessions.
  EXPECT_EQ(stream.recovery_stats.count(), exact.crash_handoffs);
  EXPECT_GT(stream.recovery_stats.max(), 0.0);
}

TEST(ShardedStreaming, FaultCountersAreExactSumsInBothModes) {
  // Satellite 1 under an actual session-layer fault plan: the integer
  // counters come from summing RunResult fields, never from sketches, so
  // exact and streaming modes agree to the bit.
  FleetConfig cfg = sharded_config(2, 8);
  cfg.base.testbed.faults =
      sim::FaultPlan::parse("loss=0.05,blackout=1+0.5,seed=3");

  FleetMetrics exact = run_fleet(test_corpus(), cfg);
  cfg.streaming = true;
  cfg.epoch_min_sessions = 2;
  FleetMetrics stream = run_fleet(test_corpus(), cfg);

  // The blackout plan must actually bite somewhere, or this test is
  // vacuous.
  EXPECT_GT(exact.fault_deferrals + exact.fault_drops +
                exact.fault_retransmits + exact.degraded_sessions +
                exact.direct_fetches,
            0u);
  EXPECT_EQ(stream.fault_retransmits, exact.fault_retransmits);
  EXPECT_EQ(stream.fault_drops, exact.fault_drops);
  EXPECT_EQ(stream.fault_deferrals, exact.fault_deferrals);
  EXPECT_EQ(stream.direct_fetches, exact.direct_fetches);
  EXPECT_EQ(stream.degraded_sessions, exact.degraded_sessions);
}

// ---------------------------------------------------------------------
// CLI parsing (bench/common): --l2-cost's reject-garbage contract

TEST(ShardCli, ParseNonnegDoubleStrict) {
  EXPECT_DOUBLE_EQ(bench::parse_nonneg_double("--l2-cost", "0"), 0.0);
  EXPECT_DOUBLE_EQ(bench::parse_nonneg_double("--l2-cost", "4.5"), 4.5);
  EXPECT_DOUBLE_EQ(bench::parse_nonneg_double("--l2-cost", ".5"), 0.5);
  EXPECT_DOUBLE_EQ(bench::parse_nonneg_double("--l2-cost", "2e1"), 20.0);
  for (const char* bad : {"", "-1", "-0", "+2", "inf", "nan", "abc", "4.5x",
                          " 1", "0x10", "1..2"}) {
    SCOPED_TRACE(std::string("input '") + bad + "'");
    EXPECT_THROW(bench::parse_nonneg_double("--l2-cost", bad),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace parcel::fleet
