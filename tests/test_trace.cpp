#include <gtest/gtest.h>

#include "trace/packet_trace.hpp"
#include "trace/trace_analyzer.hpp"

namespace parcel::trace {
namespace {

using util::Bytes;
using util::Duration;
using util::TimePoint;

PacketRecord rec(double t, Direction dir, PacketKind kind, Bytes bytes,
                 std::uint32_t conn, std::uint32_t obj) {
  return PacketRecord{TimePoint::at_seconds(t), dir, kind, bytes, conn, obj};
}

TEST(PacketTrace, KeepsRecordsSortedEvenWithInversions) {
  PacketTrace trace;
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 4, 1, 0));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 20, 1, 2));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.first_time().sec(), 1.0);
  EXPECT_DOUBLE_EQ(trace.last_time().sec(), 3.0);
}

TEST(PacketTrace, ByteAndDirectionAccounting) {
  PacketTrace trace;
  trace.record(rec(0.1, Direction::kUplink, PacketKind::kData, 100, 1, 0));
  trace.record(rec(0.2, Direction::kDownlink, PacketKind::kData, 900, 1, 1));
  EXPECT_EQ(trace.total_bytes(), 1000);
  EXPECT_EQ(trace.uplink_bytes(), 100);
  EXPECT_EQ(trace.downlink_bytes(), 900);
}

TEST(PacketTrace, FirstSynAndObjectTimes) {
  PacketTrace trace;
  trace.record(rec(0.5, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 10, 1, 7));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 9));
  ASSERT_TRUE(trace.first_syn_time().has_value());
  EXPECT_DOUBLE_EQ(trace.first_syn_time()->sec(), 0.5);
  std::uint32_t objs[] = {7};
  auto last = trace.last_time_of_objects(objs);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->sec(), 1.0);
  std::uint32_t missing[] = {42};
  EXPECT_FALSE(trace.last_time_of_objects(missing).has_value());
}

TEST(PacketTrace, ConnectionCountAndTruncate) {
  PacketTrace trace;
  trace.record(rec(1, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2, Direction::kUplink, PacketKind::kSyn, 40, 2, 0));
  trace.record(rec(65, Direction::kDownlink, PacketKind::kData, 10, 3, 1));
  EXPECT_EQ(trace.connection_count(), 3u);
  trace.truncate_after(TimePoint::at_seconds(60));
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.connection_count(), 2u);
}

TEST(PacketTrace, SerializeRoundTrip) {
  PacketTrace trace;
  trace.record(rec(0.123456, Direction::kUplink, PacketKind::kSyn, 40, 3, 0));
  trace.record(rec(1.5, Direction::kDownlink, PacketKind::kData, 1448, 3, 9));
  PacketTrace copy = PacketTrace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.records()[1].bytes, 1448);
  EXPECT_EQ(copy.records()[1].object_id, 9u);
  EXPECT_EQ(copy.records()[0].kind, PacketKind::kSyn);
  EXPECT_THROW(PacketTrace::deserialize("garbage line"),
               std::invalid_argument);
}

TEST(PacketTrace, EmptyTraceEdgeCases) {
  PacketTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_THROW((void)trace.first_time(), std::logic_error);
  EXPECT_FALSE(trace.first_syn_time().has_value());
}

TEST(TraceAnalyzer, OltAndTltFromFirstSyn) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 10, 1, 2));
  trace.record(rec(5.0, Direction::kDownlink, PacketKind::kData, 10, 1, 3));
  std::uint32_t onload[] = {1, 2};
  auto m = TraceAnalyzer::latency_metrics(trace, onload);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->olt.sec(), 2.0);  // 3.0 - 1.0
  EXPECT_DOUBLE_EQ(m->tlt.sec(), 4.0);  // 5.0 - 1.0
}

TEST(TraceAnalyzer, OltClampedToTlt) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  std::uint32_t onload[] = {1};
  auto m = TraceAnalyzer::latency_metrics(trace, onload);
  ASSERT_TRUE(m.has_value());
  EXPECT_LE(m->olt, m->tlt);
}

TEST(TraceAnalyzer, NoSynMeansNoMetrics) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  std::uint32_t onload[] = {1};
  EXPECT_FALSE(TraceAnalyzer::latency_metrics(trace, onload).has_value());
}

TEST(TraceAnalyzer, GapCounting) {
  PacketTrace trace;
  for (double t : {0.0, 0.1, 1.5, 1.6, 4.0}) {
    trace.record(rec(t, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  }
  EXPECT_EQ(TraceAnalyzer::count_gaps_longer_than(trace,
                                                  Duration::seconds(1.0)),
            2u);
}

// ---- SoA layout regression suite (DESIGN.md §11) -----------------------
// The trace stores one column per PacketRecord field; these tests pin the
// properties the layout change must not move: serialized bytes, sorted
// insertion semantics, truncate behaviour over both channels, and the
// records()/fault_events() views matching the raw columns row for row.

TEST(PacketTraceSoA, FaultFreeSerializationPinnedByteForByte) {
  // A fault-free trace must serialize to exactly the pre-SoA text — the
  // replay store's on-disk format is part of the public surface.
  PacketTrace trace;
  trace.record(rec(0.123456, Direction::kUplink, PacketKind::kSyn, 40, 3, 0));
  trace.record(rec(1.5, Direction::kDownlink, PacketKind::kData, 1448, 3, 9));
  EXPECT_EQ(trace.serialize(),
            "0.123456 0 0 40 3 0\n"
            "1.500000 1 1 1448 3 9\n");
}

TEST(PacketTraceSoA, RoundTripWithFaultEvents) {
  PacketTrace trace;
  trace.record(rec(0.5, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 1448, 1, 7));
  trace.record_fault(FaultEvent{TimePoint::at_seconds(0.75),
                                FaultKind::kBlackout, 512, 1});
  trace.record_fault(FaultEvent{TimePoint::at_seconds(0.9),
                                FaultKind::kLoss, 1448, 2});
  PacketTrace copy = PacketTrace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), 2u);
  ASSERT_EQ(copy.fault_events().size(), 2u);
  EXPECT_EQ(copy.fault_events()[0].kind, FaultKind::kBlackout);
  EXPECT_EQ(copy.fault_events()[0].bytes, 512);
  EXPECT_EQ(copy.fault_events()[1].conn_id, 2u);
  EXPECT_EQ(copy.serialize(), trace.serialize());
}

TEST(PacketTraceSoA, TruncateDropsSuffixOfBothChannels) {
  PacketTrace trace;
  trace.record(rec(1, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  trace.record(rec(61, Direction::kDownlink, PacketKind::kData, 10, 1, 2));
  trace.record_fault(
      FaultEvent{TimePoint::at_seconds(1.5), FaultKind::kLoss, 10, 1});
  trace.record_fault(
      FaultEvent{TimePoint::at_seconds(62), FaultKind::kBlackout, 10, 1});
  trace.truncate_after(TimePoint::at_seconds(60));
  EXPECT_EQ(trace.size(), 2u);
  ASSERT_EQ(trace.fault_events().size(), 1u);
  EXPECT_EQ(trace.fault_events()[0].kind, FaultKind::kLoss);
  // Cutoff exactly on a record keeps it (t <= cutoff semantics).
  trace.truncate_after(TimePoint::at_seconds(2));
  EXPECT_EQ(trace.size(), 2u);
}

TEST(PacketTraceSoA, ColumnsMatchRecordViewRowForRow) {
  PacketTrace trace;
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 4, 1));
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 4, 3, 0));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kAck, 0, 4, 2));
  auto records = trace.records();
  ASSERT_EQ(records.size(), trace.times().size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    PacketRecord r = records[i];
    EXPECT_EQ(r.t, trace.times()[i]);
    EXPECT_EQ(r.dir, trace.directions()[i]);
    EXPECT_EQ(r.kind, trace.kinds()[i]);
    EXPECT_EQ(r.bytes, trace.sizes()[i]);
    EXPECT_EQ(r.conn_id, trace.conn_ids()[i]);
    EXPECT_EQ(r.object_id, trace.object_ids()[i]);
  }
  // Columns are sorted by time regardless of insertion order.
  EXPECT_DOUBLE_EQ(trace.times().front().sec(), 1.0);
  EXPECT_DOUBLE_EQ(trace.times().back().sec(), 3.0);
}

TEST(PacketTraceSoA, ViewIteratorsSupportRandomAccessAndRangeFor) {
  PacketTrace trace;
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    trace.record(rec(t, Direction::kDownlink, PacketKind::kData, 100, 1, 1));
  }
  auto records = trace.records();
  auto it = records.begin();
  EXPECT_EQ(records.end() - it, 4);
  EXPECT_DOUBLE_EQ((*(it + 2)).t.sec(), 2.0);
  EXPECT_DOUBLE_EQ(it[3].t.sec(), 4.0);
  EXPECT_DOUBLE_EQ(records.front().t.sec(), 0.5);
  EXPECT_DOUBLE_EQ(records.back().t.sec(), 4.0);
  double sum = 0;
  for (const auto& r : records) sum += r.t.sec();
  EXPECT_DOUBLE_EQ(sum, 7.5);
}

TEST(PacketTraceSoA, EqualTimestampInversionInsertsAfterEqualRecords) {
  // Matches the pre-SoA upper_bound semantics: a late record carrying an
  // already-seen timestamp lands after every record with that timestamp.
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 1, 1, 1));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 2, 1, 2));
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 3, 1, 3));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.records()[0].object_id, 1u);
  EXPECT_EQ(trace.records()[1].object_id, 3u);  // after the equal record
  EXPECT_EQ(trace.records()[2].object_id, 2u);
}

TEST(PacketTraceSoA, CopyAndClearPreserveBothChannels) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record_fault(
      FaultEvent{TimePoint::at_seconds(2), FaultKind::kDegraded, 0, 0});
  PacketTrace copy = trace;
  EXPECT_EQ(copy.serialize(), trace.serialize());
  EXPECT_EQ(copy.fault_count(FaultKind::kDegraded), 1u);
  copy.clear();
  EXPECT_TRUE(copy.empty());
  EXPECT_TRUE(copy.fault_events().empty());
  EXPECT_EQ(trace.size(), 1u);  // the original is untouched
}

TEST(TraceAnalyzer, CumulativeDownlinkBytes) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 100, 1, 1));
  trace.record(rec(2.0, Direction::kUplink, PacketKind::kData, 50, 1, 0));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 200, 1, 2));
  EXPECT_EQ(TraceAnalyzer::downlink_bytes_before(trace,
                                                 TimePoint::at_seconds(2.5)),
            100);
  EXPECT_EQ(TraceAnalyzer::downlink_bytes_before(trace,
                                                 TimePoint::at_seconds(9)),
            300);
}

}  // namespace
}  // namespace parcel::trace
