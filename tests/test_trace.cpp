#include <gtest/gtest.h>

#include "trace/packet_trace.hpp"
#include "trace/trace_analyzer.hpp"

namespace parcel::trace {
namespace {

using util::Bytes;
using util::Duration;
using util::TimePoint;

PacketRecord rec(double t, Direction dir, PacketKind kind, Bytes bytes,
                 std::uint32_t conn, std::uint32_t obj) {
  return PacketRecord{TimePoint::at_seconds(t), dir, kind, bytes, conn, obj};
}

TEST(PacketTrace, KeepsRecordsSortedEvenWithInversions) {
  PacketTrace trace;
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 4, 1, 0));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 20, 1, 2));
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.first_time().sec(), 1.0);
  EXPECT_DOUBLE_EQ(trace.last_time().sec(), 3.0);
}

TEST(PacketTrace, ByteAndDirectionAccounting) {
  PacketTrace trace;
  trace.record(rec(0.1, Direction::kUplink, PacketKind::kData, 100, 1, 0));
  trace.record(rec(0.2, Direction::kDownlink, PacketKind::kData, 900, 1, 1));
  EXPECT_EQ(trace.total_bytes(), 1000);
  EXPECT_EQ(trace.uplink_bytes(), 100);
  EXPECT_EQ(trace.downlink_bytes(), 900);
}

TEST(PacketTrace, FirstSynAndObjectTimes) {
  PacketTrace trace;
  trace.record(rec(0.5, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 10, 1, 7));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 9));
  ASSERT_TRUE(trace.first_syn_time().has_value());
  EXPECT_DOUBLE_EQ(trace.first_syn_time()->sec(), 0.5);
  std::uint32_t objs[] = {7};
  auto last = trace.last_time_of_objects(objs);
  ASSERT_TRUE(last.has_value());
  EXPECT_DOUBLE_EQ(last->sec(), 1.0);
  std::uint32_t missing[] = {42};
  EXPECT_FALSE(trace.last_time_of_objects(missing).has_value());
}

TEST(PacketTrace, ConnectionCountAndTruncate) {
  PacketTrace trace;
  trace.record(rec(1, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2, Direction::kUplink, PacketKind::kSyn, 40, 2, 0));
  trace.record(rec(65, Direction::kDownlink, PacketKind::kData, 10, 3, 1));
  EXPECT_EQ(trace.connection_count(), 3u);
  trace.truncate_after(TimePoint::at_seconds(60));
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.connection_count(), 2u);
}

TEST(PacketTrace, SerializeRoundTrip) {
  PacketTrace trace;
  trace.record(rec(0.123456, Direction::kUplink, PacketKind::kSyn, 40, 3, 0));
  trace.record(rec(1.5, Direction::kDownlink, PacketKind::kData, 1448, 3, 9));
  PacketTrace copy = PacketTrace::deserialize(trace.serialize());
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.records()[1].bytes, 1448);
  EXPECT_EQ(copy.records()[1].object_id, 9u);
  EXPECT_EQ(copy.records()[0].kind, PacketKind::kSyn);
  EXPECT_THROW(PacketTrace::deserialize("garbage line"),
               std::invalid_argument);
}

TEST(PacketTrace, EmptyTraceEdgeCases) {
  PacketTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_THROW((void)trace.first_time(), std::logic_error);
  EXPECT_FALSE(trace.first_syn_time().has_value());
}

TEST(TraceAnalyzer, OltAndTltFromFirstSyn) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 10, 1, 2));
  trace.record(rec(5.0, Direction::kDownlink, PacketKind::kData, 10, 1, 3));
  std::uint32_t onload[] = {1, 2};
  auto m = TraceAnalyzer::latency_metrics(trace, onload);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->olt.sec(), 2.0);  // 3.0 - 1.0
  EXPECT_DOUBLE_EQ(m->tlt.sec(), 4.0);  // 5.0 - 1.0
}

TEST(TraceAnalyzer, OltClampedToTlt) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kUplink, PacketKind::kSyn, 40, 1, 0));
  trace.record(rec(2.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  std::uint32_t onload[] = {1};
  auto m = TraceAnalyzer::latency_metrics(trace, onload);
  ASSERT_TRUE(m.has_value());
  EXPECT_LE(m->olt, m->tlt);
}

TEST(TraceAnalyzer, NoSynMeansNoMetrics) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  std::uint32_t onload[] = {1};
  EXPECT_FALSE(TraceAnalyzer::latency_metrics(trace, onload).has_value());
}

TEST(TraceAnalyzer, GapCounting) {
  PacketTrace trace;
  for (double t : {0.0, 0.1, 1.5, 1.6, 4.0}) {
    trace.record(rec(t, Direction::kDownlink, PacketKind::kData, 10, 1, 1));
  }
  EXPECT_EQ(TraceAnalyzer::count_gaps_longer_than(trace,
                                                  Duration::seconds(1.0)),
            2u);
}

TEST(TraceAnalyzer, CumulativeDownlinkBytes) {
  PacketTrace trace;
  trace.record(rec(1.0, Direction::kDownlink, PacketKind::kData, 100, 1, 1));
  trace.record(rec(2.0, Direction::kUplink, PacketKind::kData, 50, 1, 0));
  trace.record(rec(3.0, Direction::kDownlink, PacketKind::kData, 200, 1, 2));
  EXPECT_EQ(TraceAnalyzer::downlink_bytes_before(trace,
                                                 TimePoint::at_seconds(2.5)),
            100);
  EXPECT_EQ(TraceAnalyzer::downlink_bytes_before(trace,
                                                 TimePoint::at_seconds(9)),
            300);
}

}  // namespace
}  // namespace parcel::trace
