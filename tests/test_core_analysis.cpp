#include <gtest/gtest.h>

#include "core/analysis.hpp"

namespace parcel::core {
namespace {

TEST(AnalyticalModel, ReproducesPaperWorkedExample) {
  // §6: "for a 2MB page, with download speed of 6Mbps, and alpha = 0.74
  // ... the optimal bundle size is approximately 0.9MB."
  ModelParams params;
  params.download_bytes_per_sec = 6e6 / 8.0;
  params.onload_bytes = 2 * 1000 * 1000;
  AnalyticalModel model(params);
  EXPECT_NEAR(model.alpha(), 0.74, 0.01);
  EXPECT_NEAR(static_cast<double>(model.optimal_bundle_bytes()), 0.9e6,
              0.06e6);
}

TEST(AnalyticalModel, OltDecreasesWithBundleCount) {
  AnalyticalModel model{ModelParams{}};
  double prev = model.onload_time(1).sec();
  for (double n = 2; n <= 64; n *= 2) {
    double cur = model.onload_time(n).sec();
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  // OLT(n) -> Tp as n -> inf.
  EXPECT_NEAR(model.onload_time(1e9).sec(),
              model.params().proxy_onload.sec(), 1e-3);
}

TEST(AnalyticalModel, EnergyMinimizedNearOptimalCount) {
  ModelParams params;
  params.proxy_onload = util::Duration::seconds(8.0);  // keep dl(n) positive
  AnalyticalModel model(params);
  double n_star = model.optimal_bundle_count();
  ASSERT_GT(n_star, 1.0);
  double e_star = model.energy(n_star).j();
  EXPECT_LT(e_star, model.energy(n_star * 2.2).j());
  EXPECT_LT(e_star, model.energy(std::max(1.0, n_star / 2.2)).j());
}

TEST(AnalyticalModel, OptimalBundleGrowsWithSpeedAndSize) {
  ModelParams slow;
  slow.download_bytes_per_sec = 2e6 / 8.0;
  ModelParams fast = slow;
  fast.download_bytes_per_sec = 8e6 / 8.0;
  EXPECT_LT(AnalyticalModel(slow).optimal_bundle_bytes(),
            AnalyticalModel(fast).optimal_bundle_bytes());

  ModelParams small;
  small.onload_bytes = 500'000;
  ModelParams big = small;
  big.onload_bytes = 4'000'000;
  EXPECT_LT(AnalyticalModel(small).optimal_bundle_bytes(),
            AnalyticalModel(big).optimal_bundle_bytes());
}

TEST(AnalyticalModel, LdrxTimeClampedAtZero) {
  ModelParams params;
  params.proxy_onload = util::Duration::seconds(0.1);
  AnalyticalModel model(params);
  EXPECT_GE(model.ldrx_time(50).sec(), 0.0);
}

TEST(AnalyticalModel, RejectsBadParams) {
  ModelParams params;
  params.onload_bytes = 0;
  EXPECT_THROW(AnalyticalModel{params}, std::invalid_argument);
}

}  // namespace
}  // namespace parcel::core
