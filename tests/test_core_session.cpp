#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/session.hpp"
#include "core/testbed.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"

namespace parcel::core {
namespace {

web::WebPage small_page(std::uint64_t seed) {
  web::PageSpec spec;
  spec.site = "tiny.example.com";
  spec.object_count = 24;
  spec.total_bytes = util::kib(300);
  spec.seed = seed;
  return web::PageGenerator::generate(spec);
}

struct SessionFixture : ::testing::Test {
  web::WebPage live = small_page(7);
  replay::ReplayStore store;
  const web::WebPage* page = nullptr;

  void SetUp() override {
    store.record(live);
    page = store.find(live.main_url().str());
    ASSERT_NE(page, nullptr);
  }
};

TEST_F(SessionFixture, FullLoadCompletesWithSuppression) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*page);
  ParcelSessionConfig cfg;
  ParcelSession session(testbed.network(), cfg, util::Rng(1));

  bool onload = false, complete = false;
  ParcelSession::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint) { onload = true; };
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  session.load(page->main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));

  EXPECT_TRUE(onload);
  EXPECT_TRUE(complete);
  EXPECT_FALSE(session.used_direct_path());
  // Every object the client engine needed was answered from pushed
  // bundles — zero fallbacks on a replayed (normalized) page.
  EXPECT_EQ(session.client_fetcher().fallback_requests(), 0u);
  EXPECT_EQ(session.client_engine().ledger().count(), page->object_count());
  EXPECT_GT(session.bundles_delivered(), 0u);
  EXPECT_GT(session.bundle_bytes_delivered(),
            static_cast<util::Bytes>(page->total_bytes()));
  // Exactly one TCP connection crossed the radio.
  EXPECT_EQ(testbed.client_trace().connection_count(), 1u);
  // Proxy identified all objects and declared completion.
  EXPECT_TRUE(session.proxy().completion_declared());
  EXPECT_EQ(session.proxy().engine().ledger().count(), page->object_count());
  EXPECT_TRUE(session.client_fetcher().completion_received());
}

TEST_F(SessionFixture, LiveModeRandomizedUrlsTriggerFallback) {
  // Use an un-normalized page containing fetchRand: the proxy's and the
  // client's random draws diverge, exercising the §4.5 missing-object
  // path. Search seeds for a draw with a randomized fetch.
  std::unique_ptr<web::WebPage> rand_page;
  for (std::uint64_t seed = 1; seed < 64 && !rand_page; ++seed) {
    auto candidate = std::make_unique<web::WebPage>(small_page(seed));
    for (const web::WebObject* obj : candidate->objects()) {
      if (obj->content &&
          obj->content->find("fetchRand(") != std::string::npos) {
        rand_page = std::move(candidate);
        break;
      }
    }
  }
  ASSERT_NE(rand_page, nullptr) << "no seed produced a randomized fetch";

  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*rand_page);
  ParcelSessionConfig cfg;
  ParcelSession session(testbed.network(), cfg, util::Rng(2));
  bool complete = false;
  ParcelSession::Callbacks cbs;
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  session.load(rand_page->main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(complete);
  EXPECT_GT(session.client_fetcher().fallback_requests(), 0u);
  EXPECT_GT(session.proxy().fallback_serves(), 0u);
}

TEST_F(SessionFixture, HttpsBypassesProxy) {
  Testbed testbed{TestbedConfig{}};
  // Host an https-addressed variant of the page.
  web::WebPage https_page(net::Url::parse("https://tiny.example.com/"));
  for (const web::WebObject* obj : page->objects()) {
    web::WebObject copy = *obj;
    copy.url = net::Url::parse(
        "https://" + obj->url.host() + obj->url.path() +
        (obj->url.query().empty() ? "" : "?" + obj->url.query()));
    https_page.add(std::move(copy));
  }
  testbed.host_page(https_page);
  ParcelSessionConfig cfg;
  ParcelSession session(testbed.network(), cfg, util::Rng(3));
  bool complete = false;
  ParcelSession::Callbacks cbs;
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  session.load(https_page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(complete);
  EXPECT_TRUE(session.used_direct_path());
  EXPECT_FALSE(session.proxy().started());
  // Direct path behaves like DIR: many connections over the radio.
  EXPECT_GT(testbed.client_trace().connection_count(), 1u);
}

TEST_F(SessionFixture, PostRelaysThroughProxy) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*page);
  ParcelSessionConfig cfg;
  ParcelSession session(testbed.network(), cfg, util::Rng(4));
  session.load(page->main_url(), {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(30));

  bool post_done = false;
  session.post(net::Url::parse("http://tiny.example.com/submit"), 2048,
               [&] { post_done = true; });
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  EXPECT_TRUE(post_done);
}

TEST_F(SessionFixture, ClicksStayLocalAfterLoad) {
  web::PageSpec spec = web::PageGenerator::interactive_spec(5);
  spec.object_count = 40;
  spec.total_bytes = util::kib(600);
  web::WebPage shop = web::PageGenerator::generate(spec);
  replay::ReplayStore shop_store;
  shop_store.record(shop);
  const web::WebPage* snapshot = shop_store.find(shop.main_url().str());

  Testbed testbed{TestbedConfig{}};
  testbed.host_page(*snapshot);
  ParcelSessionConfig cfg;
  ParcelSession session(testbed.network(), cfg, util::Rng(5));
  session.load(snapshot->main_url(), {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));

  std::size_t trace_before = testbed.client_trace().size();
  bool clicked = false;
  session.click(0, [&] { clicked = true; });
  testbed.scheduler().run_until(util::TimePoint::at_seconds(120));
  EXPECT_TRUE(clicked);
  // Local JS execution, cached image: nothing crossed the radio.
  EXPECT_EQ(testbed.client_trace().size(), trace_before);
}

}  // namespace
}  // namespace parcel::core
