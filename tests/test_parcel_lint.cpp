// Tests for tools/parcel-lint: every rule has an accepting and a
// violating fixture under tests/lint_fixtures/, the suppression grammar
// is honoured, unknown rule ids are rejected, and the CLI exit codes
// (0 clean / 1 findings / 2 config or suppression error) hold.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"

namespace parcel::lint {
namespace {

const std::string kFixtures = PARCEL_LINT_FIXTURE_DIR;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lint one fixture with the default (everything-on, unscoped) config.
FileReport lint_fixture(const std::string& name,
                        const std::string* companion = nullptr) {
  Config cfg;
  return lint_source(name, slurp(kFixtures + "/" + name), cfg, companion);
}

std::multiset<std::string> rules_of(const FileReport& rep) {
  std::multiset<std::string> out;
  for (const Finding& f : rep.findings) out.insert(f.rule);
  return out;
}

int cli(const std::vector<std::string>& args, std::string* out_text = nullptr) {
  std::ostringstream out, err;
  int rc = run_cli(args, out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return rc;
}

// --- per-rule fixtures -----------------------------------------------------

TEST(ParcelLint, NondetRandomBadAndOk) {
  FileReport bad = lint_fixture("nondet_random_bad.cpp");
  EXPECT_EQ(rules_of(bad).count("nondet-random"), 3u);  // device, srand, rand
  FileReport ok = lint_fixture("nondet_random_ok.cpp");
  EXPECT_TRUE(ok.findings.empty()) << ok.findings[0].message;
}

TEST(ParcelLint, NondetTimeBadAndOk) {
  FileReport bad = lint_fixture("nondet_time_bad.cpp");
  // steady_clock, system_clock, high_resolution_clock, time(), clock()
  EXPECT_EQ(rules_of(bad).count("nondet-time"), 5u);
  FileReport ok = lint_fixture("nondet_time_ok.cpp");
  EXPECT_TRUE(ok.findings.empty()) << ok.findings[0].message;
}

TEST(ParcelLint, NondetGetenvBadAndExemptedOk) {
  FileReport bad = lint_fixture("nondet_getenv_bad.cpp");
  EXPECT_EQ(rules_of(bad).count("nondet-getenv"), 1u);

  // The same construct under an exempted path prefix is clean.
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_config("exempt nondet-getenv = util_ok\n", cfg, error))
      << error;
  FileReport ok = lint_source("util_ok/getenv_ok.cpp",
                              slurp(kFixtures + "/util_ok/getenv_ok.cpp"),
                              cfg, nullptr);
  EXPECT_TRUE(ok.findings.empty());
}

TEST(ParcelLint, UnorderedIterBadAndOk) {
  FileReport bad = lint_fixture("unordered_iter_bad.cpp");
  // range-for over set, range-for via alias, explicit begin()
  EXPECT_EQ(rules_of(bad).count("unordered-iter"), 3u);
  FileReport ok = lint_fixture("unordered_iter_ok.cpp");
  EXPECT_TRUE(ok.findings.empty()) << ok.findings[0].message;
}

TEST(ParcelLint, UnorderedIterSeesCompanionHeader) {
  const std::string header = slurp(kFixtures + "/unordered_hdr.hpp");
  // Without the header the member's type is unknown -> no finding;
  // with it, the range-for in the .cpp is flagged.
  FileReport blind = lint_fixture("unordered_hdr.cpp");
  EXPECT_TRUE(blind.findings.empty());
  FileReport joined = lint_fixture("unordered_hdr.cpp", &header);
  ASSERT_EQ(joined.findings.size(), 1u);
  EXPECT_EQ(joined.findings[0].rule, "unordered-iter");
  EXPECT_EQ(joined.findings[0].line, 7);
}

TEST(ParcelLint, HeaderPragmaOnceBadAndOk) {
  FileReport bad = lint_fixture("pragma_once_bad.hpp");
  EXPECT_EQ(rules_of(bad).count("header-pragma-once"), 1u);
  FileReport ok = lint_fixture("pragma_once_ok.hpp");
  EXPECT_TRUE(ok.findings.empty());
  // The rule is header-only: a guardless .cpp is not flagged.
  FileReport cpp = lint_fixture("float_drift_ok.cpp");
  EXPECT_EQ(rules_of(cpp).count("header-pragma-once"), 0u);
}

TEST(ParcelLint, HeaderUsingNamespaceBadAndOk) {
  FileReport bad = lint_fixture("using_namespace_bad.hpp");
  ASSERT_EQ(rules_of(bad).count("header-using-namespace"), 1u);
  EXPECT_EQ(bad.findings[0].line, 5);
  FileReport ok = lint_fixture("using_namespace_ok.hpp");
  EXPECT_TRUE(ok.findings.empty());
}

TEST(ParcelLint, FloatDriftBadAndOk) {
  FileReport bad = lint_fixture("float_drift_bad.cpp");
  ASSERT_EQ(rules_of(bad).count("float-double-drift"), 1u);
  EXPECT_EQ(bad.findings[0].line, 3);
  FileReport ok = lint_fixture("float_drift_ok.cpp");
  EXPECT_TRUE(ok.findings.empty()) << ok.findings[0].message;
}

// --- suppression grammar ---------------------------------------------------

TEST(ParcelLint, SuppressionWithReasonSilencesBothPlacements) {
  FileReport rep = lint_fixture("suppress_ok.cpp");
  EXPECT_TRUE(rep.findings.empty()) << rep.findings[0].message;
  EXPECT_TRUE(rep.errors.empty());
}

TEST(ParcelLint, SuppressionWithoutReasonDoesNotSuppress) {
  FileReport rep = lint_fixture("suppress_no_reason.cpp");
  EXPECT_EQ(rules_of(rep).count("nondet-time"), 1u);      // still reported
  EXPECT_EQ(rules_of(rep).count("lint-suppression"), 1u);  // and called out
}

TEST(ParcelLint, SuppressionNamingUnknownRuleIsHardError) {
  FileReport rep = lint_fixture("suppress_unknown_rule.cpp");
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("nondet-tyme"), std::string::npos);
}

TEST(ParcelLint, BenchClockAliasIdiomSuppressedOnlyWithReason) {
  // The kernel-throughput bench aliases a wall clock on purpose; the
  // suppression-with-reason idiom it uses must silence the alias line,
  // and the bare alias must still be flagged.
  FileReport ok = lint_fixture("bench_clock_ok.cpp");
  EXPECT_TRUE(ok.findings.empty()) << ok.findings[0].message;
  FileReport bad = lint_fixture("bench_clock_bad.cpp");
  EXPECT_EQ(rules_of(bad).count("nondet-time"), 1u);
}

TEST(ParcelLint, BenchFilesAreInRepoLintScope) {
  // lint.rules must keep the gated benches under the determinism rules:
  // a scoped config that mirrors the shipped scopes applies to them.
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_config(
      "scope float-double-drift = src/lte bench/bench_kernel_throughput.cpp\n",
      cfg, error))
      << error;
  EXPECT_TRUE(
      cfg.applies("float-double-drift", "bench/bench_kernel_throughput.cpp"));
  EXPECT_FALSE(cfg.applies("float-double-drift", "bench/bench_pipeline.cpp"));

  // And the shipped lint.rules itself names both bench files in-scope.
  std::ifstream rules(std::string(PARCEL_LINT_REPO_ROOT) + "/lint.rules");
  ASSERT_TRUE(rules.good());
  std::ostringstream ss;
  ss << rules.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("bench/bench_kernel_throughput.cpp"), std::string::npos);
  EXPECT_NE(text.find("bench/bench_micro.cpp"), std::string::npos);
}

TEST(ParcelLint, SuppressionForDifferentRuleDoesNotSuppress) {
  Config cfg;
  const std::string src =
      "// parcel-lint: allow(nondet-random) wrong rule for the line below\n"
      "long x = time(nullptr);\n";
  FileReport rep = lint_source("f.cpp", src, cfg, nullptr);
  EXPECT_EQ(rules_of(rep).count("nondet-time"), 1u);
}

// --- configuration ---------------------------------------------------------

TEST(ParcelLint, ConfigUnknownRuleRejected) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_config("rule nondet-tyme = on\n", cfg, error));
  EXPECT_NE(error.find("unknown rule"), std::string::npos);
  EXPECT_FALSE(parse_config("scope bogus-rule = src\n", cfg, error));
}

TEST(ParcelLint, ConfigMalformedLinesRejected) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_config("rule nondet-time on\n", cfg, error));  // no '='
  EXPECT_FALSE(parse_config("rule nondet-time = maybe\n", cfg, error));
  EXPECT_FALSE(parse_config("scope nondet-time =\n", cfg, error));
  EXPECT_FALSE(parse_config("frobnicate nondet-time = src\n", cfg, error));
  EXPECT_TRUE(parse_config("# comment only\n\nrule nondet-time = off\n", cfg,
                           error))
      << error;
  EXPECT_FALSE(cfg.applies("nondet-time", "src/a.cpp"));
}

TEST(ParcelLint, ConfigScopeAndExemptPrefixes) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_config(
      "scope float-double-drift = src/lte src/core\n"
      "exempt float-double-drift = src/core/testbed\n",
      cfg, error))
      << error;
  EXPECT_TRUE(cfg.applies("float-double-drift", "src/lte/energy.cpp"));
  EXPECT_TRUE(cfg.applies("float-double-drift", "src/core/analysis.cpp"));
  EXPECT_FALSE(cfg.applies("float-double-drift", "src/web/css.cpp"));
  EXPECT_FALSE(cfg.applies("float-double-drift", "src/core/testbed.cpp"));
}

// --- CLI exit codes --------------------------------------------------------

TEST(ParcelLintCli, CleanFileExitsZero) {
  EXPECT_EQ(cli({"--root", kFixtures, "unordered_iter_ok.cpp"}), 0);
}

TEST(ParcelLintCli, ViolatingFixtureExitsOne) {
  std::string text;
  EXPECT_EQ(cli({"--root", kFixtures, "nondet_random_bad.cpp"}, &text), 1);
  EXPECT_NE(text.find("nondet-random"), std::string::npos);
}

TEST(ParcelLintCli, UnknownSuppressionRuleExitsTwo) {
  EXPECT_EQ(cli({"--root", kFixtures, "suppress_unknown_rule.cpp"}), 2);
}

TEST(ParcelLintCli, BadUsageExitsTwo) {
  EXPECT_EQ(cli({}), 2);                                   // no inputs
  EXPECT_EQ(cli({"--config"}), 2);                         // missing value
  EXPECT_EQ(cli({"--frobnicate", "src"}), 2);              // unknown flag
  EXPECT_EQ(cli({"--root", kFixtures, "no_such_file.cpp"}), 2);
}

TEST(ParcelLintCli, BadConfigExitsTwo) {
  const std::string path =
      ::testing::TempDir() + "/test_parcel_lint_bad.rules";
  {
    std::ofstream out(path);
    out << "rule nondet-tyme = on\n";
  }
  EXPECT_EQ(cli({"--config", path, "--root", kFixtures,
                 "unordered_iter_ok.cpp"}),
            2);
  std::remove(path.c_str());
}

TEST(ParcelLintCli, DirectoryScanAggregatesFindings) {
  // The whole fixture corpus (minus the hard-error file) must exit 1 and
  // report every rule at least once.
  std::string text;
  int rc = cli({"--root", kFixtures, "nondet_random_bad.cpp",
                "nondet_time_bad.cpp", "nondet_getenv_bad.cpp",
                "unordered_iter_bad.cpp", "pragma_once_bad.hpp",
                "using_namespace_bad.hpp", "float_drift_bad.cpp",
                "suppress_no_reason.cpp"},
               &text);
  EXPECT_EQ(rc, 1);
  for (const char* rule :
       {"nondet-random", "nondet-time", "nondet-getenv", "unordered-iter",
        "header-pragma-once", "header-using-namespace", "float-double-drift",
        "lint-suppression"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

TEST(ParcelLintCli, CompanionHeaderJoinedWhenScanningDirectory) {
  std::string text;
  // Scanning the directory picks up unordered_hdr.cpp + .hpp as one TU.
  int rc = cli({"--root", kFixtures, "unordered_hdr.cpp"}, &text);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(text.find("unordered_hdr.cpp:7"), std::string::npos) << text;
}

// --- whole-program: nondet-transitive --------------------------------------

std::size_t count_of(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Lex the given (path, source) pairs, build one program index, and run
// every whole-program pass over it.
FileReport program_report(
    const std::vector<std::pair<std::string, std::string>>& srcs,
    const Config& cfg) {
  std::vector<LexOutput> lx;
  lx.reserve(srcs.size());
  for (const auto& [path, text] : srcs) lx.push_back(lex(text));
  std::vector<ProgramFile> files;
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    files.push_back({srcs[i].first, &lx[i], true, nullptr});
  }
  const ProgramIndex idx = build_program_index(files);
  std::set<std::string> known;
  for (const auto& [path, text] : srcs) known.insert(path);
  FileReport rep;
  check_nondet_transitive(idx, cfg, rep);
  check_mutex_annotations(idx, cfg, rep);
  check_layers(idx, cfg, known, rep);
  return rep;
}

TEST(ParcelLintProgram, TwoHopChainFlagsEveryCallSiteWithChain) {
  Config cfg;
  FileReport rep = program_report(
      {{"chain.cpp", slurp(kFixtures + "/transitive_chain.cpp")}}, cfg);
  ASSERT_EQ(rules_of(rep).count("nondet-transitive"), 2u);
  // uptime's call into wall_ms, then report's call into uptime — each
  // diagnostic carries the chain down to the time() source.
  EXPECT_NE(rep.findings[0].message.find("wall_ms -> 'time' [nondet-time]"),
            std::string::npos)
      << rep.findings[0].message;
  EXPECT_NE(rep.findings[1].message.find(
                "uptime -> wall_ms -> 'time' [nondet-time]"),
            std::string::npos)
      << rep.findings[1].message;
}

TEST(ParcelLintProgram, AllowWithReasonSeversTheEdge) {
  Config cfg;
  FileReport rep = program_report(
      {{"sev.cpp", slurp(kFixtures + "/transitive_allow.cpp")}}, cfg);
  // The edge into wall_ms is severed, so neither uptime nor report is
  // tainted; the direct nondet-time finding belongs to the per-file pass.
  EXPECT_EQ(rules_of(rep).count("nondet-transitive"), 0u);
}

TEST(ParcelLintProgram, AllowWithoutReasonDoesNotSever) {
  Config cfg;
  FileReport rep = program_report(
      {{"nr.cpp", slurp(kFixtures + "/transitive_allow_no_reason.cpp")}}, cfg);
  EXPECT_EQ(rules_of(rep).count("nondet-transitive"), 1u);
}

TEST(ParcelLintProgram, SuppressedSourceDoesNotTaint) {
  Config cfg;
  FileReport rep = program_report(
      {{"sup.cpp", slurp(kFixtures + "/transitive_suppressed_source.cpp")}},
      cfg);
  EXPECT_TRUE(rep.findings.empty()) << rep.findings[0].message;
}

TEST(ParcelLintProgram, TaintCrossesTranslationUnits) {
  Config cfg;
  FileReport rep = program_report(
      {{"a.cpp", slurp(kFixtures + "/transitive_pair_a.cpp")},
       {"b.cpp", slurp(kFixtures + "/transitive_pair_b.cpp")}},
      cfg);
  ASSERT_EQ(rules_of(rep).count("nondet-transitive"), 1u);
  EXPECT_EQ(rep.findings[0].path, "b.cpp");
  EXPECT_NE(rep.findings[0].message.find("seed_entropy"), std::string::npos);
}

TEST(ParcelLintProgram, TransitiveRespectsConfigScope) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_config("scope nondet-transitive = src\n", cfg, error))
      << error;
  FileReport rep = program_report(
      {{"a.cpp", slurp(kFixtures + "/transitive_pair_a.cpp")},
       {"b.cpp", slurp(kFixtures + "/transitive_pair_b.cpp")}},
      cfg);
  EXPECT_TRUE(rep.findings.empty());
}

// --- whole-program: mutex-unannotated --------------------------------------

TEST(ParcelLintProgram, MutexMemberWithoutGuardedByIsFlagged) {
  Config cfg;
  FileReport rep = program_report(
      {{"m.hpp", slurp(kFixtures + "/mutex_unannotated_bad.hpp")}}, cfg);
  ASSERT_EQ(rules_of(rep).count("mutex-unannotated"), 1u);
  EXPECT_NE(rep.findings[0].message.find("mu_"), std::string::npos);
}

TEST(ParcelLintProgram, AnnotatedMutexIsClean) {
  Config cfg;
  FileReport rep = program_report(
      {{"m.hpp", slurp(kFixtures + "/mutex_annotated_ok.hpp")}}, cfg);
  EXPECT_TRUE(rep.findings.empty()) << rep.findings[0].message;
}

// --- layering DAG ----------------------------------------------------------

TEST(ParcelLint, LayerConfigGrammar) {
  Config cfg;
  std::string error;
  ASSERT_TRUE(parse_config(
      "layer base = src/util src/core/arena.hpp\n"
      "layer core = src/core\n"
      "layer app  = src/app\n"
      "allow-dep core -> base\n"
      "allow-dep app -> core\n",
      cfg, error))
      << error;
  // Longest prefix wins: arena.hpp is carved out of core into base.
  EXPECT_EQ(cfg.layer_of("src/core/arena.hpp"), "base");
  EXPECT_EQ(cfg.layer_of("src/core/run.cpp"), "core");
  EXPECT_EQ(cfg.layer_of("src/util/env.hpp"), "base");
  EXPECT_EQ(cfg.layer_of("tools/x.cpp"), "");
  // Reachability: app -> core -> base sanctions app -> base too.
  EXPECT_TRUE(cfg.dep_allowed("core", "base"));
  EXPECT_TRUE(cfg.dep_allowed("app", "base"));
  EXPECT_FALSE(cfg.dep_allowed("base", "core"));
  EXPECT_TRUE(cfg.dep_allowed("base", "base"));
}

TEST(ParcelLint, LayerConfigRejectsBadDeclarations) {
  Config cfg;
  std::string error;
  EXPECT_FALSE(parse_config("layer base = a\nlayer base = b\n", cfg, error));
  EXPECT_NE(error.find("duplicate layer"), std::string::npos);

  cfg = {};
  EXPECT_FALSE(parse_config("layer base = a\nallow-dep base -> ghost\n", cfg,
                            error));
  EXPECT_NE(error.find("undeclared layer"), std::string::npos);

  cfg = {};
  EXPECT_FALSE(parse_config(
      "layer a = a\nlayer b = b\nallow-dep a -> b\nallow-dep b -> a\n", cfg,
      error));
  EXPECT_NE(error.find("cycle"), std::string::npos);

  cfg = {};
  EXPECT_FALSE(parse_config("layer = a\n", cfg, error));
  EXPECT_FALSE(parse_config("layer x =\n", cfg, error));
  EXPECT_FALSE(parse_config("allow-dep a b\n", cfg, error));
}

TEST(ParcelLintCli, LayerFixtureFlagsUpwardIncludeAndCycle) {
  std::string text;
  const std::string root = kFixtures + "/layers";
  int rc = cli({"--config", root + "/layers.rules", "--root", root, "."},
               &text);
  EXPECT_EQ(rc, 1);
  // The sanctioned upper -> base include is silent; the upward include
  // and the intra-layer cycle are the only two findings.
  EXPECT_EQ(count_of(text, "[layer-violation]"), 2u) << text;
  EXPECT_NE(text.find("base/bad.hpp:3"), std::string::npos) << text;
  EXPECT_NE(
      text.find("include cycle: cyc/a.hpp -> cyc/b.hpp -> cyc/a.hpp"),
      std::string::npos)
      << text;
}

// --- companion-header dedupe (the v1 double-lint regression) ---------------

TEST(ParcelLintCli, SiblingHeaderLintedExactlyOncePerScan) {
  std::string text;
  int rc = cli({"--root", kFixtures + "/dupunit", "."}, &text);
  EXPECT_EQ(rc, 1);
  // One violation in the header, scanned alongside its .cpp: exactly one
  // report line, while both files still count as scanned.
  EXPECT_EQ(count_of(text, "header-using-namespace"), 1u) << text;
  EXPECT_NE(text.find("1 finding(s) in 2 file(s)"), std::string::npos) << text;
}

TEST(ParcelLintCli, TransitiveFixturesThroughCliExitCodes) {
  std::string text;
  EXPECT_EQ(cli({"--root", kFixtures, "transitive_ok.cpp"}, &text), 0) << text;
  // Count the report-line form ": [rule]" — the transitive diagnostic's
  // message text itself names the source rule in brackets.
  EXPECT_EQ(cli({"--root", kFixtures, "transitive_chain.cpp"}, &text), 1);
  EXPECT_EQ(count_of(text, ": [nondet-transitive]"), 2u) << text;
  EXPECT_EQ(count_of(text, ": [nondet-time]"), 1u) << text;
  // Severed edge: only the direct finding remains.
  EXPECT_EQ(cli({"--root", kFixtures, "transitive_allow.cpp"}, &text), 1);
  EXPECT_EQ(count_of(text, ": [nondet-transitive]"), 0u) << text;
  EXPECT_EQ(count_of(text, ": [nondet-time]"), 1u) << text;
  // Reasonless allow: edge live, suppression itself called out.
  EXPECT_EQ(cli({"--root", kFixtures, "transitive_allow_no_reason.cpp"},
                &text),
            1);
  EXPECT_EQ(count_of(text, ": [nondet-transitive]"), 1u) << text;
  EXPECT_EQ(count_of(text, ": [lint-suppression]"), 1u) << text;
}

// The shipped tree itself must be clean — same invocation as the
// parcel_lint_tree ctest and the ci.sh gate, driven through run_cli.
TEST(ParcelLintCli, RepoTreeIsClean) {
  std::string text;
  int rc = cli({"--config", std::string(PARCEL_LINT_REPO_ROOT) + "/lint.rules",
                "--root", PARCEL_LINT_REPO_ROOT, "src", "bench"},
               &text);
  EXPECT_EQ(rc, 0) << text;
}

}  // namespace
}  // namespace parcel::lint
