#include <gtest/gtest.h>

#include "replay/normalizer.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"
#include "web/js.hpp"

namespace parcel::replay {
namespace {

TEST(UrlNormalizer, StripsCacheBustingParam) {
  net::Url u = net::Url::parse("http://a.example/x.json?r=123456");
  EXPECT_EQ(UrlNormalizer::normalize(u).str(), "http://a.example/x.json");
  net::Url mixed = net::Url::parse("http://a.example/x.json?k=1&r=9&z=2");
  EXPECT_EQ(UrlNormalizer::normalize(mixed).str(),
            "http://a.example/x.json?k=1&z=2");
  net::Url plain = net::Url::parse("http://a.example/x.json");
  EXPECT_EQ(UrlNormalizer::normalize(plain), plain);
}

TEST(UrlNormalizer, RewritesJsPreservingLength) {
  std::string js =
      "compute(1.0);\nfetchRand(\"http://api.example/a.json\");\n";
  std::string out = UrlNormalizer::normalize_js(js);
  EXPECT_EQ(out.size(), js.size());
  EXPECT_EQ(out.find("fetchRand("), std::string::npos);
  EXPECT_NE(out.find("fetch(\"http://api.example/a.json\")"),
            std::string::npos);
  // The rewritten script still parses and yields a deterministic fetch.
  auto prog = web::MiniJs::run(out);
  ASSERT_EQ(prog.references.size(), 1u);
  EXPECT_FALSE(prog.references[0].randomized);
}

TEST(UrlNormalizer, DetectsRandomizedFetches) {
  EXPECT_TRUE(UrlNormalizer::has_randomized_fetch("fetchRand(\"u\");"));
  EXPECT_FALSE(UrlNormalizer::has_randomized_fetch("fetch(\"u\");"));
}

TEST(ReplayStore, RecordsSnapshotAndRewrites) {
  web::PageGenerator gen(7);
  // Find a page that actually contains randomized fetches.
  for (int i = 0; i < 10; ++i) {
    web::WebPage live = web::PageGenerator::generate(gen.sample_spec(i));
    bool has_rand = false;
    for (const web::WebObject* obj : live.objects()) {
      if (obj->content && UrlNormalizer::has_randomized_fetch(*obj->content)) {
        has_rand = true;
      }
    }
    if (!has_rand) continue;

    ReplayStore store;
    store.record(live);
    EXPECT_GT(store.rewrites(), 0u);
    const web::WebPage* snapshot = store.find(live.main_url().str());
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(snapshot->object_count(), live.object_count());
    EXPECT_EQ(snapshot->total_bytes(), live.total_bytes());
    for (const web::WebObject* obj : snapshot->objects()) {
      if (obj->content) {
        EXPECT_FALSE(UrlNormalizer::has_randomized_fetch(*obj->content))
            << obj->url.str();
      }
    }
    return;
  }
  FAIL() << "no page with randomized fetches found in 10 samples";
}

TEST(ReplayStore, FindUnknownPageReturnsNull) {
  ReplayStore store;
  EXPECT_EQ(store.find("http://nowhere.example/"), nullptr);
  EXPECT_EQ(store.page_count(), 0u);
}

TEST(ReplayStore, MultiplePagesCoexist) {
  web::PageGenerator gen(3);
  ReplayStore store;
  web::WebPage a = web::PageGenerator::generate(gen.sample_spec(0));
  web::WebPage b = web::PageGenerator::generate(gen.sample_spec(1));
  store.record(a);
  store.record(b);
  EXPECT_EQ(store.page_count(), 2u);
  EXPECT_NE(store.find(a.main_url().str()), nullptr);
  EXPECT_NE(store.find(b.main_url().str()), nullptr);
}

}  // namespace
}  // namespace parcel::replay
