#include <gtest/gtest.h>

#include "browser/cloud_browser.hpp"
#include "browser/dir_browser.hpp"
#include "core/testbed.hpp"
#include "replay/replay_store.hpp"
#include "trace/trace_analyzer.hpp"
#include "web/generator.hpp"

namespace parcel::browser {
namespace {

using core::Testbed;
using core::TestbedConfig;

const web::WebPage& fixture_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "integ.example.com";
    spec.object_count = 30;
    spec.total_bytes = util::kib(400);
    spec.seed = 23;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://integ.example.com/"));
  }();
  return *page;
}

TEST(DirBrowserIntegration, LoadsEveryObjectWithClassicPattern) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(fixture_page());
  DirConfig cfg;
  DirBrowser dir(testbed.network(), cfg, util::Rng(1));

  bool onload = false, complete = false;
  BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint) { onload = true; };
  cbs.on_complete = [&](util::TimePoint) { complete = true; };
  dir.load(fixture_page().main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));

  EXPECT_TRUE(onload);
  EXPECT_TRUE(complete);
  EXPECT_EQ(dir.engine().ledger().count(), fixture_page().object_count());
  EXPECT_EQ(dir.fetcher().requests_issued(), fixture_page().object_count());
  EXPECT_EQ(dir.fetcher().dns_lookups(), fixture_page().domain_names().size());
  // Connection count bounded by per-domain and global caps.
  EXPECT_LE(dir.fetcher().connections_opened(),
            fixture_page().domain_names().size() * 6);
  // All transfers delivered the page's bytes over the radio.
  EXPECT_GE(testbed.client_trace().downlink_bytes(),
            static_cast<util::Bytes>(fixture_page().total_bytes()));
}

TEST(DirBrowserIntegration, EngineOltMatchesTraceDerivedOlt) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(fixture_page());
  DirConfig cfg;
  DirBrowser dir(testbed.network(), cfg, util::Rng(2));
  double onload_at = -1;
  BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint t) { onload_at = t.sec(); };
  dir.load(fixture_page().main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  ASSERT_GT(onload_at, 0);

  auto onload_ids = dir.engine().ledger().onload_ids();
  auto metrics =
      trace::TraceAnalyzer::latency_metrics(testbed.client_trace(), onload_ids);
  ASSERT_TRUE(metrics.has_value());
  // The onload event fires shortly after the last blocking object's final
  // ACK (residual parse/exec time only).
  EXPECT_NEAR(metrics->olt.sec(), onload_at, 1.0);
  EXPECT_LE(metrics->olt.sec(), onload_at);
}

TEST(CloudBrowserIntegration, LoadAndInteract) {
  Testbed testbed{TestbedConfig{}};
  web::PageSpec spec = web::PageGenerator::interactive_spec(9);
  spec.object_count = 40;
  spec.total_bytes = util::kib(600);
  web::WebPage shop = web::PageGenerator::generate(spec);
  replay::ReplayStore store;
  store.record(shop);
  const web::WebPage& page = *store.find(shop.main_url().str());
  testbed.host_page(page);

  CloudBrowserConfig cfg;
  cfg.proxy_fetch.engine.parse_bytes_per_sec = 40e6;
  cfg.proxy_fetch.engine.js_units_per_sec = 500;
  CloudBrowserProxy proxy(testbed.network(), cfg, util::Rng(1));
  testbed.register_proxy_endpoint("cb.proxy.example", proxy);
  CloudBrowserClient client(testbed.network(), "cb.proxy.example", cfg);

  bool loaded = false;
  client.load(page.main_url(), [&](util::TimePoint) { loaded = true; });
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));
  ASSERT_TRUE(loaded);

  // Snapshot is compressed: fewer bytes over the radio than page bytes.
  EXPECT_LT(testbed.client_trace().downlink_bytes(),
            static_cast<util::Bytes>(page.total_bytes()));

  // A click crosses the radio: trace grows (unlike PARCEL/DIR).
  std::size_t before = testbed.client_trace().size();
  bool clicked = false;
  client.click(0, [&] { clicked = true; });
  testbed.scheduler().run_until(util::TimePoint::at_seconds(120));
  EXPECT_TRUE(clicked);
  EXPECT_GT(testbed.client_trace().size(), before);
  EXPECT_EQ(client.ledger().count(), 2u);  // snapshot + click delta
}

TEST(CloudBrowserIntegration, ClientCpuIsThin) {
  Testbed testbed{TestbedConfig{}};
  testbed.host_page(fixture_page());
  CloudBrowserConfig cfg;
  cfg.proxy_fetch.engine.parse_bytes_per_sec = 40e6;
  cfg.proxy_fetch.engine.js_units_per_sec = 500;
  CloudBrowserProxy proxy(testbed.network(), cfg, util::Rng(1));
  testbed.register_proxy_endpoint("cb.proxy.example", proxy);
  CloudBrowserClient client(testbed.network(), "cb.proxy.example", cfg);
  client.load(fixture_page().main_url(), [](util::TimePoint) {});
  testbed.scheduler().run_until(util::TimePoint::at_seconds(60));

  // Compare against a DIR load of the same page: the thin client does a
  // small fraction of the CPU work (no JS).
  Testbed testbed2{TestbedConfig{}};
  testbed2.host_page(fixture_page());
  DirConfig dir_cfg;
  dir_cfg.engine.parse_bytes_per_sec = 0.35e6;
  dir_cfg.engine.js_units_per_sec = 12;
  DirBrowser dir(testbed2.network(), dir_cfg, util::Rng(1));
  dir.load(fixture_page().main_url(), {});
  testbed2.scheduler().run_until(util::TimePoint::at_seconds(60));

  EXPECT_LT(client.cpu_busy().sec(), dir.engine().cpu_busy().sec() * 0.5);
}

}  // namespace
}  // namespace parcel::browser
