#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/parallel_runner.hpp"
#include "replay/replay_store.hpp"
#include "web/generator.hpp"
#include "web/parse_cache.hpp"

namespace parcel::core {
namespace {

const web::WebPage& test_page() {
  static web::WebPage* page = [] {
    web::PageSpec spec;
    spec.site = "par.example.com";
    spec.object_count = 30;
    spec.total_bytes = util::kib(400);
    spec.seed = 23;
    static replay::ReplayStore store;
    store.record(web::PageGenerator::generate(spec));
    return const_cast<web::WebPage*>(store.find("http://par.example.com/"));
  }();
  return *page;
}

std::vector<Scheme> all_schemes() {
  return {Scheme::kDir,        Scheme::kHttpProxy,  Scheme::kSpdyProxy,
          Scheme::kParcelInd,  Scheme::kParcelOnld, Scheme::kParcel512K,
          Scheme::kParcel1M,   Scheme::kParcel2M,   Scheme::kCloudBrowser};
}

// The determinism contract: a RunResult must be identical whether the run
// executed inline or on a worker thread.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.ok, b.ok);
  // Bitwise, not approximate: same seed -> same simulation -> same bits.
  EXPECT_EQ(a.olt.sec(), b.olt.sec());
  EXPECT_EQ(a.tlt.sec(), b.tlt.sec());
  EXPECT_EQ(a.radio.total.j(), b.radio.total.j());
  EXPECT_EQ(a.radio.cr.j(), b.radio.cr.j());
  EXPECT_EQ(a.cpu_busy.sec(), b.cpu_busy.sec());
  EXPECT_EQ(a.radio_http_requests, b.radio_http_requests);
  EXPECT_EQ(a.tcp_connections, b.tcp_connections);
  EXPECT_EQ(a.dns_lookups, b.dns_lookups);
  EXPECT_EQ(a.objects_loaded, b.objects_loaded);
  EXPECT_EQ(a.bundles, b.bundles);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.mean_signal_dbm, b.mean_signal_dbm);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST(ParallelRunner, DefaultsToHardwareConcurrency) {
  EXPECT_GE(default_jobs(), 1);
  EXPECT_EQ(ParallelRunner(0).jobs(), default_jobs());
  EXPECT_EQ(ParallelRunner(-3).jobs(), default_jobs());
  EXPECT_EQ(ParallelRunner(4).jobs(), 4);
}

TEST(ParallelRunner, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelRunner runner(4);
  runner.for_each_index(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelRunner, SingleJobRunsInlineInOrder) {
  std::vector<std::size_t> order;
  ParallelRunner runner(1);
  runner.for_each_index(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, PropagatesTaskExceptions) {
  ParallelRunner runner(4);
  EXPECT_THROW(runner.for_each_index(
                   100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("task 37");
                   }),
               std::runtime_error);
}

TEST(ParallelRunner, ZeroTasksIsANoop) {
  ParallelRunner runner(4);
  runner.for_each_index(0, [](std::size_t) { FAIL(); });
}

TEST(RunExperiments, ParallelMatchesSerialForEveryScheme) {
  std::vector<ExperimentTask> tasks;
  std::uint64_t seed = 5;
  for (Scheme s : all_schemes()) {
    RunConfig cfg;
    cfg.seed = seed++;
    tasks.push_back(ExperimentTask{s, &test_page(), cfg});
  }
  std::vector<RunResult> serial = run_experiments(tasks, 1);
  std::vector<RunResult> parallel = run_experiments(tasks, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(to_string(tasks[i].scheme));
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(RunExperiments, ParseCacheOnOffBitwiseIdentical) {
  std::vector<ExperimentTask> tasks;
  std::uint64_t seed = 11;
  for (Scheme s : all_schemes()) {
    RunConfig cfg;
    cfg.seed = seed++;
    tasks.push_back(ExperimentTask{s, &test_page(), cfg});
  }

  web::ParseCache::instance().clear();
  web::ParseCache::set_enabled(false);
  std::vector<RunResult> uncached = run_experiments(tasks, 2);

  web::ParseCache::set_enabled(true);
  web::ParseCache::instance().reset_stats();
  std::vector<RunResult> cached1 = run_experiments(tasks, 1);
  std::vector<RunResult> cached4 = run_experiments(tasks, 4);

  // Scanners are pure functions of content bytes, so memoization must be
  // invisible in the results — for every scheme, for any jobs count.
  ASSERT_EQ(uncached.size(), cached1.size());
  for (std::size_t i = 0; i < uncached.size(); ++i) {
    SCOPED_TRACE(to_string(tasks[i].scheme));
    expect_identical(uncached[i], cached1[i]);
    expect_identical(uncached[i], cached4[i]);
  }
  // And the cache did actually serve the repeated scans.
  EXPECT_GT(web::ParseCache::instance().stats().hits(), 0u);
  web::ParseCache::instance().clear();
}

TEST(RunRounds, Jobs4BitwiseIdenticalToJobs1) {
  RoundsConfig cfg;
  cfg.rounds = 3;
  cfg.base.testbed.fade = lte::FadeProcess::Params{};
  std::vector<Scheme> schemes = all_schemes();

  cfg.jobs = 1;
  RoundsOutcome serial = run_rounds(test_page(), schemes, cfg);
  cfg.jobs = 4;
  RoundsOutcome parallel = run_rounds(test_page(), schemes, cfg);

  EXPECT_EQ(serial.rounds_total, parallel.rounds_total);
  EXPECT_EQ(serial.rounds_kept, parallel.rounds_kept);
  ASSERT_EQ(serial.series.size(), parallel.series.size());
  for (const auto& [scheme, series] : serial.series) {
    SCOPED_TRACE(to_string(scheme));
    ASSERT_TRUE(parallel.series.contains(scheme));
    const SchemeSeries& other = parallel.series.at(scheme);
    ASSERT_EQ(series.runs.size(), other.runs.size());
    for (std::size_t i = 0; i < series.runs.size(); ++i) {
      expect_identical(series.runs[i], other.runs[i]);
    }
    // The figures are built from these medians; they must not move.
    EXPECT_EQ(series.median_olt_sec(), other.median_olt_sec());
    EXPECT_EQ(series.median_tlt_sec(), other.median_tlt_sec());
    EXPECT_EQ(series.median_radio_j(), other.median_radio_j());
    EXPECT_EQ(series.median_cr_j(), other.median_cr_j());
  }
}

TEST(RunRounds, OversubscribedJobsStillIdentical) {
  // More workers than tasks must not change anything either.
  RoundsConfig cfg;
  cfg.rounds = 2;
  cfg.discard_first_round = false;
  std::vector<Scheme> schemes{Scheme::kDir, Scheme::kParcelInd};

  cfg.jobs = 1;
  RoundsOutcome serial = run_rounds(test_page(), schemes, cfg);
  cfg.jobs = 16;
  RoundsOutcome parallel = run_rounds(test_page(), schemes, cfg);

  EXPECT_EQ(serial.rounds_kept, parallel.rounds_kept);
  for (const auto& [scheme, series] : serial.series) {
    const SchemeSeries& other = parallel.series.at(scheme);
    ASSERT_EQ(series.runs.size(), other.runs.size());
    for (std::size_t i = 0; i < series.runs.size(); ++i) {
      expect_identical(series.runs[i], other.runs[i]);
    }
  }
}

}  // namespace
}  // namespace parcel::core
