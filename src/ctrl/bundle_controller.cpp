#include "ctrl/bundle_controller.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/env.hpp"

namespace parcel::ctrl {

std::uint64_t isqrt_u64(std::uint64_t v) {
  if (v == 0) return 0;
  // Newton's method from an overestimate (v/2 + 1 >= sqrt(v) for all v,
  // and never overflows): converges in a few iterations and the floor
  // fix-up at the end makes the result exact.
  std::uint64_t x = v;
  std::uint64_t y = v / 2 + 1;
  while (y < x) {
    x = y;
    y = (x + v / x) / 2;
  }
  while (x > 0 && x > v / x) --x;          // ensure x*x <= v without overflow
  while ((x + 1) <= v / (x + 1)) ++x;      // ensure (x+1)^2 > v
  return x;
}

namespace {

/// -1 unset, else 0/1. First use consults PARCEL_CTRL (read exactly once,
/// same convention as core::set_arena_enabled / PARCEL_ARENA).
std::atomic<int> g_ctrl_enabled{-1};

}  // namespace

bool ctrl_enabled() {
  int v = g_ctrl_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    // parcel-lint: allow(nondet-transitive) PARCEL_CTRL kill switch read once at first use; ctrl-off runs are pinned byte-identical to the fixed scheme by test, so the env read cannot vary results within a run
    v = util::env_flag("PARCEL_CTRL", /*default_on=*/true) ? 1 : 0;
    g_ctrl_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_ctrl_enabled(bool on) {
  g_ctrl_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

ControllerConfig ControllerConfig::latency_tuned(const lte::RrcConfig& rrc) {
  ControllerConfig cfg;
  cfg.estimator.rrc = rrc;
  // Latency control wants to *track* signal swings, not average them
  // out: a quarter-gain EWMA reaches ~76% of a step in five samples
  // (roughly one fade phase at LTE burst cadence), and the tighter
  // hysteresis lets the sqrt-compressed b* swing (a 4x rate fade only
  // doubles b*) actually reach the scheduler.
  cfg.estimator.goodput_gamma_shift = 2;
  cfg.hysteresis_pct = 10;
  // The inter-bundle gaps of a threshold schedule mostly land in the
  // short-DRX window, so the per-bundle stall is the short-DRX resume.
  // alpha' = √(promo_sec), in milli-units: √(0.040) = 0.200 -> 200.
  // Derated by 5/8: the pure model ignores that earlier bundles overlap
  // client-side parse/JS with the radio, which shifts the latency
  // optimum below √(promo·s·B) in practice.
  double promo_sec = rrc.promo_from_short_drx.sec();
  cfg.alpha_milli =
      static_cast<std::int64_t>(
          isqrt_u64(static_cast<std::uint64_t>(promo_sec * 1e6 + 0.5))) *
      5 / 8;
  if (cfg.alpha_milli < 1) cfg.alpha_milli = 1;
  return cfg;
}

void ControllerConfig::validate() const {
  if (alpha_milli <= 0) {
    throw std::invalid_argument("ControllerConfig: alpha_milli must be > 0");
  }
  if (page_bytes_hint <= 0) {
    throw std::invalid_argument(
        "ControllerConfig: page_bytes_hint must be > 0");
  }
  if (min_target <= 0 || max_target < min_target) {
    throw std::invalid_argument("ControllerConfig: bad target clamps");
  }
  if (hysteresis_pct < 0 || hysteresis_pct > 1000) {
    throw std::invalid_argument(
        "ControllerConfig: hysteresis_pct out of range");
  }
}

BundleController::BundleController(ControllerConfig config,
                                   util::Bytes initial_threshold)
    : config_(config),
      estimator_(config.estimator),
      threshold_(initial_threshold) {
  config_.validate();
  if (initial_threshold <= 0) {
    throw std::invalid_argument(
        "BundleController: initial threshold must be > 0");
  }
}

util::Bytes BundleController::target() const {
  // B̂: the bytes still to carry, not the page total — the OLT form of
  // §6's model. Early in the load (much remaining, promotion overhead
  // amortizes) b* is large; as the page drains, b* tapers so the final
  // bundles release early and onload isn't stuck behind a half-filled
  // threshold. Floored at hint/8: once more than the hint has crossed
  // the radio the page size was underestimated, and assuming "almost
  // done" forever would trickle tiny bundles through every promotion.
  const std::int64_t b_hat =
      std::max<std::int64_t>(config_.page_bytes_hint - estimator_.downlink_bytes(),
                             config_.page_bytes_hint / 8);
  const auto s_hat = static_cast<std::uint64_t>(estimator_.goodput_bps());
  const std::uint64_t root =
      isqrt_u64(s_hat * static_cast<std::uint64_t>(b_hat));
  auto target = static_cast<std::int64_t>(root) * config_.alpha_milli / 1000;
  return std::clamp<util::Bytes>(target, config_.min_target,
                                 config_.max_target);
}

std::optional<util::Bytes> BundleController::on_record(
    const trace::PacketRecord& r) {
  estimator_.on_record(r);
  const util::Bytes next = target();
  // Hysteresis: |next - threshold| must exceed hysteresis_pct of the
  // current threshold before the scheduler is disturbed.
  const std::int64_t delta =
      next > threshold_ ? next - threshold_ : threshold_ - next;
  if (delta * 100 <= threshold_ * config_.hysteresis_pct) return std::nullopt;
  threshold_ = next;
  ++retunes_;
  return next;
}

}  // namespace parcel::ctrl
