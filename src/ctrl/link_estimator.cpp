#include "ctrl/link_estimator.hpp"

#include <stdexcept>

namespace parcel::ctrl {

namespace {

/// Simulated TimePoint -> integer microseconds. One rounding per record
/// (never accumulated), so the fixed-point state stays exact.
std::int64_t to_us(util::TimePoint t) {
  return static_cast<std::int64_t>(t.sec() * 1e6 + 0.5);
}

std::int64_t to_us(util::Duration d) {
  return static_cast<std::int64_t>(d.sec() * 1e6 + 0.5);
}

}  // namespace

LinkEstimator::LinkEstimator(EstimatorConfig config)
    : config_(config),
      cr_gate_us_(to_us(config.rrc.cr_tail)),
      goodput_bps_(config.initial_goodput_bps),
      rtt_us_(config.initial_rtt_us) {
  if (config.goodput_gamma_shift >= 32 || config.rtt_gamma_shift >= 32) {
    throw std::invalid_argument("LinkEstimator: gamma shift must be < 32");
  }
  if (config.initial_goodput_bps <= 0 || config.initial_rtt_us <= 0) {
    throw std::invalid_argument("LinkEstimator: seeds must be positive");
  }
  if (config.min_goodput_bps <= 0 ||
      config.max_goodput_bps < config.min_goodput_bps) {
    throw std::invalid_argument("LinkEstimator: bad goodput band");
  }
  if (config.min_sample_bytes <= 0 || config.min_plausible_bps <= 0) {
    throw std::invalid_argument(
        "LinkEstimator: serialization-sample thresholds must be positive");
  }
}

void LinkEstimator::on_record(const trace::PacketRecord& r) {
  const std::int64_t t_us = to_us(r.t);
  const std::int64_t gap_us = ever_active_ ? t_us - last_t_us_ : 0;

  if (r.dir == trace::Direction::kUplink) {
    if (r.kind == trace::PacketKind::kData && !have_up_) {
      // Remember what this request paid in promotion stall so the RTT
      // sample can be de-skewed when the response lands.
      up_t_us_ = t_us;
      up_promo_us_ =
          ever_active_
              ? to_us(config_.rrc.promotion_delay_after_gap(
                    util::Duration::micros(static_cast<double>(gap_us))))
              : to_us(config_.rrc.promo_from_idle);
      have_up_ = true;
    }
  } else {
    if (r.kind == trace::PacketKind::kData) {
      downlink_bytes_ += r.bytes;
      if (have_up_) {
        fold_rtt(t_us - up_t_us_ - up_promo_us_);
        have_up_ = false;
      }
      if (have_down_) {
        const std::int64_t dt_us = t_us - last_down_t_us_;
        // Fold when the radio provably stayed in CR (gap <= the tail), or
        // when the burst is serialization-dominated: big enough that its
        // airtime at any plausible rate covers the whole gap. Otherwise
        // the spacing is promotion/DRX stall or origin idle time, not
        // serialization.
        const bool back_to_back = dt_us > 0 && dt_us <= cr_gate_us_;
        const bool airtime_dominated =
            dt_us > 0 && r.bytes >= config_.min_sample_bytes &&
            dt_us * config_.min_plausible_bps <=
                static_cast<std::int64_t>(r.bytes) * 1'000'000;
        if (back_to_back || airtime_dominated) {
          fold_goodput(r.bytes * 1'000'000 / dt_us);
        } else {
          ++gated_samples_;
        }
      }
      have_down_ = true;
      last_down_t_us_ = t_us;
    }
  }

  ever_active_ = true;
  last_t_us_ = t_us;
}

void LinkEstimator::fold_goodput(std::int64_t sample_bps) {
  if (sample_bps < config_.min_goodput_bps ||
      sample_bps > config_.max_goodput_bps) {
    ++gated_samples_;
    return;
  }
  goodput_bps_ +=
      (sample_bps - goodput_bps_) >> config_.goodput_gamma_shift;
  if (goodput_bps_ < config_.min_goodput_bps) {
    goodput_bps_ = config_.min_goodput_bps;
  }
  ++goodput_samples_;
}

void LinkEstimator::fold_rtt(std::int64_t sample_us) {
  if (sample_us < 1) sample_us = 1;  // de-skew can only over-subtract
  rtt_us_ += (sample_us - rtt_us_) >> config_.rtt_gamma_shift;
  if (rtt_us_ < 1) rtt_us_ = 1;
  ++rtt_samples_;
}

}  // namespace parcel::ctrl
