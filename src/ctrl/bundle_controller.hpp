// ctrl::BundleController: closed-loop b* control (ISSUE 10, tentpole).
//
// The paper's §6 model picks the energy/latency-optimal bundle size
// b* = α√(sB) from the link speed s and page size B; the repo carried it
// only as a static anchor (bench_sec6_model). This controller closes the
// loop: every radio burst feeds the LinkEstimator, and at bundle
// boundaries the controller recomputes
//
//     b* = alpha_milli/1000 * isqrt( ŝ * B̂ )
//
// with ŝ the EWMA goodput (bytes/sec) and B̂ the page-size estimate
// (the configured hint, raised to the downlink bytes actually observed —
// a heavy page can only grow the estimate). The target is clamped to
// [min_target, max_target] and passed through a hysteresis band: the
// scheduler is only retuned when the new target moves more than
// hysteresis_pct away from the current threshold, so estimator jitter
// cannot thrash the bundle schedule.
//
// alpha defaults to the paper's energy-optimal 0.74. The latency_tuned()
// preset instead derives alpha from the RRC promotion stall: with n
// bundles the load pays (n-1) DRX resume promotions on top of B/s
// serialization, so mean OLT is minimized near b* = √(s·B·promo) — the
// same √(sB) law with alpha' = √(promo_sec). That is the preset
// bench_adaptive races against the fixed-size grid.
//
// Determinism: integer arithmetic throughout (isqrt is Newton on
// uint64), no RNG, no clocks. Kill switch: PARCEL_CTRL=0 (or
// set_ctrl_enabled(false)) disables the control loop process-wide; the
// experiment harness then never installs the trace listener, so runs are
// byte-identical to the fixed-threshold schemes.
#pragma once

#include <cstdint>
#include <optional>

#include "ctrl/link_estimator.hpp"
#include "util/units.hpp"

namespace parcel::ctrl {

/// Integer square root: floor(sqrt(v)). Deterministic (Newton's method
/// on uint64), exposed for tests.
[[nodiscard]] std::uint64_t isqrt_u64(std::uint64_t v);

/// Process-wide kill switch. Reads PARCEL_CTRL once at first use;
/// set_ctrl_enabled overrides programmatically (tests, benches).
[[nodiscard]] bool ctrl_enabled();
void set_ctrl_enabled(bool on);

struct ControllerConfig {
  EstimatorConfig estimator;
  /// alpha in milli-units (740 = the paper's §6 energy-optimal 0.74).
  std::int64_t alpha_milli = 740;
  /// Page-size hint (§6 works the model at B = 2 MB). B̂ at any instant
  /// is the *remaining* bytes — hint minus what already crossed the
  /// radio, floored at hint/8 — so the target tapers as the page drains.
  util::Bytes page_bytes_hint = util::mib(2);
  /// Target clamps: a floor below any sane MHTML part is pointless, and
  /// the ceiling keeps a burst of optimistic samples from deferring the
  /// whole page to one bundle.
  util::Bytes min_target = util::kib(64);
  util::Bytes max_target = util::mib(4);
  /// Retune only when the recomputed target moves more than this many
  /// percent away from the current threshold.
  int hysteresis_pct = 20;

  /// OLT-tuned preset: alpha' = √(promo_sec) for the DRX resume stall
  /// the schedule actually pays between bundles (see header comment).
  [[nodiscard]] static ControllerConfig latency_tuned(
      const lte::RrcConfig& rrc);

  /// Throws std::invalid_argument on nonsense.
  void validate() const;
};

class BundleController {
 public:
  BundleController(ControllerConfig config, util::Bytes initial_threshold);

  /// Fold one captured radio burst and recompute the target. Returns the
  /// new threshold when the hysteresis band is crossed (the caller
  /// retunes the scheduler), std::nullopt otherwise.
  [[nodiscard]] std::optional<util::Bytes> on_record(
      const trace::PacketRecord& r);

  /// Current computed target (clamped, pre-hysteresis).
  [[nodiscard]] util::Bytes target() const;
  /// Threshold the scheduler is currently running with.
  [[nodiscard]] util::Bytes threshold() const { return threshold_; }
  [[nodiscard]] std::uint64_t retunes() const { return retunes_; }
  [[nodiscard]] const LinkEstimator& estimator() const { return estimator_; }

 private:
  ControllerConfig config_;
  LinkEstimator estimator_;
  util::Bytes threshold_;
  std::uint64_t retunes_ = 0;
};

}  // namespace parcel::ctrl
