// ctrl::LinkEstimator: deterministic online estimates of the radio link's
// goodput and RTT, folded from the live packet capture (ISSUE 10).
//
// The estimator consumes the same PacketRecords the phone-side trace
// records (via PacketTrace's burst listener) and keeps two EWMAs:
//
//   * goodput — instantaneous bytes/sec between consecutive downlink data
//     bursts. Two sample classes fold; everything else is gated:
//       - back-to-back bursts (gap <= the CR tail): the radio never left
//         Continuous Reception, so the spacing is pure serialization;
//       - serialization-dominated bursts: at least `min_sample_bytes` of
//         payload whose spacing is consistent with airtime at some rate
//         >= `min_plausible_bps`. TCP's ack clock spaces bursts by an
//         RTT, which exceeds the 50 ms CR tail on LTE — without this
//         class the estimator starves exactly in the slow-origin regimes
//         where the controller matters. A burst this large is mostly
//         airtime, so idle headroom in the gap biases the sample low by
//         at most the origin think time — bounded, smoothed by the EWMA,
//         and conservative in the safe direction (smaller bundles).
//     Gated: same-instant records, sub-floor/over-cap rates, small bursts
//     spanning an RRC decay gap (their spacing is promotion + DRX stall,
//     not serialization — folding them would crash the estimate exactly
//     when the controller needs it most).
//   * rtt — uplink request to first downlink response, with the RRC
//     promotion latency the uplink paid (RrcConfig::
//     promotion_delay_after_gap over the preceding idle gap) subtracted
//     out, so the estimate tracks the path, not the radio's sleep state.
//
// Determinism (DESIGN.md §15): all state is integer fixed-point. Times
// fold as microseconds, goodput as bytes/sec, and the EWMA update is
//   ewma += (sample - ewma) >> gamma_shift
// on std::int64_t (arithmetic right shift; well-defined since C++20).
// No floating point accumulates across samples and no RNG is consumed,
// so the estimator state after N records is a pure function of the
// record sequence — bitwise identical across --jobs fan-out and hosts.
#pragma once

#include <cstdint>

#include "lte/rrc.hpp"
#include "trace/packet_trace.hpp"

namespace parcel::ctrl {

struct EstimatorConfig {
  /// EWMA smoothing: gain = 2^-gamma_shift (3 -> 1/8 per sample).
  unsigned goodput_gamma_shift = 3;
  unsigned rtt_gamma_shift = 3;
  /// Seeds before the first sample folds (paper §8.3: median 6 Mbps
  /// downlink = 750 KB/s; LTE RTTs of 70-86 ms end to end).
  std::int64_t initial_goodput_bps = 750'000;  // bytes per second
  std::int64_t initial_rtt_us = 80'000;
  /// Goodput samples outside this band are gated (a sub-floor sample is
  /// a stall artifact, not bandwidth; the cap rejects same-timestamp
  /// bursts that would divide by ~zero).
  std::int64_t min_goodput_bps = 1'000;
  std::int64_t max_goodput_bps = 1'000'000'000;
  /// Serialization-dominated sampling (see the header comment): bursts of
  /// at least this size fold even across an RRC decay gap, provided the
  /// gap is no longer than their airtime at `min_plausible_bps` — the
  /// deepest fade the estimator is willing to attribute to the link
  /// rather than to origin idle time.
  std::int64_t min_sample_bytes = 32 * 1024;
  std::int64_t min_plausible_bps = 40'000;
  /// RRC timers used for CR gating and promotion compensation.
  lte::RrcConfig rrc;
};

class LinkEstimator {
 public:
  explicit LinkEstimator(EstimatorConfig config);

  /// Fold one captured radio burst (called in record order).
  void on_record(const trace::PacketRecord& r);

  /// Current estimates (fixed-point integers; never zero).
  [[nodiscard]] std::int64_t goodput_bps() const { return goodput_bps_; }
  [[nodiscard]] std::int64_t rtt_us() const { return rtt_us_; }
  /// Total downlink payload observed (the controller's page-size floor).
  [[nodiscard]] std::int64_t downlink_bytes() const {
    return downlink_bytes_;
  }

  [[nodiscard]] std::uint64_t goodput_samples() const {
    return goodput_samples_;
  }
  [[nodiscard]] std::uint64_t rtt_samples() const { return rtt_samples_; }
  /// Samples rejected by the RRC gate / sanity band.
  [[nodiscard]] std::uint64_t gated_samples() const { return gated_samples_; }

 private:
  void fold_goodput(std::int64_t sample_bps);
  void fold_rtt(std::int64_t sample_us);

  EstimatorConfig config_;
  std::int64_t cr_gate_us_;  // gap beyond which the radio left CR

  std::int64_t goodput_bps_;
  std::int64_t rtt_us_;
  std::int64_t downlink_bytes_ = 0;

  // Previous downlink data burst (goodput pairing).
  bool have_down_ = false;
  std::int64_t last_down_t_us_ = 0;
  // Pending uplink awaiting its first downlink (RTT pairing).
  bool have_up_ = false;
  std::int64_t up_t_us_ = 0;
  std::int64_t up_promo_us_ = 0;
  // End of the most recent radio activity in either direction (gap base).
  bool ever_active_ = false;
  std::int64_t last_t_us_ = 0;

  std::uint64_t goodput_samples_ = 0;
  std::uint64_t rtt_samples_ = 0;
  std::uint64_t gated_samples_ = 0;
};

}  // namespace parcel::ctrl
