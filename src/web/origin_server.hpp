// OriginServer: the content web server for one domain.
//
// Serves the objects of hosted pages with per-object generation latency.
// Unknown URLs get a small 404. Cache-busted URLs (random query strings)
// resolve to the canonical object, as real CDNs and the paper's replay
// rig do. POST requests are answered with 204 unless a handler is
// registered (used to exercise PARCEL's POST relay path, §4.5).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "net/http.hpp"
#include "sim/scheduler.hpp"
#include "web/page.hpp"

namespace parcel::net {
class FaultInjector;
}

namespace parcel::web {

class OriginServer final : public net::HttpEndpoint {
 public:
  OriginServer(sim::Scheduler& sched, std::string domain);

  /// Register this domain's slice of `page`. The page must outlive the
  /// server. Safe to host multiple pages.
  void host(const WebPage& page);

  void handle(const net::HttpRequest& request,
              std::function<void(net::HttpResponse)> respond) override;

  /// Optional handler for POST bodies; returns the response. When unset,
  /// POSTs get 204 No Content.
  using PostHandler =
      std::function<net::HttpResponse(const net::HttpRequest&)>;
  void set_post_handler(PostHandler handler) {
    post_handler_ = std::move(handler);
  }

  /// Scale every object's think time (models slow origins).
  void set_think_scale(double scale) { think_scale_ = scale; }

  /// Consult an injector for stall windows and 503 answers. Null (the
  /// default) keeps the server fault-free; the injector must outlive the
  /// server (the Testbed owns both).
  void set_fault_injector(net::FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] const std::string& domain() const { return domain_; }
  [[nodiscard]] std::size_t requests_served() const { return served_; }
  [[nodiscard]] std::size_t not_found_count() const { return not_found_; }

 private:
  [[nodiscard]] const WebObject* lookup(const net::Url& url) const;

  sim::Scheduler& sched_;
  std::string domain_;
  /// Keyed by interned URL identity — no per-request str()/without_query()
  /// string building. Hits are verified against the stored object's URL
  /// components, so a (astronomically unlikely) 64-bit collision degrades
  /// to a 404 rather than serving the wrong object.
  std::unordered_map<net::UrlId, const WebObject*, net::UrlIdHash> by_url_;
  std::unordered_map<net::UrlId, const WebObject*, net::UrlIdHash>
      by_normalized_;
  PostHandler post_handler_;
  net::FaultInjector* faults_ = nullptr;
  double think_scale_ = 1.0;
  std::size_t served_ = 0;
  std::size_t not_found_ = 0;
};

}  // namespace parcel::web
