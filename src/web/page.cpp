#include "web/page.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcel::web {

void WebPage::add(WebObject object) {
  std::string key = object.url.str();
  if (objects_.contains(key)) {
    throw std::invalid_argument("WebPage::add: duplicate object " + key);
  }
  auto [it, _] = objects_.emplace(std::move(key), std::move(object));
  const WebObject& stored = it->second;
  // Keep the caches in the map's sorted-by-URL-key order: the new node's
  // position in the map is its position in the cache.
  objects_cache_.insert(
      objects_cache_.begin() + std::distance(objects_.begin(), it), &stored);
  auto dom = std::lower_bound(domains_cache_.begin(), domains_cache_.end(),
                              stored.url.host());
  if (dom == domains_cache_.end() || *dom != stored.url.host()) {
    domain_ids_cache_.insert(
        domain_ids_cache_.begin() +
            std::distance(domains_cache_.begin(), dom),
        stored.url.host_id());
    domains_cache_.insert(dom, stored.url.host());
  }
  by_id_[stored.url.id()] = &stored;
  // For query-variant siblings sharing host+path, the lexicographically
  // smallest full URL owns the normalized key — the same winner
  // rebuild_index() picks when walking the sorted map, so copies always
  // agree with their originals.
  auto [nit, inserted] = by_norm_id_.emplace(stored.url.normalized_id(),
                                             &stored);
  if (!inserted && it->first < nit->second->url.str()) {
    nit->second = &stored;
  }
}

void WebPage::rebuild_index() {
  by_id_.clear();
  by_norm_id_.clear();
  objects_cache_.clear();
  domains_cache_.clear();
  domain_ids_cache_.clear();
  objects_cache_.reserve(objects_.size());
  for (const auto& [_, obj] : objects_) {
    by_id_[obj.url.id()] = &obj;
    by_norm_id_.emplace(obj.url.normalized_id(), &obj);
    objects_cache_.push_back(&obj);
    auto dom = std::lower_bound(domains_cache_.begin(), domains_cache_.end(),
                                obj.url.host());
    if (dom == domains_cache_.end() || *dom != obj.url.host()) {
      domain_ids_cache_.insert(
          domain_ids_cache_.begin() +
              std::distance(domains_cache_.begin(), dom),
          obj.url.host_id());
      domains_cache_.insert(dom, obj.url.host());
    }
  }
}

const WebObject* WebPage::find(const net::Url& url) const {
  auto it = by_id_.find(url.id());
  if (it != by_id_.end() && it->second->url == url) return it->second;
  auto norm = by_norm_id_.find(url.normalized_id());
  if (norm != by_norm_id_.end() && norm->second->url.host() == url.host() &&
      norm->second->url.path() == url.path()) {
    return norm->second;
  }
  return nullptr;
}

const WebObject& WebPage::main() const {
  const WebObject* obj = find(main_url_);
  if (obj == nullptr) {
    throw std::logic_error("WebPage: main document missing: " +
                           main_url_.str());
  }
  return *obj;
}

Bytes WebPage::total_bytes() const {
  Bytes total = 0;
  for (const auto& [_, obj] : objects_) total += obj.size;
  return total;
}

Bytes WebPage::onload_bytes() const {
  Bytes total = 0;
  for (const auto& [_, obj] : objects_) {
    if (!obj.post_onload) total += obj.size;
  }
  return total;
}

std::size_t WebPage::count_of(ObjectType t) const {
  std::size_t n = 0;
  for (const auto& [_, obj] : objects_) {
    if (obj.type == t) ++n;
  }
  return n;
}

std::vector<const WebObject*> WebPage::objects_on(
    const std::string& domain) const {
  std::vector<const WebObject*> out;
  for (const auto& [_, obj] : objects_) {
    if (obj.url.host() == domain) out.push_back(&obj);
  }
  return out;
}

std::vector<WebObject*> WebPage::mutable_objects() {
  std::vector<WebObject*> out;
  out.reserve(objects_.size());
  for (auto& [_, obj] : objects_) out.push_back(&obj);
  return out;
}

}  // namespace parcel::web
