#include "web/page.hpp"

#include <stdexcept>

namespace parcel::web {

void WebPage::add(WebObject object) {
  std::string key = object.url.str();
  if (objects_.contains(key)) {
    throw std::invalid_argument("WebPage::add: duplicate object " + key);
  }
  by_normalized_.emplace(object.url.without_query(), key);
  objects_.emplace(std::move(key), std::move(object));
}

const WebObject* WebPage::find(const net::Url& url) const {
  auto it = objects_.find(url.str());
  if (it != objects_.end()) return &it->second;
  auto norm = by_normalized_.find(url.without_query());
  if (norm != by_normalized_.end()) {
    auto hit = objects_.find(norm->second);
    if (hit != objects_.end()) return &hit->second;
  }
  return nullptr;
}

const WebObject& WebPage::main() const {
  const WebObject* obj = find(main_url_);
  if (obj == nullptr) {
    throw std::logic_error("WebPage: main document missing: " +
                           main_url_.str());
  }
  return *obj;
}

Bytes WebPage::total_bytes() const {
  Bytes total = 0;
  for (const auto& [_, obj] : objects_) total += obj.size;
  return total;
}

Bytes WebPage::onload_bytes() const {
  Bytes total = 0;
  for (const auto& [_, obj] : objects_) {
    if (!obj.post_onload) total += obj.size;
  }
  return total;
}

std::size_t WebPage::count_of(ObjectType t) const {
  std::size_t n = 0;
  for (const auto& [_, obj] : objects_) {
    if (obj.type == t) ++n;
  }
  return n;
}

std::vector<const WebObject*> WebPage::objects() const {
  std::vector<const WebObject*> out;
  out.reserve(objects_.size());
  for (const auto& [_, obj] : objects_) out.push_back(&obj);
  return out;
}

std::vector<const WebObject*> WebPage::objects_on(
    const std::string& domain) const {
  std::vector<const WebObject*> out;
  for (const auto& [_, obj] : objects_) {
    if (obj.url.host() == domain) out.push_back(&obj);
  }
  return out;
}

std::set<std::string> WebPage::domains() const {
  std::set<std::string> out;
  for (const auto& [_, obj] : objects_) out.insert(obj.url.host());
  return out;
}

std::vector<WebObject*> WebPage::mutable_objects() {
  std::vector<WebObject*> out;
  out.reserve(objects_.size());
  for (auto& [_, obj] : objects_) out.push_back(&obj);
  return out;
}

}  // namespace parcel::web
