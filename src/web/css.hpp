// MiniCss: scans stylesheet text for url(...) resources and @import rules.
#pragma once

#include <string_view>
#include <vector>

#include "web/reference.hpp"

namespace parcel::web {

class MiniCss {
 public:
  static std::vector<Reference> scan(std::string_view css);
};

}  // namespace parcel::web
