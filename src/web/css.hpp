// MiniCss: scans stylesheet text for url(...) resources and @import rules.
#pragma once

#include <string_view>
#include <vector>

#include "web/reference.hpp"

namespace parcel::web {

class MiniCss {
 public:
  /// Scan stylesheet text. Returned references borrow from `css`; the
  /// caller (or the parse cache) must keep the stylesheet string alive
  /// while the references are in use.
  static std::vector<Reference> scan(std::string_view css);
};

}  // namespace parcel::web
