// MiniJs: a deliberately small JavaScript dialect and its "interpreter".
//
// PageGenerator emits real statement text in this dialect; executing a
// script means scanning its statements, charging work units for compute,
// and revealing the dependencies the statements fetch. This captures the
// property the paper's design turns on: some objects are only
// discoverable by *executing* JS (dynamically identified, §4.2), which is
// why a dumb forwarding proxy cannot identify all objects and why the
// PARCEL proxy must "behave like a browser" (§5.1).
//
// Statements (one per line, C-style // comments allowed):
//   compute(W);                    -- pure computation costing W units
//   fetch("url");                  -- XHR; reveals a JSON dependency
//   fetchRand("url");              -- XHR with a cache-busting random query
//   loadScript("url");             -- injects a synchronous script
//   loadScriptAsync("url");        -- injects an async script
//   document.write('<img src="url">');  -- reveals an image
//   onClick(N, "url");             -- interaction handler: click #N shows
//                                     the (already fetched) url; used by
//                                     the §8.2 interactivity experiment
#pragma once

#include <string_view>
#include <vector>

#include "web/reference.hpp"

namespace parcel::web {

struct JsClickHandler {
  int click_index = 0;
  /// Object displayed on that click; borrowed from the script text.
  std::string_view target;
};

/// References and handlers borrow from the scanned script body — valid
/// while the script's content string lives (the parse cache pins it).
struct JsProgram {
  double work_units = 0.0;
  std::vector<Reference> references;
  std::vector<JsClickHandler> click_handlers;
};

class MiniJs {
 public:
  /// Parse+interpret a script body. Throws std::invalid_argument on a
  /// malformed statement (generator bugs should fail loudly).
  static JsProgram run(std::string_view code);

  /// Work units for a script without collecting references.
  static double work_of(std::string_view code) { return run(code).work_units; }
};

}  // namespace parcel::web
