#include "web/object.hpp"

#include <stdexcept>

namespace parcel::web {

std::string_view to_string(ObjectType t) {
  switch (t) {
    case ObjectType::kHtml: return "html";
    case ObjectType::kCss: return "css";
    case ObjectType::kJs: return "js";
    case ObjectType::kJsAsync: return "js-async";
    case ObjectType::kImage: return "image";
    case ObjectType::kFont: return "font";
    case ObjectType::kJson: return "json";
    case ObjectType::kMedia: return "media";
  }
  return "?";
}

std::string_view mime_type(ObjectType t) {
  switch (t) {
    case ObjectType::kHtml: return "text/html";
    case ObjectType::kCss: return "text/css";
    case ObjectType::kJs: return "application/javascript";
    case ObjectType::kJsAsync: return "application/javascript";
    case ObjectType::kImage: return "image/jpeg";
    case ObjectType::kFont: return "font/woff2";
    case ObjectType::kJson: return "application/json";
    case ObjectType::kMedia: return "video/mp4";
  }
  return "application/octet-stream";
}

ObjectType type_from_mime(std::string_view mime) {
  if (mime == "text/html") return ObjectType::kHtml;
  if (mime == "text/css") return ObjectType::kCss;
  if (mime == "application/javascript") return ObjectType::kJs;
  if (mime == "image/jpeg") return ObjectType::kImage;
  if (mime == "font/woff2") return ObjectType::kFont;
  if (mime == "application/json") return ObjectType::kJson;
  if (mime == "video/mp4") return ObjectType::kMedia;
  return ObjectType::kImage;
}

bool is_parseable(ObjectType t) {
  switch (t) {
    case ObjectType::kHtml:
    case ObjectType::kCss:
    case ObjectType::kJs:
    case ObjectType::kJsAsync:
      return true;
    default:
      return false;
  }
}

const std::string& WebObject::text() const {
  if (!content) {
    throw std::logic_error("WebObject::text: no content for " + url.str());
  }
  return *content;
}

}  // namespace parcel::web
