#include "web/origin_server.hpp"

#include <memory>

#include "net/fault_injector.hpp"

namespace parcel::web {

OriginServer::OriginServer(sim::Scheduler& sched, std::string domain)
    : sched_(sched), domain_(std::move(domain)) {}

void OriginServer::host(const WebPage& page) {
  for (const WebObject* obj : page.objects()) {
    if (obj->url.host() != domain_) continue;
    by_url_[obj->url.id()] = obj;
    by_normalized_[obj->url.normalized_id()] = obj;
  }
}

const WebObject* OriginServer::lookup(const net::Url& url) const {
  auto it = by_url_.find(url.id());
  if (it != by_url_.end() && it->second->url == url) return it->second;
  // Cache-busted URL: resolve via host+path identity; verify components.
  auto norm = by_normalized_.find(url.normalized_id());
  if (norm != by_normalized_.end() && norm->second->url.host() == url.host() &&
      norm->second->url.path() == url.path()) {
    return norm->second;
  }
  return nullptr;
}

void OriginServer::handle(const net::HttpRequest& request,
                          std::function<void(net::HttpResponse)> respond) {
  ++served_;
  if (request.method == net::HttpMethod::kPost) {
    net::HttpResponse resp;
    resp.url = request.url;
    if (post_handler_) {
      resp = post_handler_(request);
    } else {
      resp.status = 204;
      resp.body_bytes = 0;
    }
    sched_.schedule_after(Duration::millis(20 * think_scale_),
                          [resp = std::move(resp),
                           respond = std::move(respond)]() mutable {
                            respond(std::move(resp));
                          });
    return;
  }

  net::HttpResponse resp;
  resp.url = request.url;
  Duration think = Duration::millis(15);
  if (faults_ != nullptr && faults_->server_error(sched_.now())) {
    // Injected backend failure: a quick 503, like a tripped load balancer.
    resp.status = 503;
    resp.content_type = "text/html";
    resp.body_bytes = 256;
  } else {
    const WebObject* obj = lookup(request.url);
    if (obj == nullptr) {
      ++not_found_;
      resp.status = 404;
      resp.content_type = "text/html";
      resp.body_bytes = 512;
    } else {
      resp.status = 200;
      resp.content_type = std::string(mime_type(obj->type));
      resp.body_bytes = obj->size;
      resp.content = obj->content;
      think = obj->server_think * think_scale_;
    }
  }
  if (faults_ != nullptr) think = think + faults_->server_stall(sched_.now());
  sched_.schedule_after(think, [resp = std::move(resp),
                                respond = std::move(respond)]() mutable {
    respond(std::move(resp));
  });
}

}  // namespace parcel::web
