// Web object model: the units a page is assembled from (paper §2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "net/url.hpp"
#include "util/units.hpp"

namespace parcel::web {

using util::Bytes;
using util::Duration;

enum class ObjectType : std::uint8_t {
  kHtml,
  kCss,
  kJs,       // synchronous: blocks the parser until fetched and executed
  kJsAsync,  // async: does not block parsing; may run after onload
  kImage,
  kFont,
  kJson,  // XHR payloads
  kMedia,
};

[[nodiscard]] std::string_view to_string(ObjectType t);
[[nodiscard]] std::string_view mime_type(ObjectType t);
[[nodiscard]] ObjectType type_from_mime(std::string_view mime);

/// Is the body parseable text the proxy/browser must scan for
/// dependencies?
[[nodiscard]] bool is_parseable(ObjectType t);

struct WebObject {
  net::Url url;
  ObjectType type = ObjectType::kImage;
  Bytes size = 0;  // wire body size; equals content size for text types
  /// Actual body text for parseable types; shared so that servers, the
  /// proxy's bundle and the client's DOM reference one copy.
  std::shared_ptr<const std::string> content;
  /// JS execution cost in abstract work units (MiniJs charges these).
  double js_work = 0.0;
  /// Requested only after the onload event (async ad/widget cluster);
  /// drives the paper's OLT-vs-TLT distinction and the proxy's
  /// page-completion heuristic (§4.5).
  bool post_onload = false;
  /// Server-side generation latency for this object.
  Duration server_think = Duration::millis(25);

  [[nodiscard]] const std::string& text() const;
  [[nodiscard]] std::string key() const { return url.str(); }
};

}  // namespace parcel::web
