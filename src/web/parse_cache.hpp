// ParseCache: corpus-wide memoization of scan artifacts (HTML tokens,
// CSS references, JS programs).
//
// The evaluation grid re-runs the same immutable page snapshots under
// every scheme and round (§7), so each content string is tokenized many
// times — on the client engine and again on the proxy engine — with
// bit-identical results. This cache parses each distinct content once and
// shares the artifact read-only across every run and every
// ParallelRunner worker.
//
// Keying. An entry is addressed by the *content identity* of the scanned
// text: the (data pointer, length) of the string_view handed to the
// scanner. Corpus content lives in immutable std::shared_ptr<const
// std::string>s created once (generator / replay store), so a stable
// data pointer uniquely names the bytes; inline <script> bodies — views
// into the middle of a document — get distinct keys the same way. Every
// entry stores the owning shared_ptr ("pin"), which both keeps the
// borrowed string_views inside the artifact valid and guarantees the
// keyed address can never be recycled for different bytes while the
// entry exists.
//
// Concurrency. A fixed array of shards, each a mutex-guarded map of
// once-init slots: the first requester parses (outside the shard lock,
// guarded by the slot's once_flag), every later requester — on any
// thread — gets the same immutable artifact. Determinism is by
// construction: scanners are pure functions of the content bytes, so a
// cached artifact is byte-for-byte the artifact a fresh scan would
// produce; cache on/off and any --jobs value yield bitwise-identical
// RunResults.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "web/html.hpp"
#include "web/js.hpp"

namespace parcel::web {

class ParseCache {
 public:
  /// Process-wide cache instance shared by every engine.
  static ParseCache& instance();

  /// Global toggle (default on; PARCEL_PARSE_CACHE=0 in the environment
  /// disables it at startup). With the cache off every call scans fresh —
  /// results are bitwise identical either way.
  static void set_enabled(bool enabled);
  [[nodiscard]] static bool enabled();

  /// Memoized MiniHtml::scan. `pin` is the shared string the scanned view
  /// borrows from (usually the whole string); it is retained by the cache
  /// entry so token views stay valid. With a null pin or the cache
  /// disabled, the text is scanned fresh and the caller must keep the
  /// backing string alive while the artifact is in use.
  std::shared_ptr<const std::vector<HtmlToken>> html(
      std::string_view doc, const std::shared_ptr<const std::string>& pin);

  /// Memoized MiniCss::scan (same pinning contract as html()).
  std::shared_ptr<const std::vector<Reference>> css(
      std::string_view sheet, const std::shared_ptr<const std::string>& pin);

  /// Memoized MiniJs::run reference-extraction (same pinning contract).
  /// Also serves inline <script> bodies: the view into the surrounding
  /// document is the key, the document string is the pin.
  std::shared_ptr<const JsProgram> js(
      std::string_view code, const std::shared_ptr<const std::string>& pin);

  struct Stats {
    std::uint64_t html_hits = 0, html_misses = 0;
    std::uint64_t css_hits = 0, css_misses = 0;
    std::uint64_t js_hits = 0, js_misses = 0;
    [[nodiscard]] std::uint64_t hits() const {
      return html_hits + css_hits + js_hits;
    }
    [[nodiscard]] std::uint64_t misses() const {
      return html_misses + css_misses + js_misses;
    }
    [[nodiscard]] double hit_rate() const {
      std::uint64_t total = hits() + misses();
      return total == 0 ? 0.0 : static_cast<double>(hits()) /
                                    static_cast<double>(total);
    }
  };
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Drop every entry (and the content pins they hold). Outstanding
  /// artifact shared_ptrs stay valid — entries release, artifacts don't.
  void clear();

  /// Drop dead entries: those where this cache holds the *only* reference
  /// to the slot, the artifact, and the content pin. Such an entry can
  /// never hit again — its backing string is unreachable to any future
  /// caller, kept alive solely by the pin — so it is pure retained memory.
  /// Transient per-session content (bundle-unpacked objects, generated
  /// documents) lands here the moment its session ends; corpus content
  /// stays cached because its generator/replay-store owner still pins it.
  /// Releasing the pin may let the allocator recycle the keyed address,
  /// which is safe exactly because the entry is erased in the same step: a
  /// recycled address misses and re-inserts. Streaming fleet runs sweep
  /// once per epoch to keep memory bounded in K (DESIGN.md §12). Returns
  /// the number of entries dropped. Thread-safe; concurrent lookups hold
  /// slot/pin references and are skipped.
  /// Locks every shard through a std::unique_lock vector, a pattern the
  /// static lock analysis cannot express — hence the opt-out.
  std::size_t sweep_transient() PARCEL_NO_THREAD_SAFETY_ANALYSIS;

  /// Number of cached artifacts across all kinds (for tests/benches).
  [[nodiscard]] std::size_t size() const;

 private:
  ParseCache() = default;

  struct Key {
    const char* data = nullptr;
    std::size_t size = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Pointer identity already distributes well; fold in the length so
      // nested views starting at the same byte separate.
      return std::hash<const void*>{}(k.data) ^ (k.size * 0x9e3779b97f4a7c15ULL);
    }
  };

  /// One once-init slot per distinct content. `artifact` is written
  /// exactly once under `once`; `pin` keeps the scanned bytes (and the
  /// keyed address) alive for the entry's lifetime.
  template <typename T>
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const T> artifact;
    std::shared_ptr<const std::string> pin;
  };

  template <typename T>
  struct Table {
    std::unordered_map<Key, std::shared_ptr<Slot<T>>, KeyHash> slots;
  };

  struct Shard {
    mutable util::Mutex mutex;
    Table<std::vector<HtmlToken>> html PARCEL_GUARDED_BY(mutex);
    Table<std::vector<Reference>> css PARCEL_GUARDED_BY(mutex);
    Table<JsProgram> js PARCEL_GUARDED_BY(mutex);
  };

  static constexpr std::size_t kShards = 16;

  [[nodiscard]] Shard& shard_for(const Key& key) {
    return shards_[KeyHash{}(key) % kShards];
  }

  template <typename T, typename Scan>
  std::shared_ptr<const T> lookup(Table<T> Shard::*table, std::string_view text,
                                  const std::shared_ptr<const std::string>& pin,
                                  std::atomic<std::uint64_t>& hits,
                                  std::atomic<std::uint64_t>& misses,
                                  Scan scan);

  Shard shards_[kShards];
  std::atomic<std::uint64_t> html_hits_{0}, html_misses_{0};
  std::atomic<std::uint64_t> css_hits_{0}, css_misses_{0};
  std::atomic<std::uint64_t> js_hits_{0}, js_misses_{0};
};

}  // namespace parcel::web
