#include "web/js.hpp"

#include <charconv>
#include <stdexcept>

#include "util/strings.hpp"

namespace parcel::web {

namespace {

/// Extract the first quoted string in `s`, or empty.
std::string_view first_quoted(std::string_view s) {
  for (char quote : {'"', '\''}) {
    std::size_t open = s.find(quote);
    if (open == std::string_view::npos) continue;
    std::size_t close = s.find(quote, open + 1);
    if (close == std::string_view::npos) continue;
    return s.substr(open + 1, close - open - 1);
  }
  return {};
}

double parse_number(std::string_view s, std::string_view stmt) {
  s = util::trim(s);
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{}) {
    throw std::invalid_argument("MiniJs: bad number in: " + std::string(stmt));
  }
  (void)ptr;
  return value;
}

}  // namespace

JsProgram MiniJs::run(std::string_view code) {
  JsProgram prog;
  for (std::string_view raw : util::split(code, '\n')) {
    std::string_view line = util::trim(raw);
    if (line.empty() || line.starts_with("//")) continue;
    // Statement parsing cost: even boilerplate costs a little.
    prog.work_units += 0.01;

    if (line.starts_with("compute(")) {
      std::size_t close = line.find(')');
      if (close == std::string_view::npos) {
        throw std::invalid_argument("MiniJs: unterminated compute()");
      }
      prog.work_units += parse_number(line.substr(8, close - 8), line);
      continue;
    }
    if (line.starts_with("fetch(")) {
      std::string_view url = first_quoted(line);
      if (url.empty()) throw std::invalid_argument("MiniJs: fetch needs url");
      prog.references.push_back(
          Reference{url, infer_type(url, ObjectType::kJson), false, false});
      continue;
    }
    if (line.starts_with("fetchRand(")) {
      std::string_view url = first_quoted(line);
      if (url.empty()) {
        throw std::invalid_argument("MiniJs: fetchRand needs url");
      }
      prog.references.push_back(
          Reference{url, infer_type(url, ObjectType::kJson), false, true});
      continue;
    }
    if (line.starts_with("loadScript(")) {
      std::string_view url = first_quoted(line);
      if (url.empty()) {
        throw std::invalid_argument("MiniJs: loadScript needs url");
      }
      prog.references.push_back(
          Reference{url, ObjectType::kJs, false, false});
      continue;
    }
    if (line.starts_with("loadScriptAsync(")) {
      std::string_view url = first_quoted(line);
      if (url.empty()) {
        throw std::invalid_argument("MiniJs: loadScriptAsync needs url");
      }
      prog.references.push_back(
          Reference{url, ObjectType::kJsAsync, true, false});
      continue;
    }
    if (line.starts_with("document.write(")) {
      // The written markup contains at most one src attribute.
      std::size_t src = util::ifind(line, "src=");
      if (src != std::string_view::npos) {
        std::string_view rest = line.substr(src + 4);
        // The outer quote of document.write differs from the inner one.
        std::string_view url = first_quoted(rest);
        if (!url.empty()) {
          prog.references.push_back(Reference{
              url, infer_type(url, ObjectType::kImage), false, false});
        }
      }
      continue;
    }
    if (line.starts_with("onClick(")) {
      std::size_t comma = line.find(',');
      if (comma == std::string_view::npos) {
        throw std::invalid_argument("MiniJs: onClick needs (index, url)");
      }
      int idx = static_cast<int>(parse_number(line.substr(8, comma - 8), line));
      std::string_view url = first_quoted(line.substr(comma));
      if (url.empty()) throw std::invalid_argument("MiniJs: onClick needs url");
      prog.click_handlers.push_back(JsClickHandler{idx, url});
      // Handlers register cheaply; running one on a click costs more —
      // browsers charge that at interaction time.
      continue;
    }
    if (line.starts_with("var ") || line.ends_with(";")) {
      // Generic statement: tiny fixed cost already charged above.
      continue;
    }
    throw std::invalid_argument("MiniJs: unrecognized statement: " +
                                std::string(line));
  }
  return prog;
}

}  // namespace parcel::web
