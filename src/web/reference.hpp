// A discovered dependency: "this document mentions that URL".
#pragma once

#include <string>
#include <string_view>

#include "web/object.hpp"

namespace parcel::web {

struct Reference {
  std::string target;  // as written: absolute URL or path
  ObjectType expected_type = ObjectType::kImage;
  /// Async script: fetched without blocking the parser (<script async>).
  bool async = false;
  /// URL is randomized at execution time (cache-busting query); the
  /// replay normalizer must strip it (§7.3).
  bool randomized = false;

  bool operator==(const Reference&) const = default;
};

/// Guess an object type from the URL path extension; `fallback` applies
/// when the extension is unknown.
[[nodiscard]] ObjectType infer_type(std::string_view path,
                                    ObjectType fallback);

}  // namespace parcel::web
