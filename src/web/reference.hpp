// A discovered dependency: "this document mentions that URL".
#pragma once

#include <string_view>

#include "web/object.hpp"

namespace parcel::web {

struct Reference {
  /// As written in the document: absolute URL or path. Borrowed from the
  /// scanned text — valid only while the document's content string lives.
  /// Scan artifacts that outlive the scan (the parse cache, a ParseJob)
  /// must pin the backing string alongside the references.
  std::string_view target;
  ObjectType expected_type = ObjectType::kImage;
  /// Async script: fetched without blocking the parser (<script async>).
  bool async = false;
  /// URL is randomized at execution time (cache-busting query); the
  /// replay normalizer must strip it (§7.3).
  bool randomized = false;

  bool operator==(const Reference&) const = default;
};

/// Guess an object type from the URL path extension; `fallback` applies
/// when the extension is unknown.
[[nodiscard]] ObjectType infer_type(std::string_view path,
                                    ObjectType fallback);

}  // namespace parcel::web
