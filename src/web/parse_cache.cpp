#include "web/parse_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "web/css.hpp"

namespace parcel::web {

namespace {

bool initial_enabled() {
  // parcel-lint: allow(nondet-getenv) kill-switch read once at startup; cache on/off is bitwise-identical by test, so replay is unaffected
  const char* env = std::getenv("PARCEL_PARSE_CACHE");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{initial_enabled()};
  return flag;
}

}  // namespace

ParseCache& ParseCache::instance() {
  static ParseCache cache;
  return cache;
}

void ParseCache::set_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

bool ParseCache::enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

template <typename T, typename Scan>
std::shared_ptr<const T> ParseCache::lookup(
    Table<T> Shard::*table, std::string_view text,
    const std::shared_ptr<const std::string>& pin,
    std::atomic<std::uint64_t>& hits, std::atomic<std::uint64_t>& misses,
    Scan scan) {
  if (!enabled() || pin == nullptr) {
    // Uncached scan: the artifact still borrows from `text`; the caller
    // keeps the backing string alive.
    misses.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<const T>(scan(text));
  }

  Key key{text.data(), text.size()};
  Shard& shard = shard_for(key);
  std::shared_ptr<Slot<T>> slot;
  bool inserted = false;
  {
    util::MutexLock lock(shard.mutex);
    auto& slots = (shard.*table).slots;
    auto it = slots.find(key);
    if (it == slots.end()) {
      it = slots.emplace(key, std::make_shared<Slot<T>>()).first;
      it->second->pin = pin;  // pins the keyed bytes for the entry's life
      inserted = true;
    }
    slot = it->second;
  }
  // Parse outside the shard lock; call_once makes concurrent requesters
  // for the *same* content wait for one scan instead of racing duplicates.
  // The finished artifact is published under the shard mutex: concurrent
  // requesters already synchronize through the once-flag, but
  // sweep_transient() inspects artifact handles while holding every shard
  // lock, so the store must happen under that lock too.
  std::call_once(slot->once, [&] {
    auto artifact = std::make_shared<const T>(scan(text));
    util::MutexLock lock(shard.mutex);
    slot->artifact = std::move(artifact);
  });
  if (inserted) {
    misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits.fetch_add(1, std::memory_order_relaxed);
  }
  return slot->artifact;
}

std::shared_ptr<const std::vector<HtmlToken>> ParseCache::html(
    std::string_view doc, const std::shared_ptr<const std::string>& pin) {
  return lookup(&Shard::html, doc, pin, html_hits_, html_misses_,
                [](std::string_view text) { return MiniHtml::scan(text); });
}

std::shared_ptr<const std::vector<Reference>> ParseCache::css(
    std::string_view sheet, const std::shared_ptr<const std::string>& pin) {
  return lookup(&Shard::css, sheet, pin, css_hits_, css_misses_,
                [](std::string_view text) { return MiniCss::scan(text); });
}

std::shared_ptr<const JsProgram> ParseCache::js(
    std::string_view code, const std::shared_ptr<const std::string>& pin) {
  return lookup(&Shard::js, code, pin, js_hits_, js_misses_,
                [](std::string_view text) { return MiniJs::run(text); });
}

ParseCache::Stats ParseCache::stats() const {
  Stats s;
  s.html_hits = html_hits_.load(std::memory_order_relaxed);
  s.html_misses = html_misses_.load(std::memory_order_relaxed);
  s.css_hits = css_hits_.load(std::memory_order_relaxed);
  s.css_misses = css_misses_.load(std::memory_order_relaxed);
  s.js_hits = js_hits_.load(std::memory_order_relaxed);
  s.js_misses = js_misses_.load(std::memory_order_relaxed);
  return s;
}

void ParseCache::reset_stats() {
  html_hits_ = 0;
  html_misses_ = 0;
  css_hits_ = 0;
  css_misses_ = 0;
  js_hits_ = 0;
  js_misses_ = 0;
}

void ParseCache::clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    shard.html.slots.clear();
    shard.css.slots.clear();
    shard.js.slots.clear();
  }
}

std::size_t ParseCache::sweep_transient() {
  // Entries sharing one backing string (a document and the inline
  // <script> views keyed into it — possibly in different shards) hold
  // that string's use count above 1 forever, so deadness is a property
  // of the pin *group*, not of any single entry. All shard locks are
  // taken (fixed array order; lookup() never nests shard locks, so this
  // cannot deadlock), which freezes the tables: a group whose pin count
  // is fully accounted for by its member entries has no outside owner,
  // and no new outside reference can appear without an existing one.
  std::vector<std::unique_lock<util::Mutex>> locks;
  locks.reserve(kShards);
  for (Shard& shard : shards_) {
    locks.emplace_back(shard.mutex);
  }

  // Pass 1: per pinned string, count member entries and record whether
  // any member is externally referenced (a concurrent lookup holds the
  // slot; a live artifact still borrows views from the string).
  struct Group {
    long members = 0;
    long pin_uses = 0;
    bool external = false;
  };
  // parcel-lint: allow(unordered-iter) erase-only sweep; which entries die is order-independent and no simulated result observes the cache
  std::unordered_map<const std::string*, Group> groups;
  auto scan = [&groups](auto& table) {
    // parcel-lint: allow(unordered-iter) count-only pass; group totals are iteration-order independent and no simulated result observes the cache
    for (auto& entry : table.slots) {
      const auto& slot = entry.second;
      Group& g = groups[slot->pin.get()];
      ++g.members;
      g.pin_uses = slot->pin.use_count();
      if (slot.use_count() != 1 || slot->artifact.use_count() > 1) {
        g.external = true;
      }
    }
  };
  for (Shard& shard : shards_) {
    scan(shard.html);
    scan(shard.css);
    scan(shard.js);
  }

  // Pass 2: erase every member of each dead group. Deadness was decided
  // above — erasing members drops the pin count, so it must not be
  // re-read here.
  std::size_t dropped = 0;
  auto sweep = [&groups, &dropped](auto& table) {
    // parcel-lint: allow(unordered-iter) erase-only sweep; which entries die is order-independent and no simulated result observes the cache
    for (auto it = table.slots.begin(); it != table.slots.end();) {
      const Group& g = groups.at(it->second->pin.get());
      if (!g.external && g.pin_uses == g.members) {
        it = table.slots.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  };
  for (Shard& shard : shards_) {
    sweep(shard.html);
    sweep(shard.css);
    sweep(shard.js);
  }
  return dropped;
}

std::size_t ParseCache::size() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    n += shard.html.slots.size() + shard.css.slots.size() +
         shard.js.slots.size();
  }
  return n;
}

}  // namespace parcel::web
