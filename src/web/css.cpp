#include "web/css.hpp"

#include "util/strings.hpp"

namespace parcel::web {

namespace {

std::string_view unquote(std::string_view s) {
  s = util::trim(s);
  if (s.size() >= 2 && (s.front() == '"' || s.front() == '\'') &&
      s.back() == s.front()) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

}  // namespace

std::vector<Reference> MiniCss::scan(std::string_view css_raw) {
  // Comments are treated as whitespace so url(...) inside them is never
  // matched. Most corpus stylesheets carry none, so the raw text is
  // scanned directly — zero copies. Otherwise a same-length blanked copy
  // drives the matching, and every extracted target is mapped back to its
  // byte range in `css_raw`: the returned views always alias the caller's
  // string, never scanner-local storage.
  std::string cleaned;
  std::string_view css = css_raw;
  if (css_raw.find("/*") != std::string_view::npos) {
    cleaned.assign(css_raw);
    std::size_t c = 0;
    while ((c = cleaned.find("/*", c)) != std::string::npos) {
      std::size_t end = cleaned.find("*/", c + 2);
      std::size_t stop = end == std::string::npos ? cleaned.size() : end + 2;
      for (std::size_t i = c; i < stop; ++i) cleaned[i] = ' ';
      c = stop;
    }
    css = cleaned;
  }
  auto original = [&](std::string_view target) {
    return css_raw.substr(
        static_cast<std::size_t>(target.data() - css.data()), target.size());
  };

  std::vector<Reference> refs;
  std::size_t pos = 0;
  while (pos < css.size()) {
    std::size_t imp = util::ifind(css, "@import", pos);
    std::size_t url = util::ifind(css, "url(", pos);
    if (imp != std::string_view::npos && (url == std::string_view::npos || imp < url)) {
      std::size_t semi = css.find(';', imp);
      if (semi == std::string_view::npos) break;
      std::string_view clause = css.substr(imp + 7, semi - imp - 7);
      // Either @import "x.css" or @import url("x.css").
      std::size_t u = util::ifind(clause, "url(");
      std::string_view target;
      if (u != std::string_view::npos) {
        std::size_t close = clause.find(')', u);
        if (close != std::string_view::npos) {
          target = unquote(clause.substr(u + 4, close - u - 4));
        }
      } else {
        target = unquote(clause);
      }
      if (!target.empty()) {
        refs.push_back(Reference{original(target), ObjectType::kCss,
                                 false, false});
      }
      pos = semi + 1;
      continue;
    }
    if (url == std::string_view::npos) break;
    std::size_t close = css.find(')', url);
    if (close == std::string_view::npos) break;
    std::string_view target = unquote(css.substr(url + 4, close - url - 4));
    if (!target.empty()) {
      refs.push_back(Reference{original(target),
                               infer_type(target, ObjectType::kImage), false,
                               false});
    }
    pos = close + 1;
  }
  return refs;
}

}  // namespace parcel::web
