#include "web/generator.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/strings.hpp"
#include "web/css.hpp"
#include "web/js.hpp"

namespace parcel::web {

namespace {

using util::Rng;
using util::ssprintf;

/// Internal build-time descriptor; index into the descriptor vector is the
/// object's identity while wiring the dependency tree.
struct Node {
  ObjectType type = ObjectType::kImage;
  std::string url;
  int parent = -1;  // index of the referencing object; -1 = main HTML
  bool async_subtree = false;
  bool randomized = false;
  Bytes size = 0;
  double js_work = 0.0;
  std::vector<int> children;
};

Bytes sample_size(Rng& rng, ObjectType type) {
  // Mixture tuned so that, after the per-page rescale to the page byte
  // budget, corpus-wide object sizes roughly track the paper's
  // p50/p80/p95 of 18/107/386 KB.
  switch (type) {
    case ObjectType::kHtml:
      return static_cast<Bytes>(rng.lognormal(std::log(100e3), 0.5));
    case ObjectType::kCss:
      return static_cast<Bytes>(rng.lognormal(std::log(45e3), 0.7));
    case ObjectType::kJs:
    case ObjectType::kJsAsync:
      return static_cast<Bytes>(rng.lognormal(std::log(55e3), 0.9));
    case ObjectType::kImage: {
      double r = rng.uniform(0.0, 1.0);
      if (r < 0.62) return static_cast<Bytes>(rng.lognormal(std::log(22e3), 0.9));
      if (r < 0.92) return static_cast<Bytes>(rng.lognormal(std::log(170e3), 0.6));
      return static_cast<Bytes>(rng.lognormal(std::log(600e3), 0.5));
    }
    case ObjectType::kFont:
      return static_cast<Bytes>(rng.lognormal(std::log(70e3), 0.4));
    case ObjectType::kJson:
      return static_cast<Bytes>(rng.lognormal(std::log(12e3), 0.8));
    case ObjectType::kMedia:
      return static_cast<Bytes>(rng.lognormal(std::log(1200e3), 0.5));
  }
  return 10'000;
}

std::string pad_block(std::string_view open, std::string_view fill,
                      std::string_view close, std::size_t target) {
  std::string out(open);
  while (out.size() + close.size() < target) {
    std::size_t need = target - close.size() - out.size();
    out.append(fill.substr(0, std::min(fill.size(), need)));
  }
  out += close;
  return out;
}

}  // namespace

PageSpec PageGenerator::interactive_spec(std::uint64_t seed) {
  PageSpec spec;
  spec.site = "shop.example.com";
  spec.object_count = 120;
  spec.total_bytes = mib(2.4);
  spec.extra_domains = 8;
  spec.gallery_items = 8;
  spec.seed = seed;
  return spec;
}

PageSpec PageGenerator::heavyweight_spec(std::uint64_t seed) {
  PageSpec spec;
  spec.site = "megamart.example.com";
  spec.object_count = 400;
  spec.total_bytes = mib(3.5);
  spec.extra_domains = 12;
  spec.seed = seed;
  return spec;
}

PageSpec PageGenerator::sample_spec(int index) {
  PageSpec spec;
  spec.site = ssprintf("site%02d.example.com", index);
  double z_count = corpus_rng_.normal(0.0, 1.0);
  spec.object_count = static_cast<int>(
      std::clamp(88.0 * std::exp(0.62 * z_count), 15.0, 450.0));
  double z_size =
      0.7 * z_count + 0.714 * corpus_rng_.normal(0.0, 1.0);
  spec.total_bytes = static_cast<Bytes>(std::clamp(
      1.04e6 * std::exp(0.85 * z_size), 60e3, 5.0e6));
  spec.extra_domains =
      static_cast<int>(corpus_rng_.uniform_int(3, 12));
  spec.sync_js_fraction = corpus_rng_.uniform(0.45, 0.7);
  spec.seed = corpus_rng_.next_u64();
  return spec;
}

PageSpec PageGenerator::live_variant(const PageSpec& base, int reload) {
  PageSpec spec = base;
  util::Rng rng(base.seed ^ (0x9e3779b97f4a7c15ULL * (reload + 1)));
  // Ads/widgets rotate: the object census swings around the base census
  // hard enough to reproduce the paper's CoV >= 0.5 observation.
  double count_factor = std::exp(rng.normal(0.0, 0.5));
  double size_factor = std::exp(rng.normal(0.0, 0.45));
  spec.object_count = std::clamp(
      static_cast<int>(base.object_count * count_factor), 10, 600);
  spec.total_bytes = std::clamp<Bytes>(
      static_cast<Bytes>(static_cast<double>(base.total_bytes) * size_factor),
      50'000, 8'000'000);
  spec.seed = rng.next_u64();
  return spec;
}

WebPage PageGenerator::follow_page(const WebPage& first, std::uint64_t seed,
                                   int index) {
  Rng rng(seed ^ (0xabcdef1234567ULL + static_cast<std::uint64_t>(index)));
  std::string site = first.main_url().host();
  net::Url main_url =
      net::Url::parse(ssprintf("http://%s/p%d.html", site.c_str(), index));
  WebPage page(main_url);

  // Framework assets carried over from the landing page, plus their
  // transitive dependencies (a shared stylesheet pulls its images and
  // fonts; a shared script pulls what it loads).
  std::vector<const WebObject*> roots;
  for (const WebObject* obj : first.objects()) {
    if (obj->type == ObjectType::kCss ||
        (obj->type == ObjectType::kJs && rng.bernoulli(0.7))) {
      roots.push_back(obj);
    }
  }
  std::vector<const WebObject*> work(roots);
  std::set<std::string> included;
  while (!work.empty()) {
    const WebObject* obj = work.back();
    work.pop_back();
    if (!included.insert(obj->url.str()).second) continue;
    page.add(*obj);
    std::vector<Reference> refs;
    if (obj->type == ObjectType::kCss) {
      refs = MiniCss::scan(obj->text());
    } else if (obj->type == ObjectType::kJs ||
               obj->type == ObjectType::kJsAsync) {
      refs = MiniJs::run(obj->text()).references;
    }
    for (const Reference& ref : refs) {
      const WebObject* child = first.find(obj->url.resolve(ref.target));
      if (child != nullptr) work.push_back(child);
    }
  }

  // Fresh content unique to this page: article images (modest sizes —
  // interior pages are lighter than landing pages).
  std::vector<std::string> new_imgs;
  int image_count = 6 + static_cast<int>(rng.uniform_int(0, 10));
  for (int i = 0; i < image_count; ++i) {
    WebObject img;
    img.url = net::Url::parse(
        ssprintf("http://%s/p%d/img%02d.jpg", site.c_str(), index, i));
    img.type = ObjectType::kImage;
    img.size = std::clamp<Bytes>(sample_size(rng, ObjectType::kImage), 3'000,
                                 kib(35));
    img.server_think =
        Duration::millis(std::clamp(rng.exponential(45.0), 5.0, 250.0));
    new_imgs.push_back(img.url.str());
    page.add(std::move(img));
  }

  // The new main document referencing shared assets + fresh images.
  std::string text = "<!DOCTYPE html>\n<html>\n<head>\n";
  text += ssprintf("<title>%s page %d</title>\n", site.c_str(), index);
  int head_scripts = 0;
  for (const WebObject* obj : roots) {
    if (obj->type == ObjectType::kCss) {
      text += ssprintf("<link rel=\"stylesheet\" href=\"%s\">\n",
                       obj->url.str().c_str());
    } else if (head_scripts < 3) {
      text += ssprintf("<script src=\"%s\"></script>\n",
                       obj->url.str().c_str());
      ++head_scripts;
    }
  }
  text += "</head>\n<body>\n";
  for (const std::string& img : new_imgs) {
    text += ssprintf("<img src=\"%s\">\n", img.c_str());
  }
  int body_scripts = 0;
  for (const WebObject* obj : roots) {
    if (obj->type != ObjectType::kCss && body_scripts++ >= head_scripts &&
        // Only re-reference top-level scripts; chained ones arrive via
        // their parents' loadScript calls.
        obj->url.path().find("/js/") == 0) {
      text += ssprintf("<script src=\"%s\"></script>\n",
                       obj->url.str().c_str());
    }
  }
  text += "</body>\n</html>\n";
  WebObject html;
  html.url = main_url;
  html.type = ObjectType::kHtml;
  Bytes target = std::max<Bytes>(static_cast<Bytes>(text.size()), kib(35));
  if (static_cast<Bytes>(text.size()) < target) {
    text += "\n";
    text += pad_block("<!-- ", "filler filler ", " -->",
                      static_cast<std::size_t>(target) - text.size() - 1);
  }
  html.size = static_cast<Bytes>(text.size());
  html.content = std::make_shared<const std::string>(std::move(text));
  html.server_think = Duration::millis(30);
  page.add(std::move(html));
  return page;
}

std::vector<PageSpec> PageGenerator::corpus_specs(int pages) {
  std::vector<PageSpec> specs;
  specs.reserve(static_cast<std::size_t>(pages));
  for (int i = 0; i < pages; ++i) specs.push_back(sample_spec(i));
  return specs;
}

std::string_view to_string(PageMix mix) {
  switch (mix) {
    case PageMix::kAlexa34: return "alexa34";
    case PageMix::kAdHeavy: return "ad-heavy";
    case PageMix::kSpa: return "spa";
    case PageMix::kLargeObject: return "large-object";
  }
  return "?";
}

std::vector<PageSpec> PageGenerator::mix_specs(PageMix mix, int pages) {
  if (mix == PageMix::kAlexa34) return corpus_specs(pages);
  if (pages <= 0) {
    throw std::invalid_argument("mix_specs: pages must be positive");
  }
  std::vector<PageSpec> specs;
  specs.reserve(static_cast<std::size_t>(pages));
  for (int i = 0; i < pages; ++i) {
    PageSpec spec;
    switch (mix) {
      case PageMix::kAdHeavy:
        // Ad/tracker-saturated front page: hundreds of small objects
        // spread across third-party domains, mostly async widget JS.
        // Many tiny objects -> bundle boundaries are cheap to hit and
        // the per-bundle RRC stalls dominate.
        spec.site = ssprintf("ads%02d.example.com", i);
        spec.object_count =
            static_cast<int>(corpus_rng_.uniform_int(160, 380));
        spec.total_bytes = static_cast<Bytes>(
            corpus_rng_.uniform(1.2e6, 3.2e6));
        spec.extra_domains =
            static_cast<int>(corpus_rng_.uniform_int(14, 24));
        spec.sync_js_fraction = corpus_rng_.uniform(0.2, 0.35);
        spec.max_js_chain_depth = 3;
        break;
      case PageMix::kSpa:
        // Single-page app shell: a lean object census but long
        // synchronous script chains — discovery is serialized behind JS
        // execution, so bytes trickle into the proxy.
        spec.site = ssprintf("spa%02d.example.com", i);
        spec.object_count =
            static_cast<int>(corpus_rng_.uniform_int(18, 42));
        spec.total_bytes = static_cast<Bytes>(
            corpus_rng_.uniform(0.5e6, 1.4e6));
        spec.extra_domains =
            static_cast<int>(corpus_rng_.uniform_int(2, 5));
        spec.sync_js_fraction = corpus_rng_.uniform(0.8, 0.95);
        spec.max_js_chain_depth = 8;
        break;
      case PageMix::kLargeObject:
        // Hero-asset page: a handful of multi-MB media objects; the
        // page budget dwarfs any fixed threshold, so serialization wait
        // dominates the schedule.
        spec.site = ssprintf("big%02d.example.com", i);
        spec.object_count =
            static_cast<int>(corpus_rng_.uniform_int(10, 24));
        spec.total_bytes = static_cast<Bytes>(
            corpus_rng_.uniform(3.0e6, 7.5e6));
        spec.extra_domains =
            static_cast<int>(corpus_rng_.uniform_int(1, 4));
        spec.sync_js_fraction = corpus_rng_.uniform(0.3, 0.5);
        spec.max_js_chain_depth = 4;
        break;
      case PageMix::kAlexa34:
        break;  // handled above
    }
    spec.seed = corpus_rng_.next_u64();
    specs.push_back(std::move(spec));
  }
  return specs;
}

WebPage PageGenerator::generate(const PageSpec& spec) {
  if (spec.object_count < 8) {
    throw std::invalid_argument("PageSpec: need at least 8 objects");
  }
  Rng rng(spec.seed);

  // --- Domains ------------------------------------------------------
  std::vector<std::string> domains{spec.site};
  const char* templates[] = {"cdn.%s",     "static.%s",  "img.%s",
                             "api.%s",     "media.%s",   "assets.%s"};
  const char* third_party[] = {"ads.adnet.example",  "widgets.social.example",
                               "metrics.tracker.example",
                               "fonts.cdnlib.example"};
  int extra = std::max(1, spec.extra_domains);
  for (int i = 0; i < extra; ++i) {
    if (i < static_cast<int>(std::size(templates))) {
      domains.push_back(ssprintf(templates[i], spec.site.c_str()));
    } else {
      std::size_t tp = static_cast<std::size_t>(i) % std::size(third_party);
      std::string candidate = third_party[tp];
      if (std::find(domains.begin(), domains.end(), candidate) ==
          domains.end()) {
        domains.push_back(candidate);
      }
    }
  }
  std::string ads_domain = "ads.adnet.example";
  if (std::find(domains.begin(), domains.end(), ads_domain) == domains.end()) {
    domains.push_back(ads_domain);
  }

  auto content_domain = [&](ObjectType t) -> const std::string& {
    switch (t) {
      case ObjectType::kHtml:
        return domains[0];
      case ObjectType::kCss:
      case ObjectType::kJs:
      case ObjectType::kJsAsync: {
        // main or static-ish domains
        std::size_t i = static_cast<std::size_t>(rng.uniform_int(
            0, std::min<std::int64_t>(2, static_cast<std::int64_t>(domains.size()) - 1)));
        return domains[i];
      }
      case ObjectType::kJson:
        return domains[std::min<std::size_t>(4, domains.size() - 1)];
      default: {
        std::size_t i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(domains.size()) - 1));
        return domains[i];
      }
    }
  };

  // --- Object census -------------------------------------------------
  int n = spec.object_count;
  int css_count = std::clamp(static_cast<int>(std::lround(n * 0.06)), 2, 10);
  int js_total = std::clamp(static_cast<int>(std::lround(n * 0.22)), 4, 70);
  int sync_js = std::max(2, static_cast<int>(std::lround(
                                js_total * spec.sync_js_fraction)));
  int async_js = std::max(1, js_total - sync_js);
  js_total = sync_js + async_js;
  int json_count = std::clamp(static_cast<int>(std::lround(n * 0.05)), 1, 14);
  int font_count = std::clamp(static_cast<int>(std::lround(n * 0.03)), 0, 6);
  int image_count =
      n - 1 - css_count - js_total - json_count - font_count;
  if (image_count < 1) {
    image_count = 1;
  }

  std::vector<Node> nodes;
  nodes.reserve(static_cast<std::size_t>(n) + 4);

  auto add_node = [&](ObjectType type, const char* dir, const char* ext,
                      int parent) -> int {
    Node node;
    node.type = type;
    int id = static_cast<int>(nodes.size());
    node.url = ssprintf("http://%s/%s/o%03d.%s",
                        content_domain(type).c_str(), dir, id, ext);
    node.parent = parent;
    node.size = std::max<Bytes>(400, sample_size(rng, type));
    nodes.push_back(std::move(node));
    if (parent >= 0) nodes[static_cast<std::size_t>(parent)].children.push_back(id);
    return id;
  };

  // Root HTML (index 0).
  {
    Node root;
    root.type = ObjectType::kHtml;
    root.url = ssprintf("http://%s/", spec.site.c_str());
    root.size = std::max<Bytes>(8'000, sample_size(rng, ObjectType::kHtml));
    nodes.push_back(std::move(root));
  }

  std::vector<int> css_ids, sync_js_ids, async_js_ids;
  for (int i = 0; i < css_count; ++i) {
    int parent = 0;
    // Some stylesheets arrive via @import from earlier ones — another
    // sequential-discovery chain DIR pays RTTs for.
    if (i >= 2 && rng.bernoulli(0.3)) {
      parent = css_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(css_ids.size()) - 1))];
    }
    css_ids.push_back(add_node(ObjectType::kCss, "css", "css", parent));
  }
  for (int i = 0; i < sync_js; ++i) {
    int parent = 0;
    // Chain: later sync scripts are often loaded by earlier ones
    // (loadScript), creating the multi-RTT discovery the paper blames
    // for flat segments in DIR's timeline (Fig 6a).
    if (i >= 2 && rng.bernoulli(0.65)) {
      parent = sync_js_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sync_js_ids.size()) - 1))];
      // Cap chain depth.
      int depth = 0;
      for (int p = parent; p > 0; p = nodes[static_cast<std::size_t>(p)].parent) ++depth;
      if (depth >= spec.max_js_chain_depth) parent = 0;
    }
    sync_js_ids.push_back(add_node(ObjectType::kJs, "js", "js", parent));
  }
  for (int i = 0; i < async_js; ++i) {
    int id = add_node(ObjectType::kJsAsync, "js", "js", 0);
    nodes[static_cast<std::size_t>(id)].async_subtree = true;
    // Ads and widgets live on third-party domains.
    nodes[static_cast<std::size_t>(id)].url =
        ssprintf("http://%s/js/ad%03d.js", ads_domain.c_str(), id);
    async_js_ids.push_back(id);
  }
  for (int i = 0; i < font_count; ++i) {
    int parent = css_ids[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(css_ids.size()) - 1))];
    add_node(ObjectType::kFont, "fonts", "woff2", parent);
  }
  for (int i = 0; i < json_count; ++i) {
    bool via_async = !async_js_ids.empty() && rng.bernoulli(0.35);
    const auto& pool = via_async ? async_js_ids : sync_js_ids;
    int parent = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    int id = add_node(ObjectType::kJson, "api", "json", parent);
    nodes[static_cast<std::size_t>(id)].randomized = rng.bernoulli(0.2);
  }
  for (int i = 0; i < image_count; ++i) {
    // Most images hide behind CSS and JS on modern pages — the browser
    // only learns about them after fetching and processing those parents.
    double r = rng.uniform(0.0, 1.0);
    int parent = 0;
    if (r < 0.35 || css_ids.empty()) {
      parent = 0;
    } else if (r < 0.60) {
      parent = css_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(css_ids.size()) - 1))];
    } else if (r < 0.90 && !sync_js_ids.empty()) {
      parent = sync_js_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(sync_js_ids.size()) - 1))];
    } else if (!async_js_ids.empty()) {
      parent = async_js_ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(async_js_ids.size()) - 1))];
    }
    add_node(ObjectType::kImage, "img", "jpg", parent);
  }

  // Gallery for the interactive experiment: a sync script that fetches
  // product images via document.write and registers click handlers over
  // them, so clicks resolve locally from cache (PARCEL/DIR) or remotely
  // (CB).
  int gallery_js = -1;
  std::vector<int> gallery_imgs;
  if (spec.gallery_items > 0) {
    gallery_js = add_node(ObjectType::kJs, "js", "js", 0);
    for (int i = 0; i < spec.gallery_items; ++i) {
      int id = add_node(ObjectType::kImage, "img", "jpg", gallery_js);
      nodes[static_cast<std::size_t>(id)].size =
          std::max<Bytes>(nodes[static_cast<std::size_t>(id)].size, kib(120));
      gallery_imgs.push_back(id);
    }
  }

  // Propagate async_subtree down the tree (children of async scripts are
  // the paper's post-onload objects).
  for (auto& node : nodes) {
    int p = node.parent;
    while (p >= 0) {
      if (nodes[static_cast<std::size_t>(p)].async_subtree) {
        node.async_subtree = true;
        break;
      }
      p = nodes[static_cast<std::size_t>(p)].parent;
    }
  }

  // --- Rescale sizes to the page budget -------------------------------
  Bytes raw_total = 0;
  for (const auto& node : nodes) raw_total += node.size;
  double scale = static_cast<double>(spec.total_bytes) /
                 static_cast<double>(raw_total);
  scale = std::clamp(scale, 0.1, 10.0);
  for (auto& node : nodes) {
    node.size = std::max<Bytes>(
        300, static_cast<Bytes>(static_cast<double>(node.size) * scale));
  }

  // --- Emit content ----------------------------------------------------
  auto url_of = [&](int id) { return nodes[static_cast<std::size_t>(id)].url; };

  auto pad_to = [](std::string text, Bytes target, std::string_view open,
                   std::string_view fill, std::string_view close) {
    if (static_cast<Bytes>(text.size()) < target) {
      auto pad = static_cast<std::size_t>(target) - text.size();
      if (pad > open.size() + close.size() + 1) {
        text += "\n";
        text += pad_block(open, fill, close, pad - 1);
      } else {
        text.append(pad, ' ');
      }
    }
    return text;
  };

  WebPage page(net::Url::parse(ssprintf("http://%s/", spec.site.c_str())));

  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    Node& node = nodes[idx];
    WebObject obj;
    obj.url = net::Url::parse(node.url);
    obj.type = node.type;
    obj.post_onload = node.async_subtree;
    obj.server_think = Duration::millis(
        std::clamp(rng.exponential(45.0), 5.0, 250.0));

    std::string text;
    switch (node.type) {
      case ObjectType::kHtml: {
        text += "<!DOCTYPE html>\n<html>\n<head>\n";
        text += ssprintf("<title>%s</title>\n", spec.site.c_str());
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          switch (c.type) {
            case ObjectType::kCss:
              text += ssprintf(
                  "<link rel=\"stylesheet\" href=\"%s\">\n", c.url.c_str());
              break;
            default:
              break;
          }
        }
        // Head scripts: the first few sync scripts block early parsing,
        // as on real pages (frameworks loaded in <head>).
        constexpr int kHeadScripts = 4;
        int head_emitted = 0;
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          if (c.type == ObjectType::kJs && head_emitted < kHeadScripts) {
            text += ssprintf("<script src=\"%s\"></script>\n", c.url.c_str());
            ++head_emitted;
          }
        }
        text += "</head>\n<body>\n";
        text += "<script>\ncompute(0.5);\n</script>\n";
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          switch (c.type) {
            case ObjectType::kImage:
              text += ssprintf("<img src=\"%s\">\n", c.url.c_str());
              break;
            case ObjectType::kMedia:
              text += ssprintf("<video src=\"%s\"></video>\n", c.url.c_str());
              break;
            default:
              break;
          }
        }
        int body_emitted = 0;
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          if (c.type == ObjectType::kJs) {
            if (body_emitted++ < 4) continue;  // already in head
            text += ssprintf("<script src=\"%s\"></script>\n", c.url.c_str());
          } else if (c.type == ObjectType::kJsAsync) {
            text += ssprintf("<script async src=\"%s\"></script>\n",
                             c.url.c_str());
          }
        }
        text += "</body>\n</html>\n";
        text = pad_to(std::move(text), node.size, "<!-- ",
                      "filler filler filler ", " -->");
        break;
      }
      case ObjectType::kCss: {
        text += ssprintf("/* stylesheet %03zu */\n", idx);
        text += "body { margin: 0; font-family: sans-serif; }\n";
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          if (c.type == ObjectType::kCss) {
            text += ssprintf("@import url(\"%s\");\n", c.url.c_str());
          } else if (c.type == ObjectType::kFont) {
            text += ssprintf(
                "@font-face { font-family: f%d; src: url(\"%s\"); }\n", child,
                c.url.c_str());
          } else {
            text += ssprintf(".bg%d { background-image: url(\"%s\"); }\n",
                             child, c.url.c_str());
          }
        }
        text = pad_to(std::move(text), node.size, "/* ", "filler ", " */");
        break;
      }
      case ObjectType::kJs:
      case ObjectType::kJsAsync: {
        text += ssprintf("// module o%03zu\n", idx);
        // Computation proportional to code size: ~0.09 units per KB puts
        // client-side JS time in the couple-of-seconds range per typical
        // page on a 12-units/s handset, a 2013-era figure.
        double work = static_cast<double>(node.size) / 1024.0 * 0.09;
        text += ssprintf("compute(%.3f);\n", work);
        for (int child : node.children) {
          const Node& c = nodes[static_cast<std::size_t>(child)];
          switch (c.type) {
            case ObjectType::kJs:
              text += ssprintf("loadScript(\"%s\");\n", c.url.c_str());
              break;
            case ObjectType::kJsAsync:
              text += ssprintf("loadScriptAsync(\"%s\");\n", c.url.c_str());
              break;
            case ObjectType::kJson:
              if (c.randomized) {
                text += ssprintf("fetchRand(\"%s\");\n", c.url.c_str());
              } else {
                text += ssprintf("fetch(\"%s\");\n", c.url.c_str());
              }
              break;
            case ObjectType::kImage:
            case ObjectType::kMedia:
              text += ssprintf("document.write('<img src=\"%s\">');\n",
                               c.url.c_str());
              break;
            default:
              break;
          }
        }
        if (static_cast<int>(idx) == gallery_js) {
          for (std::size_t g = 0; g < gallery_imgs.size(); ++g) {
            text += ssprintf("onClick(%zu, \"%s\");\n", g,
                             url_of(gallery_imgs[g]).c_str());
          }
        }
        text = pad_to(std::move(text), node.size, "// ", "filler ", "\n");
        break;
      }
      case ObjectType::kJson: {
        text = ssprintf("{\"id\": %zu, \"data\": [", idx);
        text = pad_to(std::move(text), node.size, "\"", "x", "\"]}");
        break;
      }
      default:
        break;  // opaque body
    }

    if (is_parseable(node.type) || node.type == ObjectType::kJson) {
      obj.size = static_cast<Bytes>(text.size());
      obj.content = std::make_shared<const std::string>(std::move(text));
      if (node.type == ObjectType::kJs || node.type == ObjectType::kJsAsync) {
        obj.js_work = MiniJs::work_of(*obj.content);
      }
    } else {
      obj.size = node.size;
    }
    page.add(std::move(obj));
  }
  return page;
}

}  // namespace parcel::web
