#include "web/mhtml.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace parcel::web {

namespace {
constexpr std::string_view kBoundary = "----=_ParcelBundleBoundary";
constexpr std::string_view kHeader =
    "MIME-Version: 1.0\r\n"
    "Content-Type: multipart/related; boundary=\"----=_ParcelBundleBoundary\"\r\n"
    "\r\n";
}  // namespace

void MhtmlWriter::add(const WebObject& object) {
  add_raw(object.url, std::string(mime_type(object.type)), object.size,
          object.content);
}

void MhtmlWriter::add_raw(const net::Url& location,
                          const std::string& content_type, Bytes body_size,
                          std::shared_ptr<const std::string> content) {
  MhtmlPart part;
  part.location = location;
  part.content_type = content_type;
  part.body_size = body_size;
  part.content = std::move(content);
  parts_.push_back(std::move(part));
}

Bytes MhtmlWriter::payload_bytes() const {
  Bytes n = 0;
  for (const auto& p : parts_) n += p.body_size;
  return n;
}

std::string MhtmlWriter::serialize() const {
  std::string out(kHeader);
  for (const auto& p : parts_) {
    out += "--";
    out += kBoundary;
    out += "\r\n";
    out += "Content-Location: " + p.location.str() + "\r\n";
    out += "Content-Type: " + p.content_type + "\r\n";
    out += util::ssprintf("Content-Length: %lld\r\n",
                          static_cast<long long>(p.body_size));
    out += p.content ? "X-Parcel-Body: text\r\n" : "X-Parcel-Body: opaque\r\n";
    out += "\r\n";
    if (p.content) {
      out += *p.content;
    } else {
      out.append(static_cast<std::size_t>(p.body_size), 'x');
    }
    out += "\r\n";
  }
  out += "--";
  out += kBoundary;
  out += "--\r\n";
  return out;
}

std::vector<MhtmlPart> MhtmlReader::parse(const std::string& text) {
  std::vector<MhtmlPart> parts;
  std::string delim = "--" + std::string(kBoundary);
  std::size_t pos = text.find(delim);
  if (pos == std::string::npos) {
    throw std::invalid_argument("MhtmlReader: no boundary found");
  }
  while (true) {
    pos += delim.size();
    if (text.compare(pos, 2, "--") == 0) break;  // terminator
    if (text.compare(pos, 2, "\r\n") != 0) {
      throw std::invalid_argument("MhtmlReader: malformed boundary line");
    }
    pos += 2;
    // Headers until blank line.
    MhtmlPart part;
    bool opaque = true;
    while (true) {
      std::size_t eol = text.find("\r\n", pos);
      if (eol == std::string::npos) {
        throw std::invalid_argument("MhtmlReader: truncated headers");
      }
      std::string_view line(text.data() + pos, eol - pos);
      pos = eol + 2;
      if (line.empty()) break;
      auto colon = line.find(':');
      if (colon == std::string_view::npos) {
        throw std::invalid_argument("MhtmlReader: bad header line");
      }
      std::string_view name = line.substr(0, colon);
      std::string_view value = util::trim(line.substr(colon + 1));
      if (util::iequals(name, "Content-Location")) {
        part.location = net::Url::parse(value);
      } else if (util::iequals(name, "Content-Type")) {
        part.content_type = std::string(value);
      } else if (util::iequals(name, "Content-Length")) {
        part.body_size = std::stoll(std::string(value));
      } else if (util::iequals(name, "X-Parcel-Body")) {
        opaque = util::iequals(value, "opaque");
      }
    }
    if (pos + static_cast<std::size_t>(part.body_size) + 2 > text.size()) {
      throw std::invalid_argument("MhtmlReader: truncated body");
    }
    if (!opaque) {
      part.content = std::make_shared<const std::string>(
          text.substr(pos, static_cast<std::size_t>(part.body_size)));
    }
    pos += static_cast<std::size_t>(part.body_size);
    if (text.compare(pos, 2, "\r\n") != 0) {
      throw std::invalid_argument("MhtmlReader: missing body terminator");
    }
    pos += 2;
    std::size_t next = text.find(delim, pos);
    if (next == std::string::npos) {
      throw std::invalid_argument("MhtmlReader: missing next boundary");
    }
    pos = next;
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace parcel::web
