// PageGenerator: synthesizes realistic page corpora.
//
// The paper evaluates on 34 pages drawn from the Alexa top-500 and
// publishes the corpus statistics we target (§2.1, §7.2): 40% of pages
// have >= 100 objects (and >= 20 JS files); object sizes have
// p50/p80/p95 = 18/107/386 KB; the median page is 1.04 MB and pages range
// from a few KB to 5 MB; objects spread over many domains; some objects
// are only discoverable by executing JS; async ad/widget scripts request
// objects after onload. Generated pages carry real HTML/CSS/JS text in
// the MiniJs dialect so every browser and the PARCEL proxy do actual
// scanning work to discover the dependency graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "web/page.hpp"

namespace parcel::web {

using util::kib;
using util::mib;

struct PageSpec {
  std::string site = "site00.example.com";
  int object_count = 80;
  Bytes total_bytes = mib(1.0);
  int extra_domains = 6;
  double sync_js_fraction = 0.55;
  int max_js_chain_depth = 5;
  /// Product-gallery items wired to onClick handlers (the §8.2
  /// interactive-session page); 0 disables.
  int gallery_items = 0;
  std::uint64_t seed = 1;
};

/// Workload families beyond the paper's Alexa-34 statistics (ISSUE 10):
/// the page-structure regimes the adaptive-bundling controller is
/// stressed against, each shifting where the optimal bundle size lands.
enum class PageMix : std::uint8_t {
  kAlexa34,      // the paper's corpus distributions (corpus_specs)
  kAdHeavy,      // many small objects across many ad/tracker domains
  kSpa,          // app shell: few objects, deep synchronous JS chains
  kLargeObject,  // a handful of multi-MB hero assets
};

[[nodiscard]] std::string_view to_string(PageMix mix);

class PageGenerator {
 public:
  explicit PageGenerator(std::uint64_t corpus_seed)
      : corpus_rng_(corpus_seed) {}

  /// Deterministically generate one page from a spec.
  static WebPage generate(const PageSpec& spec);

  /// Draw a page spec from the corpus distributions (page `index` only
  /// names the site; the statistics come from this generator's stream).
  PageSpec sample_spec(int index);

  /// The paper's 34-page evaluation set (or any other count).
  std::vector<PageSpec> corpus_specs(int pages);

  /// A corpus drawn from one of the PageMix families; kAlexa34 is
  /// exactly corpus_specs. Deterministic given (corpus seed, mix,
  /// pages) — the draws come from this generator's stream.
  std::vector<PageSpec> mix_specs(PageMix mix, int pages);

  /// The ebay-like interactive page used in §8.2 and Fig 7a.
  static PageSpec interactive_spec(std::uint64_t seed);

  /// The taobao-like heavyweight page of Fig 6a (~3.5 MB, ~400 objects).
  static PageSpec heavyweight_spec(std::uint64_t seed);

  /// A "live reload" of the same site: ad rotation changes the object
  /// census between back-to-back loads (§7.3 measured a coefficient of
  /// variation of object count >= 0.5 for half the pages). `reload`
  /// indexes the visit.
  static PageSpec live_variant(const PageSpec& base, int reload);

  /// A subsequent page of the same site, as in a browsing session (§7.3:
  /// "a session consists of a sequence of webpage downloads ... some
  /// objects in subsequent pages could potentially be cached"). The new
  /// page shares the first page's framework assets — its stylesheets,
  /// most synchronous scripts, and everything those pull in — and adds
  /// fresh article images. `index` names the page (/p<index>.html).
  static WebPage follow_page(const WebPage& first, std::uint64_t seed,
                             int index);

 private:
  util::Rng corpus_rng_;
};

}  // namespace parcel::web
