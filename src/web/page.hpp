// WebPage: the complete set of objects a page pulls in, with the main
// document as the root. Pages are generated (PageGenerator) or recorded
// (ReplayStore); origin servers serve slices of them by domain.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/url.hpp"
#include "web/object.hpp"

namespace parcel::web {

class WebPage {
 public:
  explicit WebPage(net::Url main_url) : main_url_(std::move(main_url)) {}

  // The lookup indices point into objects_ nodes: moves transfer the
  // nodes (pointers stay valid), copies must re-index.
  WebPage(WebPage&&) noexcept = default;
  WebPage& operator=(WebPage&&) noexcept = default;
  WebPage(const WebPage& o) : main_url_(o.main_url_), objects_(o.objects_) {
    rebuild_index();
  }
  WebPage& operator=(const WebPage& o) {
    if (this != &o) {
      main_url_ = o.main_url_;
      objects_ = o.objects_;
      rebuild_index();
    }
    return *this;
  }

  /// Add an object; throws std::invalid_argument on duplicate URL.
  void add(WebObject object);

  /// Exact-URL lookup first; on miss, retries ignoring the query string
  /// (servers resolve cache-busted URLs to the same resource).
  [[nodiscard]] const WebObject* find(const net::Url& url) const;

  [[nodiscard]] const net::Url& main_url() const { return main_url_; }
  [[nodiscard]] const WebObject& main() const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] std::size_t count_of(ObjectType t) const;

  /// Aggregate size of the onload set (the paper's B in §6).
  [[nodiscard]] Bytes onload_bytes() const;

  /// All objects in sorted-by-URL order. Returns the incrementally
  /// maintained cache (updated at add()/rebuild_index() time, never
  /// lazily on const access — pages are shared read-only across worker
  /// threads, so const methods must not mutate).
  [[nodiscard]] const std::vector<const WebObject*>& objects() const {
    return objects_cache_;
  }
  [[nodiscard]] std::vector<const WebObject*> objects_on(
      const std::string& domain) const;

  /// Distinct hosting domains as interned ids, in sorted-name order;
  /// cached like objects(). Hot consumers (Testbed routing, DNS) key on
  /// these; domain_names() is the parallel decode for display paths.
  [[nodiscard]] const std::vector<net::UrlId>& domain_ids() const {
    return domain_ids_cache_;
  }

  /// Decoded domain names, index-parallel to domain_ids() (sorted).
  /// Display/diagnostic surface — request paths should use the ids.
  [[nodiscard]] const std::vector<std::string>& domain_names() const {
    return domains_cache_;
  }

  /// Mutable access for the replay normalizer's content rewriting.
  [[nodiscard]] std::vector<WebObject*> mutable_objects();

 private:
  void rebuild_index();

  net::Url main_url_;
  // Keyed by full URL string; iteration order deterministic (objects(),
  // totals and domain listings all walk this map in sorted order).
  std::map<std::string, WebObject> objects_;
  // Request-path lookup indices keyed by interned URL identity; node
  // pointers into objects_ are stable. Hits are verified against the
  // stored URL so a 64-bit collision degrades to a miss.
  std::unordered_map<net::UrlId, const WebObject*, net::UrlIdHash> by_id_;
  std::unordered_map<net::UrlId, const WebObject*, net::UrlIdHash>
      by_norm_id_;
  // Corpus-boundary caches: hot consumers (OriginServer::host, the fleet
  // macro phase, Testbed::host_page) used to rebuild these containers on
  // every call, once per run per page. Maintained at mutation time so
  // const reads stay thread-safe; same deterministic sorted-by-URL-key
  // order the map walk produced.
  std::vector<const WebObject*> objects_cache_;
  std::vector<std::string> domains_cache_;
  /// Index-parallel to domains_cache_: interned id of each name.
  std::vector<net::UrlId> domain_ids_cache_;
};

}  // namespace parcel::web
