#include "web/html.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace parcel::web {

namespace {
using util::ifind;

bool has_flag_attr(std::string_view tag, std::string_view attr) {
  // Attribute present without a value (e.g. "async").
  std::size_t pos = 0;
  while ((pos = ifind(tag, attr, pos)) != std::string_view::npos) {
    bool left_ok = pos == 0 || std::isspace(static_cast<unsigned char>(tag[pos - 1]));
    std::size_t end = pos + attr.size();
    bool right_ok = end >= tag.size() ||
                    std::isspace(static_cast<unsigned char>(tag[end])) ||
                    tag[end] == '>' || tag[end] == '=';
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

}  // namespace

std::string_view MiniHtml::attribute(std::string_view tag,
                                     std::string_view attr) {
  std::string pattern = std::string(attr) + "=";
  std::size_t pos = 0;
  while ((pos = ifind(tag, pattern, pos)) != std::string_view::npos) {
    bool left_ok =
        pos == 0 || std::isspace(static_cast<unsigned char>(tag[pos - 1]));
    if (!left_ok) {
      pos += pattern.size();
      continue;
    }
    std::size_t v = pos + pattern.size();
    if (v >= tag.size()) return {};
    char quote = tag[v];
    if (quote == '"' || quote == '\'') {
      std::size_t close = tag.find(quote, v + 1);
      if (close == std::string_view::npos) return {};
      return tag.substr(v + 1, close - v - 1);
    }
    std::size_t end = v;
    while (end < tag.size() &&
           !std::isspace(static_cast<unsigned char>(tag[end])) &&
           tag[end] != '>') {
      ++end;
    }
    return tag.substr(v, end - v);
  }
  return {};
}

std::vector<HtmlToken> MiniHtml::scan(std::string_view html) {
  std::vector<HtmlToken> tokens;
  std::size_t pos = 0;
  while (pos < html.size()) {
    std::size_t open = html.find('<', pos);
    if (open == std::string_view::npos) break;
    // Skip comments wholesale.
    if (html.substr(open).starts_with("<!--")) {
      std::size_t close = html.find("-->", open);
      pos = close == std::string_view::npos ? html.size() : close + 3;
      continue;
    }
    std::size_t close = html.find('>', open);
    if (close == std::string_view::npos) break;
    std::string_view tag = html.substr(open, close - open + 1);
    pos = close + 1;

    if (util::starts_with_ignore_case(tag, "<script")) {
      std::string_view src = attribute(tag, "src");
      bool async = has_flag_attr(tag, "async") || has_flag_attr(tag, "defer");
      // Find the matching </script>; anything between is inline code.
      std::size_t end_tag = ifind(html, "</script>", pos);
      std::string_view body =
          end_tag == std::string_view::npos
              ? std::string_view{}
              : html.substr(pos, end_tag - pos);
      pos = end_tag == std::string_view::npos ? html.size() : end_tag + 9;
      if (!src.empty()) {
        HtmlToken t;
        t.kind = HtmlToken::Kind::kReference;
        t.ref = Reference{src, async ? ObjectType::kJsAsync : ObjectType::kJs,
                          async, false};
        tokens.push_back(std::move(t));
      } else if (!util::trim(body).empty()) {
        HtmlToken t;
        t.kind = HtmlToken::Kind::kInlineScript;
        t.script = body;
        tokens.push_back(std::move(t));
      }
      continue;
    }
    if (util::starts_with_ignore_case(tag, "<link")) {
      std::string_view rel = attribute(tag, "rel");
      std::string_view href = attribute(tag, "href");
      if (util::iequals(rel, "stylesheet") && !href.empty()) {
        HtmlToken t;
        t.ref = Reference{href, ObjectType::kCss, false, false};
        tokens.push_back(std::move(t));
      }
      continue;
    }
    if (util::starts_with_ignore_case(tag, "<img")) {
      std::string_view src = attribute(tag, "src");
      if (!src.empty()) {
        HtmlToken t;
        t.ref = Reference{src, infer_type(src, ObjectType::kImage), false,
                          false};
        tokens.push_back(std::move(t));
      }
      continue;
    }
    if (util::starts_with_ignore_case(tag, "<video") ||
        util::starts_with_ignore_case(tag, "<source")) {
      std::string_view src = attribute(tag, "src");
      if (!src.empty()) {
        HtmlToken t;
        t.ref = Reference{src, infer_type(src, ObjectType::kMedia), false,
                          false};
        tokens.push_back(std::move(t));
      }
      continue;
    }
  }
  return tokens;
}

}  // namespace parcel::web
