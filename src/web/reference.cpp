#include "web/reference.hpp"

namespace parcel::web {

ObjectType infer_type(std::string_view path, ObjectType fallback) {
  auto q = path.find('?');
  if (q != std::string_view::npos) path = path.substr(0, q);
  auto dot = path.rfind('.');
  if (dot == std::string_view::npos) return fallback;
  std::string_view ext = path.substr(dot + 1);
  if (ext == "css") return ObjectType::kCss;
  if (ext == "js") return ObjectType::kJs;
  if (ext == "png" || ext == "jpg" || ext == "jpeg" || ext == "gif" ||
      ext == "webp" || ext == "ico" || ext == "svg") {
    return ObjectType::kImage;
  }
  if (ext == "woff" || ext == "woff2" || ext == "ttf") {
    return ObjectType::kFont;
  }
  if (ext == "json") return ObjectType::kJson;
  if (ext == "mp4" || ext == "webm") return ObjectType::kMedia;
  if (ext == "html" || ext == "htm") return ObjectType::kHtml;
  return fallback;
}

}  // namespace parcel::web
