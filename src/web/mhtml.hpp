// MHTML bundle codec (paper §5.1).
//
// PARCEL transfers objects from proxy to client as MHTML: a multipart
// document where each part carries the object's HTTP headers
// (Content-Location, Content-Type, Content-Length) followed by its body.
// We implement the writer and parser for real — the proxy serializes, the
// bytes (counted exactly) cross the simulated radio, and the client
// parses the text back into objects. Opaque bodies (images) are carried
// as filler of the correct length, as only their size matters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/url.hpp"
#include "web/object.hpp"

namespace parcel::web {

struct MhtmlPart {
  net::Url location;
  std::string content_type;
  Bytes body_size = 0;
  /// Body text for parseable types; null for opaque bodies.
  std::shared_ptr<const std::string> content;
};

class MhtmlWriter {
 public:
  void add(const WebObject& object);
  void add_raw(const net::Url& location, const std::string& content_type,
               Bytes body_size, std::shared_ptr<const std::string> content);

  [[nodiscard]] std::size_t part_count() const { return parts_.size(); }
  [[nodiscard]] bool empty() const { return parts_.empty(); }

  /// Total payload bytes (bodies only, before MHTML framing).
  [[nodiscard]] Bytes payload_bytes() const;

  /// Serialize; the returned string's size is the exact wire size.
  [[nodiscard]] std::string serialize() const;

  void clear() { parts_.clear(); }

 private:
  std::vector<MhtmlPart> parts_;
};

class MhtmlReader {
 public:
  /// Parse a serialized bundle. Throws std::invalid_argument on framing
  /// errors (missing boundary / truncated part).
  static std::vector<MhtmlPart> parse(const std::string& text);
};

}  // namespace parcel::web
