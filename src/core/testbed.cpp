#include "core/testbed.hpp"

namespace parcel::core {

Testbed::Testbed(TestbedConfig config)
    : config_(config),
      network_(sched_),
      topo_rng_(config.topology_seed) {
  config_.faults.validate();
  if (config_.faults.enabled()) {
    faults_ = std::make_unique<net::FaultInjector>(config_.faults);
    faults_->set_event_sink(
        [this](const trace::FaultEvent& e) { trace_.record_fault(e); });
  }
  std::shared_ptr<const lte::FadeProcess> fade;
  if (config_.fade_profile) {
    fade = std::make_shared<lte::FadeProcess>(config_.fade_profile->build());
  } else if (config_.fade) {
    fade = std::make_shared<lte::FadeProcess>(util::Rng(config_.fade_seed),
                                              *config_.fade);
  }
  radio_ = lte::make_radio_link(sched_, config_.radio, fade);
  if (faults_) {
    // Faults live on the radio: the cellular leg is where the paper's
    // real-network variability comes from. Wired legs stay clean.
    radio_.link->up().set_fault_injector(faults_.get());
    radio_.link->down().set_fault_injector(faults_.get());
  }

  // Tap the radio: every burst that crosses it is a phone-capture record.
  radio_.link->up().set_tap([this](util::TimePoint t, util::Bytes b,
                                   const net::BurstInfo& info) {
    trace_.record(trace::PacketRecord{t, trace::Direction::kUplink, info.kind,
                                      b, info.conn_id, info.object_id});
  });
  radio_.link->down().set_tap([this](util::TimePoint t, util::Bytes b,
                                     const net::BurstInfo& info) {
    trace_.record(trace::PacketRecord{t, trace::Direction::kDownlink,
                                      info.kind, b, info.conn_id,
                                      info.object_id});
  });
  radio_link_ = &network_.adopt_link(std::move(radio_.link));

  core_ = &network_.add_link("core", config_.core_rate, config_.core_rate,
                             config_.core_delay);
  proxy_access_ =
      &network_.add_link("proxy.access", config_.proxy_access_rate,
                         config_.proxy_access_rate,
                         config_.proxy_access_delay);
  proxy_egress_ =
      &network_.add_link("proxy.egress", config_.proxy_access_rate,
                         config_.proxy_access_rate,
                         config_.proxy_access_delay);
  dns_link_ = &network_.add_link("dns.access", config_.core_rate,
                                 config_.core_rate, config_.dns_access_delay);
  proxy_dns_link_ =
      &network_.add_link("proxy.dns", config_.core_rate, config_.core_rate,
                         util::Duration::millis(1));

  // Client-side fixed routes.
  network_.set_route("client", kProxyDomain,
                     net::Path({radio_link_, proxy_access_}));
  network_.set_route("client", "dns", net::Path({radio_link_, dns_link_}));
  network_.set_route("proxy", "dns", net::Path({proxy_dns_link_}));
}

net::DuplexLink& Testbed::server_link(net::UrlId id,
                                      const std::string& domain) {
  auto it = server_links_.find(id);
  if (it != server_links_.end()) return *it->second;
  util::Duration delay = config_.server_delay;
  if (config_.heterogeneous_server_delays) {
    delay = util::Duration::millis(topo_rng_.uniform(
        config_.server_delay_min.ms(), config_.server_delay_max.ms()));
  }
  net::DuplexLink& link = network_.add_link(
      "origin." + domain, config_.server_rate, config_.server_rate, delay);
  server_links_[id] = &link;
  return link;
}

void Testbed::host_page(const web::WebPage& page) {
  // Walk ids and names in parallel: ids key the routing tables, names
  // feed the Network's endpoint registry and link labels. The iteration
  // stays in sorted-name order, so topo_rng_ draws (heterogeneous server
  // delays) land exactly where the string-keyed walk put them.
  const std::vector<net::UrlId>& ids = page.domain_ids();
  const std::vector<std::string>& names = page.domain_names();
  for (std::size_t d = 0; d < ids.size(); ++d) {
    const std::string& domain = names[d];
    net::DuplexLink& slink = server_link(ids[d], domain);
    auto [it, inserted] = origins_.try_emplace(ids[d], nullptr);
    if (inserted) {
      it->second = std::make_unique<web::OriginServer>(sched_, domain);
      if (faults_) it->second->set_fault_injector(faults_.get());
      network_.register_endpoint(domain, *it->second);
      network_.set_route("client", domain,
                         net::Path({radio_link_, core_, &slink}));
      network_.set_route("proxy", domain,
                         net::Path({proxy_egress_, &slink}));
    }
    it->second->host(page);
  }
}

void Testbed::register_proxy_endpoint(const std::string& domain,
                                      net::HttpEndpoint& endpoint) {
  network_.register_endpoint(domain, endpoint);
  network_.set_route("client", domain,
                     net::Path({radio_link_, proxy_access_}));
}

web::OriginServer* Testbed::origin(const std::string& domain) {
  auto it = origins_.find(net::UrlId{net::intern_key(domain)});
  return it == origins_.end() ? nullptr : it->second.get();
}

}  // namespace parcel::core
