#include "core/experiment.hpp"

#include <stdexcept>

#include "browser/cloud_browser.hpp"
#include "browser/dir_browser.hpp"
#include "browser/proxied_browser.hpp"
#include "core/parallel_runner.hpp"
#include "core/session.hpp"
#include "net/fault_injector.hpp"
#include "trace/trace_analyzer.hpp"
#include "util/stats.hpp"

namespace parcel::core {

std::string to_string(Scheme s) {
  switch (s) {
    case Scheme::kDir: return "DIR";
    case Scheme::kHttpProxy: return "HTTP-PROXY";
    case Scheme::kSpdyProxy: return "SPDY-PROXY";
    case Scheme::kParcelInd: return "PARCEL(IND)";
    case Scheme::kParcelOnld: return "PARCEL(ONLD)";
    case Scheme::kParcel512K: return "PARCEL(512K)";
    case Scheme::kParcel1M: return "PARCEL(1M)";
    case Scheme::kParcel2M: return "PARCEL(2M)";
    case Scheme::kCloudBrowser: return "CB";
    case Scheme::kParcelAdaptive: return "PARCEL-ADAPT";
  }
  return "?";
}

bool is_parcel(Scheme s) {
  switch (s) {
    case Scheme::kParcelInd:
    case Scheme::kParcelOnld:
    case Scheme::kParcel512K:
    case Scheme::kParcel1M:
    case Scheme::kParcel2M:
    case Scheme::kParcelAdaptive:
      return true;
    default:
      return false;
  }
}

BundleConfig bundle_for(Scheme s) {
  switch (s) {
    case Scheme::kParcelInd: return BundleConfig::ind();
    case Scheme::kParcelOnld: return BundleConfig::onload();
    case Scheme::kParcel512K: return BundleConfig::with_threshold(util::kib(512));
    case Scheme::kParcel1M: return BundleConfig::with_threshold(util::mib(1));
    case Scheme::kParcel2M: return BundleConfig::with_threshold(util::mib(2));
    // The controller's starting point before any samples fold; §6's
    // worked b* ≈ 0.9 MB at the median link rounds to the 1M rail, but
    // starting at 512K keeps the first bundle's latency low and lets the
    // estimator pull upward.
    case Scheme::kParcelAdaptive:
      return BundleConfig::with_threshold(util::kib(512));
    default:
      throw std::invalid_argument("bundle_for: not a PARCEL scheme");
  }
}

namespace {

browser::EngineConfig client_engine_config(const lte::DeviceProfile& device) {
  browser::EngineConfig cfg;
  cfg.parse_bytes_per_sec = device.parse_bytes_per_sec;
  cfg.js_units_per_sec = device.js_units_per_sec;
  return cfg;
}

browser::DirConfig proxy_fetch_config() {
  browser::DirConfig cfg;
  lte::DeviceProfile proxy = lte::DeviceProfile::proxy_server();
  cfg.engine.parse_bytes_per_sec = proxy.parse_bytes_per_sec;
  cfg.engine.js_units_per_sec = proxy.js_units_per_sec;
  // Post-onload ad/widget scripts run promptly on a server-class engine;
  // on the device they straggle for seconds (EngineConfig defaults).
  cfg.engine.async_exec_min = util::Duration::millis(50);
  cfg.engine.async_exec_max = util::Duration::millis(600);
  // A well-provisioned server is not bound by a handset's socket budget.
  cfg.max_total_connections = 64;
  return cfg;
}

// Recovery machinery armed only under an active fault plan: fair-weather
// runs must stay byte-identical to a build without the fault layer, and
// armed timers consume scheduler sequence numbers even when they never
// fire.
constexpr util::Duration kObjectTimeout = util::Duration::seconds(8);
constexpr int kFetchRetries = 2;
constexpr util::Duration kRetryBackoff = util::Duration::millis(250);
constexpr util::Duration kStallDeadline = util::Duration::seconds(10);

void harden_fetch(browser::DirConfig& cfg) {
  cfg.tcp.loss_recovery = true;
  cfg.object_timeout = kObjectTimeout;
  cfg.max_fetch_retries = kFetchRetries;
  cfg.retry_backoff = kRetryBackoff;
}

void finalize_common(RunResult& result, Testbed& testbed,
                     const RunConfig& config) {
  testbed.client_trace().truncate_after(
      util::TimePoint::origin() + config.capture_window);
  // The testbed is torn down right after finalize; steal its trace
  // instead of copying a packet-per-event vector.
  result.trace = std::move(testbed.client_trace());
  lte::EnergyAnalyzer analyzer(config.testbed.radio.rrc);
  result.radio = analyzer.analyze(result.trace, /*include_decay_tail=*/true);
  result.downlink_bytes = result.trace.downlink_bytes();
  result.uplink_bytes = result.trace.uplink_bytes();
  result.tcp_connections = result.trace.connection_count();
  result.events_executed = testbed.scheduler().events_executed();
  if (const net::FaultInjector* faults = testbed.faults()) {
    result.fault_drops = faults->drops();
    result.fault_deferrals = faults->deferrals();
    result.recovery = trace::TraceAnalyzer::recovery_time(result.trace);
  }
  if (const lte::FadeProcess* fade = testbed.fade()) {
    result.mean_signal_dbm = fade->mean_signal_dbm(
        util::TimePoint::origin() + result.tlt);
  }
}

RunResult run_dir(const web::WebPage& page, const RunConfig& config) {
  Testbed testbed(config.testbed);
  testbed.host_page(page);

  browser::DirConfig dir_cfg;
  dir_cfg.engine = client_engine_config(config.device);
  if (config.testbed.faults.enabled()) harden_fetch(dir_cfg);
  browser::DirBrowser dir(testbed.network(), dir_cfg,
                          util::Rng(config.seed));

  RunResult result;
  result.scheme = Scheme::kDir;
  browser::BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint t) {
    result.olt = t - util::TimePoint::origin();
  };
  cbs.on_complete = [&](util::TimePoint t) {
    result.tlt = t - util::TimePoint::origin();
    result.ok = true;
  };
  dir.load(page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::origin() +
                                config.capture_window);
  if (!result.ok && !testbed.client_trace().empty()) {
    result.tlt = testbed.client_trace().last_time() - util::TimePoint::origin();
  }
  result.cpu_busy = dir.engine().cpu_busy();
  result.radio_http_requests = dir.fetcher().requests_issued();
  result.dns_lookups = dir.fetcher().dns_lookups();
  result.objects_loaded = dir.engine().ledger().count();
  result.retransmits = dir.fetcher().retransmits();
  finalize_common(result, testbed, config);
  return result;
}

RunResult run_parcel(Scheme scheme, const web::WebPage& page,
                     const RunConfig& config) {
  Testbed testbed(config.testbed);
  testbed.host_page(page);

  ParcelSessionConfig session_cfg;
  session_cfg.proxy.fetch = proxy_fetch_config();
  session_cfg.proxy.bundle = bundle_for(scheme);
  if (config.parcel_threshold_override > 0 &&
      session_cfg.proxy.bundle.policy == BundlePolicy::kThreshold) {
    session_cfg.proxy.bundle.threshold = config.parcel_threshold_override;
  }
  session_cfg.proxy.inactivity_window = config.proxy_inactivity_window;
  session_cfg.client_engine = client_engine_config(config.device);
  session_cfg.proxy_domain = Testbed::kProxyDomain;
  const sim::FaultPlan& plan = config.testbed.faults;
  if (plan.enabled()) {
    // Client-proxy transport recovers from injected loss; the stall
    // watchdog backs the whole PARCEL path with the degradation ladder
    // (DESIGN.md §7). The proxy's own fetcher retries origin 503s.
    session_cfg.tcp.loss_recovery = true;
    session_cfg.stall_deadline = kStallDeadline;
    session_cfg.direct_fetch.engine = session_cfg.client_engine;
    harden_fetch(session_cfg.direct_fetch);
    harden_fetch(session_cfg.proxy.fetch);
  }

  ParcelSession session(testbed.network(), session_cfg,
                        util::Rng(config.seed));

  // Closed-loop adaptive bundling (ISSUE 10). The controller only exists
  // for kParcelAdaptive with the kill switch on: every other scheme (and
  // PARCEL_CTRL=0 adaptive runs) never installs the listener, consumes
  // no RNG and arms no events, so their traces stay byte-identical to a
  // build without the ctrl layer. The controller itself is deterministic
  // integer state fed in record order — bitwise identical across --jobs.
  std::optional<ctrl::BundleController> controller;
  if (scheme == Scheme::kParcelAdaptive && ctrl::ctrl_enabled()) {
    ctrl::ControllerConfig ctrl_cfg = config.ctrl;
    // The estimator's CR gate and promotion compensation must describe
    // the radio this run actually uses.
    ctrl_cfg.estimator.rrc = config.testbed.radio.rrc;
    controller.emplace(ctrl_cfg, session_cfg.proxy.bundle.threshold);
    testbed.client_trace().set_burst_listener(
        [&controller, &session](const trace::PacketRecord& r) {
          if (auto next = controller->on_record(r)) {
            session.retune_bundle_threshold(*next);
          }
        });
  }

  if (plan.proxy_crash_at) {
    testbed.scheduler().schedule_at(*plan.proxy_crash_at, [&session, &testbed] {
      session.inject_proxy_crash();
      testbed.client_trace().record_fault(
          trace::FaultEvent{testbed.scheduler().now(),
                            trace::FaultKind::kProxyCrash, 0, 0});
    });
    if (plan.proxy_restart_after) {
      testbed.scheduler().schedule_at(
          *plan.proxy_crash_at + *plan.proxy_restart_after,
          [&session, &testbed] {
            session.inject_proxy_restart();
            testbed.client_trace().record_fault(
                trace::FaultEvent{testbed.scheduler().now(),
                                  trace::FaultKind::kProxyRestart, 0, 0});
          });
    }
  }

  RunResult result;
  result.scheme = scheme;
  ParcelSession::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint t) {
    result.olt = t - util::TimePoint::origin();
  };
  cbs.on_complete = [&](util::TimePoint t) {
    result.tlt = t - util::TimePoint::origin();
    result.ok = true;
  };
  session.load(page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::origin() +
                                config.capture_window);
  if (!result.ok && !testbed.client_trace().empty()) {
    result.tlt = testbed.client_trace().last_time() - util::TimePoint::origin();
  }
  result.cpu_busy = session.client_engine().cpu_busy();
  // One URL request plus any fallback GETs cross the radio.
  result.fallbacks = session.client_fetcher().fallback_requests();
  result.radio_http_requests = 1 + result.fallbacks;
  result.dns_lookups = 0;
  result.objects_loaded = session.client_engine().ledger().count();
  result.bundles = session.bundles_delivered();
  result.retransmits = session.transport_retransmits();
  if (session.degraded()) {
    result.degraded = true;
    result.direct_fetches = session.client_fetcher().direct_fetches();
    testbed.client_trace().record_fault(trace::FaultEvent{
        *session.degraded_at(), trace::FaultKind::kDegraded, 0, 0});
  }
  if (controller) {
    // Detach the live tap before the trace is handed off to RunResult —
    // the moved trace must not carry a listener into captures that
    // outlive the controller's stack frame.
    testbed.client_trace().set_burst_listener(nullptr);
    result.ctrl_retunes = controller->retunes();
    result.ctrl_goodput_bps = controller->estimator().goodput_bps();
    result.ctrl_rtt_us = controller->estimator().rtt_us();
    result.ctrl_threshold = controller->threshold();
  }
  finalize_common(result, testbed, config);
  return result;
}

RunResult run_proxied(Scheme scheme, const web::WebPage& page,
                      const RunConfig& config) {
  Testbed testbed(config.testbed);
  testbed.host_page(page);

  browser::ProxiedBrowserConfig cfg =
      scheme == Scheme::kSpdyProxy
          ? browser::ProxiedBrowserConfig::spdy_proxy()
          : browser::ProxiedBrowserConfig::http_proxy();
  cfg.engine = client_engine_config(config.device);
  browser::DirConfig relay_cfg = proxy_fetch_config();
  if (config.testbed.faults.enabled()) {
    cfg.tcp.loss_recovery = true;
    harden_fetch(relay_cfg);
  }

  util::Rng rng(config.seed);
  browser::RelayProxy relay(testbed.network(), relay_cfg, rng.fork());
  const std::string relay_domain = "relay.proxy.example";
  testbed.register_proxy_endpoint(relay_domain, relay);
  browser::ProxiedBrowser client(testbed.network(), relay_domain, cfg,
                                 rng.fork());

  RunResult result;
  result.scheme = scheme;
  browser::BrowserEngine::Callbacks cbs;
  cbs.on_onload = [&](util::TimePoint t) {
    result.olt = t - util::TimePoint::origin();
  };
  cbs.on_complete = [&](util::TimePoint t) {
    result.tlt = t - util::TimePoint::origin();
    result.ok = true;
  };
  client.load(page.main_url(), std::move(cbs));
  testbed.scheduler().run_until(util::TimePoint::origin() +
                                config.capture_window);
  if (!result.ok && !testbed.client_trace().empty()) {
    result.tlt = testbed.client_trace().last_time() - util::TimePoint::origin();
  }
  result.cpu_busy = client.engine().cpu_busy();
  result.radio_http_requests = client.requests_issued();
  result.dns_lookups = 0;  // the proxy resolves
  result.objects_loaded = client.engine().ledger().count();
  finalize_common(result, testbed, config);
  return result;
}

RunResult run_cloud(const web::WebPage& page, const RunConfig& config) {
  Testbed testbed(config.testbed);
  testbed.host_page(page);

  browser::CloudBrowserConfig cb_cfg;
  cb_cfg.proxy_fetch = proxy_fetch_config();
  cb_cfg.client = client_engine_config(config.device);
  if (config.testbed.faults.enabled()) harden_fetch(cb_cfg.proxy_fetch);

  util::Rng rng(config.seed);
  browser::CloudBrowserProxy proxy(testbed.network(), cb_cfg, rng.fork());
  const std::string cb_domain = "cb.proxy.example";
  testbed.register_proxy_endpoint(cb_domain, proxy);
  browser::CloudBrowserClient client(testbed.network(), cb_domain, cb_cfg);

  RunResult result;
  result.scheme = Scheme::kCloudBrowser;
  client.load(page.main_url(), [&](util::TimePoint t) {
    result.olt = t - util::TimePoint::origin();
    result.tlt = result.olt;  // the snapshot is the whole transfer
    result.ok = true;
  });
  testbed.scheduler().run_until(util::TimePoint::origin() +
                                config.capture_window);
  result.cpu_busy = client.cpu_busy();
  result.radio_http_requests = 1;
  result.dns_lookups = 0;
  result.objects_loaded = client.ledger().count();
  finalize_common(result, testbed, config);
  return result;
}

}  // namespace

RunResult ExperimentRunner::run(Scheme scheme, const web::WebPage& page,
                                const RunConfig& config) {
  // One arena per run, installed for this thread: the scheduler heap, the
  // capture trace's columns and the browsers' per-load bookkeeping all
  // bump out of it and are released wholesale when the run returns
  // (DESIGN.md §11). RunResult keeps default-resource containers, so
  // nothing escaping this frame can alias the arena.
  core::Arena arena;
  core::ArenaScope arena_scope(arena);
  RunResult result;
  switch (scheme) {
    case Scheme::kDir:
      result = run_dir(page, config);
      break;
    case Scheme::kHttpProxy:
    case Scheme::kSpdyProxy:
      result = run_proxied(scheme, page, config);
      break;
    case Scheme::kCloudBrowser:
      result = run_cloud(page, config);
      break;
    default:
      result = run_parcel(scheme, page, config);
      break;
  }
  result.arena_bytes = arena.bytes_allocated();
  result.arena_allocations = arena.allocation_count();
  return result;
}

namespace {

std::vector<double> collect(const SchemeSeries& s,
                            double (*get)(const RunResult&)) {
  std::vector<double> out;
  out.reserve(s.runs.size());
  for (const auto& r : s.runs) out.push_back(get(r));
  return out;
}

}  // namespace

double SchemeSeries::median_olt_sec() const {
  return util::median(
      collect(*this, [](const RunResult& r) { return r.olt.sec(); }));
}
double SchemeSeries::median_tlt_sec() const {
  return util::median(
      collect(*this, [](const RunResult& r) { return r.tlt.sec(); }));
}
double SchemeSeries::median_radio_j() const {
  return util::median(
      collect(*this, [](const RunResult& r) { return r.radio.total.j(); }));
}
double SchemeSeries::median_cr_j() const {
  return util::median(
      collect(*this, [](const RunResult& r) { return r.radio.cr.j(); }));
}

RoundsOutcome run_rounds(const web::WebPage& page,
                         const std::vector<Scheme>& schemes,
                         const RoundsConfig& config) {
  if (config.rounds <= 0) {
    throw std::invalid_argument("run_rounds: rounds must be positive, got " +
                                std::to_string(config.rounds));
  }
  if (config.signal_tolerance_db < 0) {
    throw std::invalid_argument(
        "run_rounds: signal_tolerance_db must be >= 0, got " +
        std::to_string(config.signal_tolerance_db));
  }
  // Surface a malformed fault plan here with one clear error instead of
  // once per (round x scheme) testbed construction.
  config.base.testbed.faults.validate();

  RoundsOutcome outcome;
  outcome.rounds_total = config.rounds;
  if (schemes.empty()) return outcome;

  // Every run's seeds are a pure function of (base seed, round, scheme
  // slot), so the whole (round × scheme) grid can fan out across workers;
  // results land in their grid slot and the filtering below reads them in
  // the original serial order.
  std::vector<ExperimentTask> tasks;
  tasks.reserve(static_cast<std::size_t>(config.rounds) * schemes.size());
  for (int round = 0; round < config.rounds; ++round) {
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      RunConfig run_cfg = config.base;
      // Back-to-back runs see different instantaneous radio conditions:
      // fade and workload seeds vary per (round, scheme) slot.
      run_cfg.seed = config.base.seed + 1000003ULL * round + 97ULL * i;
      run_cfg.testbed.fade_seed =
          config.base.testbed.fade_seed + 7919ULL * round + 31ULL * i + 1;
      tasks.push_back(ExperimentTask{schemes[i], &page, run_cfg});
    }
  }
  std::vector<RunResult> results = run_experiments(tasks, config.jobs);

  for (int round = 0; round < config.rounds; ++round) {
    auto* round_results =
        &results[static_cast<std::size_t>(round) * schemes.size()];
    if (config.discard_first_round && round == 0) continue;
    // Signal comparability filter (§7.2).
    double lo = round_results[0].mean_signal_dbm;
    double hi = lo;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      lo = std::min(lo, round_results[i].mean_signal_dbm);
      hi = std::max(hi, round_results[i].mean_signal_dbm);
    }
    if (hi - lo > config.signal_tolerance_db) continue;
    ++outcome.rounds_kept;
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      outcome.series[schemes[i]].runs.push_back(std::move(round_results[i]));
    }
  }
  return outcome;
}

}  // namespace parcel::core
