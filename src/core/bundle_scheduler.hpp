// BundleScheduler: PARCEL's cellular-friendly transfer policies (§4.4).
//
//   IND      — forward each object to the client the moment the proxy
//              receives it (minimizes OLT; Fig 5b).
//   ONLD     — hold everything until the proxy's onload event, send one
//              batch; post-onload stragglers go in a final batch at page
//              completion (maximizes radio sleep; Fig 5c).
//   PARCEL(X)— flush whenever X bytes have accumulated, or at onload,
//              or at completion (the latency/energy dial; Fig 5d).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "browser/fetcher.hpp"
#include "util/units.hpp"
#include "web/mhtml.hpp"

namespace parcel::core {

using util::Bytes;

enum class BundlePolicy : std::uint8_t { kInd, kOnload, kThreshold };

[[nodiscard]] std::string_view to_string(BundlePolicy p);

struct BundleConfig {
  BundlePolicy policy = BundlePolicy::kInd;
  Bytes threshold = util::kib(512);  // used by kThreshold

  static BundleConfig ind() { return {BundlePolicy::kInd, 0}; }
  static BundleConfig onload() { return {BundlePolicy::kOnload, 0}; }
  static BundleConfig with_threshold(Bytes x) {
    return {BundlePolicy::kThreshold, x};
  }

  [[nodiscard]] std::string name() const;
};

class BundleScheduler {
 public:
  /// `sink` receives each flushed bundle (already framed as MHTML parts).
  using Sink = std::function<void(web::MhtmlWriter bundle)>;

  BundleScheduler(BundleConfig config, Sink sink);

  /// The proxy intercepted one origin response.
  void on_object(const net::Url& url, web::ObjectType type, Bytes size,
                 std::shared_ptr<const std::string> content);

  /// The proxy-side engine fired onload.
  void on_proxy_onload();

  /// The proxy's completion heuristic declared the page done; flush the
  /// remainder unconditionally.
  void on_page_complete();

  /// Mid-load retune (ISSUE 10, ctrl::BundleController): the new target
  /// is consulted at the next on_object, i.e. it takes effect at a
  /// bundle boundary — data already pending keeps accumulating toward
  /// the new threshold rather than being flushed early. Only meaningful
  /// under kThreshold; IND/ONLD ignore it by construction.
  void set_threshold(Bytes threshold);

  [[nodiscard]] std::size_t bundles_sent() const { return bundles_sent_; }
  [[nodiscard]] Bytes threshold() const { return config_.threshold; }
  [[nodiscard]] Bytes pending_bytes() const { return pending_.payload_bytes(); }

 private:
  void flush();

  BundleConfig config_;
  Sink sink_;
  web::MhtmlWriter pending_;
  bool onload_seen_ = false;
  std::size_t bundles_sent_ = 0;
};

}  // namespace parcel::core
