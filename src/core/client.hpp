// ParcelClientFetcher: the device half of PARCEL's functionality split.
//
// The client browser parses and renders like a normal browser, but its
// fetcher answers from the cache of objects the proxy pushed, and
// *suppresses* network requests for anything it has identified but not
// yet received — the object "could well be in flight from the proxy"
// (§4.5). Suppressed requests are parked; a bundle part with the exact
// URL releases them, and the proxy's completion notification converts the
// stragglers into explicit fallback requests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "browser/fetcher.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "web/mhtml.hpp"

namespace parcel::core {

using util::Duration;

class ParcelClientFetcher final : public browser::Fetcher {
 public:
  /// `fallback` is wired by the session to relay a missing-object request
  /// to the proxy.
  using FallbackFn = std::function<void(const net::Url& url,
                                        web::ObjectType hint)>;

  /// Wired by the session to fetch an object directly from its origin,
  /// bypassing the (presumed dead) proxy. Last rung of the degradation
  /// ladder (DESIGN.md §7).
  using DirectFetchFn = std::function<void(
      const net::Url& url, web::ObjectType hint, std::uint32_t object_id,
      std::function<void(browser::FetchResult)> on_result)>;

  ParcelClientFetcher(sim::Scheduler& sched, util::Rng rng,
                      Duration local_lookup_delay = Duration::micros(500));

  void set_fallback(FallbackFn fallback) { fallback_ = std::move(fallback); }
  void set_direct_fetch(DirectFetchFn direct) {
    direct_fetch_ = std::move(direct);
  }

  /// Give up on the proxy: every parked request is re-issued as a
  /// direct-to-origin fetch, and future cache misses go direct too. The
  /// bundle cache keeps serving whatever did arrive.
  void degrade_to_direct();
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::size_t direct_fetches() const { return direct_fetches_; }

  /// Ablation knob: with suppression disabled, every cache miss turns
  /// into an immediate fallback request instead of parking — the naive
  /// client the paper's §4.5 design argues against (the object "could
  /// well be in flight from the proxy").
  void set_suppression(bool enabled) { suppression_ = enabled; }

  // Fetcher: called by the client engine.
  void fetch(const net::Url& url, web::ObjectType hint, bool randomized,
             std::uint32_t object_id,
             std::function<void(browser::FetchResult)> on_result) override;

  // Session events.
  void on_bundle_parts(const std::vector<web::MhtmlPart>& parts);
  void on_completion_note();

  /// A new page of the session begins: suppression resumes (a fresh
  /// completion notification will come for this page); the bundle cache
  /// persists — it is the device cache.
  void on_new_page();

  [[nodiscard]] bool completion_received() const { return complete_noted_; }
  [[nodiscard]] std::size_t parked_count() const { return parked_.size(); }
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t suppressed_total() const { return suppressed_; }
  [[nodiscard]] std::size_t fallback_requests() const { return fallbacks_; }
  [[nodiscard]] std::size_t cached_objects() const { return cache_.size(); }

 private:
  struct Parked {
    net::Url url;  // exact URL the engine asked for
    web::ObjectType hint;
    std::uint32_t object_id = 0;
    std::function<void(browser::FetchResult)> on_result;
  };

  void deliver(const web::MhtmlPart& part, web::ObjectType hint,
               std::function<void(browser::FetchResult)> on_result);
  void request_fallback(Parked parked);
  void request_direct(Parked parked);

  sim::Scheduler& sched_;
  util::Rng rng_;
  Duration local_lookup_delay_;
  FallbackFn fallback_;
  DirectFetchFn direct_fetch_;

  /// Bundle cache keyed by interned URL identity (exact-URL match, as
  /// before — only the key representation changed).
  std::unordered_map<net::UrlId, web::MhtmlPart, net::UrlIdHash> cache_;
  std::vector<Parked> parked_;
  bool suppression_ = true;
  bool complete_noted_ = false;
  bool degraded_ = false;
  std::size_t cache_hits_ = 0;
  std::size_t suppressed_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t direct_fetches_ = 0;
};

}  // namespace parcel::core
