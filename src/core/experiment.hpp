// Experiment harness implementing the paper's methodology (§7):
// single-run execution for every scheme, rounds of back-to-back runs,
// signal-comparability filtering, first-round discard, and per-page
// median reporting.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/bundle_scheduler.hpp"
#include "core/testbed.hpp"
#include "ctrl/bundle_controller.hpp"
#include "lte/device.hpp"
#include "lte/energy.hpp"
#include "trace/packet_trace.hpp"
#include "web/page.hpp"

namespace parcel::core {

enum class Scheme : std::uint8_t {
  kDir,         // traditional mobile browser
  kHttpProxy,   // traditional web proxy (proxy DNS, per-object requests)
  kSpdyProxy,   // single multiplexed client-proxy connection (§4.3)
  kParcelInd,   // PARCEL, per-object push
  kParcelOnld,  // PARCEL, batch at onload
  kParcel512K,  // PARCEL(X), X = 512 KB
  kParcel1M,
  kParcel2M,
  kCloudBrowser,  // cloud-heavy baseline (CB)
  /// PARCEL(X) with the ctrl::BundleController retuning X mid-load from
  /// the live capture (ISSUE 10). With the controller disabled
  /// (PARCEL_CTRL=0 / ctrl::set_ctrl_enabled(false)) this is byte-for-
  /// byte the fixed scheme at the initial threshold.
  kParcelAdaptive,
};

[[nodiscard]] std::string to_string(Scheme s);
[[nodiscard]] bool is_parcel(Scheme s);
[[nodiscard]] BundleConfig bundle_for(Scheme s);

struct RunConfig {
  TestbedConfig testbed;
  lte::DeviceProfile device = lte::DeviceProfile::galaxy_s3();
  std::uint64_t seed = 1;
  /// Paper: packet collection limited to 60 s per experiment.
  util::Duration capture_window = util::Duration::seconds(60);
  /// Proxy completion heuristic window (§4.5).
  util::Duration proxy_inactivity_window = util::Duration::seconds(1.5);
  /// Controller parameters for kParcelAdaptive runs (ISSUE 10); ignored
  /// by every other scheme. The estimator's RRC timers are synced to
  /// testbed.radio.rrc by the harness so the gate matches the radio.
  ctrl::ControllerConfig ctrl;
  /// Non-zero: override the threshold of any kThreshold bundle policy
  /// (including kParcelAdaptive's starting point). This is how
  /// bench_adaptive sweeps a fixed-size grid through the existing
  /// run_experiments fan-out without a Scheme enumerator per size.
  util::Bytes parcel_threshold_override = 0;
};

struct RunResult {
  Scheme scheme = Scheme::kDir;
  bool ok = false;  // load completed within the capture window

  util::Duration olt = util::Duration::zero();
  util::Duration tlt = util::Duration::zero();
  lte::EnergyReport radio;
  util::Duration cpu_busy = util::Duration::zero();

  std::size_t radio_http_requests = 0;  // HTTP requests crossing the radio
  std::size_t tcp_connections = 0;      // connections over the radio
  std::size_t dns_lookups = 0;          // client-side lookups
  std::size_t objects_loaded = 0;
  std::size_t bundles = 0;
  std::size_t fallbacks = 0;
  util::Bytes downlink_bytes = 0;
  util::Bytes uplink_bytes = 0;
  double mean_signal_dbm = -90.0;

  // Fault-robustness surface (all zero in fault-free runs).
  std::uint64_t retransmits = 0;      // client-side TCP RTO retransmissions
  std::uint64_t fault_drops = 0;      // bursts destroyed by the injector
  std::uint64_t fault_deferrals = 0;  // bursts deferred by blackout windows
  std::size_t direct_fetches = 0;     // degraded-mode direct-to-origin GETs
  bool degraded = false;              // client presumed the proxy dead
  /// First injected fault -> next delivered payload burst.
  util::Duration recovery = util::Duration::zero();

  // Sharded-fleet handoff surface (ISSUE 8): stamped by the fleet layer
  // onto the session result when the session was migrated off a crashed
  // proxy shard; all zero outside sharded fleet runs. Never produced by
  // the per-session simulation itself.
  std::uint32_t shard_handoffs = 0;  // times migrated to a surviving shard
  /// Crash instant -> the session's proxy work re-completed.
  util::Duration handoff_recovery = util::Duration::zero();
  double redo_service_sec = 0.0;  // proxy service seconds re-executed
  util::Bytes redo_bytes = 0;     // bytes the tier moved a second time

  // Closed-loop control telemetry (ISSUE 10): all zero except under
  // kParcelAdaptive with the controller enabled. Fixed-point integers
  // straight from the controller, so cross-jobs identity is bitwise.
  std::uint64_t ctrl_retunes = 0;        // mid-load threshold changes
  std::int64_t ctrl_goodput_bps = 0;     // final EWMA goodput estimate
  std::int64_t ctrl_rtt_us = 0;          // final EWMA RTT estimate
  util::Bytes ctrl_threshold = 0;        // threshold at end of load

  trace::PacketTrace trace;  // kept for timeline figures (6a, 7a)

  /// Discrete events the run's scheduler executed — the denominator for
  /// simulated-joules-per-event (BENCH_kernel.json): radio energy per
  /// unit of kernel work, a drift alarm for the event machinery's energy
  /// accounting. Deterministic, so the bench gates it tightly.
  std::uint64_t events_executed = 0;

  // Allocation telemetry from this run's arena (DESIGN.md §11): bytes and
  // allocation calls served by the bump allocator. Zero when the arena is
  // disabled (PARCEL_ARENA=0 / set_arena_enabled(false)); never part of
  // the simulated outcome — placement cannot feed results.
  std::size_t arena_bytes = 0;
  std::size_t arena_allocations = 0;
};

class ExperimentRunner {
 public:
  /// One full page load of `page` under `scheme`. Fresh testbed, cold
  /// caches (the paper flushes caches between runs).
  static RunResult run(Scheme scheme, const web::WebPage& page,
                       const RunConfig& config);
};

/// Per-scheme collection across runs with median accessors.
struct SchemeSeries {
  std::vector<RunResult> runs;

  [[nodiscard]] double median_olt_sec() const;
  [[nodiscard]] double median_tlt_sec() const;
  [[nodiscard]] double median_radio_j() const;
  [[nodiscard]] double median_cr_j() const;
};

struct RoundsConfig {
  int rounds = 5;
  /// Drop rounds where the schemes saw signal differing by more than this
  /// (paper §7.2 discarded ~50% of rounds for incomparable signal).
  double signal_tolerance_db = 3.0;
  /// Paper ignores the first run of each round (warm-up effects).
  bool discard_first_round = true;
  /// Worker threads fanning the (round × scheme) runs out. Every run's
  /// seed is derived from (base seed, round, scheme slot) up front, so any
  /// jobs value produces bitwise-identical results; 1 runs inline on the
  /// calling thread, <= 0 selects hardware_concurrency.
  int jobs = 1;
  RunConfig base;
};

struct RoundsOutcome {
  std::map<Scheme, SchemeSeries> series;
  int rounds_total = 0;
  int rounds_kept = 0;
};

/// Run `schemes` back-to-back per round with per-run fade seeds derived
/// from the round, filter incomparable rounds, and return the kept runs.
RoundsOutcome run_rounds(const web::WebPage& page,
                         const std::vector<Scheme>& schemes,
                         const RoundsConfig& config);

}  // namespace parcel::core
