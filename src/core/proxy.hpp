// ParcelProxy: the cloud half of PARCEL (§4.2, §5.1).
//
// On receiving the URL request it loads the page with a full headless
// browser engine over its well-provisioned paths — resolving DNS,
// parsing HTML, scanning CSS and *executing JS* to identify dynamically
// referenced objects — and intercepts every origin response into the
// BundleScheduler, which pushes MHTML bundles to the client under the
// configured policy. After onload it runs the paper's completion
// heuristic (a window of proxy–server inactivity) and then notifies the
// client, releasing any suppressed client requests as fallbacks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "browser/dir_browser.hpp"
#include "browser/engine.hpp"
#include "core/bundle_scheduler.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace parcel::core {

using util::Duration;
using util::TimePoint;

struct ProxyConfig {
  browser::DirConfig fetch;  // engine speed + pool settings at the proxy
  BundleConfig bundle = BundleConfig::ind();
  /// Completion heuristic: declare the page done after this much
  /// proxy–server inactivity following onload (§4.5).
  Duration inactivity_window = Duration::seconds(1.5);

  static ProxyConfig with_bundle(BundleConfig bundle);
};

/// Fetcher decorator: the Firefox-extension equivalent that intercepts
/// HTTP responses on their way into the proxy engine (§5.1).
class InterceptingFetcher final : public browser::Fetcher {
 public:
  using Interceptor = std::function<void(const browser::FetchResult&)>;

  InterceptingFetcher(browser::Fetcher& inner, Interceptor interceptor);

  void fetch(const net::Url& url, web::ObjectType hint, bool randomized,
             std::uint32_t object_id,
             std::function<void(browser::FetchResult)> on_result) override;

 private:
  browser::Fetcher& inner_;
  Interceptor interceptor_;
};

class ParcelProxy {
 public:
  using PushFn = std::function<void(web::MhtmlWriter bundle)>;
  using NotifyFn = std::function<void()>;

  ParcelProxy(net::Network& network, ProxyConfig config, util::Rng rng);

  /// Serve the client's URL request. `push` carries bundles towards the
  /// client; `notify_complete` is the completion notification.
  void start(const net::Url& url, const std::string& user_agent, PushFn push,
             NotifyFn notify_complete);

  /// Serve a subsequent page of the same session (§4.5 "personalized
  /// proxies ... mirror the state of the objects stored at the client"):
  /// objects already pushed in this session are identified but *not*
  /// re-transmitted — the client has them cached.
  void load_page(const net::Url& url);

  /// Fallback: fetch one object the client found missing and push it as a
  /// single-part bundle (after the heuristic missed it, §4.5).
  void fetch_for_client(const net::Url& url, web::ObjectType hint);

  /// Relay a POST unmodified to the origin (§4.5); the response body is
  /// pushed back as a single-part bundle (or a 204 marker part).
  void relay_post(const net::Url& url, util::Bytes body_bytes);

  /// Mid-load bundle retarget (ISSUE 10): the ctrl::BundleController's
  /// new b* reaches both the live scheduler (effective at the next
  /// bundle boundary) and the config future pages inherit. No-op under
  /// IND/ONLD policies.
  void set_bundle_threshold(util::Bytes threshold);

  /// The proxy process dies: the in-progress page's state is lost, no
  /// further bundles, pushes, or completion notes are emitted, and
  /// incoming client requests are silently dropped (exactly what a dead
  /// TCP peer looks like at this model's granularity).
  void crash();
  /// A fresh process comes back up. The interrupted load is NOT resumed —
  /// the page state died with the old process; recovery is client-driven.
  /// A later load_page() starts cleanly on the new process.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::size_t crash_count() const { return crash_count_; }

  [[nodiscard]] bool started() const { return engine_ != nullptr; }
  [[nodiscard]] const browser::BrowserEngine& engine() const;
  [[nodiscard]] bool completion_declared() const {
    return completion_declared_;
  }
  [[nodiscard]] std::optional<TimePoint> onload_time() const;
  [[nodiscard]] const BundleScheduler& scheduler() const;
  [[nodiscard]] std::size_t fallback_serves() const {
    return fallback_serves_;
  }
  /// Objects skipped because the cache mirror says the client has them.
  [[nodiscard]] std::size_t mirror_skips() const { return mirror_skips_; }

 private:
  void arm_completion_timer();
  void begin_load(const net::Url& url,
                  const browser::FetchCache* warm = nullptr);
  void on_intercept(const browser::FetchResult& result);

  net::Network& network_;
  ProxyConfig config_;
  util::Rng rng_;
  PushFn push_;
  NotifyFn notify_complete_;

  std::unique_ptr<browser::NetworkFetcher> net_fetcher_;
  std::unique_ptr<InterceptingFetcher> intercepting_;
  std::unique_ptr<browser::BrowserEngine> engine_;
  std::unique_ptr<BundleScheduler> scheduler_;

  bool onload_seen_ = false;
  bool completion_declared_ = false;
  bool crashed_ = false;
  /// The load that was in flight when the proxy crashed is unrecoverable
  /// even after restart (fresh process, no page state).
  bool page_lost_ = false;
  std::size_t crash_count_ = 0;
  std::size_t fallback_serves_ = 0;
  std::size_t mirror_skips_ = 0;
  /// URLs already delivered to the client this session (the cache
  /// mirror, interned ids); also holds engines of earlier pages whose
  /// scheduled events may still be draining.
  std::unordered_set<net::UrlId, net::UrlIdHash> pushed_;
  std::vector<std::unique_ptr<browser::BrowserEngine>> retired_engines_;
  std::vector<std::unique_ptr<browser::NetworkFetcher>> retired_fetchers_;
  std::vector<std::unique_ptr<InterceptingFetcher>> retired_intercepting_;
  sim::EventHandle completion_timer_;
};

}  // namespace parcel::core
