// ParcelSession: wires the PARCEL client and proxy over a single TCP
// connection through the radio (Table 1: one connection, one client HTTP
// request per page).
//
// Protocol on the wire (sizes are what cross the simulated radio):
//   client -> proxy : URL request with device attributes (§4.5)
//   proxy  -> client: MHTML bundles (IND / ONLD / PARCEL(X) schedule)
//   proxy  -> client: completion notification
//   client -> proxy : fallback GETs for objects the proxy missed
//
// HTTPS pages bypass the proxy entirely (§4.5): the session falls back to
// a direct DIR-style load.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "browser/dir_browser.hpp"
#include "browser/engine.hpp"
#include "core/client.hpp"
#include "core/proxy.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"

namespace parcel::core {

struct ParcelSessionConfig {
  ProxyConfig proxy = ProxyConfig::with_bundle(BundleConfig::ind());
  browser::EngineConfig client_engine;
  net::TcpParams tcp;
  /// Domain under which the proxy is reachable from the client vantage.
  std::string proxy_domain = "parcel.proxy";
  std::string user_agent = "ParcelBrowser/1.0 (Android; Webview)";
  std::string screen_info = "720x1280";
  /// Ablation: disable the client's request suppression (§4.5).
  bool client_suppression = true;

  /// Stall watchdog: when the page is incomplete and no bundle or
  /// completion note has arrived for this long, the client presumes the
  /// proxy dead and degrades to direct-to-origin fetches (DESIGN.md §7).
  /// Zero (the default) disables the watchdog — no timer is ever armed.
  util::Duration stall_deadline = util::Duration::zero();
  /// Fetch config for the degraded direct path (the experiment harness
  /// applies the same TCP params and hardening as the rest of the run).
  browser::DirConfig direct_fetch;
};

class ParcelSession {
 public:
  struct Callbacks {
    std::function<void(util::TimePoint)> on_onload;
    /// Fires when the client engine is done AND the proxy has declared
    /// completion AND nothing is left in flight — the end of the TLT
    /// window.
    std::function<void(util::TimePoint)> on_complete;
  };

  ParcelSession(net::Network& network, ParcelSessionConfig config,
                util::Rng rng);

  /// Load a page. The first call opens the session; subsequent calls
  /// continue it on the same connection: the device keeps its cache of
  /// pushed objects, and the personalized proxy's cache mirror ensures
  /// already-delivered objects are not re-transmitted (§4.5, §7.3).
  void load(const net::Url& url, Callbacks callbacks);

  /// Local interaction (§8.2): JS runs on the device; no radio traffic
  /// when the target is cached.
  void click(int index, std::function<void()> on_done);

  /// POST relayed through the proxy unmodified (§4.5).
  void post(const net::Url& url, util::Bytes body_bytes,
            std::function<void()> on_response);

  /// Fault hooks (driven by the experiment harness's fault plan): the
  /// proxy process dies / comes back. Recovery is client-driven — the
  /// stall watchdog notices the silence and degrades to direct fetches.
  void inject_proxy_crash();
  void inject_proxy_restart();

  /// Closed-loop retarget (ISSUE 10): the ctrl::BundleController's new
  /// b* is forwarded to the proxy's bundle scheduler, where it takes
  /// effect at the next bundle boundary. In the real deployment this
  /// rides the uplink as a tiny control message; its bytes are below the
  /// burst granularity the simulator models, so no radio traffic is
  /// charged.
  void retune_bundle_threshold(util::Bytes threshold);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] browser::BrowserEngine& client_engine();
  [[nodiscard]] const ParcelProxy& proxy() const { return proxy_; }
  [[nodiscard]] const ParcelClientFetcher& client_fetcher() const {
    return fetcher_;
  }
  [[nodiscard]] bool used_direct_path() const {
    return direct_ != nullptr;
  }
  [[nodiscard]] std::size_t bundles_delivered() const {
    return bundles_delivered_;
  }
  [[nodiscard]] util::Bytes bundle_bytes_delivered() const {
    return bundle_bytes_;
  }
  /// True once the stall watchdog gave up on the proxy.
  [[nodiscard]] bool degraded() const { return degraded_at_.has_value(); }
  [[nodiscard]] std::optional<util::TimePoint> degraded_at() const {
    return degraded_at_;
  }
  /// TCP retransmissions on the client's radio-crossing connections (the
  /// proxy link plus the degraded direct path, if it was opened).
  [[nodiscard]] std::uint64_t transport_retransmits() const;

 private:
  void push_bundle(web::MhtmlWriter bundle);
  void send_completion_note();
  void check_session_complete();
  void note_progress();
  void arm_watchdog();
  void on_watchdog();
  void ensure_direct_fetcher();

  net::Network& network_;
  ParcelSessionConfig config_;
  util::Rng rng_;
  Callbacks callbacks_;

  net::TcpConnection conn_;
  ParcelProxy proxy_;
  ParcelClientFetcher fetcher_;
  std::unique_ptr<browser::BrowserEngine> engine_;
  /// Engines of earlier pages in the session, kept alive because late
  /// scheduled events may still reference them.
  std::vector<std::unique_ptr<browser::BrowserEngine>> retired_engines_;
  bool session_open_ = false;
  util::Rng engine_rng_{0};

  /// HTTPS bypass path.
  std::unique_ptr<browser::DirBrowser> direct_;

  /// Degraded-mode fetcher, constructed lazily at degradation time so
  /// fault-free runs consume no extra RNG forks (byte-identity).
  std::unique_ptr<browser::NetworkFetcher> direct_fetcher_;
  sim::EventHandle watchdog_;
  util::TimePoint last_progress_;
  bool proxy_presumed_dead_ = false;
  std::optional<util::TimePoint> degraded_at_;

  bool client_complete_ = false;
  bool complete_fired_ = false;
  std::size_t pushes_in_flight_ = 0;
  std::size_t bundles_delivered_ = 0;
  /// POST responses awaited: (bundle count to reach, callback).
  std::vector<std::pair<std::size_t, std::function<void()>>> post_waiters_;
  /// Fallback sends raised before the connection established.
  std::vector<std::function<void()>> pending_fallbacks_;
  util::Bytes bundle_bytes_ = 0;
  std::uint32_t next_push_id_ = 50'000;
};

}  // namespace parcel::core
