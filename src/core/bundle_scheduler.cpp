#include "core/bundle_scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace parcel::core {

std::string_view to_string(BundlePolicy p) {
  switch (p) {
    case BundlePolicy::kInd: return "IND";
    case BundlePolicy::kOnload: return "ONLD";
    case BundlePolicy::kThreshold: return "PARCEL(X)";
  }
  return "?";
}

std::string BundleConfig::name() const {
  switch (policy) {
    case BundlePolicy::kInd: return "PARCEL(IND)";
    case BundlePolicy::kOnload: return "PARCEL(ONLD)";
    case BundlePolicy::kThreshold: {
      if (threshold >= util::mib(1)) {
        long mb = threshold / util::mib(1);
        return "PARCEL(" + std::to_string(mb) + "M)";
      }
      return "PARCEL(" + std::to_string(threshold / 1024) + "K)";
    }
  }
  return "PARCEL(?)";
}

BundleScheduler::BundleScheduler(BundleConfig config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("BundleScheduler: null sink");
  if (config_.policy == BundlePolicy::kThreshold && config_.threshold <= 0) {
    throw std::invalid_argument("BundleScheduler: threshold must be positive");
  }
}

void BundleScheduler::on_object(const net::Url& url, web::ObjectType type,
                                Bytes size,
                                std::shared_ptr<const std::string> content) {
  pending_.add_raw(url, std::string(web::mime_type(type)), size,
                   std::move(content));
  switch (config_.policy) {
    case BundlePolicy::kInd:
      flush();
      break;
    case BundlePolicy::kOnload:
      // Hold until onload; after onload was already flushed, stragglers
      // wait for the completion flush.
      break;
    case BundlePolicy::kThreshold:
      if (pending_.payload_bytes() >= config_.threshold) flush();
      break;
  }
}

void BundleScheduler::on_proxy_onload() {
  onload_seen_ = true;
  // Both ONLD and PARCEL(X) release accumulated data at the onload event
  // (§4.4: "or if the onload event is detected").
  if (config_.policy != BundlePolicy::kInd) flush();
}

void BundleScheduler::on_page_complete() { flush(); }

void BundleScheduler::set_threshold(Bytes threshold) {
  if (threshold <= 0) {
    throw std::invalid_argument(
        "BundleScheduler::set_threshold: threshold must be positive");
  }
  config_.threshold = threshold;
}

void BundleScheduler::flush() {
  if (pending_.empty()) return;
  web::MhtmlWriter bundle = std::move(pending_);
  pending_ = web::MhtmlWriter{};
  ++bundles_sent_;
  sink_(std::move(bundle));
}

}  // namespace parcel::core
