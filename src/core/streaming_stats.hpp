// Streaming metric sketches for million-session fleet runs (ISSUE 7,
// tentpole a; DESIGN.md §12).
//
// A fleet run at K = 10^6 cannot hold one RunResult per session, but the
// headline fleet metrics are order statistics (p50/p95/p99 OLT, queue
// waits) plus running sums. LogHistogram is the deterministic sketch that
// makes those order statistics streamable:
//
//  * Fixed geometric bins over a configured value range — bin edges are a
//    pure function of the Layout, never of the data. No sampling, no
//    data-dependent bin splits: the same value always lands in the same
//    bin on every thread, every --jobs value, every process.
//
//  * Integer bin counts, so merge is bin-wise u64 addition — exact,
//    commutative and associative. Epoch-parallel fleet execution merges
//    per-epoch sketches in epoch order and the result is bitwise
//    independent of how the epochs were scheduled.
//
//  * Documented error bound: with bin-edge ratio γ (= 10^(1/bins_per_decade)),
//    quantile() returns the geometric midpoint of the bin containing the
//    nearest-rank order statistic, so the reported value is within a
//    multiplicative factor √γ of the exact nearest-rank quantile:
//    relative error <= √γ - 1 (2.4% at the default 48 bins/decade).
//    Values below min_value (including zero — idle queues produce many
//    zero waits) report as 0; values above max_value clamp to max_value.
//
// StreamingStats wraps a LogHistogram with exact count/sum/min/max so the
// fleet can report exact totals and means next to bounded-error quantiles.
#pragma once

#include <cstdint>
#include <vector>

namespace parcel::core {

class LogHistogram {
 public:
  /// Bin geometry. Two histograms merge iff their layouts are equal. The
  /// defaults span 1 µs .. 1 Ms (12 decades) of seconds-or-joules-scaled
  /// metrics at 48 bins/decade: 576 bins, ~4.6 KB, 2.4% worst-case
  /// relative quantile error.
  struct Layout {
    double min_value = 1e-6;
    double max_value = 1e6;
    int bins_per_decade = 48;
    bool operator==(const Layout&) const = default;
  };

  /// Throws std::invalid_argument on a non-positive range, max <= min, or
  /// bins_per_decade < 1.
  explicit LogHistogram(Layout layout);
  LogHistogram() : LogHistogram(Layout{}) {}

  void add(double value) { add_n(value, 1); }
  void add_n(double value, std::uint64_t n);

  /// Bin-wise integer merge; throws std::invalid_argument on layout
  /// mismatch. Exact: any merge order yields identical counts.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }

  /// Nearest-rank quantile, `pct` in [0, 100]: the geometric midpoint of
  /// the bin holding the ceil(pct/100 * count)-th smallest value (clamped
  /// to [1, count]). 0.0 on an empty histogram or when the rank falls in
  /// the underflow bin; max_value when it falls in the overflow bin.
  [[nodiscard]] double quantile(double pct) const;

  /// Worst-case relative error of quantile() vs the exact nearest-rank
  /// order statistic, for values inside [min_value, max_value): √γ - 1.
  [[nodiscard]] double relative_error_bound() const;

  [[nodiscard]] const Layout& layout() const { return layout_; }
  /// Total bins including the underflow and overflow bins.
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }

  bool operator==(const LogHistogram&) const = default;

 private:
  [[nodiscard]] std::size_t bin_index(double value) const;

  Layout layout_;
  std::size_t regular_bins_ = 0;
  double log_min_ = 0.0;        // ln(min_value)
  double inv_log_gamma_ = 0.0;  // 1 / ln(γ); bin = floor(ln(v/min) * this)
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counts_;  // [underflow][regular...][overflow]
};

/// One metric's streaming aggregate: exact count/sum/min/max plus the
/// bounded-error quantile sketch. merge() is exact for the integer and
/// min/max fields; the caller fixes the fold order of the double sum
/// (fleet merges epochs in epoch-index order) so results stay bitwise
/// reproducible for any worker schedule.
class StreamingStats {
 public:
  StreamingStats() = default;
  explicit StreamingStats(LogHistogram::Layout layout) : hist_(layout) {}

  void add(double value);
  void merge(const StreamingStats& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double quantile(double pct) const {
    return hist_.quantile(pct);
  }
  [[nodiscard]] const LogHistogram& histogram() const { return hist_; }

  bool operator==(const StreamingStats&) const = default;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  LogHistogram hist_;
};

}  // namespace parcel::core
