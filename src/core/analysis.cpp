#include "core/analysis.hpp"

#include <cmath>
#include <stdexcept>

namespace parcel::core {

AnalyticalModel::AnalyticalModel(ModelParams params) : params_(params) {
  if (params_.download_bytes_per_sec <= 0 || params_.onload_bytes <= 0) {
    throw std::invalid_argument("AnalyticalModel: s and B must be positive");
  }
}

Duration AnalyticalModel::ldrx_time(double n) const {
  const auto& rrc = params_.rrc;
  double transfer = static_cast<double>(params_.onload_bytes) /
                    params_.download_bytes_per_sec;
  double dl = params_.proxy_onload.sec() - (n - 1.0) / n * transfer -
              (n - 1.0) * (rrc.cr_tail.sec() + rrc.short_drx.sec());
  if (dl < 0.0) dl = 0.0;
  return Duration::seconds(dl);
}

Energy AnalyticalModel::energy(double n) const {
  const auto& rrc = params_.rrc;
  double transfer = static_cast<double>(params_.onload_bytes) /
                    params_.download_bytes_per_sec;
  double e = rrc.p_long_drx.w() * ldrx_time(n).sec() +
             (n - 1.0) * (rrc.p_cr.w() * rrc.cr_tail.sec() +
                          rrc.p_short_drx.w() * rrc.short_drx.sec()) +
             rrc.p_cr.w() * transfer;
  return Energy::joules(e);
}

Duration AnalyticalModel::onload_time(double n) const {
  double transfer = static_cast<double>(params_.onload_bytes) /
                    params_.download_bytes_per_sec;
  return params_.proxy_onload + Duration::seconds(transfer / n);
}

double AnalyticalModel::optimal_bundle_count() const {
  double b_over_s = static_cast<double>(params_.onload_bytes) /
                    params_.download_bytes_per_sec;
  return std::sqrt(b_over_s) / alpha();
}

Bytes AnalyticalModel::optimal_bundle_bytes() const {
  return static_cast<Bytes>(
      alpha() * std::sqrt(params_.download_bytes_per_sec *
                          static_cast<double>(params_.onload_bytes)));
}

}  // namespace parcel::core
