// Per-run bump allocation (ROADMAP item 3; DESIGN.md §11).
//
// Every experiment run allocates the same shape of transient state —
// scheduler event entries, browser fetch-cache/ledger bookkeeping, and
// the packet-trace columns — and throws all of it away when the run
// finishes. core::Arena is a monotonic chunked bump allocator for exactly
// that lifetime: allocation is a pointer bump, deallocation is a no-op,
// and the whole run's memory is released (or recycled via reset()) in one
// step. core::ArenaResource adapts it to std::pmr so the hot containers
// opt in without new container types.
//
// Plumbing: ExperimentRunner::run (and fleet::run_fleet for the macro
// timeline) installs a thread-local ArenaScope; components that want
// per-run storage construct their pmr containers from run_resource(),
// which yields the active scope's arena — or the default new/delete
// resource outside any scope, under the PARCEL_ARENA=0 kill switch, or
// via set_arena_enabled(false). Results must never retain arena memory:
// anything that outlives the run (RunResult and friends) keeps
// default-resource containers, so the pmr handoff (copy/move-assignment
// across unequal resources) lands element-wise on the global heap.
//
// Determinism: allocation placement never feeds results, so arena on/off
// is bitwise-identical by construction and pinned by test
// (ArenaIdentity.*) and by the ci.sh PARCEL_ARENA=0 ASan leg. The header
// is intentionally self-contained (header-only): sim/, trace/ and
// browser/ sit below core in the link order and still inline everything
// they need.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <vector>

#include "util/env.hpp"

namespace parcel::core {

/// Monotonic chunked bump allocator. Not thread-safe: one arena belongs
/// to one run on one worker thread (the ArenaScope install is
/// thread-local for the same reason).
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (which must be a power of
  /// two). Never returns nullptr; throws std::bad_alloc like operator new
  /// when the host is out of memory.
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    ++allocations_;
    bytes_requested_ += bytes;
    if (active_ < chunks_.size()) {
      if (void* p = bump(chunks_[active_], bytes, align)) return p;
      // Retained chunks from before a reset() may still have room.
      while (active_ + 1 < chunks_.size()) {
        ++active_;
        if (void* p = bump(chunks_[active_], bytes, align)) return p;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Rewind every chunk to empty, retaining capacity. Objects previously
  /// allocated from the arena must already be dead (their destructors are
  /// the owner's business; the arena never runs them).
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
    bytes_requested_ = 0;
    allocations_ = 0;
    ++resets_;
  }

  // --- Stats (feed BENCH_kernel.json's bytes-allocated-per-load) --------
  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_requested_;
  }
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t n = 0;
    for (const Chunk& c : chunks_) n += c.size;
    return n;
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t allocation_count() const { return allocations_; }
  [[nodiscard]] std::size_t reset_count() const { return resets_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static void* bump(Chunk& c, std::size_t bytes, std::size_t align) {
    // Align the address, not the offset: operator new[] only guarantees
    // the chunk base is aligned to the default new alignment (16), so an
    // aligned offset from an insufficiently aligned base is not enough
    // for stricter requests.
    auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    std::uintptr_t p =
        (base + c.used + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    if (p + bytes > base + c.size) return nullptr;
    c.used = static_cast<std::size_t>(p + bytes - base);
    return reinterpret_cast<void*>(p);
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Geometric chunk growth keeps chunk count logarithmic in run size;
    // an oversized request gets a dedicated chunk so it cannot strand a
    // near-empty one.
    std::size_t want = chunk_bytes_ << (chunks_.size() < 8 ? chunks_.size()
                                                           : 8);
    if (bytes + align > want) want = bytes + align;
    Chunk c;
    c.data = std::make_unique<std::byte[]>(want);
    c.size = want;
    chunks_.push_back(std::move(c));
    active_ = chunks_.size() - 1;
    void* p = bump(chunks_.back(), bytes, align);
    if (p == nullptr) throw std::bad_alloc();
    return p;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t bytes_requested_ = 0;
  std::size_t allocations_ = 0;
  std::size_t resets_ = 0;
};

/// std::pmr adapter: containers constructed from this resource bump out
/// of the arena and never return memory (deallocate is a no-op).
class ArenaResource final : public std::pmr::memory_resource {
 public:
  explicit ArenaResource(Arena& arena) : arena_(&arena) {}
  [[nodiscard]] Arena& arena() { return *arena_; }

 private:
  void* do_allocate(std::size_t bytes, std::size_t align) override {
    return arena_->allocate(bytes, align);
  }
  void do_deallocate(void*, std::size_t, std::size_t) noexcept override {}
  [[nodiscard]] bool do_is_equal(
      const std::pmr::memory_resource& other) const noexcept override {
    return this == &other;
  }

  Arena* arena_;
};

namespace detail {
inline std::atomic<bool>& arena_flag() {
  // parcel-lint: allow(nondet-transitive) PARCEL_ARENA kill switch read once at startup; arena on/off is byte-identical by test, so the env read cannot reach results
  static std::atomic<bool> flag{util::env_flag("PARCEL_ARENA", true)};
  return flag;
}
inline std::pmr::memory_resource*& tls_run_resource() {
  thread_local std::pmr::memory_resource* current = nullptr;
  return current;
}
}  // namespace detail

/// Global arena kill switch: PARCEL_ARENA=0 in the environment (read
/// once) or set_arena_enabled(false). Off means ArenaScope installs
/// nothing and every run_resource() call yields the default heap
/// resource — the byte-identity comparison path.
[[nodiscard]] inline bool arena_enabled() {
  return detail::arena_flag().load(std::memory_order_relaxed);
}
inline void set_arena_enabled(bool on) {
  detail::arena_flag().store(on, std::memory_order_relaxed);
}

/// The memory resource per-run containers should draw from: the innermost
/// active ArenaScope's arena on this thread, else the default resource.
[[nodiscard]] inline std::pmr::memory_resource* run_resource() {
  std::pmr::memory_resource* r = detail::tls_run_resource();
  return r != nullptr ? r : std::pmr::get_default_resource();
}

/// RAII install of an arena as this thread's run resource. Scopes nest
/// (the previous resource is restored on destruction) and degrade to
/// no-ops when the kill switch is off, so callers never branch.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : resource_(arena), prev_(detail::tls_run_resource()) {
    if (arena_enabled()) detail::tls_run_resource() = &resource_;
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
  ~ArenaScope() { detail::tls_run_resource() = prev_; }

 private:
  ArenaResource resource_;
  std::pmr::memory_resource* prev_;
};

}  // namespace parcel::core
