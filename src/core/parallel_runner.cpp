#include "core/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace parcel::core {

int default_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs <= 0 ? default_jobs() : jobs) {}

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work queue: an atomic cursor over [0, n). Simulations vary widely in
  // cost (page size, scheme), so dynamic stealing beats static striping.
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread pulls its weight too
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> run_experiments(const std::vector<ExperimentTask>& tasks,
                                       int jobs) {
  std::vector<RunResult> results(tasks.size());
  ParallelRunner runner(jobs);
  runner.for_each_index(tasks.size(), [&](std::size_t i) {
    const ExperimentTask& t = tasks[i];
    results[i] = ExperimentRunner::run(t.scheme, *t.page, t.config);
  });
  return results;
}

}  // namespace parcel::core
