#include "core/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace parcel::core {

namespace {

// First-error capture shared by the worker pool.  Workers race into
// capture(); only the first exception is kept, and it is rethrown on the
// calling thread once the pool has joined.  The annotated mutex makes
// the discipline checkable under clang -Wthread-safety.
class ErrorSlot {
 public:
  void capture() {
    util::MutexLock lock(mu_);
    if (!first_) first_ = std::current_exception();
  }

  void rethrow_if_set() {
    util::MutexLock lock(mu_);
    if (first_) std::rethrow_exception(first_);
  }

 private:
  util::Mutex mu_;
  std::exception_ptr first_ PARCEL_GUARDED_BY(mu_);
};

}  // namespace

int default_jobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int jobs)
    : jobs_(jobs <= 0 ? default_jobs() : jobs) {}

void ParallelRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Work queue: an atomic cursor over [0, n). Simulations vary widely in
  // cost (page size, scheme), so dynamic stealing beats static striping.
  std::atomic<std::size_t> next{0};
  ErrorSlot error;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        error.capture();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread pulls its weight too
  for (std::thread& t : pool) t.join();

  error.rethrow_if_set();
}

std::vector<RunResult> run_experiments(const std::vector<ExperimentTask>& tasks,
                                       int jobs) {
  std::vector<RunResult> results(tasks.size());
  ParallelRunner runner(jobs);
  runner.for_each_index(tasks.size(), [&](std::size_t i) {
    const ExperimentTask& t = tasks[i];
    results[i] = ExperimentRunner::run(t.scheme, *t.page, t.config);
  });
  return results;
}

}  // namespace parcel::core
