// Parallel experiment fan-out (paper §7-§8 evaluation at corpus scale).
//
// Every (page × scheme × round) run is an independent deterministic
// simulation: it builds its own Testbed (own Scheduler, Network, RNG) from
// an explicit seed, so runs share no mutable state and can execute on any
// thread. ParallelRunner fans a batch of such runs across a fixed-size
// worker pool; results land in pre-indexed slots, so output ordering — and
// therefore every downstream median/CDF — is bitwise identical to the
// serial path. jobs=1 executes inline on the calling thread (today's
// behavior, exactly).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/experiment.hpp"

namespace parcel::core {

/// Number of worker threads used when a caller passes jobs <= 0:
/// std::thread::hardware_concurrency(), or 1 if that is unknown.
[[nodiscard]] int default_jobs();

/// Fixed-size worker pool over an indexed batch of independent tasks.
class ParallelRunner {
 public:
  /// jobs <= 0 selects default_jobs().
  explicit ParallelRunner(int jobs = 0);

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Invoke `fn(i)` for every i in [0, n), distributing indices across the
  /// pool; blocks until all complete. With jobs()==1 (or n<=1) everything
  /// runs inline on the calling thread. The first exception thrown by any
  /// task is rethrown here after all workers have stopped.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn) const;

 private:
  int jobs_ = 1;
};

/// One ExperimentRunner::run invocation, fully described by value (the
/// page is borrowed and must outlive the batch).
struct ExperimentTask {
  Scheme scheme = Scheme::kDir;
  const web::WebPage* page = nullptr;
  RunConfig config;
};

/// Run every task (in any thread order) and return results indexed exactly
/// like `tasks` — slot i always holds the result of tasks[i].
[[nodiscard]] std::vector<RunResult> run_experiments(
    const std::vector<ExperimentTask>& tasks, int jobs);

}  // namespace parcel::core
