#include "core/streaming_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace parcel::core {

LogHistogram::LogHistogram(Layout layout) : layout_(layout) {
  if (!(layout_.min_value > 0.0) || !std::isfinite(layout_.min_value)) {
    throw std::invalid_argument(
        "LogHistogram: min_value must be finite and > 0");
  }
  if (!(layout_.max_value > layout_.min_value) ||
      !std::isfinite(layout_.max_value)) {
    throw std::invalid_argument(
        "LogHistogram: max_value must be finite and > min_value");
  }
  if (layout_.bins_per_decade < 1) {
    throw std::invalid_argument("LogHistogram: bins_per_decade must be >= 1");
  }
  log_min_ = std::log(layout_.min_value);
  double log_gamma =
      std::log(10.0) / static_cast<double>(layout_.bins_per_decade);
  inv_log_gamma_ = 1.0 / log_gamma;
  double decades =
      (std::log(layout_.max_value) - log_min_) / std::log(10.0);
  regular_bins_ = static_cast<std::size_t>(std::ceil(
                      decades * static_cast<double>(layout_.bins_per_decade))) +
                  1;
  counts_.assign(regular_bins_ + 2, 0);  // + underflow + overflow
}

std::size_t LogHistogram::bin_index(double value) const {
  // NaN and anything below min_value (zero waits, negatives) land in the
  // underflow bin; the comparison is written so NaN fails it.
  if (!(value >= layout_.min_value)) return 0;
  if (value >= layout_.max_value) return counts_.size() - 1;
  double offset = (std::log(value) - log_min_) * inv_log_gamma_;
  auto bin = static_cast<std::size_t>(std::max(0.0, std::floor(offset)));
  // FP rounding at the top edge cannot escape the regular range.
  bin = std::min(bin, regular_bins_ - 1);
  return bin + 1;
}

void LogHistogram::add_n(double value, std::uint64_t n) {
  counts_[bin_index(value)] += n;
  total_ += n;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (!(layout_ == other.layout_)) {
    throw std::invalid_argument("LogHistogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::quantile(double pct) const {
  if (total_ == 0) return 0.0;
  pct = std::clamp(pct, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(total_)));
  rank = std::clamp<std::uint64_t>(rank, 1, total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen < rank) continue;
    if (i == 0) return 0.0;  // below resolution (documented)
    if (i == counts_.size() - 1) return layout_.max_value;
    // Geometric midpoint of regular bin i-1: min * γ^(i-1+0.5).
    double mid =
        std::exp(log_min_ + (static_cast<double>(i - 1) + 0.5) / inv_log_gamma_);
    return mid;
  }
  return layout_.max_value;  // unreachable: seen == total_ >= rank
}

double LogHistogram::relative_error_bound() const {
  // γ = 10^(1/bins_per_decade); midpoint reporting is within √γ of any
  // value in the bin.
  double half_log_gamma = 0.5 / inv_log_gamma_;
  return std::exp(half_log_gamma) - 1.0;
}

void StreamingStats::add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  hist_.add(value);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  hist_.merge(other.hist_);
}

}  // namespace parcel::core
