#include "core/session.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace parcel::core {

namespace {
constexpr util::Bytes kCompletionNoteBytes = 160;
}

ParcelSession::ParcelSession(net::Network& network, ParcelSessionConfig config,
                             util::Rng rng)
    : network_(network),
      config_(std::move(config)),
      rng_(rng.fork()),
      conn_(network.scheduler(), network.route("client", config_.proxy_domain),
            config_.tcp, network.next_conn_id()),
      proxy_(network, config_.proxy, rng.fork()),
      fetcher_(network.scheduler(), rng.fork()) {
  engine_rng_ = rng.fork();
  engine_ = std::make_unique<browser::BrowserEngine>(
      network.scheduler(), fetcher_, config_.client_engine,
      engine_rng_.fork(), "parcel-client");
  fetcher_.set_suppression(config_.client_suppression);
  fetcher_.set_fallback([this](const net::Url& url, web::ObjectType hint) {
    // Fallback GET travels up the persistent connection; the proxy
    // fetches and pushes the answer as a single-part bundle. Fallbacks
    // raised before the handshake finishes (possible with suppression
    // disabled) wait for it.
    auto send = [this, url, hint] {
      net::HttpRequest request;
      request.url = url;
      conn_.send_to_server(request.wire_size(), /*object_id=*/0,
                           [this, url, hint](util::TimePoint) {
                             proxy_.fetch_for_client(url, hint);
                           });
    };
    if (conn_.established()) {
      send();
    } else {
      pending_fallbacks_.push_back(std::move(send));
    }
  });
}

browser::BrowserEngine& ParcelSession::client_engine() {
  if (direct_) return direct_->engine();
  return *engine_;
}

void ParcelSession::load(const net::Url& url, Callbacks callbacks) {
  callbacks_ = std::move(callbacks);

  if (url.is_https()) {
    // §4.5: encrypted pages bypass the proxy; fall back to the
    // traditional download path.
    util::log_info("core.session",
                   "HTTPS page, bypassing proxy: " + url.str());
    browser::DirConfig direct_cfg;
    direct_cfg.engine = config_.client_engine;
    direct_cfg.tcp = config_.tcp;
    direct_ = std::make_unique<browser::DirBrowser>(network_, direct_cfg,
                                                    rng_.fork());
    browser::BrowserEngine::Callbacks cbs;
    cbs.on_onload = callbacks_.on_onload;
    cbs.on_complete = callbacks_.on_complete;
    direct_->load(url, std::move(cbs));
    return;
  }

  browser::BrowserEngine::Callbacks cbs;
  cbs.on_onload = [this](util::TimePoint t) {
    if (callbacks_.on_onload) callbacks_.on_onload(t);
  };
  cbs.on_complete = [this](util::TimePoint) {
    client_complete_ = true;
    check_session_complete();
  };

  // Client -> proxy: the one URL request, carrying device attributes so
  // the proxy can emulate the client towards origin servers (§4.5).
  net::HttpRequest request;
  request.url = url;
  request.user_agent = config_.user_agent;
  request.screen_info = config_.screen_info;
  util::Bytes request_bytes = request.wire_size();

  if (session_open_) {
    // Subsequent page on the open session: fresh engines, persistent
    // device cache + cache mirror, same connection.
    if (!client_complete_ || !proxy_.completion_declared()) {
      throw std::logic_error(
          "ParcelSession::load: previous page still loading");
    }
    client_complete_ = false;
    complete_fired_ = false;
    fetcher_.on_new_page();
    note_progress();
    arm_watchdog();
    retired_engines_.push_back(std::move(engine_));
    engine_ = std::make_unique<browser::BrowserEngine>(
        network_.scheduler(), fetcher_, config_.client_engine,
        engine_rng_.fork(), "parcel-client");
    conn_.send_to_server(request_bytes, /*object_id=*/0,
                         [this, url](util::TimePoint) {
                           proxy_.load_page(url);
                         });
    engine_->load(url, std::move(cbs));
    return;
  }
  session_open_ = true;
  note_progress();
  arm_watchdog();

  conn_.connect([this, url, request_bytes] {
    conn_.send_to_server(request_bytes, /*object_id=*/0,
                         [this, url](util::TimePoint) {
                           proxy_.start(
                               url, config_.user_agent,
                               [this](web::MhtmlWriter bundle) {
                                 push_bundle(std::move(bundle));
                               },
                               [this] { send_completion_note(); });
                         });
    for (auto& pending : pending_fallbacks_) pending();
    pending_fallbacks_.clear();
  });

  // The client engine starts immediately; its very first fetch (the main
  // HTML) is suppressed until the first bundle delivers it.
  engine_->load(url, std::move(cbs));
}

void ParcelSession::push_bundle(web::MhtmlWriter bundle) {
  // Serialize to the actual MHTML wire format; the string's length is the
  // exact byte count that crosses the radio.
  auto text = std::make_shared<const std::string>(bundle.serialize());
  auto wire_size = static_cast<util::Bytes>(text->size());
  ++pushes_in_flight_;
  conn_.stream_to_client(
      wire_size, next_push_id_++, [this, text, wire_size](util::TimePoint) {
        note_progress();
        ++bundles_delivered_;
        bundle_bytes_ += wire_size;
        fetcher_.on_bundle_parts(web::MhtmlReader::parse(*text));
        for (std::size_t i = 0; i < post_waiters_.size();) {
          if (bundles_delivered_ >= post_waiters_[i].first) {
            auto cb = std::move(post_waiters_[i].second);
            post_waiters_.erase(post_waiters_.begin() +
                                static_cast<std::ptrdiff_t>(i));
            cb();
          } else {
            ++i;
          }
        }
        --pushes_in_flight_;
        check_session_complete();
      });
}

void ParcelSession::send_completion_note() {
  ++pushes_in_flight_;
  conn_.stream_to_client(kCompletionNoteBytes, /*object_id=*/0,
                         [this](util::TimePoint) {
                           note_progress();
                           fetcher_.on_completion_note();
                           --pushes_in_flight_;
                           check_session_complete();
                         });
}

void ParcelSession::note_progress() {
  last_progress_ = network_.scheduler().now();
}

void ParcelSession::arm_watchdog() {
  if (config_.stall_deadline <= util::Duration::zero()) return;
  watchdog_.cancel();
  watchdog_ = network_.scheduler().schedule_after(config_.stall_deadline,
                                                  [this] { on_watchdog(); });
}

void ParcelSession::on_watchdog() {
  if (complete_fired_ || proxy_presumed_dead_) return;
  util::TimePoint now = network_.scheduler().now();
  if (now - last_progress_ < config_.stall_deadline) {
    // Progress since the timer was armed; watch from the latest beat.
    watchdog_ = network_.scheduler().schedule_at(
        last_progress_ + config_.stall_deadline, [this] { on_watchdog(); });
    return;
  }
  if (fetcher_.parked_count() == 0 && proxy_.completion_declared()) {
    // Quiet because the page is essentially done; let completion land.
    return;
  }
  // The proxy has been silent past the deadline with work outstanding:
  // presume it dead and walk down the degradation ladder — whatever the
  // bundles delivered stays cached, everything else goes direct-to-origin.
  util::log_info("core.session", "stall deadline passed, degrading to direct");
  proxy_presumed_dead_ = true;
  degraded_at_ = now;
  ensure_direct_fetcher();
  fetcher_.degrade_to_direct();
  check_session_complete();
}

void ParcelSession::ensure_direct_fetcher() {
  if (direct_fetcher_) return;
  direct_fetcher_ = std::make_unique<browser::NetworkFetcher>(
      network_, "client", config_.direct_fetch, rng_.fork());
  fetcher_.set_direct_fetch(
      [this](const net::Url& url, web::ObjectType hint,
             std::uint32_t object_id,
             std::function<void(browser::FetchResult)> on_result) {
        direct_fetcher_->fetch(url, hint, /*randomized=*/false, object_id,
                               std::move(on_result));
      });
}

void ParcelSession::inject_proxy_crash() { proxy_.crash(); }

void ParcelSession::inject_proxy_restart() { proxy_.restart(); }

void ParcelSession::retune_bundle_threshold(util::Bytes threshold) {
  proxy_.set_bundle_threshold(threshold);
}

std::uint64_t ParcelSession::transport_retransmits() const {
  std::uint64_t n = conn_.retransmits();
  if (direct_fetcher_) n += direct_fetcher_->retransmits();
  return n;
}

void ParcelSession::check_session_complete() {
  if (complete_fired_) return;
  if (!client_complete_) return;
  if (proxy_presumed_dead_) {
    // Degraded completion: the proxy will never declare anything; the
    // page is done when the client engine is done and nothing is parked.
    if (fetcher_.parked_count() != 0) return;
  } else {
    if (!proxy_.completion_declared()) return;
    if (pushes_in_flight_ != 0 || conn_.streaming()) return;
    if (fetcher_.parked_count() != 0) return;
  }
  complete_fired_ = true;
  watchdog_.cancel();
  if (callbacks_.on_complete) {
    callbacks_.on_complete(network_.scheduler().now());
  }
}

void ParcelSession::click(int index, std::function<void()> on_done) {
  client_engine().click(index, std::move(on_done));
}

void ParcelSession::post(const net::Url& url, util::Bytes body_bytes,
                         std::function<void()> on_response) {
  net::HttpRequest request;
  request.method = net::HttpMethod::kPost;
  request.url = url;
  request.body_bytes = body_bytes;
  // The response arrives as a single-part bundle; the application (not
  // the renderer) consumes POST results, so completion is observed by
  // watching the delivered-bundle count.
  post_waiters_.emplace_back(bundles_delivered_ + 1, std::move(on_response));
  conn_.send_to_server(request.wire_size(), /*object_id=*/0,
                       [this, url, body_bytes](util::TimePoint) {
                         proxy_.relay_post(url, body_bytes);
                       });
}

}  // namespace parcel::core
