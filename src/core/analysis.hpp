// The paper's §6 analytical model of bundling trade-offs.
//
// With B bytes aggregate at proxy onload, n equal bundles, download speed
// s between proxy and client, and proxy onload time Tp:
//
//   LDRX time before bundle n:  dl(n) = Tp - (n-1)/n * B/s - (n-1)(dc+ds)
//   Radio energy at client onload:
//     E(n) = pl*dl(n) + (n-1)(pc*dc + ps*ds) + pc*B/s
//   Client onload time: OLT(n) = Tp + (1/n)(B/s)
//   Optimal bundle count n* = (1/alpha) sqrt(B/s), so the optimal bundle
//   size b* = B/n* = alpha*sqrt(s*B), with
//     alpha = sqrt(((pc-pl)dc + (ps-pl)ds) / pl).
//
// The paper's worked example: a 2 MB page at 6 Mbps with alpha = 0.74
// gives b* ~= 0.9 MB. Our default RrcConfig reproduces that alpha.
#pragma once

#include "lte/rrc.hpp"
#include "util/units.hpp"

namespace parcel::core {

using util::Bytes;
using util::Duration;
using util::Energy;

struct ModelParams {
  lte::RrcConfig rrc;
  double download_bytes_per_sec = 6e6 / 8.0;  // s: proxy->client speed
  Bytes onload_bytes = 2 * 1000 * 1000;       // B: aggregate at proxy onload
  Duration proxy_onload = Duration::seconds(2.0);  // Tp
};

class AnalyticalModel {
 public:
  explicit AnalyticalModel(ModelParams params);

  /// Radio state-transition overhead factor (unit: sqrt(seconds)).
  [[nodiscard]] double alpha() const { return params_.rrc.alpha(); }

  /// LDRX residency before the n-th bundle (clamped at zero: with many
  /// bundles the radio never reaches LDRX).
  [[nodiscard]] Duration ldrx_time(double n) const;

  /// Radio energy at the client onload event as a function of bundle
  /// count n (continuous relaxation, as in the paper).
  [[nodiscard]] Energy energy(double n) const;

  /// Client onload time as a function of bundle count.
  [[nodiscard]] Duration onload_time(double n) const;

  /// n* minimizing E(n).
  [[nodiscard]] double optimal_bundle_count() const;

  /// b* = alpha * sqrt(s * B).
  [[nodiscard]] Bytes optimal_bundle_bytes() const;

  [[nodiscard]] const ModelParams& params() const { return params_; }

 private:
  ModelParams params_;
};

}  // namespace parcel::core
