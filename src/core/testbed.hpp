// Testbed: the experiment topology (paper §7).
//
//   client ==radio(LTE/RRC/fade)== EPC ==core== internet ==slink(d)== origin d
//            \== proxy_access == PARCEL/CB proxy ==egress==/
//            \== dns_link == resolver
//
// The proxy sits just behind the EPC ("deployed similar to middle-boxes
// within the cellular network"); origins are one configurable "dummynet"
// delay away (default 10 ms one-way = the paper's 20 ms RTT), or
// heterogeneous per-domain delays for the real-web-server experiments
// (§8.4). Every burst crossing the radio is tapped into a PacketTrace —
// the phone-side capture all metrics derive from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/arena.hpp"
#include "lte/radio_link.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "trace/packet_trace.hpp"
#include "web/origin_server.hpp"
#include "web/page.hpp"

namespace parcel::core {

struct TestbedConfig {
  lte::RadioParams radio;
  /// Signal fading; disabled (std::nullopt) for controlled replay runs.
  std::optional<lte::FadeProcess::Params> fade;
  std::uint64_t fade_seed = 1;
  /// Deterministic fade trajectory (ISSUE 10): takes precedence over the
  /// seeded AR(1) `fade` when set, so the adaptive-bundling sweeps pit
  /// every scheme against the *same* bandwidth timeline.
  std::optional<lte::FadeSpec> fade_profile;

  util::BitRate core_rate = util::BitRate::mbps(1000);
  util::Duration core_delay = util::Duration::millis(5);
  util::BitRate server_rate = util::BitRate::mbps(200);
  /// One-way proxy/core <-> origin delay (the dummynet knob; 10 ms
  /// one-way = the paper's default 20 ms RTT).
  util::Duration server_delay = util::Duration::millis(10);
  /// §8.4 real-server mode: per-domain one-way delays drawn uniformly
  /// from this range instead of the fixed `server_delay`.
  bool heterogeneous_server_delays = false;
  util::Duration server_delay_min = util::Duration::millis(5);
  util::Duration server_delay_max = util::Duration::millis(60);
  std::uint64_t topology_seed = 7;

  util::Duration proxy_access_delay = util::Duration::millis(5);
  util::BitRate proxy_access_rate = util::BitRate::mbps(1000);
  util::Duration dns_access_delay = util::Duration::millis(3);

  /// Injected faults (validated in the Testbed constructor). Disabled by
  /// default: no injector state is consulted and runs stay byte-identical
  /// to a fault-free build.
  sim::FaultPlan faults;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);

  /// Host all of a page's domains on origin servers (callable multiple
  /// times for multi-page sessions). The page must outlive the testbed.
  void host_page(const web::WebPage& page);

  /// Register a proxy-style endpoint (the CB proxy) reachable from the
  /// client at `domain`, colocated with the PARCEL proxy.
  void register_proxy_endpoint(const std::string& domain,
                               net::HttpEndpoint& endpoint);

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] trace::PacketTrace& client_trace() { return trace_; }
  [[nodiscard]] const lte::RrcMachine& rrc() const { return *radio_.rrc; }
  [[nodiscard]] const lte::FadeProcess* fade() const {
    return radio_.fade.get();
  }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }
  [[nodiscard]] web::OriginServer* origin(const std::string& domain);
  /// Null when the run's fault plan is disabled.
  [[nodiscard]] net::FaultInjector* faults() { return faults_.get(); }

  /// Domain name under which the PARCEL proxy is routed from the client.
  static constexpr const char* kProxyDomain = "parcel.proxy";

 private:
  net::DuplexLink& server_link(net::UrlId id, const std::string& domain);

  TestbedConfig config_;
  sim::Scheduler sched_;
  net::Network network_;
  // The capture trace grows one column row per radio burst for the whole
  // run; bump its columns out of the run arena when one is in scope. The
  // trace is handed off to RunResult by move-*assignment*, which lands
  // element-wise on the default heap (never aliases the arena).
  trace::PacketTrace trace_{core::run_resource()};
  util::Rng topo_rng_;
  std::unique_ptr<net::FaultInjector> faults_;

  lte::RadioLink radio_{};
  net::DuplexLink* radio_link_ = nullptr;
  net::DuplexLink* core_ = nullptr;
  net::DuplexLink* proxy_access_ = nullptr;
  net::DuplexLink* proxy_egress_ = nullptr;
  net::DuplexLink* dns_link_ = nullptr;
  net::DuplexLink* proxy_dns_link_ = nullptr;

  // Keyed by interned domain id (ISSUE 7 satellite): the hosting loop
  // walks page.domain_ids() and probes these without rebuilding host
  // strings. Never iterated — lookup/insert only — so the unordered
  // bucket order cannot reach any result.
  std::unordered_map<net::UrlId, net::DuplexLink*, net::UrlIdHash>
      server_links_;
  std::unordered_map<net::UrlId, std::unique_ptr<web::OriginServer>,
                     net::UrlIdHash>
      origins_;
};

}  // namespace parcel::core
