#include "core/proxy.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace parcel::core {

ProxyConfig ProxyConfig::with_bundle(BundleConfig bundle) {
  ProxyConfig cfg;
  // The proxy is a well-provisioned server: fast parse and JS execution
  // relative to the mobile device (§4.2 "powerful server").
  cfg.fetch.engine.parse_bytes_per_sec = 40.0e6;
  cfg.fetch.engine.js_units_per_sec = 500.0;
  cfg.bundle = bundle;
  return cfg;
}

InterceptingFetcher::InterceptingFetcher(browser::Fetcher& inner,
                                         Interceptor interceptor)
    : inner_(inner), interceptor_(std::move(interceptor)) {
  if (!interceptor_) {
    throw std::invalid_argument("InterceptingFetcher: null interceptor");
  }
}

void InterceptingFetcher::fetch(
    const net::Url& url, web::ObjectType hint, bool randomized,
    std::uint32_t object_id,
    std::function<void(browser::FetchResult)> on_result) {
  inner_.fetch(url, hint, randomized, object_id,
               [this, on_result = std::move(on_result)](
                   browser::FetchResult result) {
                 if (result.ok()) interceptor_(result);
                 on_result(std::move(result));
               });
}

ParcelProxy::ParcelProxy(net::Network& network, ProxyConfig config,
                         util::Rng rng)
    : network_(network), config_(config), rng_(std::move(rng)) {}

const browser::BrowserEngine& ParcelProxy::engine() const {
  if (!engine_) throw std::logic_error("ParcelProxy: not started");
  return *engine_;
}

std::optional<TimePoint> ParcelProxy::onload_time() const {
  if (engine_ && engine_->onload_fired()) return engine_->onload_time();
  return std::nullopt;
}

const BundleScheduler& ParcelProxy::scheduler() const {
  if (!scheduler_) throw std::logic_error("ParcelProxy: not started");
  return *scheduler_;
}

void ParcelProxy::start(const net::Url& url, const std::string& user_agent,
                        PushFn push, NotifyFn notify_complete) {
  if (engine_) throw std::logic_error("ParcelProxy::start called twice");
  push_ = std::move(push);
  notify_complete_ = std::move(notify_complete);

  // The proxy emulates the client when talking to origin servers
  // (user-agent and screen info forwarded by the client, §4.5).
  (void)user_agent;

  begin_load(url);
}

void ParcelProxy::load_page(const net::Url& url) {
  if (!engine_) throw std::logic_error("ParcelProxy::load_page before start");
  // Retire the previous page's machinery; in-flight callbacks may still
  // reference it, so it is kept alive for the session.
  completion_timer_.cancel();
  retired_engines_.push_back(std::move(engine_));
  retired_intercepting_.push_back(std::move(intercepting_));
  retired_fetchers_.push_back(std::move(net_fetcher_));
  onload_seen_ = false;
  completion_declared_ = false;
  // The proxy caches across the session: objects from earlier pages need
  // no origin round trip (and, via the mirror, no re-push either).
  begin_load(url, &retired_engines_.back()->cache());
}

void ParcelProxy::begin_load(const net::Url& url,
                             const browser::FetchCache* warm) {
  page_lost_ = false;
  scheduler_ = std::make_unique<BundleScheduler>(
      config_.bundle, [this](web::MhtmlWriter bundle) {
        if (crashed_ || page_lost_) return;  // bundle dies with the process
        push_(std::move(bundle));
      });
  net_fetcher_ = std::make_unique<browser::NetworkFetcher>(
      network_, "proxy", config_.fetch, rng_.fork());
  intercepting_ = std::make_unique<InterceptingFetcher>(
      *net_fetcher_,
      [this](const browser::FetchResult& r) { on_intercept(r); });
  engine_ = std::make_unique<browser::BrowserEngine>(
      network_.scheduler(), *intercepting_, config_.fetch.engine, rng_.fork(),
      "parcel-proxy");
  if (warm != nullptr) engine_->preload_cache(*warm);

  browser::BrowserEngine::Callbacks cbs;
  cbs.on_onload = [this](TimePoint) {
    onload_seen_ = true;
    scheduler_->on_proxy_onload();
    arm_completion_timer();
  };
  engine_->load(url, std::move(cbs));
}

void ParcelProxy::on_intercept(const browser::FetchResult& result) {
  // A crashed (or crashed-then-restarted) proxy lost the in-flight page;
  // origin responses still draining through the old engine go nowhere.
  if (crashed_ || page_lost_) return;
  // Cache mirror (§4.5): the personalized proxy tracks what it already
  // sent this client; re-identified objects on later pages of the
  // session are not re-transmitted.
  if (!pushed_.insert(result.url.id()).second) {
    ++mirror_skips_;
    if (onload_seen_ && !completion_declared_) arm_completion_timer();
    return;
  }
  if (completion_declared_) {
    // Late straggler the heuristic missed: push immediately so the
    // client's fallback (or a lucky late bundle) resolves fast.
    scheduler_->on_object(result.url, result.type, result.size,
                          result.content);
    scheduler_->on_page_complete();
    return;
  }
  scheduler_->on_object(result.url, result.type, result.size, result.content);
  if (onload_seen_) arm_completion_timer();
}

void ParcelProxy::arm_completion_timer() {
  completion_timer_.cancel();
  completion_timer_ = network_.scheduler().schedule_after(
      config_.inactivity_window, [this] {
        if (completion_declared_ || crashed_ || page_lost_) return;
        completion_declared_ = true;
        scheduler_->on_page_complete();
        util::log_debug("core.proxy", "completion declared");
        if (notify_complete_) notify_complete_();
      });
}

void ParcelProxy::set_bundle_threshold(util::Bytes threshold) {
  if (config_.bundle.policy != BundlePolicy::kThreshold) return;
  config_.bundle.threshold = threshold;
  if (scheduler_) scheduler_->set_threshold(threshold);
}

void ParcelProxy::crash() {
  if (crashed_) return;
  crashed_ = true;
  page_lost_ = true;
  ++crash_count_;
  completion_timer_.cancel();
  util::log_debug("core.proxy", "proxy crashed");
}

void ParcelProxy::restart() {
  if (!crashed_) return;
  crashed_ = false;
  // page_lost_ stays set: the new process has no memory of the old load.
  util::log_debug("core.proxy", "proxy restarted");
}

void ParcelProxy::fetch_for_client(const net::Url& url,
                                   web::ObjectType hint) {
  if (!net_fetcher_) throw std::logic_error("ParcelProxy: not started");
  if (crashed_ || page_lost_) return;  // request vanishes into a dead peer
  ++fallback_serves_;
  net_fetcher_->fetch(url, hint, /*randomized=*/false,
                      /*object_id=*/0,
                      [this, url](browser::FetchResult result) {
                        web::MhtmlWriter bundle;
                        bundle.add_raw(url,
                                       std::string(web::mime_type(result.type)),
                                       result.size, result.content);
                        push_(std::move(bundle));
                      });
}

void ParcelProxy::relay_post(const net::Url& url, util::Bytes body_bytes) {
  if (!net_fetcher_) throw std::logic_error("ParcelProxy: not started");
  if (crashed_ || page_lost_) return;  // request vanishes into a dead peer
  net_fetcher_->post(
      url, body_bytes, [this, url](const net::HttpResponse& response) {
        web::MhtmlWriter bundle;
        if (response.status == 204 || !response.has_body()) {
          // Forward content-less responses unmodified (§4.5).
          bundle.add_raw(url, "application/x-parcel-status", 64, nullptr);
        } else {
          bundle.add_raw(url, response.content_type, response.body_bytes,
                         response.content);
        }
        push_(std::move(bundle));
      });
}

}  // namespace parcel::core
