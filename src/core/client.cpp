#include "core/client.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace parcel::core {

ParcelClientFetcher::ParcelClientFetcher(sim::Scheduler& sched, util::Rng rng,
                                         Duration local_lookup_delay)
    : sched_(sched),
      rng_(std::move(rng)),
      local_lookup_delay_(local_lookup_delay) {}

void ParcelClientFetcher::deliver(
    const web::MhtmlPart& part, web::ObjectType hint,
    std::function<void(browser::FetchResult)> on_result) {
  ++cache_hits_;
  browser::FetchResult result;
  result.url = part.location;
  result.size = part.body_size;
  result.content = part.content;
  result.status = 200;
  web::ObjectType mime_based = web::type_from_mime(part.content_type);
  bool both_js = (mime_based == web::ObjectType::kJs ||
                  mime_based == web::ObjectType::kJsAsync) &&
                 (hint == web::ObjectType::kJs ||
                  hint == web::ObjectType::kJsAsync);
  result.type = both_js ? hint : mime_based;
  sched_.schedule_after(local_lookup_delay_,
                        [result = std::move(result),
                         on_result = std::move(on_result)]() mutable {
                          on_result(std::move(result));
                        });
}

void ParcelClientFetcher::fetch(
    const net::Url& url, web::ObjectType hint, bool randomized,
    std::uint32_t object_id,
    std::function<void(browser::FetchResult)> on_result) {
  net::Url final_url = url;
  if (randomized) {
    // The client executes the same JS as the proxy; its random draw need
    // not match the proxy's (§4.5: "the object URL as determined by the
    // PARCEL browser [can] differ from that by the proxy").
    final_url = net::Url::parse(
        url.str() + (url.query().empty() ? "?r=" : "&r=") +
        std::to_string(rng_.uniform_int(100000, 999999)));
  }
  auto it = cache_.find(final_url.id());
  if (it != cache_.end()) {
    deliver(it->second, hint, std::move(on_result));
    return;
  }
  Parked parked{final_url, hint, object_id, std::move(on_result)};
  if (degraded_) {
    request_direct(std::move(parked));
  } else if (complete_noted_ || !suppression_) {
    request_fallback(std::move(parked));
  } else {
    ++suppressed_;
    parked_.push_back(std::move(parked));
  }
}

void ParcelClientFetcher::on_bundle_parts(
    const std::vector<web::MhtmlPart>& parts) {
  for (const auto& part : parts) {
    cache_.emplace(part.location.id(), part);
  }
  // Release any parked request the new parts satisfy.
  for (std::size_t i = 0; i < parked_.size();) {
    auto hit = cache_.find(parked_[i].url.id());
    if (hit == cache_.end()) {
      ++i;
      continue;
    }
    Parked parked = std::move(parked_[i]);
    parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
    deliver(hit->second, parked.hint, std::move(parked.on_result));
  }
}

void ParcelClientFetcher::on_new_page() {
  if (!parked_.empty()) {
    throw std::logic_error(
        "ParcelClientFetcher::on_new_page with requests still parked");
  }
  complete_noted_ = false;
}

void ParcelClientFetcher::on_completion_note() {
  complete_noted_ = true;
  std::vector<Parked> stragglers = std::move(parked_);
  parked_.clear();
  for (auto& parked : stragglers) request_fallback(std::move(parked));
}

void ParcelClientFetcher::degrade_to_direct() {
  if (degraded_) return;
  degraded_ = true;
  // Whatever the proxy still owed us is now our own job.
  std::vector<Parked> stranded = std::move(parked_);
  parked_.clear();
  for (auto& parked : stranded) request_direct(std::move(parked));
}

void ParcelClientFetcher::request_direct(Parked parked) {
  if (!direct_fetch_) {
    throw std::logic_error("ParcelClientFetcher: direct fetch not wired");
  }
  ++direct_fetches_;
  util::log_debug("core.client", "direct fetch: " + parked.url.str());
  direct_fetch_(parked.url, parked.hint, parked.object_id,
                std::move(parked.on_result));
}

void ParcelClientFetcher::request_fallback(Parked parked) {
  if (degraded_) {
    // The proxy is presumed dead; relaying through it would hang forever.
    request_direct(std::move(parked));
    return;
  }
  if (!fallback_) {
    throw std::logic_error("ParcelClientFetcher: fallback not wired");
  }
  ++fallbacks_;
  util::log_debug("core.client", "fallback request: " + parked.url.str());
  // The response arrives as a single-part bundle whose location matches
  // the exact URL, releasing the parked entry via on_bundle_parts.
  parked_.push_back(std::move(parked));
  const Parked& p = parked_.back();
  fallback_(p.url, p.hint);
}

}  // namespace parcel::core
