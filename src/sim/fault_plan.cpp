#include "sim/fault_plan.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace parcel::sim {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("fault plan: " + what);
}

double parse_number(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    bad(key + " expects a number, got '" + text + "'");
  }
  return v;
}

std::uint64_t parse_seed(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    bad("seed expects a non-negative integer, got '" + text + "'");
  }
  return v;
}

/// Window syntax: "START+LENGTH", both seconds.
FaultWindow parse_window(const std::string& key, const std::string& text) {
  auto plus = text.find('+');
  if (plus == std::string::npos) {
    bad(key + " expects START+LENGTH seconds, got '" + text + "'");
  }
  double start = parse_number(key + " start", text.substr(0, plus));
  double length = parse_number(key + " length", text.substr(plus + 1));
  return FaultWindow{TimePoint::at_seconds(start), Duration::seconds(length)};
}

void validate_windows(const char* what, const std::vector<FaultWindow>& ws) {
  for (const FaultWindow& w : ws) {
    if (w.start < TimePoint::origin()) {
      bad(std::string(what) + " window start must be >= 0, got " +
          std::to_string(w.start.sec()) + "s");
    }
    if (w.length < Duration::zero()) {
      bad(std::string(what) + " window length must be >= 0, got " +
          std::to_string(w.length.sec()) + "s");
    }
    if (!w.length.is_finite() && w.length != Duration::infinity()) {
      bad(std::string(what) + " window length must be finite or +inf");
    }
  }
}

void append_windows(std::string& out, const char* key,
                    const std::vector<FaultWindow>& ws) {
  char buf[64];
  for (const FaultWindow& w : ws) {
    std::snprintf(buf, sizeof(buf), ",%s=%g+%g", key, w.start.sec(),
                  w.length.sec());
    out += buf;
  }
}

}  // namespace

bool FaultPlan::enabled() const {
  return loss_probability > 0.0 || !blackouts.empty() || !collapses.empty() ||
         server_error_probability > 0.0 || !server_stalls.empty() ||
         proxy_crash_at.has_value();
}

void FaultPlan::validate() const {
  if (loss_probability < 0.0 || loss_probability > 1.0) {
    bad("loss probability must be in [0, 1], got " +
        std::to_string(loss_probability));
  }
  if (server_error_probability < 0.0 || server_error_probability > 1.0) {
    bad("server error probability must be in [0, 1], got " +
        std::to_string(server_error_probability));
  }
  if (collapse_factor <= 0.0 || collapse_factor > 1.0) {
    bad("collapse factor must be in (0, 1], got " +
        std::to_string(collapse_factor));
  }
  validate_windows("blackout", blackouts);
  validate_windows("collapse", collapses);
  validate_windows("server stall", server_stalls);
  if (server_stall_extra < Duration::zero()) {
    bad("server stall extra must be >= 0, got " +
        std::to_string(server_stall_extra.sec()) + "s");
  }
  if (proxy_crash_at && *proxy_crash_at < TimePoint::origin()) {
    bad("proxy crash time must be >= 0, got " +
        std::to_string(proxy_crash_at->sec()) + "s");
  }
  if (proxy_restart_after) {
    if (!proxy_crash_at) bad("restart given without a crash time");
    if (*proxy_restart_after < Duration::zero()) {
      bad("proxy restart delay must be >= 0, got " +
          std::to_string(proxy_restart_after->sec()) + "s");
    }
  }
}

std::string FaultPlan::str() const {
  if (!enabled()) return "off";
  std::string out = "seed=" + std::to_string(seed);
  char buf[64];
  if (loss_probability > 0.0) {
    std::snprintf(buf, sizeof(buf), ",loss=%g", loss_probability);
    out += buf;
  }
  append_windows(out, "blackout", blackouts);
  append_windows(out, "collapse", collapses);
  if (!collapses.empty()) {
    std::snprintf(buf, sizeof(buf), ",cfactor=%g", collapse_factor);
    out += buf;
  }
  if (server_error_probability > 0.0) {
    std::snprintf(buf, sizeof(buf), ",serror=%g", server_error_probability);
    out += buf;
  }
  append_windows(out, "sstall", server_stalls);
  if (!server_stalls.empty()) {
    std::snprintf(buf, sizeof(buf), ",sextra=%g", server_stall_extra.sec());
    out += buf;
  }
  if (proxy_crash_at) {
    std::snprintf(buf, sizeof(buf), ",crash=%g", proxy_crash_at->sec());
    out += buf;
  }
  if (proxy_restart_after) {
    std::snprintf(buf, sizeof(buf), ",restart=%g", proxy_restart_after->sec());
    out += buf;
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "off") return plan;

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    auto eq = item.find('=');
    if (eq == std::string::npos) bad("expected key=value, got '" + item + "'");
    std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);

    if (key == "loss") {
      plan.loss_probability = parse_number(key, value);
    } else if (key == "blackout") {
      plan.blackouts.push_back(parse_window(key, value));
    } else if (key == "collapse") {
      plan.collapses.push_back(parse_window(key, value));
    } else if (key == "cfactor") {
      plan.collapse_factor = parse_number(key, value);
    } else if (key == "serror") {
      plan.server_error_probability = parse_number(key, value);
    } else if (key == "sstall") {
      plan.server_stalls.push_back(parse_window(key, value));
    } else if (key == "sextra") {
      plan.server_stall_extra = Duration::seconds(parse_number(key, value));
    } else if (key == "crash") {
      plan.proxy_crash_at = TimePoint::at_seconds(parse_number(key, value));
    } else if (key == "restart") {
      plan.proxy_restart_after = Duration::seconds(parse_number(key, value));
    } else if (key == "seed") {
      plan.seed = parse_seed(value);
    } else {
      bad("unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

}  // namespace parcel::sim
