// Discrete-event simulation kernel.
//
// A Scheduler owns a priority queue of timestamped callbacks. Components
// (TCP connections, the RRC machine, browsers) schedule continuations on
// it; Scheduler::run() drains the queue in time order. Events fired at the
// same instant run in scheduling order (FIFO tie-break), which keeps runs
// deterministic.
//
// Hot-path notes: the queue is a vector-backed binary heap so the top
// entry is *moved* out on fire (std::priority_queue only exposes a const
// top, forcing a copy of the std::function). Event handles are lazy —
// scheduling allocates nothing; a handle resolves its event through the
// scheduler by sequence number only when cancel()/pending() is actually
// called, so the common fire-and-forget path does zero shared_ptr
// allocations per event. The heap's backing store draws from the per-run
// arena when one is in scope (core::ArenaScope; DESIGN.md §11), so even
// the heap's geometric regrowth stops hitting the global allocator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <vector>

#include "core/arena.hpp"
#include "util/units.hpp"

namespace parcel::sim {

using util::Duration;
using util::TimePoint;

class Scheduler;

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same pending event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call after it has fired, after
  /// the scheduler is gone, or on a default-constructed handle (no-ops).
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(std::weak_ptr<Scheduler*> owner, std::uint64_t seq)
      : owner_(std::move(owner)), seq_(seq) {}
  // Weak reference to the owning scheduler's liveness token (one token per
  // scheduler, not per event); the seq identifies the event.
  std::weak_ptr<Scheduler*> owner_;
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  /// Default: event storage from the ambient per-run arena when a
  /// core::ArenaScope is active on this thread, else the heap.
  Scheduler() : Scheduler(core::run_resource()) {}
  /// Explicit resource, for callers that manage arenas directly. The
  /// resource must outlive the scheduler.
  explicit Scheduler(std::pmr::memory_resource* mr) : heap_(mr) {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when`. Scheduling in the past
  /// is clamped to now() (fires immediately on the next run step).
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run until the queue empties. Returns the time of the last event.
  TimePoint run();

  /// Run events with timestamp <= deadline; the clock ends at `deadline`
  /// even if the queue drained earlier (mirrors the paper's fixed 60 s
  /// packet-capture window).
  void run_until(TimePoint deadline);

  /// Execute exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  friend class EventHandle;

  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    bool cancelled;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void cancel_seq(std::uint64_t seq);
  [[nodiscard]] bool pending_seq(std::uint64_t seq) const;

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  // Min-heap on (when, seq) maintained with std::push_heap/std::pop_heap;
  // cancelled entries stay in place and are skipped when popped.
  std::pmr::vector<Entry> heap_;
  // Liveness token handed to EventHandles as a weak_ptr; expires with the
  // scheduler so stale handles degrade to no-ops instead of dangling.
  std::shared_ptr<Scheduler*> self_ = std::make_shared<Scheduler*>(this);
};

}  // namespace parcel::sim
