// Discrete-event simulation kernel.
//
// A Scheduler owns a priority queue of timestamped callbacks. Components
// (TCP connections, the RRC machine, browsers) schedule continuations on
// it; Scheduler::run() drains the queue in time order. Events fired at the
// same instant run in scheduling order (FIFO tie-break), which keeps runs
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace parcel::sim {

using util::Duration;
using util::TimePoint;

/// Handle to a scheduled event; allows cancellation. Copyable; all copies
/// refer to the same pending event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call after it has fired or on
  /// a default-constructed handle (no-ops).
  void cancel();

  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `when`. Scheduling in the past
  /// is clamped to now() (fires immediately on the next run step).
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run until the queue empties. Returns the time of the last event.
  TimePoint run();

  /// Run events with timestamp <= deadline; the clock ends at `deadline`
  /// even if the queue drained earlier (mirrors the paper's fixed 60 s
  /// packet-capture window).
  void run_until(TimePoint deadline);

  /// Execute exactly one event if any is pending. Returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace parcel::sim
