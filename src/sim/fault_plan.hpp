// FaultPlan: a deterministic, declarative schedule of injected faults.
//
// The paper evaluates on a *real* LTE network — variable signal, flaky
// middleboxes, origin servers that stall — while a simulator is fair
// weather by default. A FaultPlan describes the weather: per-burst loss
// probability, time-windowed link blackouts (outages/handoffs visible to
// the RRC), bandwidth-collapse episodes, origin-server stall/error
// windows, and a whole-proxy crash/restart event. Everything is driven by
// an explicit seed, so a faulted run replays bit-for-bit and the parallel
// harness's jobs=1 vs jobs=N identity is preserved.
//
// The plan is pure data (sim layer); net::FaultInjector turns it into
// per-run runtime state that links and servers consult.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace parcel::sim {

using util::Duration;
using util::TimePoint;

/// Half-open time window [start, start + length). Zero-length windows are
/// legal and match nothing.
struct FaultWindow {
  TimePoint start;
  Duration length;

  [[nodiscard]] TimePoint end() const { return start + length; }
  [[nodiscard]] bool contains(TimePoint t) const {
    return t >= start && t < end();
  }
};

struct FaultPlan {
  /// Seeds the injector's draw streams (loss, server errors). Replaying
  /// with the same plan + seed reproduces every fault bit-for-bit.
  std::uint64_t seed = 1;

  /// Per-burst loss probability on fault-carrying links, in [0, 1].
  double loss_probability = 0.0;

  /// Link unavailable: bursts arriving during a window are deferred to the
  /// window's end (handoff/outage semantics — queued, not destroyed).
  std::vector<FaultWindow> blackouts;

  /// Bandwidth collapse: effective rate is multiplied by collapse_factor
  /// inside these windows.
  std::vector<FaultWindow> collapses;
  double collapse_factor = 0.25;  // in (0, 1]

  /// Origin-server faults: probability a request is answered 503, and
  /// windows during which responses are delayed by server_stall_extra.
  double server_error_probability = 0.0;
  std::vector<FaultWindow> server_stalls;
  Duration server_stall_extra = Duration::seconds(2.0);

  /// Whole-proxy crash: the proxy process dies at this instant (page state
  /// lost, no further bundles or completion notes). Optionally restarts
  /// after proxy_restart_after; the interrupted load is NOT resumed —
  /// recovery is client-driven (see DESIGN.md §7 degradation ladder).
  std::optional<TimePoint> proxy_crash_at;
  std::optional<Duration> proxy_restart_after;

  /// True when any fault source is active. A disabled plan leaves the
  /// substrate byte-identical to a build without the fault layer.
  [[nodiscard]] bool enabled() const;

  /// Reject malformed plans (probabilities outside [0, 1], negative
  /// durations, restart without crash) with a descriptive
  /// std::invalid_argument. Called by Testbed and run_rounds.
  void validate() const;

  /// Canonical spec string (round-trips through parse()).
  [[nodiscard]] std::string str() const;

  [[nodiscard]] static FaultPlan off() { return FaultPlan{}; }

  /// Parse a comma-separated spec, e.g.
  ///   "loss=0.05,blackout=2+0.5,collapse=1+3,cfactor=0.2,serror=0.1,
  ///    sstall=0.5+2,sextra=1.5,crash=1.2,restart=4,seed=9"
  /// Windows use START+LENGTH in seconds and keys are repeatable for the
  /// window kinds. "off" (or empty) yields a disabled plan. Malformed
  /// specs throw std::invalid_argument; the result is validate()d.
  static FaultPlan parse(const std::string& spec);
};

}  // namespace parcel::sim
