#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace parcel::sim {

void EventHandle::cancel() {
  if (auto owner = owner_.lock()) (*owner)->cancel_seq(seq_);
}

bool EventHandle::pending() const {
  auto owner = owner_.lock();
  return owner && (*owner)->pending_seq(seq_);
}

EventHandle Scheduler::schedule_at(TimePoint when, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq, /*cancelled=*/false, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle{self_, seq};
}

EventHandle Scheduler::schedule_after(Duration delay,
                                      std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

void Scheduler::cancel_seq(std::uint64_t seq) {
  // Cancellation is rare relative to scheduling; a linear scan over the
  // (small) pending set beats paying an allocation on every schedule.
  for (Entry& e : heap_) {
    if (e.seq == seq) {
      e.cancelled = true;
      return;
    }
  }
}

bool Scheduler::pending_seq(std::uint64_t seq) const {
  for (const Entry& e : heap_) {
    if (e.seq == seq) return !e.cancelled;
  }
  return false;  // already fired (or cancelled and popped)
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    if (e.cancelled) continue;
    now_ = e.when;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

TimePoint Scheduler::run() {
  while (step()) {
  }
  return now_;
}

void Scheduler::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Pop cancelled tombstones first so the deadline check sees the next
    // *live* event. Checking the raw front is wrong: a cancelled head
    // with when <= deadline would pass the check, and step() — which
    // skips tombstones — would then execute a live event beyond the
    // deadline (and leave now_ past it).
    if (heap_.front().cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      continue;
    }
    if (heap_.front().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace parcel::sim
