#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace parcel::sim {

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventHandle Scheduler::schedule_at(TimePoint when, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: empty callback");
  if (when < now_) when = now_;
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventHandle{state};
}

EventHandle Scheduler::schedule_after(Duration delay,
                                      std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // Copying out of the priority queue top is unavoidable with
    // std::priority_queue; Entry's function object is small in practice.
    Entry e = queue_.top();
    queue_.pop();
    if (e.state->cancelled) continue;
    now_ = e.when;
    e.state->fired = true;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

TimePoint Scheduler::run() {
  while (step()) {
  }
  return now_;
}

void Scheduler::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace parcel::sim
