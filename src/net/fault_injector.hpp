// FaultInjector: per-run runtime state behind a sim::FaultPlan.
//
// One injector is owned by the Testbed and shared by every fault-carrying
// component of that run: the radio link halves consult it for loss,
// blackout deferral, and bandwidth collapse; origin servers consult it for
// stall/error injection. All randomness comes from streams forked off the
// plan's seed (independent of the testbed's own Rng), so enabling faults
// never perturbs fair-weather draws and a faulted run replays bit-for-bit.
//
// When the plan is disabled every hook is a no-consequence early return —
// no draws, no state — keeping faults=off runs byte-identical to a build
// without the fault layer.
#pragma once

#include <cstdint>
#include <functional>

#include "net/link.hpp"
#include "sim/fault_plan.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace parcel::net {

using util::Duration;
using util::TimePoint;

class FaultInjector {
 public:
  using EventSink = std::function<void(const trace::FaultEvent&)>;

  explicit FaultInjector(const sim::FaultPlan& plan);

  /// Receives every injected fault (wired to PacketTrace::record_fault).
  void set_event_sink(EventSink sink) { sink_ = std::move(sink); }

  [[nodiscard]] const sim::FaultPlan& plan() const { return plan_; }

  // --- Link hooks -------------------------------------------------------

  /// True if this burst is destroyed. Draws from the loss stream only when
  /// loss_probability > 0 (or a scripted drop is pending).
  bool drop_burst(TimePoint now, Bytes bytes, const BurstInfo& info);

  /// Earliest serialization start after blackout deferral: a start inside
  /// an outage window is pushed to the window's end (chained windows are
  /// followed). Identity when no window matches.
  TimePoint blackout_release(TimePoint earliest, Bytes bytes,
                             const BurstInfo& info);

  /// Rate multiplier for a burst starting at `start`: collapse_factor
  /// inside a collapse window, 1.0 otherwise.
  double rate_multiplier(TimePoint start, Bytes bytes, const BurstInfo& info);

  // --- Origin-server hooks ----------------------------------------------

  /// True if the server should answer this request with a 503.
  bool server_error(TimePoint now);

  /// Extra think time for a request arriving at `now` (zero outside stall
  /// windows).
  Duration server_stall(TimePoint now);

  // --- Test knob --------------------------------------------------------

  /// Force the next `n` bursts through drop_burst to be lost, regardless
  /// of loss_probability. Deterministic retransmit tests use this instead
  /// of tuning probabilities.
  void drop_next(int n) { forced_drops_ += n; }

  // --- Counters ---------------------------------------------------------

  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::uint64_t deferrals() const { return deferrals_; }
  [[nodiscard]] std::uint64_t collapsed_bursts() const { return collapsed_; }
  [[nodiscard]] std::uint64_t server_errors() const { return server_errors_; }
  [[nodiscard]] std::uint64_t server_stalls() const { return server_stalls_; }

 private:
  void emit(TimePoint t, trace::FaultKind kind, Bytes bytes,
            std::uint32_t conn_id);

  sim::FaultPlan plan_;
  util::Rng loss_rng_;
  util::Rng server_rng_;
  EventSink sink_;
  int forced_drops_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t deferrals_ = 0;
  std::uint64_t collapsed_ = 0;
  std::uint64_t server_errors_ = 0;
  std::uint64_t server_stalls_ = 0;
};

}  // namespace parcel::net
