// A Path is the ordered sequence of duplex links between two hosts.
// Bursts traverse links store-and-forward: each hop serializes the burst
// before the next hop begins. "Up" is the direction from the path's first
// endpoint (conventionally the client) towards the last (the server).
#pragma once

#include <functional>
#include <vector>

#include "net/link.hpp"

namespace parcel::net {

class Path {
 public:
  Path() = default;
  explicit Path(std::vector<DuplexLink*> segments);

  /// Send a burst from the first endpoint towards the last.
  void send_up(Bytes bytes, const BurstInfo& info,
               Link::DeliveryCallback on_delivered) const;

  /// Send a burst from the last endpoint towards the first.
  void send_down(Bytes bytes, const BurstInfo& info,
                 Link::DeliveryCallback on_delivered) const;

  /// Sum of propagation delays, one way (excludes serialization).
  [[nodiscard]] Duration propagation_delay() const;

  /// Base round-trip time: 2x propagation (serialization of small control
  /// packets is negligible against it).
  [[nodiscard]] Duration base_rtt() const {
    return propagation_delay() * 2.0;
  }

  /// Lowest effective rate along the downlink direction right now.
  [[nodiscard]] BitRate bottleneck_down() const;
  [[nodiscard]] BitRate bottleneck_up() const;

  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] const std::vector<DuplexLink*>& segments() const {
    return segments_;
  }

 private:
  void relay(std::size_t idx, bool up, Bytes bytes, BurstInfo info,
             Link::DeliveryCallback on_delivered) const;

  std::vector<DuplexLink*> segments_;
};

}  // namespace parcel::net
