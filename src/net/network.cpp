#include "net/network.hpp"

#include <stdexcept>

namespace parcel::net {

DuplexLink& Network::add_link(const std::string& name, BitRate up_rate,
                              BitRate down_rate, Duration prop_delay) {
  links_.push_back(std::make_unique<DuplexLink>(sched_, name, up_rate,
                                                down_rate, prop_delay));
  return *links_.back();
}

DuplexLink& Network::adopt_link(std::unique_ptr<DuplexLink> link) {
  if (!link) throw std::invalid_argument("adopt_link: null link");
  links_.push_back(std::move(link));
  return *links_.back();
}

void Network::register_endpoint(const std::string& domain,
                                HttpEndpoint& endpoint) {
  endpoints_[key_of(domain)] = &endpoint;
}

HttpEndpoint* Network::endpoint(const std::string& domain) const {
  auto it = endpoints_.find(key_of(domain));
  return it == endpoints_.end() ? nullptr : it->second;
}

void Network::set_route(const std::string& vantage, const std::string& domain,
                        Path path) {
  routes_[key_of(vantage)][key_of(domain)] = std::move(path);
}

Path Network::route(const std::string& vantage,
                    const std::string& domain) const {
  auto v = routes_.find(key_of(vantage));
  if (v != routes_.end()) {
    auto d = v->second.find(key_of(domain));
    if (d != v->second.end()) return d->second;
    // Fall back to a wildcard route for the vantage if present.
    auto wild = v->second.find(key_of("*"));
    if (wild != v->second.end()) return wild->second;
  }
  throw std::runtime_error("Network::route: no route from " + vantage +
                           " to " + domain);
}

bool Network::has_route(const std::string& vantage,
                        const std::string& domain) const {
  auto v = routes_.find(key_of(vantage));
  if (v == routes_.end()) return false;
  return v->second.contains(key_of(domain)) || v->second.contains(key_of("*"));
}

}  // namespace parcel::net
