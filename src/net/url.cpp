#include "net/url.hpp"

#include <stdexcept>
#include <vector>

namespace parcel::net {

namespace {

/// Collapse "." and ".." segments (the parts of RFC 3986
/// remove_dot_segments relevant to our URLs). Absolute paths only.
std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> kept;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t next = path.find('/', pos);
    std::string_view seg = next == std::string_view::npos
                               ? path.substr(pos)
                               : path.substr(pos, next - pos);
    if (seg == "..") {
      if (!kept.empty()) kept.pop_back();
    } else if (!seg.empty() && seg != ".") {
      kept.push_back(seg);
    }
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  std::string out;
  for (std::string_view seg : kept) {
    out += "/";
    out += std::string(seg);
  }
  // push_back, not = "/": assigning a literal here trips a GCC 12
  // -Wrestrict false positive (PR105329) once inlined into resolve().
  if (out.empty()) out.push_back('/');
  return out;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Component separator: a byte that cannot occur inside a component, so
/// ("ab","c") and ("a","bc") intern differently.
std::uint64_t fnv1a_sep(std::uint64_t h) {
  h ^= 0xffU;
  h *= kFnvPrime;
  return h;
}

}  // namespace

std::uint64_t intern_key(std::string_view text) {
  return fnv1a(kFnvOffset, text);
}

Url::Url() { refresh_ids(); }

void Url::refresh_ids() {
  std::uint64_t h = fnv1a(kFnvOffset, scheme_);
  h = fnv1a(fnv1a_sep(h), host_);
  std::uint64_t host_path = fnv1a(fnv1a_sep(h), path_);
  id_.v = fnv1a(fnv1a_sep(host_path), query_);
  // without_query() is host + path: intern exactly that text so lookups
  // built from either side agree.
  std::uint64_t host_only = fnv1a(kFnvOffset, host_);
  norm_id_.v = fnv1a(host_only, path_);
  // Same text-interning as intern_key(host()), so both probes agree.
  host_id_.v = host_only;
}

Url Url::parse(std::string_view text) {
  Url u;
  auto scheme_end = text.find("://");
  if (scheme_end != std::string_view::npos) {
    u.scheme_ = std::string(text.substr(0, scheme_end));
    text.remove_prefix(scheme_end + 3);
  }
  auto path_start = text.find('/');
  std::string_view host_part =
      path_start == std::string_view::npos ? text : text.substr(0, path_start);
  if (host_part.empty()) {
    throw std::invalid_argument("Url::parse: empty host in '" +
                                std::string(text) + "'");
  }
  u.host_ = std::string(host_part);
  std::string_view rest =
      path_start == std::string_view::npos ? "/" : text.substr(path_start);
  auto query_start = rest.find('?');
  if (query_start == std::string_view::npos) {
    u.path_ = std::string(rest);
  } else {
    u.path_ = std::string(rest.substr(0, query_start));
    u.query_ = std::string(rest.substr(query_start + 1));
  }
  // push_back, not = "/": see normalize_path (GCC 12 -Wrestrict FP).
  if (u.path_.empty()) u.path_.push_back('/');
  u.refresh_ids();
  return u;
}

Url Url::resolve(std::string_view ref) const {
  if (ref.find("://") != std::string_view::npos) return parse(ref);
  if (ref.starts_with("//")) return parse(scheme_ + ":" + std::string(ref));
  Url u = *this;
  u.query_.clear();
  if (ref.starts_with('/')) {
    auto q = ref.find('?');
    u.path_ = std::string(ref.substr(0, q));
    if (q != std::string_view::npos) u.query_ = std::string(ref.substr(q + 1));
    u.refresh_ids();
    return u;
  }
  // Relative path: resolve against the base directory, collapsing any
  // "./" and "../" segments.
  auto dir_end = path_.rfind('/');
  std::string dir = dir_end == std::string::npos ? "/" : path_.substr(0, dir_end + 1);
  auto q = ref.find('?');
  u.path_ = normalize_path(dir + std::string(ref.substr(0, q)));
  if (q != std::string_view::npos) u.query_ = std::string(ref.substr(q + 1));
  u.refresh_ids();
  return u;
}

std::string Url::str() const {
  std::string s = scheme_ + "://" + host_ + path_;
  if (!query_.empty()) s += "?" + query_;
  return s;
}

std::string Url::without_query() const { return host_ + path_; }

}  // namespace parcel::net
