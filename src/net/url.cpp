#include "net/url.hpp"

#include <stdexcept>
#include <vector>

namespace parcel::net {

namespace {

/// Collapse "." and ".." segments (the parts of RFC 3986
/// remove_dot_segments relevant to our URLs). Absolute paths only.
std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> kept;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    std::size_t next = path.find('/', pos);
    std::string_view seg = next == std::string_view::npos
                               ? path.substr(pos)
                               : path.substr(pos, next - pos);
    if (seg == "..") {
      if (!kept.empty()) kept.pop_back();
    } else if (!seg.empty() && seg != ".") {
      kept.push_back(seg);
    }
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  std::string out;
  for (std::string_view seg : kept) {
    out += "/";
    out += std::string(seg);
  }
  if (out.empty()) out = "/";
  return out;
}

}  // namespace

Url Url::parse(std::string_view text) {
  Url u;
  auto scheme_end = text.find("://");
  if (scheme_end != std::string_view::npos) {
    u.scheme_ = std::string(text.substr(0, scheme_end));
    text.remove_prefix(scheme_end + 3);
  }
  auto path_start = text.find('/');
  std::string_view host_part =
      path_start == std::string_view::npos ? text : text.substr(0, path_start);
  if (host_part.empty()) {
    throw std::invalid_argument("Url::parse: empty host in '" +
                                std::string(text) + "'");
  }
  u.host_ = std::string(host_part);
  std::string_view rest =
      path_start == std::string_view::npos ? "/" : text.substr(path_start);
  auto query_start = rest.find('?');
  if (query_start == std::string_view::npos) {
    u.path_ = std::string(rest);
  } else {
    u.path_ = std::string(rest.substr(0, query_start));
    u.query_ = std::string(rest.substr(query_start + 1));
  }
  if (u.path_.empty()) u.path_ = "/";
  return u;
}

Url Url::resolve(std::string_view ref) const {
  if (ref.find("://") != std::string_view::npos) return parse(ref);
  if (ref.starts_with("//")) return parse(scheme_ + ":" + std::string(ref));
  Url u = *this;
  u.query_.clear();
  if (ref.starts_with('/')) {
    auto q = ref.find('?');
    u.path_ = std::string(ref.substr(0, q));
    if (q != std::string_view::npos) u.query_ = std::string(ref.substr(q + 1));
    return u;
  }
  // Relative path: resolve against the base directory, collapsing any
  // "./" and "../" segments.
  auto dir_end = path_.rfind('/');
  std::string dir = dir_end == std::string::npos ? "/" : path_.substr(0, dir_end + 1);
  auto q = ref.find('?');
  u.path_ = normalize_path(dir + std::string(ref.substr(0, q)));
  if (q != std::string_view::npos) u.query_ = std::string(ref.substr(q + 1));
  return u;
}

std::string Url::str() const {
  std::string s = scheme_ + "://" + host_ + path_;
  if (!query_.empty()) s += "?" + query_;
  return s;
}

std::string Url::without_query() const { return host_ + path_; }

}  // namespace parcel::net
