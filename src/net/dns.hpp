// DNS resolution model.
//
// The paper (§2.1) counts DNS lookups among the short transfers that keep
// the radio busy: one lookup per server domain for the DIR browser, zero
// on the cellular link for PARCEL (the proxy resolves). A lookup is a
// small request/response exchange over the client's path to its resolver
// plus a server-side resolution latency.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/path.hpp"
#include "net/url.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace parcel::net {

class DnsClient {
 public:
  using Callback = std::function<void()>;

  DnsClient(sim::Scheduler& sched, Path path_to_resolver,
            Duration mean_server_latency, util::Rng rng,
            std::function<std::uint32_t()> conn_ids);

  /// Resolve the domain named by its interned id (Url::host_id()); the
  /// callback fires when the answer arrives. Cached domains resolve
  /// synchronously (the cache models the OS stub cache, flushed between
  /// experiment runs by constructing a fresh client). The browsers'
  /// request path hands ids straight from the Url — no host string is
  /// copied or hashed per lookup.
  void resolve(UrlId domain, Callback on_resolved);

  /// Convenience for display/test paths holding a name: interns and
  /// forwards. Request paths should pass Url::host_id() directly.
  void resolve(std::string_view domain, Callback on_resolved) {
    resolve(UrlId{intern_key(domain)}, std::move(on_resolved));
  }

  [[nodiscard]] std::size_t lookups_issued() const { return lookups_; }
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }

 private:
  sim::Scheduler& sched_;
  Path path_;
  Duration mean_server_latency_;
  util::Rng rng_;
  std::function<std::uint32_t()> conn_ids_;
  std::unordered_set<UrlId, UrlIdHash> cache_;
  /// Lookups in flight: later resolve() calls for the same domain wait on
  /// the first answer instead of issuing duplicate queries.
  std::unordered_map<UrlId, std::vector<Callback>, UrlIdHash> pending_;
  std::size_t lookups_ = 0;
  std::size_t cache_hits_ = 0;
};

}  // namespace parcel::net
