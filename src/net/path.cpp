#include "net/path.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcel::net {

Path::Path(std::vector<DuplexLink*> segments)
    : segments_(std::move(segments)) {
  if (segments_.empty()) {
    throw std::invalid_argument("Path requires at least one segment");
  }
  for (auto* s : segments_) {
    if (s == nullptr) throw std::invalid_argument("Path: null segment");
  }
}

void Path::relay(std::size_t idx, bool up, Bytes bytes, BurstInfo info,
                 Link::DeliveryCallback on_delivered) const {
  // Uplink traverses segments 0..n-1; downlink traverses n-1..0. The
  // radio link is segment 0 in all our topologies.
  std::size_t link_idx = up ? idx : segments_.size() - 1 - idx;
  Link& link = up ? segments_[link_idx]->up() : segments_[link_idx]->down();
  bool last = idx + 1 == segments_.size();
  if (last) {
    link.transmit(bytes, info, std::move(on_delivered));
    return;
  }
  link.transmit(bytes, info,
                [this, idx, up, bytes, info,
                 cb = std::move(on_delivered)](TimePoint) mutable {
                  relay(idx + 1, up, bytes, info, std::move(cb));
                });
}

void Path::send_up(Bytes bytes, const BurstInfo& info,
                   Link::DeliveryCallback on_delivered) const {
  relay(0, /*up=*/true, bytes, info, std::move(on_delivered));
}

void Path::send_down(Bytes bytes, const BurstInfo& info,
                     Link::DeliveryCallback on_delivered) const {
  relay(0, /*up=*/false, bytes, info, std::move(on_delivered));
}

Duration Path::propagation_delay() const {
  Duration d = Duration::zero();
  for (const auto* s : segments_) d += s->prop_delay();
  return d;
}

BitRate Path::bottleneck_down() const {
  BitRate r = BitRate::mbps(1e9);
  for (const auto* s : segments_) r = std::min(r, s->down().effective_rate());
  return r;
}

BitRate Path::bottleneck_up() const {
  BitRate r = BitRate::mbps(1e9);
  for (const auto* s : segments_) r = std::min(r, s->up().effective_rate());
  return r;
}

}  // namespace parcel::net
