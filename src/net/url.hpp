// Minimal URL type: scheme://host/path?query. Enough for the browser and
// proxy to route requests by domain, detect HTTPS (PARCEL bypasses its
// proxy for encrypted pages, §4.5), and normalize replay variability.
#pragma once

#include <string>
#include <string_view>

namespace parcel::net {

class Url {
 public:
  Url() = default;

  /// Parse "scheme://host/path?query". Scheme defaults to http, path to /.
  /// Throws std::invalid_argument on an empty host.
  static Url parse(std::string_view text);

  /// Resolve `ref` (absolute URL, "//host/..." or absolute/relative path)
  /// against this URL as base.
  [[nodiscard]] Url resolve(std::string_view ref) const;

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& query() const { return query_; }

  [[nodiscard]] bool is_https() const { return scheme_ == "https"; }

  [[nodiscard]] std::string str() const;

  /// Host + path, no query: the replay store keys on this after
  /// normalization strips cache-busting query params.
  [[nodiscard]] std::string without_query() const;

  bool operator==(const Url& o) const = default;

 private:
  std::string scheme_ = "http";
  std::string host_;
  std::string path_ = "/";
  std::string query_;
};

}  // namespace parcel::net

template <>
struct std::hash<parcel::net::Url> {
  std::size_t operator()(const parcel::net::Url& u) const {
    return std::hash<std::string>{}(u.str());
  }
};
