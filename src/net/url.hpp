// Minimal URL type: scheme://host/path?query. Enough for the browser and
// proxy to route requests by domain, detect HTTPS (PARCEL bypasses its
// proxy for encrypted pages, §4.5), and normalize replay variability.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace parcel::net {

/// Interned key for a URL or domain: 64-bit FNV-1a over the canonical
/// text. A pure function of the bytes — parallel workers agree on every
/// key with zero coordination, and ids are identical across runs, jobs
/// counts and processes (the determinism bar). Hash maps keyed by UrlId
/// replace the request-path std::map<std::string,...> lookups; a
/// cross-URL collision is possible in principle (~2^-64 per pair), so
/// consumers that store the full object verify on hit.
struct UrlId {
  std::uint64_t v = 0;
  bool operator==(const UrlId&) const = default;
};

/// UrlId is already a mixed 64-bit hash; use it directly as the bucket
/// index.
struct UrlIdHash {
  std::size_t operator()(UrlId id) const {
    return static_cast<std::size_t>(id.v);
  }
};

/// FNV-1a of `text` — the interning primitive behind UrlId, also used
/// directly for domain-keyed routing tables.
[[nodiscard]] std::uint64_t intern_key(std::string_view text);

class Url {
 public:
  Url();

  /// Parse "scheme://host/path?query". Scheme defaults to http, path to /.
  /// Throws std::invalid_argument on an empty host.
  static Url parse(std::string_view text);

  /// Resolve `ref` (absolute URL, "//host/..." or absolute/relative path)
  /// against this URL as base.
  [[nodiscard]] Url resolve(std::string_view ref) const;

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& host() const { return host_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& query() const { return query_; }

  [[nodiscard]] bool is_https() const { return scheme_ == "https"; }

  [[nodiscard]] std::string str() const;

  /// Length of str() without building it — wire-size accounting runs per
  /// request and only needs the byte count.
  [[nodiscard]] std::size_t str_size() const {
    return scheme_.size() + 3 + host_.size() + path_.size() +
           (query_.empty() ? 0 : 1 + query_.size());
  }

  /// Host + path, no query: the replay store keys on this after
  /// normalization strips cache-busting query params.
  [[nodiscard]] std::string without_query() const;

  /// Interned identity of the full URL (scheme/host/path/query),
  /// precomputed at construction — request paths key hash maps on this
  /// instead of building str() strings.
  [[nodiscard]] UrlId id() const { return id_; }

  /// Interned identity of without_query() (host + path), the key servers
  /// use to resolve cache-busted URLs to the canonical object.
  [[nodiscard]] UrlId normalized_id() const { return norm_id_; }

  /// Interned identity of host() alone — equals intern_key(host()), so
  /// domain-keyed tables (DNS cache, origin routing) can be probed from a
  /// Url without touching the host string.
  [[nodiscard]] UrlId host_id() const { return host_id_; }

  bool operator==(const Url& o) const = default;

 private:
  /// Recompute the interned ids; every mutation path (parse/resolve)
  /// calls this before handing the Url out.
  void refresh_ids();

  std::string scheme_ = "http";
  std::string host_;
  std::string path_ = "/";
  std::string query_;
  UrlId id_;
  UrlId norm_id_;
  UrlId host_id_;
};

}  // namespace parcel::net

template <>
struct std::hash<parcel::net::Url> {
  std::size_t operator()(const parcel::net::Url& u) const {
    return static_cast<std::size_t>(u.id().v);
  }
};
