#include "net/tcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace parcel::net {

/// Per-burst retransmission state shared between the delivery callback and
/// the RTO timer. The first delivery wins; later copies count as spurious.
struct TcpConnection::GuardState {
  bool delivered = false;
  int tries = 0;
  Duration rto = Duration::zero();
  sim::EventHandle timer;
  Link::DeliveryCallback on_delivered;
};

TcpConnection::TcpConnection(sim::Scheduler& sched, Path path,
                             TcpParams params, std::uint32_t conn_id)
    : sched_(sched),
      path_(std::move(path)),
      params_(params),
      conn_id_(conn_id),
      cwnd_segments_(params.initial_cwnd_segments) {
  if (path_.empty()) throw std::invalid_argument("TcpConnection: empty path");
  if (params_.mss <= 0 || params_.initial_cwnd_segments <= 0) {
    throw std::invalid_argument("TcpConnection: bad params");
  }
}

void TcpConnection::connect(Callback on_established) {
  if (established_ || connecting_ || closed_) {
    throw std::logic_error("TcpConnection::connect called twice");
  }
  connecting_ = true;
  BurstInfo syn{trace::PacketKind::kSyn, conn_id_, 0};
  send_guarded(true, params_.control_bytes, syn,
               [this, cb = std::move(on_established)](TimePoint) {
    BurstInfo synack{trace::PacketKind::kSyn, conn_id_, 0};
    send_guarded(false, params_.control_bytes, synack, [this, cb](TimePoint t) {
      established_ = true;
      connecting_ = false;
      last_activity_ = t;
      if (cb) cb();
    });
  });
}

Duration TcpConnection::initial_rto(bool up, Bytes bytes) const {
  BitRate bottleneck = up ? path_.bottleneck_up() : path_.bottleneck_down();
  // Burst-granularity RTO: a "segment" here is a whole send window, so the
  // timer must cover its serialization with a generous margin (deep fades
  // quadruple transmit times) or fair-weather deliveries would race it.
  return std::max(params_.min_rto, path_.base_rtt() * 2.0 +
                                       bottleneck.transmit_time(bytes) * 4.0);
}

void TcpConnection::send_guarded(bool up, Bytes bytes, const BurstInfo& info,
                                 Link::DeliveryCallback on_delivered) {
  if (broken_) return;  // silent; the application layer recovers
  if (!params_.loss_recovery) {
    if (up) {
      path_.send_up(bytes, info, std::move(on_delivered));
    } else {
      path_.send_down(bytes, info, std::move(on_delivered));
    }
    return;
  }
  auto guard = std::make_shared<GuardState>();
  guard->rto = initial_rto(up, bytes);
  guard->on_delivered = std::move(on_delivered);
  send_attempt(up, bytes, info, guard);
}

void TcpConnection::send_attempt(bool up, Bytes bytes, const BurstInfo& info,
                                 const std::shared_ptr<GuardState>& guard) {
  auto deliver = [this, guard](TimePoint t) {
    if (guard->delivered) {
      // A retransmitted copy of an already-delivered burst: its bytes
      // crossed the links (and cost energy) but it clocks nothing.
      ++spurious_;
      return;
    }
    guard->delivered = true;
    guard->timer.cancel();
    if (guard->on_delivered) guard->on_delivered(t);
  };
  if (up) {
    path_.send_up(bytes, info, deliver);
  } else {
    path_.send_down(bytes, info, deliver);
  }

  guard->timer =
      sched_.schedule_after(guard->rto, [this, up, bytes, info, guard] {
        if (guard->delivered) return;
        if (guard->tries >= params_.max_retransmits) {
          broken_ = true;
          return;
        }
        ++guard->tries;
        ++retransmits_;
        // An RTO is a heavy loss signal: collapse to the initial window.
        cwnd_segments_ = params_.initial_cwnd_segments;
        guard->rto = guard->rto * params_.rto_backoff;
        send_attempt(up, bytes, info, guard);
      });
}

void TcpConnection::maybe_restart_slow_start() {
  if (sched_.now() - last_activity_ > params_.idle_restart) {
    cwnd_segments_ = params_.initial_cwnd_segments;
  }
}

void TcpConnection::send_to_server(Bytes bytes, std::uint32_t object_id,
                                   ArrivalCallback on_arrival) {
  if (!established_) throw std::logic_error("send_to_server: not connected");
  if (closed_) throw std::logic_error("send_to_server: closed");
  maybe_restart_slow_start();
  last_activity_ = sched_.now();
  // Requests fit in the initial window in practice; send as one burst.
  BurstInfo info{trace::PacketKind::kData, conn_id_, object_id};
  send_guarded(true, bytes, info,
               [this, cb = std::move(on_arrival)](TimePoint t) {
    last_activity_ = t;
    cb(t);
  });
}

void TcpConnection::stream_to_client(Bytes bytes, std::uint32_t object_id,
                                     ArrivalCallback on_complete) {
  if (!established_) throw std::logic_error("stream_to_client: not connected");
  if (closed_) throw std::logic_error("stream_to_client: closed");
  stream_queue_.push_back(StreamItem{bytes, object_id, std::move(on_complete)});
  if (!stream_active_) start_next_stream();
}

void TcpConnection::start_next_stream() {
  if (stream_queue_.empty()) {
    stream_active_ = false;
    return;
  }
  stream_active_ = true;
  StreamItem item = std::move(stream_queue_.front());
  stream_queue_.pop_front();
  maybe_restart_slow_start();
  // Zero-byte payloads (e.g. HTTP 204 bodies) still carry headers upstream
  // of this call; by the time we get here bytes includes header overhead
  // and is positive. Defend anyway.
  Bytes total = std::max<Bytes>(item.bytes, 1);
  auto on_complete =
      std::make_shared<ArrivalCallback>(std::move(item.on_complete));
  send_round(total, total, item.object_id, std::move(on_complete));
}

void TcpConnection::send_round(Bytes remaining, Bytes total,
                               std::uint32_t object_id,
                               std::shared_ptr<ArrivalCallback> on_complete) {
  Bytes burst = std::min(remaining, cwnd_bytes());
  BurstInfo info{trace::PacketKind::kData, conn_id_, object_id};
  TimePoint round_start = sched_.now();
  Bytes left = remaining - burst;

  send_guarded(false, burst, info,
               [this, left, object_id, on_complete](TimePoint t) {
                 last_activity_ = t;
                 if (left > 0) return;  // next round already scheduled
                 // Client acknowledges the final burst; this uplink
                 // control packet is what the paper's "last ACK"
                 // measurement anchors on, and it keeps the radio's
                 // uplink activity honest for the energy model.
                 BurstInfo ack{trace::PacketKind::kAck, conn_id_, object_id};
                 send_guarded(true, params_.control_bytes, ack,
                              [](TimePoint) {});
                 if (*on_complete) (*on_complete)(t);
               });

  if (left > 0) {
    // ACK clock: the next window opens one RTT after this round began,
    // or when the bottleneck drains this burst, whichever is later.
    Duration pace = std::max(path_.base_rtt(),
                             path_.bottleneck_down().transmit_time(burst));
    cwnd_segments_ = std::min(cwnd_segments_ * 2, params_.max_cwnd_segments);
    sched_.schedule_at(round_start + pace,
                       [this, left, total, object_id,
                        on_complete = std::move(on_complete)]() mutable {
                         send_round(left, total, object_id,
                                    std::move(on_complete));
                       });
  } else {
    // Pipeline: the server keeps writing; the next queued stream item's
    // bytes follow this one on the wire without waiting for the client's
    // ACK (persistent-connection behaviour; crucial for IND, where a page
    // is hundreds of back-to-back pushes).
    start_next_stream();
  }
}

void TcpConnection::close(Callback on_closed) {
  if (closed_) return;
  closed_ = true;
  if (!established_) return;
  BurstInfo fin{trace::PacketKind::kFin, conn_id_, 0};
  send_guarded(true, params_.control_bytes, fin,
               [this, cb = std::move(on_closed)](TimePoint) {
                 BurstInfo finack{trace::PacketKind::kFin, conn_id_, 0};
                 send_guarded(false, params_.control_bytes, finack,
                              [cb](TimePoint) {
                                if (cb) cb();
                              });
               });
}

}  // namespace parcel::net
