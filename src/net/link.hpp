// Store-and-forward link model.
//
// A Link is a unidirectional serialization resource: bursts queue FIFO,
// each occupies the link for bytes/rate seconds, then propagates for the
// link's delay. Concurrent TCP connections share a link implicitly through
// this FIFO — an approximation of fair sharing that preserves what matters
// for the paper's results: the bottleneck rate, the burst timing, and the
// queueing delay under contention.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/scheduler.hpp"
#include "trace/packet_trace.hpp"
#include "util/units.hpp"

namespace parcel::net {

using util::BitRate;
using util::Bytes;
using util::Duration;
using util::TimePoint;

class FaultInjector;

/// Metadata travelling with a burst, consumed by link taps (the client's
/// radio tap turns these into PacketRecords).
struct BurstInfo {
  trace::PacketKind kind = trace::PacketKind::kData;
  std::uint32_t conn_id = 0;
  std::uint32_t object_id = 0;
};

class Link {
 public:
  using DeliveryCallback = std::function<void(TimePoint)>;
  using Tap = std::function<void(TimePoint delivery, Bytes bytes,
                                 const BurstInfo& info)>;

  Link(sim::Scheduler& sched, std::string name, BitRate rate,
       Duration prop_delay);
  virtual ~Link() = default;
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Enqueue a burst; `on_delivered` fires at the arrival instant at the
  /// far end. Derived classes (the LTE radio link) may inject additional
  /// delay (RRC promotion) before serialization starts.
  virtual void transmit(Bytes bytes, const BurstInfo& info,
                        DeliveryCallback on_delivered);

  /// Scale the nominal rate (signal fading); scale in (0, 1].
  void set_rate_scale(double scale);
  [[nodiscard]] double rate_scale() const { return rate_scale_; }

  /// Compose with a fault injector (loss, blackout deferral, bandwidth
  /// collapse). Null (the default) keeps the link fault-free; the injector
  /// must outlive the link (the Testbed owns both).
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  [[nodiscard]] FaultInjector* fault_injector() const { return faults_; }

  /// Observe every delivered burst (used for packet capture).
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  [[nodiscard]] BitRate nominal_rate() const { return rate_; }
  [[nodiscard]] BitRate effective_rate() const { return rate_ * rate_scale_; }
  [[nodiscard]] Duration prop_delay() const { return prop_delay_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bytes bytes_carried() const { return bytes_carried_; }

 protected:
  /// Serialize starting no earlier than `earliest` (after blackout
  /// deferral and bandwidth collapse, if an injector is set); returns the
  /// delivery time.
  TimePoint enqueue_burst(TimePoint earliest, Bytes bytes,
                          const BurstInfo& info);

  /// True if the injector destroys this burst. A dropped burst never
  /// occupies the link and its delivery callback never fires — recovery is
  /// the sender's job (TCP RTO).
  bool fault_drop(Bytes bytes, const BurstInfo& info);

  void finish_transmit(TimePoint delivery, Bytes bytes, const BurstInfo& info,
                       const DeliveryCallback& on_delivered);

  sim::Scheduler& sched_;

 private:
  std::string name_;
  BitRate rate_;
  Duration prop_delay_;
  double rate_scale_ = 1.0;
  FaultInjector* faults_ = nullptr;
  TimePoint next_free_ = TimePoint::origin();
  Bytes bytes_carried_ = 0;
  Tap tap_;
};

/// A bidirectional link: independent uplink and downlink serialization,
/// shared naming. Uplink is the A->B direction by convention.
class DuplexLink {
 public:
  DuplexLink(sim::Scheduler& sched, const std::string& name, BitRate up_rate,
             BitRate down_rate, Duration prop_delay);

  /// Construct around externally created halves (the radio link does this
  /// to share one RRC machine between directions).
  DuplexLink(std::unique_ptr<Link> up, std::unique_ptr<Link> down);

  [[nodiscard]] Link& up() { return *up_; }
  [[nodiscard]] Link& down() { return *down_; }
  [[nodiscard]] const Link& up() const { return *up_; }
  [[nodiscard]] const Link& down() const { return *down_; }
  [[nodiscard]] Duration prop_delay() const { return up_->prop_delay(); }

 private:
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
};

}  // namespace parcel::net
