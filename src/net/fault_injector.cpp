#include "net/fault_injector.hpp"

namespace parcel::net {

namespace {

// Independent child streams off the plan seed: loss draws and server-error
// draws must not perturb each other as plans change.
constexpr std::uint64_t kLossStream = 0x6c6f7373;    // "loss"
constexpr std::uint64_t kServerStream = 0x73727672;  // "srvr"

}  // namespace

FaultInjector::FaultInjector(const sim::FaultPlan& plan)
    : plan_(plan),
      loss_rng_(plan.seed ^ kLossStream),
      server_rng_(plan.seed ^ kServerStream) {
  plan_.validate();
}

void FaultInjector::emit(TimePoint t, trace::FaultKind kind, Bytes bytes,
                         std::uint32_t conn_id) {
  if (sink_) sink_(trace::FaultEvent{t, kind, bytes, conn_id});
}

bool FaultInjector::drop_burst(TimePoint now, Bytes bytes,
                               const BurstInfo& info) {
  if (forced_drops_ > 0) {
    --forced_drops_;
    ++drops_;
    emit(now, trace::FaultKind::kLoss, bytes, info.conn_id);
    return true;
  }
  if (plan_.loss_probability <= 0.0) return false;
  if (!loss_rng_.bernoulli(plan_.loss_probability)) return false;
  ++drops_;
  emit(now, trace::FaultKind::kLoss, bytes, info.conn_id);
  return true;
}

TimePoint FaultInjector::blackout_release(TimePoint earliest, Bytes bytes,
                                          const BurstInfo& info) {
  if (plan_.blackouts.empty()) return earliest;
  TimePoint t = earliest;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const sim::FaultWindow& w : plan_.blackouts) {
      if (w.contains(t)) {
        t = w.end();
        moved = true;
      }
    }
  }
  if (t > earliest) {
    ++deferrals_;
    emit(earliest, trace::FaultKind::kBlackout, bytes, info.conn_id);
  }
  return t;
}

double FaultInjector::rate_multiplier(TimePoint start, Bytes bytes,
                                      const BurstInfo& info) {
  for (const sim::FaultWindow& w : plan_.collapses) {
    if (w.contains(start)) {
      ++collapsed_;
      emit(start, trace::FaultKind::kCollapse, bytes, info.conn_id);
      return plan_.collapse_factor;
    }
  }
  return 1.0;
}

bool FaultInjector::server_error(TimePoint now) {
  if (plan_.server_error_probability <= 0.0) return false;
  if (!server_rng_.bernoulli(plan_.server_error_probability)) return false;
  ++server_errors_;
  emit(now, trace::FaultKind::kServerError, 0, 0);
  return true;
}

Duration FaultInjector::server_stall(TimePoint now) {
  for (const sim::FaultWindow& w : plan_.server_stalls) {
    if (w.contains(now)) {
      ++server_stalls_;
      emit(now, trace::FaultKind::kServerStall, 0, 0);
      return plan_.server_stall_extra;
    }
  }
  return Duration::zero();
}

}  // namespace parcel::net
