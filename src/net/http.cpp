#include "net/http.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace parcel::net {

namespace {
// Typical mobile request head: method line, host, user-agent, accept,
// cookies. The constant matters only as uplink radio payload.
constexpr Bytes kRequestBaseBytes = 420;
constexpr Bytes kResponseHeaderBytes = 320;
}  // namespace

Bytes HttpRequest::wire_size() const {
  return kRequestBaseBytes + static_cast<Bytes>(url.str_size()) +
         static_cast<Bytes>(user_agent.size()) +
         static_cast<Bytes>(screen_info.size()) + body_bytes;
}

Bytes HttpResponse::wire_size() const {
  return kResponseHeaderBytes + (has_body() ? body_bytes : 0);
}

HttpConnection::HttpConnection(sim::Scheduler& sched, Path path,
                               HttpEndpoint& endpoint, TcpParams params,
                               std::uint32_t conn_id, int max_in_flight)
    : sched_(sched),
      endpoint_(endpoint),
      tcp_(sched, std::move(path), params, conn_id),
      max_in_flight_(max_in_flight) {
  if (max_in_flight_ < 1) {
    throw std::invalid_argument("HttpConnection: max_in_flight must be >= 1");
  }
}

void HttpConnection::fetch(HttpRequest request, std::uint32_t object_id,
                           ResponseCallback on_response) {
  queue_.push_back(
      Pending{std::move(request), object_id, std::move(on_response)});
  pump();
}

void HttpConnection::pump() {
  if (in_flight_ >= max_in_flight_ || queue_.empty()) return;
  if (!connected_) {
    if (!connecting_) {
      connecting_ = true;
      tcp_.connect([this] {
        connected_ = true;
        connecting_ = false;
        pump();
      });
    }
    return;
  }

  ++in_flight_;
  Pending p = std::move(queue_.front());
  queue_.pop_front();

  Bytes req_bytes = p.request.wire_size();
  auto object_id = p.object_id;
  auto request = std::make_shared<HttpRequest>(std::move(p.request));
  auto on_response =
      std::make_shared<ResponseCallback>(std::move(p.on_response));

  tcp_.send_to_server(req_bytes, object_id, [this, request, object_id,
                                             on_response](TimePoint) {
    endpoint_.handle(*request, [this, object_id,
                                on_response](HttpResponse response) {
      auto resp = std::make_shared<HttpResponse>(std::move(response));
      tcp_.stream_to_client(resp->wire_size(), object_id,
                            [this, resp, on_response](TimePoint) {
                              --in_flight_;
                              (*on_response)(*resp);
                              pump();
                            });
    });
  });
  // Multiplexed mode issues further requests without waiting.
  pump();
}

HttpClientPool::HttpClientPool(sim::Scheduler& sched, PathFactory path_factory,
                               EndpointResolver endpoint_resolver,
                               ConnIdAllocator conn_ids, TcpParams params,
                               int max_conns_per_domain,
                               int max_total_connections)
    : sched_(sched),
      path_factory_(std::move(path_factory)),
      endpoint_resolver_(std::move(endpoint_resolver)),
      conn_ids_(std::move(conn_ids)),
      params_(params),
      max_conns_per_domain_(max_conns_per_domain),
      max_total_connections_(max_total_connections) {
  if (max_conns_per_domain_ < 1 || max_total_connections_ < 1) {
    throw std::invalid_argument("HttpClientPool: need at least 1 connection");
  }
}

std::uint64_t HttpClientPool::retransmits() const {
  std::uint64_t n = 0;
  for (const auto& [_, state] : domains_) {
    for (const auto& c : state.conns) {
      n += c->tcp().retransmits();
    }
  }
  return n;
}

std::size_t HttpClientPool::busy_connections() const {
  std::size_t n = 0;
  for (const auto& [_, state] : domains_) {
    for (const auto& c : state.conns) {
      if (c->busy()) ++n;
    }
  }
  return n;
}

void HttpClientPool::dispatch_all() {
  for (auto& [domain, state] : domains_) {
    if (!state.backlog.empty()) dispatch(domain);
  }
}

void HttpClientPool::fetch(HttpRequest request, std::uint32_t object_id,
                           HttpConnection::ResponseCallback on_response) {
  std::string domain = request.url.host();
  auto& state = domains_[domain];
  state.backlog.emplace_back(std::move(request), object_id,
                             std::move(on_response));
  dispatch(domain);
}

void HttpClientPool::dispatch(const std::string& domain) {
  auto& state = domains_[domain];
  while (!state.backlog.empty()) {
    // Browsers cap concurrent connections globally as well as per domain.
    if (busy_connections() >=
        static_cast<std::size_t>(max_total_connections_)) {
      return;
    }
    // Prefer an idle existing connection.
    HttpConnection* conn = nullptr;
    for (auto& c : state.conns) {
      if (!c->busy()) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr &&
        state.conns.size() < static_cast<std::size_t>(max_conns_per_domain_)) {
      HttpEndpoint* endpoint = endpoint_resolver_(domain);
      if (endpoint == nullptr) {
        throw std::runtime_error("HttpClientPool: unknown domain " + domain);
      }
      state.conns.push_back(std::make_unique<HttpConnection>(
          sched_, path_factory_(domain), *endpoint, params_, conn_ids_()));
      ++connections_opened_;
      conn = state.conns.back().get();
    }
    if (conn == nullptr) {
      // All connections busy and at the cap; requests wait in the backlog
      // and are re-dispatched as responses complete.
      return;
    }
    auto [request, object_id, cb] = std::move(state.backlog.front());
    state.backlog.pop_front();
    ++requests_issued_;
    peak_concurrency_ = std::max(peak_concurrency_, busy_connections() + 1);
    conn->fetch(std::move(request), object_id,
                [this, cb = std::move(cb)](const HttpResponse& resp) {
                  cb(resp);
                  dispatch_all();
                });
  }
}

}  // namespace parcel::net
