#include "net/dns.hpp"

#include <utility>

namespace parcel::net {

namespace {
constexpr Bytes kQueryBytes = 70;
constexpr Bytes kAnswerBytes = 130;
}  // namespace

DnsClient::DnsClient(sim::Scheduler& sched, Path path_to_resolver,
                     Duration mean_server_latency, util::Rng rng,
                     std::function<std::uint32_t()> conn_ids)
    : sched_(sched),
      path_(std::move(path_to_resolver)),
      mean_server_latency_(mean_server_latency),
      rng_(std::move(rng)),
      conn_ids_(std::move(conn_ids)) {}

void DnsClient::resolve(UrlId domain, Callback on_resolved) {
  if (cache_.contains(domain)) {
    ++cache_hits_;
    on_resolved();
    return;
  }
  auto [it, first] = pending_.try_emplace(domain);
  it->second.push_back(std::move(on_resolved));
  if (!first) return;  // a query for this domain is already in flight

  ++lookups_;
  std::uint32_t conn = conn_ids_();
  BurstInfo query{trace::PacketKind::kData, conn, 0};
  Duration server_latency =
      Duration::seconds(rng_.exponential(mean_server_latency_.sec()));
  path_.send_up(kQueryBytes, query,
                [this, domain, conn, server_latency](TimePoint) {
                  sched_.schedule_after(server_latency, [this, domain, conn] {
                    BurstInfo answer{trace::PacketKind::kData, conn, 0};
                    path_.send_down(kAnswerBytes, answer,
                                    [this, domain](TimePoint) {
                                      cache_.insert(domain);
                                      auto node = pending_.extract(domain);
                                      for (auto& waiter : node.mapped()) {
                                        waiter();
                                      }
                                    });
                  });
                });
}

}  // namespace parcel::net
