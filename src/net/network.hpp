// Registry tying the substrate together: owns links, maps server domains
// to HTTP endpoints and to the paths that reach them, and allocates
// connection ids. Experiment topologies (the LTE testbed) are built on
// top of this in core/testbed.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/http.hpp"
#include "net/link.hpp"
#include "net/path.hpp"
#include "net/url.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {

class Network {
 public:
  explicit Network(sim::Scheduler& sched) : sched_(sched) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  DuplexLink& add_link(const std::string& name, BitRate up_rate,
                       BitRate down_rate, Duration prop_delay);

  /// Adopt an externally constructed link (the LTE radio link, whose
  /// halves share an RRC machine).
  DuplexLink& adopt_link(std::unique_ptr<DuplexLink> link);

  /// Map a server domain to the endpoint that answers for it.
  void register_endpoint(const std::string& domain, HttpEndpoint& endpoint);
  [[nodiscard]] HttpEndpoint* endpoint(const std::string& domain) const;

  /// Paths as seen from a named vantage ("client" or "proxy").
  void set_route(const std::string& vantage, const std::string& domain,
                 Path path);
  [[nodiscard]] Path route(const std::string& vantage,
                           const std::string& domain) const;
  [[nodiscard]] bool has_route(const std::string& vantage,
                               const std::string& domain) const;

  [[nodiscard]] std::uint32_t next_conn_id() { return ++conn_id_; }

 private:
  /// Domain/vantage names are interned (FNV-1a, see net::intern_key) so
  /// per-request routing is a hash probe, not a string-tree walk.
  using NameKey = UrlId;
  static NameKey key_of(const std::string& name) {
    return NameKey{intern_key(name)};
  }

  sim::Scheduler& sched_;
  std::vector<std::unique_ptr<DuplexLink>> links_;
  std::unordered_map<NameKey, HttpEndpoint*, UrlIdHash> endpoints_;
  std::unordered_map<NameKey, std::unordered_map<NameKey, Path, UrlIdHash>,
                     UrlIdHash>
      routes_;
  std::uint32_t conn_id_ = 0;
};

}  // namespace parcel::net
