// HTTP/1.1 semantics over the TCP model.
//
// HttpConnection is a client-side persistent connection: requests are
// serialized FIFO (no pipelining, matching deployed HTTP/1.1), responses
// stream back through TcpConnection's windowed sender. HttpClientPool
// implements the browser rule of at most N parallel connections per
// domain (the paper observes 6 for the DIR browser).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp.hpp"
#include "net/url.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {

enum class HttpMethod : std::uint8_t { kGet, kPost };

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  Url url;
  /// Client attributes PARCEL forwards so the proxy can emulate the device
  /// (user-agent, screen size — §4.5 "Client properties").
  std::string user_agent = "ParcelSim/1.0";
  std::string screen_info;
  Bytes body_bytes = 0;  // POST payload

  /// Approximate on-the-wire size of the request head.
  [[nodiscard]] Bytes wire_size() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/octet-stream";
  Bytes body_bytes = 0;
  /// Actual text for parseable types (HTML/CSS/JS); null for opaque bodies
  /// (images), whose bytes only matter as transfer volume.
  std::shared_ptr<const std::string> content;
  Url url;  // final URL (after server-side routing)

  [[nodiscard]] Bytes wire_size() const;
  [[nodiscard]] bool has_body() const { return status != 204 && body_bytes > 0; }
};

/// Server application interface. Implementations (origin servers, the
/// PARCEL proxy, the replay server) receive the request and respond via
/// callback, possibly after simulated processing time.
class HttpEndpoint {
 public:
  virtual ~HttpEndpoint() = default;
  virtual void handle(const HttpRequest& request,
                      std::function<void(HttpResponse)> respond) = 0;
};

/// One persistent client connection to an endpoint.
///
/// `max_in_flight` is the number of concurrently outstanding requests:
/// 1 models HTTP/1.1 (no pipelining); larger values model SPDY-style
/// stream multiplexing over the single connection (requests issued
/// without waiting, response bytes interleaving on the wire).
class HttpConnection {
 public:
  using ResponseCallback = std::function<void(const HttpResponse&)>;

  HttpConnection(sim::Scheduler& sched, Path path, HttpEndpoint& endpoint,
                 TcpParams params, std::uint32_t conn_id,
                 int max_in_flight = 1);

  /// Issue a request; `object_id` tags the trace records of the response
  /// body.
  void fetch(HttpRequest request, std::uint32_t object_id,
             ResponseCallback on_response);

  [[nodiscard]] bool busy() const {
    return in_flight_ > 0 || !queue_.empty();
  }
  [[nodiscard]] std::uint32_t id() const { return tcp_.id(); }
  [[nodiscard]] TcpConnection& tcp() { return tcp_; }
  [[nodiscard]] const TcpConnection& tcp() const { return tcp_; }

 private:
  struct Pending {
    HttpRequest request;
    std::uint32_t object_id;
    ResponseCallback on_response;
  };

  void pump();

  sim::Scheduler& sched_;
  HttpEndpoint& endpoint_;
  TcpConnection tcp_;
  int max_in_flight_;
  bool connected_ = false;
  bool connecting_ = false;
  int in_flight_ = 0;
  std::deque<Pending> queue_;
};

/// Browser-style per-domain connection pool.
class HttpClientPool {
 public:
  using PathFactory = std::function<Path(const std::string& domain)>;
  using EndpointResolver = std::function<HttpEndpoint*(const std::string&)>;
  using ConnIdAllocator = std::function<std::uint32_t()>;

  HttpClientPool(sim::Scheduler& sched, PathFactory path_factory,
                 EndpointResolver endpoint_resolver, ConnIdAllocator conn_ids,
                 TcpParams params, int max_conns_per_domain,
                 int max_total_connections = 17);

  void fetch(HttpRequest request, std::uint32_t object_id,
             HttpConnection::ResponseCallback on_response);

  /// Total connections opened over the pool's lifetime (Table 1 metric).
  [[nodiscard]] std::size_t connections_opened() const {
    return connections_opened_;
  }
  [[nodiscard]] std::size_t requests_issued() const {
    return requests_issued_;
  }
  /// High-water mark of concurrently busy connections; bounded by
  /// max_total_connections.
  [[nodiscard]] std::size_t peak_concurrency() const {
    return peak_concurrency_;
  }

  /// Sum of TCP retransmissions across every connection the pool opened
  /// (zero unless the run enables loss recovery).
  [[nodiscard]] std::uint64_t retransmits() const;

 private:
  struct DomainState {
    std::vector<std::unique_ptr<HttpConnection>> conns;
    std::deque<std::tuple<HttpRequest, std::uint32_t,
                          HttpConnection::ResponseCallback>>
        backlog;
  };

  void dispatch(const std::string& domain);
  void dispatch_all();
  [[nodiscard]] std::size_t busy_connections() const;

  sim::Scheduler& sched_;
  PathFactory path_factory_;
  EndpointResolver endpoint_resolver_;
  ConnIdAllocator conn_ids_;
  TcpParams params_;
  int max_conns_per_domain_;
  int max_total_connections_;
  std::size_t connections_opened_ = 0;
  std::size_t requests_issued_ = 0;
  std::size_t peak_concurrency_ = 0;
  std::map<std::string, DomainState> domains_;
};

}  // namespace parcel::net
