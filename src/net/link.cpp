#include "net/link.hpp"

#include <stdexcept>
#include <utility>

#include "net/fault_injector.hpp"

namespace parcel::net {

Link::Link(sim::Scheduler& sched, std::string name, BitRate rate,
           Duration prop_delay)
    : sched_(sched),
      name_(std::move(name)),
      rate_(rate),
      prop_delay_(prop_delay) {
  if (rate.bits_per_sec() <= 0.0) {
    throw std::invalid_argument("Link rate must be positive: " + name_);
  }
}

void Link::set_rate_scale(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("rate scale must be in (0, 1]");
  }
  rate_scale_ = scale;
}

TimePoint Link::enqueue_burst(TimePoint earliest, Bytes bytes,
                              const BurstInfo& info) {
  if (faults_) earliest = faults_->blackout_release(earliest, bytes, info);
  TimePoint start = std::max(earliest, next_free_);
  double mult = faults_ ? faults_->rate_multiplier(start, bytes, info) : 1.0;
  Duration tx = (effective_rate() * mult).transmit_time(bytes);
  next_free_ = start + tx;
  return next_free_ + prop_delay_;
}

bool Link::fault_drop(Bytes bytes, const BurstInfo& info) {
  return faults_ != nullptr && faults_->drop_burst(sched_.now(), bytes, info);
}

void Link::finish_transmit(TimePoint delivery, Bytes bytes,
                           const BurstInfo& info,
                           const DeliveryCallback& on_delivered) {
  bytes_carried_ += bytes;
  sched_.schedule_at(delivery, [this, delivery, bytes, info, on_delivered] {
    if (tap_) tap_(delivery, bytes, info);
    on_delivered(delivery);
  });
}

void Link::transmit(Bytes bytes, const BurstInfo& info,
                    DeliveryCallback on_delivered) {
  if (bytes < 0) throw std::invalid_argument("negative burst size");
  if (fault_drop(bytes, info)) return;
  TimePoint delivery = enqueue_burst(sched_.now(), bytes, info);
  finish_transmit(delivery, bytes, info, on_delivered);
}

DuplexLink::DuplexLink(sim::Scheduler& sched, const std::string& name,
                       BitRate up_rate, BitRate down_rate, Duration prop_delay)
    : up_(std::make_unique<Link>(sched, name + ".up", up_rate, prop_delay)),
      down_(std::make_unique<Link>(sched, name + ".down", down_rate,
                                   prop_delay)) {}

DuplexLink::DuplexLink(std::unique_ptr<Link> up, std::unique_ptr<Link> down)
    : up_(std::move(up)), down_(std::move(down)) {
  if (!up_ || !down_) {
    throw std::invalid_argument("DuplexLink requires both halves");
  }
}

}  // namespace parcel::net
