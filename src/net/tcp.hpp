// Event-driven TCP flow model at send-window ("round") granularity.
//
// Why not per-packet: the RRC energy dynamics the paper studies play out
// at the scale of DRX timers (hundreds of ms) against LTE RTTs of 70-86 ms,
// so the unit of radio activity that matters is the ACK-clocked send
// window. Each round transmits min(cwnd, remaining) as one burst through
// the store-and-forward Path; the next round starts one RTT later (ACK
// clock) or when the bottleneck finishes serializing, whichever is later.
// This reproduces the two regimes of real TCP: window-limited throughput
// cwnd/RTT while slow start ramps, and rate-limited throughput at the
// bottleneck once the pipe is full.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/path.hpp"
#include "sim/scheduler.hpp"

namespace parcel::net {

struct TcpParams {
  Bytes mss = 1448;
  int initial_cwnd_segments = 10;  // RFC 6928 IW10
  int max_cwnd_segments = 256;     // receive-window cap (~370 KB)
  Bytes control_bytes = 40;        // SYN/ACK/FIN wire size
  /// Restart slow start after this much idle time on a persistent
  /// connection (RFC 2581 slow-start-restart, as deployed).
  Duration idle_restart = Duration::seconds(3.0);

  /// Loss recovery. Off by default: fair-weather runs arm zero timers and
  /// produce byte-identical event schedules to the pre-fault-layer model.
  /// The experiment harness enables it only when a fault plan is active.
  bool loss_recovery = false;
  Duration min_rto = Duration::seconds(1.0);
  double rto_backoff = 2.0;  // RTO doubles per retry
  int max_retransmits = 8;   // then the connection is declared broken
};

/// One TCP connection between the client side (path origin) and the server
/// side (path end). Single-threaded, driven entirely by the scheduler.
class TcpConnection {
 public:
  using Callback = std::function<void()>;
  using ArrivalCallback = std::function<void(TimePoint)>;

  TcpConnection(sim::Scheduler& sched, Path path, TcpParams params,
                std::uint32_t conn_id);

  /// Three-way handshake (client perspective); costs one RTT plus any
  /// radio promotion delay. Must be called exactly once.
  void connect(Callback on_established);

  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] std::uint32_t id() const { return conn_id_; }
  [[nodiscard]] const Path& path() const { return path_; }

  /// Send `bytes` from client to server as a single logical message
  /// (requests are small; one burst suffices below ~15 KB and requests
  /// larger than the window are split into rounds like responses).
  void send_to_server(Bytes bytes, std::uint32_t object_id,
                      ArrivalCallback on_arrival);

  /// Stream `bytes` from server to client with slow-start windowing.
  /// Streams are queued FIFO; cwnd persists across items (persistent
  /// connection). `on_complete` fires when the last burst reaches the
  /// client and the client's final ACK has been emitted.
  void stream_to_client(Bytes bytes, std::uint32_t object_id,
                        ArrivalCallback on_complete);

  /// True while a downlink stream is in flight or queued.
  [[nodiscard]] bool streaming() const {
    return stream_active_ || !stream_queue_.empty();
  }

  /// Number of stream items waiting behind the active one.
  [[nodiscard]] std::size_t queued_streams() const {
    return stream_queue_.size();
  }

  /// Record a FIN exchange. No further sends are allowed.
  void close(Callback on_closed = nullptr);
  [[nodiscard]] bool closed() const { return closed_; }

  /// RTO-triggered retransmissions (loss recovery on only).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  /// Duplicate deliveries whose original copy had already arrived (the
  /// retransmitted bytes still crossed the links — real energy cost).
  [[nodiscard]] std::uint64_t spurious_retransmits() const {
    return spurious_;
  }
  /// True once a single burst exhausted max_retransmits. The connection
  /// goes silent (further sends are no-ops, their callbacks never fire);
  /// recovery belongs to the application layer (fetch timeout, fallback).
  [[nodiscard]] bool broken() const { return broken_; }

 private:
  struct StreamItem {
    Bytes bytes;
    std::uint32_t object_id;
    ArrivalCallback on_complete;
  };

  struct GuardState;

  void start_next_stream();
  void send_round(Bytes remaining, Bytes total, std::uint32_t object_id,
                  std::shared_ptr<ArrivalCallback> on_complete);
  void maybe_restart_slow_start();

  /// Send one burst, retransmitting on RTO expiry when loss recovery is
  /// enabled; a plain path send otherwise.
  void send_guarded(bool up, Bytes bytes, const BurstInfo& info,
                    Link::DeliveryCallback on_delivered);
  void send_attempt(bool up, Bytes bytes, const BurstInfo& info,
                    const std::shared_ptr<GuardState>& guard);
  [[nodiscard]] Duration initial_rto(bool up, Bytes bytes) const;
  [[nodiscard]] Bytes cwnd_bytes() const {
    return static_cast<Bytes>(cwnd_segments_) * params_.mss;
  }

  sim::Scheduler& sched_;
  Path path_;
  TcpParams params_;
  std::uint32_t conn_id_;

  bool established_ = false;
  bool connecting_ = false;
  bool closed_ = false;
  bool broken_ = false;
  std::uint64_t retransmits_ = 0;
  std::uint64_t spurious_ = 0;
  int cwnd_segments_;
  TimePoint last_activity_ = TimePoint::origin();

  bool stream_active_ = false;
  std::deque<StreamItem> stream_queue_;
};

}  // namespace parcel::net
