#include "browser/engine.hpp"

#include <stdexcept>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "web/css.hpp"
#include "web/js.hpp"
#include "web/parse_cache.hpp"

namespace parcel::browser {

BrowserEngine::BrowserEngine(sim::Scheduler& sched, Fetcher& fetcher,
                             EngineConfig config, util::Rng rng,
                             std::string name)
    : sched_(sched),
      fetcher_(fetcher),
      config_(config),
      rng_(std::move(rng)),
      name_(std::move(name)),
      main_thread_(sched) {
  if (config_.parse_bytes_per_sec <= 0 || config_.js_units_per_sec <= 0) {
    throw std::invalid_argument("EngineConfig: rates must be positive");
  }
}

TimePoint BrowserEngine::onload_time() const {
  if (!onload_time_) throw std::logic_error(name_ + ": onload not fired");
  return *onload_time_;
}

TimePoint BrowserEngine::complete_time() const {
  if (!complete_time_) throw std::logic_error(name_ + ": not complete");
  return *complete_time_;
}

void BrowserEngine::preload_cache(const FetchCache& c) {
  if (load_started_) {
    throw std::logic_error(name_ + ": preload_cache after load()");
  }
  // parcel-lint: allow(unordered-iter) bulk insert hash-map -> hash-map: the destination is order-insensitive, so no ordering escapes
  cache_.insert(c.begin(), c.end());
}

void BrowserEngine::load(const net::Url& main_url, Callbacks callbacks) {
  if (load_started_) throw std::logic_error(name_ + ": load() called twice");
  load_started_ = true;
  main_url_ = main_url;
  callbacks_ = std::move(callbacks);
  issue_fetch(main_url, web::ObjectType::kHtml, /*blocking=*/true,
              /*randomized=*/false, /*parser_gate=*/false);
}

void BrowserEngine::issue_fetch(const net::Url& url, web::ObjectType hint,
                                bool blocking, bool randomized,
                                bool parser_gate) {
  net::UrlId key = url.id();
  bool warm_cache_hit = false;
  if (!randomized) {
    if (requested_.contains(key)) {
      // Deduplicated within this page; a parser gate on an in-flight
      // script is resolved by that script's own completion, so gating
      // here would deadlock — pages re-including the same script rely on
      // the first copy.
      if (parser_gate) {
        parser_gated_ = false;
        parser_step();
      }
      return;
    }
    requested_.insert(key);
    // Present from a previous page of the session (device cache): serve
    // locally — the content still gets processed (JS executed, CSS
    // scanned) but nothing crosses the network.
    warm_cache_hit = cache_.contains(key);
  }
  std::uint32_t id = ledger_.register_object(url, hint, blocking,
                                             sched_.now());
  if (blocking) ++outstanding_blocking_;
  ++outstanding_total_;
  if (warm_cache_hit) {
    ++cache_loads_;
    FetchResult cached = cache_.at(key);
    // Honour the current hint for the sync/async JS distinction.
    if ((cached.type == web::ObjectType::kJs ||
         cached.type == web::ObjectType::kJsAsync) &&
        (hint == web::ObjectType::kJs || hint == web::ObjectType::kJsAsync)) {
      cached.type = hint;
    }
    sched_.schedule_after(Duration::micros(300),
                          [this, id, blocking, parser_gate,
                           cached = std::move(cached)] {
                            on_fetch_result(id, blocking, parser_gate,
                                            cached);
                          });
    return;
  }
  ++fetches_issued_;
  fetcher_.fetch(url, hint, randomized, id,
                 [this, id, blocking, parser_gate](FetchResult result) {
                   on_fetch_result(id, blocking, parser_gate, result);
                 });
}

void BrowserEngine::on_fetch_result(std::uint32_t id, bool blocking,
                                    bool parser_gate,
                                    const FetchResult& result) {
  ledger_.complete(id, result.size, sched_.now(), !result.ok());
  cache_.emplace(ledger_.entry(id).url.id(), result);

  auto finish = [this, blocking, parser_gate] {
    if (blocking) --outstanding_blocking_;
    --outstanding_total_;
    if (parser_gate) {
      parser_gated_ = false;
      parser_step();
    }
    check_onload();
    check_complete();
  };

  if (!result.ok()) {
    util::log_warn("browser.engine",
                   name_ + ": fetch failed: " + result.url.str());
    finish();
    return;
  }

  switch (result.type) {
    case web::ObjectType::kHtml: {
      if (ledger_.entry(id).url == main_url_) {
        start_parse(result);
        finish();
      } else {
        finish();  // iframes not modelled; treated as opaque
      }
      break;
    }
    case web::ObjectType::kCss: {
      // Scanning the stylesheet costs main-thread time, then reveals
      // url() dependencies with the stylesheet's own blocking class.
      Duration cost = Duration::seconds(static_cast<double>(result.size) /
                                        config_.parse_bytes_per_sec);
      main_thread_.post(cost, blocking, [this, result, blocking, finish] {
        auto refs =
            web::ParseCache::instance().css(*result.content, result.content);
        reveal(*refs, result.url, blocking);
        finish();
      });
      break;
    }
    case web::ObjectType::kJs: {
      execute_script(*result.content, result.content, result.url, blocking,
                     finish);
      break;
    }
    case web::ObjectType::kJsAsync: {
      schedule_async_exec(result);
      finish();
      break;
    }
    default:
      finish();  // opaque payloads need no processing
  }
}

void BrowserEngine::start_parse(const FetchResult& html) {
  if (!html.content) {
    throw std::logic_error(name_ + ": main HTML without content");
  }
  ParseJob job;
  job.tokens = web::ParseCache::instance().html(*html.content, html.content);
  job.content = html.content;
  job.base = html.url;
  double total_parse =
      static_cast<double>(html.size) / config_.parse_bytes_per_sec;
  job.per_token = Duration::seconds(
      total_parse / static_cast<double>(job.tokens->size() + 1));
  parse_ = std::move(job);
  parser_step();
}

void BrowserEngine::parser_step() {
  if (!parse_ || parser_gated_) return;
  if (parse_->next >= parse_->tokens->size()) {
    if (!parser_done_) {
      parser_done_ = true;
      check_onload();
      check_complete();
    }
    return;
  }
  std::size_t idx = parse_->next++;
  const web::HtmlToken& token = (*parse_->tokens)[idx];

  main_thread_.post(parse_->per_token, /*blocking=*/true, [this, &token] {
    switch (token.kind) {
      case web::HtmlToken::Kind::kReference: {
        const web::Reference& ref = token.ref;
        net::Url url = parse_->base.resolve(ref.target);
        bool is_sync_script = ref.expected_type == web::ObjectType::kJs;
        bool blocking = !ref.async;
        if (is_sync_script) {
          // Parser halts until the script is fetched and executed
          // (paper §2.1: inter-dependencies stall discovery).
          parser_gated_ = true;
          issue_fetch(url, ref.expected_type, blocking, ref.randomized,
                      /*parser_gate=*/true);
          return;  // no parser_step until the gate lifts
        }
        issue_fetch(url, ref.expected_type, blocking, ref.randomized,
                    /*parser_gate=*/false);
        parser_step();
        break;
      }
      case web::HtmlToken::Kind::kInlineScript: {
        // The inline body is a view into the document; the document
        // string is its pin.
        execute_script(token.script, parse_->content, parse_->base,
                       /*blocking=*/true, [this] { parser_step(); });
        break;
      }
    }
  });
}

void BrowserEngine::execute_script(std::string_view code,
                                   std::shared_ptr<const std::string> pin,
                                   const net::Url& base, bool blocking,
                                   std::function<void()> after) {
  auto prog = web::ParseCache::instance().js(code, pin);
  Duration cost =
      Duration::seconds(prog->work_units / config_.js_units_per_sec);
  // The posted closure holds both the artifact and the pin: with the
  // cache disabled the artifact's views borrow straight from `pin`'s
  // string, so it must outlive the execution.
  main_thread_.post(
      cost, blocking,
      [this, prog = std::move(prog), pin = std::move(pin), base, blocking,
       after = std::move(after)] {
        for (const auto& handler : prog->click_handlers) {
          click_handlers_[handler.click_index] = base.resolve(handler.target);
        }
        reveal(prog->references, base, blocking);
        after();
      });
}

void BrowserEngine::schedule_async_exec(FetchResult script) {
  ++pending_async_execs_;
  // Ad/widget scripts run after the load event with a randomized delay;
  // their requests are the paper's post-onload traffic. If onload has not
  // fired yet the execution waits for it (checked again on fire).
  double delay_s = rng_.uniform(config_.async_exec_min.sec(),
                                config_.async_exec_max.sec());
  auto run = [this, script = std::move(script)] {
    execute_script(*script.content, script.content, script.url,
                   /*blocking=*/false, [this] {
                     --pending_async_execs_;
                     check_complete();
                   });
  };
  if (onload_fired()) {
    sched_.schedule_after(Duration::seconds(delay_s), run);
  } else {
    pending_async_runs_.push_back(
        {Duration::seconds(delay_s), std::move(run)});
  }
}

void BrowserEngine::reveal(const std::vector<web::Reference>& refs,
                           const net::Url& base, bool blocking) {
  for (const auto& ref : refs) {
    net::Url url = base.resolve(ref.target);
    bool child_blocking = blocking && !ref.async;
    issue_fetch(url, ref.expected_type, child_blocking, ref.randomized,
                /*parser_gate=*/false);
  }
}

void BrowserEngine::check_onload() {
  if (onload_time_ || !parser_done_) return;
  if (outstanding_blocking_ != 0) return;
  if (main_thread_.pending_blocking() != 0) return;
  onload_time_ = sched_.now();
  util::log_debug("browser.engine",
                  name_ + ": onload at " + onload_time_->str());
  // Release deferred async executions now that onload has fired.
  for (auto& pending : pending_async_runs_) {
    sched_.schedule_after(pending.first, std::move(pending.second));
  }
  pending_async_runs_.clear();
  if (callbacks_.on_onload) callbacks_.on_onload(*onload_time_);
}

void BrowserEngine::check_complete() {
  if (complete_time_ || !onload_time_) return;
  if (outstanding_total_ != 0 || pending_async_execs_ != 0) return;
  if (!pending_async_runs_.empty()) return;
  complete_time_ = sched_.now();
  if (callbacks_.on_complete) callbacks_.on_complete(*complete_time_);
}

void BrowserEngine::click(int index, std::function<void()> on_done) {
  auto it = click_handlers_.find(index);
  if (it == click_handlers_.end()) {
    throw std::invalid_argument(name_ + ": no click handler " +
                                std::to_string(index));
  }
  Duration cost =
      Duration::seconds(config_.click_work_units / config_.js_units_per_sec);
  net::Url target = it->second;
  main_thread_.post(cost, /*blocking=*/false,
                    [this, target, on_done = std::move(on_done)] {
                      if (cache_.contains(target.id())) {
                        on_done();
                        return;
                      }
                      // Not cached: fetch (counts as a new object).
                      std::uint32_t id = ledger_.register_object(
                          target, web::ObjectType::kImage, false,
                          sched_.now());
                      ++fetches_issued_;
                      fetcher_.fetch(target, web::ObjectType::kImage, false,
                                     id,
                                     [this, id, on_done](FetchResult result) {
                                       ledger_.complete(id, result.size,
                                                        sched_.now(),
                                                        !result.ok());
                                       cache_.emplace(result.url.id(),
                                                      result);
                                       on_done();
                                     });
                    });
}

}  // namespace parcel::browser
