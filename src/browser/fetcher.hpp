// Fetcher: how a browser engine obtains bytes for a URL.
//
// The engine is agnostic to transport. DIR's fetcher does DNS + pooled
// HTTP over the radio; the PARCEL proxy's fetcher uses its wired paths;
// the PARCEL client's fetcher answers from the pushed bundle cache and
// *suppresses* network requests (paper §4.5). This interface is the seam
// that makes the paper's functionality split expressible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/url.hpp"
#include "web/object.hpp"

namespace parcel::browser {

struct FetchResult {
  net::Url url;  // final URL (including any cache-busting query)
  web::ObjectType type = web::ObjectType::kImage;
  util::Bytes size = 0;
  std::shared_ptr<const std::string> content;
  int status = 200;

  [[nodiscard]] bool ok() const { return status >= 200 && status < 300; }
};

class Fetcher {
 public:
  virtual ~Fetcher() = default;

  /// Fetch `url`. `randomized` asks the fetcher to append a fresh
  /// cache-busting query (MiniJs fetchRand semantics). `object_id` tags
  /// the packet-trace records of this object's transfer.
  virtual void fetch(const net::Url& url, web::ObjectType hint,
                     bool randomized, std::uint32_t object_id,
                     std::function<void(FetchResult)> on_result) = 0;
};

}  // namespace parcel::browser
