// ObjectLedger: per-run accounting of every object a browser requested.
// Supplies the onload/total object sets for trace analysis and the
// request counts for Table 1 / Fig 6c.
#pragma once

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "core/arena.hpp"
#include "net/url.hpp"
#include "util/units.hpp"
#include "web/object.hpp"

namespace parcel::browser {

struct LedgerEntry {
  std::uint32_t id = 0;
  net::Url url;
  web::ObjectType type = web::ObjectType::kImage;
  util::Bytes size = 0;
  /// Needed before the onload event can fire.
  bool blocking = true;
  bool completed = false;
  bool failed = false;
  util::TimePoint requested_at;
  util::TimePoint completed_at;
};

class ObjectLedger {
 public:
  std::uint32_t register_object(const net::Url& url, web::ObjectType type,
                                bool blocking, util::TimePoint now);
  void complete(std::uint32_t id, util::Bytes size, util::TimePoint now,
                bool failed = false);

  [[nodiscard]] const LedgerEntry& entry(std::uint32_t id) const;
  [[nodiscard]] const std::pmr::vector<LedgerEntry>& entries() const {
    return entries_;
  }

  [[nodiscard]] std::vector<std::uint32_t> onload_ids() const;
  [[nodiscard]] std::vector<std::uint32_t> all_ids() const;
  [[nodiscard]] std::size_t count() const { return entries_.size(); }
  [[nodiscard]] util::Bytes completed_bytes() const;

 private:
  // Ledger growth is per-run churn; draw from the run arena when active.
  std::pmr::vector<LedgerEntry> entries_{core::run_resource()};
};

}  // namespace parcel::browser
