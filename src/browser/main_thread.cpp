#include "browser/main_thread.hpp"

#include <stdexcept>
#include <utility>

namespace parcel::browser {

void MainThread::post(Duration cost, bool blocking,
                      std::function<void()> done) {
  if (!done) throw std::invalid_argument("MainThread::post: empty task");
  if (cost < Duration::zero()) {
    throw std::invalid_argument("MainThread::post: negative cost");
  }
  if (blocking) ++pending_blocking_;
  queue_.push_back(Task{cost, blocking, std::move(done)});
  pump();
}

void MainThread::pump() {
  if (running_ || queue_.empty()) return;
  running_ = true;
  Task task = std::move(queue_.front());
  queue_.pop_front();
  busy_total_ += task.cost;
  sched_.schedule_after(task.cost, [this, task = std::move(task)]() mutable {
    running_ = false;
    if (task.blocking) --pending_blocking_;
    task.done();
    pump();
  });
}

}  // namespace parcel::browser
