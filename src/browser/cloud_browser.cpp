#include "browser/cloud_browser.hpp"

#include <stdexcept>
#include <string>

#include "util/strings.hpp"

namespace parcel::browser {

CloudBrowserProxy::CloudBrowserProxy(net::Network& network,
                                     CloudBrowserConfig config, util::Rng rng)
    : network_(network), config_(config), rng_(std::move(rng)) {}

void CloudBrowserProxy::handle(const net::HttpRequest& request,
                               std::function<void(net::HttpResponse)> respond) {
  if (request.method == net::HttpMethod::kGet) {
    // Fresh engine per page load (one page per session in our runs).
    fetcher_ = std::make_unique<NetworkFetcher>(network_, "proxy",
                                                config_.proxy_fetch,
                                                rng_.fork());
    engine_ = std::make_unique<BrowserEngine>(
        network_.scheduler(), *fetcher_, config_.proxy_fetch.engine,
        rng_.fork(), "cb-proxy");
    auto respond_ptr =
        std::make_shared<std::function<void(net::HttpResponse)>>(
            std::move(respond));
    net::Url page_url = request.url;
    BrowserEngine::Callbacks cbs;
    cbs.on_onload = [this, page_url, respond_ptr](TimePoint) {
      // Snapshot of the rendered page: compressed blocking bytes. The
      // transformation itself takes proxy time (the paper notes this can
      // extend the radio-high window for transformation-heavy proxies).
      util::Bytes raw = engine_->ledger().completed_bytes();
      auto snapshot_bytes = static_cast<util::Bytes>(
          static_cast<double>(raw) * config_.snapshot_compression);
      Duration transform =
          config_.transform_per_mb *
          (static_cast<double>(raw) / (1024.0 * 1024.0));
      network_.scheduler().schedule_after(
          transform, [this, page_url, snapshot_bytes, respond_ptr] {
            net::HttpResponse resp;
            resp.status = 200;
            resp.url = page_url;
            resp.content_type = "application/x-cb-snapshot";
            resp.body_bytes = snapshot_bytes;
            (*respond_ptr)(resp);
          });
    };
    engine_->load(page_url, std::move(cbs));
    return;
  }

  // POST = interaction event: /click/<index>.
  if (!engine_) {
    net::HttpResponse resp;
    resp.status = 400;
    resp.url = request.url;
    resp.body_bytes = 128;
    respond(resp);
    return;
  }
  const std::string& path = request.url.path();
  auto slash = path.rfind('/');
  int index = std::stoi(path.substr(slash + 1));
  auto respond_ptr = std::make_shared<std::function<void(net::HttpResponse)>>(
      std::move(respond));
  net::Url url = request.url;
  engine_->click(index, [this, url, respond_ptr] {
    net::HttpResponse resp;
    resp.status = 200;
    resp.url = url;
    resp.content_type = "application/x-cb-delta";
    // Delta snapshot: the newly displayed region re-rendered.
    resp.body_bytes = config_.click_delta_overhead +
                      static_cast<util::Bytes>(
                          60e3 * config_.snapshot_compression);
    (*respond_ptr)(resp);
  });
}

CloudBrowserClient::CloudBrowserClient(net::Network& network,
                                       const std::string& proxy_domain,
                                       CloudBrowserConfig config)
    : network_(network),
      config_(config),
      main_thread_(network.scheduler()) {
  net::HttpEndpoint* endpoint = network.endpoint(proxy_domain);
  if (endpoint == nullptr) {
    throw std::invalid_argument("CloudBrowserClient: proxy not registered: " +
                                proxy_domain);
  }
  conn_ = std::make_unique<net::HttpConnection>(
      network.scheduler(), network.route("client", proxy_domain), *endpoint,
      config.tcp, network.next_conn_id());
}

void CloudBrowserClient::load(const net::Url& url,
                              std::function<void(TimePoint)> on_loaded) {
  std::uint32_t id = ledger_.register_object(url, web::ObjectType::kHtml,
                                             /*blocking=*/true,
                                             network_.scheduler().now());
  net::HttpRequest request;
  request.url = url;
  conn_->fetch(std::move(request), id,
               [this, id, on_loaded = std::move(on_loaded)](
                   const net::HttpResponse& resp) {
                 ledger_.complete(id, resp.body_bytes,
                                  network_.scheduler().now(),
                                  resp.status != 200);
                 // Thin render: no JS, just raster the snapshot.
                 Duration render = Duration::seconds(
                     static_cast<double>(resp.body_bytes) /
                     config_.client.parse_bytes_per_sec);
                 main_thread_.post(render, false, [this, on_loaded] {
                   on_loaded(network_.scheduler().now());
                 });
               });
}

void CloudBrowserClient::click(int index, std::function<void()> on_done) {
  net::Url url = net::Url::parse("http://cb.proxy.example/click/" +
                                 std::to_string(index));
  std::uint32_t id = ledger_.register_object(url, web::ObjectType::kJson,
                                             /*blocking=*/false,
                                             network_.scheduler().now());
  net::HttpRequest request;
  request.method = net::HttpMethod::kPost;
  request.url = url;
  request.body_bytes = 180;  // serialized UI event
  conn_->fetch(std::move(request), id,
               [this, id, on_done = std::move(on_done)](
                   const net::HttpResponse& resp) {
                 ledger_.complete(id, resp.body_bytes,
                                  network_.scheduler().now(),
                                  resp.status != 200);
                 Duration render = Duration::seconds(
                     static_cast<double>(resp.body_bytes) /
                     config_.client.parse_bytes_per_sec);
                 main_thread_.post(render, false, on_done);
               });
}

}  // namespace parcel::browser
