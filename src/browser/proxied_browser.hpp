// Proxy-assisted baselines from Table 1 / §3:
//
//   HTTP proxy — the traditional web proxy (Squid-style, [9]): the proxy
//   resolves DNS and relays each request to origin servers, but the
//   *client* still identifies objects and issues one request-response per
//   object over the radio, across a handful of connections to the proxy.
//
//   SPDY proxy — one multiplexed connection from client to proxy ([5],
//   §4.3's discussion): eliminates per-connection setup and head-of-line
//   request serialization, but object identification remains on the
//   (slow) client, so request issue rate still gates the load — the
//   reason the paper argues SPDY alone does not close the gap.
//
// Both reuse BrowserEngine; only the Fetcher differs.
#pragma once

#include <memory>

#include "browser/dir_browser.hpp"
#include "browser/engine.hpp"
#include "net/dns.hpp"
#include "net/http.hpp"
#include "net/network.hpp"

namespace parcel::browser {

/// Proxy-side relay: answers client requests by fetching from origins
/// over the proxy's own wired paths (with proxy-side DNS).
class RelayProxy final : public net::HttpEndpoint {
 public:
  RelayProxy(net::Network& network, DirConfig fetch_config, util::Rng rng);

  void handle(const net::HttpRequest& request,
              std::function<void(net::HttpResponse)> respond) override;

  [[nodiscard]] std::size_t relayed() const { return relayed_; }

 private:
  net::Network& network_;
  util::Rng rng_;
  net::DnsClient dns_;
  net::HttpClientPool pool_;
  std::size_t relayed_ = 0;
};

struct ProxiedBrowserConfig {
  /// Connections the client opens to the proxy (HTTP-proxy mode: a few;
  /// SPDY mode: exactly one).
  int client_connections = 6;
  /// Outstanding requests per connection (1 = HTTP/1.1; >1 = SPDY mux).
  int streams_per_connection = 1;
  net::TcpParams tcp;
  EngineConfig engine;

  static ProxiedBrowserConfig http_proxy();
  static ProxiedBrowserConfig spdy_proxy();
};

/// Client half: engine + fetcher that sends every request to the relay
/// proxy over the radio. No client DNS (the proxy resolves).
class ProxiedBrowser {
 public:
  ProxiedBrowser(net::Network& network, const std::string& proxy_domain,
                 ProxiedBrowserConfig config, util::Rng rng);

  void load(const net::Url& url, BrowserEngine::Callbacks callbacks);
  void click(int index, std::function<void()> on_done);

  [[nodiscard]] BrowserEngine& engine() { return *engine_; }
  [[nodiscard]] const BrowserEngine& engine() const { return *engine_; }
  /// Requests that crossed the radio to the proxy.
  [[nodiscard]] std::size_t requests_issued() const;

 private:
  class ProxiedFetcher final : public Fetcher {
   public:
    ProxiedFetcher(net::Network& network, const std::string& proxy_domain,
                   const ProxiedBrowserConfig& config, util::Rng rng);
    void fetch(const net::Url& url, web::ObjectType hint, bool randomized,
               std::uint32_t object_id,
               std::function<void(FetchResult)> on_result) override;
    std::size_t requests = 0;

   private:
    net::HttpConnection& pick_connection();

    util::Rng rng_;
    std::vector<std::unique_ptr<net::HttpConnection>> conns_;
    std::size_t next_ = 0;
  };

  std::unique_ptr<ProxiedFetcher> fetcher_;
  std::unique_ptr<BrowserEngine> engine_;
};

}  // namespace parcel::browser
