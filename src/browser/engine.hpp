// BrowserEngine: the shared page-load machine.
//
// Drives a page load the way WebKit/Gecko do at the granularity this
// study needs: incremental HTML scanning on a single main thread,
// synchronous <script src> blocking the parser until fetched *and*
// executed, CSS scanned on arrival for url() dependencies, JS execution
// revealing dynamically identified objects, async scripts running after
// onload (ad/widget clusters — the paper's post-onload requests), and an
// onload event that fires when the blocking set drains.
//
// The same engine instance class serves as: the DIR client browser, the
// PARCEL proxy's headless load engine, the PARCEL client's renderer, and
// the cloud browser's server-side engine — each differing only in the
// Fetcher behind it and its device speed (EngineConfig).
//
// All tokenization goes through web::ParseCache: scan artifacts are
// memoized per distinct content across every engine, run and worker
// thread, and their string_views borrow from the immutable content
// strings (zero copies on the hot path). Simulated parse/exec *cost* is
// unaffected — the cache only removes real host CPU.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "browser/fetcher.hpp"
#include "core/arena.hpp"
#include "browser/ledger.hpp"
#include "browser/main_thread.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "web/html.hpp"
#include "web/js.hpp"

namespace parcel::browser {

struct EngineConfig {
  /// HTML/CSS scanning throughput of this device's main thread.
  double parse_bytes_per_sec = 2.0e6;
  /// MiniJs work units per second.
  double js_units_per_sec = 25.0;
  /// Async (ad/widget) scripts execute this long after onload — the
  /// source of the paper's post-onload object requests.
  Duration async_exec_min = Duration::millis(200);
  Duration async_exec_max = Duration::millis(2500);
  /// Cost of a cache lookup / local display on interaction.
  double click_work_units = 2.0;
};

/// Device cache: fetched results keyed by interned URL identity. Lives in
/// the per-run arena (all holders — engines, retired session engines, the
/// proxy's warm cache — die with the run).
using FetchCache =
    std::pmr::unordered_map<net::UrlId, FetchResult, net::UrlIdHash>;

class BrowserEngine {
 public:
  struct Callbacks {
    std::function<void(TimePoint)> on_onload;
    std::function<void(TimePoint)> on_complete;
  };

  BrowserEngine(sim::Scheduler& sched, Fetcher& fetcher, EngineConfig config,
                util::Rng rng, std::string name);

  /// Begin loading; callbacks fire at the onload event and when the last
  /// object (including post-onload asyncs) has arrived and executed.
  void load(const net::Url& main_url, Callbacks callbacks);

  /// Simulate a user click on handler `index` (registered by page JS via
  /// onClick). Executes the handler locally; fetches the target only if
  /// it is not already cached. `on_done` fires when the result is
  /// displayed.
  void click(int index, std::function<void()> on_done);

  [[nodiscard]] bool has_click_handler(int index) const {
    return click_handlers_.contains(index);
  }

  // --- Run metrics ----------------------------------------------------
  [[nodiscard]] const ObjectLedger& ledger() const { return ledger_; }
  [[nodiscard]] bool onload_fired() const { return onload_time_.has_value(); }
  [[nodiscard]] TimePoint onload_time() const;
  [[nodiscard]] bool completed() const { return complete_time_.has_value(); }
  [[nodiscard]] TimePoint complete_time() const;
  [[nodiscard]] Duration cpu_busy() const { return main_thread_.busy_total(); }
  [[nodiscard]] std::size_t fetches_issued() const { return fetches_issued_; }
  /// Objects served from the (pre-seeded) device cache without network.
  [[nodiscard]] std::size_t cache_loads() const { return cache_loads_; }
  [[nodiscard]] bool is_cached(const net::Url& url) const {
    return cache_.contains(url.id());
  }

  /// Seed the device cache from a previous page's engine (multi-page
  /// session support, §7.3: "some objects in subsequent pages of a
  /// session could potentially be cached in the device"). Must be called
  /// before load().
  void preload_cache(const FetchCache& c);

  /// The device cache after a load; feed to the next page's engine.
  [[nodiscard]] const FetchCache& cache() const { return cache_; }

 private:
  struct ParseJob {
    /// Shared scan artifact (from the parse cache, or freshly scanned).
    std::shared_ptr<const std::vector<web::HtmlToken>> tokens;
    /// Pins the document string every token's views borrow from.
    std::shared_ptr<const std::string> content;
    std::size_t next = 0;
    Duration per_token = Duration::zero();
    net::Url base;
  };

  void issue_fetch(const net::Url& url, web::ObjectType hint, bool blocking,
                   bool randomized, bool parser_gate);
  void on_fetch_result(std::uint32_t id, bool blocking, bool parser_gate,
                       const FetchResult& result);
  void start_parse(const FetchResult& html);
  void parser_step();
  /// Execute a script body. `code` borrows from the string `pin` keeps
  /// alive (the whole script file, or the surrounding document for
  /// inline scripts).
  void execute_script(std::string_view code,
                      std::shared_ptr<const std::string> pin,
                      const net::Url& base, bool blocking,
                      std::function<void()> after);
  void schedule_async_exec(FetchResult script);
  void reveal(const std::vector<web::Reference>& refs, const net::Url& base,
              bool blocking);
  void check_onload();
  void check_complete();

  sim::Scheduler& sched_;
  Fetcher& fetcher_;
  EngineConfig config_;
  util::Rng rng_;
  std::string name_;
  MainThread main_thread_;
  ObjectLedger ledger_;
  Callbacks callbacks_;

  net::Url main_url_;
  bool load_started_ = false;
  std::optional<ParseJob> parse_;
  bool parser_done_ = false;
  bool parser_gated_ = false;  // waiting on a sync script

  // Per-load bookkeeping: bucket arrays and nodes bump out of the run
  // arena when one is in scope (DESIGN.md §11).
  FetchCache cache_{core::run_resource()};
  std::pmr::unordered_set<net::UrlId, net::UrlIdHash> requested_{
      core::run_resource()};
  std::size_t outstanding_blocking_ = 0;
  std::size_t outstanding_total_ = 0;
  std::size_t pending_async_execs_ = 0;
  std::size_t fetches_issued_ = 0;
  std::size_t cache_loads_ = 0;

  /// Async executions deferred until onload fires: (post-onload delay,
  /// runnable).
  std::pmr::vector<std::pair<Duration, std::function<void()>>>
      pending_async_runs_{core::run_resource()};

  std::map<int, net::Url> click_handlers_;
  std::optional<TimePoint> onload_time_;
  std::optional<TimePoint> complete_time_;
};

}  // namespace parcel::browser
