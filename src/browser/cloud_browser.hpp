// CloudBrowser: the cloud-heavy baseline ("CB", §8.2).
//
// Models an Opera-Mini-style thin client: the proxy runs the full page
// load *and all JS*, then ships a compressed rendered snapshot to the
// client over a single connection. The client never executes page JS —
// so every interactive event must travel to the cloud, be executed
// there, and return a fresh snapshot delta. That round trip (and the
// radio promotion it forces after an idle gap) is exactly the behaviour
// the paper's Fig 8 charges against cloud-heavy designs.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "browser/dir_browser.hpp"
#include "browser/engine.hpp"
#include "browser/ledger.hpp"
#include "browser/main_thread.hpp"
#include "net/network.hpp"

namespace parcel::browser {

struct CloudBrowserConfig {
  /// Proxy-side transformation shrinks page bytes by this factor
  /// (snapshot compression is CB's selling point for first download).
  double snapshot_compression = 0.55;
  /// Fixed overhead per interaction snapshot delta.
  util::Bytes click_delta_overhead = util::kib(40);
  /// Transformation/compression time at the proxy per MB of page.
  Duration transform_per_mb = Duration::millis(350);
  DirConfig proxy_fetch;   // proxy-side engine + fetch settings
  EngineConfig client;     // client render speed
  net::TcpParams tcp;      // client<->proxy connection
};

/// Server half: owns the proxy-side engine per loaded page.
class CloudBrowserProxy final : public net::HttpEndpoint {
 public:
  CloudBrowserProxy(net::Network& network, CloudBrowserConfig config,
                    util::Rng rng);

  void handle(const net::HttpRequest& request,
              std::function<void(net::HttpResponse)> respond) override;

  [[nodiscard]] const BrowserEngine* engine() const { return engine_.get(); }

 private:
  net::Network& network_;
  CloudBrowserConfig config_;
  util::Rng rng_;
  std::unique_ptr<NetworkFetcher> fetcher_;
  std::unique_ptr<BrowserEngine> engine_;
};

/// Client half: thin renderer over one persistent connection.
class CloudBrowserClient {
 public:
  /// `proxy_domain` must be registered in the network with a route from
  /// the "client" vantage.
  CloudBrowserClient(net::Network& network, const std::string& proxy_domain,
                     CloudBrowserConfig config);

  void load(const net::Url& url, std::function<void(TimePoint)> on_loaded);
  void click(int index, std::function<void()> on_done);

  [[nodiscard]] const ObjectLedger& ledger() const { return ledger_; }
  [[nodiscard]] Duration cpu_busy() const { return main_thread_.busy_total(); }

 private:
  net::Network& network_;
  CloudBrowserConfig config_;
  MainThread main_thread_;
  ObjectLedger ledger_;
  std::unique_ptr<net::HttpConnection> conn_;
};

}  // namespace parcel::browser
