#include "browser/ledger.hpp"

#include <stdexcept>

namespace parcel::browser {

std::uint32_t ObjectLedger::register_object(const net::Url& url,
                                            web::ObjectType type,
                                            bool blocking,
                                            util::TimePoint now) {
  LedgerEntry e;
  e.id = static_cast<std::uint32_t>(entries_.size()) + 1;
  e.url = url;
  e.type = type;
  e.blocking = blocking;
  e.requested_at = now;
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

void ObjectLedger::complete(std::uint32_t id, util::Bytes size,
                            util::TimePoint now, bool failed) {
  if (id == 0 || id > entries_.size()) {
    throw std::out_of_range("ObjectLedger::complete: bad id");
  }
  LedgerEntry& e = entries_[id - 1];
  if (e.completed) {
    throw std::logic_error("ObjectLedger::complete: already completed: " +
                           e.url.str());
  }
  e.completed = true;
  e.failed = failed;
  e.size = size;
  e.completed_at = now;
}

const LedgerEntry& ObjectLedger::entry(std::uint32_t id) const {
  if (id == 0 || id > entries_.size()) {
    throw std::out_of_range("ObjectLedger::entry: bad id");
  }
  return entries_[id - 1];
}

std::vector<std::uint32_t> ObjectLedger::onload_ids() const {
  std::vector<std::uint32_t> out;
  for (const auto& e : entries_) {
    if (e.blocking) out.push_back(e.id);
  }
  return out;
}

std::vector<std::uint32_t> ObjectLedger::all_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.id);
  return out;
}

util::Bytes ObjectLedger::completed_bytes() const {
  util::Bytes n = 0;
  for (const auto& e : entries_) {
    if (e.completed && !e.failed) n += e.size;
  }
  return n;
}

}  // namespace parcel::browser
