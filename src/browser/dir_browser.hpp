// DirBrowser: the traditional mobile browser baseline ("DIR", §7.1).
//
// Classic behaviour: DNS lookup per server domain, up to six parallel
// persistent HTTP connections per domain, one HTTP request-response per
// object over the cellular link, parse-as-you-go discovery. Every one of
// those round trips crosses the high-RTT radio — the cost PARCEL removes.
#pragma once

#include <memory>
#include <string>

#include "browser/engine.hpp"
#include "browser/fetcher.hpp"
#include "net/dns.hpp"
#include "net/network.hpp"

namespace parcel::browser {

struct DirConfig {
  int max_conns_per_domain = 6;
  /// Browser-wide cap on concurrent connections (2014 mobile browsers
  /// held around a dozen sockets total).
  int max_total_connections = 9;
  net::TcpParams tcp;
  EngineConfig engine;
  /// Mean resolver-side latency per uncached DNS lookup.
  Duration dns_latency = Duration::millis(25);

  /// Per-object fetch hardening. Off by default — zero timers armed, so
  /// fair-weather runs stay byte-identical. The experiment harness enables
  /// these only when a fault plan is active.
  Duration object_timeout = Duration::zero();  // zero = no timeout
  int max_fetch_retries = 0;
  Duration retry_backoff = Duration::millis(250);  // doubles per retry
};

/// Fetcher that resolves DNS then issues pooled HTTP requests from the
/// named vantage ("client" for DIR, "proxy" for the PARCEL/CB proxies).
class NetworkFetcher final : public Fetcher {
 public:
  NetworkFetcher(net::Network& network, const std::string& vantage,
                 DirConfig config, util::Rng rng);

  void fetch(const net::Url& url, web::ObjectType hint, bool randomized,
             std::uint32_t object_id,
             std::function<void(FetchResult)> on_result) override;

  /// POST a body to `url`; used by PARCEL's proxy when relaying client
  /// POSTs unmodified (§4.5).
  void post(const net::Url& url, util::Bytes body_bytes,
            std::function<void(const net::HttpResponse&)> on_response);

  [[nodiscard]] std::size_t dns_lookups() const {
    return dns_.lookups_issued();
  }
  [[nodiscard]] std::size_t connections_opened() const {
    return pool_.connections_opened();
  }
  [[nodiscard]] std::size_t requests_issued() const {
    return pool_.requests_issued();
  }
  [[nodiscard]] std::uint64_t fetch_retries() const { return fetch_retries_; }
  [[nodiscard]] std::uint64_t fetch_timeouts() const {
    return fetch_timeouts_;
  }
  [[nodiscard]] std::uint64_t retransmits() const {
    return pool_.retransmits();
  }

 private:
  /// Per-object retry state shared by the timeout timer and the response
  /// path; the first completion wins, late copies are ignored.
  struct FetchGuard {
    bool done = false;
    int attempt = 0;
    sim::EventHandle timer;
  };

  void fetch_attempt(
      const net::Url& url, web::ObjectType hint, std::uint32_t object_id,
      const std::shared_ptr<FetchGuard>& guard,
      const std::shared_ptr<std::function<void(FetchResult)>>& on_result);
  void retry_after_backoff(
      const net::Url& url, web::ObjectType hint, std::uint32_t object_id,
      const std::shared_ptr<FetchGuard>& guard,
      const std::shared_ptr<std::function<void(FetchResult)>>& on_result);

  net::Network& network_;
  DirConfig config_;
  util::Rng rng_;
  net::DnsClient dns_;
  net::HttpClientPool pool_;
  std::uint64_t fetch_retries_ = 0;
  std::uint64_t fetch_timeouts_ = 0;
};

/// Convert an HTTP response into the engine's FetchResult, preferring the
/// engine's type hint when the MIME type is ambiguous (sync vs async JS).
[[nodiscard]] FetchResult to_fetch_result(const net::HttpResponse& response,
                                          web::ObjectType hint);

class DirBrowser {
 public:
  DirBrowser(net::Network& network, DirConfig config, util::Rng rng);

  /// Load a page. Calling again models the next page of a browsing
  /// session: a fresh engine carries over the device cache, and the
  /// fetcher keeps its DNS cache and warm connections.
  void load(const net::Url& url, BrowserEngine::Callbacks callbacks);
  void click(int index, std::function<void()> on_done);

  [[nodiscard]] BrowserEngine& engine() { return *engine_; }
  [[nodiscard]] const BrowserEngine& engine() const { return *engine_; }
  [[nodiscard]] NetworkFetcher& fetcher() { return *fetcher_; }

 private:
  net::Network& network_;
  DirConfig config_;
  util::Rng engine_rng_;
  std::unique_ptr<NetworkFetcher> fetcher_;
  std::unique_ptr<BrowserEngine> engine_;
  std::vector<std::unique_ptr<BrowserEngine>> retired_engines_;
};

}  // namespace parcel::browser
