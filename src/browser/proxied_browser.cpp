#include "browser/proxied_browser.hpp"

#include <stdexcept>

namespace parcel::browser {

RelayProxy::RelayProxy(net::Network& network, DirConfig fetch_config,
                       util::Rng rng)
    : network_(network),
      rng_(rng.fork()),
      dns_(network.scheduler(), network.route("proxy", "dns"),
           fetch_config.dns_latency, rng.fork(),
           [&network] { return network.next_conn_id(); }),
      pool_(
          network.scheduler(),
          [&network](const std::string& domain) {
            return network.route("proxy", domain);
          },
          [&network](const std::string& domain) {
            return network.endpoint(domain);
          },
          [&network] { return network.next_conn_id(); }, fetch_config.tcp,
          fetch_config.max_conns_per_domain,
          fetch_config.max_total_connections) {}

void RelayProxy::handle(const net::HttpRequest& request,
                        std::function<void(net::HttpResponse)> respond) {
  ++relayed_;
  net::HttpRequest upstream = request;
  dns_.resolve(request.url.host_id(),
               [this, upstream = std::move(upstream),
                respond = std::move(respond)]() mutable {
                 pool_.fetch(std::move(upstream), /*object_id=*/0,
                             [respond = std::move(respond)](
                                 const net::HttpResponse& response) {
                               respond(response);
                             });
               });
}

ProxiedBrowserConfig ProxiedBrowserConfig::http_proxy() {
  ProxiedBrowserConfig cfg;
  cfg.client_connections = 6;
  cfg.streams_per_connection = 1;
  return cfg;
}

ProxiedBrowserConfig ProxiedBrowserConfig::spdy_proxy() {
  ProxiedBrowserConfig cfg;
  cfg.client_connections = 1;
  cfg.streams_per_connection = 32;
  return cfg;
}

ProxiedBrowser::ProxiedFetcher::ProxiedFetcher(
    net::Network& network, const std::string& proxy_domain,
    const ProxiedBrowserConfig& config, util::Rng rng)
    : rng_(std::move(rng)) {
  net::HttpEndpoint* endpoint = network.endpoint(proxy_domain);
  if (endpoint == nullptr) {
    throw std::invalid_argument("ProxiedBrowser: proxy not registered: " +
                                proxy_domain);
  }
  for (int i = 0; i < config.client_connections; ++i) {
    conns_.push_back(std::make_unique<net::HttpConnection>(
        network.scheduler(), network.route("client", proxy_domain), *endpoint,
        config.tcp, network.next_conn_id(), config.streams_per_connection));
  }
}

net::HttpConnection& ProxiedBrowser::ProxiedFetcher::pick_connection() {
  // Prefer an idle connection; otherwise round-robin (mirrors browsers
  // spreading requests over their proxy connections).
  for (auto& conn : conns_) {
    if (!conn->busy()) return *conn;
  }
  net::HttpConnection& conn = *conns_[next_];
  next_ = (next_ + 1) % conns_.size();
  return conn;
}

void ProxiedBrowser::ProxiedFetcher::fetch(
    const net::Url& url, web::ObjectType hint, bool randomized,
    std::uint32_t object_id, std::function<void(FetchResult)> on_result) {
  ++requests;
  net::Url final_url = url;
  if (randomized) {
    final_url = net::Url::parse(
        url.str() + (url.query().empty() ? "?r=" : "&r=") +
        std::to_string(rng_.uniform_int(100000, 999999)));
  }
  net::HttpRequest request;
  request.url = final_url;
  pick_connection().fetch(std::move(request), object_id,
                          [hint, on_result = std::move(on_result)](
                              const net::HttpResponse& response) {
                            on_result(to_fetch_result(response, hint));
                          });
}

ProxiedBrowser::ProxiedBrowser(net::Network& network,
                               const std::string& proxy_domain,
                               ProxiedBrowserConfig config, util::Rng rng)
    : fetcher_(std::make_unique<ProxiedFetcher>(network, proxy_domain, config,
                                                rng.fork())),
      engine_(std::make_unique<BrowserEngine>(
          network.scheduler(), *fetcher_, config.engine, rng.fork(),
          config.streams_per_connection > 1 ? "spdy-proxy-client"
                                            : "http-proxy-client")) {}

void ProxiedBrowser::load(const net::Url& url,
                          BrowserEngine::Callbacks callbacks) {
  engine_->load(url, std::move(callbacks));
}

void ProxiedBrowser::click(int index, std::function<void()> on_done) {
  engine_->click(index, std::move(on_done));
}

std::size_t ProxiedBrowser::requests_issued() const {
  return fetcher_->requests;
}

}  // namespace parcel::browser
