#include "browser/dir_browser.hpp"

#include "util/strings.hpp"

namespace parcel::browser {

FetchResult to_fetch_result(const net::HttpResponse& response,
                            web::ObjectType hint) {
  FetchResult r;
  r.url = response.url;
  r.status = response.status;
  r.size = response.body_bytes;
  r.content = response.content;
  web::ObjectType mime_based = web::type_from_mime(response.content_type);
  bool both_js = (mime_based == web::ObjectType::kJs ||
                  mime_based == web::ObjectType::kJsAsync) &&
                 (hint == web::ObjectType::kJs ||
                  hint == web::ObjectType::kJsAsync);
  r.type = both_js ? hint : mime_based;
  return r;
}

NetworkFetcher::NetworkFetcher(net::Network& network,
                               const std::string& vantage, DirConfig config,
                               util::Rng rng)
    : network_(network),
      rng_(rng.fork()),
      dns_(network.scheduler(), network.route(vantage, "dns"),
           config.dns_latency, rng.fork(),
           [&network] { return network.next_conn_id(); }),
      pool_(
          network.scheduler(),
          [&network, vantage](const std::string& domain) {
            return network.route(vantage, domain);
          },
          [&network](const std::string& domain) {
            return network.endpoint(domain);
          },
          [&network] { return network.next_conn_id(); }, config.tcp,
          config.max_conns_per_domain, config.max_total_connections) {}

void NetworkFetcher::fetch(const net::Url& url, web::ObjectType hint,
                           bool randomized, std::uint32_t object_id,
                           std::function<void(FetchResult)> on_result) {
  net::Url final_url = url;
  if (randomized) {
    final_url = net::Url::parse(
        url.str() + (url.query().empty() ? "?r=" : "&r=") +
        std::to_string(rng_.uniform_int(100000, 999999)));
  }
  dns_.resolve(final_url.host(), [this, final_url, hint, object_id,
                                  on_result = std::move(on_result)] {
    net::HttpRequest request;
    request.url = final_url;
    pool_.fetch(std::move(request), object_id,
                [hint, on_result](const net::HttpResponse& response) {
                  on_result(to_fetch_result(response, hint));
                });
  });
}

void NetworkFetcher::post(
    const net::Url& url, util::Bytes body_bytes,
    std::function<void(const net::HttpResponse&)> on_response) {
  dns_.resolve(url.host(), [this, url, body_bytes,
                            on_response = std::move(on_response)] {
    net::HttpRequest request;
    request.method = net::HttpMethod::kPost;
    request.url = url;
    request.body_bytes = body_bytes;
    pool_.fetch(std::move(request), /*object_id=*/0, on_response);
  });
}

DirBrowser::DirBrowser(net::Network& network, DirConfig config, util::Rng rng)
    : network_(network),
      config_(config),
      engine_rng_(rng.fork()),
      fetcher_(std::make_unique<NetworkFetcher>(network, "client", config,
                                                rng.fork())),
      engine_(std::make_unique<BrowserEngine>(network.scheduler(), *fetcher_,
                                              config.engine,
                                              engine_rng_.fork(), "dir")) {}

void DirBrowser::load(const net::Url& url,
                      BrowserEngine::Callbacks callbacks) {
  if (engine_->completed() ||
      (engine_->ledger().count() > 0 && engine_->onload_fired())) {
    // Next page of the session: new engine, warm device cache.
    retired_engines_.push_back(std::move(engine_));
    engine_ = std::make_unique<BrowserEngine>(
        network_.scheduler(), *fetcher_, config_.engine, engine_rng_.fork(),
        "dir");
    engine_->preload_cache(retired_engines_.back()->cache());
  }
  engine_->load(url, std::move(callbacks));
}

void DirBrowser::click(int index, std::function<void()> on_done) {
  engine_->click(index, std::move(on_done));
}

}  // namespace parcel::browser
