#include "browser/dir_browser.hpp"

#include "util/strings.hpp"

namespace parcel::browser {

FetchResult to_fetch_result(const net::HttpResponse& response,
                            web::ObjectType hint) {
  FetchResult r;
  r.url = response.url;
  r.status = response.status;
  r.size = response.body_bytes;
  r.content = response.content;
  web::ObjectType mime_based = web::type_from_mime(response.content_type);
  bool both_js = (mime_based == web::ObjectType::kJs ||
                  mime_based == web::ObjectType::kJsAsync) &&
                 (hint == web::ObjectType::kJs ||
                  hint == web::ObjectType::kJsAsync);
  r.type = both_js ? hint : mime_based;
  return r;
}

NetworkFetcher::NetworkFetcher(net::Network& network,
                               const std::string& vantage, DirConfig config,
                               util::Rng rng)
    : network_(network),
      config_(config),
      rng_(rng.fork()),
      dns_(network.scheduler(), network.route(vantage, "dns"),
           config.dns_latency, rng.fork(),
           [&network] { return network.next_conn_id(); }),
      pool_(
          network.scheduler(),
          [&network, vantage](const std::string& domain) {
            return network.route(vantage, domain);
          },
          [&network](const std::string& domain) {
            return network.endpoint(domain);
          },
          [&network] { return network.next_conn_id(); }, config.tcp,
          config.max_conns_per_domain, config.max_total_connections) {}

void NetworkFetcher::fetch(const net::Url& url, web::ObjectType hint,
                           bool randomized, std::uint32_t object_id,
                           std::function<void(FetchResult)> on_result) {
  net::Url final_url = url;
  if (randomized) {
    final_url = net::Url::parse(
        url.str() + (url.query().empty() ? "?r=" : "&r=") +
        std::to_string(rng_.uniform_int(100000, 999999)));
  }
  if (config_.object_timeout <= Duration::zero() &&
      config_.max_fetch_retries <= 0) {
    // Fair-weather fast path: no guard state, no timers.
    dns_.resolve(final_url.host_id(), [this, final_url, hint, object_id,
                                    on_result = std::move(on_result)] {
      net::HttpRequest request;
      request.url = final_url;
      pool_.fetch(std::move(request), object_id,
                  [hint, on_result](const net::HttpResponse& response) {
                    on_result(to_fetch_result(response, hint));
                  });
    });
    return;
  }
  auto guard = std::make_shared<FetchGuard>();
  auto cb = std::make_shared<std::function<void(FetchResult)>>(
      std::move(on_result));
  fetch_attempt(final_url, hint, object_id, guard, cb);
}

void NetworkFetcher::fetch_attempt(
    const net::Url& url, web::ObjectType hint, std::uint32_t object_id,
    const std::shared_ptr<FetchGuard>& guard,
    const std::shared_ptr<std::function<void(FetchResult)>>& on_result) {
  if (config_.object_timeout > Duration::zero()) {
    guard->timer = network_.scheduler().schedule_after(
        config_.object_timeout,
        [this, url, hint, object_id, guard, on_result] {
          if (guard->done) return;
          ++fetch_timeouts_;
          if (guard->attempt >= config_.max_fetch_retries) {
            // Out of retries: synthesize a gateway-timeout failure so the
            // engine marks the object failed and moves on — never hangs.
            guard->done = true;
            FetchResult r;
            r.url = url;
            r.type = hint;
            r.status = 504;
            (*on_result)(r);
            return;
          }
          retry_after_backoff(url, hint, object_id, guard, on_result);
        });
  }
  dns_.resolve(url.host_id(), [this, url, hint, object_id, guard, on_result] {
    net::HttpRequest request;
    request.url = url;
    pool_.fetch(
        std::move(request), object_id,
        [this, url, hint, object_id, guard,
         on_result](const net::HttpResponse& response) {
          if (guard->done) return;  // late copy after a timeout verdict
          if (response.status >= 500 &&
              guard->attempt < config_.max_fetch_retries) {
            guard->timer.cancel();
            retry_after_backoff(url, hint, object_id, guard, on_result);
            return;
          }
          guard->done = true;
          guard->timer.cancel();
          (*on_result)(to_fetch_result(response, hint));
        });
  });
}

void NetworkFetcher::retry_after_backoff(
    const net::Url& url, web::ObjectType hint, std::uint32_t object_id,
    const std::shared_ptr<FetchGuard>& guard,
    const std::shared_ptr<std::function<void(FetchResult)>>& on_result) {
  ++guard->attempt;
  ++fetch_retries_;
  Duration delay = config_.retry_backoff;
  for (int i = 1; i < guard->attempt; ++i) delay = delay * 2.0;
  network_.scheduler().schedule_after(
      delay, [this, url, hint, object_id, guard, on_result] {
        if (guard->done) return;
        fetch_attempt(url, hint, object_id, guard, on_result);
      });
}

void NetworkFetcher::post(
    const net::Url& url, util::Bytes body_bytes,
    std::function<void(const net::HttpResponse&)> on_response) {
  dns_.resolve(url.host_id(), [this, url, body_bytes,
                            on_response = std::move(on_response)] {
    net::HttpRequest request;
    request.method = net::HttpMethod::kPost;
    request.url = url;
    request.body_bytes = body_bytes;
    pool_.fetch(std::move(request), /*object_id=*/0, on_response);
  });
}

DirBrowser::DirBrowser(net::Network& network, DirConfig config, util::Rng rng)
    : network_(network),
      config_(config),
      engine_rng_(rng.fork()),
      fetcher_(std::make_unique<NetworkFetcher>(network, "client", config,
                                                rng.fork())),
      engine_(std::make_unique<BrowserEngine>(network.scheduler(), *fetcher_,
                                              config.engine,
                                              engine_rng_.fork(), "dir")) {}

void DirBrowser::load(const net::Url& url,
                      BrowserEngine::Callbacks callbacks) {
  if (engine_->completed() ||
      (engine_->ledger().count() > 0 && engine_->onload_fired())) {
    // Next page of the session: new engine, warm device cache.
    retired_engines_.push_back(std::move(engine_));
    engine_ = std::make_unique<BrowserEngine>(
        network_.scheduler(), *fetcher_, config_.engine, engine_rng_.fork(),
        "dir");
    engine_->preload_cache(retired_engines_.back()->cache());
  }
  engine_->load(url, std::move(callbacks));
}

void DirBrowser::click(int index, std::function<void()> on_done) {
  engine_->click(index, std::move(on_done));
}

}  // namespace parcel::browser
