// MainThread: the browser's single JS/parser thread as a serialized task
// queue with simulated cost. Mobile CPUs are slow relative to the proxy
// (the paper's split exists because of this asymmetry), so parse and
// execute costs are first-class simulation time here, and double as the
// CPU-energy busy time for the §8.2 total-device-energy comparison.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/scheduler.hpp"
#include "util/units.hpp"

namespace parcel::browser {

using util::Duration;
using util::TimePoint;

class MainThread {
 public:
  explicit MainThread(sim::Scheduler& sched) : sched_(sched) {}

  /// Run `done` after occupying the thread for `cost`. Tasks run FIFO.
  /// `blocking` marks work that must finish before onload (sync script
  /// execution, parsing); the engine's onload check consults the count.
  void post(Duration cost, bool blocking, std::function<void()> done);

  [[nodiscard]] bool idle() const { return !running_ && queue_.empty(); }
  [[nodiscard]] std::size_t pending_blocking() const {
    return pending_blocking_;
  }
  [[nodiscard]] Duration busy_total() const { return busy_total_; }

 private:
  struct Task {
    Duration cost;
    bool blocking;
    std::function<void()> done;
  };

  void pump();

  sim::Scheduler& sched_;
  std::deque<Task> queue_;
  bool running_ = false;
  std::size_t pending_blocking_ = 0;
  Duration busy_total_ = Duration::zero();
};

}  // namespace parcel::browser
