// ProxyShard + ShardedFleet: N independent proxies behind a rendezvous-
// hash front, with a tiered object store and crash-driven session handoff
// (ISSUE 8 tentpole; ROADMAP item 1; DESIGN.md §13).
//
// One ProxyShard is §10's single-proxy model — its own SharedObjectStore
// (the L1) and its own ProxyCompute pool — replicated N times on one
// sim::Scheduler timeline. In front sits a ShardRouter mapping each
// client's key to a live shard, and beneath sits one shared L2
// SharedObjectStore: an L1 miss that a sibling shard has already
// published is served by a kTransfer task (configurable backplane cost,
// cheaper than origin fetch + parse, dearer than the free L1 hit), and a
// full miss fetches from origin and publishes to both tiers.
//
// Crash-driven handoff: when the fleet-layer FaultPlan
// (FleetConfig::shard_faults) schedules a proxy crash, the seeded victim
// shard dies mid-run — its queue is dropped, its in-flight service is
// voided, its L1 is lost — and every session it had not finished is
// re-routed by the same rendezvous front (now excluding the victim) and
// resubmitted against the surviving shards' L1s and the shared L2.
// Rendezvous hashing makes the remap minimal: only the victim's keys
// move. On restart the shard rejoins the front with a cold L1. Every
// handoff decision derives from seeded state (arrival process, fault
// plan, routing salt) — never from execution order — so sharded fleet
// runs stay bitwise identical across --jobs and reruns.
//
// Store-warming model (inherited from §10): tiers are warmed at *request*
// time, not at task completion, so store evolution stays a pure function
// of the request sequence — the property the epoch-parallel snapshot
// replay (§12) depends on. A crash therefore loses the victim's L1 but
// not its L2 publications; redo accounting counts the service seconds
// re-executed and the bytes the tier had to move a second time
// (origin refetch + backplane transfer) for migrated sessions.
//
// Lock discipline (DESIGN.md §14.3): none — shards, router, and both
// store tiers mutate only on the single macro-simulation timeline, and
// keeping them mutex-free is what makes crash/handoff replay exact. Any
// future cross-thread state must use util::Mutex + PARCEL_GUARDED_BY
// (src/util/thread_annotations.hpp); parcel-lint enforces the annotation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fleet/fleet_runner.hpp"
#include "fleet/proxy_compute.hpp"
#include "fleet/shard_router.hpp"
#include "fleet/shared_store.hpp"
#include "sim/scheduler.hpp"

namespace parcel::fleet {

/// SoA view of the macro timeline's inputs. `client` and `weight` may be
/// empty: element i's id then defaults to base + i and its weight to 1.0.
/// `base` is the global index of element 0 — epoch subspans set it so a
/// client keeps one identity (for routing and WFQ) no matter how the
/// timeline was partitioned.
struct MacroColumns {
  std::span<const double> arrival_sec;
  std::span<const std::uint32_t> page_index;
  std::span<const int> client;
  std::span<const double> weight;
  std::size_t base = 0;
};

/// SoA macro outputs, indexed like the columns. The handoff columns are
/// zero except for sessions migrated off a crashed shard.
struct MacroOut {
  std::vector<std::uint8_t> shed;
  std::vector<double> max_wait_sec;
  std::vector<double> done_sec;
  /// Times this session was handed off to a surviving shard.
  std::vector<std::uint8_t> handoffs;
  /// Crash instant -> the session's proxy work re-completed (seconds).
  std::vector<double> recovery_sec;
  /// Service seconds re-executed for this session after the crash.
  std::vector<double> redo_sec;
  /// Bytes the tier moved a second time for this session (origin refetch
  /// plus L2 backplane transfer).
  std::vector<std::int64_t> redo_bytes;
  explicit MacroOut(std::size_t n)
      : shed(n, 0),
        max_wait_sec(n, 0.0),
        done_sec(n, 0.0),
        handoffs(n, 0),
        recovery_sec(n, 0.0),
        redo_sec(n, 0.0),
        redo_bytes(n, 0) {}
};

/// Store contents of a sharded fleet at an instant: one L1 per shard plus
/// the shared L2. The epoch-parallel streaming runner forks these at
/// epoch boundaries and checks them after (DESIGN.md §12 invariant).
struct ShardSnapshot {
  std::vector<SharedObjectStore> l1;
  SharedObjectStore l2;
};

/// One proxy node: §10's single-proxy model as a value the fleet owns N
/// of. The compute pool shares the fleet's scheduler timeline; blackout
/// windows (from the run's base fault plan) apply to every shard — the
/// tier shares the weather.
class ProxyShard {
 public:
  ProxyShard(int id, sim::Scheduler& sched, const ProxyComputeConfig& config,
             SharedObjectStore l1_store, const sim::FaultPlan* blackouts)
      : id_(id), compute(sched, config, blackouts), l1(std::move(l1_store)) {}

  [[nodiscard]] int id() const { return id_; }

 private:
  int id_ = 0;

 public:
  ProxyCompute compute;
  SharedObjectStore l1;
};

/// Aggregated fleet counters (exact integer/double sums — no sketches).
struct ShardedFleetStats {
  std::vector<SharedObjectStore::Stats> l1;  // per shard, index = shard id
  SharedObjectStore::Stats l2;
  /// Summed over shards; last_finish is the max.
  ProxyCompute::Stats compute;
  std::uint64_t crash_handoffs = 0;
  std::uint64_t crash_killed_tasks = 0;
  double redo_sec_total = 0.0;
  util::Bytes redo_bytes_total = 0;

  /// Aggregate L1 stats (plain sums over shards).
  [[nodiscard]] SharedObjectStore::Stats l1_total() const;
};

/// The sharded macro simulation: owns the shards, the router, and the L2;
/// schedules arrivals, admission, store tiering, and the crash/handoff/
/// restart events on the caller's scheduler. Usable for a whole fleet or
/// for one epoch (pass the epoch's starting snapshot).
class ShardedFleet {
 public:
  /// `config` must outlive *this (the blackout plan pointer is borrowed).
  /// `start` seeds the store tiers (epoch-parallel execution); null means
  /// every tier starts cold with the configured capacities.
  ShardedFleet(sim::Scheduler& sched, const FleetConfig& config,
               const ShardSnapshot* start = nullptr);

  /// Schedule all of `cols` (plus the config's crash/restart events, which
  /// are absolute fleet times) and drain the scheduler. Fills `out`, which
  /// must be sized to cols.arrival_sec.size().
  void run(const std::vector<const web::WebPage*>& corpus,
           const MacroColumns& cols, MacroOut& out);

  [[nodiscard]] ShardedFleetStats stats() const;
  [[nodiscard]] ShardSnapshot snapshot() const;
  [[nodiscard]] bool snapshot_equal(const ShardSnapshot& other) const;

  [[nodiscard]] int shards() const { return static_cast<int>(nodes_.size()); }

  /// The seeded crash victim for this config (pure function of
  /// shard_faults.seed and shards; no execution-order input).
  [[nodiscard]] static int crash_victim(const FleetConfig& config);

 private:
  void on_arrival(const std::vector<const web::WebPage*>& corpus,
                  const MacroColumns& cols, std::size_t i, MacroOut& out);
  void on_crash(const std::vector<const web::WebPage*>& corpus,
                const MacroColumns& cols, MacroOut& out);
  /// Request the tiers and submit the surviving work for client-slot `i`
  /// on shard `s`; when `redo` is set, accumulate handoff redo accounting
  /// into `out`.
  void submit_batch(std::size_t i, int s, const web::WebPage& page,
                    int client, double weight, MacroOut& out, bool redo);

  sim::Scheduler& sched_;
  const FleetConfig& config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<ProxyShard>> nodes_;
  SharedObjectStore l2_;
  bool l2_enabled_ = false;
  int victim_ = -1;
  double crash_sec_ = 0.0;
  bool crashed_ = false;

  // Per-client-slot macro state (sized by run()).
  std::vector<int> shard_of_;
  std::vector<int> outstanding_;

  std::uint64_t crash_handoffs_ = 0;
  std::uint64_t crash_killed_ = 0;
  double redo_sec_total_ = 0.0;
  util::Bytes redo_bytes_total_ = 0;
};

/// Build the cold starting snapshot for `config` (per-shard L1 capacity =
/// store_capacity, L2 capacity = l2_capacity).
[[nodiscard]] ShardSnapshot make_cold_snapshot(const FleetConfig& config);

/// Advance `snap` by the store-only effects of clients [begin, end) of
/// `cols`: route each client, request its page's objects against its
/// shard's L1 and (on miss, when sharded) the L2. This is the epoch-
/// parallel snapshot pre-pass — valid exactly when no shedding and no
/// crash can occur, i.e. whenever plan_epochs returned a parallel plan.
void replay_store_requests(const std::vector<const web::WebPage*>& corpus,
                           const ClientColumns& cols, std::size_t begin,
                           std::size_t end, const FleetConfig& config,
                           ShardSnapshot& snap);

}  // namespace parcel::fleet
