#include "fleet/shard.hpp"

#include <algorithm>
#include <stdexcept>

#include "web/object.hpp"
#include "web/page.hpp"

namespace parcel::fleet {

SharedObjectStore::Stats ShardedFleetStats::l1_total() const {
  SharedObjectStore::Stats t;
  for (const SharedObjectStore::Stats& s : l1) {
    t.hits += s.hits;
    t.misses += s.misses;
    t.evictions += s.evictions;
    t.bytes_saved += s.bytes_saved;
    t.bytes_stored += s.bytes_stored;
  }
  return t;
}

ShardedFleet::ShardedFleet(sim::Scheduler& sched, const FleetConfig& config,
                           const ShardSnapshot* start)
    : sched_(sched),
      config_(config),
      router_(config.shards, config.route_salt),
      l2_(start != nullptr ? start->l2.fork_contents()
                           : SharedObjectStore(config.l2_capacity)),
      l2_enabled_(config.shards > 1) {
  if (start != nullptr &&
      start->l1.size() != static_cast<std::size_t>(config.shards)) {
    throw std::invalid_argument(
        "ShardedFleet: starting snapshot has " +
        std::to_string(start->l1.size()) + " L1 tiers for " +
        std::to_string(config.shards) + " shards");
  }
  const sim::FaultPlan* blackouts = config.base.testbed.faults.enabled()
                                        ? &config.base.testbed.faults
                                        : nullptr;
  nodes_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    SharedObjectStore l1 =
        start != nullptr ? start->l1[static_cast<std::size_t>(s)].fork_contents()
                         : SharedObjectStore(config.store_capacity);
    // ProxyCompute holds the scheduler by reference, so nodes live behind
    // unique_ptr (the vector must never relocate a pool).
    nodes_.push_back(std::make_unique<ProxyShard>(s, sched, config.compute,
                                                  std::move(l1), blackouts));
  }
  if (config.shard_faults.proxy_crash_at.has_value()) {
    victim_ = crash_victim(config);
    crash_sec_ = config.shard_faults.proxy_crash_at->sec();
  }
}

int ShardedFleet::crash_victim(const FleetConfig& config) {
  // Pure function of (fault seed, shard count): the victim is decided
  // before the run starts, never by run state, so every --jobs value and
  // rerun kills the same shard.
  return static_cast<int>(ShardRouter::mix(config.shard_faults.seed ^
                                           0x5eedULL) %
                          static_cast<std::uint64_t>(config.shards));
}

void ShardedFleet::run(const std::vector<const web::WebPage*>& corpus,
                       const MacroColumns& cols, MacroOut& out) {
  const std::size_t n = cols.arrival_sec.size();
  shard_of_.assign(n, -1);
  outstanding_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    sched_.schedule_at(util::TimePoint::at_seconds(cols.arrival_sec[i]),
                       [this, &corpus, &cols, i, &out] {
                         on_arrival(corpus, cols, i, out);
                       });
  }
  // Fault events are scheduled after every arrival, so an arrival at the
  // exact crash instant still routes to the full fleet (FIFO tie-break) —
  // and is then immediately migrated off the corpse. One fixed rule.
  if (victim_ >= 0) {
    sched_.schedule_at(*config_.shard_faults.proxy_crash_at,
                       [this, &corpus, &cols, &out] {
                         on_crash(corpus, cols, out);
                       });
    if (config_.shard_faults.proxy_restart_after.has_value()) {
      sched_.schedule_at(*config_.shard_faults.proxy_crash_at +
                             *config_.shard_faults.proxy_restart_after,
                         [this] {
                           // Rejoin with a cold L1: clear() already ran at
                           // crash time and nothing repopulates it while
                           // the shard is out of the routing front.
                           nodes_[static_cast<std::size_t>(victim_)]
                               ->compute.restart();
                           router_.set_alive(victim_, true);
                         });
    }
  }
  sched_.run();
  if (crashed_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (out.handoffs[i] != 0 && out.shed[i] == 0) {
        out.recovery_sec[i] = std::max(0.0, out.done_sec[i] - crash_sec_);
      }
    }
  }
}

void ShardedFleet::on_arrival(const std::vector<const web::WebPage*>& corpus,
                              const MacroColumns& cols, std::size_t i,
                              MacroOut& out) {
  const web::WebPage& page = *corpus[cols.page_index[i]];
  int client = cols.client.empty() ? static_cast<int>(cols.base + i)
                                   : cols.client[i];
  double weight = cols.weight.empty() ? 1.0 : cols.weight[i];
  int s = router_.route(ShardRouter::client_key(client));
  ProxyShard& node = *nodes_[static_cast<std::size_t>(s)];

  // Admission control: size the whole batch against both tiers first (a
  // client is either served or refused, never half-queued). An L1 hit is
  // free; an L2 hit costs one backplane transfer; a full miss costs the
  // origin fetch plus, for text bodies, a parse/scan. Bundle assembly is
  // always the client's own work.
  std::size_t batch = 1;
  util::Duration batch_cost =
      node.compute.cost_of(TaskKind::kBundle, page.total_bytes());
  for (const web::WebObject* object : page.objects()) {
    if (node.l1.contains(*object)) continue;
    if (l2_enabled_ && l2_.contains(*object)) {
      batch += 1;
      batch_cost += node.compute.cost_of(TaskKind::kTransfer, object->size);
      continue;
    }
    batch += web::is_parseable(object->type) ? 2u : 1u;
    batch_cost += node.compute.cost_of(TaskKind::kFetch, object->size);
    if (web::is_parseable(object->type)) {
      batch_cost += node.compute.cost_of(TaskKind::kParse, object->size);
    }
  }
  if (!node.compute.can_accept(batch, batch_cost)) {
    out.shed[i] = 1;
    return;
  }
  shard_of_[i] = s;
  submit_batch(i, s, page, client, weight, out, /*redo=*/false);
}

void ShardedFleet::submit_batch(std::size_t i, int s, const web::WebPage& page,
                                int client, double weight, MacroOut& out,
                                bool redo) {
  ProxyShard& node = *nodes_[static_cast<std::size_t>(s)];
  auto on_done = [this, &out, i](util::TimePoint finished,
                                 util::Duration waited) {
    out.max_wait_sec[i] = std::max(out.max_wait_sec[i], waited.sec());
    out.done_sec[i] = std::max(out.done_sec[i], finished.sec());
    --outstanding_[i];
  };
  auto submit = [&](TaskKind kind, util::Bytes bytes) {
    if (redo) {
      double sec = node.compute.cost_of(kind, bytes).sec();
      out.redo_sec[i] += sec;
      redo_sec_total_ += sec;
      // "Bytes moved twice": origin refetches and backplane transfers both
      // re-move payload; re-bundling and re-parsing are CPU, not bytes.
      if (kind == TaskKind::kFetch || kind == TaskKind::kTransfer) {
        out.redo_bytes[i] += static_cast<std::int64_t>(bytes);
        redo_bytes_total_ += bytes;
      }
    }
    ++outstanding_[i];
    node.compute.submit(client, weight, kind, bytes, on_done);
  };
  for (const web::WebObject* object : page.objects()) {
    SharedObjectStore::Outcome o1 = node.l1.request(*object);
    if (o1.hit) continue;  // this shard already holds the artifact
    if (l2_enabled_) {
      SharedObjectStore::Outcome o2 = l2_.request(*object);
      if (o2.hit) {
        // A sibling already published it: pull over the backplane instead
        // of re-fetching (and re-parsing) from origin.
        submit(TaskKind::kTransfer, object->size);
        continue;
      }
    }
    submit(TaskKind::kFetch, object->size);
    if (web::is_parseable(object->type)) {
      submit(TaskKind::kParse, object->size);
    }
  }
  submit(TaskKind::kBundle, page.total_bytes());
}

void ShardedFleet::on_crash(const std::vector<const web::WebPage*>& corpus,
                            const MacroColumns& cols, MacroOut& out) {
  crashed_ = true;
  ProxyShard& victim = *nodes_[static_cast<std::size_t>(victim_)];
  crash_killed_ += victim.compute.crash();
  victim.l1.clear();  // the process died; its cache died with it
  router_.set_alive(victim_, false);
  // Migrate every session the victim had not finished, in ascending index
  // order (a fixed rule — the order sessions were admitted). outstanding_
  // counts completions the generation bump just voided, so > 0 means the
  // session's proxy work is not done. Migration resubmits the session's
  // whole batch on the rendezvous front's new choice and bypasses
  // admission: the tier owes these sessions service (they were admitted
  // once); survivors absorb the redo load.
  const std::size_t n = shard_of_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (shard_of_[i] != victim_ || outstanding_[i] <= 0) continue;
    outstanding_[i] = 0;  // every pending completion was voided
    const web::WebPage& page = *corpus[cols.page_index[i]];
    int client = cols.client.empty() ? static_cast<int>(cols.base + i)
                                     : cols.client[i];
    double weight = cols.weight.empty() ? 1.0 : cols.weight[i];
    int target = router_.route(ShardRouter::client_key(client));
    shard_of_[i] = target;
    ++out.handoffs[i];
    ++crash_handoffs_;
    submit_batch(i, target, page, client, weight, out, /*redo=*/true);
  }
}

ShardedFleetStats ShardedFleet::stats() const {
  ShardedFleetStats st;
  st.l1.reserve(nodes_.size());
  for (const std::unique_ptr<ProxyShard>& node : nodes_) {
    st.l1.push_back(node->l1.stats());
    const ProxyCompute::Stats& c = node->compute.stats();
    st.compute.completed += c.completed;
    st.compute.fetch_busy_sec += c.fetch_busy_sec;
    st.compute.parse_busy_sec += c.parse_busy_sec;
    st.compute.bundle_busy_sec += c.bundle_busy_sec;
    st.compute.transfer_busy_sec += c.transfer_busy_sec;
    st.compute.crash_killed += c.crash_killed;
    st.compute.last_finish = std::max(st.compute.last_finish, c.last_finish);
  }
  st.l2 = l2_.stats();
  st.crash_handoffs = crash_handoffs_;
  st.crash_killed_tasks = crash_killed_;
  st.redo_sec_total = redo_sec_total_;
  st.redo_bytes_total = redo_bytes_total_;
  return st;
}

ShardSnapshot ShardedFleet::snapshot() const {
  ShardSnapshot snap;
  snap.l1.reserve(nodes_.size());
  for (const std::unique_ptr<ProxyShard>& node : nodes_) {
    snap.l1.push_back(node->l1.fork_contents());
  }
  snap.l2 = l2_.fork_contents();
  return snap;
}

bool ShardedFleet::snapshot_equal(const ShardSnapshot& other) const {
  if (other.l1.size() != nodes_.size()) return false;
  for (std::size_t s = 0; s < nodes_.size(); ++s) {
    if (!nodes_[s]->l1.contents_equal(other.l1[s])) return false;
  }
  return l2_.contents_equal(other.l2);
}

ShardSnapshot make_cold_snapshot(const FleetConfig& config) {
  ShardSnapshot snap;
  snap.l1.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    snap.l1.emplace_back(config.store_capacity);
  }
  snap.l2 = SharedObjectStore(config.l2_capacity);
  return snap;
}

void replay_store_requests(const std::vector<const web::WebPage*>& corpus,
                           const ClientColumns& cols, std::size_t begin,
                           std::size_t end, const FleetConfig& config,
                           ShardSnapshot& snap) {
  // Must mirror submit_batch's request order exactly: arrivals fire in
  // index order (sorted times, FIFO tie-break), each requesting L1 then —
  // only on a miss, only when sharded — the L2. Valid exactly when no
  // shedding and no crash can occur (plan_epochs degrades otherwise).
  ShardRouter router(config.shards, config.route_salt);
  const bool l2_on = config.shards > 1;
  for (std::size_t i = begin; i < end; ++i) {
    int s = router.route(ShardRouter::client_key(static_cast<int>(i)));
    SharedObjectStore& l1 = snap.l1[static_cast<std::size_t>(s)];
    for (const web::WebObject* object : corpus[cols.page_index[i]]->objects()) {
      if (l1.request(*object).hit) continue;
      if (l2_on) snap.l2.request(*object);
    }
  }
}

}  // namespace parcel::fleet
