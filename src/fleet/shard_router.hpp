// ShardRouter: deterministic rendezvous-hash front for a sharded proxy
// fleet (ISSUE 8, tentpole; ROADMAP item 1).
//
// The deployment story behind PARCEL is an ISP-operated proxy tier, and a
// tier is N proxies behind a routing front, not one box. The router maps
// a client/origin key to one of N shards with highest-random-weight
// (rendezvous) hashing: every (key, shard) pair gets a 64-bit score from
// a seeded integer mix, and the key routes to the live shard with the
// maximum score. Two properties make this the right front for a
// deterministic fleet simulation:
//
//  * Minimal disruption — when a shard dies, only the keys whose maximum
//    score sat on the victim move (to their second-best shard); every
//    surviving shard keeps exactly the keys it had. Crash-driven session
//    handoff therefore remaps ~K/N sessions and nothing else, which the
//    property tests pin exactly.
//
//  * Pure determinism — scores are a pure function of (salt, key, shard
//    index): no wall clock, no global state, no dependence on the order
//    routing questions are asked. Routing is bitwise identical across
//    --jobs values, reruns, and hosts.
//
// Liveness is explicit state (`set_alive`), flipped only by seeded fault
// events on the fleet timeline, so the full routing history of a run is a
// pure function of (salt, FaultPlan).
#pragma once

#include <cstdint>
#include <vector>

namespace parcel::fleet {

class ShardRouter {
 public:
  /// `shards` >= 1; throws std::invalid_argument otherwise. All shards
  /// start alive. `salt` seeds the score stream (same salt + same key =>
  /// same score on every host).
  explicit ShardRouter(int shards, std::uint64_t salt = 0x5ca1ab1e2014ULL);

  [[nodiscard]] int shards() const { return static_cast<int>(alive_.size()); }
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] bool alive(int shard) const;

  /// Flip a shard's liveness. Dead shards never win route(); reviving a
  /// shard restores exactly its original key set (rendezvous property).
  void set_alive(int shard, bool alive);

  /// Highest-scoring live shard for `key`. Throws std::logic_error when
  /// every shard is dead (the fleet cannot route anything).
  [[nodiscard]] int route(std::uint64_t key) const;

  /// Routing key for a fleet client id (the per-session identity the
  /// front hashes; distinct from any RNG stream).
  [[nodiscard]] static std::uint64_t client_key(int client);

  /// SplitMix64 finalizer: the score mix. Public so victim selection and
  /// tests can share the exact same stream.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x);

 private:
  std::uint64_t salt_ = 0;
  std::vector<std::uint8_t> alive_;
};

}  // namespace parcel::fleet
