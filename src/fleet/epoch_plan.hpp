// Epoch partition of the fleet macro timeline (ISSUE 7, tentpole b;
// DESIGN.md §12).
//
// Fleet sessions interact through exactly two shared resources: the
// SharedObjectStore (session N warms session N+1) and the ProxyCompute
// queue (waiting behind earlier work). If every task submitted before
// time T has *finished* strictly before T, and the store's contents at T
// are known, then the timeline after T is independent of how the
// timeline before T was executed — so arrivals can be partitioned at such
// boundaries into epochs and the epochs simulated concurrently.
//
// plan_epochs finds candidate boundaries with a conservative bound that
// never under-estimates queue drain time: walk arrivals in order
// accumulating `busy = max(busy, arrival) + cold_batch_cost(page)`, i.e.
// a single worker serving every client's *all-miss* batch serially.
// Work-conserving pools drain no slower with more workers, store hits
// only remove work, and admission shedding is excluded below — so the
// true last completion time never exceeds `busy`, and a boundary is
// placed before client i whenever `arrival_i > busy` (and the epoch has
// reached its minimum size). The bound is *checked, not assumed*: after
// simulation, fleet_runner verifies each epoch's actual last task finish
// precedes the next epoch's first arrival and that each epoch's ending
// store contents equal the next epoch's starting snapshot, throwing
// std::logic_error on any violation.
//
// Degradation to one serial epoch (parallel = false) whenever sessions
// *can* interact in ways the bound does not model:
//  * admission bounds (max_queue / max_backlog): shedding depends on live
//    queue state, and a shed client skips its store inserts, so the store
//    evolution is no longer a pure function of the spec sequence;
//  * blackout windows: service deferral couples the queue to absolute
//    wall positions shared across epochs;
//  * a shard crash (FleetConfig::shard_faults): handoff re-routes live
//    sessions at one absolute instant, and the victim's L1 loss changes
//    every later store outcome — one serial timeline, with the reason
//    recorded in FleetMetrics::epoch_degrade_reason.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/fleet_runner.hpp"

namespace parcel::fleet {

struct EpochPlan {
  struct Epoch {
    std::size_t begin = 0;  // first client index (inclusive)
    std::size_t end = 0;    // one past the last client index
  };
  /// Consecutive, in arrival order, covering [0, K).
  std::vector<Epoch> epochs;
  /// True when the epochs are provably non-interacting and may run
  /// concurrently; false means one serial epoch.
  bool parallel = false;
  /// Why the plan degraded to a single serial epoch (empty if parallel).
  std::string degrade_reason;
};

/// Partition `clients` (arrival order) into provably non-interacting
/// epochs for `config`. The minimum epoch size is
/// max(config.epoch_min_sessions, K/1024), which caps the epoch count —
/// and with it the merge state — at ~1024 regardless of K.
[[nodiscard]] EpochPlan plan_epochs(
    const std::vector<const web::WebPage*>& corpus,
    const ClientColumns& clients, const FleetConfig& config);

}  // namespace parcel::fleet
