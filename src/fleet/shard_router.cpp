#include "fleet/shard_router.hpp"

#include <stdexcept>
#include <string>

namespace parcel::fleet {

ShardRouter::ShardRouter(int shards, std::uint64_t salt) : salt_(salt) {
  if (shards < 1) {
    throw std::invalid_argument("ShardRouter: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  alive_.assign(static_cast<std::size_t>(shards), 1);
}

int ShardRouter::alive_count() const {
  int n = 0;
  for (std::uint8_t a : alive_) n += a != 0 ? 1 : 0;
  return n;
}

bool ShardRouter::alive(int shard) const {
  if (shard < 0 || shard >= shards()) {
    throw std::invalid_argument("ShardRouter: shard index out of range: " +
                                std::to_string(shard));
  }
  return alive_[static_cast<std::size_t>(shard)] != 0;
}

void ShardRouter::set_alive(int shard, bool alive) {
  if (shard < 0 || shard >= shards()) {
    throw std::invalid_argument("ShardRouter: shard index out of range: " +
                                std::to_string(shard));
  }
  alive_[static_cast<std::size_t>(shard)] =
      static_cast<std::uint8_t>(alive ? 1 : 0);
}

std::uint64_t ShardRouter::mix(std::uint64_t x) {
  // SplitMix64 finalizer (Steele et al.): full-avalanche, branch-free,
  // identical on every host — the entire basis of the routing function.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t ShardRouter::client_key(int client) {
  return mix(0xc11e47ULL ^ static_cast<std::uint64_t>(
                               static_cast<std::int64_t>(client)));
}

int ShardRouter::route(std::uint64_t key) const {
  int best = -1;
  std::uint64_t best_score = 0;
  for (std::size_t s = 0; s < alive_.size(); ++s) {
    if (alive_[s] == 0) continue;
    std::uint64_t score = mix(key ^ mix(salt_ + s));
    // Strict > keeps the lowest index on the (astronomically unlikely)
    // score tie, a fixed deterministic rule.
    if (best < 0 || score > best_score) {
      best = static_cast<int>(s);
      best_score = score;
    }
  }
  if (best < 0) {
    throw std::logic_error("ShardRouter: no live shard to route to");
  }
  return best;
}

}  // namespace parcel::fleet
