#include "fleet/epoch_plan.hpp"

#include <algorithm>
#include <limits>

namespace parcel::fleet {

namespace {

EpochPlan single_epoch(std::size_t n, std::string reason) {
  EpochPlan plan;
  plan.epochs.push_back(EpochPlan::Epoch{0, n});
  plan.parallel = false;
  plan.degrade_reason = std::move(reason);
  return plan;
}

}  // namespace

EpochPlan plan_epochs(const std::vector<const web::WebPage*>& corpus,
                      const ClientColumns& clients,
                      const FleetConfig& config) {
  const std::size_t n = clients.size();
  if (n == 0) {
    EpochPlan plan;
    plan.parallel = true;
    return plan;
  }
  if (config.compute.max_queue != 0 ||
      !config.compute.max_backlog.is_zero()) {
    return single_epoch(n,
                        "admission bounds: shedding depends on live queue "
                        "state, so the store is not a pure function of the "
                        "spec sequence");
  }
  const sim::FaultPlan& faults = config.base.testbed.faults;
  if (faults.enabled() && !faults.blackouts.empty()) {
    return single_epoch(n,
                        "blackout windows couple proxy service to absolute "
                        "time across any boundary");
  }
  if (config.shard_faults.proxy_crash_at.has_value()) {
    return single_epoch(n,
                        "shard crash: handoff re-routing couples every "
                        "session to the crash instant, so the timeline "
                        "cannot be partitioned");
  }

  // Conservative per-page cold (all-miss) batch cost: every object is a
  // fetch (+ parse for text bodies) plus the client's bundle assembly.
  // In a sharded fleet an object may instead cost one L2 transfer, so the
  // per-object bound takes the dearer of the two paths; the single-worker
  // drain walk below then still dominates every shard (each shard's work
  // is a subsequence of the arrivals, served by at least one worker).
  std::vector<double> cold_cost_sec(corpus.size(), 0.0);
  for (std::size_t p = 0; p < corpus.size(); ++p) {
    const web::WebPage& page = *corpus[p];
    util::Duration cost =
        config.compute.costs.service_time(TaskKind::kBundle,
                                          page.total_bytes());
    for (const web::WebObject* object : page.objects()) {
      util::Duration origin = config.compute.costs.service_time(
          TaskKind::kFetch, object->size);
      if (web::is_parseable(object->type)) {
        origin += config.compute.costs.service_time(TaskKind::kParse,
                                                    object->size);
      }
      if (config.shards > 1) {
        origin = std::max(origin, config.compute.costs.service_time(
                                      TaskKind::kTransfer, object->size));
      }
      cost += origin;
    }
    cold_cost_sec[p] = cost.sec();
  }

  // Bound the epoch count (~1024) so merge state stays O(1) in K.
  std::size_t min_run =
      std::max<std::size_t>(static_cast<std::size_t>(std::max(
                                config.epoch_min_sessions, 1)),
                            n / 1024);

  EpochPlan plan;
  plan.parallel = true;
  std::size_t begin = 0;
  double busy = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    double arrival = clients.arrival_sec[i];
    // Strictly later than the drain bound: a completion scheduled exactly
    // at an arrival would still lose the FIFO tie-break to the
    // pre-scheduled arrival event, i.e. the queue would not yet be idle.
    if (i > begin && i - begin >= min_run && arrival > busy) {
      plan.epochs.push_back(EpochPlan::Epoch{begin, i});
      begin = i;
    }
    busy = std::max(busy, arrival) + cold_cost_sec[clients.page_index[i]];
  }
  plan.epochs.push_back(EpochPlan::Epoch{begin, n});
  return plan;
}

}  // namespace parcel::fleet
