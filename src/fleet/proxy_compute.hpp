// ProxyCompute: a deterministic model of the proxy's CPU as a shared,
// contended resource (ISSUE 5, tentpole b).
//
// The per-session simulations model proxy processing at well-provisioned
// single-session speed; what they cannot see is *contention* — Zambre et
// al.'s parallel browser-engine study shows queueing, not single-session
// latency, dominates once many clients share one engine host. ProxyCompute
// supplies that axis: a fixed pool of workers on a sim::Scheduler
// timeline, per-task service costs for the proxy's three work kinds
// (origin fetch, parse/scan, bundle assembly), FIFO or weighted-fair
// per-client dispatch, and a bounded queue for admission control.
//
// Only *waiting* (queueing delay plus outage deferral) is exported to the
// fleet timeline: the service time itself is already inside the
// per-session micro-simulation, so adding it again would double-count
// (DESIGN.md §10). Service costs exist to occupy workers and create the
// contention that produces the waits.
//
// Determinism: dispatch order is a pure function of the submission
// sequence — FIFO picks the lowest sequence number; weighted-fair picks
// the lowest virtual finish time with the sequence number as tie-break.
// Blackout windows from a sim::FaultPlan (the proxy shares the weather
// with the rest of the run) defer service starts to the window's end.
//
// Lock discipline (DESIGN.md §14.3): none — the pool model mutates only
// on the single macro-simulation timeline. Future mutable state shared
// with worker threads must use util::Mutex + PARCEL_GUARDED_BY
// (src/util/thread_annotations.hpp); parcel-lint enforces the annotation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace parcel::fleet {

using util::Bytes;
using util::Duration;
using util::TimePoint;

/// kTransfer is the sharded fleet's L2 tier pull (ISSUE 8): a sibling
/// shard already holds the artifact, so the proxy moves bytes over the
/// backplane instead of re-fetching (and re-parsing) from origin.
enum class TaskKind : std::uint8_t { kFetch, kParse, kBundle, kTransfer };
[[nodiscard]] std::string_view to_string(TaskKind k);

/// Service time = base(kind) + bytes / rate(kind). Rates of 0 mean the
/// byte-proportional term is skipped (not a division by zero).
struct TaskCosts {
  Duration fetch_base = Duration::millis(2);
  double fetch_bytes_per_sec = 200e6 / 8.0;  // egress-limited
  Duration parse_base = Duration::millis(1);
  double parse_bytes_per_sec = 50e6;  // server-class scan rate
  Duration bundle_base = Duration::millis(1);
  double bundle_bytes_per_sec = 400e6;  // memcpy + MHTML framing
  /// L2 pull: cheaper than origin fetch+parse, dearer than an L1 hit
  /// (which is free). Defaults to ~4 ms/MiB of backplane against the
  /// 40 ms/MiB origin egress above; bench --l2-cost retunes it.
  Duration transfer_base = Duration::micros(200);
  double transfer_bytes_per_sec = 256e6;  // intra-tier backplane

  [[nodiscard]] Duration service_time(TaskKind kind, Bytes bytes) const;

  /// Zero-cost model: every task completes the instant it is dispatched.
  /// FleetRunner with idle costs reproduces the single-client harness
  /// byte-for-byte (the K=1 regression pin).
  static TaskCosts idle();
};

enum class QueuePolicy : std::uint8_t {
  kFifo,          // strict submission order
  kWeightedFair,  // per-client WFQ on virtual finish times
};

struct ProxyComputeConfig {
  /// Concurrent service slots (the proxy's cores). Must be >= 1.
  int workers = 4;
  QueuePolicy policy = QueuePolicy::kFifo;
  /// Admission bounds — a client's whole task batch is refused (503-style
  /// shed, FleetRunner) when either would be exceeded; 0 / zero disables.
  /// max_queue bounds *tasks* waiting (not in service); max_backlog
  /// bounds the *service seconds* queued — the proxy's estimate of how
  /// far behind it is, which is what a real load shedder keys on.
  std::size_t max_queue = 0;
  Duration max_backlog = Duration::zero();
  TaskCosts costs;

  /// Uncontended model for regression pins: zero costs, so no run is ever
  /// delayed and no queue ever forms.
  static ProxyComputeConfig idle();

  /// Throws std::invalid_argument on nonsense (workers < 1, negative
  /// costs, non-positive rates when a base cost expects them).
  void validate() const;
};

class ProxyCompute {
 public:
  /// `faults` may be null; only its blackout windows are consulted (the
  /// proxy host shares the run's weather). Borrowed, must outlive *this.
  ProxyCompute(sim::Scheduler& sched, ProxyComputeConfig config,
               const sim::FaultPlan* faults = nullptr);

  /// Completion callback: fires on the scheduler timeline when the task
  /// finishes service. `waited` is service_start - submit time (queueing
  /// delay including blackout deferral).
  using Done = std::function<void(TimePoint finished, Duration waited)>;

  /// Would a batch of `tasks` more tasks costing `batch_cost` service
  /// seconds still respect the admission bounds? (FleetRunner asks once
  /// per client, before submitting any.)
  [[nodiscard]] bool can_accept(std::size_t tasks,
                                Duration batch_cost = Duration::zero()) const;

  /// Service cost this pool would charge (for admission estimates).
  [[nodiscard]] Duration cost_of(TaskKind kind, Bytes bytes) const {
    return config_.costs.service_time(kind, bytes);
  }

  /// Enqueue one task for `client`. `weight` > 0 matters only under
  /// weighted-fair dispatch (higher weight = more service share).
  void submit(int client, double weight, TaskKind kind, Bytes bytes,
              Done done);

  /// Kill the pool at the current scheduler instant (a shard crash,
  /// ISSUE 8): every queued task is dropped and every in-service task is
  /// voided — its completion event still fires but contributes nothing
  /// (no stats, no Done callback; the work died with the process).
  /// Dispatch stays frozen and can_accept() refuses everything until
  /// restart(). Returns the number of tasks killed (queued + in-flight),
  /// also accumulated in Stats::crash_killed.
  std::size_t crash();

  /// Rejoin after crash(): all worker slots come back idle and dispatch
  /// resumes. Tasks submitted while dead were queued and now run.
  void restart();

  [[nodiscard]] bool dead() const { return dead_; }

  struct Stats {
    std::uint64_t completed = 0;
    /// Batches refused by can_accept are counted by the caller; this
    /// tracks tasks that went through service.
    double fetch_busy_sec = 0.0;
    double parse_busy_sec = 0.0;
    double bundle_busy_sec = 0.0;
    double transfer_busy_sec = 0.0;
    /// Tasks destroyed by crash() — queued drops plus voided in-flight.
    std::uint64_t crash_killed = 0;
    /// Completion time of the last task to finish service (origin when
    /// nothing completed). Epoch-parallel fleet execution checks this
    /// against the next epoch's first arrival: the pool must have gone
    /// idle strictly before it (DESIGN.md §12).
    TimePoint last_finish;
    [[nodiscard]] double busy_sec() const {
      return fetch_busy_sec + parse_busy_sec + bundle_busy_sec +
             transfer_busy_sec;
    }
    /// The cache-amplification metric: origin-facing work actually
    /// executed (fetch + parse), excluding per-session bundling.
    [[nodiscard]] double fetch_parse_sec() const {
      return fetch_busy_sec + parse_busy_sec;
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Every completed task's queueing delay, in submission order.
  [[nodiscard]] const util::Summary& waits() const { return waits_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Service seconds currently waiting (not yet in service).
  [[nodiscard]] Duration backlog() const { return backlog_; }
  [[nodiscard]] int idle_workers() const { return idle_workers_; }

 private:
  struct Task {
    std::uint64_t seq = 0;
    int client = 0;
    TaskKind kind = TaskKind::kFetch;
    Duration cost = Duration::zero();
    TimePoint submitted;
    double virtual_finish = 0.0;  // WFQ ordering key
    Done done;
  };

  void dispatch();
  [[nodiscard]] std::size_t pick_next() const;
  [[nodiscard]] TimePoint defer_past_blackouts(TimePoint start) const;

  sim::Scheduler& sched_;
  ProxyComputeConfig config_;
  const sim::FaultPlan* faults_ = nullptr;

  std::uint64_t next_seq_ = 0;
  int idle_workers_ = 0;
  /// Crash state: while dead_, nothing dispatches. generation_ bumps on
  /// every crash; completion events carry the generation they started
  /// under and void themselves when it no longer matches.
  bool dead_ = false;
  std::uint64_t generation_ = 0;
  /// Waiting tasks (not in service). Small fleets keep this short; the
  /// linear WFQ scan is deterministic and cheap at model scale.
  std::vector<Task> queue_;
  Duration backlog_ = Duration::zero();
  /// Per-client WFQ virtual finish times, grown on demand.
  std::vector<double> client_vfinish_;
  Stats stats_;
  util::Summary waits_;
};

}  // namespace parcel::fleet
