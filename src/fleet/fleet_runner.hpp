// FleetRunner: many concurrent client sessions against one shared proxy,
// in one deterministic simulation (ISSUE 5, tentpole c).
//
// Two composed layers, both bit-reproducible:
//
//  * The fleet macro-simulation — a single sim::Scheduler timeline where K
//    clients arrive under a seeded arrival process over the page corpus.
//    Each admitted arrival consults the fleet::SharedObjectStore (session
//    N warms session N+1), submits the resulting fetch/parse/bundle tasks
//    to fleet::ProxyCompute, and accrues queueing delay; a client whose
//    task batch would overflow the bounded queue is shed 503-style.
//
//  * The per-session micro-simulations — one core::ExperimentRunner run
//    per admitted client (own Testbed, own seeds), fanned out across
//    core::ParallelRunner workers. Results land in per-client slots, so
//    every aggregate below is bitwise identical for any --jobs value.
//
// The macro layer depends only on the corpus and the specs (not on
// micro-run outputs), and the micro layer only on the specs, so the two
// compose without feedback and the whole fleet run is a pure function of
// (corpus, FleetConfig). A client's fleet-adjusted OLT/TLT is its
// session-level value plus its queueing delay — service time is already
// inside the session simulation and is deliberately not added twice
// (DESIGN.md §10).
//
// ISSUE 7 adds a streaming mode for million-session fleets: per-session
// results are folded into core::StreamingStats sketches the moment each
// micro-simulation completes (never stored), and the macro timeline is
// partitioned into provably non-interacting epochs (epoch_plan.hpp) that
// run concurrently on ParallelRunner — with fleet metrics still bitwise
// identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/streaming_stats.hpp"
#include "fleet/proxy_compute.hpp"
#include "fleet/shared_store.hpp"
#include "web/page.hpp"

namespace parcel::fleet {

/// One client of the fleet, fully described by value. Normally derived by
/// derive_clients(); the low-level overload of run_fleet accepts explicit
/// specs so regression tests can mirror the single-client harness's exact
/// seed derivation.
struct ClientSpec {
  int client = 0;
  std::size_t page_index = 0;
  core::Scheme scheme = core::Scheme::kParcelInd;
  util::TimePoint arrival;
  /// Weighted-fair share under QueuePolicy::kWeightedFair.
  double weight = 1.0;
  core::RunConfig config;
};

struct FleetConfig {
  /// Number of concurrent client sessions (K).
  int clients = 8;
  core::Scheme scheme = core::Scheme::kParcelInd;
  /// Seeded Poisson arrivals: exponential inter-arrival times with this
  /// mean, cumulative from t=0.
  std::uint64_t arrival_seed = 2014;
  util::Duration mean_interarrival = util::Duration::millis(200);
  ProxyComputeConfig compute;
  /// Shared-store capacity (0 = unbounded).
  util::Bytes store_capacity = 0;
  /// Per-client base run configuration; per-client seeds are derived from
  /// base.seed and the client index. base.testbed.faults composes: the
  /// plan reaches both the per-session testbeds and the proxy compute
  /// model's blackout windows. Disabled (the default) keeps every
  /// per-session result byte-identical to the single-client harness.
  core::RunConfig base;
  /// Micro-simulation fan-out width (core::ParallelRunner semantics:
  /// 1 = inline, <= 0 = hardware concurrency). Any value produces
  /// bitwise-identical fleet metrics.
  int jobs = 1;

  /// Streaming aggregation (ISSUE 7): fold every admitted session into
  /// sketches and running sums as it completes instead of materializing
  /// per-client results — FleetMetrics.clients stays empty, memory stays
  /// bounded in K, and the macro timeline runs epoch-parallel whenever
  /// the config is provably interaction-free (epoch_plan.hpp). The
  /// percentile fields are then sketch-backed with the documented
  /// LogHistogram relative-error bound; integer counters and store/
  /// compute stats remain exact.
  bool streaming = false;
  /// Minimum sessions per epoch in streaming mode (the planner also
  /// enforces >= K/1024 so epoch-merge state is O(1) in K).
  int epoch_min_sessions = 512;
  /// Bin geometry for the streaming sketches.
  core::LogHistogram::Layout sketch;

  /// Throws std::invalid_argument on nonsense (clients < 1, negative
  /// inter-arrival, invalid compute config, malformed fault plan).
  void validate() const;
};

/// SoA columns for the fleet's per-client bookkeeping (ISSUE 7
/// satellite): the macro epoch loop walks parallel arrays instead of
/// ClientSpec records — 36 bytes per client instead of a full embedded
/// RunConfig, and each column scans linearly. Derived fleets are uniform
/// in scheme/weight (config.scheme, weight 1.0), so only the per-client
/// varying fields get columns; index k is the client id.
struct ClientColumns {
  std::vector<double> arrival_sec;
  std::vector<std::uint32_t> page_index;
  std::vector<std::uint64_t> seed;       // per-session RunConfig seed
  std::vector<std::uint64_t> fade_seed;  // per-session fade stream seed
  [[nodiscard]] std::size_t size() const { return arrival_sec.size(); }
};

/// Column-form equivalent of derive_clients: identical arrival process
/// and seed derivation, ~30x smaller per client.
[[nodiscard]] ClientColumns derive_client_columns(const FleetConfig& config,
                                                  std::size_t corpus_pages);

struct FleetClientResult {
  int client = 0;
  std::size_t page_index = 0;
  util::TimePoint arrival;
  bool shed = false;  // refused admission; no session was run
  /// Worst queueing delay over the client's proxy tasks (zero when shed).
  util::Duration queue_wait = util::Duration::zero();
  /// When the proxy finished this client's last task (macro timeline).
  util::TimePoint proxy_done;
  /// Fleet-adjusted load metrics: session result + queue_wait.
  util::Duration olt = util::Duration::zero();
  util::Duration tlt = util::Duration::zero();
  /// The per-session micro-simulation result (default-constructed when
  /// shed).
  core::RunResult session;
};

struct FleetMetrics {
  std::vector<FleetClientResult> clients;  // indexed by client id
  int admitted = 0;
  int shed = 0;
  [[nodiscard]] double shed_rate() const {
    int total = admitted + shed;
    return total == 0 ? 0.0
                      : static_cast<double>(shed) / static_cast<double>(total);
  }

  /// Distributions over admitted clients (fleet-adjusted OLT, queueing
  /// delay), in seconds.
  double olt_p50 = 0.0, olt_p95 = 0.0, olt_p99 = 0.0;
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;

  /// Aggregate proxy work actually executed, and the cache-amplification
  /// headline: origin-facing (fetch+parse) seconds per admitted load.
  double proxy_busy_sec = 0.0;
  double fetch_parse_sec = 0.0;
  [[nodiscard]] double fetch_parse_sec_per_load() const {
    return admitted == 0 ? 0.0 : fetch_parse_sec / admitted;
  }

  /// Radio energy across admitted clients (the fleet's device-side bill).
  double energy_j_total = 0.0;
  [[nodiscard]] double energy_j_mean() const {
    return admitted == 0 ? 0.0 : energy_j_total / admitted;
  }

  SharedObjectStore::Stats store;
  ProxyCompute::Stats compute;

  // ---- Streaming-mode surface (FleetConfig::streaming; zeroed in exact
  // mode). The percentile fields above are filled from these sketches
  // (nearest-rank, within LogHistogram::relative_error_bound()); clients
  // stays empty by design.
  bool streaming = false;
  /// Epoch decomposition actually used (1 when degraded or exact).
  int epochs = 0;
  bool epoch_parallel = false;
  /// Why the epoch planner degraded to one serial epoch ("" otherwise).
  std::string epoch_degrade_reason;
  /// Micro-sims that completed inside the capture window (r.ok).
  std::uint64_t sessions_ok = 0;
  core::StreamingStats olt_stats;     // fleet-adjusted OLT, seconds
  core::StreamingStats tlt_stats;     // fleet-adjusted TLT, seconds
  core::StreamingStats wait_stats;    // per-client worst queue wait, s
  core::StreamingStats energy_stats;  // per-session radio energy, joules
};

/// Derive the K client specs from the config: arrival times from the
/// seeded exponential process, pages round-robin over the corpus (the
/// repeated-corpus warming pattern), per-client seeds from base.seed.
[[nodiscard]] std::vector<ClientSpec> derive_clients(
    const FleetConfig& config, std::size_t corpus_pages);

/// Run the fleet: macro-simulate admission/store/queueing, micro-simulate
/// every admitted session (fanned across `config.jobs` workers), merge.
[[nodiscard]] FleetMetrics run_fleet(
    const std::vector<const web::WebPage*>& corpus, const FleetConfig& config);

/// Low-level entry: explicit specs (page_index must be < corpus.size()).
[[nodiscard]] FleetMetrics run_fleet(
    const std::vector<const web::WebPage*>& corpus,
    const std::vector<ClientSpec>& specs, const FleetConfig& config);

}  // namespace parcel::fleet
