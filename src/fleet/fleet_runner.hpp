// FleetRunner: many concurrent client sessions against one shared proxy,
// in one deterministic simulation (ISSUE 5, tentpole c).
//
// Two composed layers, both bit-reproducible:
//
//  * The fleet macro-simulation — a single sim::Scheduler timeline where K
//    clients arrive under a seeded arrival process over the page corpus.
//    Each admitted arrival consults the fleet::SharedObjectStore (session
//    N warms session N+1), submits the resulting fetch/parse/bundle tasks
//    to fleet::ProxyCompute, and accrues queueing delay; a client whose
//    task batch would overflow the bounded queue is shed 503-style.
//
//  * The per-session micro-simulations — one core::ExperimentRunner run
//    per admitted client (own Testbed, own seeds), fanned out across
//    core::ParallelRunner workers. Results land in per-client slots, so
//    every aggregate below is bitwise identical for any --jobs value.
//
// The macro layer depends only on the corpus and the specs (not on
// micro-run outputs), and the micro layer only on the specs, so the two
// compose without feedback and the whole fleet run is a pure function of
// (corpus, FleetConfig). A client's fleet-adjusted OLT/TLT is its
// session-level value plus its queueing delay — service time is already
// inside the session simulation and is deliberately not added twice
// (DESIGN.md §10).
//
// ISSUE 7 adds a streaming mode for million-session fleets: per-session
// results are folded into core::StreamingStats sketches the moment each
// micro-simulation completes (never stored), and the macro timeline is
// partitioned into provably non-interacting epochs (epoch_plan.hpp) that
// run concurrently on ParallelRunner — with fleet metrics still bitwise
// identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/streaming_stats.hpp"
#include "fleet/proxy_compute.hpp"
#include "fleet/shared_store.hpp"
#include "web/page.hpp"

namespace parcel::fleet {

/// One client of the fleet, fully described by value. Normally derived by
/// derive_clients(); the low-level overload of run_fleet accepts explicit
/// specs so regression tests can mirror the single-client harness's exact
/// seed derivation.
struct ClientSpec {
  int client = 0;
  std::size_t page_index = 0;
  core::Scheme scheme = core::Scheme::kParcelInd;
  util::TimePoint arrival;
  /// Weighted-fair share under QueuePolicy::kWeightedFair.
  double weight = 1.0;
  core::RunConfig config;
};

/// Arrival-process families (ISSUE 10): how the fleet's K clients land
/// on the timeline. All are seeded rate-modulated renewal processes —
/// the inter-arrival draw at time t uses mean `mean_interarrival / m(t)`
/// — so arrival times are non-decreasing by client index (the epoch
/// planner depends on that) and bitwise deterministic.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,     // m(t) = 1: the historical homogeneous process
  kFlashCrowd,  // m(t) = 1 + flash_boost inside the flash window
  kDiurnal,     // m(t) = 1 + amplitude * sin(2π t / period)
};

[[nodiscard]] std::string_view to_string(ArrivalProcess p);

struct FleetConfig {
  /// Number of concurrent client sessions (K).
  int clients = 8;
  core::Scheme scheme = core::Scheme::kParcelInd;
  /// Seeded arrivals: exponential inter-arrival times with this mean,
  /// cumulative from t=0, rate-modulated per `arrivals`. kPoisson
  /// consumes exactly the historical draw sequence (byte-identical
  /// fleets).
  std::uint64_t arrival_seed = 2014;
  util::Duration mean_interarrival = util::Duration::millis(200);
  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  /// kFlashCrowd: arrival rate is multiplied by (1 + flash_boost) while
  /// t is inside [flash_at, flash_at + flash_window] — the thundering
  /// herd the admission controller and shard tiers must absorb.
  double flash_boost = 19.0;
  util::Duration flash_at = util::Duration::seconds(2);
  util::Duration flash_window = util::Duration::seconds(1);
  /// kDiurnal: sinusoidal load swing (period scaled to simulation time;
  /// amplitude in [0, 1) keeps the rate positive).
  util::Duration diurnal_period = util::Duration::seconds(20);
  double diurnal_amplitude = 0.8;
  ProxyComputeConfig compute;
  /// Shared-store capacity (0 = unbounded).
  util::Bytes store_capacity = 0;
  /// Per-client base run configuration; per-client seeds are derived from
  /// base.seed and the client index. base.testbed.faults composes: the
  /// plan reaches both the per-session testbeds and the proxy compute
  /// model's blackout windows. Disabled (the default) keeps every
  /// per-session result byte-identical to the single-client harness.
  core::RunConfig base;
  /// Micro-simulation fan-out width (core::ParallelRunner semantics:
  /// 1 = inline, <= 0 = hardware concurrency). Any value produces
  /// bitwise-identical fleet metrics.
  int jobs = 1;

  /// Sharded proxy fleet (ISSUE 8, tentpole). 1 keeps §10's single-proxy
  /// model bit-for-bit; N > 1 stands up N independent proxies — each with
  /// its own L1 SharedObjectStore (capacity store_capacity) and its own
  /// ProxyCompute pool (this `compute` config per shard) — behind a
  /// rendezvous-hash front (shard_router.hpp) keyed on the client id.
  int shards = 1;
  /// Rendezvous salt for the routing front (part of the run's identity:
  /// same salt + same fleet = same routing on every host and --jobs).
  std::uint64_t route_salt = 0x5ca1ab1e2014ULL;
  /// Shared L2 tier capacity (0 = unbounded); consulted only when
  /// shards > 1. An L1 miss that hits the L2 costs one kTransfer task
  /// (compute.costs.transfer_*) instead of origin fetch + parse.
  util::Bytes l2_capacity = 0;
  /// Fleet-layer fault plan: proxy_crash_at / proxy_restart_after name
  /// the seeded crash whose victim *shard* dies mid-run (queued and
  /// in-flight sessions hand off to survivors; restart rejoins with a
  /// cold L1). Distinct from base.testbed.faults, which reaches the
  /// per-session testbeds and every pool's blackout windows. A crash
  /// requires shards > 1 (validate()).
  sim::FaultPlan shard_faults;

  /// Streaming aggregation (ISSUE 7): fold every admitted session into
  /// sketches and running sums as it completes instead of materializing
  /// per-client results — FleetMetrics.clients stays empty, memory stays
  /// bounded in K, and the macro timeline runs epoch-parallel whenever
  /// the config is provably interaction-free (epoch_plan.hpp). The
  /// percentile fields are then sketch-backed with the documented
  /// LogHistogram relative-error bound; integer counters and store/
  /// compute stats remain exact.
  bool streaming = false;
  /// Minimum sessions per epoch in streaming mode (the planner also
  /// enforces >= K/1024 so epoch-merge state is O(1) in K).
  int epoch_min_sessions = 512;
  /// Bin geometry for the streaming sketches.
  core::LogHistogram::Layout sketch;

  /// Throws std::invalid_argument on nonsense (clients < 1, negative
  /// inter-arrival, invalid compute config, malformed fault plan).
  void validate() const;
};

/// SoA columns for the fleet's per-client bookkeeping (ISSUE 7
/// satellite): the macro epoch loop walks parallel arrays instead of
/// ClientSpec records — 36 bytes per client instead of a full embedded
/// RunConfig, and each column scans linearly. Derived fleets are uniform
/// in scheme/weight (config.scheme, weight 1.0), so only the per-client
/// varying fields get columns; index k is the client id.
struct ClientColumns {
  std::vector<double> arrival_sec;
  std::vector<std::uint32_t> page_index;
  std::vector<std::uint64_t> seed;       // per-session RunConfig seed
  std::vector<std::uint64_t> fade_seed;  // per-session fade stream seed
  [[nodiscard]] std::size_t size() const { return arrival_sec.size(); }
};

/// Column-form equivalent of derive_clients: identical arrival process
/// and seed derivation, ~30x smaller per client.
[[nodiscard]] ClientColumns derive_client_columns(const FleetConfig& config,
                                                  std::size_t corpus_pages);

struct FleetClientResult {
  int client = 0;
  std::size_t page_index = 0;
  util::TimePoint arrival;
  bool shed = false;  // refused admission; no session was run
  /// Worst queueing delay over the client's proxy tasks (zero when shed).
  util::Duration queue_wait = util::Duration::zero();
  /// When the proxy finished this client's last task (macro timeline).
  util::TimePoint proxy_done;
  /// Fleet-adjusted load metrics: session result + queue_wait.
  util::Duration olt = util::Duration::zero();
  util::Duration tlt = util::Duration::zero();
  /// Crash-handoff accounting (ISSUE 8; zero unless this client was
  /// migrated off a crashed shard). The same numbers are stamped onto
  /// `session` (shard_handoffs / handoff_recovery / redo_*).
  int handoffs = 0;
  util::Duration recovery = util::Duration::zero();
  double redo_sec = 0.0;
  util::Bytes redo_bytes = 0;
  /// The per-session micro-simulation result (default-constructed when
  /// shed).
  core::RunResult session;
};

struct FleetMetrics {
  std::vector<FleetClientResult> clients;  // indexed by client id
  int admitted = 0;
  int shed = 0;
  [[nodiscard]] double shed_rate() const {
    int total = admitted + shed;
    return total == 0 ? 0.0
                      : static_cast<double>(shed) / static_cast<double>(total);
  }

  /// Distributions over admitted clients (fleet-adjusted OLT, queueing
  /// delay), in seconds.
  double olt_p50 = 0.0, olt_p95 = 0.0, olt_p99 = 0.0;
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;

  /// Aggregate proxy work actually executed, and the cache-amplification
  /// headline: origin-facing (fetch+parse) seconds per admitted load.
  double proxy_busy_sec = 0.0;
  double fetch_parse_sec = 0.0;
  [[nodiscard]] double fetch_parse_sec_per_load() const {
    return admitted == 0 ? 0.0 : fetch_parse_sec / admitted;
  }

  /// Radio energy across admitted clients (the fleet's device-side bill).
  double energy_j_total = 0.0;
  [[nodiscard]] double energy_j_mean() const {
    return admitted == 0 ? 0.0 : energy_j_total / admitted;
  }

  SharedObjectStore::Stats store;
  ProxyCompute::Stats compute;

  // ---- Sharded-fleet surface (ISSUE 8; `shards` is 1 and the rest
  // zero/empty for single-proxy fleets). `store` above aggregates the L1
  // tiers (plain sums over shards) in sharded runs.
  int shards = 1;
  /// Per-shard L1 stats, index = shard id (empty when shards == 1).
  std::vector<SharedObjectStore::Stats> l1_shards;
  /// Shared L2 tier stats (all-zero when shards == 1).
  SharedObjectStore::Stats l2;
  /// Crash-driven handoff accounting — exact integer/double sums in both
  /// exact and streaming modes.
  std::uint64_t crash_handoffs = 0;      // session migrations executed
  std::uint64_t crash_killed_tasks = 0;  // tasks destroyed by the crash
  double redo_sec_total = 0.0;           // proxy service re-executed, s
  util::Bytes redo_bytes_total = 0;      // bytes the tier moved twice
  double recovery_sec_total = 0.0;       // sum over migrated sessions
  double recovery_sec_max = 0.0;         // slowest migrated session

  // ---- Fleet fault/degradation counters (ISSUE 8 satellite 1): exact
  // integer sums over admitted sessions' RunResults, folded identically
  // in exact and streaming modes (sketches never replace these).
  std::uint64_t fault_retransmits = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_deferrals = 0;
  std::uint64_t direct_fetches = 0;
  std::uint64_t degraded_sessions = 0;

  // ---- Streaming-mode surface (FleetConfig::streaming; zeroed in exact
  // mode). The percentile fields above are filled from these sketches
  // (nearest-rank, within LogHistogram::relative_error_bound()); clients
  // stays empty by design.
  bool streaming = false;
  /// Epoch decomposition actually used (1 when degraded or exact).
  int epochs = 0;
  bool epoch_parallel = false;
  /// Why the epoch planner degraded to one serial epoch ("" otherwise).
  std::string epoch_degrade_reason;
  /// Micro-sims that completed inside the capture window (r.ok).
  std::uint64_t sessions_ok = 0;
  core::StreamingStats olt_stats;     // fleet-adjusted OLT, seconds
  core::StreamingStats tlt_stats;     // fleet-adjusted TLT, seconds
  core::StreamingStats wait_stats;    // per-client worst queue wait, s
  core::StreamingStats energy_stats;  // per-session radio energy, joules
  /// Per-migrated-session recovery time, seconds (empty unless a sharded
  /// streaming run crashed — which also degrades the plan to serial).
  core::StreamingStats recovery_stats;
};

/// Derive the K client specs from the config: arrival times from the
/// seeded exponential process, pages round-robin over the corpus (the
/// repeated-corpus warming pattern), per-client seeds from base.seed.
[[nodiscard]] std::vector<ClientSpec> derive_clients(
    const FleetConfig& config, std::size_t corpus_pages);

/// Run the fleet: macro-simulate admission/store/queueing, micro-simulate
/// every admitted session (fanned across `config.jobs` workers), merge.
[[nodiscard]] FleetMetrics run_fleet(
    const std::vector<const web::WebPage*>& corpus, const FleetConfig& config);

/// Low-level entry: explicit specs (page_index must be < corpus.size()).
[[nodiscard]] FleetMetrics run_fleet(
    const std::vector<const web::WebPage*>& corpus,
    const std::vector<ClientSpec>& specs, const FleetConfig& config);

}  // namespace parcel::fleet
