#include "fleet/fleet_runner.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/arena.hpp"
#include "core/parallel_runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace parcel::fleet {

void FleetConfig::validate() const {
  if (clients < 1) {
    throw std::invalid_argument("FleetConfig: clients must be >= 1, got " +
                                std::to_string(clients));
  }
  if (mean_interarrival < util::Duration::zero()) {
    throw std::invalid_argument(
        "FleetConfig: mean_interarrival must be >= 0");
  }
  if (store_capacity < 0) {
    throw std::invalid_argument("FleetConfig: store_capacity must be >= 0");
  }
  compute.validate();
  base.testbed.faults.validate();
}

std::vector<ClientSpec> derive_clients(const FleetConfig& config,
                                       std::size_t corpus_pages) {
  config.validate();
  if (corpus_pages == 0) {
    throw std::invalid_argument("derive_clients: corpus is empty");
  }
  // One dedicated stream for arrivals: adding clients never perturbs the
  // per-session seeds, which are pure functions of the client index.
  util::Rng arrivals(config.arrival_seed);
  std::vector<ClientSpec> specs;
  specs.reserve(static_cast<std::size_t>(config.clients));
  util::TimePoint t = util::TimePoint::origin();
  for (int k = 0; k < config.clients; ++k) {
    if (k > 0 && !config.mean_interarrival.is_zero()) {
      t += util::Duration::seconds(
          arrivals.exponential(config.mean_interarrival.sec()));
    }
    ClientSpec spec;
    spec.client = k;
    // Round-robin over the corpus: the repeated-page pattern that makes
    // shared-store warming visible as K grows past the corpus size.
    spec.page_index = static_cast<std::size_t>(k) % corpus_pages;
    spec.scheme = config.scheme;
    spec.arrival = t;
    spec.config = config.base;
    // Same shape as the single-client harness's grid derivation: distinct
    // deterministic seeds per slot, derived from the base seed only.
    spec.config.seed = config.base.seed + 1000003ULL * static_cast<std::uint64_t>(k) + 1;
    spec.config.testbed.fade_seed =
        config.base.testbed.fade_seed + 7919ULL * static_cast<std::uint64_t>(k) + 1;
    specs.push_back(std::move(spec));
  }
  return specs;
}

namespace {

/// Per-client accumulator for the macro timeline.
struct MacroState {
  bool shed = false;
  std::size_t outstanding = 0;
  util::Duration max_wait = util::Duration::zero();
  util::TimePoint done;
};

}  // namespace

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const FleetConfig& config) {
  return run_fleet(corpus, derive_clients(config, corpus.size()), config);
}

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const std::vector<ClientSpec>& specs,
                       const FleetConfig& config) {
  config.validate();
  if (corpus.empty()) {
    throw std::invalid_argument("run_fleet: corpus is empty");
  }
  for (const ClientSpec& spec : specs) {
    if (spec.page_index >= corpus.size()) {
      throw std::invalid_argument(
          "run_fleet: client page_index out of range: " +
          std::to_string(spec.page_index));
    }
  }

  // ---- Macro phase: one shared timeline for arrivals, the store, and
  // proxy compute. Serial by construction; depends only on the corpus
  // pages and the specs, never on micro-run outputs. The macro scheduler
  // heap bumps out of its own arena; micro-runs install per-run arenas of
  // their own inside ExperimentRunner::run (worker threads, nested fine).
  core::Arena macro_arena;
  core::ArenaScope macro_scope(macro_arena);
  sim::Scheduler macro;
  const sim::FaultPlan* plan =
      config.base.testbed.faults.enabled() ? &config.base.testbed.faults
                                           : nullptr;
  ProxyCompute compute(macro, config.compute, plan);
  SharedObjectStore store(config.store_capacity);
  std::vector<MacroState> states(specs.size());

  for (std::size_t i = 0; i < specs.size(); ++i) {
    macro.schedule_at(specs[i].arrival, [&, i] {
      const ClientSpec& spec = specs[i];
      MacroState& state = states[i];
      const web::WebPage& page = *corpus[spec.page_index];
      const std::vector<const web::WebObject*>& objects = page.objects();

      // Admission control: size the whole task batch first (503-style —
      // a client is either served or refused, never half-queued). Misses
      // cost a fetch plus, for text bodies, a parse/scan; the per-session
      // bundle assembly is always the client's own work. The batch's
      // estimated service seconds feed the backlog bound.
      std::size_t batch = 1;
      util::Duration batch_cost =
          compute.cost_of(TaskKind::kBundle, page.total_bytes());
      for (const web::WebObject* object : objects) {
        if (!store.contains(*object)) {
          batch += web::is_parseable(object->type) ? 2u : 1u;
          batch_cost += compute.cost_of(TaskKind::kFetch, object->size);
          if (web::is_parseable(object->type)) {
            batch_cost += compute.cost_of(TaskKind::kParse, object->size);
          }
        }
      }
      if (!compute.can_accept(batch, batch_cost)) {
        state.shed = true;
        return;
      }

      state.outstanding = batch;
      auto on_done = [&state](util::TimePoint finished,
                              util::Duration waited) {
        state.max_wait = std::max(state.max_wait, waited);
        state.done = std::max(state.done, finished);
        --state.outstanding;
      };
      for (const web::WebObject* object : objects) {
        SharedObjectStore::Outcome outcome = store.request(*object);
        if (outcome.hit) continue;  // served from the shared store
        compute.submit(spec.client, spec.weight, TaskKind::kFetch,
                       object->size, on_done);
        if (web::is_parseable(object->type)) {
          compute.submit(spec.client, spec.weight, TaskKind::kParse,
                         object->size, on_done);
        }
      }
      compute.submit(spec.client, spec.weight, TaskKind::kBundle,
                     page.total_bytes(), on_done);
    });
  }
  macro.run();

  // ---- Micro phase: one independent session simulation per admitted
  // client, fanned out across the parallel runner (slot-indexed, so any
  // jobs value is bitwise identical).
  std::vector<std::size_t> admitted;
  std::vector<core::ExperimentTask> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (states[i].shed) continue;
    admitted.push_back(i);
    tasks.push_back(core::ExperimentTask{specs[i].scheme,
                                         corpus[specs[i].page_index],
                                         specs[i].config});
  }
  std::vector<core::RunResult> sessions =
      core::run_experiments(tasks, config.jobs);

  // ---- Merge.
  FleetMetrics metrics;
  metrics.clients.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    FleetClientResult& r = metrics.clients[i];
    r.client = specs[i].client;
    r.page_index = specs[i].page_index;
    r.arrival = specs[i].arrival;
    r.shed = states[i].shed;
  }
  std::vector<double> olts, waits;
  olts.reserve(admitted.size());
  waits.reserve(admitted.size());
  for (std::size_t s = 0; s < admitted.size(); ++s) {
    std::size_t i = admitted[s];
    FleetClientResult& r = metrics.clients[i];
    r.queue_wait = states[i].max_wait;
    r.proxy_done = states[i].done;
    r.session = std::move(sessions[s]);
    // Fleet-adjusted timeline: the contention the session sim cannot see
    // is exactly the time this client's work sat waiting at the proxy.
    r.olt = r.session.olt + r.queue_wait;
    r.tlt = r.session.tlt + r.queue_wait;
    olts.push_back(r.olt.sec());
    waits.push_back(r.queue_wait.sec());
    metrics.energy_j_total += r.session.radio.total.j();
  }
  metrics.admitted = static_cast<int>(admitted.size());
  metrics.shed = static_cast<int>(specs.size() - admitted.size());
  if (!olts.empty()) {
    metrics.olt_p50 = util::percentile(olts, 50.0);
    metrics.olt_p95 = util::percentile(olts, 95.0);
    metrics.olt_p99 = util::percentile(olts, 99.0);
    metrics.wait_p50 = util::percentile(waits, 50.0);
    metrics.wait_p95 = util::percentile(waits, 95.0);
    metrics.wait_p99 = util::percentile(waits, 99.0);
  }
  metrics.store = store.stats();
  metrics.compute = compute.stats();
  metrics.proxy_busy_sec = metrics.compute.busy_sec();
  metrics.fetch_parse_sec = metrics.compute.fetch_parse_sec();
  return metrics;
}

}  // namespace parcel::fleet
