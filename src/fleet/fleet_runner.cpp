#include "fleet/fleet_runner.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/arena.hpp"
#include "core/parallel_runner.hpp"
#include "fleet/epoch_plan.hpp"
#include "fleet/shard.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "web/parse_cache.hpp"

namespace parcel::fleet {

std::string_view to_string(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kFlashCrowd:
      return "flash-crowd";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
  }
  throw std::logic_error("to_string: unknown ArrivalProcess");
}

void FleetConfig::validate() const {
  if (clients < 1) {
    throw std::invalid_argument("FleetConfig: clients must be >= 1, got " +
                                std::to_string(clients));
  }
  if (mean_interarrival < util::Duration::zero()) {
    throw std::invalid_argument(
        "FleetConfig: mean_interarrival must be >= 0");
  }
  if (!std::isfinite(flash_boost) || flash_boost < 0.0) {
    throw std::invalid_argument(
        "FleetConfig: flash_boost must be finite and >= 0");
  }
  if (flash_at < util::Duration::zero() ||
      flash_window < util::Duration::zero()) {
    throw std::invalid_argument(
        "FleetConfig: flash_at and flash_window must be >= 0");
  }
  if (diurnal_period <= util::Duration::zero()) {
    throw std::invalid_argument("FleetConfig: diurnal_period must be > 0");
  }
  if (!std::isfinite(diurnal_amplitude) || diurnal_amplitude < 0.0 ||
      diurnal_amplitude >= 1.0) {
    throw std::invalid_argument(
        "FleetConfig: diurnal_amplitude must be in [0, 1) so the arrival "
        "rate stays positive");
  }
  if (store_capacity < 0) {
    throw std::invalid_argument("FleetConfig: store_capacity must be >= 0");
  }
  if (epoch_min_sessions < 1) {
    throw std::invalid_argument(
        "FleetConfig: epoch_min_sessions must be >= 1");
  }
  if (shards < 1) {
    throw std::invalid_argument("FleetConfig: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  if (l2_capacity < 0) {
    throw std::invalid_argument("FleetConfig: l2_capacity must be >= 0");
  }
  compute.validate();
  base.testbed.faults.validate();
  shard_faults.validate();
  if (shard_faults.proxy_crash_at.has_value() && shards < 2) {
    throw std::invalid_argument(
        "FleetConfig: a shard_faults crash requires shards >= 2 (a "
        "single-proxy fleet has no survivor to hand sessions off to)");
  }
}

namespace {

/// Rate multiplier m(t) for the inhomogeneous arrival processes.  The
/// inter-arrival draw taken at time t uses mean `mean_interarrival /
/// m(t)` — a deterministic thinning-free approximation of an
/// inhomogeneous Poisson process that keeps arrivals non-decreasing by
/// client index (the epoch planner's split test depends on that).
double arrival_rate_multiplier(const FleetConfig& config, util::TimePoint t) {
  switch (config.arrivals) {
    case ArrivalProcess::kPoisson:
      return 1.0;
    case ArrivalProcess::kFlashCrowd: {
      const double at = config.flash_at.sec();
      const double end = at + config.flash_window.sec();
      const double now = t.sec();
      return (now >= at && now < end) ? 1.0 + config.flash_boost : 1.0;
    }
    case ArrivalProcess::kDiurnal: {
      constexpr double kTwoPi = 6.283185307179586476925286766559;
      const double phase = kTwoPi * t.sec() / config.diurnal_period.sec();
      return 1.0 + config.diurnal_amplitude * std::sin(phase);
    }
  }
  throw std::logic_error("arrival_rate_multiplier: unknown process");
}

}  // namespace

ClientColumns derive_client_columns(const FleetConfig& config,
                                    std::size_t corpus_pages) {
  config.validate();
  if (corpus_pages == 0) {
    throw std::invalid_argument("derive_client_columns: corpus is empty");
  }
  // One dedicated stream for arrivals: adding clients never perturbs the
  // per-session seeds, which are pure functions of the client index.
  util::Rng arrivals(config.arrival_seed);
  ClientColumns cols;
  auto n = static_cast<std::size_t>(config.clients);
  cols.arrival_sec.reserve(n);
  cols.page_index.reserve(n);
  cols.seed.reserve(n);
  cols.fade_seed.reserve(n);
  util::TimePoint t = util::TimePoint::origin();
  for (int k = 0; k < config.clients; ++k) {
    if (k > 0 && !config.mean_interarrival.is_zero()) {
      // kPoisson keeps the historical expression verbatim so existing
      // fleets replay byte-identically; the modulated processes divide
      // the mean by m(t) at the current simulation time.
      if (config.arrivals == ArrivalProcess::kPoisson) {
        t += util::Duration::seconds(
            arrivals.exponential(config.mean_interarrival.sec()));
      } else {
        t += util::Duration::seconds(arrivals.exponential(
            config.mean_interarrival.sec() /
            arrival_rate_multiplier(config, t)));
      }
    }
    auto uk = static_cast<std::uint64_t>(k);
    cols.arrival_sec.push_back(t.sec());
    // Round-robin over the corpus: the repeated-page pattern that makes
    // shared-store warming visible as K grows past the corpus size.
    cols.page_index.push_back(
        static_cast<std::uint32_t>(static_cast<std::size_t>(k) % corpus_pages));
    // Same shape as the single-client harness's grid derivation: distinct
    // deterministic seeds per slot, derived from the base seed only.
    cols.seed.push_back(config.base.seed + 1000003ULL * uk + 1);
    cols.fade_seed.push_back(config.base.testbed.fade_seed + 7919ULL * uk + 1);
  }
  return cols;
}

std::vector<ClientSpec> derive_clients(const FleetConfig& config,
                                       std::size_t corpus_pages) {
  ClientColumns cols = derive_client_columns(config, corpus_pages);
  std::vector<ClientSpec> specs;
  specs.reserve(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    ClientSpec spec;
    spec.client = static_cast<int>(k);
    spec.page_index = cols.page_index[k];
    spec.scheme = config.scheme;
    spec.arrival = util::TimePoint::at_seconds(cols.arrival_sec[k]);
    spec.config = config.base;
    spec.config.seed = cols.seed[k];
    spec.config.testbed.fade_seed = cols.fade_seed[k];
    specs.push_back(std::move(spec));
  }
  return specs;
}

namespace {

/// Sum src's flow counters into dst. bytes_stored is a point-in-time
/// gauge, not a flow — callers set it from the final snapshot explicitly.
void fold_store(SharedObjectStore::Stats& dst,
                const SharedObjectStore::Stats& src) {
  dst.hits += src.hits;
  dst.misses += src.misses;
  dst.evictions += src.evictions;
  dst.bytes_saved += src.bytes_saved;
}

void fold_compute(ProxyCompute::Stats& dst, const ProxyCompute::Stats& src) {
  dst.completed += src.completed;
  dst.fetch_busy_sec += src.fetch_busy_sec;
  dst.parse_busy_sec += src.parse_busy_sec;
  dst.bundle_busy_sec += src.bundle_busy_sec;
  dst.transfer_busy_sec += src.transfer_busy_sec;
  dst.crash_killed += src.crash_killed;
  dst.last_finish = std::max(dst.last_finish, src.last_finish);
}

/// Per-epoch streaming aggregate: everything a finished epoch contributes
/// to FleetMetrics, plus the state the boundary invariant check needs.
struct EpochAgg {
  explicit EpochAgg(const core::LogHistogram::Layout& layout)
      : olt(layout), tlt(layout), wait(layout), energy(layout),
        recovery(layout) {}

  int admitted = 0;
  int shed = 0;
  std::uint64_t sessions_ok = 0;
  core::StreamingStats olt, tlt, wait, energy, recovery;
  // Fleet fault/degradation counters (ISSUE 8 satellite 1): exact integer
  // sums over the epoch's sessions — sketches never replace these.
  std::uint64_t fault_retransmits = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_deferrals = 0;
  std::uint64_t direct_fetches = 0;
  std::uint64_t degraded_sessions = 0;
  // Crash-handoff accounting (zero in parallel epochs — a crash degrades
  // the plan to one serial epoch).
  double recovery_sec_total = 0.0;
  double recovery_sec_max = 0.0;
  ShardedFleetStats fleet;
  ShardSnapshot end_snap;  // store tiers at epoch end (counters zero)
};

/// Fold one admitted session's RunResult into the epoch aggregate.
void fold_session(EpochAgg& agg, const core::RunResult& r, double wait_sec) {
  agg.olt.add(r.olt.sec() + wait_sec);
  agg.tlt.add(r.tlt.sec() + wait_sec);
  agg.wait.add(wait_sec);
  agg.energy.add(r.radio.total.j());
  if (r.ok) ++agg.sessions_ok;
  agg.fault_retransmits += r.retransmits;
  agg.fault_drops += r.fault_drops;
  agg.fault_deferrals += r.fault_deferrals;
  agg.direct_fetches += r.direct_fetches;
  if (r.degraded) ++agg.degraded_sessions;
}

/// Fold the macro timeline's handoff outputs into the epoch aggregate
/// (admitted sessions only — a shed client never held proxy work).
void fold_handoffs(EpochAgg& agg, const MacroOut& out) {
  for (std::size_t i = 0; i < out.handoffs.size(); ++i) {
    if (out.handoffs[i] == 0 || out.shed[i] != 0) continue;
    agg.recovery.add(out.recovery_sec[i]);
    agg.recovery_sec_total += out.recovery_sec[i];
    agg.recovery_sec_max = std::max(agg.recovery_sec_max, out.recovery_sec[i]);
  }
}

/// Simulate one epoch end-to-end on the calling thread: macro timeline
/// from the starting store snapshot, then every admitted micro-sim in
/// client order, folding each result into the sketches the moment it
/// completes — the RunResult is dropped before the next session runs.
EpochAgg run_epoch(const std::vector<const web::WebPage*>& corpus,
                   const ClientColumns& cols, EpochPlan::Epoch epoch,
                   const ShardSnapshot& start, const FleetConfig& config) {
  EpochAgg agg(config.sketch);
  const std::size_t n = epoch.end - epoch.begin;

  core::Arena arena;
  core::ArenaScope scope(arena);
  sim::Scheduler sched;
  ShardedFleet fleet(sched, config, &start);

  MacroColumns mc;
  mc.arrival_sec =
      std::span<const double>(cols.arrival_sec).subspan(epoch.begin, n);
  mc.page_index =
      std::span<const std::uint32_t>(cols.page_index).subspan(epoch.begin, n);
  mc.base = epoch.begin;  // global client identity survives partitioning
  MacroOut out(n);
  fleet.run(corpus, mc, out);

  for (std::size_t j = 0; j < n; ++j) {
    if (out.shed[j] != 0) {
      ++agg.shed;
      continue;
    }
    ++agg.admitted;
    std::size_t i = epoch.begin + j;
    core::RunConfig cfg = config.base;
    cfg.seed = cols.seed[i];
    cfg.testbed.fade_seed = cols.fade_seed[i];
    core::RunResult r = core::ExperimentRunner::run(
        config.scheme, *corpus[cols.page_index[i]], cfg);
    fold_session(agg, r, out.max_wait_sec[j]);
  }
  fold_handoffs(agg, out);

  agg.fleet = fleet.stats();
  agg.end_snap = fleet.snapshot();
  // Per-session content (bundle-unpacked objects) pins parse-cache
  // entries that can never hit again; without this per-epoch sweep the
  // cache footprint grows linearly in K and the bounded-memory claim of
  // streaming mode is void. Corpus artifacts survive (their owners still
  // pin them), so warm-cache behavior is unchanged.
  web::ParseCache::instance().sweep_transient();
  return agg;
}

/// Fold one epoch into the metrics. Called in epoch-index order on the
/// main thread, so every sum (integer and double) has one fixed fold
/// order and the result is bitwise independent of --jobs.
void fold_epoch(FleetMetrics& m, const EpochAgg& agg) {
  m.admitted += agg.admitted;
  m.shed += agg.shed;
  m.sessions_ok += agg.sessions_ok;
  m.olt_stats.merge(agg.olt);
  m.tlt_stats.merge(agg.tlt);
  m.wait_stats.merge(agg.wait);
  m.energy_stats.merge(agg.energy);
  m.recovery_stats.merge(agg.recovery);
  fold_store(m.store, agg.fleet.l1_total());
  for (std::size_t s = 0; s < agg.fleet.l1.size() && s < m.l1_shards.size();
       ++s) {
    fold_store(m.l1_shards[s], agg.fleet.l1[s]);
  }
  fold_store(m.l2, agg.fleet.l2);
  fold_compute(m.compute, agg.fleet.compute);
  m.crash_handoffs += agg.fleet.crash_handoffs;
  m.crash_killed_tasks += agg.fleet.crash_killed_tasks;
  m.redo_sec_total += agg.fleet.redo_sec_total;
  m.redo_bytes_total += agg.fleet.redo_bytes_total;
  m.recovery_sec_total += agg.recovery_sec_total;
  m.recovery_sec_max = std::max(m.recovery_sec_max, agg.recovery_sec_max);
  m.fault_retransmits += agg.fault_retransmits;
  m.fault_drops += agg.fault_drops;
  m.fault_deferrals += agg.fault_deferrals;
  m.direct_fetches += agg.direct_fetches;
  m.degraded_sessions += agg.degraded_sessions;
}

/// Stamp the resident-bytes gauges from the run's final store state.
void stamp_resident_bytes(FleetMetrics& m, const ShardedFleetStats& last) {
  m.store.bytes_stored = last.l1_total().bytes_stored;
  for (std::size_t s = 0; s < last.l1.size() && s < m.l1_shards.size(); ++s) {
    m.l1_shards[s].bytes_stored = last.l1[s].bytes_stored;
  }
  m.l2.bytes_stored = last.l2.bytes_stored;
}

bool snapshots_equal(const ShardSnapshot& a, const ShardSnapshot& b) {
  if (a.l1.size() != b.l1.size()) return false;
  for (std::size_t s = 0; s < a.l1.size(); ++s) {
    if (!a.l1[s].contents_equal(b.l1[s])) return false;
  }
  return a.l2.contents_equal(b.l2);
}

FleetMetrics run_fleet_streaming(const std::vector<const web::WebPage*>& corpus,
                                 const FleetConfig& config) {
  ClientColumns cols = derive_client_columns(config, corpus.size());
  EpochPlan plan = plan_epochs(corpus, cols, config);

  FleetMetrics m;
  m.streaming = true;
  m.shards = config.shards;
  if (config.shards > 1) {
    m.l1_shards.resize(static_cast<std::size_t>(config.shards));
  }
  m.epochs = static_cast<int>(plan.epochs.size());
  m.epoch_parallel = plan.parallel && plan.epochs.size() > 1;
  m.epoch_degrade_reason = plan.degrade_reason;
  m.olt_stats = core::StreamingStats(config.sketch);
  m.tlt_stats = core::StreamingStats(config.sketch);
  m.wait_stats = core::StreamingStats(config.sketch);
  m.energy_stats = core::StreamingStats(config.sketch);
  m.recovery_stats = core::StreamingStats(config.sketch);

  if (m.epoch_parallel) {
    // Serial pre-pass: the tiers' evolution is a pure function of the
    // request sequence here (no shedding and no crash possible —
    // plan_epochs degrades otherwise), so replaying only the routing and
    // store requests yields every epoch's starting snapshot without
    // simulating anything else.
    std::vector<ShardSnapshot> starts;
    starts.reserve(plan.epochs.size());
    ShardSnapshot replay = make_cold_snapshot(config);
    for (const EpochPlan::Epoch& epoch : plan.epochs) {
      ShardSnapshot at_start;
      at_start.l1.reserve(replay.l1.size());
      for (const SharedObjectStore& l1 : replay.l1) {
        at_start.l1.push_back(l1.fork_contents());
      }
      at_start.l2 = replay.l2.fork_contents();
      starts.push_back(std::move(at_start));
      replay_store_requests(corpus, cols, epoch.begin, epoch.end, config,
                            replay);
    }

    std::vector<EpochAgg> aggs(plan.epochs.size(), EpochAgg(config.sketch));
    core::ParallelRunner runner(config.jobs);
    runner.for_each_index(plan.epochs.size(), [&](std::size_t e) {
      aggs[e] = run_epoch(corpus, cols, plan.epochs[e], starts[e], config);
    });

    // The non-interaction argument is checked, not assumed: every epoch's
    // pools must have drained strictly before the next epoch's first
    // arrival, and its ending tiers must be the snapshot the next epoch
    // started from. A violation is a planner bug, not a data error.
    for (std::size_t e = 0; e + 1 < plan.epochs.size(); ++e) {
      double next_arrival = cols.arrival_sec[plan.epochs[e + 1].begin];
      if (aggs[e].fleet.compute.completed != 0 &&
          aggs[e].fleet.compute.last_finish.sec() >= next_arrival) {
        throw std::logic_error(
            "fleet epoch invariant violated: epoch " + std::to_string(e) +
            " finished work at t=" +
            std::to_string(aggs[e].fleet.compute.last_finish.sec()) +
            " >= next epoch arrival t=" + std::to_string(next_arrival));
      }
      if (!snapshots_equal(aggs[e].end_snap, starts[e + 1])) {
        throw std::logic_error(
            "fleet epoch invariant violated: epoch " + std::to_string(e) +
            " ending store tiers differ from the next epoch's snapshot");
      }
    }

    for (const EpochAgg& agg : aggs) fold_epoch(m, agg);
    if (!aggs.empty()) stamp_resident_bytes(m, aggs.back().fleet);
  } else {
    // One serial timeline (admission bounds, blackouts, a shard crash, or
    // a fleet too small to split): the macro phase is the exact-mode
    // loop, but the micro phase still streams — sessions fan out in
    // bounded blocks and fold in client order, so memory is O(block),
    // not O(K).
    core::Arena macro_arena;
    core::ArenaScope macro_scope(macro_arena);
    sim::Scheduler sched;
    ShardedFleet fleet(sched, config);
    MacroColumns mc;
    mc.arrival_sec = cols.arrival_sec;
    mc.page_index = cols.page_index;
    MacroOut out(cols.size());
    fleet.run(corpus, mc, out);

    EpochAgg agg(config.sketch);
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (out.shed[i] != 0) {
        ++agg.shed;
      } else {
        admitted.push_back(i);
      }
    }
    agg.admitted = static_cast<int>(admitted.size());
    constexpr std::size_t kBlock = 256;
    for (std::size_t b = 0; b < admitted.size(); b += kBlock) {
      std::size_t block_end = std::min(admitted.size(), b + kBlock);
      std::vector<core::ExperimentTask> tasks;
      tasks.reserve(block_end - b);
      for (std::size_t s = b; s < block_end; ++s) {
        std::size_t i = admitted[s];
        core::RunConfig cfg = config.base;
        cfg.seed = cols.seed[i];
        cfg.testbed.fade_seed = cols.fade_seed[i];
        tasks.push_back(core::ExperimentTask{
            config.scheme, corpus[cols.page_index[i]], cfg});
      }
      std::vector<core::RunResult> results =
          core::run_experiments(tasks, config.jobs);
      for (std::size_t s = b; s < block_end; ++s) {
        fold_session(agg, results[s - b], out.max_wait_sec[admitted[s]]);
      }
      // Same bounded-memory discipline as run_epoch: the block's sessions
      // are done, so their transient parse-cache pins are dead weight.
      web::ParseCache::instance().sweep_transient();
    }
    fold_handoffs(agg, out);
    agg.fleet = fleet.stats();
    fold_epoch(m, agg);
    stamp_resident_bytes(m, agg.fleet);
  }

  m.olt_p50 = m.olt_stats.quantile(50.0);
  m.olt_p95 = m.olt_stats.quantile(95.0);
  m.olt_p99 = m.olt_stats.quantile(99.0);
  m.wait_p50 = m.wait_stats.quantile(50.0);
  m.wait_p95 = m.wait_stats.quantile(95.0);
  m.wait_p99 = m.wait_stats.quantile(99.0);
  m.energy_j_total = m.energy_stats.sum();
  m.proxy_busy_sec = m.compute.busy_sec();
  m.fetch_parse_sec = m.compute.fetch_parse_sec();
  return m;
}

}  // namespace

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const FleetConfig& config) {
  if (config.streaming) {
    config.validate();
    if (corpus.empty()) {
      throw std::invalid_argument("run_fleet: corpus is empty");
    }
    return run_fleet_streaming(corpus, config);
  }
  return run_fleet(corpus, derive_clients(config, corpus.size()), config);
}

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const std::vector<ClientSpec>& specs,
                       const FleetConfig& config) {
  config.validate();
  if (config.streaming) {
    throw std::invalid_argument(
        "run_fleet: streaming mode derives its own clients; use the "
        "corpus-only overload");
  }
  if (corpus.empty()) {
    throw std::invalid_argument("run_fleet: corpus is empty");
  }
  for (const ClientSpec& spec : specs) {
    if (spec.page_index >= corpus.size()) {
      throw std::invalid_argument(
          "run_fleet: client page_index out of range: " +
          std::to_string(spec.page_index));
    }
  }

  // ---- Macro phase: one shared timeline for arrivals, the routing
  // front, the store tiers, and every shard's compute pool. Serial by
  // construction; depends only on the corpus pages and the specs, never
  // on micro-run outputs. The macro scheduler heap bumps out of its own
  // arena; micro-runs install per-run arenas of their own inside
  // ExperimentRunner::run (worker threads, nested fine). Explicit specs
  // may carry arbitrary client ids/weights, so those two columns are
  // materialized from the AoS records here.
  core::Arena macro_arena;
  core::ArenaScope macro_scope(macro_arena);
  sim::Scheduler sched;
  ShardedFleet fleet(sched, config);

  std::vector<double> arrival_sec;
  std::vector<std::uint32_t> page_index;
  std::vector<int> client;
  std::vector<double> weight;
  arrival_sec.reserve(specs.size());
  page_index.reserve(specs.size());
  client.reserve(specs.size());
  weight.reserve(specs.size());
  for (const ClientSpec& spec : specs) {
    arrival_sec.push_back(spec.arrival.sec());
    page_index.push_back(static_cast<std::uint32_t>(spec.page_index));
    client.push_back(spec.client);
    weight.push_back(spec.weight);
  }
  MacroColumns mc{arrival_sec, page_index, client, weight, 0};
  MacroOut out(specs.size());
  fleet.run(corpus, mc, out);

  // ---- Micro phase: one independent session simulation per admitted
  // client, fanned out across the parallel runner (slot-indexed, so any
  // jobs value is bitwise identical).
  std::vector<std::size_t> admitted;
  std::vector<core::ExperimentTask> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (out.shed[i] != 0) continue;
    admitted.push_back(i);
    tasks.push_back(core::ExperimentTask{specs[i].scheme,
                                         corpus[specs[i].page_index],
                                         specs[i].config});
  }
  std::vector<core::RunResult> sessions =
      core::run_experiments(tasks, config.jobs);

  // ---- Merge.
  FleetMetrics metrics;
  metrics.shards = config.shards;
  metrics.clients.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    FleetClientResult& r = metrics.clients[i];
    r.client = specs[i].client;
    r.page_index = specs[i].page_index;
    r.arrival = specs[i].arrival;
    r.shed = out.shed[i] != 0;
  }
  std::vector<double> olts, waits;
  olts.reserve(admitted.size());
  waits.reserve(admitted.size());
  for (std::size_t s = 0; s < admitted.size(); ++s) {
    std::size_t i = admitted[s];
    FleetClientResult& r = metrics.clients[i];
    r.queue_wait = util::Duration::seconds(out.max_wait_sec[i]);
    r.proxy_done = util::TimePoint::at_seconds(out.done_sec[i]);
    r.session = std::move(sessions[s]);
    // Fleet-adjusted timeline: the contention the session sim cannot see
    // is exactly the time this client's work sat waiting at the proxy.
    r.olt = r.session.olt + r.queue_wait;
    r.tlt = r.session.tlt + r.queue_wait;
    // Crash-handoff accounting, mirrored onto the session result so the
    // per-session surface carries its own recovery story (ISSUE 8).
    r.handoffs = out.handoffs[i];
    r.recovery = util::Duration::seconds(out.recovery_sec[i]);
    r.redo_sec = out.redo_sec[i];
    r.redo_bytes = out.redo_bytes[i];
    r.session.shard_handoffs = out.handoffs[i];
    r.session.handoff_recovery = r.recovery;
    r.session.redo_service_sec = r.redo_sec;
    r.session.redo_bytes = r.redo_bytes;
    if (r.handoffs > 0) {
      metrics.recovery_sec_total += out.recovery_sec[i];
      metrics.recovery_sec_max =
          std::max(metrics.recovery_sec_max, out.recovery_sec[i]);
    }
    olts.push_back(r.olt.sec());
    waits.push_back(r.queue_wait.sec());
    metrics.energy_j_total += r.session.radio.total.j();
    metrics.fault_retransmits += r.session.retransmits;
    metrics.fault_drops += r.session.fault_drops;
    metrics.fault_deferrals += r.session.fault_deferrals;
    metrics.direct_fetches += r.session.direct_fetches;
    if (r.session.degraded) ++metrics.degraded_sessions;
  }
  metrics.admitted = static_cast<int>(admitted.size());
  metrics.shed = static_cast<int>(specs.size() - admitted.size());
  if (!olts.empty()) {
    metrics.olt_p50 = util::percentile(olts, 50.0);
    metrics.olt_p95 = util::percentile(olts, 95.0);
    metrics.olt_p99 = util::percentile(olts, 99.0);
    metrics.wait_p50 = util::percentile(waits, 50.0);
    metrics.wait_p95 = util::percentile(waits, 95.0);
    metrics.wait_p99 = util::percentile(waits, 99.0);
  }
  ShardedFleetStats st = fleet.stats();
  metrics.store = st.l1_total();
  if (config.shards > 1) metrics.l1_shards = st.l1;
  metrics.l2 = st.l2;
  metrics.compute = st.compute;
  metrics.crash_handoffs = st.crash_handoffs;
  metrics.crash_killed_tasks = st.crash_killed_tasks;
  metrics.redo_sec_total = st.redo_sec_total;
  metrics.redo_bytes_total = st.redo_bytes_total;
  metrics.proxy_busy_sec = metrics.compute.busy_sec();
  metrics.fetch_parse_sec = metrics.compute.fetch_parse_sec();
  return metrics;
}

}  // namespace parcel::fleet
