#include "fleet/fleet_runner.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/arena.hpp"
#include "core/parallel_runner.hpp"
#include "fleet/epoch_plan.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "web/parse_cache.hpp"

namespace parcel::fleet {

void FleetConfig::validate() const {
  if (clients < 1) {
    throw std::invalid_argument("FleetConfig: clients must be >= 1, got " +
                                std::to_string(clients));
  }
  if (mean_interarrival < util::Duration::zero()) {
    throw std::invalid_argument(
        "FleetConfig: mean_interarrival must be >= 0");
  }
  if (store_capacity < 0) {
    throw std::invalid_argument("FleetConfig: store_capacity must be >= 0");
  }
  if (epoch_min_sessions < 1) {
    throw std::invalid_argument(
        "FleetConfig: epoch_min_sessions must be >= 1");
  }
  compute.validate();
  base.testbed.faults.validate();
}

ClientColumns derive_client_columns(const FleetConfig& config,
                                    std::size_t corpus_pages) {
  config.validate();
  if (corpus_pages == 0) {
    throw std::invalid_argument("derive_client_columns: corpus is empty");
  }
  // One dedicated stream for arrivals: adding clients never perturbs the
  // per-session seeds, which are pure functions of the client index.
  util::Rng arrivals(config.arrival_seed);
  ClientColumns cols;
  auto n = static_cast<std::size_t>(config.clients);
  cols.arrival_sec.reserve(n);
  cols.page_index.reserve(n);
  cols.seed.reserve(n);
  cols.fade_seed.reserve(n);
  util::TimePoint t = util::TimePoint::origin();
  for (int k = 0; k < config.clients; ++k) {
    if (k > 0 && !config.mean_interarrival.is_zero()) {
      t += util::Duration::seconds(
          arrivals.exponential(config.mean_interarrival.sec()));
    }
    auto uk = static_cast<std::uint64_t>(k);
    cols.arrival_sec.push_back(t.sec());
    // Round-robin over the corpus: the repeated-page pattern that makes
    // shared-store warming visible as K grows past the corpus size.
    cols.page_index.push_back(
        static_cast<std::uint32_t>(static_cast<std::size_t>(k) % corpus_pages));
    // Same shape as the single-client harness's grid derivation: distinct
    // deterministic seeds per slot, derived from the base seed only.
    cols.seed.push_back(config.base.seed + 1000003ULL * uk + 1);
    cols.fade_seed.push_back(config.base.testbed.fade_seed + 7919ULL * uk + 1);
  }
  return cols;
}

std::vector<ClientSpec> derive_clients(const FleetConfig& config,
                                       std::size_t corpus_pages) {
  ClientColumns cols = derive_client_columns(config, corpus_pages);
  std::vector<ClientSpec> specs;
  specs.reserve(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    ClientSpec spec;
    spec.client = static_cast<int>(k);
    spec.page_index = cols.page_index[k];
    spec.scheme = config.scheme;
    spec.arrival = util::TimePoint::at_seconds(cols.arrival_sec[k]);
    spec.config = config.base;
    spec.config.seed = cols.seed[k];
    spec.config.testbed.fade_seed = cols.fade_seed[k];
    specs.push_back(std::move(spec));
  }
  return specs;
}

namespace {

/// SoA view of the macro timeline's inputs (ISSUE 7 satellite). `client`
/// and `weight` may be empty: the id then defaults to the local index and
/// the weight to 1.0 (derived fleets — WFQ state stays epoch-sized).
struct MacroColumns {
  std::span<const double> arrival_sec;
  std::span<const std::uint32_t> page_index;
  std::span<const int> client;
  std::span<const double> weight;
};

/// SoA macro outputs, indexed like the columns.
struct MacroOut {
  std::vector<std::uint8_t> shed;
  std::vector<double> max_wait_sec;
  std::vector<double> done_sec;
  explicit MacroOut(std::size_t n)
      : shed(n, 0), max_wait_sec(n, 0.0), done_sec(n, 0.0) {}
};

/// One macro timeline over clients [0, cols.size()): schedule arrivals,
/// admission-control whole batches (503-style), route object needs
/// through the shared store, submit surviving work to the compute pool.
/// Exact and streaming modes, and every epoch, all run this same loop.
void run_macro(const std::vector<const web::WebPage*>& corpus,
               const MacroColumns& cols, sim::Scheduler& sched,
               ProxyCompute& compute, SharedObjectStore& store,
               MacroOut& out) {
  const std::size_t n = cols.arrival_sec.size();
  for (std::size_t i = 0; i < n; ++i) {
    sched.schedule_at(
        util::TimePoint::at_seconds(cols.arrival_sec[i]), [&, i] {
          const web::WebPage& page = *corpus[cols.page_index[i]];
          const std::vector<const web::WebObject*>& objects = page.objects();

          // Admission control: size the whole task batch first (a client
          // is either served or refused, never half-queued). Misses cost
          // a fetch plus, for text bodies, a parse/scan; the per-session
          // bundle assembly is always the client's own work.
          std::size_t batch = 1;
          util::Duration batch_cost =
              compute.cost_of(TaskKind::kBundle, page.total_bytes());
          for (const web::WebObject* object : objects) {
            if (!store.contains(*object)) {
              batch += web::is_parseable(object->type) ? 2u : 1u;
              batch_cost += compute.cost_of(TaskKind::kFetch, object->size);
              if (web::is_parseable(object->type)) {
                batch_cost += compute.cost_of(TaskKind::kParse, object->size);
              }
            }
          }
          if (!compute.can_accept(batch, batch_cost)) {
            out.shed[i] = 1;
            return;
          }

          int client =
              cols.client.empty() ? static_cast<int>(i) : cols.client[i];
          double weight = cols.weight.empty() ? 1.0 : cols.weight[i];
          auto on_done = [&out, i](util::TimePoint finished,
                                   util::Duration waited) {
            out.max_wait_sec[i] = std::max(out.max_wait_sec[i], waited.sec());
            out.done_sec[i] = std::max(out.done_sec[i], finished.sec());
          };
          for (const web::WebObject* object : objects) {
            SharedObjectStore::Outcome outcome = store.request(*object);
            if (outcome.hit) continue;  // served from the shared store
            compute.submit(client, weight, TaskKind::kFetch, object->size,
                           on_done);
            if (web::is_parseable(object->type)) {
              compute.submit(client, weight, TaskKind::kParse, object->size,
                             on_done);
            }
          }
          compute.submit(client, weight, TaskKind::kBundle, page.total_bytes(),
                         on_done);
        });
  }
  sched.run();
}

/// Per-epoch streaming aggregate: everything a finished epoch contributes
/// to FleetMetrics, plus the state the boundary invariant check needs.
struct EpochAgg {
  explicit EpochAgg(const core::LogHistogram::Layout& layout)
      : olt(layout), tlt(layout), wait(layout), energy(layout) {}

  int admitted = 0;
  int shed = 0;
  std::uint64_t sessions_ok = 0;
  core::StreamingStats olt, tlt, wait, energy;
  SharedObjectStore::Stats store;
  ProxyCompute::Stats compute;
  SharedObjectStore end_store;  // contents at epoch end (counters zero)
};

/// Simulate one epoch end-to-end on the calling thread: macro timeline
/// from the starting store snapshot, then every admitted micro-sim in
/// client order, folding each result into the sketches the moment it
/// completes — the RunResult is dropped before the next session runs.
EpochAgg run_epoch(const std::vector<const web::WebPage*>& corpus,
                   const ClientColumns& cols, EpochPlan::Epoch epoch,
                   const SharedObjectStore& start_store,
                   const FleetConfig& config, const sim::FaultPlan* plan) {
  EpochAgg agg(config.sketch);
  const std::size_t n = epoch.end - epoch.begin;

  core::Arena arena;
  core::ArenaScope scope(arena);
  sim::Scheduler sched;
  ProxyCompute compute(sched, config.compute, plan);
  SharedObjectStore store = start_store.fork_contents();

  MacroColumns mc;
  mc.arrival_sec =
      std::span<const double>(cols.arrival_sec).subspan(epoch.begin, n);
  mc.page_index =
      std::span<const std::uint32_t>(cols.page_index).subspan(epoch.begin, n);
  MacroOut out(n);
  run_macro(corpus, mc, sched, compute, store, out);

  for (std::size_t j = 0; j < n; ++j) {
    if (out.shed[j] != 0) {
      ++agg.shed;
      continue;
    }
    ++agg.admitted;
    std::size_t i = epoch.begin + j;
    core::RunConfig cfg = config.base;
    cfg.seed = cols.seed[i];
    cfg.testbed.fade_seed = cols.fade_seed[i];
    core::RunResult r = core::ExperimentRunner::run(
        config.scheme, *corpus[cols.page_index[i]], cfg);
    double w = out.max_wait_sec[j];
    agg.olt.add(r.olt.sec() + w);
    agg.tlt.add(r.tlt.sec() + w);
    agg.wait.add(w);
    agg.energy.add(r.radio.total.j());
    if (r.ok) ++agg.sessions_ok;
  }

  agg.store = store.stats();
  agg.compute = compute.stats();
  agg.end_store = store.fork_contents();
  // Per-session content (bundle-unpacked objects) pins parse-cache
  // entries that can never hit again; without this per-epoch sweep the
  // cache footprint grows linearly in K and the bounded-memory claim of
  // streaming mode is void. Corpus artifacts survive (their owners still
  // pin them), so warm-cache behavior is unchanged.
  web::ParseCache::instance().sweep_transient();
  return agg;
}

/// Fold one epoch into the metrics. Called in epoch-index order on the
/// main thread, so every sum (integer and double) has one fixed fold
/// order and the result is bitwise independent of --jobs.
void fold_epoch(FleetMetrics& m, const EpochAgg& agg) {
  m.admitted += agg.admitted;
  m.shed += agg.shed;
  m.sessions_ok += agg.sessions_ok;
  m.olt_stats.merge(agg.olt);
  m.tlt_stats.merge(agg.tlt);
  m.wait_stats.merge(agg.wait);
  m.energy_stats.merge(agg.energy);
  m.store.hits += agg.store.hits;
  m.store.misses += agg.store.misses;
  m.store.evictions += agg.store.evictions;
  m.store.bytes_saved += agg.store.bytes_saved;
  m.compute.completed += agg.compute.completed;
  m.compute.fetch_busy_sec += agg.compute.fetch_busy_sec;
  m.compute.parse_busy_sec += agg.compute.parse_busy_sec;
  m.compute.bundle_busy_sec += agg.compute.bundle_busy_sec;
  m.compute.last_finish =
      std::max(m.compute.last_finish, agg.compute.last_finish);
}

FleetMetrics run_fleet_streaming(const std::vector<const web::WebPage*>& corpus,
                                 const FleetConfig& config) {
  ClientColumns cols = derive_client_columns(config, corpus.size());
  EpochPlan plan = plan_epochs(corpus, cols, config);
  const sim::FaultPlan* fault_plan =
      config.base.testbed.faults.enabled() ? &config.base.testbed.faults
                                           : nullptr;

  FleetMetrics m;
  m.streaming = true;
  m.epochs = static_cast<int>(plan.epochs.size());
  m.epoch_parallel = plan.parallel && plan.epochs.size() > 1;
  m.epoch_degrade_reason = plan.degrade_reason;
  m.olt_stats = core::StreamingStats(config.sketch);
  m.tlt_stats = core::StreamingStats(config.sketch);
  m.wait_stats = core::StreamingStats(config.sketch);
  m.energy_stats = core::StreamingStats(config.sketch);

  if (m.epoch_parallel) {
    // Serial pre-pass: the store's evolution is a pure function of the
    // spec sequence here (no shedding possible — plan_epochs degrades
    // otherwise), so replaying only the store requests yields every
    // epoch's starting snapshot without simulating anything else.
    std::vector<SharedObjectStore> starts;
    starts.reserve(plan.epochs.size());
    SharedObjectStore replay(config.store_capacity);
    for (const EpochPlan::Epoch& epoch : plan.epochs) {
      starts.push_back(replay.fork_contents());
      for (std::size_t i = epoch.begin; i < epoch.end; ++i) {
        for (const web::WebObject* object :
             corpus[cols.page_index[i]]->objects()) {
          replay.request(*object);
        }
      }
    }

    std::vector<EpochAgg> aggs(plan.epochs.size(), EpochAgg(config.sketch));
    core::ParallelRunner runner(config.jobs);
    runner.for_each_index(plan.epochs.size(), [&](std::size_t e) {
      aggs[e] = run_epoch(corpus, cols, plan.epochs[e], starts[e], config,
                          fault_plan);
    });

    // The non-interaction argument is checked, not assumed: every epoch's
    // pool must have drained strictly before the next epoch's first
    // arrival, and its ending store must be the snapshot the next epoch
    // started from. A violation is a planner bug, not a data error.
    for (std::size_t e = 0; e + 1 < plan.epochs.size(); ++e) {
      double next_arrival = cols.arrival_sec[plan.epochs[e + 1].begin];
      if (aggs[e].compute.completed != 0 &&
          aggs[e].compute.last_finish.sec() >= next_arrival) {
        throw std::logic_error(
            "fleet epoch invariant violated: epoch " + std::to_string(e) +
            " finished work at t=" +
            std::to_string(aggs[e].compute.last_finish.sec()) +
            " >= next epoch arrival t=" + std::to_string(next_arrival));
      }
      if (!aggs[e].end_store.contents_equal(starts[e + 1])) {
        throw std::logic_error(
            "fleet epoch invariant violated: epoch " + std::to_string(e) +
            " ending store differs from the next epoch's snapshot");
      }
    }

    for (const EpochAgg& agg : aggs) fold_epoch(m, agg);
    if (!aggs.empty()) {
      m.store.bytes_stored = aggs.back().store.bytes_stored;
    }
  } else {
    // One serial timeline (admission bounds, blackouts, or a fleet too
    // small to split): the macro phase is the exact-mode loop, but the
    // micro phase still streams — sessions fan out in bounded blocks and
    // fold in client order, so memory is O(block), not O(K).
    core::Arena macro_arena;
    core::ArenaScope macro_scope(macro_arena);
    sim::Scheduler sched;
    ProxyCompute compute(sched, config.compute, fault_plan);
    SharedObjectStore store(config.store_capacity);
    MacroColumns mc;
    mc.arrival_sec = cols.arrival_sec;
    mc.page_index = cols.page_index;
    MacroOut out(cols.size());
    run_macro(corpus, mc, sched, compute, store, out);

    EpochAgg agg(config.sketch);
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (out.shed[i] != 0) {
        ++agg.shed;
      } else {
        admitted.push_back(i);
      }
    }
    agg.admitted = static_cast<int>(admitted.size());
    constexpr std::size_t kBlock = 256;
    for (std::size_t b = 0; b < admitted.size(); b += kBlock) {
      std::size_t block_end = std::min(admitted.size(), b + kBlock);
      std::vector<core::ExperimentTask> tasks;
      tasks.reserve(block_end - b);
      for (std::size_t s = b; s < block_end; ++s) {
        std::size_t i = admitted[s];
        core::RunConfig cfg = config.base;
        cfg.seed = cols.seed[i];
        cfg.testbed.fade_seed = cols.fade_seed[i];
        tasks.push_back(core::ExperimentTask{
            config.scheme, corpus[cols.page_index[i]], cfg});
      }
      std::vector<core::RunResult> results =
          core::run_experiments(tasks, config.jobs);
      for (std::size_t s = b; s < block_end; ++s) {
        const core::RunResult& r = results[s - b];
        double w = out.max_wait_sec[admitted[s]];
        agg.olt.add(r.olt.sec() + w);
        agg.tlt.add(r.tlt.sec() + w);
        agg.wait.add(w);
        agg.energy.add(r.radio.total.j());
        if (r.ok) ++agg.sessions_ok;
      }
      // Same bounded-memory discipline as run_epoch: the block's sessions
      // are done, so their transient parse-cache pins are dead weight.
      web::ParseCache::instance().sweep_transient();
    }
    agg.store = store.stats();
    agg.compute = compute.stats();
    fold_epoch(m, agg);
    m.store.bytes_stored = agg.store.bytes_stored;
  }

  m.olt_p50 = m.olt_stats.quantile(50.0);
  m.olt_p95 = m.olt_stats.quantile(95.0);
  m.olt_p99 = m.olt_stats.quantile(99.0);
  m.wait_p50 = m.wait_stats.quantile(50.0);
  m.wait_p95 = m.wait_stats.quantile(95.0);
  m.wait_p99 = m.wait_stats.quantile(99.0);
  m.energy_j_total = m.energy_stats.sum();
  m.proxy_busy_sec = m.compute.busy_sec();
  m.fetch_parse_sec = m.compute.fetch_parse_sec();
  return m;
}

}  // namespace

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const FleetConfig& config) {
  if (config.streaming) {
    config.validate();
    if (corpus.empty()) {
      throw std::invalid_argument("run_fleet: corpus is empty");
    }
    return run_fleet_streaming(corpus, config);
  }
  return run_fleet(corpus, derive_clients(config, corpus.size()), config);
}

FleetMetrics run_fleet(const std::vector<const web::WebPage*>& corpus,
                       const std::vector<ClientSpec>& specs,
                       const FleetConfig& config) {
  config.validate();
  if (config.streaming) {
    throw std::invalid_argument(
        "run_fleet: streaming mode derives its own clients; use the "
        "corpus-only overload");
  }
  if (corpus.empty()) {
    throw std::invalid_argument("run_fleet: corpus is empty");
  }
  for (const ClientSpec& spec : specs) {
    if (spec.page_index >= corpus.size()) {
      throw std::invalid_argument(
          "run_fleet: client page_index out of range: " +
          std::to_string(spec.page_index));
    }
  }

  // ---- Macro phase: one shared timeline for arrivals, the store, and
  // proxy compute. Serial by construction; depends only on the corpus
  // pages and the specs, never on micro-run outputs. The macro scheduler
  // heap bumps out of its own arena; micro-runs install per-run arenas of
  // their own inside ExperimentRunner::run (worker threads, nested fine).
  // Explicit specs may carry arbitrary client ids/weights, so those two
  // columns are materialized from the AoS records here.
  core::Arena macro_arena;
  core::ArenaScope macro_scope(macro_arena);
  sim::Scheduler sched;
  const sim::FaultPlan* fault_plan =
      config.base.testbed.faults.enabled() ? &config.base.testbed.faults
                                           : nullptr;
  ProxyCompute compute(sched, config.compute, fault_plan);
  SharedObjectStore store(config.store_capacity);

  std::vector<double> arrival_sec;
  std::vector<std::uint32_t> page_index;
  std::vector<int> client;
  std::vector<double> weight;
  arrival_sec.reserve(specs.size());
  page_index.reserve(specs.size());
  client.reserve(specs.size());
  weight.reserve(specs.size());
  for (const ClientSpec& spec : specs) {
    arrival_sec.push_back(spec.arrival.sec());
    page_index.push_back(static_cast<std::uint32_t>(spec.page_index));
    client.push_back(spec.client);
    weight.push_back(spec.weight);
  }
  MacroColumns mc{arrival_sec, page_index, client, weight};
  MacroOut out(specs.size());
  run_macro(corpus, mc, sched, compute, store, out);

  // ---- Micro phase: one independent session simulation per admitted
  // client, fanned out across the parallel runner (slot-indexed, so any
  // jobs value is bitwise identical).
  std::vector<std::size_t> admitted;
  std::vector<core::ExperimentTask> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (out.shed[i] != 0) continue;
    admitted.push_back(i);
    tasks.push_back(core::ExperimentTask{specs[i].scheme,
                                         corpus[specs[i].page_index],
                                         specs[i].config});
  }
  std::vector<core::RunResult> sessions =
      core::run_experiments(tasks, config.jobs);

  // ---- Merge.
  FleetMetrics metrics;
  metrics.clients.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    FleetClientResult& r = metrics.clients[i];
    r.client = specs[i].client;
    r.page_index = specs[i].page_index;
    r.arrival = specs[i].arrival;
    r.shed = out.shed[i] != 0;
  }
  std::vector<double> olts, waits;
  olts.reserve(admitted.size());
  waits.reserve(admitted.size());
  for (std::size_t s = 0; s < admitted.size(); ++s) {
    std::size_t i = admitted[s];
    FleetClientResult& r = metrics.clients[i];
    r.queue_wait = util::Duration::seconds(out.max_wait_sec[i]);
    r.proxy_done = util::TimePoint::at_seconds(out.done_sec[i]);
    r.session = std::move(sessions[s]);
    // Fleet-adjusted timeline: the contention the session sim cannot see
    // is exactly the time this client's work sat waiting at the proxy.
    r.olt = r.session.olt + r.queue_wait;
    r.tlt = r.session.tlt + r.queue_wait;
    olts.push_back(r.olt.sec());
    waits.push_back(r.queue_wait.sec());
    metrics.energy_j_total += r.session.radio.total.j();
  }
  metrics.admitted = static_cast<int>(admitted.size());
  metrics.shed = static_cast<int>(specs.size() - admitted.size());
  if (!olts.empty()) {
    metrics.olt_p50 = util::percentile(olts, 50.0);
    metrics.olt_p95 = util::percentile(olts, 95.0);
    metrics.olt_p99 = util::percentile(olts, 99.0);
    metrics.wait_p50 = util::percentile(waits, 50.0);
    metrics.wait_p95 = util::percentile(waits, 95.0);
    metrics.wait_p99 = util::percentile(waits, 99.0);
  }
  metrics.store = store.stats();
  metrics.compute = compute.stats();
  metrics.proxy_busy_sec = metrics.compute.busy_sec();
  metrics.fetch_parse_sec = metrics.compute.fetch_parse_sec();
  return metrics;
}

}  // namespace parcel::fleet
