#include "fleet/shared_store.hpp"

namespace parcel::fleet {

SharedObjectStore::Key SharedObjectStore::key_for(
    const web::WebObject& object) {
  Key key;
  key.size = object.size;
  if (object.content) {
    key.data = object.content->data();
    key.aux = object.content->size();
    key.opaque = false;
  } else {
    key.data = nullptr;
    key.aux = object.url.id().v;
    key.opaque = true;
  }
  return key;
}

bool SharedObjectStore::contains(const web::WebObject& object) const {
  return entries_.find(key_for(object)) != entries_.end();
}

SharedObjectStore::Outcome SharedObjectStore::request(
    const web::WebObject& object) {
  Key key = key_for(object);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    stats_.bytes_saved += it->second.size;
    return Outcome{true, it->second.size};
  }
  ++stats_.misses;
  Entry entry;
  entry.size = object.size;
  entry.pin = object.content;
  stats_.bytes_stored += entry.size;
  entries_.emplace(key, std::move(entry));
  fifo_.push_back(key);
  evict_to_fit();
  return Outcome{false, 0};
}

void SharedObjectStore::evict_to_fit() {
  if (capacity_bytes_ <= 0) return;
  // FIFO: evict oldest-inserted entries until we fit, but never the entry
  // just inserted (a single object larger than capacity passes through).
  while (stats_.bytes_stored > capacity_bytes_ && fifo_.size() > 1) {
    Key victim = fifo_.front();
    fifo_.pop_front();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    stats_.bytes_stored -= it->second.size;
    entries_.erase(it);
    ++stats_.evictions;
  }
}

SharedObjectStore SharedObjectStore::fork_contents() const {
  SharedObjectStore fork(capacity_bytes_);
  fork.entries_ = entries_;
  fork.fifo_ = fifo_;
  // bytes_stored is resident state (evict_to_fit keys on it), not a
  // counter; everything else restarts at zero for the new epoch.
  fork.stats_.bytes_stored = stats_.bytes_stored;
  return fork;
}

bool SharedObjectStore::contents_equal(const SharedObjectStore& other) const {
  if (capacity_bytes_ != other.capacity_bytes_ ||
      entries_.size() != other.entries_.size() ||
      stats_.bytes_stored != other.stats_.bytes_stored ||
      fifo_ != other.fifo_) {
    return false;
  }
  // parcel-lint: allow(unordered-iter) order-independent conjunction: every entry is looked up in the other map, so iteration order cannot reach the result
  for (const auto& [key, entry] : entries_) {
    auto it = other.entries_.find(key);
    if (it == other.entries_.end() || it->second.size != entry.size) {
      return false;
    }
  }
  return true;
}

void SharedObjectStore::clear() {
  entries_.clear();
  fifo_.clear();
  stats_.bytes_stored = 0;
}

}  // namespace parcel::fleet
