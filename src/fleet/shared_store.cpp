#include "fleet/shared_store.hpp"

namespace parcel::fleet {

SharedObjectStore::Key SharedObjectStore::key_for(
    const web::WebObject& object) {
  Key key;
  key.size = object.size;
  if (object.content) {
    key.data = object.content->data();
    key.aux = object.content->size();
    key.opaque = false;
  } else {
    key.data = nullptr;
    key.aux = object.url.id().v;
    key.opaque = true;
  }
  return key;
}

bool SharedObjectStore::contains(const web::WebObject& object) const {
  return entries_.find(key_for(object)) != entries_.end();
}

SharedObjectStore::Outcome SharedObjectStore::request(
    const web::WebObject& object) {
  Key key = key_for(object);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    stats_.bytes_saved += it->second.size;
    return Outcome{true, it->second.size};
  }
  ++stats_.misses;
  Entry entry;
  entry.size = object.size;
  entry.pin = object.content;
  stats_.bytes_stored += entry.size;
  entries_.emplace(key, std::move(entry));
  fifo_.push_back(key);
  evict_to_fit();
  return Outcome{false, 0};
}

void SharedObjectStore::evict_to_fit() {
  if (capacity_bytes_ <= 0) return;
  // FIFO: evict oldest-inserted entries until we fit, but never the entry
  // just inserted (a single object larger than capacity passes through).
  while (stats_.bytes_stored > capacity_bytes_ && fifo_.size() > 1) {
    Key victim = fifo_.front();
    fifo_.pop_front();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    stats_.bytes_stored -= it->second.size;
    entries_.erase(it);
    ++stats_.evictions;
  }
}

void SharedObjectStore::clear() {
  entries_.clear();
  fifo_.clear();
  stats_.bytes_stored = 0;
}

}  // namespace parcel::fleet
