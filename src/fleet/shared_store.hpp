// SharedObjectStore: the per-proxy artifact cache a fleet of sessions
// shares (ISSUE 5, tentpole a).
//
// The paper evaluates one client against one proxy, but its premise is a
// well-provisioned proxy serving *many* cellular users. The first user to
// load a page makes the proxy fetch every object and parse/scan the text
// ones; once those artifacts exist, later sessions of the same page need
// neither the origin fetch nor the re-parse — exactly the warming effect
// web::ParseCache exploits within one process, lifted to the fleet model
// as a first-class simulated resource with hit/miss/byte-saved accounting.
//
// Keying follows ParseCache's content identity: replayed corpus snapshots
// hold their text bodies in immutable shared strings created once, so the
// (data pointer, length) of an object's content names its bytes uniquely;
// the entry retains the owning shared_ptr so the keyed address can never
// be recycled while the entry lives. Opaque bodies (images, media — no
// content string in the model) are keyed by interned URL id + size.
//
// Capacity is optional (capacity_bytes = 0 means unbounded); a bounded
// store evicts in strict insertion (FIFO) order, so eviction — like every
// other part of the fleet model — is a pure function of the request
// sequence and replays bit-for-bit.
//
// Lock discipline (DESIGN.md §14.3): none, by contract. The store
// belongs to the fleet macro-simulation, which runs on a single
// sim::Scheduler timeline; the per-client micro-simulations fanned out
// by core::ParallelRunner never touch it. There is deliberately no mutex
// here — adding one would hide a layering mistake (macro-state reached
// from a worker thread) instead of crashing loudly under TSan. If fleet
// state ever does need a lock, use util::Mutex and annotate the guarded
// members with PARCEL_GUARDED_BY (src/util/thread_annotations.hpp);
// parcel-lint's mutex-unannotated rule enforces this for src/fleet.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "net/url.hpp"
#include "util/units.hpp"
#include "web/object.hpp"

namespace parcel::fleet {

class SharedObjectStore {
 public:
  explicit SharedObjectStore(util::Bytes capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Would a request for `object` hit the store right now? (No state
  /// change — admission control peeks before a client commits.)
  [[nodiscard]] bool contains(const web::WebObject& object) const;

  struct Outcome {
    bool hit = false;
    /// Origin bytes the proxy did NOT have to move because of the hit.
    util::Bytes bytes_saved = 0;
  };

  /// Record one session's need for `object`: a hit bumps the counters and
  /// saves the fetch; a miss inserts the artifact (evicting FIFO if over
  /// capacity) so the *next* session hits.
  Outcome request(const web::WebObject& object);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    util::Bytes bytes_saved = 0;   // cumulative, over all hits
    util::Bytes bytes_stored = 0;  // currently resident
    [[nodiscard]] double hit_rate() const {
      std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }
  [[nodiscard]] util::Bytes capacity_bytes() const { return capacity_bytes_; }

  /// Drop every entry; counters are kept (a fleet run's totals survive).
  void clear();

  /// Contents-only copy for epoch-parallel fleet execution (ISSUE 7): the
  /// resident entries, their FIFO eviction order, capacity and
  /// bytes_stored carry over; the hit/miss/eviction/bytes_saved counters
  /// start at zero so per-epoch stats merge by plain summation.
  [[nodiscard]] SharedObjectStore fork_contents() const;

  /// Same resident contents (keys, sizes, FIFO order) and capacity?
  /// Counters are ignored — this is the epoch boundary invariant check:
  /// epoch E's ending store must equal epoch E+1's starting snapshot.
  [[nodiscard]] bool contents_equal(const SharedObjectStore& other) const;

 private:
  // Content identity: text bodies key on (data pointer, length) — the
  // ParseCache identity — and opaque bodies on (url id, length) with a
  // null pointer. The two spaces cannot collide (live pointers are
  // non-null and never equal a hash value reinterpreted as an address
  // because the pointer field disambiguates via `opaque`).
  struct Key {
    const char* data = nullptr;
    std::uint64_t aux = 0;  // length for text; url-id for opaque
    util::Bytes size = 0;
    bool opaque = false;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = std::hash<const void*>{}(k.data);
      h ^= k.aux + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<std::size_t>(k.size) + (h << 6) + (h >> 2);
      return h;
    }
  };
  struct Entry {
    util::Bytes size = 0;
    /// Keeps the keyed content address alive (null for opaque bodies).
    std::shared_ptr<const std::string> pin;
  };

  static Key key_for(const web::WebObject& object);
  void evict_to_fit();

  util::Bytes capacity_bytes_ = 0;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  /// Insertion order for FIFO eviction (never iterated out of order).
  std::deque<Key> fifo_;
  Stats stats_;
};

}  // namespace parcel::fleet
