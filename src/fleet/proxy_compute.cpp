#include "fleet/proxy_compute.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace parcel::fleet {

std::string_view to_string(TaskKind k) {
  switch (k) {
    case TaskKind::kFetch: return "fetch";
    case TaskKind::kParse: return "parse";
    case TaskKind::kBundle: return "bundle";
    case TaskKind::kTransfer: return "transfer";
  }
  return "?";
}

Duration TaskCosts::service_time(TaskKind kind, Bytes bytes) const {
  double b = static_cast<double>(bytes);
  switch (kind) {
    case TaskKind::kFetch:
      return fetch_base + (fetch_bytes_per_sec > 0.0
                               ? Duration::seconds(b / fetch_bytes_per_sec)
                               : Duration::zero());
    case TaskKind::kParse:
      return parse_base + (parse_bytes_per_sec > 0.0
                               ? Duration::seconds(b / parse_bytes_per_sec)
                               : Duration::zero());
    case TaskKind::kBundle:
      return bundle_base + (bundle_bytes_per_sec > 0.0
                                ? Duration::seconds(b / bundle_bytes_per_sec)
                                : Duration::zero());
    case TaskKind::kTransfer:
      return transfer_base +
             (transfer_bytes_per_sec > 0.0
                  ? Duration::seconds(b / transfer_bytes_per_sec)
                  : Duration::zero());
  }
  return Duration::zero();
}

TaskCosts TaskCosts::idle() {
  TaskCosts costs;
  costs.fetch_base = Duration::zero();
  costs.fetch_bytes_per_sec = 0.0;
  costs.parse_base = Duration::zero();
  costs.parse_bytes_per_sec = 0.0;
  costs.bundle_base = Duration::zero();
  costs.bundle_bytes_per_sec = 0.0;
  costs.transfer_base = Duration::zero();
  costs.transfer_bytes_per_sec = 0.0;
  return costs;
}

ProxyComputeConfig ProxyComputeConfig::idle() {
  ProxyComputeConfig cfg;
  cfg.workers = 1;
  cfg.policy = QueuePolicy::kFifo;
  cfg.max_queue = 0;
  cfg.costs = TaskCosts::idle();
  return cfg;
}

void ProxyComputeConfig::validate() const {
  if (workers < 1) {
    throw std::invalid_argument(
        "ProxyComputeConfig: workers must be >= 1, got " +
        std::to_string(workers));
  }
  if (costs.fetch_base < Duration::zero() ||
      costs.parse_base < Duration::zero() ||
      costs.bundle_base < Duration::zero() ||
      costs.transfer_base < Duration::zero()) {
    throw std::invalid_argument(
        "ProxyComputeConfig: base service costs must be >= 0");
  }
  if (costs.fetch_bytes_per_sec < 0.0 || costs.parse_bytes_per_sec < 0.0 ||
      costs.bundle_bytes_per_sec < 0.0 ||
      costs.transfer_bytes_per_sec < 0.0) {
    throw std::invalid_argument(
        "ProxyComputeConfig: byte rates must be >= 0 (0 disables the "
        "byte-proportional term)");
  }
  if (max_backlog < Duration::zero()) {
    throw std::invalid_argument(
        "ProxyComputeConfig: max_backlog must be >= 0 (zero disables it)");
  }
}

ProxyCompute::ProxyCompute(sim::Scheduler& sched, ProxyComputeConfig config,
                           const sim::FaultPlan* faults)
    : sched_(sched), config_(config), faults_(faults) {
  config_.validate();
  idle_workers_ = config_.workers;
}

bool ProxyCompute::can_accept(std::size_t tasks, Duration batch_cost) const {
  if (dead_) return false;  // a crashed shard serves nothing
  if (config_.max_queue != 0 &&
      queue_.size() + tasks > config_.max_queue) {
    return false;
  }
  if (!config_.max_backlog.is_zero() &&
      backlog_ + batch_cost > config_.max_backlog) {
    return false;
  }
  return true;
}

void ProxyCompute::submit(int client, double weight, TaskKind kind,
                          Bytes bytes, Done done) {
  Task task;
  task.seq = next_seq_++;
  task.client = client;
  task.kind = kind;
  task.cost = config_.costs.service_time(kind, bytes);
  task.submitted = sched_.now();
  if (config_.policy == QueuePolicy::kWeightedFair) {
    // Classic virtual-time WFQ: a client's next task finishes (in virtual
    // time) cost/weight after the later of "now" and its previous finish.
    if (client >= 0 &&
        static_cast<std::size_t>(client) >= client_vfinish_.size()) {
      client_vfinish_.resize(static_cast<std::size_t>(client) + 1, 0.0);
    }
    double v = sched_.now().sec();
    double w = weight > 0.0 ? weight : 1.0;
    double start_v =
        client >= 0
            ? std::max(v, client_vfinish_[static_cast<std::size_t>(client)])
            : v;
    task.virtual_finish = start_v + task.cost.sec() / w;
    if (client >= 0) {
      client_vfinish_[static_cast<std::size_t>(client)] = task.virtual_finish;
    }
  }
  task.done = std::move(done);
  backlog_ += task.cost;
  queue_.push_back(std::move(task));
  dispatch();
}

std::size_t ProxyCompute::pick_next() const {
  if (config_.policy == QueuePolicy::kFifo) {
    // Queue is append-only in seq order; the head is the oldest.
    return 0;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const Task& cand = queue_[i];
    const Task& cur = queue_[best];
    if (cand.virtual_finish < cur.virtual_finish ||
        (cand.virtual_finish == cur.virtual_finish && cand.seq < cur.seq)) {
      best = i;
    }
  }
  return best;
}

TimePoint ProxyCompute::defer_past_blackouts(TimePoint start) const {
  if (faults_ == nullptr) return start;
  // Windows may abut; walk until none contains the candidate start. The
  // vector is as the plan listed it (spec order), so this is deterministic.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const sim::FaultWindow& w : faults_->blackouts) {
      if (w.contains(start)) {
        start = w.end();
        moved = true;
      }
    }
  }
  return start;
}

std::size_t ProxyCompute::crash() {
  std::size_t in_flight =
      static_cast<std::size_t>(config_.workers - idle_workers_);
  std::size_t killed = queue_.size() + in_flight;
  // Queued work dies here; in-flight work dies at its completion event,
  // which voids itself via the generation bump below.
  queue_.clear();
  backlog_ = Duration::zero();
  dead_ = true;
  ++generation_;
  idle_workers_ = 0;
  stats_.crash_killed += killed;
  return killed;
}

void ProxyCompute::restart() {
  dead_ = false;
  // Every pre-crash in-flight task was voided, so the full worker pool is
  // idle again; anything queued while dead dispatches now.
  idle_workers_ = config_.workers;
  dispatch();
}

void ProxyCompute::dispatch() {
  while (!dead_ && idle_workers_ > 0 && !queue_.empty()) {
    std::size_t i = pick_next();
    Task task = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    backlog_ -= task.cost;
    --idle_workers_;
    TimePoint start = defer_past_blackouts(sched_.now());
    Duration waited = start - task.submitted;
    TimePoint finish = start + task.cost;
    double cost_sec = task.cost.sec();
    TaskKind kind = task.kind;
    // The completion event carries the task by value; the worker slot is
    // freed there, which may dispatch the next waiter. The captured
    // generation voids the event if the pool crashed after service began:
    // the work died with the process, so it contributes neither stats nor
    // its Done callback (crash() already reset the worker slots).
    sched_.schedule_at(finish, [this, finish, waited, cost_sec, kind,
                                gen = generation_,
                                done = std::move(task.done)]() mutable {
      if (gen != generation_) return;
      ++stats_.completed;
      stats_.last_finish = std::max(stats_.last_finish, finish);
      switch (kind) {
        case TaskKind::kFetch: stats_.fetch_busy_sec += cost_sec; break;
        case TaskKind::kParse: stats_.parse_busy_sec += cost_sec; break;
        case TaskKind::kBundle: stats_.bundle_busy_sec += cost_sec; break;
        case TaskKind::kTransfer: stats_.transfer_busy_sec += cost_sec; break;
      }
      waits_.add(waited.sec());
      ++idle_workers_;
      if (done) done(finish, waited);
      dispatch();
    });
  }
}

}  // namespace parcel::fleet
