#include "replay/replay_store.hpp"

#include "replay/normalizer.hpp"

namespace parcel::replay {

void ReplayStore::record(const web::WebPage& page) {
  auto snapshot = std::make_unique<web::WebPage>(page.main_url());
  for (const web::WebObject* obj : page.objects()) {
    web::WebObject copy = *obj;
    if (copy.content && UrlNormalizer::has_randomized_fetch(*copy.content)) {
      copy.content = std::make_shared<const std::string>(
          UrlNormalizer::normalize_js(*copy.content));
      ++rewrites_;
    }
    snapshot->add(std::move(copy));
  }
  pages_[page.main_url().str()] = std::move(snapshot);
}

const web::WebPage* ReplayStore::find(const std::string& main_url) const {
  auto it = pages_.find(main_url);
  return it == pages_.end() ? nullptr : it->second.get();
}

}  // namespace parcel::replay
