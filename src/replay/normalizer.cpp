#include "replay/normalizer.hpp"

#include "util/strings.hpp"

namespace parcel::replay {

net::Url UrlNormalizer::normalize(const net::Url& url) {
  if (url.query().empty()) return url;
  std::string kept;
  for (std::string_view param : util::split(url.query(), '&')) {
    if (param.starts_with("r=")) continue;
    if (!kept.empty()) kept += "&";
    kept += std::string(param);
  }
  std::string rebuilt = url.scheme() + "://" + url.host() + url.path();
  if (!kept.empty()) rebuilt += "?" + kept;
  return net::Url::parse(rebuilt);
}

std::string UrlNormalizer::normalize_js(const std::string& content) {
  static constexpr std::string_view kFrom = "fetchRand(";
  static constexpr std::string_view kTo = "fetch(";
  std::string out;
  out.reserve(content.size());
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t hit = content.find(kFrom, pos);
    if (hit == std::string::npos) {
      out.append(content, pos, content.size() - pos);
      break;
    }
    out.append(content, pos, hit - pos);
    out.append(kTo);
    pos = hit + kFrom.size();
  }
  // Preserve the wire size: replacing shrinks the text, pad with spaces.
  if (out.size() < content.size()) out.append(content.size() - out.size(), ' ');
  return out;
}

bool UrlNormalizer::has_randomized_fetch(const std::string& content) {
  return content.find("fetchRand(") != std::string::npos;
}

}  // namespace parcel::replay
