// ReplayStore: record a page once, replay the identical snapshot to every
// scheme (the paper's web-page-replay methodology, §7.3). Recording
// normalizes JS so randomized URLs become deterministic; the snapshot is
// then hosted by ordinary OriginServers, so replay and live modes differ
// only in page bytes and server placement — the schemes cannot tell.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "web/page.hpp"

namespace parcel::replay {

class ReplayStore {
 public:
  /// Snapshot `page` under its main URL. JS bodies with randomized
  /// fetches are rewritten; everything else is shared by reference.
  void record(const web::WebPage& page);

  [[nodiscard]] const web::WebPage* find(const std::string& main_url) const;
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// Number of objects whose content was rewritten during recording
  /// (exposed so tests can assert the normalization actually ran).
  [[nodiscard]] std::size_t rewrites() const { return rewrites_; }

 private:
  std::map<std::string, std::unique_ptr<web::WebPage>> pages_;
  std::size_t rewrites_ = 0;
};

}  // namespace parcel::replay
