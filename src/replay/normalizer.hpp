// URL/content normalization for record-and-replay (paper §7.3).
//
// The paper modified web-page-replay to replace JS-generated random URL
// components with constants so that every scheme requests byte-identical
// objects. Our equivalent: rewrite `fetchRand("u")` statements to
// `fetch("u")` in recorded JS bodies (padding to preserve byte size), and
// strip the cache-busting `r` query parameter when matching URLs.
#pragma once

#include <string>

#include "net/url.hpp"

namespace parcel::replay {

class UrlNormalizer {
 public:
  /// Remove cache-busting query parameters (`r=...`); other params kept.
  [[nodiscard]] static net::Url normalize(const net::Url& url);

  /// Rewrite randomized fetches to deterministic ones, preserving the
  /// content's byte length exactly.
  [[nodiscard]] static std::string normalize_js(const std::string& content);

  /// Does this JS content contain randomized fetches?
  [[nodiscard]] static bool has_randomized_fetch(const std::string& content);
};

}  // namespace parcel::replay
