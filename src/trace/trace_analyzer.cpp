#include "trace/trace_analyzer.hpp"

namespace parcel::trace {

std::optional<LatencyMetrics> TraceAnalyzer::latency_metrics(
    const PacketTrace& trace, std::span<const std::uint32_t> onload_set) {
  auto syn = trace.first_syn_time();
  if (!syn || trace.empty()) return std::nullopt;

  LatencyMetrics m;
  auto onload_last = trace.last_time_of_objects(onload_set);
  if (onload_last) m.olt = *onload_last - *syn;
  m.tlt = trace.last_time() - *syn;
  // Some tiny pages finish everything within the onload set; clamp so
  // OLT <= TLT always holds.
  if (m.olt > m.tlt) m.olt = m.tlt;
  return m;
}

std::size_t TraceAnalyzer::count_gaps_longer_than(const PacketTrace& trace,
                                                  util::Duration gap) {
  // Column scan: only the time and kind columns are touched (SoA replay
  // fast path, DESIGN.md §11).
  auto times = trace.times();
  auto kinds = trace.kinds();
  std::size_t n = 0;
  std::optional<util::TimePoint> prev;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (kinds[i] != PacketKind::kData) continue;
    if (prev && (times[i] - *prev) > gap) ++n;
    prev = times[i];
  }
  return n;
}

util::Duration TraceAnalyzer::recovery_time(const PacketTrace& trace) {
  auto fault_times = trace.fault_times();
  if (fault_times.empty()) return util::Duration::zero();
  util::TimePoint first_fault = fault_times.front();
  auto times = trace.times();
  auto kinds = trace.kinds();
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (kinds[i] != PacketKind::kData) continue;
    if (times[i] >= first_fault) return times[i] - first_fault;
  }
  return util::Duration::zero();
}

util::Bytes TraceAnalyzer::downlink_bytes_before(const PacketTrace& trace,
                                                 util::TimePoint t) {
  auto times = trace.times();
  auto dirs = trace.directions();
  auto kinds = trace.kinds();
  auto sizes = trace.sizes();
  util::Bytes total = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] > t) break;
    if (dirs[i] == Direction::kDownlink && kinds[i] == PacketKind::kData) {
      total += sizes[i];
    }
  }
  return total;
}

}  // namespace parcel::trace
