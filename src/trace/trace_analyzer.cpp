#include "trace/trace_analyzer.hpp"

namespace parcel::trace {

std::optional<LatencyMetrics> TraceAnalyzer::latency_metrics(
    const PacketTrace& trace, std::span<const std::uint32_t> onload_set) {
  auto syn = trace.first_syn_time();
  if (!syn || trace.empty()) return std::nullopt;

  LatencyMetrics m;
  auto onload_last = trace.last_time_of_objects(onload_set);
  if (onload_last) m.olt = *onload_last - *syn;
  m.tlt = trace.last_time() - *syn;
  // Some tiny pages finish everything within the onload set; clamp so
  // OLT <= TLT always holds.
  if (m.olt > m.tlt) m.olt = m.tlt;
  return m;
}

std::size_t TraceAnalyzer::count_gaps_longer_than(const PacketTrace& trace,
                                                  util::Duration gap) {
  std::size_t n = 0;
  std::optional<util::TimePoint> prev;
  for (const auto& r : trace.records()) {
    if (r.kind != PacketKind::kData) continue;
    if (prev && (r.t - *prev) > gap) ++n;
    prev = r.t;
  }
  return n;
}

util::Duration TraceAnalyzer::recovery_time(const PacketTrace& trace) {
  auto faults = trace.fault_events();
  if (faults.empty()) return util::Duration::zero();
  util::TimePoint first_fault = faults.front().t;
  for (const auto& r : trace.records()) {
    if (r.kind != PacketKind::kData) continue;
    if (r.t >= first_fault) return r.t - first_fault;
  }
  return util::Duration::zero();
}

util::Bytes TraceAnalyzer::downlink_bytes_before(const PacketTrace& trace,
                                                 util::TimePoint t) {
  util::Bytes total = 0;
  for (const auto& r : trace.records()) {
    if (r.t > t) break;
    if (r.dir == Direction::kDownlink && r.kind == PacketKind::kData) {
      total += r.bytes;
    }
  }
  return total;
}

}  // namespace parcel::trace
