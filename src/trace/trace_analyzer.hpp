// Latency metric extraction from packet traces (paper §2.1 and §7.1).
//
// OLT (Onload Time): first SYN -> last ACK of the objects required for the
// onload event. TLT (Total pageload time): first SYN -> last ACK over all
// objects, absent user interaction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "trace/packet_trace.hpp"
#include "util/units.hpp"

namespace parcel::trace {

struct LatencyMetrics {
  util::Duration olt = util::Duration::zero();
  util::Duration tlt = util::Duration::zero();
};

class TraceAnalyzer {
 public:
  /// Objects in `onload_set` are those needed to fire onload; the full
  /// object universe is whatever appears in the trace.
  static std::optional<LatencyMetrics> latency_metrics(
      const PacketTrace& trace, std::span<const std::uint32_t> onload_set);

  /// Time between consecutive payload bursts exceeding `gap` — the flat
  /// segments visible in the paper's Fig 6a timeline for DIR.
  static std::size_t count_gaps_longer_than(const PacketTrace& trace,
                                            util::Duration gap);

  /// Cumulative downlink bytes by time `t` (Fig 6a's y-axis).
  static util::Bytes downlink_bytes_before(const PacketTrace& trace,
                                           util::TimePoint t);

  /// Time from the first injected fault to the next payload burst that
  /// was actually delivered at or after it — how long the page transfer
  /// took to get moving again. Zero when the trace has no fault events or
  /// no delivery ever followed one.
  static util::Duration recovery_time(const PacketTrace& trace);
};

}  // namespace parcel::trace
