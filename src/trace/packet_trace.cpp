#include "trace/packet_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace parcel::trace {

void PacketTrace::record(PacketRecord r) {
  // Bursts are produced by multiple connections whose events interleave in
  // time order already (the scheduler fires them in order), but promotion
  // retiming can produce slight inversions; keep the trace sorted.
  if (!records_.empty() && r.t < records_.back().t) {
    auto it = std::upper_bound(
        records_.begin(), records_.end(), r,
        [](const PacketRecord& a, const PacketRecord& b) { return a.t < b.t; });
    records_.insert(it, r);
    return;
  }
  records_.push_back(r);
}

Bytes PacketTrace::total_bytes() const {
  Bytes n = 0;
  for (const auto& r : records_) n += r.bytes;
  return n;
}

Bytes PacketTrace::downlink_bytes() const {
  Bytes n = 0;
  for (const auto& r : records_) {
    if (r.dir == Direction::kDownlink) n += r.bytes;
  }
  return n;
}

Bytes PacketTrace::uplink_bytes() const {
  Bytes n = 0;
  for (const auto& r : records_) {
    if (r.dir == Direction::kUplink) n += r.bytes;
  }
  return n;
}

TimePoint PacketTrace::first_time() const {
  if (records_.empty()) throw std::logic_error("first_time on empty trace");
  return records_.front().t;
}

TimePoint PacketTrace::last_time() const {
  if (records_.empty()) throw std::logic_error("last_time on empty trace");
  return records_.back().t;
}

std::optional<TimePoint> PacketTrace::first_syn_time() const {
  for (const auto& r : records_) {
    if (r.kind == PacketKind::kSyn) return r.t;
  }
  return std::nullopt;
}

std::optional<TimePoint> PacketTrace::last_time_of_objects(
    std::span<const std::uint32_t> object_ids) const {
  std::unordered_set<std::uint32_t> wanted(object_ids.begin(),
                                           object_ids.end());
  std::optional<TimePoint> last;
  for (const auto& r : records_) {
    if (r.object_id != 0 && wanted.count(r.object_id) > 0) {
      if (!last || r.t > *last) last = r.t;
    }
  }
  return last;
}

std::size_t PacketTrace::connection_count() const {
  std::unordered_set<std::uint32_t> conns;
  for (const auto& r : records_) conns.insert(r.conn_id);
  return conns.size();
}

void PacketTrace::record_fault(FaultEvent e) {
  if (!fault_events_.empty() && e.t < fault_events_.back().t) {
    auto it = std::upper_bound(
        fault_events_.begin(), fault_events_.end(), e,
        [](const FaultEvent& a, const FaultEvent& b) { return a.t < b.t; });
    fault_events_.insert(it, e);
    return;
  }
  fault_events_.push_back(e);
}

std::size_t PacketTrace::fault_count(FaultKind kind) const {
  std::size_t n = 0;
  for (const auto& e : fault_events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void PacketTrace::truncate_after(TimePoint cutoff) {
  std::erase_if(records_,
                [cutoff](const PacketRecord& r) { return r.t > cutoff; });
  std::erase_if(fault_events_,
                [cutoff](const FaultEvent& e) { return e.t > cutoff; });
}

std::string PacketTrace::serialize() const {
  std::string out;
  char buf[128];
  for (const auto& r : records_) {
    std::snprintf(buf, sizeof(buf), "%.6f %u %u %lld %u %u\n", r.t.sec(),
                  static_cast<unsigned>(r.dir), static_cast<unsigned>(r.kind),
                  static_cast<long long>(r.bytes), r.conn_id, r.object_id);
    out += buf;
  }
  for (const auto& e : fault_events_) {
    std::snprintf(buf, sizeof(buf), "F %.6f %u %lld %u\n", e.t.sec(),
                  static_cast<unsigned>(e.kind), static_cast<long long>(e.bytes),
                  e.conn_id);
    out += buf;
  }
  return out;
}

PacketTrace PacketTrace::deserialize(const std::string& text) {
  PacketTrace trace;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'F') {
      double t = 0.0;
      unsigned kind = 0, conn = 0;
      long long bytes = 0;
      if (std::sscanf(line.c_str(), "F %lf %u %lld %u", &t, &kind, &bytes,
                      &conn) != 4) {
        throw std::invalid_argument("PacketTrace::deserialize: bad line: " +
                                    line);
      }
      trace.record_fault(FaultEvent{TimePoint::at_seconds(t),
                                    static_cast<FaultKind>(kind), bytes, conn});
      continue;
    }
    double t = 0.0;
    unsigned dir = 0, kind = 0, conn = 0, obj = 0;
    long long bytes = 0;
    if (std::sscanf(line.c_str(), "%lf %u %u %lld %u %u", &t, &dir, &kind,
                    &bytes, &conn, &obj) != 6) {
      throw std::invalid_argument("PacketTrace::deserialize: bad line: " +
                                  line);
    }
    trace.record(PacketRecord{TimePoint::at_seconds(t),
                              static_cast<Direction>(dir),
                              static_cast<PacketKind>(kind), bytes, conn, obj});
  }
  return trace;
}

}  // namespace parcel::trace
