#include "trace/packet_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace parcel::trace {

void PacketTrace::record(PacketRecord r) {
  // Live tap first (ISSUE 10): the ctrl estimators see records in the
  // order the radio produced them, which is the only order an online
  // observer could see.
  if (burst_listener_) burst_listener_(r);
  // Bursts are produced by multiple connections whose events interleave in
  // time order already (the scheduler fires them in order), but promotion
  // retiming can produce slight inversions; keep the columns sorted.
  // Matching the old AoS upper_bound-on-record semantics: an inverted
  // record is inserted *after* any existing records with an equal t.
  if (!t_.empty() && r.t < t_.back()) {
    auto it = std::upper_bound(t_.begin(), t_.end(), r.t);
    auto i = static_cast<std::size_t>(it - t_.begin());
    t_.insert(t_.begin() + static_cast<std::ptrdiff_t>(i), r.t);
    dir_.insert(dir_.begin() + static_cast<std::ptrdiff_t>(i), r.dir);
    kind_.insert(kind_.begin() + static_cast<std::ptrdiff_t>(i), r.kind);
    bytes_.insert(bytes_.begin() + static_cast<std::ptrdiff_t>(i), r.bytes);
    conn_.insert(conn_.begin() + static_cast<std::ptrdiff_t>(i), r.conn_id);
    obj_.insert(obj_.begin() + static_cast<std::ptrdiff_t>(i), r.object_id);
    return;
  }
  t_.push_back(r.t);
  dir_.push_back(r.dir);
  kind_.push_back(r.kind);
  bytes_.push_back(r.bytes);
  conn_.push_back(r.conn_id);
  obj_.push_back(r.object_id);
}

Bytes PacketTrace::total_bytes() const {
  Bytes n = 0;
  for (Bytes b : bytes_) n += b;
  return n;
}

Bytes PacketTrace::downlink_bytes() const {
  Bytes n = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (dir_[i] == Direction::kDownlink) n += bytes_[i];
  }
  return n;
}

Bytes PacketTrace::uplink_bytes() const {
  Bytes n = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    if (dir_[i] == Direction::kUplink) n += bytes_[i];
  }
  return n;
}

TimePoint PacketTrace::first_time() const {
  if (t_.empty()) throw std::logic_error("first_time on empty trace");
  return t_.front();
}

TimePoint PacketTrace::last_time() const {
  if (t_.empty()) throw std::logic_error("last_time on empty trace");
  return t_.back();
}

std::optional<TimePoint> PacketTrace::first_syn_time() const {
  for (std::size_t i = 0; i < kind_.size(); ++i) {
    if (kind_[i] == PacketKind::kSyn) return t_[i];
  }
  return std::nullopt;
}

std::optional<TimePoint> PacketTrace::last_time_of_objects(
    std::span<const std::uint32_t> object_ids) const {
  std::unordered_set<std::uint32_t> wanted(object_ids.begin(),
                                           object_ids.end());
  std::optional<TimePoint> last;
  for (std::size_t i = 0; i < obj_.size(); ++i) {
    if (obj_[i] != 0 && wanted.count(obj_[i]) > 0) {
      if (!last || t_[i] > *last) last = t_[i];
    }
  }
  return last;
}

std::size_t PacketTrace::connection_count() const {
  std::unordered_set<std::uint32_t> conns(conn_.begin(), conn_.end());
  return conns.size();
}

void PacketTrace::record_fault(FaultEvent e) {
  if (!fault_t_.empty() && e.t < fault_t_.back()) {
    auto it = std::upper_bound(fault_t_.begin(), fault_t_.end(), e.t);
    auto i = static_cast<std::size_t>(it - fault_t_.begin());
    fault_t_.insert(fault_t_.begin() + static_cast<std::ptrdiff_t>(i), e.t);
    fault_kind_.insert(fault_kind_.begin() + static_cast<std::ptrdiff_t>(i),
                       e.kind);
    fault_bytes_.insert(fault_bytes_.begin() + static_cast<std::ptrdiff_t>(i),
                        e.bytes);
    fault_conn_.insert(fault_conn_.begin() + static_cast<std::ptrdiff_t>(i),
                       e.conn_id);
    return;
  }
  fault_t_.push_back(e.t);
  fault_kind_.push_back(e.kind);
  fault_bytes_.push_back(e.bytes);
  fault_conn_.push_back(e.conn_id);
}

std::size_t PacketTrace::fault_count(FaultKind kind) const {
  std::size_t n = 0;
  for (FaultKind k : fault_kind_) {
    if (k == kind) ++n;
  }
  return n;
}

void PacketTrace::truncate_after(TimePoint cutoff) {
  // Columns are sorted by time, so everything past the cutoff is a suffix;
  // resizing each column to the partition point is equivalent to the old
  // erase_if over records.
  auto keep = static_cast<std::size_t>(
      std::upper_bound(t_.begin(), t_.end(), cutoff) - t_.begin());
  t_.resize(keep);
  dir_.resize(keep);
  kind_.resize(keep);
  bytes_.resize(keep);
  conn_.resize(keep);
  obj_.resize(keep);
  auto fkeep = static_cast<std::size_t>(
      std::upper_bound(fault_t_.begin(), fault_t_.end(), cutoff) -
      fault_t_.begin());
  fault_t_.resize(fkeep);
  fault_kind_.resize(fkeep);
  fault_bytes_.resize(fkeep);
  fault_conn_.resize(fkeep);
}

void PacketTrace::clear() {
  t_.clear();
  dir_.clear();
  kind_.clear();
  bytes_.clear();
  conn_.clear();
  obj_.clear();
  fault_t_.clear();
  fault_kind_.clear();
  fault_bytes_.clear();
  fault_conn_.clear();
}

std::string PacketTrace::serialize() const {
  std::string out;
  char buf[128];
  for (std::size_t i = 0; i < t_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.6f %u %u %lld %u %u\n", t_[i].sec(),
                  static_cast<unsigned>(dir_[i]),
                  static_cast<unsigned>(kind_[i]),
                  static_cast<long long>(bytes_[i]), conn_[i], obj_[i]);
    out += buf;
  }
  for (std::size_t i = 0; i < fault_t_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "F %.6f %u %lld %u\n", fault_t_[i].sec(),
                  static_cast<unsigned>(fault_kind_[i]),
                  static_cast<long long>(fault_bytes_[i]), fault_conn_[i]);
    out += buf;
  }
  return out;
}

PacketTrace PacketTrace::deserialize(const std::string& text) {
  PacketTrace trace;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == 'F') {
      double t = 0.0;
      unsigned kind = 0, conn = 0;
      long long bytes = 0;
      if (std::sscanf(line.c_str(), "F %lf %u %lld %u", &t, &kind, &bytes,
                      &conn) != 4) {
        throw std::invalid_argument("PacketTrace::deserialize: bad line: " +
                                    line);
      }
      trace.record_fault(FaultEvent{TimePoint::at_seconds(t),
                                    static_cast<FaultKind>(kind), bytes, conn});
      continue;
    }
    double t = 0.0;
    unsigned dir = 0, kind = 0, conn = 0, obj = 0;
    long long bytes = 0;
    if (std::sscanf(line.c_str(), "%lf %u %u %lld %u %u", &t, &dir, &kind,
                    &bytes, &conn, &obj) != 6) {
      throw std::invalid_argument("PacketTrace::deserialize: bad line: " +
                                  line);
    }
    trace.record(PacketRecord{TimePoint::at_seconds(t),
                              static_cast<Direction>(dir),
                              static_cast<PacketKind>(kind), bytes, conn, obj});
  }
  return trace;
}

}  // namespace parcel::trace
