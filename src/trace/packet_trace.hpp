// Packet traces captured at the mobile device.
//
// The paper's methodology (§7.1) computes every metric post-hoc from a
// packet capture on the phone: OLT is "the time between the first SYN and
// the last ACK for all objects required to generate the onload event", TLT
// uses all objects, and radio energy is computed by replaying the trace
// through the ARO RRC/power model. We therefore make the trace the single
// source of truth: the network substrate records every burst that crosses
// the device's radio, tagged with connection and object identity, and the
// analyzers consume it.
//
// Layout (DESIGN.md §11): the trace is structure-of-arrays — one
// append-only column per PacketRecord field, kept sorted by time. Replay
// is the true kernel of this reproduction (every metric is a scan over
// the capture), and the analyzers only ever touch a field or two per
// pass: the RRC/energy replay reads just the time column (8 bytes per
// record instead of a 32-byte AoS stride), byte accounting reads
// dir/kind/bytes, and so on. Columns are exposed as spans for those
// linear scans; records()/fault_events() return lightweight views whose
// iterators materialize PacketRecord/FaultEvent values on demand, so the
// ~20 pre-SoA consumers (range-for, front()/back(), operator[]) migrate
// mechanically. Column storage draws from the per-run arena when one is
// in scope; traces that outlive a run (RunResult) are default-resource
// and receive the data element-wise on assignment.
#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <memory_resource>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace parcel::trace {

using util::Bytes;
using util::Duration;
using util::TimePoint;

enum class Direction : std::uint8_t { kUplink, kDownlink };

enum class PacketKind : std::uint8_t {
  kSyn,      // connection establishment (either direction)
  kData,     // payload-carrying burst
  kAck,      // bare acknowledgement / control
  kFin,      // teardown
};

/// One captured radio burst. The simulator works at burst granularity
/// (one record per TCP send window), which is the resolution the RRC
/// machine needs: DRX timers are two orders of magnitude longer than a
/// packet serialization time. Materialized on demand from the columns.
struct PacketRecord {
  TimePoint t;
  Direction dir = Direction::kDownlink;
  PacketKind kind = PacketKind::kData;
  Bytes bytes = 0;
  std::uint32_t conn_id = 0;
  /// Object this burst belongs to; 0 when not attributable (handshakes).
  std::uint32_t object_id = 0;
};

/// Injected-fault taxonomy (see sim::FaultPlan). Recorded alongside the
/// packet records so experiments can report energy/latency *under faults*
/// per scheme, plus time-to-recovery.
enum class FaultKind : std::uint8_t {
  kLoss,          // burst destroyed by the injector
  kBlackout,      // burst deferred by an outage window
  kCollapse,      // burst serialized under a bandwidth-collapse window
  kServerStall,   // origin response delayed
  kServerError,   // origin answered 5xx by injection
  kProxyCrash,    // the PARCEL proxy process died
  kProxyRestart,  // ... and came back (fresh process, page state lost)
  kDegraded,      // client presumed the proxy dead and went direct
};

struct FaultEvent {
  TimePoint t;
  FaultKind kind = FaultKind::kLoss;
  Bytes bytes = 0;
  std::uint32_t conn_id = 0;
};

/// Random-access view over a trace's columns yielding T by value.
/// `Materialize` is a member-function pointer of PacketTrace returning
/// the i-th row. Iterators satisfy random_access_iterator; dereference
/// returns a value, so `const auto& r : view` binds each row for the
/// loop body exactly like the old span-of-structs did.
template <typename Trace, typename T, T (Trace::*Materialize)(std::size_t)
                                          const>
class RowView {
 public:
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = T;

    iterator() = default;
    iterator(const Trace* trace, std::size_t i) : trace_(trace), i_(i) {}

    T operator*() const { return (trace_->*Materialize)(i_); }
    T operator[](difference_type n) const {
      return (trace_->*Materialize)(i_ + static_cast<std::size_t>(n));
    }
    iterator& operator++() { ++i_; return *this; }
    iterator operator++(int) { iterator t = *this; ++i_; return t; }
    iterator& operator--() { --i_; return *this; }
    iterator operator--(int) { iterator t = *this; --i_; return t; }
    iterator& operator+=(difference_type n) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
      return *this;
    }
    iterator& operator-=(difference_type n) { return *this += -n; }
    friend iterator operator+(iterator it, difference_type n) {
      return it += n;
    }
    friend iterator operator+(difference_type n, iterator it) {
      return it += n;
    }
    friend iterator operator-(iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const iterator& a, const iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const Trace* trace_ = nullptr;
    std::size_t i_ = 0;
  };

  RowView(const Trace* trace, std::size_t size)
      : trace_(trace), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T operator[](std::size_t i) const {
    return (trace_->*Materialize)(i);
  }
  [[nodiscard]] T front() const { return (*this)[0]; }
  [[nodiscard]] T back() const { return (*this)[size_ - 1]; }
  [[nodiscard]] iterator begin() const { return iterator(trace_, 0); }
  [[nodiscard]] iterator end() const { return iterator(trace_, size_); }

 private:
  const Trace* trace_;
  std::size_t size_;
};

class PacketTrace {
 public:
  /// Traces that outlive a run (RunResult members, fixtures) use the
  /// default heap resource; the testbed's capture trace passes
  /// core::run_resource() so column growth bumps out of the run arena.
  PacketTrace() : PacketTrace(std::pmr::get_default_resource()) {}
  explicit PacketTrace(std::pmr::memory_resource* mr)
      : t_(mr), dir_(mr), kind_(mr), bytes_(mr), conn_(mr), obj_(mr),
        fault_t_(mr), fault_kind_(mr), fault_bytes_(mr), fault_conn_(mr) {}

  // Copies re-home to the copier's default resource (pmr
  // select_on_container_copy_construction), so a RunResult copy of an
  // arena trace never aliases the arena. Moves propagate the source
  // resource; move-assignment across unequal resources (arena trace into
  // a default-resource RunResult) degrades to element-wise transfer,
  // which is exactly the run-exit handoff we want.
  PacketTrace(const PacketTrace&) = default;
  PacketTrace& operator=(const PacketTrace&) = default;
  PacketTrace(PacketTrace&&) = default;
  PacketTrace& operator=(PacketTrace&&) = default;

  void record(PacketRecord r);

  /// Materialize row `i` (bounds unchecked, like span indexing was).
  [[nodiscard]] PacketRecord record_at(std::size_t i) const {
    return PacketRecord{t_[i], dir_[i], kind_[i], bytes_[i], conn_[i],
                        obj_[i]};
  }
  [[nodiscard]] FaultEvent fault_at(std::size_t i) const {
    return FaultEvent{fault_t_[i], fault_kind_[i], fault_bytes_[i],
                      fault_conn_[i]};
  }

  using RecordsView = RowView<PacketTrace, PacketRecord,
                              &PacketTrace::record_at>;
  using FaultsView = RowView<PacketTrace, FaultEvent, &PacketTrace::fault_at>;

  [[nodiscard]] RecordsView records() const {
    return RecordsView(this, t_.size());
  }
  [[nodiscard]] bool empty() const { return t_.empty(); }
  [[nodiscard]] std::size_t size() const { return t_.size(); }

  // --- Columns (the replay fast path: linear scans, one field each) ----
  [[nodiscard]] std::span<const TimePoint> times() const { return t_; }
  [[nodiscard]] std::span<const Direction> directions() const { return dir_; }
  [[nodiscard]] std::span<const PacketKind> kinds() const { return kind_; }
  [[nodiscard]] std::span<const Bytes> sizes() const { return bytes_; }
  [[nodiscard]] std::span<const std::uint32_t> conn_ids() const {
    return conn_;
  }
  [[nodiscard]] std::span<const std::uint32_t> object_ids() const {
    return obj_;
  }
  [[nodiscard]] std::span<const TimePoint> fault_times() const {
    return fault_t_;
  }
  [[nodiscard]] std::span<const FaultKind> fault_kinds() const {
    return fault_kind_;
  }

  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] Bytes downlink_bytes() const;
  [[nodiscard]] Bytes uplink_bytes() const;

  [[nodiscard]] TimePoint first_time() const;
  [[nodiscard]] TimePoint last_time() const;

  /// First SYN in the trace; the paper's latency metrics are anchored here.
  [[nodiscard]] std::optional<TimePoint> first_syn_time() const;

  /// Last record attributable to any object in `object_ids`.
  [[nodiscard]] std::optional<TimePoint> last_time_of_objects(
      std::span<const std::uint32_t> object_ids) const;

  /// Distinct connection ids seen (Table 1's "# of TCP connections").
  [[nodiscard]] std::size_t connection_count() const;

  /// Fault-event side channel; empty (and cost-free) in fault-free runs.
  void record_fault(FaultEvent e);
  [[nodiscard]] FaultsView fault_events() const {
    return FaultsView(this, fault_t_.size());
  }
  [[nodiscard]] std::size_t fault_count(FaultKind kind) const;

  /// Live burst channel (ISSUE 10): called with each record as it is
  /// captured, in arrival order (before any time-sort reordering the
  /// columns apply). The online ctrl:: estimators tap the capture here;
  /// the listener is *observational* — it must not mutate the trace, it
  /// is never serialized, and the experiment harness clears it before
  /// the trace is handed off to RunResult. Null (the default) costs one
  /// branch per record.
  void set_burst_listener(std::function<void(const PacketRecord&)> listener) {
    burst_listener_ = std::move(listener);
  }
  [[nodiscard]] bool has_burst_listener() const {
    return static_cast<bool>(burst_listener_);
  }

  /// Truncate to records with t <= cutoff (paper limits capture to 60 s).
  void truncate_after(TimePoint cutoff);

  void clear();

  /// Serialize to a simple line format ("t dir kind bytes conn obj"; fault
  /// events as "F t kind bytes conn" lines) and parse it back; used by the
  /// replay store and for debugging dumps. Fault-free traces serialize
  /// exactly as before the fault layer existed — and the SoA layout emits
  /// byte-identical text to the pre-SoA array-of-structs trace (pinned in
  /// test_trace).
  [[nodiscard]] std::string serialize() const;
  static PacketTrace deserialize(const std::string& text);

 private:
  // Packet columns, index-aligned, sorted by t_ (promotion retiming can
  // hand records in slightly out of order; record() restores order).
  std::pmr::vector<TimePoint> t_;
  std::pmr::vector<Direction> dir_;
  std::pmr::vector<PacketKind> kind_;
  std::pmr::vector<Bytes> bytes_;
  std::pmr::vector<std::uint32_t> conn_;
  std::pmr::vector<std::uint32_t> obj_;
  // Fault-event columns, same discipline.
  std::pmr::vector<TimePoint> fault_t_;
  std::pmr::vector<FaultKind> fault_kind_;
  std::pmr::vector<Bytes> fault_bytes_;
  std::pmr::vector<std::uint32_t> fault_conn_;
  // Live capture tap (never serialized; cleared before RunResult handoff).
  std::function<void(const PacketRecord&)> burst_listener_;
};

}  // namespace parcel::trace
