// Packet traces captured at the mobile device.
//
// The paper's methodology (§7.1) computes every metric post-hoc from a
// packet capture on the phone: OLT is "the time between the first SYN and
// the last ACK for all objects required to generate the onload event", TLT
// uses all objects, and radio energy is computed by replaying the trace
// through the ARO RRC/power model. We therefore make the trace the single
// source of truth: the network substrate records every burst that crosses
// the device's radio, tagged with connection and object identity, and the
// analyzers consume it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace parcel::trace {

using util::Bytes;
using util::Duration;
using util::TimePoint;

enum class Direction : std::uint8_t { kUplink, kDownlink };

enum class PacketKind : std::uint8_t {
  kSyn,      // connection establishment (either direction)
  kData,     // payload-carrying burst
  kAck,      // bare acknowledgement / control
  kFin,      // teardown
};

/// One captured radio burst. The simulator works at burst granularity
/// (one record per TCP send window), which is the resolution the RRC
/// machine needs: DRX timers are two orders of magnitude longer than a
/// packet serialization time.
struct PacketRecord {
  TimePoint t;
  Direction dir = Direction::kDownlink;
  PacketKind kind = PacketKind::kData;
  Bytes bytes = 0;
  std::uint32_t conn_id = 0;
  /// Object this burst belongs to; 0 when not attributable (handshakes).
  std::uint32_t object_id = 0;
};

/// Injected-fault taxonomy (see sim::FaultPlan). Recorded alongside the
/// packet records so experiments can report energy/latency *under faults*
/// per scheme, plus time-to-recovery.
enum class FaultKind : std::uint8_t {
  kLoss,          // burst destroyed by the injector
  kBlackout,      // burst deferred by an outage window
  kCollapse,      // burst serialized under a bandwidth-collapse window
  kServerStall,   // origin response delayed
  kServerError,   // origin answered 5xx by injection
  kProxyCrash,    // the PARCEL proxy process died
  kProxyRestart,  // ... and came back (fresh process, page state lost)
  kDegraded,      // client presumed the proxy dead and went direct
};

struct FaultEvent {
  TimePoint t;
  FaultKind kind = FaultKind::kLoss;
  Bytes bytes = 0;
  std::uint32_t conn_id = 0;
};

class PacketTrace {
 public:
  void record(PacketRecord r);

  [[nodiscard]] std::span<const PacketRecord> records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] Bytes downlink_bytes() const;
  [[nodiscard]] Bytes uplink_bytes() const;

  [[nodiscard]] TimePoint first_time() const;
  [[nodiscard]] TimePoint last_time() const;

  /// First SYN in the trace; the paper's latency metrics are anchored here.
  [[nodiscard]] std::optional<TimePoint> first_syn_time() const;

  /// Last record attributable to any object in `object_ids`.
  [[nodiscard]] std::optional<TimePoint> last_time_of_objects(
      std::span<const std::uint32_t> object_ids) const;

  /// Distinct connection ids seen (Table 1's "# of TCP connections").
  [[nodiscard]] std::size_t connection_count() const;

  /// Fault-event side channel; empty (and cost-free) in fault-free runs.
  void record_fault(FaultEvent e);
  [[nodiscard]] std::span<const FaultEvent> fault_events() const {
    return fault_events_;
  }
  [[nodiscard]] std::size_t fault_count(FaultKind kind) const;

  /// Truncate to records with t <= cutoff (paper limits capture to 60 s).
  void truncate_after(TimePoint cutoff);

  void clear() {
    records_.clear();
    fault_events_.clear();
  }

  /// Serialize to a simple line format ("t dir kind bytes conn obj"; fault
  /// events as "F t kind bytes conn" lines) and parse it back; used by the
  /// replay store and for debugging dumps. Fault-free traces serialize
  /// exactly as before the fault layer existed.
  [[nodiscard]] std::string serialize() const;
  static PacketTrace deserialize(const std::string& text);

 private:
  std::vector<PacketRecord> records_;
  std::vector<FaultEvent> fault_events_;
};

}  // namespace parcel::trace
