// Sanctioned environment kill switches.
//
// util/ owns the PARCEL_* env toggles (see lint.rules: nondet-getenv is
// exempt here and only here). Every toggle is read once, at first use, so
// behaviour cannot change mid-run; callers cache the result in their own
// process-wide flag when they need a programmatic override on top (see
// core::set_arena_enabled).
#pragma once

namespace parcel::util {

/// Read the kill switch `name` once: returns `default_on` unless the
/// variable is set, in which case anything but "0" enables. All PARCEL_*
/// switches follow the PARCEL_PARSE_CACHE convention: "0" disables, any
/// other value (or unset) leaves the default.
[[nodiscard]] bool env_flag(const char* name, bool default_on);

}  // namespace parcel::util
